// Exhaustive crash-point recovery matrix.
//
// Every journal phase x every injected crash site in the Placer and the
// fold-back path, each with and without a torn final journal record, plus a
// stranded KV-compaction temp file and the pipeline-driven deploy path.
// After every crash the recovery contract is the same:
//
//   * the file system ends in exactly one of two consistent states — fully
//     migrated (a DRT to serve from; every region byte matches its origin
//     range) or fully original (regions gone, original file pristine),
//   * recovery is idempotent: a second recover_migration is a no-op and the
//     byte-level state fingerprint is unchanged,
//   * a torn journal tail is detected (RecoveryReport::journal_torn) and
//     recovery acts on the last *durable* phase.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/page_cache.hpp"
#include "common/crc32.hpp"
#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "core/recovery.hpp"
#include "core/redirector.hpp"
#include "fault/journal.hpp"
#include "io/mpi_file.hpp"
#include "layouts/scheme.hpp"
#include "repair/membership.hpp"
#include "repair/rebuilder.hpp"

namespace mha {
namespace {

using common::OpType;
using namespace common::literals;

std::string temp_path(const std::string& tag) {
  static std::atomic<int> counter{0};
  return testing::TempDir() + "crash_matrix_" + tag + "_" + std::to_string(::getpid()) +
         "_" + std::to_string(counter.fetch_add(1)) + ".db";
}

sim::DeviceProfile flat_device(const char* name, double startup, double per_byte) {
  sim::DeviceProfile d;
  d.name = name;
  d.startup_read = startup;
  d.startup_write = 2 * startup;
  d.per_byte_read = per_byte;
  d.per_byte_write = 2 * per_byte;
  d.queued_startup_factor = 1.0;
  return d;
}

sim::ClusterConfig tiny_cluster(std::size_t hservers = 2, std::size_t sservers = 1) {
  sim::ClusterConfig config;
  config.num_hservers = hservers;
  config.num_sservers = sservers;
  config.hdd = flat_device("hdd", 1.0, 0.001);
  config.ssd = flat_device("ssd", 0.1, 0.0001);
  config.network = sim::null_network();
  return config;
}

/// Byte-level fingerprint of the whole PFS: every file's logical content, in
/// name order.  Two identical fingerprints mean bitwise-identical state.
std::uint32_t state_fingerprint(pfs::HybridPfs& pfs) {
  std::uint32_t crc = 0;
  std::vector<std::string> names = pfs.mds().list_files();
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    crc = common::crc32(name.data(), name.size(), crc);
    auto id = pfs.open(name);
    if (!id.is_ok()) continue;
    const common::ByteCount size = pfs.mds().info(*id).size;
    if (size == 0) continue;
    auto bytes = pfs.read_bytes(*id, 0, size, 0.0);
    if (bytes.is_ok()) crc = common::crc32(bytes->data(), bytes->size(), crc);
  }
  return crc;
}

/// Cuts `n` bytes off the journal file: a crash mid-append leaves exactly
/// this — a well-formed prefix ending in a partial record (records are at
/// least 13 bytes, so 4 always tears the last one without erasing it).
void tear_tail(const std::string& path, std::uintmax_t n = 4) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  ASSERT_FALSE(ec) << path;
  ASSERT_GT(size, n);
  std::filesystem::resize_file(path, size - n, ec);
  ASSERT_FALSE(ec) << path;
}

std::vector<std::uint8_t> pattern(common::Offset offset, common::ByteCount size) {
  std::vector<std::uint8_t> out(size);
  for (common::ByteCount i = 0; i < size; ++i) out[i] = layouts::populate_byte(offset + i);
  return out;
}

/// The post-recovery invariant: the PFS is in exactly one of the two
/// consistent states, whichever way recovery resolved the crash.
void expect_consistent(pfs::HybridPfs& pfs, const std::string& name,
                       common::ByteCount extent, const core::RecoveryReport& report) {
  if (report.has_drt) {
    // Fully migrated: the DRT covers the file (logical reads through a
    // rebuilt redirector reproduce every byte) and every region range holds
    // exactly its origin range's bytes.
    auto redirector = core::Redirector::create(pfs, report.drt);
    ASSERT_TRUE(redirector.is_ok()) << redirector.status().to_string();
    io::MpiSim mpi(1);
    auto file = io::MpiFile::open(pfs, mpi, name);
    ASSERT_TRUE(file.is_ok());
    file->set_interceptor(&*redirector);
    std::vector<std::uint8_t> buffer(extent);
    ASSERT_TRUE(file->read_at(0, 0, buffer.data(), buffer.size()).is_ok());
    EXPECT_EQ(buffer, pattern(0, extent));
    for (const core::DrtEntry& entry : report.drt.entries()) {
      auto region = pfs.open(entry.r_file);
      ASSERT_TRUE(region.is_ok()) << entry.r_file;
      EXPECT_EQ(*pfs.read_bytes(*region, entry.r_offset, entry.length, 0.0),
                pattern(entry.o_offset, entry.length))
          << entry.r_file << " @" << entry.r_offset;
    }
  } else {
    // Fully original: no region file survives and the original is pristine.
    for (const std::string& file : pfs.mds().list_files()) {
      EXPECT_EQ(file.find(".mha."), std::string::npos) << file;
    }
    auto id = pfs.open(name);
    ASSERT_TRUE(id.is_ok());
    EXPECT_EQ(*pfs.read_bytes(*id, 0, extent, 0.0), pattern(0, extent));
  }
}

// ------------------------------------------------ placement crash sites ---

struct Combo {
  const char* site;
  bool torn;
};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  std::string name = info.param.site;
  std::replace(name.begin(), name.end(), '-', '_');
  return name + (info.param.torn ? "_torn" : "_clean");
}

class CrashMatrix : public ::testing::TestWithParam<Combo> {
 protected:
  void SetUp() override {
    journal_path_ = temp_path("placer");
    pfs_ = std::make_unique<pfs::HybridPfs>(tiny_cluster(2, 1));
    original_ = *pfs_->create_file("orig");
    ASSERT_TRUE(layouts::populate_file(*pfs_, original_, 512_KiB).is_ok());

    plan_ = core::ReorganizePlan{};
    plan_.drt = core::Drt("orig");
    core::Region region;
    region.name = "orig.mha.r0";
    region.length = 192_KiB;
    plan_.regions.push_back(region);
    // Three entries so the matrix has a per-entry crash site between each.
    ASSERT_TRUE(plan_.drt.insert(core::DrtEntry{0, 64_KiB, "orig.mha.r0", 128_KiB}).is_ok());
    ASSERT_TRUE(plan_.drt.insert(core::DrtEntry{256_KiB, 64_KiB, "orig.mha.r0", 0}).is_ok());
    ASSERT_TRUE(
        plan_.drt.insert(core::DrtEntry{448_KiB, 64_KiB, "orig.mha.r0", 64_KiB}).is_ok());
  }
  void TearDown() override {
    std::remove(journal_path_.c_str());
    std::remove((journal_path_ + ".compact").c_str());
  }

  /// Journaled placement that aborts at `site`, leaving the journal exactly
  /// as a real crash there would.
  void crash_at(const char* site) {
    fault::MigrationJournal journal;
    ASSERT_TRUE(journal.open(journal_path_).is_ok());
    core::ApplyOptions options;
    options.journal = &journal;
    options.crash_at = [site](std::string_view p) { return p == site; };
    auto report =
        core::Placer::apply(*pfs_, plan_, {core::StripePair{16_KiB, 48_KiB}}, options);
    ASSERT_FALSE(report.is_ok());
    EXPECT_EQ(report.status().code(), common::ErrorCode::kIoError);
  }

  core::RecoveryReport recover() {
    fault::MigrationJournal journal;
    EXPECT_TRUE(journal.open(journal_path_).is_ok());
    auto recovery = core::recover_migration(*pfs_, journal);
    EXPECT_TRUE(recovery.is_ok()) << recovery.status().to_string();
    return recovery.is_ok() ? std::move(recovery).take() : core::RecoveryReport{};
  }

  std::string journal_path_;
  std::unique_ptr<pfs::HybridPfs> pfs_;
  common::FileId original_ = common::kInvalidFileId;
  core::ReorganizePlan plan_;
};

TEST_P(CrashMatrix, RecoversConsistentlyAndIdempotently) {
  const Combo combo = GetParam();
  crash_at(combo.site);
  if (combo.torn) tear_tail(journal_path_);

  const core::RecoveryReport report = recover();
  EXPECT_EQ(report.journal_torn, combo.torn);
  expect_consistent(*pfs_, "orig", 512_KiB, report);
  const std::uint32_t fingerprint = state_fingerprint(*pfs_);

  // Recovery twice from any phase: the second pass finds nothing to do and
  // the byte-level state is bitwise identical.
  const core::RecoveryReport again = recover();
  EXPECT_EQ(again.action, core::RecoveryAction::kNone);
  EXPECT_FALSE(again.journal_torn);
  EXPECT_EQ(state_fingerprint(*pfs_), fingerprint);
}

// Cache-vs-migration consistency, swept over the same crash matrix: a
// client holding cached (and dirty) pages runs the migration protocol —
// prepare flushes its dirty overlap, commit/recovery invalidates — and
// whatever state the crash resolved to, re-reads through the cache see
// exactly the recovered bytes and recovery stays idempotent underneath a
// repopulated cache.
TEST_P(CrashMatrix, CachedPagesSurviveMigrationConsistently) {
  const Combo combo = GetParam();
  io::MpiSim mpi(1);
  auto file = io::MpiFile::open(*pfs_, mpi, "orig");
  ASSERT_TRUE(file.is_ok());
  cache::CacheConfig config;
  config.page_size = 16_KiB;
  config.num_pages = 16;
  config.mode = cache::ConsistencyMode::kWriteBack;
  cache::CachedFile cached(*file, mpi, *pfs_, config);

  // Warm the cache over ranges the migration will move, and leave one page
  // dirty.  The dirty bytes equal the pattern, so both recovery outcomes
  // (fully migrated / fully original) remain pattern-consistent.
  std::vector<std::uint8_t> buffer(16_KiB);
  ASSERT_TRUE(cached.read_at(0, 0, buffer.data(), buffer.size()).is_ok());
  ASSERT_TRUE(cached.read_at(0, 256_KiB, buffer.data(), buffer.size()).is_ok());
  const std::vector<std::uint8_t> bytes = pattern(4_KiB, 4_KiB);
  ASSERT_TRUE(cached.write_at(0, 4_KiB, bytes.data(), bytes.size()).is_ok());
  ASSERT_TRUE(cached.is_dirty(0, 4_KiB));

  // Migration protocol, prepare side: the migrator must copy current bytes.
  auto prepared = cached.prepare_migration(0, 512_KiB, mpi.max_time());
  ASSERT_TRUE(prepared.is_ok()) << prepared.status().to_string();
  EXPECT_EQ(cached.dirty_pages(0), 0u);

  crash_at(combo.site);
  if (combo.torn) tear_tail(journal_path_);
  const core::RecoveryReport report = recover();
  expect_consistent(*pfs_, "orig", 512_KiB, report);
  const std::uint32_t fingerprint = state_fingerprint(*pfs_);

  // Migration protocol, commit/recovery side: the placement under the
  // cached pages changed (or was rolled back) — drop them.
  cached.invalidate(0, 512_KiB);
  EXPECT_FALSE(cached.is_cached(0, 0));
  EXPECT_FALSE(cached.is_cached(0, 256_KiB));
  EXPECT_GT(cached.metrics().invalidated_pages, 0u);

  // Re-reads route through whatever placement recovery landed on and must
  // reproduce the pattern byte-for-byte, repopulating the cache.
  auto redirector = core::Redirector::create(*pfs_, report.drt);
  if (report.has_drt) {
    ASSERT_TRUE(redirector.is_ok()) << redirector.status().to_string();
    file->set_interceptor(&*redirector);
  }
  for (const common::Offset offset : {common::Offset{0}, common::Offset{256_KiB}}) {
    ASSERT_TRUE(cached.read_at(0, offset, buffer.data(), buffer.size()).is_ok());
    EXPECT_EQ(buffer, pattern(offset, 16_KiB)) << "offset " << offset;
    EXPECT_TRUE(cached.is_cached(0, offset));
  }

  // Idempotence holds underneath the repopulated cache.
  const core::RecoveryReport again = recover();
  EXPECT_EQ(again.action, core::RecoveryAction::kNone);
  EXPECT_EQ(state_fingerprint(*pfs_), fingerprint);
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, CrashMatrix,
    ::testing::Values(Combo{"planned", false}, Combo{"planned", true},
                      Combo{"regions-created", false}, Combo{"regions-created", true},
                      Combo{"copying", false}, Combo{"copying", true},
                      Combo{"copied-entry-0", false}, Combo{"copied-entry-0", true},
                      Combo{"copied-entry-1", false}, Combo{"copied-entry-1", true},
                      Combo{"copied-entry-2", false}, Combo{"copied-entry-2", true},
                      Combo{"copied", false}, Combo{"copied", true},
                      Combo{"committed", false}, Combo{"committed", true}),
    combo_name);

// A crash during KV compaction strands "<journal>.compact"; the live log is
// authoritative and the leftover must not confuse recovery (with or without
// an additionally torn tail).
TEST_F(CrashMatrix, StrandedCompactionTempIsDiscardedOnRecovery) {
  crash_at("copying");
  {
    std::FILE* tmp = std::fopen((journal_path_ + ".compact").c_str(), "wb");
    ASSERT_NE(tmp, nullptr);
    std::fputs("half-written compaction garbage", tmp);
    std::fclose(tmp);
  }
  tear_tail(journal_path_);
  const core::RecoveryReport report = recover();
  EXPECT_TRUE(report.journal_torn);
  expect_consistent(*pfs_, "orig", 512_KiB, report);
  EXPECT_FALSE(std::filesystem::exists(journal_path_ + ".compact"));
}

// ------------------------------------------------- fold-back crash sites ---

class FoldbackCrashMatrix : public CrashMatrix {
 protected:
  /// Completes the journaled migration (journal left stamped kCommitted,
  /// exactly as OnlineMha finds it before a fold-back).
  void migrate() {
    fault::MigrationJournal journal;
    ASSERT_TRUE(journal.open(journal_path_).is_ok());
    core::ApplyOptions options;
    options.journal = &journal;
    auto report =
        core::Placer::apply(*pfs_, plan_, {core::StripePair{16_KiB, 48_KiB}}, options);
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  }

  /// Journals a fold-back and "crashes" at `site` (foldback-begun: before
  /// any copy-back; foldback-copied: all copies done, regions not dropped).
  void crash_foldback(const std::string& site) {
    fault::MigrationJournal journal;
    ASSERT_TRUE(journal.open(journal_path_).is_ok());
    std::vector<fault::JournalRegion> regions;
    for (const core::Region& region : plan_.regions) {
      auto id = pfs_->open(region.name);
      ASSERT_TRUE(id.is_ok());
      regions.push_back(fault::JournalRegion{region.name, pfs_->mds().info(*id).layout.widths()});
    }
    std::vector<fault::JournalEntry> entries;
    for (const core::DrtEntry& entry : plan_.drt.entries()) {
      entries.push_back(
          fault::JournalEntry{entry.o_offset, entry.length, entry.r_file, entry.r_offset});
    }
    ASSERT_TRUE(journal.begin_foldback("orig", std::move(regions), std::move(entries)).is_ok());
    if (site == "foldback-copied") {
      common::Seconds clock = 0.0;
      for (const core::DrtEntry& entry : plan_.drt.entries()) {
        auto region = pfs_->open(entry.r_file);
        ASSERT_TRUE(region.is_ok());
        auto bytes = pfs_->read_bytes(*region, entry.r_offset, entry.length, clock);
        ASSERT_TRUE(bytes.is_ok());
        auto w = pfs_->write(original_, entry.o_offset, bytes->data(), entry.length, clock);
        ASSERT_TRUE(w.is_ok());
        clock = w->completion;
      }
    }
    // Crash: the journal closes with kFoldback still on disk.
  }
};

TEST_P(FoldbackCrashMatrix, RecoversConsistentlyAndIdempotently) {
  const Combo combo = GetParam();
  migrate();
  crash_foldback(combo.site);
  if (combo.torn) tear_tail(journal_path_);

  const core::RecoveryReport report = recover();
  EXPECT_EQ(report.journal_torn, combo.torn);
  if (!combo.torn) {
    // Clean tail: the fold-back re-runs and the regions are dropped.
    EXPECT_EQ(report.action, core::RecoveryAction::kFoldedBack);
    expect_consistent(*pfs_, "orig", 512_KiB, report);
  } else {
    // Torn tail: the kFoldback stamp was the record being appended, and
    // begin_foldback had already durably erased the previous (committed)
    // records — the journal replays as inert (kNone; plan records without a
    // phase stamp are dead by design).  Recovery touches nothing.  No byte
    // is lost: placement never erases origin data, so the original file
    // still answers every read; the regions merely linger as orphans until
    // the next migration's clear.
    EXPECT_EQ(report.action, core::RecoveryAction::kNone);
    EXPECT_EQ(*pfs_->read_bytes(original_, 0, 512_KiB, 0.0), pattern(0, 512_KiB));
  }
  const std::uint32_t fingerprint = state_fingerprint(*pfs_);

  const core::RecoveryReport again = recover();
  EXPECT_EQ(again.action, core::RecoveryAction::kNone);
  EXPECT_EQ(state_fingerprint(*pfs_), fingerprint);
}

INSTANTIATE_TEST_SUITE_P(AllSites, FoldbackCrashMatrix,
                         ::testing::Values(Combo{"foldback-begun", false},
                                           Combo{"foldback-begun", true},
                                           Combo{"foldback-copied", false},
                                           Combo{"foldback-copied", true}),
                         combo_name);

// --------------------------------------------- pipeline-driven crashes ---

trace::TraceRecord rec(int rank, OpType op, common::Offset offset, common::ByteCount size,
                       common::Seconds t) {
  trace::TraceRecord r;
  r.rank = rank;
  r.op = op;
  r.offset = offset;
  r.size = size;
  r.t_start = t;
  return r;
}

trace::Trace mini_trace(const std::string& name) {
  trace::Trace t;
  t.file_name = name;
  common::Offset offset = 0;
  double time = 0.0;
  for (int loop = 0; loop < 8; ++loop) {
    for (int rank = 0; rank < 4; ++rank) {
      t.records.push_back(rec(rank, OpType::kRead, offset + rank * 200_KiB, 16, time));
    }
    time += 0.01;
    for (int rank = 0; rank < 4; ++rank) {
      t.records.push_back(
          rec(rank, OpType::kRead, offset + rank * 200_KiB + 16, 128_KiB, time));
    }
    time += 0.01;
    offset += 16 + 128_KiB;
  }
  return t;
}

class PipelineCrashMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(PipelineCrashMatrix, DeployCrashRecoversConsistently) {
  const Combo combo = GetParam();
  const std::string journal_path = temp_path("pipeline");
  pfs::HybridPfs pfs(tiny_cluster(2, 2));
  const trace::Trace trace = mini_trace("orig");
  const common::ByteCount extent = trace::extent_end(trace.records);
  auto original = *pfs.create_file("orig");
  ASSERT_TRUE(layouts::populate_file(pfs, original, extent).is_ok());

  core::MhaOptions options;
  options.journal_path = journal_path;
  options.crash_at = [&combo](std::string_view p) { return p == combo.site; };
  auto failed = core::MhaPipeline::deploy(pfs, trace, options);
  ASSERT_FALSE(failed.is_ok());
  if (combo.torn) tear_tail(journal_path);

  fault::MigrationJournal journal;
  ASSERT_TRUE(journal.open(journal_path).is_ok());
  auto recovery = core::recover_migration(pfs, journal);
  ASSERT_TRUE(recovery.is_ok()) << recovery.status().to_string();
  EXPECT_EQ(recovery->journal_torn, combo.torn);
  expect_consistent(pfs, "orig", extent, *recovery);
  std::remove(journal_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(DeploySites, PipelineCrashMatrix,
                         ::testing::Values(Combo{"copying", false},
                                           Combo{"committed", false},
                                           Combo{"committed", true}),
                         combo_name);

// --------------------------------------------------- rebuild crash sites ---

/// Rebuild-after-server-loss over the same discipline: every rebuilder crash
/// site, each with and without a torn final journal record.  The world is a
/// replicated 2H+2S cluster whose hot H-resident region loses HServer 0 (the
/// stores are wiped); whatever the crash left behind, the recovery contract
/// is that the client view stays byte-identical throughout, and after
/// resume (plus a fresh plan when the torn tail erased the whole plan —
/// nothing was mutated in that case) the region serves with no failover at
/// all and the journal is clean.
class RebuildCrashMatrix : public ::testing::TestWithParam<Combo> {
 protected:
  void SetUp() override {
    journal_path_ = temp_path("rebuild");
    pfs_ = std::make_unique<pfs::HybridPfs>(tiny_cluster(2, 2));
    auto original = pfs_->create_file("orig");
    ASSERT_TRUE(original.is_ok());
    ASSERT_TRUE(layouts::populate_file(*pfs_, *original, 256_KiB).is_ok());

    core::ReorganizePlan plan;
    plan.drt = core::Drt("orig");
    core::Region r0;
    r0.name = "orig.mha.r0";
    r0.length = 128_KiB;
    plan.regions.push_back(r0);
    ASSERT_TRUE(plan.drt.insert(core::DrtEntry{0, 128_KiB, r0.name, 0}).is_ok());
    core::ApplyOptions apply;
    apply.replicate_hot = true;
    auto report = core::Placer::apply(*pfs_, plan, {core::StripePair{32_KiB, 0}}, apply);
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    for (const auto& [region, replica] : report->replica_pairs) {
      ASSERT_TRUE(plan.drt.set_replica(region, replica).is_ok());
    }
    auto redirector = core::Redirector::create(*pfs_, std::move(plan.drt));
    ASSERT_TRUE(redirector.is_ok());
    redirector_.emplace(std::move(redirector).take());
    membership_ = std::make_unique<repair::Membership>(pfs_->num_servers());
    pfs_->set_membership(membership_.get());
  }
  void TearDown() override { std::remove(journal_path_.c_str()); }

  /// Byte-identical client view; returns the failover reads the pass needed.
  std::uint64_t verify_and_count_failovers() {
    pfs_->reset_failover_stats();
    io::MpiSim mpi(1);
    auto file = io::MpiFile::open(*pfs_, mpi, "orig");
    EXPECT_TRUE(file.is_ok());
    file->set_interceptor(&*redirector_);
    std::vector<std::uint8_t> buffer(256_KiB);
    EXPECT_TRUE(file->read_at(0, 0, buffer.data(), buffer.size()).is_ok());
    EXPECT_EQ(buffer, pattern(0, 256_KiB));
    EXPECT_EQ(pfs_->failover_stats().unavailable, 0u);
    return pfs_->failover_stats().failover_reads;
  }

  std::string journal_path_;
  std::unique_ptr<pfs::HybridPfs> pfs_;
  std::optional<core::Redirector> redirector_;
  std::unique_ptr<repair::Membership> membership_;
};

TEST_P(RebuildCrashMatrix, ResumesToCleanCommit) {
  const Combo combo = GetParam();
  repair::kill_server(*membership_, *pfs_, 0, 1.0);
  {
    repair::RebuildOptions options;
    options.crash_at = [&combo](std::string_view p) { return p == combo.site; };
    repair::Rebuilder rebuilder(*pfs_, *redirector_, *membership_, journal_path_,
                                options);
    ASSERT_FALSE(rebuilder.run_to_completion(1.0).is_ok());
  }
  if (combo.torn) tear_tail(journal_path_);

  // Mid-crash, torn or not, the client view is already byte-identical (the
  // replica covers whatever the half-rebuilt state cannot serve).
  verify_and_count_failovers();

  {
    repair::Rebuilder resumed(*pfs_, *redirector_, *membership_, journal_path_);
    ASSERT_TRUE(resumed.resume(2.0).is_ok());
    ASSERT_TRUE(resumed.run_to_completion(2.0).is_ok());
    ASSERT_TRUE(resumed.done());
  }
  if (verify_and_count_failovers() > 0) {
    // The torn tail erased the whole journaled plan, so resume was an inert
    // no-op over an unmutated world; a fresh plan carries it to completion.
    ASSERT_TRUE(combo.torn);
    repair::Rebuilder replanned(*pfs_, *redirector_, *membership_, journal_path_);
    ASSERT_TRUE(replanned.run_to_completion(3.0).is_ok());
    ASSERT_TRUE(replanned.done());
  }

  // Committed: the region serves byte-identically with zero failover, the
  // journal is clean, and the state fingerprint survives a redundant resume.
  EXPECT_EQ(verify_and_count_failovers(), 0u);
  {
    fault::MigrationJournal journal;
    ASSERT_TRUE(journal.open(journal_path_).is_ok());
    EXPECT_FALSE(journal.active());
    EXPECT_EQ(journal.phase(), fault::JournalPhase::kNone);
  }
  const std::uint32_t fingerprint = state_fingerprint(*pfs_);
  repair::Rebuilder redundant(*pfs_, *redirector_, *membership_, journal_path_);
  EXPECT_TRUE(redundant.resume(4.0).is_ok());
  EXPECT_TRUE(redundant.done());
  EXPECT_EQ(state_fingerprint(*pfs_), fingerprint);
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, RebuildCrashMatrix,
    ::testing::Values(Combo{"planned", false}, Combo{"planned", true},
                      Combo{"created", false}, Combo{"created", true},
                      Combo{"copying", false}, Combo{"copying", true},
                      Combo{"copied-task-0", false}, Combo{"copied-task-0", true},
                      Combo{"copied", false}, Combo{"copied", true},
                      Combo{"switched-task-0", false}, Combo{"switched-task-0", true},
                      Combo{"switched", false}, Combo{"switched", true}),
    combo_name);

}  // namespace
}  // namespace mha
