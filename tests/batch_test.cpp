// Batched-vs-serial equivalence: the batched end-to-end request path
// (HybridPfs::read_batch/write_batch, MpiFile::*_at_batch, the replayer's
// per-iteration batching) must be OBSERVABLY IDENTICAL to issuing the same
// requests serially in batch order — byte-identical extent-store contents,
// identical per-server and per-job accounting, identical Statuses and
// timings — across every (scheme x scheduler x guard) combination, at any
// thread count.  The batch is an optimisation of the how, never of the what.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "exec/thread_pool.hpp"
#include "guard/guard.hpp"
#include "io/mpi_file.hpp"
#include "layouts/scheme.hpp"
#include "qos/job.hpp"
#include "sched/scheduler.hpp"
#include "workloads/dlpipe.hpp"
#include "workloads/ior.hpp"
#include "workloads/replayer.hpp"

namespace mha {
namespace {

using namespace mha::common::literals;

// ---------------------------------------------------------------- harness

struct ComboSpec {
  const char* scheme = "DEF";           // DEF | MHA
  const char* workload = "ior";         // ior | dlpipe
  sched::SchedulerKind scheduler = sched::SchedulerKind::kFcfs;
  bool use_scheduler = false;           // false => direct FCFS (null scheduler)
  bool use_guard = false;
  bool use_jobs = false;
};

std::string combo_name(const ::testing::TestParamInfo<ComboSpec>& info) {
  const ComboSpec& c = info.param;
  std::string name = std::string(c.scheme) + "_" + c.workload;
  name += c.use_scheduler ? std::string("_") + to_string(c.scheduler) : "_direct";
  if (c.use_guard) name += "_guard";
  if (c.use_jobs) name += "_jobs";
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

trace::Trace make_trace(const std::string& kind) {
  if (kind == "dlpipe") {
    workloads::DlPipeConfig config;
    config.num_procs = 6;
    config.sample_size = 96_KiB;  // sub-stripe and unaligned chunks
    config.dataset_size = 3_MiB;
    config.epochs = 2;
    config.seed = 5;
    return workloads::dl_pipeline(config);
  }
  workloads::IorMixedSizesConfig config;
  config.num_procs = 6;
  config.request_sizes = {16_KiB, 96_KiB};
  config.file_size = 4_MiB;
  config.op = common::OpType::kWrite;
  config.per_rank_sizes = true;
  config.file_name = "batch.ior";
  config.seed = 3;
  return workloads::ior_mixed_sizes(config);
}

std::unique_ptr<layouts::LayoutScheme> make_scheme(const std::string& name) {
  return name == "MHA" ? layouts::make_mha() : layouts::make_def();
}

/// Everything one replay leaves behind that equivalence must pin: the full
/// ReplayResult plus the byte-accurate server images (the pfs is kept alive
/// so the stores can be walked after the run).
struct RunOutput {
  common::Status status;
  workloads::ReplayResult result;
  std::unique_ptr<pfs::HybridPfs> pfs;
};

RunOutput run_combo(const ComboSpec& combo, const trace::Trace& trace,
                    bool batch_requests) {
  RunOutput out;
  pfs::PfsOptions pfs_options;
  pfs_options.store_data = true;
  out.pfs = std::make_unique<pfs::HybridPfs>(sim::ClusterConfig{}, pfs_options);

  auto scheme = make_scheme(combo.scheme);
  auto deployment = scheme->prepare(*out.pfs, trace);
  if (!deployment.is_ok()) {
    out.status = deployment.status();
    return out;
  }

  workloads::ReplayOptions options;
  options.batch_requests = batch_requests;

  std::unique_ptr<sched::Scheduler> scheduler;
  if (combo.use_scheduler) {
    scheduler = sched::make_scheduler(combo.scheduler);
    options.scheduler = scheduler.get();
  }
  qos::JobTable jobs;
  if (combo.use_jobs) {
    jobs.assign_ranks(jobs.add("latency", 1.0, qos::PriorityClass::kInteractive), 0, 3);
    jobs.assign_ranks(jobs.add("batch", 2.0, qos::PriorityClass::kBatch), 3, 3);
    options.jobs = &jobs;
  }
  std::unique_ptr<guard::OverloadGuard> overload_guard;
  if (combo.use_guard) {
    overload_guard =
        std::make_unique<guard::OverloadGuard>(out.pfs->num_servers(), guard::GuardOptions{});
    options.guard = overload_guard.get();
    // Finite allowances so deadline stamping and late/goodput accounting are
    // live; generous enough that most requests still land.
    options.goodput_allowance = {2.0, 1.0, 0.5};
    options.tolerate_failures = true;
  }

  auto result = workloads::replay(*out.pfs, *deployment, trace, options);
  if (!result.is_ok()) {
    out.status = result.status();
    return out;
  }
  out.result = std::move(*result);
  return out;
}

void expect_stats_equal(const sim::ServerStats& a, const sim::ServerStats& b,
                        const std::string& where) {
  EXPECT_EQ(a.sub_requests, b.sub_requests) << where;
  EXPECT_EQ(a.bytes_read, b.bytes_read) << where;
  EXPECT_EQ(a.bytes_written, b.bytes_written) << where;
  EXPECT_EQ(a.busy_time, b.busy_time) << where;
  EXPECT_EQ(a.queue_wait, b.queue_wait) << where;
  EXPECT_EQ(a.bytes_wasted, b.bytes_wasted) << where;
}

/// Asserts the two runs are observably identical: replay aggregates,
/// per-server and per-job ledgers, and every byte of every server's stores.
void expect_equivalent(const RunOutput& serial, const RunOutput& batched) {
  ASSERT_TRUE(serial.status.is_ok()) << serial.status.to_string();
  ASSERT_TRUE(batched.status.is_ok()) << batched.status.to_string();
  const workloads::ReplayResult& a = serial.result;
  const workloads::ReplayResult& b = batched.result;

  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.latency_p50, b.latency_p50);
  EXPECT_EQ(a.latency_p99, b.latency_p99);
  EXPECT_EQ(a.goodput_bytes, b.goodput_bytes);
  EXPECT_EQ(a.shed_requests, b.shed_requests);
  EXPECT_EQ(a.failed_requests, b.failed_requests);
  EXPECT_EQ(a.late_requests, b.late_requests);

  ASSERT_EQ(a.server_stats.size(), b.server_stats.size());
  for (std::size_t s = 0; s < a.server_stats.size(); ++s) {
    expect_stats_equal(a.server_stats[s], b.server_stats[s],
                       "server " + std::to_string(s));
  }

  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    const qos::TenantLatency& ta = a.tenants[t];
    const qos::TenantLatency& tb = b.tenants[t];
    EXPECT_EQ(ta.requests, tb.requests) << "tenant " << t;
    EXPECT_EQ(ta.bytes, tb.bytes) << "tenant " << t;
    EXPECT_EQ(ta.goodput_bytes, tb.goodput_bytes) << "tenant " << t;
    EXPECT_EQ(ta.shed, tb.shed) << "tenant " << t;
    EXPECT_EQ(ta.failed, tb.failed) << "tenant " << t;
    EXPECT_EQ(ta.late, tb.late) << "tenant " << t;
  }

  // Per-job server ledgers and the byte-accurate content plane.
  ASSERT_EQ(serial.pfs->num_servers(), batched.pfs->num_servers());
  ASSERT_EQ(serial.pfs->mds().file_count(), batched.pfs->mds().file_count());
  for (std::size_t s = 0; s < serial.pfs->num_servers(); ++s) {
    const pfs::DataServer& sa = serial.pfs->data_server(s);
    const pfs::DataServer& sb = batched.pfs->data_server(s);
    const auto& rows_a = sa.sim().job_stats();
    const auto& rows_b = sb.sim().job_stats();
    ASSERT_EQ(rows_a.size(), rows_b.size()) << "server " << s;
    for (std::size_t j = 0; j < rows_a.size(); ++j) {
      const std::string where = "server " + std::to_string(s) + " job " + std::to_string(j);
      EXPECT_EQ(rows_a[j].sub_requests, rows_b[j].sub_requests) << where;
      EXPECT_EQ(rows_a[j].bytes_read, rows_b[j].bytes_read) << where;
      EXPECT_EQ(rows_a[j].bytes_written, rows_b[j].bytes_written) << where;
      EXPECT_EQ(rows_a[j].busy_time, rows_b[j].busy_time) << where;
      EXPECT_EQ(rows_a[j].queue_wait, rows_b[j].queue_wait) << where;
      EXPECT_EQ(rows_a[j].bytes_wasted, rows_b[j].bytes_wasted) << where;
    }
    for (common::FileId f = 0; f < serial.pfs->mds().file_count(); ++f) {
      const pfs::ExtentStore* store_a = sa.store(f);
      const pfs::ExtentStore* store_b = sb.store(f);
      ASSERT_EQ(store_a == nullptr, store_b == nullptr)
          << "server " << s << " file " << f;
      if (store_a == nullptr) continue;
      const std::string where = "server " + std::to_string(s) + " file " + std::to_string(f);
      EXPECT_EQ(store_a->stored_bytes(), store_b->stored_bytes()) << where;
      EXPECT_EQ(store_a->extent_count(), store_b->extent_count()) << where;
      ASSERT_EQ(store_a->end_offset(), store_b->end_offset()) << where;
      EXPECT_EQ(store_a->read(0, store_a->end_offset()),
                store_b->read(0, store_b->end_offset()))
          << where;
    }
  }
}

// --------------------------------------------------- replay-level sweeps

class BatchEquivalence : public ::testing::TestWithParam<ComboSpec> {};

TEST_P(BatchEquivalence, BatchedReplayMatchesSerial) {
  const ComboSpec combo = GetParam();
  const trace::Trace trace = make_trace(combo.workload);
  RunOutput serial = run_combo(combo, trace, /*batch_requests=*/false);
  RunOutput batched = run_combo(combo, trace, /*batch_requests=*/true);
  expect_equivalent(serial, batched);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, BatchEquivalence,
    ::testing::Values(
        ComboSpec{"DEF", "ior"}, ComboSpec{"MHA", "ior"}, ComboSpec{"MHA", "dlpipe"},
        ComboSpec{"DEF", "ior", sched::SchedulerKind::kLoadAware, true},
        ComboSpec{"MHA", "ior", sched::SchedulerKind::kHedgedRead, true},
        ComboSpec{"MHA", "dlpipe", sched::SchedulerKind::kLoadAware, true},
        ComboSpec{"DEF", "ior", sched::SchedulerKind::kFcfs, false, true, false},
        ComboSpec{"MHA", "ior", sched::SchedulerKind::kFcfs, false, true, true},
        ComboSpec{"MHA", "ior", sched::SchedulerKind::kFcfs, false, false, true},
        ComboSpec{"MHA", "dlpipe", sched::SchedulerKind::kFcfs, false, true, true}),
    combo_name);

// Thread-count invariance: the same combos fanned out on an 8-thread pool
// must report the results the 1-thread loop above produced — replay is
// deterministic and the batch path shares nothing across cells.
TEST(BatchEquivalenceThreads, EightThreadPoolMatchesSerialLoop) {
  const std::vector<ComboSpec> combos = {
      ComboSpec{"DEF", "ior"},
      ComboSpec{"MHA", "dlpipe"},
      ComboSpec{"MHA", "ior", sched::SchedulerKind::kLoadAware, true},
      ComboSpec{"MHA", "ior", sched::SchedulerKind::kFcfs, false, true, true},
  };
  std::vector<RunOutput> serial;
  for (const ComboSpec& combo : combos) {
    serial.push_back(run_combo(combo, make_trace(combo.workload), true));
  }
  const std::size_t saved = exec::default_threads();
  exec::set_default_threads(8);
  auto pooled = exec::default_pool().parallel_map(combos.size(), [&](std::size_t i) {
    return run_combo(combos[i], make_trace(combos[i].workload), true);
  });
  exec::set_default_threads(saved);
  for (std::size_t i = 0; i < combos.size(); ++i) {
    expect_equivalent(serial[i], pooled[i]);
  }
}

// ------------------------------------------------ pfs-level direct tests

struct PfsWorld {
  pfs::HybridPfs pfs{sim::ClusterConfig{}};
  common::FileId file = 0;
  PfsWorld() { file = *pfs.create_file("direct.f"); }
};

pfs::BatchRequest make_req(common::FileId file, common::Offset offset,
                           common::ByteCount size, std::uint32_t group,
                           const std::uint8_t* write_data = nullptr,
                           std::uint8_t* read_out = nullptr) {
  pfs::BatchRequest r;
  r.file = file;
  r.offset = offset;
  r.size = size;
  r.group = group;
  r.write_data = write_data;
  r.read_out = read_out;
  return r;
}

TEST(BatchDirect, BadFileIdMatchesSerialStatus) {
  PfsWorld world;
  std::vector<std::uint8_t> data(4_KiB, 0x11);
  const common::Status serial =
      world.pfs.write(world.file + 1, 0, data.data(), data.size(), 0.0).status();
  ASSERT_FALSE(serial.is_ok());

  std::vector<pfs::BatchRequest> reqs = {
      make_req(world.file + 1, 0, data.size(), 0, data.data())};
  pfs::BatchResultVec results;
  world.pfs.write_batch(reqs, results);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].status.is_ok());
  EXPECT_EQ(results[0].status.to_string(), serial.to_string());
  EXPECT_FALSE(results[0].skipped);
}

TEST(BatchDirect, GroupMembersAfterFailureAreSkipped) {
  PfsWorld world;
  std::vector<std::uint8_t> data(8_KiB, 0x22);
  // Group 0: a failing member (bad file) then a sibling that must be
  // skipped, never dispatched.  Group 1: an independent request that must
  // still land.
  std::vector<pfs::BatchRequest> reqs = {
      make_req(world.file + 7, 0, 4_KiB, 0, data.data()),
      make_req(world.file, 4_KiB, 4_KiB, 0, data.data()),
      make_req(world.file, 64_KiB, 4_KiB, 1, data.data())};
  pfs::BatchResultVec results;
  world.pfs.write_batch(reqs, results);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].status.is_ok());
  EXPECT_TRUE(results[1].skipped);
  EXPECT_TRUE(results[1].status.is_ok());
  EXPECT_EQ(results[1].io.sub_requests, 0u);
  EXPECT_FALSE(results[2].skipped);
  EXPECT_TRUE(results[2].status.is_ok());
  EXPECT_GT(results[2].io.sub_requests, 0u);

  // The skipped member wrote nothing anywhere.
  common::ByteCount stored = 0;
  for (std::size_t s = 0; s < world.pfs.num_servers(); ++s) {
    stored += world.pfs.data_server(s).stored_bytes(world.file);
  }
  EXPECT_EQ(stored, 4_KiB);
}

TEST(BatchDirect, ZeroSizeRequestMatchesSerial) {
  PfsWorld world;
  std::vector<std::uint8_t> data(1, 0x33);
  auto serial = world.pfs.write(world.file, 0, data.data(), 0, 0.0);
  std::vector<pfs::BatchRequest> reqs = {make_req(world.file, 0, 0, 0, data.data())};
  pfs::BatchResultVec results;
  world.pfs.write_batch(reqs, results);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status.is_ok(), serial.is_ok());
  if (serial.is_ok()) {
    EXPECT_EQ(results[0].io.sub_requests, serial->sub_requests);
    EXPECT_EQ(results[0].io.completion, serial->completion);
  }
}

TEST(BatchDirect, OverlappingWritesResolveInBatchOrder) {
  // Two same-batch writes overlapping by half: later-in-batch must win on
  // the overlap, exactly as two serial writes would.
  std::vector<std::uint8_t> first(8_KiB, 0xAA);
  std::vector<std::uint8_t> second(8_KiB, 0xBB);

  PfsWorld serial_world;
  (void)serial_world.pfs.write(serial_world.file, 0, first.data(), first.size(), 0.0);
  (void)serial_world.pfs.write(serial_world.file, 4_KiB, second.data(), second.size(),
                               0.0);

  PfsWorld batch_world;
  std::vector<pfs::BatchRequest> reqs = {
      make_req(batch_world.file, 0, first.size(), 0, first.data()),
      make_req(batch_world.file, 4_KiB, second.size(), 1, second.data())};
  pfs::BatchResultVec results;
  batch_world.pfs.write_batch(reqs, results);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].status.is_ok());
  ASSERT_TRUE(results[1].status.is_ok());

  ASSERT_EQ(serial_world.pfs.num_servers(), batch_world.pfs.num_servers());
  for (std::size_t s = 0; s < serial_world.pfs.num_servers(); ++s) {
    const pfs::ExtentStore* store_a = serial_world.pfs.data_server(s).store(serial_world.file);
    const pfs::ExtentStore* store_b = batch_world.pfs.data_server(s).store(batch_world.file);
    ASSERT_EQ(store_a == nullptr, store_b == nullptr) << "server " << s;
    if (store_a == nullptr) continue;
    ASSERT_EQ(store_a->end_offset(), store_b->end_offset()) << "server " << s;
    EXPECT_EQ(store_a->read(0, store_a->end_offset()),
              store_b->read(0, store_b->end_offset()))
        << "server " << s;
  }
}

TEST(BatchDirect, CorruptionFallsBackToSerialStatus) {
  // Seed identical content into two worlds, corrupt the same stored byte in
  // both, and compare the batched read (which verifies coalesced runs, then
  // falls back to the serial path on failure) against serial reads.
  std::vector<std::uint8_t> data(256_KiB);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  PfsWorld serial_world;
  PfsWorld batch_world;
  (void)serial_world.pfs.write(serial_world.file, 0, data.data(), data.size(), 0.0);
  (void)batch_world.pfs.write(batch_world.file, 0, data.data(), data.size(), 0.0);
  for (pfs::HybridPfs* p : {&serial_world.pfs, &batch_world.pfs}) {
    pfs::ExtentStore* store = p->data_server(0).mutable_store(0);
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->corrupt_flip(1024, 0x40));
  }

  std::vector<std::uint8_t> serial_out(data.size(), 0xEE);
  common::Status first_failure;
  common::Offset pos = 0;
  for (std::size_t i = 0; i < 4; ++i, pos += 64_KiB) {
    auto r = serial_world.pfs.read(serial_world.file, pos, serial_out.data() + pos,
                                   64_KiB, 0.0);
    if (!r.is_ok() && first_failure.is_ok()) first_failure = r.status();
  }
  ASSERT_FALSE(first_failure.is_ok());

  std::vector<std::uint8_t> batch_out(data.size(), 0xEE);
  std::vector<pfs::BatchRequest> reqs;
  for (std::size_t i = 0; i < 4; ++i) {
    reqs.push_back(make_req(batch_world.file, static_cast<common::Offset>(i) * 64_KiB,
                            64_KiB, static_cast<std::uint32_t>(i), nullptr,
                            batch_out.data() + i * 64_KiB));
  }
  pfs::BatchResultVec results;
  batch_world.pfs.read_batch(reqs, results);
  ASSERT_EQ(results.size(), 4u);
  std::size_t failures = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (!results[i].status.is_ok()) {
      ++failures;
      EXPECT_EQ(results[i].status.to_string(), first_failure.to_string());
    }
  }
  EXPECT_EQ(failures, 1u);
  // Bytes delivered are identical to the serial reads (including the
  // untouched destination of the failing request).
  EXPECT_EQ(batch_out, serial_out);
}

}  // namespace
}  // namespace mha
