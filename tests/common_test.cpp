#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/crc32.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace mha::common {
namespace {

using namespace mha::common::literals;

// ---------------------------------------------------------------- units ---

TEST(Units, LiteralsMultiplyCorrectly) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(64_KiB, 65536u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(1_GiB, 1073741824u);
}

TEST(Units, FormatExactMultiples) {
  EXPECT_EQ(format_bytes(0), "0B");
  EXPECT_EQ(format_bytes(17), "17B");
  EXPECT_EQ(format_bytes(1024), "1KiB");
  EXPECT_EQ(format_bytes(64_KiB), "64KiB");
  EXPECT_EQ(format_bytes(3_MiB), "3MiB");
  EXPECT_EQ(format_bytes(2_GiB), "2GiB");
}

TEST(Units, FormatFractional) {
  EXPECT_EQ(format_bytes(1536), "1.50KiB");
  EXPECT_EQ(format_bytes(1_MiB + 512_KiB), "1.50MiB");
}

TEST(Units, ParseAcceptsSuffixForms) {
  EXPECT_EQ(parse_bytes("64K"), 64_KiB);
  EXPECT_EQ(parse_bytes("64KiB"), 64_KiB);
  EXPECT_EQ(parse_bytes("64kb"), 64_KiB);
  EXPECT_EQ(parse_bytes("2M"), 2_MiB);
  EXPECT_EQ(parse_bytes("1GiB"), 1_GiB);
  EXPECT_EQ(parse_bytes("512"), 512u);
  EXPECT_EQ(parse_bytes("512B"), 512u);
  EXPECT_EQ(parse_bytes("  8K  "), 8_KiB);
}

TEST(Units, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_bytes("").has_value());
  EXPECT_FALSE(parse_bytes("KiB").has_value());
  EXPECT_FALSE(parse_bytes("12Q").has_value());
  EXPECT_FALSE(parse_bytes("-5K").has_value());
  EXPECT_FALSE(parse_bytes("1.5K").has_value());
}

TEST(Units, ParseRejectsOverflow) {
  EXPECT_FALSE(parse_bytes("99999999999999999999").has_value());
  EXPECT_FALSE(parse_bytes("18446744073709551615G").has_value());
}

TEST(Units, ParseFormatRoundTrip) {
  for (ByteCount v : {1_KiB, 4_KiB, 64_KiB, 640_KiB, 1_MiB, 12_MiB, 3_GiB}) {
    EXPECT_EQ(parse_bytes(format_bytes(v)), v) << format_bytes(v);
  }
}

TEST(Units, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth(100.0), "100.00 B/s");
  EXPECT_EQ(format_bandwidth(2.0 * 1024 * 1024), "2.00 MiB/s");
}

// ---------------------------------------------------------------- crc32 ---

TEST(Crc32, KnownVectors) {
  // Standard IEEE CRC-32 test vectors.
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"), 0x414FA339u);
}

TEST(Crc32, ChainedEqualsWhole) {
  const std::string data = "hello, parallel file systems";
  const std::uint32_t whole = crc32(data);
  const std::uint32_t part = crc32(data.substr(6), crc32(data.substr(0, 6)));
  EXPECT_EQ(whole, part);
}

TEST(Crc32, SensitiveToSingleBit) {
  std::string a = "abcdefg";
  std::string b = a;
  b[3] ^= 1;
  EXPECT_NE(crc32(a), crc32(b));
}

// ------------------------------------------------------------------ rng ---

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextInCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values should appear in 500 draws
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end()), b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------- stats ---

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats whole, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    whole.add(x);
    (i < 20 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeEmptyEitherSide) {
  OnlineStats filled;
  for (double x : {1.0, 3.0, 5.0}) filled.add(x);
  const double mean = filled.mean();
  const double variance = filled.variance();

  OnlineStats empty;
  filled.merge(empty);  // merging nothing changes nothing
  EXPECT_EQ(filled.count(), 3u);
  EXPECT_DOUBLE_EQ(filled.mean(), mean);
  EXPECT_DOUBLE_EQ(filled.variance(), variance);
  EXPECT_DOUBLE_EQ(filled.min(), 1.0);
  EXPECT_DOUBLE_EQ(filled.max(), 5.0);

  OnlineStats target;
  target.merge(filled);  // merging into empty adopts the other side whole
  EXPECT_EQ(target.count(), 3u);
  EXPECT_DOUBLE_EQ(target.mean(), mean);
  EXPECT_DOUBLE_EQ(target.variance(), variance);
  EXPECT_DOUBLE_EQ(target.min(), 1.0);
  EXPECT_DOUBLE_EQ(target.max(), 5.0);

  OnlineStats both;
  both.merge(OnlineStats{});  // empty + empty stays empty, not NaN
  EXPECT_EQ(both.count(), 0u);
  EXPECT_EQ(both.mean(), 0.0);
  EXPECT_EQ(both.variance(), 0.0);
}

TEST(OnlineStats, MergeSingleSamples) {
  OnlineStats a, b;
  a.add(2.0);
  b.add(8.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 18.0, 1e-12);  // ((2-5)^2 + (8-5)^2) / (2-1)
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
}

TEST(Percentiles, NearestRank) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(p.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
}

TEST(Percentiles, EdgeRanks) {
  Percentiles empty;
  EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);

  Percentiles single;
  single.add(42.0);  // one sample answers every rank
  EXPECT_DOUBLE_EQ(single.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(single.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(single.percentile(100), 42.0);

  Percentiles two;
  two.add(10.0);
  two.add(20.0);
  EXPECT_DOUBLE_EQ(two.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(two.percentile(100), 20.0);
  // Insertion order is irrelevant: ranks come from the sorted samples.
  Percentiles reversed;
  reversed.add(20.0);
  reversed.add(10.0);
  EXPECT_DOUBLE_EQ(reversed.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(reversed.percentile(100), 20.0);
}

TEST(SizeHistogram, BucketsByPowerOfTwo) {
  EXPECT_EQ(SizeHistogram::bucket_of(0), 0u);
  EXPECT_EQ(SizeHistogram::bucket_of(1), 0u);
  EXPECT_EQ(SizeHistogram::bucket_of(2), 1u);
  EXPECT_EQ(SizeHistogram::bucket_of(1023), 9u);
  EXPECT_EQ(SizeHistogram::bucket_of(1024), 10u);
}

TEST(SizeHistogram, CountsAndDump) {
  SizeHistogram h;
  h.add(16);
  h.add(16);
  h.add(64_KiB);
  EXPECT_EQ(h.count(), 3u);
  const std::string dump = h.to_string();
  EXPECT_NE(dump.find("2"), std::string::npos);
}

// --------------------------------------------------------------- result ---

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::not_found("missing thing");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.to_string(), "not_found: missing thing");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::io_error("disk on fire");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIoError);
  EXPECT_EQ(r.value_or(-1), -1);
}

Status propagate_helper(bool fail) {
  MHA_RETURN_IF_ERROR(fail ? Status::corruption("inner") : Status::ok());
  return Status::ok();
}

TEST(Result, ReturnIfErrorMacro) {
  EXPECT_TRUE(propagate_helper(false).is_ok());
  EXPECT_EQ(propagate_helper(true).code(), ErrorCode::kCorruption);
}

TEST(Types, OpAndServerKindNames) {
  EXPECT_STREQ(to_string(OpType::kRead), "read");
  EXPECT_STREQ(to_string(OpType::kWrite), "write");
  EXPECT_STREQ(to_string(ServerKind::kHdd), "HServer");
  EXPECT_STREQ(to_string(ServerKind::kSsd), "SServer");
}

}  // namespace
}  // namespace mha::common
