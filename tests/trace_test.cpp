#include <gtest/gtest.h>

#include <cstdio>

#include "trace/analysis.hpp"
#include "trace/record.hpp"
#include "trace/trace_io.hpp"

namespace mha::trace {
namespace {

using common::OpType;

TraceRecord rec(int rank, OpType op, common::Offset offset, common::ByteCount size,
                common::Seconds t = 0.0, common::Seconds dur = 0.0) {
  TraceRecord r;
  r.pid = 1000 + static_cast<std::uint32_t>(rank);
  r.rank = rank;
  r.fd = 3;
  r.op = op;
  r.offset = offset;
  r.size = size;
  r.t_start = t;
  r.duration = dur;
  return r;
}

// --------------------------------------------------------------- record ---

TEST(TraceRecord, SortByOffsetStableTiebreaks) {
  std::vector<TraceRecord> records{rec(1, OpType::kRead, 200, 10, 0.5),
                                   rec(0, OpType::kRead, 100, 10, 0.9),
                                   rec(2, OpType::kRead, 100, 10, 0.1)};
  sort_by_offset(records);
  EXPECT_EQ(records[0].rank, 2);  // same offset, earlier time first
  EXPECT_EQ(records[1].rank, 0);
  EXPECT_EQ(records[2].rank, 1);
}

TEST(TraceRecord, SortByTime) {
  std::vector<TraceRecord> records{rec(0, OpType::kRead, 0, 1, 3.0),
                                   rec(1, OpType::kRead, 0, 1, 1.0),
                                   rec(2, OpType::kRead, 0, 1, 2.0)};
  sort_by_time(records);
  EXPECT_EQ(records[0].rank, 1);
  EXPECT_EQ(records[2].rank, 0);
}

TEST(TraceRecord, ExtentAndMaxSize) {
  std::vector<TraceRecord> records{rec(0, OpType::kWrite, 100, 50),
                                   rec(0, OpType::kWrite, 10, 200)};
  EXPECT_EQ(extent_end(records), 210u);
  EXPECT_EQ(max_request_size(records), 200u);
  EXPECT_EQ(extent_end({}), 0u);
  EXPECT_EQ(max_request_size({}), 0u);
}

// ------------------------------------------------------------------ csv ---

TEST(TraceIo, CsvRoundTrip) {
  Trace trace;
  trace.file_name = "app.dat";
  trace.records = {rec(0, OpType::kRead, 0, 16, 0.001, 0.0005),
                   rec(1, OpType::kWrite, 131056, 131072, 0.002, 0.001)};
  auto parsed = from_csv(to_csv(trace));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->file_name, "app.dat");
  ASSERT_EQ(parsed->records.size(), 2u);
  EXPECT_EQ(parsed->records[0], trace.records[0]);
  EXPECT_EQ(parsed->records[1], trace.records[1]);
}

TEST(TraceIo, RejectsMissingHeader) {
  EXPECT_FALSE(from_csv("1,0,3,R,0,16,0,0\n").is_ok());
}

TEST(TraceIo, RejectsMalformedRow) {
  const std::string text = "# mha-trace v1 file=f\n1,0,3,X,0,16,0,0\n";
  EXPECT_FALSE(from_csv(text).is_ok());
  const std::string truncated = "# mha-trace v1 file=f\n1,0,3,R,0\n";
  EXPECT_FALSE(from_csv(truncated).is_ok());
}

TEST(TraceIo, SkipsCommentsAndColumnHeader) {
  const std::string text =
      "# mha-trace v1 file=f\npid,rank,fd,op,offset,size,t_start,duration\n"
      "# a comment\n1,0,3,R,5,16,0.1,0.0\n";
  auto parsed = from_csv(text);
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed->records.size(), 1u);
  EXPECT_EQ(parsed->records[0].offset, 5u);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "trace_io_test.csv";
  Trace trace;
  trace.file_name = "x";
  trace.records = {rec(0, OpType::kWrite, 7, 9, 0.25)};
  ASSERT_TRUE(write_csv_file(trace, path).is_ok());
  auto back = read_csv_file(path);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back->records, trace.records);
  std::remove(path.c_str());
  EXPECT_FALSE(read_csv_file(path).is_ok());
}

TEST(TraceIo, MergeSortsByTimeAndChecksFileName) {
  Trace a, b;
  a.file_name = b.file_name = "shared";
  a.records = {rec(0, OpType::kRead, 0, 1, 2.0)};
  b.records = {rec(1, OpType::kRead, 10, 1, 1.0)};
  auto merged = merge({a, b});
  ASSERT_TRUE(merged.is_ok());
  ASSERT_EQ(merged->records.size(), 2u);
  EXPECT_EQ(merged->records[0].rank, 1);

  Trace c;
  c.file_name = "other";
  EXPECT_FALSE(merge({a, c}).is_ok());
  EXPECT_FALSE(merge({}).is_ok());
}

// ------------------------------------------------------------- analysis ---

TEST(Analysis, ConcurrencyCountsSimultaneousRequests) {
  // Three at t=0, one at t=1 (far outside the window).
  std::vector<TraceRecord> records{rec(0, OpType::kRead, 0, 1, 0.0),
                                   rec(1, OpType::kRead, 10, 1, 0.0),
                                   rec(2, OpType::kRead, 20, 1, 0.0),
                                   rec(0, OpType::kRead, 30, 1, 1.0)};
  const auto conc = request_concurrency(records);
  EXPECT_EQ(conc[0], 3u);
  EXPECT_EQ(conc[1], 3u);
  EXPECT_EQ(conc[2], 3u);
  EXPECT_EQ(conc[3], 1u);
}

TEST(Analysis, ConcurrencyUsesDurationsWhenPresent) {
  // Long-running request overlaps a later one.
  std::vector<TraceRecord> records{rec(0, OpType::kRead, 0, 1, 0.0, 0.5),
                                   rec(1, OpType::kRead, 10, 1, 0.4, 0.0)};
  const auto conc = request_concurrency(records);
  EXPECT_EQ(conc[0], 2u);
  EXPECT_EQ(conc[1], 2u);
}

TEST(Analysis, ConcurrencyWindowConfigurable) {
  std::vector<TraceRecord> records{rec(0, OpType::kRead, 0, 1, 0.0),
                                   rec(1, OpType::kRead, 10, 1, 0.010)};
  AnalysisOptions narrow;
  narrow.window = 1e-3;
  EXPECT_EQ(request_concurrency(records, narrow)[0], 1u);
  AnalysisOptions wide;
  wide.window = 0.05;
  EXPECT_EQ(request_concurrency(records, wide)[0], 2u);
}

TEST(Analysis, ConcurrencyEmptyInput) {
  EXPECT_TRUE(request_concurrency({}).empty());
}

TEST(Analysis, SummarizeAggregates) {
  std::vector<TraceRecord> records{rec(0, OpType::kRead, 0, 100),
                                   rec(1, OpType::kWrite, 100, 300),
                                   rec(0, OpType::kRead, 400, 100)};
  const TraceSummary s = summarize(records);
  EXPECT_EQ(s.num_requests, 3u);
  EXPECT_EQ(s.num_reads, 2u);
  EXPECT_EQ(s.num_writes, 1u);
  EXPECT_EQ(s.bytes_read, 200u);
  EXPECT_EQ(s.bytes_written, 300u);
  EXPECT_EQ(s.min_size, 100u);
  EXPECT_EQ(s.max_size, 300u);
  EXPECT_NEAR(s.mean_size, 500.0 / 3.0, 1e-9);
  EXPECT_EQ(s.distinct_sizes, 2u);
  EXPECT_EQ(s.extent_end, 500u);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(Analysis, UniformDetection) {
  std::vector<TraceRecord> uniform{rec(0, OpType::kRead, 0, 64), rec(1, OpType::kRead, 64, 64)};
  EXPECT_TRUE(is_uniform(uniform));
  std::vector<TraceRecord> mixed_size{rec(0, OpType::kRead, 0, 64), rec(1, OpType::kRead, 64, 128)};
  EXPECT_FALSE(is_uniform(mixed_size));
  std::vector<TraceRecord> mixed_op{rec(0, OpType::kRead, 0, 64), rec(1, OpType::kWrite, 64, 64)};
  EXPECT_FALSE(is_uniform(mixed_op));
  EXPECT_TRUE(is_uniform({}));
}

}  // namespace
}  // namespace mha::trace
