// Layout schemes and the replayer, exercised together: data integrity under
// every scheme, and the paper's qualitative performance orderings.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "layouts/scheme.hpp"
#include "trace/analysis.hpp"
#include "workloads/apps.hpp"
#include "workloads/ior.hpp"
#include "workloads/replayer.hpp"

namespace mha::layouts {
namespace {

using common::OpType;
using namespace mha::common::literals;

sim::ClusterConfig paper_cluster() {
  sim::ClusterConfig c;
  c.num_hservers = 6;
  c.num_sservers = 2;
  return c;
}

trace::Trace small_mixed_trace(OpType op, const std::string& name = "mix.dat") {
  workloads::IorMixedSizesConfig config;
  config.num_procs = 8;
  config.request_sizes = {32_KiB, 128_KiB};
  config.file_size = 24_MiB;
  config.op = op;
  config.file_name = name;
  config.seed = 77;
  return workloads::ior_mixed_sizes(config);
}

// ------------------------------------------------------------ integrity ---

class SchemeIntegrityTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<LayoutScheme> make(const std::string& name) {
    if (name == "DEF") return make_def();
    if (name == "AAL") return make_aal();
    if (name == "HARL") return make_harl();
    return make_mha();
  }
};

// Every scheme must serve byte-identical data through its deployment, for
// both read-heavy and write-then-read flows (verified against a shadow).
TEST_P(SchemeIntegrityTest, ReadsVerifyAgainstShadow) {
  auto scheme = make(GetParam());
  workloads::ReplayOptions options;
  options.verify_data = true;
  auto result = workloads::run_scheme(*scheme, paper_cluster(),
                                      small_mixed_trace(OpType::kRead), options);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_GT(result->bytes_read, 0u);
}

TEST_P(SchemeIntegrityTest, WritesThenReadsVerify) {
  auto scheme = make(GetParam());
  // Build a write trace, then append a read-back of every written extent.
  trace::Trace trace = small_mixed_trace(OpType::kWrite);
  const std::size_t writes = trace.records.size();
  double t = trace.records.back().t_start + 1.0;
  for (std::size_t i = 0; i < writes; ++i) {
    trace::TraceRecord r = trace.records[i];
    r.op = OpType::kRead;
    r.t_start = t;
    t += 1e-3;
    trace.records.push_back(r);
  }
  workloads::ReplayOptions options;
  options.verify_data = true;
  options.mode = workloads::ReplayMode::kSynchronous;
  auto result = workloads::run_scheme(*scheme, paper_cluster(), trace, options);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->bytes_read, result->bytes_written);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeIntegrityTest,
                         ::testing::Values("DEF", "AAL", "HARL", "MHA"));

// ------------------------------------------------------------- ordering ---

double bandwidth(LayoutScheme& scheme, const trace::Trace& trace) {
  auto result = workloads::run_scheme(scheme, paper_cluster(), trace, {});
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return result.is_ok() ? result->aggregate_bandwidth : 0.0;
}

TEST(SchemeOrdering, MhaBeatsDefAndHarlOnPaperWorkload) {
  // The Fig. 7 shape: 32 processes, 128 KiB + 256 KiB mix.
  for (OpType op : {OpType::kRead, OpType::kWrite}) {
    workloads::IorMixedSizesConfig config;
    config.num_procs = 32;
    config.request_sizes = {128_KiB, 256_KiB};
    config.file_size = 64_MiB;
    config.op = op;
    config.file_name = "fig7.dat";
    const auto trace = workloads::ior_mixed_sizes(config);
    auto def = make_def();
    auto harl = make_harl();
    auto mha = make_mha();
    const double bw_def = bandwidth(*def, trace);
    const double bw_harl = bandwidth(*harl, trace);
    const double bw_mha = bandwidth(*mha, trace);
    EXPECT_GT(bw_mha, bw_def) << to_string(op);
    // MHA >= HARL up to simulator noise (the two tie when HARL's compromise
    // pair happens to match the per-class optima, as on 2x size mixes).
    EXPECT_GE(bw_mha, bw_harl * 0.97) << to_string(op);
    EXPECT_GT(bw_harl, bw_def) << to_string(op);
  }
}

TEST(SchemeOrdering, MhaNearHarlOnSmallMixedTrace) {
  // On tiny workloads MHA's per-region optimization cannot account for
  // cross-region SServer contention (Algorithm 2 optimizes each region in
  // isolation — a limitation inherited from the paper), so we only require
  // MHA to stay within a few percent of HARL while beating DEF.
  for (OpType op : {OpType::kRead, OpType::kWrite}) {
    auto trace = small_mixed_trace(op);
    auto def = make_def();
    auto harl = make_harl();
    auto mha = make_mha();
    const double bw_def = bandwidth(*def, trace);
    const double bw_harl = bandwidth(*harl, trace);
    const double bw_mha = bandwidth(*mha, trace);
    EXPECT_GT(bw_mha, bw_def) << to_string(op);
    EXPECT_GE(bw_mha, bw_harl * 0.94) << to_string(op);
    EXPECT_GT(bw_harl, bw_def * 0.95) << to_string(op);
  }
}

TEST(SchemeOrdering, MhaComparableToHarlOnUniformPattern) {
  // "MHA is comparable to HARL, because it degrades to HARL for uniform
  // access patterns."
  workloads::IorMixedSizesConfig config;
  config.num_procs = 8;
  config.request_sizes = {64_KiB};
  config.file_size = 16_MiB;
  config.file_name = "uniform.dat";
  const auto trace = workloads::ior_mixed_sizes(config);
  auto harl = make_harl();
  auto mha = make_mha();
  const double bw_harl = bandwidth(*harl, trace);
  const double bw_mha = bandwidth(*mha, trace);
  EXPECT_NEAR(bw_mha / bw_harl, 1.0, 0.15);
}

TEST(SchemeOrdering, MhaBeatsDefOnLanlPattern) {
  workloads::LanlConfig config;
  config.num_procs = 4;
  config.loops = 64;
  const auto trace = workloads::lanl_app2(config);
  auto def = make_def();
  auto mha = make_mha();
  EXPECT_GT(bandwidth(*mha, trace), bandwidth(*def, trace));
}

// ------------------------------------------------------------- replayer ---

TEST(Replayer, EmptyTraceRejected) {
  auto def = make_def();
  trace::Trace empty;
  empty.file_name = "f";
  EXPECT_FALSE(workloads::run_scheme(*def, paper_cluster(), empty, {}).is_ok());
}

TEST(Replayer, ModesAgreeOnBytes) {
  const auto trace = small_mixed_trace(OpType::kWrite);
  auto def_a = make_def();
  auto def_b = make_def();
  workloads::ReplayOptions sync;
  sync.mode = workloads::ReplayMode::kSynchronous;
  workloads::ReplayOptions indep;
  indep.mode = workloads::ReplayMode::kIndependent;
  auto a = workloads::run_scheme(*def_a, paper_cluster(), trace, sync);
  auto b = workloads::run_scheme(*def_b, paper_cluster(), trace, indep);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a->bytes_written, b->bytes_written);
  EXPECT_EQ(a->requests, b->requests);
  // Independent mode never waits at barriers, so it cannot be slower.
  EXPECT_LE(b->makespan, a->makespan + 1e-9);
}

TEST(Replayer, ServerStatsCoverAllServers) {
  const auto trace = small_mixed_trace(OpType::kWrite);
  auto def = make_def();
  auto result = workloads::run_scheme(*def, paper_cluster(), trace, {});
  ASSERT_TRUE(result.is_ok());
  ASSERT_EQ(result->server_stats.size(), 8u);
  common::ByteCount total = 0;
  for (const auto& st : result->server_stats) total += st.bytes_total();
  EXPECT_EQ(total, result->bytes_written);
}

TEST(Replayer, TraceRunCapturesApplicationTrace) {
  const auto trace = small_mixed_trace(OpType::kWrite);
  auto def = make_def();
  workloads::ReplayOptions options;
  options.trace_run = true;
  options.tracer_overhead = 1e-5;
  auto result = workloads::run_scheme(*def, paper_cluster(), trace, options);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->captured.records.size(), trace.records.size());
  EXPECT_EQ(result->captured.file_name, trace.file_name);
  // Captured durations are positive (virtual service time).
  EXPECT_GT(result->captured.records.front().duration, 0.0);
}

TEST(Replayer, CapturedTraceDrivesPipeline) {
  // The full paper workflow: profile run under DEF, feed the captured trace
  // to MHA, replay faster.
  const auto trace = small_mixed_trace(OpType::kWrite);
  auto def = make_def();
  workloads::ReplayOptions profiling;
  profiling.trace_run = true;
  auto first_run = workloads::run_scheme(*def, paper_cluster(), trace, profiling);
  ASSERT_TRUE(first_run.is_ok());

  auto mha = make_mha();
  auto second_run = workloads::run_scheme(*mha, paper_cluster(), first_run->captured, {});
  ASSERT_TRUE(second_run.is_ok()) << second_run.status().to_string();
  EXPECT_GT(second_run->aggregate_bandwidth, first_run->aggregate_bandwidth);
}

TEST(PopulateByte, DeterministicAndSpread) {
  EXPECT_EQ(populate_byte(0), populate_byte(0));
  int distinct = 0;
  std::set<std::uint8_t> seen;
  for (common::Offset o = 0; o < 1000; ++o) seen.insert(populate_byte(o));
  distinct = static_cast<int>(seen.size());
  EXPECT_GT(distinct, 100);  // not a constant pattern
}

// ------------------------------------------------------ scheme specifics ---

TEST(SchemeSpecifics, DefUsesFixed64KStripesEverywhere) {
  pfs::HybridPfs pfs(paper_cluster());
  auto def = make_def();
  const auto trace = small_mixed_trace(OpType::kWrite);
  ASSERT_TRUE(def->prepare(pfs, trace).is_ok());
  const auto& info = pfs.mds().info(*pfs.mds().lookup(trace.file_name));
  for (std::size_t i = 0; i < pfs.num_servers(); ++i) {
    EXPECT_EQ(info.layout.width(i), pfs::kDefaultStripe);
  }
}

TEST(SchemeSpecifics, AalStripeTracksMeanRequestSize) {
  // AAL: uniform stripe = mean request size / server count (4 KiB floor).
  pfs::HybridPfs pfs(paper_cluster());
  auto aal = make_aal();
  workloads::IorMixedSizesConfig config;
  config.num_procs = 4;
  config.request_sizes = {256_KiB};  // mean 256 KiB / 8 servers = 32 KiB
  config.file_size = 8_MiB;
  config.file_name = "aal.dat";
  const auto trace = workloads::ior_mixed_sizes(config);
  ASSERT_TRUE(aal->prepare(pfs, trace).is_ok());
  const auto& info = pfs.mds().info(*pfs.mds().lookup("aal.dat"));
  for (std::size_t i = 0; i < pfs.num_servers(); ++i) {
    EXPECT_EQ(info.layout.width(i), 32_KiB);  // heterogeneity-blind: uniform
  }
}

TEST(SchemeSpecifics, HarlCreatesOffsetRegionFiles) {
  pfs::HybridPfs pfs(paper_cluster());
  auto harl = make_harl();
  const auto trace = small_mixed_trace(OpType::kWrite);
  auto deployment = harl->prepare(pfs, trace);
  ASSERT_TRUE(deployment.is_ok());
  ASSERT_NE(deployment->interceptor, nullptr);
  std::size_t regions = 0;
  for (const std::string& name : pfs.mds().list_files()) {
    if (name.find(".harl.r") != std::string::npos) ++regions;
  }
  EXPECT_GE(regions, 2u);
  EXPECT_NE(deployment->description.find("offset regions"), std::string::npos);
}

TEST(SchemeSpecifics, MhaOptionsPropagate) {
  pfs::HybridPfs pfs(paper_cluster());
  core::MhaOptions options;
  options.reorganizer.region_suffix = ".custom.r";
  auto mha = make_mha(options);
  const auto trace = small_mixed_trace(OpType::kWrite);
  ASSERT_TRUE(mha->prepare(pfs, trace).is_ok());
  bool saw_custom = false;
  for (const std::string& name : pfs.mds().list_files()) {
    if (name.find(".custom.r") != std::string::npos) saw_custom = true;
  }
  EXPECT_TRUE(saw_custom);
}

TEST(SchemeSpecifics, PrepareFailsOnPreexistingFile) {
  pfs::HybridPfs pfs(paper_cluster());
  const auto trace = small_mixed_trace(OpType::kWrite);
  ASSERT_TRUE(pfs.create_file(trace.file_name).is_ok());
  for (auto& scheme : all_schemes()) {
    EXPECT_FALSE(scheme->prepare(pfs, trace).is_ok()) << scheme->name();
  }
}

TEST(SchemeSpecifics, CarlPlacesHotRegionsSsdOnlyAndStaysConsistent) {
  // Integrity under the exclusive-tier placement.
  auto carl = make_carl(0.5);
  workloads::ReplayOptions verify;
  verify.verify_data = true;
  auto result = workloads::run_scheme(*carl, paper_cluster(),
                                      small_mixed_trace(OpType::kRead), verify);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  // The paper's criticism (§VI): CARL's exclusive tiers waste parallelism,
  // so MHA must beat it on the same workload.
  auto trace = small_mixed_trace(OpType::kWrite);
  auto carl2 = make_carl(0.5);
  auto mha = make_mha();
  EXPECT_GT(bandwidth(*mha, trace), bandwidth(*carl2, trace));
}

TEST(AllSchemesFactory, ReturnsPaperOrder) {
  const auto schemes = all_schemes();
  ASSERT_EQ(schemes.size(), 4u);
  EXPECT_EQ(schemes[0]->name(), "DEF");
  EXPECT_EQ(schemes[1]->name(), "AAL");
  EXPECT_EQ(schemes[2]->name(), "HARL");
  EXPECT_EQ(schemes[3]->name(), "MHA");
}

}  // namespace
}  // namespace mha::layouts
