// Overload-resilience guard: breaker state machine, tiered shedding, retry
// tokens, deadline-propagated cancellation, and chaos-cell determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "exec/thread_pool.hpp"
#include "guard/breaker.hpp"
#include "guard/chaos.hpp"
#include "guard/guard.hpp"
#include "pfs/file_system.hpp"
#include "sim/cluster_sim.hpp"

namespace mha::guard {
namespace {

BreakerOptions fast_breaker() {
  BreakerOptions options;
  options.window = 8;
  options.min_samples = 4;
  options.failure_threshold = 0.5;
  options.open_cooldown = 0.2;
  options.probe_interval = 0.02;
  options.close_after = 3;
  return options;
}

// -------------------------------------------------- breaker state machine ---

TEST(CircuitBreaker, OpensAtWindowedFailureRateNotBefore) {
  CircuitBreaker breaker(fast_breaker());
  // Under min_samples the rate is untrusted: three straight failures alone
  // must not open.
  breaker.record(0.01, false);
  breaker.record(0.02, false);
  breaker.record(0.03, false);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_DOUBLE_EQ(breaker.failure_rate(), 0.0);  // untrusted yet
  breaker.record(0.04, true);
  // 3/4 >= 0.5 with min_samples met -> open.
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.counters().opens, 1u);
}

TEST(CircuitBreaker, NeverAdmitsWhileOpenBeforeCooldown) {
  CircuitBreaker breaker(fast_breaker());
  for (int i = 0; i < 4; ++i) breaker.record(0.01 * i, false);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  // Dense scan of the cooldown (which runs from the open at t=0.03): not a
  // single admission.
  for (double t = 0.04; t < 0.225; t += 0.001) {
    EXPECT_FALSE(breaker.allow(t)) << "admitted at t=" << t;
  }
  EXPECT_EQ(breaker.counters().probes, 0u);
}

TEST(CircuitBreaker, HalfOpenProbesOnCadenceAndClosesAfterSuccesses) {
  CircuitBreaker breaker(fast_breaker());
  for (int i = 0; i < 4; ++i) breaker.record(0.0, false);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  // Cooldown elapsed: the transition grants the first probe immediately.
  EXPECT_TRUE(breaker.allow(0.25));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.counters().half_opens, 1u);
  EXPECT_EQ(breaker.counters().probes, 1u);
  // Between probes everything is rejected.
  EXPECT_FALSE(breaker.allow(0.255));
  EXPECT_FALSE(breaker.allow(0.269));
  breaker.record(0.26, true);
  // Next probe only after probe_interval.
  EXPECT_TRUE(breaker.allow(0.28));
  breaker.record(0.285, true);
  EXPECT_TRUE(breaker.allow(0.31));
  breaker.record(0.315, true);  // third consecutive success
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.healthy());
  EXPECT_EQ(breaker.counters().closes, 1u);
  // Closing resets the outcome window: one old failure must not re-trip.
  breaker.record(0.3, false);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, ProbeFailureReopensAndRestartsCooldown) {
  CircuitBreaker breaker(fast_breaker());
  for (int i = 0; i < 4; ++i) breaker.record(0.0, false);
  ASSERT_TRUE(breaker.allow(0.25));  // half-open probe
  breaker.record(0.26, false);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.counters().opens, 2u);
  // The fresh cooldown counts from the reopen, not the original open.
  EXPECT_FALSE(breaker.allow(0.40));
  EXPECT_TRUE(breaker.allow(0.26 + 0.21));
}

TEST(CircuitBreaker, BacklogEwmaOpensWithoutAnyFailure) {
  BreakerOptions options = fast_breaker();
  options.backlog_unhealthy = 0.05;
  options.backlog_alpha = 0.5;
  CircuitBreaker breaker(options);
  // A browned-out server succeeds, slowly: all outcomes good, backlog up.
  breaker.record(0.01, true);
  breaker.observe_backlog(0.01, 0.02);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.observe_backlog(0.02, 0.2);
  breaker.observe_backlog(0.03, 0.2);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_DOUBLE_EQ(breaker.failure_rate(), 0.0);
}

// ------------------------------------------------- shedding + retry tokens ---

TEST(OverloadGuard, ShedsStrictlyByTierThreshold) {
  GuardOptions options;
  options.shed_backlog = {0.05, 0.20, 0.80};
  OverloadGuard guard(2, options);
  guard.set_job_tier(0, kTierBatch);
  guard.set_job_tier(1, kTierNormal);
  guard.set_job_tier(2, kTierInteractive);

  // Backlog between the batch and normal thresholds: only batch is shed.
  EXPECT_FALSE(guard.admit(0, 0.10));
  EXPECT_TRUE(guard.admit(1, 0.10));
  EXPECT_TRUE(guard.admit(2, 0.10));
  // Between normal and interactive: batch and normal shed.
  EXPECT_FALSE(guard.admit(0, 0.50));
  EXPECT_FALSE(guard.admit(1, 0.50));
  EXPECT_TRUE(guard.admit(2, 0.50));
  // Past every threshold: even interactive sheds.
  EXPECT_FALSE(guard.admit(2, 1.00));

  const GuardMetrics m = guard.metrics();
  EXPECT_EQ(m.admitted, 3u);
  EXPECT_EQ(m.shed[kTierBatch], 2u);
  EXPECT_EQ(m.shed[kTierNormal], 1u);
  EXPECT_EQ(m.shed[kTierInteractive], 1u);
  EXPECT_EQ(m.shed_total(), 4u);
  // An unmapped job defaults to the normal tier.
  EXPECT_EQ(guard.tier_of(99), kTierNormal);
}

TEST(OverloadGuard, RetryTokensExhaustThenRefillFromAdmissions) {
  GuardOptions options;
  options.retry_token_ratio = 0.5;
  options.retry_token_burst = 2.0;
  OverloadGuard guard(1, options);

  // The burst is the initial balance: exactly two tokens to spend.
  EXPECT_TRUE(guard.take_retry_token());
  EXPECT_TRUE(guard.take_retry_token());
  EXPECT_FALSE(guard.take_retry_token());
  // Two admissions earn one token (ratio 0.5)...
  EXPECT_TRUE(guard.admit(0, 0.0));
  EXPECT_FALSE(guard.take_retry_token());  // 0.5 < 1.0: still dry
  EXPECT_TRUE(guard.admit(0, 0.0));
  EXPECT_TRUE(guard.take_retry_token());
  // ...and the balance never exceeds the burst cap.
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(guard.admit(0, 0.0));
  EXPECT_TRUE(guard.take_retry_token());
  EXPECT_TRUE(guard.take_retry_token());
  EXPECT_FALSE(guard.take_retry_token());

  const GuardMetrics m = guard.metrics();
  EXPECT_EQ(m.retry_tokens_granted, 5u);
  EXPECT_EQ(m.retry_tokens_denied, 3u);
}

// ------------------------------------------- deadline-propagated cancel ---

TEST(OverloadGuard, DeadlineMissCancelsChargedSiblingsAndRestoresServers) {
  sim::ClusterConfig config;
  config.num_hservers = 2;
  config.num_sservers = 1;
  pfs::HybridPfs pfs(config);
  auto file = pfs.create_file("deadline");
  ASSERT_TRUE(file.is_ok());

  OverloadGuard guard(pfs.num_servers());
  pfs.set_guard(&guard);
  // A deadline no multi-server write can meet: the first sub-request's
  // completion already crosses it.
  pfs.set_active_deadline(1e-9);

  std::vector<std::uint8_t> data(256 * 1024, 0xCD);
  const auto before_table = pfs.stats_table();
  auto io = pfs.write(*file, 0, data.data(), data.size(), 0.0);
  EXPECT_FALSE(io.is_ok());

  const GuardMetrics m = guard.metrics();
  EXPECT_EQ(m.deadline_misses, 1u);
  // The charged sub-requests were all rewound LIFO — nothing wasted, every
  // byte rescued, and the per-server tables read as if nothing happened.
  EXPECT_GE(m.siblings_cancelled, 1u);
  EXPECT_EQ(m.siblings_wasted, 0u);
  EXPECT_GT(m.bytes_rescued, 0u);
  EXPECT_EQ(m.bytes_wasted, 0u);
  EXPECT_EQ(pfs.stats_table(), before_table);
  for (std::size_t s = 0; s < pfs.num_servers(); ++s) {
    EXPECT_EQ(pfs.server_stats(s).sub_requests, 0u);
    EXPECT_EQ(pfs.server_stats(s).bytes_wasted, 0u);
  }

  // With the deadline lifted the same request succeeds untouched.
  pfs.set_active_deadline(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(pfs.write(*file, 0, data.data(), data.size(), 1.0).is_ok());
}

TEST(StatsTable, ReportsWastedBytesColumn) {
  sim::ClusterConfig config;
  config.num_hservers = 1;
  config.num_sservers = 1;
  pfs::HybridPfs pfs(config);
  EXPECT_NE(pfs.stats_table().find("wasted"), std::string::npos);
}

// ----------------------------------------------------- chaos determinism ---

/// Field-by-field bitwise comparison of two chaos summaries.
void expect_same_cell(const ChaosCellResult& a, const ChaosCellResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.late, b.late);
  EXPECT_EQ(a.throughput_mib_s, b.throughput_mib_s);
  EXPECT_EQ(a.goodput_mib_s, b.goodput_mib_s);
  for (std::size_t t = 0; t < kTierCount; ++t) {
    EXPECT_EQ(a.requests_by_tier[t], b.requests_by_tier[t]);
    EXPECT_EQ(a.shed_by_tier[t], b.shed_by_tier[t]);
    EXPECT_EQ(a.goodput_by_tier[t], b.goodput_by_tier[t]);
  }
  EXPECT_EQ(a.guard_metrics.admitted, b.guard_metrics.admitted);
  EXPECT_EQ(a.guard_metrics.shed_total(), b.guard_metrics.shed_total());
  EXPECT_EQ(a.guard_metrics.breaker_opens, b.guard_metrics.breaker_opens);
  EXPECT_EQ(a.guard_metrics.bytes_rescued, b.guard_metrics.bytes_rescued);
  EXPECT_EQ(a.fault_metrics.transient_errors, b.fault_metrics.transient_errors);
  EXPECT_EQ(a.fault_metrics.retries, b.fault_metrics.retries);
}

TEST(ChaosCell, BitIdenticalAcrossThreadCounts) {
  ChaosOptions options;
  options.scale = 0.05;
  options.load = 2.0;

  // The bench's exact shape: naive and guarded cells fanned out on the
  // default pool.  One thread vs eight must agree bit for bit.
  const auto sweep = [&]() {
    return exec::default_pool().parallel_map(2, [&](std::size_t i) {
      ChaosOptions cell = options;
      cell.guarded = i == 1;
      auto result = run_chaos_cell(cell);
      EXPECT_TRUE(result.is_ok());
      return result.is_ok() ? *result : ChaosCellResult{};
    });
  };
  const std::size_t restore = exec::default_threads();
  exec::set_default_threads(1);
  const auto serial = sweep();
  exec::set_default_threads(8);
  const auto parallel = sweep();
  exec::set_default_threads(restore);
  ASSERT_EQ(serial.size(), parallel.size());
  expect_same_cell(serial[0], parallel[0]);
  expect_same_cell(serial[1], parallel[1]);
  // And the contrast the bench gates on is present even at smoke scale:
  // the guarded cell sheds, and sheds (almost) only batch.
  EXPECT_GT(parallel[1].shed, 0u);
  EXPECT_GE(static_cast<double>(parallel[1].shed_by_tier[kTierBatch]),
            0.9 * static_cast<double>(parallel[1].shed));
}

}  // namespace
}  // namespace mha::guard
