// End-to-end data integrity: checksummed extents, silent-fault injection,
// scrub + self-healing, checksummed KV/journal load paths, and the enriched
// replay-verification report.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/crc32.hpp"
#include "common/units.hpp"
#include "core/placer.hpp"
#include "core/redirector.hpp"
#include "core/scrubber.hpp"
#include "fault/context.hpp"
#include "fault/injector.hpp"
#include "fault/journal.hpp"
#include "io/mpi_file.hpp"
#include "kv/kvstore.hpp"
#include "layouts/scheme.hpp"
#include "workloads/replayer.hpp"

namespace mha {
namespace {

using common::OpType;
using namespace common::literals;

constexpr common::ByteCount kChunk = pfs::ExtentStore::kChecksumChunk;

std::string temp_path(const std::string& tag) {
  static std::atomic<int> counter{0};
  return testing::TempDir() + "integrity_" + tag + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".db";
}

sim::DeviceProfile flat_device(const char* name, double startup, double per_byte) {
  sim::DeviceProfile d;
  d.name = name;
  d.startup_read = startup;
  d.startup_write = 2 * startup;
  d.per_byte_read = per_byte;
  d.per_byte_write = 2 * per_byte;
  d.queued_startup_factor = 1.0;
  return d;
}

sim::ClusterConfig tiny_cluster(std::size_t hservers = 2, std::size_t sservers = 1) {
  sim::ClusterConfig config;
  config.num_hservers = hservers;
  config.num_sservers = sservers;
  config.hdd = flat_device("hdd", 1.0, 0.001);
  config.ssd = flat_device("ssd", 0.1, 0.0001);
  config.network = sim::null_network();
  return config;
}

std::vector<std::uint8_t> pattern(common::Offset offset, common::ByteCount size) {
  std::vector<std::uint8_t> out(size);
  for (common::ByteCount i = 0; i < size; ++i) out[i] = layouts::populate_byte(offset + i);
  return out;
}

fault::FaultWindow silent(std::size_t server, fault::FaultKind kind, double probability = 1.0) {
  fault::FaultWindow w;
  w.server = server;
  w.kind = kind;
  w.start = 0.0;
  w.end = 1.0e9;
  w.probability = probability;
  return w;
}

// ----------------------------------------------- extent-store checksums ---

TEST(ExtentChecksums, CleanStoreVerifies) {
  pfs::ExtentStore store;
  const std::vector<std::uint8_t> data = pattern(0, 100_KiB);
  store.write(3, data.data(), data.size());  // straddles chunk 0/1, unaligned
  std::vector<std::uint8_t> out(data.size());
  ASSERT_TRUE(store.verified_read(3, out.data(), out.size()).is_ok());
  EXPECT_EQ(out, data);
  EXPECT_TRUE(store.verify_range(0, store.end_offset()).is_ok());
  EXPECT_EQ(store.verify_chunks([](const pfs::ExtentStore::ChunkFault&) {}), 0u);
}

TEST(ExtentChecksums, BitRotIsDetectedAndNamed) {
  pfs::ExtentStore store;
  const std::vector<std::uint8_t> data = pattern(0, 2 * kChunk);
  store.write(0, data.data(), data.size());
  ASSERT_TRUE(store.corrupt_flip(kChunk + 17, 0x20));

  std::vector<std::uint8_t> out(data.size());
  const common::Status status = store.verified_read(0, out.data(), out.size());
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), common::ErrorCode::kCorruption);
  EXPECT_NE(status.message().find("stored crc"), std::string::npos) << status.message();

  // Only the rotten chunk is faulty; the clean one still verifies.
  std::vector<pfs::ExtentStore::ChunkFault> faults;
  store.verify_chunks([&](const pfs::ExtentStore::ChunkFault& f) { faults.push_back(f); });
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].offset, kChunk);
  EXPECT_NE(faults[0].expected_crc, faults[0].actual_crc);
  EXPECT_FALSE(faults[0].orphan);
  EXPECT_TRUE(store.verify_range(0, kChunk).is_ok());
  // The unverified read path still hands out the (damaged) bytes.
  EXPECT_EQ(store.read(kChunk + 17, 1)[0],
            static_cast<std::uint8_t>(data[kChunk + 17] ^ 0x20));
}

TEST(ExtentChecksums, RewriteHealsARottenChunk) {
  pfs::ExtentStore store;
  const std::vector<std::uint8_t> data = pattern(0, kChunk);
  store.write(0, data.data(), data.size());
  ASSERT_TRUE(store.corrupt_flip(5));
  ASSERT_FALSE(store.verify_range(0, kChunk).is_ok());
  store.write(0, data.data(), data.size());  // checksummed rewrite
  EXPECT_TRUE(store.verify_range(0, kChunk).is_ok());
}

TEST(ExtentChecksums, TornWriteChecksumsAsIfFull) {
  pfs::ExtentStore store;
  const std::vector<std::uint8_t> base = pattern(0, kChunk);
  store.write(0, base.data(), base.size());
  std::vector<std::uint8_t> payload(1024, 0xEE);
  store.write_torn(100, payload.data(), payload.size(), 300);  // tail lost
  // The prefix landed...
  EXPECT_EQ(store.read(100, 300), std::vector<std::uint8_t>(300, 0xEE));
  EXPECT_EQ(store.read(400, 1)[0], base[400]);  // ...the tail did not.
  // ...but the checksum claims the full write, so verification fails.
  const common::Status status = store.verify_range(0, kChunk);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), common::ErrorCode::kCorruption);
  // A torn write whose prefix IS the payload is just a write: consistent.
  pfs::ExtentStore whole;
  whole.write_torn(0, payload.data(), payload.size(), payload.size());
  EXPECT_TRUE(whole.verify_range(0, payload.size()).is_ok());
}

TEST(ExtentChecksums, MisdirectedWriteLeavesAnOrphanChunk) {
  pfs::ExtentStore store;
  std::vector<std::uint8_t> payload(128, 0xAB);
  store.write_unchecked(3 * kChunk + 64, payload.data(), payload.size());
  std::vector<pfs::ExtentStore::ChunkFault> faults;
  store.verify_chunks([&](const pfs::ExtentStore::ChunkFault& f) { faults.push_back(f); });
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_TRUE(faults[0].orphan);
  EXPECT_EQ(faults[0].offset, 3 * kChunk);
  // verified_read over the orphan names it too.
  std::vector<std::uint8_t> out(payload.size());
  const common::Status status = store.verified_read(3 * kChunk + 64, out.data(), out.size());
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("unchecksummed"), std::string::npos) << status.message();
}

TEST(ExtentChecksums, NthStoredByteWalksExtentsInOrder) {
  pfs::ExtentStore store;
  std::vector<std::uint8_t> a(10, 1), b(10, 2);
  store.write(0, a.data(), a.size());
  store.write(100, b.data(), b.size());
  EXPECT_EQ(*store.nth_stored_byte(0), 0u);
  EXPECT_EQ(*store.nth_stored_byte(9), 9u);
  EXPECT_EQ(*store.nth_stored_byte(10), 100u);
  EXPECT_EQ(*store.nth_stored_byte(19), 109u);
  EXPECT_FALSE(store.nth_stored_byte(20).is_ok());
}

// ------------------------------------------------- silent-fault drawing ---

TEST(SilentFaults, IsSilentClassifiesKinds) {
  EXPECT_TRUE(fault::is_silent(fault::FaultKind::kBitRot));
  EXPECT_TRUE(fault::is_silent(fault::FaultKind::kTornWrite));
  EXPECT_TRUE(fault::is_silent(fault::FaultKind::kMisdirectedWrite));
  EXPECT_FALSE(fault::is_silent(fault::FaultKind::kCrash));
  EXPECT_FALSE(fault::is_silent(fault::FaultKind::kBrownout));
  EXPECT_FALSE(fault::is_silent(fault::FaultKind::kTransient));
}

TEST(SilentFaults, DrawsAreSeedDeterministic) {
  auto draw_sequence = [](std::uint64_t seed) {
    fault::FaultInjector injector(seed);
    fault::RandomFaultConfig config;
    config.num_servers = 3;
    config.horizon = 10.0;
    config.bitrot_probability = 0.4;
    config.torn_probability = 0.3;
    config.misdirect_probability = 0.2;
    injector.add_random(config);
    std::vector<std::tuple<int, common::Offset, common::ByteCount, common::Offset>> seq;
    for (int i = 0; i < 200; ++i) {
      const sim::WriteFault f = injector.draw_write_fault(
          static_cast<std::size_t>(i) % 3, 0.05 * i, 4096u * i, 8192);
      seq.emplace_back(static_cast<int>(f.kind), f.bit_offset, f.torn_prefix,
                       f.misdirect_to);
    }
    return std::make_pair(seq, injector.metrics());
  };
  const auto [seq_a, metrics_a] = draw_sequence(42);
  const auto [seq_b, metrics_b] = draw_sequence(42);
  const auto [seq_c, metrics_c] = draw_sequence(43);
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_NE(seq_a, seq_c);
  EXPECT_EQ(metrics_a.bitrot_injected, metrics_b.bitrot_injected);
  EXPECT_EQ(metrics_a.torn_injected, metrics_b.torn_injected);
  EXPECT_EQ(metrics_a.misdirected_injected, metrics_b.misdirected_injected);
  EXPECT_GT(metrics_a.bitrot_injected + metrics_a.torn_injected +
                metrics_a.misdirected_injected,
            0u);
}

TEST(SilentFaults, DrawWithoutSilentWindowsConsumesNoRandomness) {
  fault::FaultInjector injector(7);
  fault::FaultWindow crash;
  crash.kind = fault::FaultKind::kCrash;
  crash.server = 0;
  crash.start = 0.0;
  crash.end = 1.0;
  injector.add(crash);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(injector.draw_write_fault(0, 0.5, 0, 4096).kind,
              sim::WriteFault::Kind::kNone);
  }
  // A twin injector that never drew at all has the same stream position.
  fault::FaultInjector twin(7);
  EXPECT_EQ(injector.draw_transient(0, 0.5), twin.draw_transient(0, 0.5));
}

/// End-to-end: a silent fault injected on the PFS write path is caught by
/// the checksummed read path with a typed corruption Status.
class SilentFaultPfsTest : public ::testing::Test {
 protected:
  void attach(fault::FaultKind kind) {
    pfs_ = std::make_unique<pfs::HybridPfs>(tiny_cluster(2, 1));
    file_ = *pfs_->create_file("f");
    ASSERT_TRUE(layouts::populate_file(*pfs_, file_, 256_KiB).is_ok());
    injector_ = std::make_unique<fault::FaultInjector>(11);
    for (std::size_t s = 0; s < pfs_->num_servers(); ++s) injector_->add(silent(s, kind));
    context_ = std::make_unique<fault::FaultContext>(*injector_);
    pfs_->set_fault_context(context_.get());
  }

  std::unique_ptr<pfs::HybridPfs> pfs_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::FaultContext> context_;
  common::FileId file_ = common::kInvalidFileId;
};

TEST_F(SilentFaultPfsTest, BitRotCaughtOnRead) {
  attach(fault::FaultKind::kBitRot);
  const std::vector<std::uint8_t> payload(64_KiB, 0x5A);
  auto w = pfs_->write(file_, 0, payload.data(), payload.size(), 0.0);
  ASSERT_TRUE(w.is_ok());
  EXPECT_GT(injector_->metrics().bitrot_injected, 0u);
  std::vector<std::uint8_t> out(payload.size());
  auto r = pfs_->read(file_, 0, out.data(), out.size(), w->completion);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), common::ErrorCode::kCorruption);
  EXPECT_GT(injector_->metrics().corruption_detected, 0u);
}

TEST_F(SilentFaultPfsTest, TornWriteCaughtOnRead) {
  attach(fault::FaultKind::kTornWrite);
  const std::vector<std::uint8_t> payload(64_KiB, 0x77);
  auto w = pfs_->write(file_, 0, payload.data(), payload.size(), 0.0);
  ASSERT_TRUE(w.is_ok());
  EXPECT_GT(injector_->metrics().torn_injected, 0u);
  std::vector<std::uint8_t> out(payload.size());
  auto r = pfs_->read(file_, 0, out.data(), out.size(), w->completion);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), common::ErrorCode::kCorruption);
}

TEST_F(SilentFaultPfsTest, MisdirectedWriteDamagesTheLandingSite) {
  attach(fault::FaultKind::kMisdirectedWrite);
  const std::vector<std::uint8_t> payload(16_KiB, 0x33);
  auto w = pfs_->write(file_, 0, payload.data(), payload.size(), 0.0);
  ASSERT_TRUE(w.is_ok());
  EXPECT_GT(injector_->metrics().misdirected_injected, 0u);
  // The payload landed 64 KiB past its target inside the populated file:
  // somewhere a checksummed chunk now holds foreign bytes.  A full-file
  // verification sweep must notice.
  std::size_t faulty = 0;
  for (std::size_t s = 0; s < pfs_->num_servers(); ++s) {
    const pfs::ExtentStore* store = pfs_->data_server(s).store(file_);
    if (store != nullptr) {
      faulty += store->verify_chunks([](const pfs::ExtentStore::ChunkFault&) {});
    }
  }
  EXPECT_GT(faulty, 0u);
}

// ------------------------------------------------------------- scrubber ---

class ScrubberTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pfs_ = std::make_unique<pfs::HybridPfs>(tiny_cluster(2, 1));
    original_ = *pfs_->create_file("orig");
    ASSERT_TRUE(layouts::populate_file(*pfs_, original_, 512_KiB).is_ok());

    // The DRT covers the whole file (two swapped halves), so every origin
    // chunk has a region replica and vice versa.
    plan_.drt = core::Drt("orig");
    core::Region region;
    region.name = "orig.mha.r0";
    region.length = 512_KiB;
    plan_.regions.push_back(region);
    ASSERT_TRUE(
        plan_.drt.insert(core::DrtEntry{0, 256_KiB, "orig.mha.r0", 256_KiB}).is_ok());
    ASSERT_TRUE(plan_.drt.insert(core::DrtEntry{256_KiB, 256_KiB, "orig.mha.r0", 0}).is_ok());
    auto report = core::Placer::apply(*pfs_, plan_, {core::StripePair{16_KiB, 48_KiB}});
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    region_ = *pfs_->open("orig.mha.r0");
  }

  /// Flips one stored bit of `file`'s image; returns the store it hit.
  pfs::ExtentStore* rot_first_byte(common::FileId file, common::ByteCount skip = 0) {
    for (std::size_t s = 0; s < pfs_->num_servers(); ++s) {
      pfs::ExtentStore* store = pfs_->data_server(s).mutable_store(file);
      if (store == nullptr) continue;
      auto offset = store->nth_stored_byte(skip);
      if (!offset.is_ok()) continue;
      EXPECT_TRUE(store->corrupt_flip(*offset, 0x40));
      return store;
    }
    ADD_FAILURE() << "no stored byte to rot";
    return nullptr;
  }

  core::Scrubber make_scrubber() {
    core::Scrubber scrubber(*pfs_);
    scrubber.attach_drt(&plan_.drt);
    scrubber.set_metrics(&metrics_);
    return scrubber;
  }

  std::unique_ptr<pfs::HybridPfs> pfs_;
  common::FileId original_ = common::kInvalidFileId;
  common::FileId region_ = common::kInvalidFileId;
  core::ReorganizePlan plan_;
  fault::FaultMetrics metrics_;
};

TEST_F(ScrubberTest, OriginCorruptionRepairsFromRegion) {
  pfs::ExtentStore* store = rot_first_byte(original_);
  ASSERT_NE(store, nullptr);
  ASSERT_FALSE(store->verify_range(0, store->end_offset()).is_ok());

  core::Scrubber scrubber = make_scrubber();
  auto report = scrubber.scrub_file("orig");
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->chunks_faulty, 1u);
  EXPECT_EQ(report->repaired, 1u);
  EXPECT_EQ(report->unrepairable, 0u);
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_TRUE(report->findings[0].repaired);

  EXPECT_TRUE(store->verify_range(0, store->end_offset()).is_ok());
  EXPECT_EQ(*pfs_->read_bytes(original_, 0, 512_KiB, 0.0), pattern(0, 512_KiB));
  EXPECT_EQ(metrics_.corruption_detected, 1u);
  EXPECT_EQ(metrics_.corruption_repaired, 1u);
}

TEST_F(ScrubberTest, RegionCorruptionRepairsFromOrigin) {
  pfs::ExtentStore* store = rot_first_byte(region_);
  ASSERT_NE(store, nullptr);

  core::Scrubber scrubber = make_scrubber();
  auto report = scrubber.scrub_file("orig.mha.r0");
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->repaired, 1u);
  EXPECT_EQ(report->unrepairable, 0u);
  // The region again holds exactly its origin ranges' bytes.
  EXPECT_EQ(*pfs_->read_bytes(region_, 256_KiB, 256_KiB, 0.0), pattern(0, 256_KiB));
  EXPECT_EQ(*pfs_->read_bytes(region_, 0, 256_KiB, 0.0), pattern(256_KiB, 256_KiB));
}

TEST_F(ScrubberTest, DirtyRegionEntryIsHonestlyUnrepairable) {
  // A redirected overwrite of origin range [0, 256K) landed only in the
  // region: the origin copy of that entry is stale.
  plan_.drt.mark_dirty(0, 256_KiB);
  EXPECT_EQ(plan_.drt.dirty_entries(), 1u);
  core::Scrubber scrubber = make_scrubber();  // snapshots the dirty flags

  // The origin stays repairable regardless: the region is authoritative for
  // committed entries even when they are dirty.
  pfs::ExtentStore* origin_store = rot_first_byte(original_);
  ASSERT_NE(origin_store, nullptr);
  auto origin_report = scrubber.scrub_file("orig");
  ASSERT_TRUE(origin_report.is_ok());
  EXPECT_EQ(origin_report->repaired, 1u);

  // Corrupt the region at the physical home of region-logical 256 KiB — a
  // chunk that straddles the dirty run.
  const pfs::FileInfo& info = pfs_->mds().info(region_);
  pfs::StripeLayout::SubExtentVec subs;
  info.layout.map_extent(256_KiB, 1, subs);
  ASSERT_FALSE(subs.empty());
  pfs::ExtentStore* store = pfs_->data_server(subs[0].server).mutable_store(region_);
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->corrupt_flip(subs[0].physical_offset, 0x08));

  auto report = scrubber.scrub_file("orig.mha.r0");
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->chunks_faulty, 1u);
  EXPECT_EQ(report->repaired, 0u);
  EXPECT_EQ(report->unrepairable, 1u);
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_NE(report->findings[0].detail.find("overwritten since migration"), std::string::npos)
      << report->findings[0].detail;
  EXPECT_EQ(metrics_.corruption_unrepairable, 1u);
}

TEST_F(ScrubberTest, UncoveredFileIsDetectOnlyUnrepairable) {
  auto plain = *pfs_->create_file("plain");
  ASSERT_TRUE(layouts::populate_file(*pfs_, plain, 128_KiB).is_ok());
  pfs::ExtentStore* store = rot_first_byte(plain);
  ASSERT_NE(store, nullptr);

  core::Scrubber scrubber = make_scrubber();
  auto report = scrubber.scrub_file("plain");
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->chunks_faulty, 1u);
  EXPECT_EQ(report->unrepairable, 1u);
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_NE(report->findings[0].detail.find("no reordering table"), std::string::npos)
      << report->findings[0].detail;
}

TEST_F(ScrubberTest, DetectOnlyPassRepairsNothing) {
  pfs::ExtentStore* store = rot_first_byte(original_);
  ASSERT_NE(store, nullptr);
  core::Scrubber scrubber = make_scrubber();
  core::ScrubOptions options;
  options.repair = false;
  auto report = scrubber.scrub_file("orig", options);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->chunks_faulty, 1u);
  EXPECT_EQ(report->repaired, 0u);
  EXPECT_FALSE(store->verify_range(0, store->end_offset()).is_ok());  // untouched
}

TEST_F(ScrubberTest, OrphanInRegionSlackIsEvictedToZeros) {
  pfs::ExtentStore* store = pfs_->data_server(0).mutable_store(region_);
  ASSERT_NE(store, nullptr);
  const common::Offset squat = store->end_offset() + 2 * kChunk;
  std::vector<std::uint8_t> payload(64, 0xDD);
  store->write_unchecked(squat, payload.data(), payload.size());

  core::Scrubber scrubber = make_scrubber();
  auto report = scrubber.scrub_file("orig.mha.r0");
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->chunks_faulty, 1u);
  EXPECT_EQ(report->repaired, 1u);
  ASSERT_EQ(report->findings.size(), 1u);
  EXPECT_TRUE(report->findings[0].orphan);
  // Evicted: the squatted range reads as zeros and verifies.
  EXPECT_TRUE(store->verify_range(squat, payload.size()).is_ok());
  EXPECT_EQ(store->read(squat, payload.size()),
            std::vector<std::uint8_t>(payload.size(), 0));
}

TEST_F(ScrubberTest, ScrubAllHealsEverythingReachableAndCountsPasses) {
  rot_first_byte(original_);
  // Rot a region chunk too — one that is neither a repair source for the
  // origin's rotten chunk nor repaired *from* it (region-logical 80 KiB maps
  // to origin 336 KiB, far from origin chunk 0), so both heal in one pass.
  {
    const pfs::FileInfo& info = pfs_->mds().info(region_);
    pfs::StripeLayout::SubExtentVec subs;
    info.layout.map_extent(80_KiB, 1, subs);
    ASSERT_FALSE(subs.empty());
    pfs::ExtentStore* store = pfs_->data_server(subs[0].server).mutable_store(region_);
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->corrupt_flip(subs[0].physical_offset, 0x10));
  }
  auto plain = *pfs_->create_file("plain");
  ASSERT_TRUE(layouts::populate_file(*pfs_, plain, 64_KiB).is_ok());
  rot_first_byte(plain);

  core::Scrubber scrubber = make_scrubber();
  auto report = scrubber.scrub_all();
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->chunks_faulty, 3u);
  EXPECT_EQ(report->repaired, 2u);      // origin + region
  EXPECT_EQ(report->unrepairable, 1u);  // plain has no replica
  EXPECT_EQ(metrics_.scrub_passes, 1u);

  // A second pass re-detects only the unrepairable chunk — and both passes
  // report deterministically.
  auto second = scrubber.scrub_all();
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second->chunks_faulty, 1u);
  EXPECT_EQ(second->repaired, 0u);
  EXPECT_EQ(second->unrepairable, 1u);
  EXPECT_EQ(metrics_.scrub_passes, 2u);
}

TEST_F(ScrubberTest, RedirectorLocateNamesTheServingFile) {
  auto redirector = core::Redirector::create(*pfs_, plan_.drt);
  ASSERT_TRUE(redirector.is_ok());
  EXPECT_NE(redirector->locate(10).find("region orig.mha.r0"), std::string::npos)
      << redirector->locate(10);
  EXPECT_NE(redirector->locate(600_KiB).find("passthrough"), std::string::npos)
      << redirector->locate(600_KiB);
}

TEST_F(ScrubberTest, InterceptedWritesMarkDrtEntriesDirty) {
  auto redirector = core::Redirector::create(*pfs_, plan_.drt);
  ASSERT_TRUE(redirector.is_ok());
  EXPECT_EQ(redirector->drt().dirty_entries(), 0u);
  io::MpiSim mpi(1);
  auto file = io::MpiFile::open(*pfs_, mpi, "orig");
  ASSERT_TRUE(file.is_ok());
  file->set_interceptor(&*redirector);
  std::vector<std::uint8_t> payload(4_KiB, 0x9C);
  ASSERT_TRUE(file->write_at(0, 300_KiB, payload.data(), payload.size()).is_ok());
  EXPECT_EQ(redirector->drt().dirty_entries(), 1u);  // only entry [256K, 512K)
}

// ------------------------------------------------ kv / journal integrity ---

TEST(KvIntegrity, CleanLoadReportAndVerify) {
  const std::string path = temp_path("kv_clean");
  {
    kv::KvStore store;
    ASSERT_TRUE(store.open(path).is_ok());
    EXPECT_EQ(store.last_load().records_applied, 0u);
    EXPECT_FALSE(store.last_load().tail_truncated);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(store.put("k" + std::to_string(i), std::string(100, 'v')).is_ok());
    }
    auto verify = store.verify_log();
    ASSERT_TRUE(verify.is_ok());
    EXPECT_TRUE(verify->clean());
    EXPECT_EQ(verify->records, 5u);
  }
  kv::KvStore reopened;
  ASSERT_TRUE(reopened.open(path).is_ok());
  EXPECT_EQ(reopened.last_load().records_applied, 5u);
  EXPECT_FALSE(reopened.last_load().tail_truncated);
  EXPECT_FALSE(reopened.last_load().crc_mismatch);
  EXPECT_EQ(reopened.last_load().torn_bytes, 0u);
  std::remove(path.c_str());
}

TEST(KvIntegrity, TornTailIsTruncatedAndReported) {
  const std::string path = temp_path("kv_torn");
  {
    kv::KvStore store;
    ASSERT_TRUE(store.open(path).is_ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(store.put("key" + std::to_string(i), std::string(64, 'x')).is_ok());
    }
  }
  const std::uintmax_t full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 10);  // tear the last record

  kv::KvStore store;
  ASSERT_TRUE(store.open(path).is_ok());
  EXPECT_EQ(store.last_load().records_applied, 3u);
  EXPECT_TRUE(store.last_load().tail_truncated);
  EXPECT_FALSE(store.last_load().crc_mismatch);  // short read, not a bad CRC
  EXPECT_GT(store.last_load().torn_bytes, 0u);
  EXPECT_FALSE(store.contains("key3"));
  // After the fold-back the on-disk log is clean again.
  auto verify = store.verify_log();
  ASSERT_TRUE(verify.is_ok());
  EXPECT_TRUE(verify->clean());
  EXPECT_EQ(verify->records, 3u);
  std::remove(path.c_str());
}

TEST(KvIntegrity, CorruptMiddleRecordStopsReplayWithCrcMismatch) {
  const std::string path = temp_path("kv_rot");
  long second_record_end = 0;
  {
    kv::KvStore store;
    ASSERT_TRUE(store.open(path).is_ok());
    ASSERT_TRUE(store.put("a", std::string(200, 'A')).is_ok());
    ASSERT_TRUE(store.put("b", std::string(200, 'B')).is_ok());
  }
  // Measure after close: the stream buffer is flushed, so this is exactly
  // the end of record "b" on disk.
  second_record_end = static_cast<long>(std::filesystem::file_size(path));
  {
    kv::KvStore store;
    ASSERT_TRUE(store.open(path).is_ok());
    ASSERT_TRUE(store.put("c", std::string(200, 'C')).is_ok());
  }
  {
    // Flip one payload byte inside record "b" (well before its end).
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    char byte = 0;
    f.seekg(second_record_end - 50);
    f.get(byte);
    f.seekp(second_record_end - 50);
    f.put(static_cast<char>(byte ^ 0x01));
  }
  kv::KvStore store;
  ASSERT_TRUE(store.open(path).is_ok());
  EXPECT_EQ(store.last_load().records_applied, 1u);  // only "a" survives
  EXPECT_TRUE(store.last_load().crc_mismatch);
  EXPECT_TRUE(store.last_load().tail_truncated);  // "b"+"c" dropped
  EXPECT_TRUE(store.contains("a"));
  EXPECT_FALSE(store.contains("b"));
  EXPECT_FALSE(store.contains("c"));
  std::remove(path.c_str());
}

TEST(KvIntegrity, VerifyLogCountsBadFramesWithoutMutating) {
  const std::string path = temp_path("kv_audit");
  kv::KvStore store;
  ASSERT_TRUE(store.open(path).is_ok());
  ASSERT_TRUE(store.put("a", std::string(200, 'A')).is_ok());
  ASSERT_TRUE(store.put("b", std::string(200, 'B')).is_ok());
  ASSERT_TRUE(store.sync().is_ok());
  {
    // Rot a payload byte of record "a" on disk, behind the open store's back.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.get(byte);
    f.seekp(40);
    f.put(static_cast<char>(byte ^ 0x80));
  }
  auto verify = store.verify_log();
  ASSERT_TRUE(verify.is_ok());
  EXPECT_EQ(verify->crc_failures, 1u);
  EXPECT_EQ(verify->records, 1u);
  EXPECT_FALSE(verify->clean());
  // The in-memory map is untouched by the audit.
  EXPECT_TRUE(store.contains("a"));
  EXPECT_TRUE(store.contains("b"));
  // The scrubber's KV sweep counts the damage into the fault ledger.
  fault::FaultMetrics metrics;
  pfs::HybridPfs pfs(tiny_cluster(1, 1));
  core::Scrubber scrubber(pfs);
  scrubber.set_metrics(&metrics);
  auto swept = scrubber.scrub_log(store);
  ASSERT_TRUE(swept.is_ok());
  EXPECT_EQ(metrics.corruption_detected, 1u);
  ASSERT_TRUE(store.close().is_ok());
  std::remove(path.c_str());
}

TEST(JournalIntegrity, TornJournalTailIsReportedThroughLoadReport) {
  const std::string path = temp_path("journal_torn");
  {
    fault::MigrationJournal journal;
    ASSERT_TRUE(journal.open(path).is_ok());
    ASSERT_TRUE(journal
                    .begin("orig", {fault::JournalRegion{"r0", {16_KiB, 48_KiB}}},
                           {fault::JournalEntry{0, 64_KiB, "r0", 0}})
                    .is_ok());
    ASSERT_TRUE(journal.set_phase(fault::JournalPhase::kRegionsCreated).is_ok());
  }
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 4);

  fault::MigrationJournal journal;
  ASSERT_TRUE(journal.open(path).is_ok());
  EXPECT_TRUE(journal.load_report().tail_truncated);
  EXPECT_GT(journal.load_report().torn_bytes, 0u);
  // The torn record was the kRegionsCreated stamp: the durable phase rules.
  EXPECT_EQ(journal.phase(), fault::JournalPhase::kPlanned);
  auto verify = journal.verify_log();
  ASSERT_TRUE(verify.is_ok());
  EXPECT_TRUE(verify->clean());
  std::remove(path.c_str());
}

// ---------------------------------------------------- metrics rendering ---

TEST(FaultMetricsTable, RendersSilentAndScrubCounters) {
  fault::FaultMetrics metrics;
  metrics.bitrot_injected = 3;
  metrics.torn_injected = 2;
  metrics.misdirected_injected = 1;
  metrics.corruption_detected = 6;
  metrics.corruption_repaired = 5;
  metrics.corruption_unrepairable = 1;
  metrics.scrub_passes = 4;
  metrics.torn_tails_truncated = 7;
  const std::string table = metrics.table();
  EXPECT_NE(table.find("silent:"), std::string::npos) << table;
  EXPECT_NE(table.find("scrub:"), std::string::npos) << table;
  EXPECT_NE(table.find("bit-rot=3"), std::string::npos) << table;
  EXPECT_NE(table.find("repaired=5"), std::string::npos) << table;
  EXPECT_NE(table.find("torn-tails=7"), std::string::npos) << table;
}

// ------------------------------------------------ replay mismatch report ---

TEST(ReplayVerification, MismatchReportNamesCrcsAndOriginOffset) {
  pfs::HybridPfs pfs(tiny_cluster(2, 2));
  trace::Trace trace;
  trace.file_name = "orig";
  for (int rank = 0; rank < 4; ++rank) {
    trace::TraceRecord r;
    r.rank = rank;
    r.op = OpType::kRead;
    r.offset = rank * 64_KiB;
    r.size = 64_KiB;
    r.t_start = 0.0;
    trace.records.push_back(r);
  }
  auto scheme = layouts::make_def();
  auto deployment = scheme->prepare(pfs, trace);
  ASSERT_TRUE(deployment.is_ok()) << deployment.status().to_string();

  // Damage one stored byte through the *checksummed* write path: the extent
  // CRCs stay valid, so only the replay shadow can catch it — with a report
  // that names the CRCs and the origin offset.
  auto id = pfs.open("orig");
  ASSERT_TRUE(id.is_ok());
  bool damaged = false;
  for (std::size_t s = 0; s < pfs.num_servers() && !damaged; ++s) {
    pfs::ExtentStore* store = pfs.data_server(s).mutable_store(*id);
    if (store == nullptr) continue;
    auto offset = store->nth_stored_byte(0);
    if (!offset.is_ok()) continue;
    std::uint8_t byte = store->read(*offset, 1)[0];
    byte = static_cast<std::uint8_t>(byte ^ 0xFF);
    store->write(*offset, &byte, 1);
    damaged = true;
  }
  ASSERT_TRUE(damaged);

  workloads::ReplayOptions options;
  options.verify_data = true;
  auto result = workloads::replay(pfs, *deployment, trace, options);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), common::ErrorCode::kCorruption);
  const std::string message = result.status().message();
  EXPECT_NE(message.find("expected crc"), std::string::npos) << message;
  EXPECT_NE(message.find("actual crc"), std::string::npos) << message;
  EXPECT_NE(message.find("origin offset"), std::string::npos) << message;
}

}  // namespace
}  // namespace mha
