#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "kv/kvstore.hpp"

namespace mha::kv {
namespace {

class KvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "kv_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".db";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(KvTest, OpenCreatesFile) {
  KvStore store;
  ASSERT_TRUE(store.open(path_).is_ok());
  EXPECT_TRUE(store.is_open());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(std::filesystem::exists(path_));
}

TEST_F(KvTest, PutGetRoundTrip) {
  KvStore store;
  ASSERT_TRUE(store.open(path_).is_ok());
  ASSERT_TRUE(store.put("alpha", "1").is_ok());
  ASSERT_TRUE(store.put("beta", "two").is_ok());
  EXPECT_EQ(store.get("alpha"), "1");
  EXPECT_EQ(store.get("beta"), "two");
  EXPECT_FALSE(store.get("gamma").has_value());
  EXPECT_TRUE(store.contains("alpha"));
  EXPECT_FALSE(store.contains("gamma"));
}

TEST_F(KvTest, OverwriteKeepsLatest) {
  KvStore store;
  ASSERT_TRUE(store.open(path_).is_ok());
  ASSERT_TRUE(store.put("k", "v1").is_ok());
  ASSERT_TRUE(store.put("k", "v2").is_ok());
  EXPECT_EQ(store.get("k"), "v2");
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.dead_records(), 1u);
}

TEST_F(KvTest, EraseRemoves) {
  KvStore store;
  ASSERT_TRUE(store.open(path_).is_ok());
  ASSERT_TRUE(store.put("k", "v").is_ok());
  ASSERT_TRUE(store.erase("k").is_ok());
  EXPECT_FALSE(store.get("k").has_value());
  EXPECT_EQ(store.size(), 0u);
  // Erasing an absent key is a no-op success.
  EXPECT_TRUE(store.erase("never-existed").is_ok());
}

TEST_F(KvTest, PersistsAcrossReopen) {
  {
    KvStore store;
    ASSERT_TRUE(store.open(path_).is_ok());
    ASSERT_TRUE(store.put("drt:0", "region0,0,4096").is_ok());
    ASSERT_TRUE(store.put("drt:4096", "region1,0,8192").is_ok());
    ASSERT_TRUE(store.erase("drt:0").is_ok());
    ASSERT_TRUE(store.close().is_ok());
  }
  KvStore reopened;
  ASSERT_TRUE(reopened.open(path_).is_ok());
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_FALSE(reopened.get("drt:0").has_value());
  EXPECT_EQ(reopened.get("drt:4096"), "region1,0,8192");
}

TEST_F(KvTest, BinarySafeKeysAndValues) {
  KvStore store;
  ASSERT_TRUE(store.open(path_).is_ok());
  const std::string key("\x00\x01\xff key", 8);
  const std::string value("\x00\xfe\x00 value", 9);
  ASSERT_TRUE(store.put(key, value).is_ok());
  ASSERT_TRUE(store.close().is_ok());

  KvStore reopened;
  ASSERT_TRUE(reopened.open(path_).is_ok());
  EXPECT_EQ(reopened.get(key), value);
}

TEST_F(KvTest, TornTailIsTruncatedOnReload) {
  {
    KvStore store;
    ASSERT_TRUE(store.open(path_).is_ok());
    ASSERT_TRUE(store.put("good", "value").is_ok());
    ASSERT_TRUE(store.close().is_ok());
  }
  // Simulate a crash mid-append: garbage half-record at the tail.
  {
    std::ofstream f(path_, std::ios::binary | std::ios::app);
    f.write("\x12\x34\x56", 3);
  }
  KvStore reopened;
  ASSERT_TRUE(reopened.open(path_).is_ok());
  EXPECT_EQ(reopened.get("good"), "value");
  // The store must still be appendable after truncating the tail.
  ASSERT_TRUE(reopened.put("more", "data").is_ok());
  ASSERT_TRUE(reopened.close().is_ok());
  KvStore third;
  ASSERT_TRUE(third.open(path_).is_ok());
  EXPECT_EQ(third.get("more"), "data");
}

TEST_F(KvTest, CorruptMiddleRecordDropsTail) {
  {
    KvStore store;
    ASSERT_TRUE(store.open(path_).is_ok());
    ASSERT_TRUE(store.put("first", "1").is_ok());
    ASSERT_TRUE(store.put("second", "2").is_ok());
    ASSERT_TRUE(store.close().is_ok());
  }
  // Flip a byte inside the second record's payload region.
  {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-2, std::ios::end);
    f.put('X');
  }
  KvStore reopened;
  ASSERT_TRUE(reopened.open(path_).is_ok());
  EXPECT_EQ(reopened.get("first"), "1");
  EXPECT_FALSE(reopened.get("second").has_value());
}

TEST_F(KvTest, CompactShrinksLog) {
  KvStore store;
  KvOptions options;
  options.auto_compact_dead_records = 1u << 30;  // manual compaction only
  ASSERT_TRUE(store.open(path_, options).is_ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.put("churn", "value" + std::to_string(i)).is_ok());
  }
  ASSERT_TRUE(store.close().is_ok());
  const auto before = std::filesystem::file_size(path_);

  KvStore again;
  ASSERT_TRUE(again.open(path_, options).is_ok());
  EXPECT_EQ(again.dead_records(), 99u);
  ASSERT_TRUE(again.compact().is_ok());
  EXPECT_EQ(again.dead_records(), 0u);
  EXPECT_EQ(again.get("churn"), "value99");
  ASSERT_TRUE(again.close().is_ok());
  EXPECT_LT(std::filesystem::file_size(path_), before / 10);
}

TEST_F(KvTest, StaleCompactTempIsDiscardedOnOpen) {
  {
    KvStore store;
    ASSERT_TRUE(store.open(path_).is_ok());
    ASSERT_TRUE(store.put("live", "data").is_ok());
    ASSERT_TRUE(store.close().is_ok());
  }
  // Simulate a crash mid-compaction: a half-written temp file beside the
  // live log.  The live log is authoritative until the atomic rename, so
  // reopening must ignore (and remove) the leftover.
  const std::string tmp = path_ + ".compact";
  {
    std::ofstream f(tmp, std::ios::binary);
    f.write("partial compaction garbage", 26);
  }
  KvStore reopened;
  ASSERT_TRUE(reopened.open(path_).is_ok());
  EXPECT_EQ(reopened.get("live"), "data");
  EXPECT_FALSE(std::filesystem::exists(tmp));
  // A fresh compaction over the cleaned-up name still works end to end.
  ASSERT_TRUE(reopened.put("live", "newer").is_ok());
  ASSERT_TRUE(reopened.compact().is_ok());
  ASSERT_TRUE(reopened.close().is_ok());
  KvStore third;
  ASSERT_TRUE(third.open(path_).is_ok());
  EXPECT_EQ(third.get("live"), "newer");
  EXPECT_FALSE(std::filesystem::exists(tmp));
}

TEST_F(KvTest, AutoCompactTriggers) {
  KvStore store;
  KvOptions options;
  options.auto_compact_dead_records = 8;
  ASSERT_TRUE(store.open(path_, options).is_ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.put("k", std::to_string(i)).is_ok());
  }
  EXPECT_LT(store.dead_records(), 8u);
  EXPECT_EQ(store.get("k"), "49");
}

TEST_F(KvTest, SyncEveryWriteSurvivesReload) {
  KvStore store;
  KvOptions options;
  options.sync = SyncMode::kEveryWrite;
  ASSERT_TRUE(store.open(path_, options).is_ok());
  ASSERT_TRUE(store.put("durable", "yes").is_ok());
  // No close: a reader opening the same path must already see the record.
  KvStore reader;
  ASSERT_TRUE(reader.open(path_ + ".copy").is_ok());  // placeholder open
  (void)reader;
  std::ifstream f(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(f)), {});
  EXPECT_NE(contents.find("durable"), std::string::npos);
  std::remove((path_ + ".copy").c_str());
}

TEST_F(KvTest, ForEachVisitsAllAndStopsEarly) {
  KvStore store;
  ASSERT_TRUE(store.open(path_).is_ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.put("key" + std::to_string(i), "v").is_ok());
  }
  int visited = 0;
  store.for_each([&](std::string_view, std::string_view) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 10);
  visited = 0;
  store.for_each([&](std::string_view, std::string_view) {
    ++visited;
    return visited < 3;
  });
  EXPECT_EQ(visited, 3);
}

TEST_F(KvTest, OperationsFailWhenClosed) {
  KvStore store;
  EXPECT_FALSE(store.put("k", "v").is_ok());
  EXPECT_FALSE(store.erase("k").is_ok());
  EXPECT_FALSE(store.compact().is_ok());
}

TEST_F(KvTest, DoubleOpenRejected) {
  KvStore store;
  ASSERT_TRUE(store.open(path_).is_ok());
  EXPECT_FALSE(store.open(path_).is_ok());
}

TEST_F(KvTest, BulkLoadThenSync) {
  KvStore store;
  ASSERT_TRUE(store.open(path_).is_ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store.put("bulk" + std::to_string(i), "v").is_ok());
  }
  ASSERT_TRUE(store.sync().is_ok());
  // After the explicit sync every record is on disk even without close().
  std::ifstream f(path_, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(f)), {});
  EXPECT_NE(contents.find("bulk199"), std::string::npos);
  KvStore closed;
  EXPECT_FALSE(closed.sync().is_ok());
}

TEST_F(KvTest, MoveTransfersOwnership) {
  KvStore store;
  ASSERT_TRUE(store.open(path_).is_ok());
  ASSERT_TRUE(store.put("k", "v").is_ok());
  KvStore moved = std::move(store);
  EXPECT_TRUE(moved.is_open());
  EXPECT_EQ(moved.get("k"), "v");
  ASSERT_TRUE(moved.put("k2", "v2").is_ok());
  EXPECT_EQ(moved.size(), 2u);
}

}  // namespace
}  // namespace mha::kv
