#include <gtest/gtest.h>

#include <cmath>

#include "core/cost_model.hpp"

namespace mha::core {
namespace {

using common::ByteCount;
using common::Offset;
using common::OpType;

// Hand-checkable parameters: no network, unit-friendly costs.
CostParams simple_params(std::size_t m, std::size_t n) {
  CostParams p;
  p.num_hservers = m;
  p.num_sservers = n;
  p.t = 0.0;
  p.net_latency = 0.0;
  p.alpha_h = 10.0;
  p.beta_h = 1.0;   // 1 second per byte: easy arithmetic
  p.alpha_sr = 1.0;
  p.beta_sr = 0.1;
  p.alpha_sw = 2.0;
  p.beta_sw = 0.2;
  p.gamma_h = 1.0;
  p.gamma_s = 1.0;
  return p;
}

// -------------------------------------------------------- bytes_on_slot ---

TEST(BytesOnSlot, WithinOneCycle) {
  // Cycle 100, slot [20, 50).
  EXPECT_EQ(CostModel::bytes_on_slot(0, 100, 20, 30, 100), 30u);
  EXPECT_EQ(CostModel::bytes_on_slot(0, 20, 20, 30, 100), 0u);
  EXPECT_EQ(CostModel::bytes_on_slot(25, 10, 20, 30, 100), 10u);
  EXPECT_EQ(CostModel::bytes_on_slot(45, 30, 20, 30, 100), 5u);
}

TEST(BytesOnSlot, AcrossCycles) {
  // Cycle 100, slot [0, 50): half of any whole number of cycles.
  EXPECT_EQ(CostModel::bytes_on_slot(0, 1000, 0, 50, 100), 500u);
  EXPECT_EQ(CostModel::bytes_on_slot(75, 100, 0, 50, 100), 50u);
}

TEST(BytesOnSlot, ZeroCases) {
  EXPECT_EQ(CostModel::bytes_on_slot(0, 0, 0, 50, 100), 0u);
  EXPECT_EQ(CostModel::bytes_on_slot(0, 100, 0, 0, 100), 0u);
}

TEST(BytesOnSlot, SumOverSlotsEqualsSize) {
  // Slots tile the cycle: total bytes must equal the extent length.
  const ByteCount widths[] = {30, 20, 50};
  for (Offset offset : {Offset{0}, Offset{7}, Offset{95}, Offset{12345}}) {
    for (ByteCount size : {ByteCount{1}, ByteCount{99}, ByteCount{100}, ByteCount{1234}}) {
      ByteCount total = 0;
      ByteCount start = 0;
      for (ByteCount w : widths) {
        total += CostModel::bytes_on_slot(offset, size, start, w, 100);
        start += w;
      }
      EXPECT_EQ(total, size) << "offset=" << offset << " size=" << size;
    }
  }
}

// ----------------------------------------------------------- Eq. 2 cost ---

TEST(CostModel, SingleRequestNoConcurrencyIsHarlForm) {
  const CostModel model(simple_params(1, 1));
  // Layout <10, 10>, request of 20 bytes at offset 0: 10 bytes each server.
  // HServer: 10 + 10*1 = 20.  SServer read: 1 + 10*0.1 = 2.  Max = 20.
  ModelRequest r{OpType::kRead, 0, 20, 1};
  EXPECT_DOUBLE_EQ(model.request_cost(r, 10, 10), 20.0);
}

TEST(CostModel, WriteUsesSsdWriteParameters) {
  const CostModel model(simple_params(1, 1));
  // SServer-only layout <0, 10>: all 20 bytes on the SServer.
  ModelRequest read{OpType::kRead, 0, 20, 1};
  ModelRequest write{OpType::kWrite, 0, 20, 1};
  EXPECT_DOUBLE_EQ(model.request_cost(read, 0, 10), 1.0 + 20 * 0.1);
  EXPECT_DOUBLE_EQ(model.request_cost(write, 0, 10), 2.0 + 20 * 0.2);
}

TEST(CostModel, MaxAcrossServersGoverns) {
  const CostModel model(simple_params(2, 2));
  // <5, 5>: 20-byte request covers the full cycle; each server 5 bytes.
  // HServer: 10 + 5 = 15; SServer: 1 + 0.5 = 1.5.
  ModelRequest r{OpType::kRead, 0, 20, 1};
  EXPECT_DOUBLE_EQ(model.request_cost(r, 5, 5), 15.0);
}

TEST(CostModel, ConcurrencyScalesBatch) {
  CostParams params = simple_params(1, 1);
  params.gamma_h = 0.5;
  const CostModel model(params);
  // <10, 10>, 20-byte request, c=4: every server touched by the request is
  // touched by all 4 processes (k=1 of 1).  HServer: startup 10*(1+3*0.5) =
  // 25, accumulated bytes 4*10*1 = 40 -> 65.
  ModelRequest r{OpType::kRead, 0, 20, 4};
  EXPECT_DOUBLE_EQ(model.request_cost(r, 10, 10), 65.0);
}

TEST(CostModel, ConcurrencyDisabledReducesToHarl) {
  CostParams params = simple_params(1, 1);
  const CostModel aware(params, /*concurrency_aware=*/true);
  const CostModel blind(params, /*concurrency_aware=*/false);
  ModelRequest hot{OpType::kRead, 0, 20, 16};
  ModelRequest cold{OpType::kRead, 0, 20, 1};
  EXPECT_DOUBLE_EQ(blind.request_cost(hot, 10, 10), blind.request_cost(cold, 10, 10));
  EXPECT_GT(aware.request_cost(hot, 10, 10), aware.request_cost(cold, 10, 10));
  // c=1 through the aware model equals the blind model exactly.
  EXPECT_DOUBLE_EQ(aware.request_cost(cold, 10, 10), blind.request_cost(cold, 10, 10));
}

TEST(CostModel, PartialTouchScalesInvolvedProcesses) {
  const CostModel model(simple_params(4, 1));
  // <10, 10> on 4H+1S (cycle 50), request of 10 bytes at offset 0, c = 8.
  // Touched HServer 0: q = (10+10)/50 = 0.4, p = 1 + 7*0.4 = 3.8,
  //   startup = 10*(1 + 2.8*1) = 38, load = 10 + 7*10*(10/50) = 24 -> 62.
  // Untouched HServers: p = 2.8 -> 10*(1+1.8) = 28, load 14 -> 42.
  // SServer: alpha 1 -> 2.8 + 1.4 = 4.2.  Max = 62.
  ModelRequest r{OpType::kRead, 0, 10, 8};
  EXPECT_DOUBLE_EQ(model.request_cost(r, 10, 10), 62.0);
}

TEST(CostModel, ZeroSizeRequestIsFree) {
  const CostModel model(simple_params(2, 2));
  ModelRequest r{OpType::kRead, 0, 0, 1};
  EXPECT_DOUBLE_EQ(model.request_cost(r, 10, 10), 0.0);
}

TEST(CostModel, HZeroPutsNothingOnHservers) {
  const CostModel model(simple_params(6, 2));
  ModelRequest r{OpType::kRead, 0, 1000, 1};
  // All on two SServers: 500 bytes each: 1 + 50 = 51.
  EXPECT_DOUBLE_EQ(model.request_cost(r, 0, 500), 51.0);
}

TEST(CostModel, LargerStripesReduceServersTouched) {
  const CostModel model(simple_params(4, 4));
  ModelRequest r{OpType::kRead, 0, 100, 1};
  // Tiny stripes: request spread thin across everything; HServer max share
  // smaller but startup dominates equally -> compare against one-server.
  const double thin = model.request_cost(r, 25, 25);   // 25 bytes/server
  const double fat = model.request_cost(r, 100, 100);  // 100 bytes on H0
  EXPECT_DOUBLE_EQ(thin, 10 + 25 * 1.0);
  EXPECT_DOUBLE_EQ(fat, 10 + 100 * 1.0);
  EXPECT_LT(thin, fat);
}

TEST(CostModel, RegionCostSums) {
  const CostModel model(simple_params(1, 1));
  std::vector<ModelRequest> requests{{OpType::kRead, 0, 20, 1}, {OpType::kRead, 0, 20, 1}};
  EXPECT_DOUBLE_EQ(model.region_cost(requests, 10, 10),
                   2 * model.request_cost(requests[0], 10, 10));
}

// ------------------------------------------------------------ aggregate ---

TEST(CostModel, AggregateCollapsesIdenticalPatterns) {
  std::vector<ModelRequest> requests{{OpType::kRead, 0, 100, 2},
                                     {OpType::kRead, 500, 100, 2},
                                     {OpType::kWrite, 0, 100, 2},
                                     {OpType::kRead, 900, 100, 2},
                                     {OpType::kRead, 0, 200, 2}};
  const auto patterns = CostModel::aggregate(requests);
  ASSERT_EQ(patterns.size(), 3u);
  EXPECT_EQ(patterns[0].count, 3u);  // three 100-byte reads
  EXPECT_EQ(patterns[1].count, 1u);
  EXPECT_EQ(patterns[2].count, 1u);
}

TEST(CostModel, AggregatedCostMatchesExactForAlignedUniform) {
  const CostModel model(simple_params(2, 2));
  // Full-cycle requests are alignment-invariant, so sampling introduces no
  // error and the aggregated cost must equal the exact sum.
  std::vector<ModelRequest> requests(10, ModelRequest{OpType::kRead, 0, 20, 1});
  const auto patterns = CostModel::aggregate(requests);
  EXPECT_NEAR(model.aggregated_cost(patterns, 5, 5), model.region_cost(requests, 5, 5),
              1e-9);
}

// ----------------------------------------------------------- batch cost ---

TEST(BatchCost, SingleRequestMatchesHarlForm) {
  const CostModel model(simple_params(1, 1));
  const ModelRequest r{OpType::kRead, 0, 20, 1, 0.0};
  const std::vector<const ModelRequest*> batch{&r};
  // <10, 10>: HServer 10 bytes -> 10 + 10 = 20; SServer -> 1 + 1 = 2.
  EXPECT_DOUBLE_EQ(model.batch_cost(batch, 10, 10), 20.0);
}

TEST(BatchCost, AccumulatesAcrossMembers) {
  CostParams params = simple_params(1, 1);
  params.gamma_h = 0.5;
  const CostModel model(params);
  const ModelRequest a{OpType::kRead, 0, 20, 2, 0.0};
  const ModelRequest b{OpType::kRead, 20, 20, 2, 0.0};
  const std::vector<const ModelRequest*> batch{&a, &b};
  // Each request puts 10 bytes on each server; HServer: alpha*(1+1*0.5)=15
  // startup + 20 bytes accumulated * 1 = 20 -> 35.
  EXPECT_DOUBLE_EQ(model.batch_cost(batch, 10, 10), 35.0);
}

TEST(BatchCost, MixedOpsUsePerOpSsdRates) {
  const CostModel model(simple_params(0, 1));
  const ModelRequest read{OpType::kRead, 0, 10, 2, 0.0};
  const ModelRequest write{OpType::kWrite, 10, 10, 2, 0.0};
  const std::vector<const ModelRequest*> batch{&read, &write};
  // SServer-only <0, 10>: reads drain at beta_sr, writes at beta_sw; write
  // bytes dominate so alpha_sw is charged.
  // startup = 2*(1+1*1) = 4?  alpha picked by majority bytes: tie -> read.
  // touches = 2, alpha_sr = 1: startup = 1*(1+1) = 2; drain = 10*0.1+10*0.2.
  EXPECT_DOUBLE_EQ(model.batch_cost(batch, 0, 10), 2.0 + 1.0 + 2.0);
}

TEST(BatchCost, EmptyBatchIsFree) {
  const CostModel model(simple_params(2, 2));
  EXPECT_DOUBLE_EQ(model.batch_cost({}, 10, 10), 0.0);
}

TEST(BatchCost, ConcurrencyScaleKicksInForPartialBatches) {
  const CostModel model(simple_params(1, 1));
  // One member but measured concurrency 4 (siblings live in other regions):
  // the batch is scaled 4x.
  const ModelRequest lone{OpType::kRead, 0, 20, 4, 0.0};
  const ModelRequest calm{OpType::kRead, 0, 20, 1, 0.0};
  const double scaled = model.batch_cost({&lone}, 10, 10);
  const double unscaled = model.batch_cost({&calm}, 10, 10);
  EXPECT_GT(scaled, 2.0 * unscaled);
  // The non-concurrency-aware ablation ignores the measured value.
  const CostModel blind(simple_params(1, 1), false);
  EXPECT_DOUBLE_EQ(blind.batch_cost({&lone}, 10, 10), unscaled);
}

TEST(BatchedRegion, GroupsByIssueTimeAndDeduplicatesShapes) {
  std::vector<ModelRequest> requests;
  for (int iter = 0; iter < 10; ++iter) {
    for (int r = 0; r < 4; ++r) {
      requests.push_back(ModelRequest{OpType::kRead,
                                      static_cast<common::Offset>(iter * 4 + r) * 1000, 1000,
                                      4, iter * 0.01});
    }
  }
  const BatchedRegion region = BatchedRegion::build(requests);
  EXPECT_EQ(region.num_batches(), 10u);
  EXPECT_EQ(region.num_shapes(), 1u);  // all batches structurally identical

  const BatchedRegion singles = BatchedRegion::build(requests, /*batch_by_time=*/false);
  EXPECT_EQ(singles.num_batches(), 40u);
}

TEST(BatchedRegion, CostIsCountScaled) {
  // 10 identical batches must cost exactly 10x one batch.
  std::vector<ModelRequest> one;
  for (int r = 0; r < 4; ++r) {
    one.push_back(ModelRequest{OpType::kRead, static_cast<common::Offset>(r) * 1000, 1000,
                               4, 0.0});
  }
  std::vector<ModelRequest> ten;
  for (int iter = 0; iter < 10; ++iter) {
    for (const auto& r : one) {
      ModelRequest copy = r;
      copy.time = iter * 0.01;
      ten.push_back(copy);
    }
  }
  const CostModel model(simple_params(2, 2));
  const double single = BatchedRegion::build(one).cost(model, 1000, 1000);
  const double repeated = BatchedRegion::build(ten).cost(model, 1000, 1000);
  EXPECT_NEAR(repeated, 10.0 * single, 1e-9);
}

TEST(CostModel, FromClusterMirrorsProfiles) {
  sim::ClusterConfig config;
  config.num_hservers = 6;
  config.num_sservers = 2;
  const CostParams p = CostParams::from_cluster(config);
  EXPECT_EQ(p.num_hservers, 6u);
  EXPECT_EQ(p.num_sservers, 2u);
  EXPECT_DOUBLE_EQ(p.t, config.network.per_byte);
  EXPECT_GT(p.alpha_h, p.alpha_sr);         // HDD positioning dominates
  EXPECT_GT(p.beta_h, p.beta_sr);           // HDD slower per byte
  EXPECT_GT(p.alpha_sw, p.alpha_sr);        // flash writes cost more
  EXPECT_GT(p.beta_sw, p.beta_sr);
  EXPECT_LT(p.gamma_h, 1.0);                // elevator amortisation
  EXPECT_DOUBLE_EQ(p.gamma_s, 1.0);
}

}  // namespace
}  // namespace mha::core
