#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "pfs/extent_store.hpp"

namespace mha::pfs {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> out;
  for (int v : vals) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(ExtentStore, EmptyReadsZero) {
  ExtentStore store;
  EXPECT_EQ(store.read(100, 4), bytes({0, 0, 0, 0}));
  EXPECT_EQ(store.end_offset(), 0u);
  EXPECT_EQ(store.stored_bytes(), 0u);
}

TEST(ExtentStore, WriteReadRoundTrip) {
  ExtentStore store;
  store.write(10, bytes({1, 2, 3}));
  EXPECT_EQ(store.read(10, 3), bytes({1, 2, 3}));
  EXPECT_EQ(store.end_offset(), 13u);
  EXPECT_EQ(store.stored_bytes(), 3u);
}

TEST(ExtentStore, ReadSpansHoleAndData) {
  ExtentStore store;
  store.write(4, bytes({9, 9}));
  EXPECT_EQ(store.read(2, 6), bytes({0, 0, 9, 9, 0, 0}));
}

TEST(ExtentStore, OverwriteMiddle) {
  ExtentStore store;
  store.write(0, bytes({1, 1, 1, 1, 1}));
  store.write(2, bytes({7}));
  EXPECT_EQ(store.read(0, 5), bytes({1, 1, 7, 1, 1}));
  EXPECT_EQ(store.extent_count(), 1u);
}

TEST(ExtentStore, OverwriteAcrossExtents) {
  ExtentStore store;
  store.write(0, bytes({1, 1}));
  store.write(10, bytes({2, 2}));
  store.write(1, std::vector<std::uint8_t>(10, 5));  // bridges both
  EXPECT_EQ(store.read(0, 12), bytes({1, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 2}));
  EXPECT_EQ(store.extent_count(), 1u);
}

TEST(ExtentStore, AdjacentWritesMerge) {
  ExtentStore store;
  store.write(0, bytes({1}));
  store.write(1, bytes({2}));
  store.write(2, bytes({3}));
  EXPECT_EQ(store.extent_count(), 1u);
  EXPECT_EQ(store.read(0, 3), bytes({1, 2, 3}));
}

TEST(ExtentStore, DisjointWritesStaySeparate) {
  ExtentStore store;
  store.write(0, bytes({1}));
  store.write(5, bytes({2}));
  EXPECT_EQ(store.extent_count(), 2u);
  EXPECT_EQ(store.stored_bytes(), 2u);
}

TEST(ExtentStore, CoveredDetection) {
  ExtentStore store;
  store.write(10, std::vector<std::uint8_t>(10, 1));
  EXPECT_TRUE(store.covered(10, 10));
  EXPECT_TRUE(store.covered(12, 5));
  EXPECT_TRUE(store.covered(0, 0));  // empty range is trivially covered
  EXPECT_FALSE(store.covered(9, 2));
  EXPECT_FALSE(store.covered(15, 10));
  EXPECT_FALSE(store.covered(0, 5));
}

TEST(ExtentStore, CoveredAcrossMergedExtents) {
  ExtentStore store;
  store.write(0, std::vector<std::uint8_t>(5, 1));
  store.write(5, std::vector<std::uint8_t>(5, 2));
  EXPECT_TRUE(store.covered(0, 10));
  store.clear();
  EXPECT_FALSE(store.covered(0, 1));
}

TEST(ExtentStore, ZeroLengthWriteIsNoOp) {
  ExtentStore store;
  store.write(5, nullptr, 0);
  EXPECT_EQ(store.extent_count(), 0u);
}

// Property sweep: random writes against a flat reference buffer.
class ExtentStoreFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtentStoreFuzz, MatchesFlatReference) {
  constexpr std::size_t kSpace = 4096;
  std::vector<std::uint8_t> reference(kSpace, 0);
  ExtentStore store;
  common::Rng rng(GetParam());

  for (int op = 0; op < 400; ++op) {
    const std::size_t offset = rng.next_below(kSpace - 1);
    const std::size_t length = 1 + rng.next_below(kSpace - offset);
    std::vector<std::uint8_t> data(length);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    store.write(offset, data);
    std::memcpy(reference.data() + offset, data.data(), length);

    // Random probe read.
    const std::size_t roff = rng.next_below(kSpace - 1);
    const std::size_t rlen = 1 + rng.next_below(kSpace - roff);
    const auto got = store.read(roff, rlen);
    ASSERT_EQ(std::memcmp(got.data(), reference.data() + roff, rlen), 0)
        << "mismatch after op " << op;
  }
  // Full-space comparison at the end.
  EXPECT_EQ(store.read(0, kSpace), reference);
  // Invariant: extents never overlap, so stored bytes <= space.
  EXPECT_LE(store.stored_bytes(), kSpace);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtentStoreFuzz,
                         ::testing::Values(1u, 2u, 3u, 99u, 12345u));

}  // namespace
}  // namespace mha::pfs
