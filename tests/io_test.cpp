#include <gtest/gtest.h>

#include "io/mpi_file.hpp"
#include "io/mpi_sim.hpp"
#include "io/tracer.hpp"
#include "pfs/file_system.hpp"

namespace mha::io {
namespace {

using common::OpType;

sim::ClusterConfig tiny_cluster() {
  sim::ClusterConfig c;
  c.num_hservers = 1;
  c.num_sservers = 1;
  return c;
}

// --------------------------------------------------------------- MpiSim ---

TEST(MpiSim, ClocksStartAtZero) {
  MpiSim mpi(4);
  EXPECT_EQ(mpi.world_size(), 4);
  for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(mpi.now(r), 0.0);
}

TEST(MpiSim, AdvanceNeverRewinds) {
  MpiSim mpi(2);
  mpi.advance(0, 5.0);
  mpi.advance(0, 3.0);
  EXPECT_DOUBLE_EQ(mpi.now(0), 5.0);
  mpi.elapse(0, 1.5);
  EXPECT_DOUBLE_EQ(mpi.now(0), 6.5);
}

TEST(MpiSim, BarrierSynchronisesToSlowest) {
  MpiSim mpi(3);
  mpi.advance(0, 1.0);
  mpi.advance(1, 9.0);
  mpi.barrier();
  for (int r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(mpi.now(r), 9.0);
  EXPECT_DOUBLE_EQ(mpi.max_time(), 9.0);
  mpi.reset();
  EXPECT_DOUBLE_EQ(mpi.max_time(), 0.0);
}

// -------------------------------------------------------------- MpiFile ---

TEST(MpiFile, OpenRequiresExistingFile) {
  pfs::HybridPfs pfs(tiny_cluster());
  MpiSim mpi(2);
  EXPECT_FALSE(MpiFile::open(pfs, mpi, "missing").is_ok());
  (void)pfs.create_file("present");
  EXPECT_TRUE(MpiFile::open(pfs, mpi, "present").is_ok());
}

TEST(MpiFile, WriteAdvancesIssuingRankOnly) {
  pfs::HybridPfs pfs(tiny_cluster());
  (void)pfs.create_file("f");
  MpiSim mpi(2);
  auto file = *MpiFile::open(pfs, mpi, "f");
  std::vector<std::uint8_t> data(4096, 7);
  auto op = file.write_at(0, 0, data);
  ASSERT_TRUE(op.is_ok());
  EXPECT_GT(op->completion, 0.0);
  EXPECT_DOUBLE_EQ(mpi.now(0), op->completion);
  EXPECT_DOUBLE_EQ(mpi.now(1), 0.0);
}

TEST(MpiFile, ReadBackMatchesWrite) {
  pfs::HybridPfs pfs(tiny_cluster());
  (void)pfs.create_file("f");
  MpiSim mpi(1);
  auto file = *MpiFile::open(pfs, mpi, "f");
  std::vector<std::uint8_t> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  ASSERT_TRUE(file.write_at(0, 123, data).is_ok());
  auto back = file.read_vec(0, 123, data.size());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, data);
}

TEST(MpiFile, TracerCapturesEveryOp) {
  pfs::HybridPfs pfs(tiny_cluster());
  (void)pfs.create_file("f");
  MpiSim mpi(2);
  auto file = *MpiFile::open(pfs, mpi, "f");
  Tracer tracer("f");
  file.set_tracer(&tracer);

  std::vector<std::uint8_t> data(512, 1);
  ASSERT_TRUE(file.write_at(0, 0, data).is_ok());
  ASSERT_TRUE(file.write_at(1, 512, data).is_ok());
  auto read = file.read_vec(0, 0, 256);
  ASSERT_TRUE(read.is_ok());

  const auto& trace = tracer.trace();
  ASSERT_EQ(trace.records.size(), 3u);
  EXPECT_EQ(trace.records[0].op, OpType::kWrite);
  EXPECT_EQ(trace.records[0].offset, 0u);
  EXPECT_EQ(trace.records[0].size, 512u);
  EXPECT_EQ(trace.records[1].rank, 1);
  EXPECT_EQ(trace.records[2].op, OpType::kRead);
  EXPECT_GT(trace.records[2].t_start, trace.records[0].t_start);
  EXPECT_GT(trace.records[0].duration, 0.0);
}

TEST(MpiFile, TracerOverheadDelaysIo) {
  pfs::HybridPfs pfs(tiny_cluster());
  (void)pfs.create_file("f");
  std::vector<std::uint8_t> data(4096, 1);

  MpiSim mpi_a(1);
  auto plain = *MpiFile::open(pfs, mpi_a, "f");
  const double base = plain.write_at(0, 0, data)->completion;

  pfs.reset_clocks();
  MpiSim mpi_b(1);
  auto traced = *MpiFile::open(pfs, mpi_b, "f");
  Tracer tracer("f", /*per_op_overhead=*/0.5);
  traced.set_tracer(&tracer);
  const double slowed = traced.write_at(0, 0, data)->completion;
  EXPECT_NEAR(slowed - base, 0.5, 1e-9);
}

// A stub interceptor that reverses the two halves of the file.
class SwapInterceptor : public IoInterceptor {
 public:
  SwapInterceptor(common::FileId file, common::ByteCount half) : file_(file), half_(half) {}

  using IoInterceptor::translate;
  void translate(common::Offset offset, common::ByteCount size,
                 SegmentList& out) override {
    // Requests are assumed not to straddle the midpoint in this test.
    const common::Offset target = offset < half_ ? offset + half_ : offset - half_;
    out.clear();
    out.push_back(RedirectSegment{file_, target, size, offset});
  }
  common::Seconds lookup_overhead() const override { return 0.25; }

 private:
  common::FileId file_;
  common::ByteCount half_;
};

TEST(MpiFile, InterceptorRedirectsAndCharges) {
  pfs::HybridPfs pfs(tiny_cluster());
  auto id = *pfs.create_file("f");
  MpiSim mpi(1);
  auto file = *MpiFile::open(pfs, mpi, "f");
  SwapInterceptor interceptor(id, 1024);
  file.set_interceptor(&interceptor);

  std::vector<std::uint8_t> data(16, 0xAB);
  ASSERT_TRUE(file.write_at(0, 0, data).is_ok());  // really lands at 1024

  // Direct (uninterposed) read of the physical location.
  auto raw = pfs.read_bytes(id, 1024, 16, 100.0);
  ASSERT_TRUE(raw.is_ok());
  EXPECT_EQ(*raw, data);

  // Interposed read of the logical location round-trips.
  auto logical = file.read_vec(0, 0, 16);
  ASSERT_TRUE(logical.is_ok());
  EXPECT_EQ(*logical, data);

  // Lookup overhead is charged per op: two ops so far.
  EXPECT_GT(mpi.now(0), 0.5);
}

TEST(MpiFile, ZeroByteOpsSucceed) {
  pfs::HybridPfs pfs(tiny_cluster());
  (void)pfs.create_file("f");
  MpiSim mpi(1);
  auto file = *MpiFile::open(pfs, mpi, "f");
  EXPECT_TRUE(file.write_at(0, 0, nullptr, 0).is_ok());
  EXPECT_TRUE(file.read_at(0, 0, nullptr, 0).is_ok());
}

}  // namespace
}  // namespace mha::io
