// End-to-end integration: the paper's full workflow, durability across
// simulated restarts, and failure injection at module boundaries.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "kv/kvstore.hpp"
#include "layouts/scheme.hpp"
#include "trace/trace_io.hpp"
#include "workloads/apps.hpp"
#include "workloads/ior.hpp"
#include "workloads/replayer.hpp"

namespace mha {
namespace {

using common::OpType;
using namespace mha::common::literals;

sim::ClusterConfig paper_cluster() {
  sim::ClusterConfig c;
  c.num_hservers = 6;
  c.num_sservers = 2;
  return c;
}

// ----------------------------------------------------- paper's workflow ---

// The complete §III-B lifecycle: profile run -> trace file on disk ->
// off-line optimization from the file -> placement -> redirected rerun.
// Asserts byte-integrity and the headline speedup at every step.
TEST(EndToEnd, FiveChapterWorkflowWithTraceFiles) {
  const std::string trace_path = testing::TempDir() + "e2e_trace.csv";
  const std::string drt_path = testing::TempDir() + "e2e_drt.db";
  std::remove(trace_path.c_str());
  std::remove(drt_path.c_str());

  workloads::LanlConfig app;
  app.num_procs = 4;
  app.loops = 64;
  const trace::Trace workload = workloads::lanl_app2(app);

  pfs::HybridPfs pfs(paper_cluster());
  auto def = layouts::make_def();
  auto deployment = def->prepare(pfs, workload);
  ASSERT_TRUE(deployment.is_ok());

  // Phase 1: profile run with the collector; persist the trace like IOSIG.
  workloads::ReplayOptions profiling;
  profiling.trace_run = true;
  auto first = workloads::replay(pfs, *deployment, workload, profiling);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(trace::write_csv_file(first->captured, trace_path).is_ok());

  // Off-line: reload the trace from disk and deploy (phases 2-4 + DRT
  // persistence).
  auto reloaded = trace::read_csv_file(trace_path);
  ASSERT_TRUE(reloaded.is_ok());
  core::MhaOptions options;
  options.drt_path = drt_path;
  auto mha = core::MhaPipeline::deploy(pfs, *reloaded, options);
  ASSERT_TRUE(mha.is_ok()) << mha.status().to_string();

  // Phase 5: redirected rerun is faster and byte-identical.
  pfs.reset_stats();
  pfs.reset_clocks();
  layouts::Deployment redirected;
  redirected.file_name = workload.file_name;
  redirected.interceptor = std::move(mha->redirector);
  workloads::ReplayOptions verify;
  verify.verify_data = true;
  auto second = workloads::replay(pfs, redirected, workload, verify);
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  EXPECT_GT(second->aggregate_bandwidth, first->aggregate_bandwidth);

  std::remove(trace_path.c_str());
  std::remove(drt_path.c_str());
}

// The MDS's RST plus the persisted DRT fully reconstruct a deployment after
// a "power failure" — a fresh PFS process serves identical bytes.
TEST(EndToEnd, DeploymentSurvivesRestart) {
  const std::string rst_path = testing::TempDir() + "restart_rst.db";
  const std::string drt_path = testing::TempDir() + "restart_drt.db";
  std::remove(rst_path.c_str());
  std::remove(drt_path.c_str());

  workloads::IorMixedSizesConfig ior;
  ior.num_procs = 4;
  ior.request_sizes = {16_KiB, 64_KiB};
  ior.file_size = 8_MiB;
  ior.op = OpType::kRead;
  ior.file_name = "restart.dat";
  const trace::Trace workload = workloads::ior_mixed_sizes(ior);

  // First life: build everything with persistence on.
  {
    pfs::HybridPfs pfs(paper_cluster(), rst_path);
    auto original = pfs.create_file(workload.file_name);
    ASSERT_TRUE(original.is_ok());
    ASSERT_TRUE(
        layouts::populate_file(pfs, *original, trace::extent_end(workload.records)).is_ok());
    core::MhaOptions options;
    options.drt_path = drt_path;
    auto mha = core::MhaPipeline::deploy(pfs, workload, options);
    ASSERT_TRUE(mha.is_ok());
  }

  // Second life: namespace from the RST, table from the DRT store.  The
  // in-memory extent data does not survive (it is a simulator), but every
  // piece of *metadata* must: names, layouts, and the reordering map.
  pfs::HybridPfs revived(paper_cluster(), rst_path);
  ASSERT_TRUE(revived.mds().restore_from_rst().is_ok());
  ASSERT_TRUE(revived.open(workload.file_name).is_ok());

  kv::KvStore store;
  ASSERT_TRUE(store.open(drt_path).is_ok());
  auto drt = core::Drt::load(store, workload.file_name);
  ASSERT_TRUE(drt.is_ok());
  EXPECT_GT(drt->size(), 0u);

  auto redirector = core::Redirector::create(revived, std::move(drt).take());
  ASSERT_TRUE(redirector.is_ok()) << redirector.status().to_string();

  // Region files kept their optimized (non-default) layouts.
  bool saw_pair = false;
  for (const std::string& name : revived.mds().list_files()) {
    const auto& info = revived.mds().info(*revived.mds().lookup(name));
    if (name.find(".mha.r") == std::string::npos) continue;
    if (info.layout.width(0) != info.layout.width(revived.num_servers() - 1)) saw_pair = true;
  }
  EXPECT_TRUE(saw_pair);
  std::remove(rst_path.c_str());
  std::remove(drt_path.c_str());
}

// ----------------------------------------------------- failure injection ---

TEST(FailureInjection, DeployWithoutOriginalFileFails) {
  pfs::HybridPfs pfs(paper_cluster());
  workloads::LanlConfig app;
  app.num_procs = 2;
  app.loops = 4;
  const auto workload = workloads::lanl_app2(app);
  auto result = core::MhaPipeline::deploy(pfs, workload);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), common::ErrorCode::kNotFound);
}

TEST(FailureInjection, DeployTwiceRejectsExistingRegions) {
  pfs::HybridPfs pfs(paper_cluster());
  workloads::LanlConfig app;
  app.num_procs = 2;
  app.loops = 4;
  const auto workload = workloads::lanl_app2(app);
  auto original = pfs.create_file(workload.file_name);
  ASSERT_TRUE(original.is_ok());
  ASSERT_TRUE(core::MhaPipeline::deploy(pfs, workload).is_ok());
  auto again = core::MhaPipeline::deploy(pfs, workload);
  EXPECT_FALSE(again.is_ok());
  EXPECT_EQ(again.status().code(), common::ErrorCode::kAlreadyExists);
}

TEST(FailureInjection, CorruptDrtStoreIsRejectedNotMisread) {
  const std::string drt_path = testing::TempDir() + "corrupt_drt.db";
  std::remove(drt_path.c_str());
  {
    kv::KvStore store;
    ASSERT_TRUE(store.open(drt_path).is_ok());
    ASSERT_TRUE(store.put("f#0000000000000000", "garbage-not-a-row").is_ok());
  }
  kv::KvStore store;
  ASSERT_TRUE(store.open(drt_path).is_ok());
  auto drt = core::Drt::load(store, "f");
  EXPECT_FALSE(drt.is_ok());
  EXPECT_EQ(drt.status().code(), common::ErrorCode::kCorruption);
  std::remove(drt_path.c_str());
}

TEST(FailureInjection, ReadsBeyondEofThroughRedirectorAreZero) {
  pfs::HybridPfs pfs(paper_cluster());
  workloads::LanlConfig app;
  app.num_procs = 2;
  app.loops = 8;
  const auto workload = workloads::lanl_app2(app);
  auto original = pfs.create_file(workload.file_name);
  ASSERT_TRUE(original.is_ok());
  ASSERT_TRUE(
      layouts::populate_file(pfs, *original, trace::extent_end(workload.records)).is_ok());
  auto mha = core::MhaPipeline::deploy(pfs, workload);
  ASSERT_TRUE(mha.is_ok());

  io::MpiSim mpi(1);
  auto file = *io::MpiFile::open(pfs, mpi, workload.file_name);
  file.set_interceptor(mha->redirector.get());
  // Far past every region and the original extent: zero-fill, no error.
  auto past = file.read_vec(0, 1_GiB, 4096);
  ASSERT_TRUE(past.is_ok());
  EXPECT_EQ(*past, std::vector<std::uint8_t>(4096, 0));
  // A request straddling the last mapped byte also succeeds.
  const auto extent = trace::extent_end(workload.records);
  auto straddle = file.read_vec(0, extent - 100, 200);
  ASSERT_TRUE(straddle.is_ok());
}

TEST(FailureInjection, ZeroSizeRequestsFlowThroughWholeStack) {
  pfs::HybridPfs pfs(paper_cluster());
  workloads::LanlConfig app;
  app.num_procs = 2;
  app.loops = 8;
  const auto workload = workloads::lanl_app2(app);
  auto original = pfs.create_file(workload.file_name);
  ASSERT_TRUE(original.is_ok());
  auto mha = core::MhaPipeline::deploy(pfs, workload);
  ASSERT_TRUE(mha.is_ok());

  io::MpiSim mpi(1);
  auto file = *io::MpiFile::open(pfs, mpi, workload.file_name);
  file.set_interceptor(mha->redirector.get());
  EXPECT_TRUE(file.read_at(0, 0, nullptr, 0).is_ok());
  EXPECT_TRUE(file.write_at(0, 12345, nullptr, 0).is_ok());
}

// ------------------------------------------------- cross-scheme equality ---

// All four schemes must serve exactly the same bytes for the same workload
// (they differ only in placement), checked pairwise via full-extent reads.
TEST(CrossScheme, AllSchemesServeIdenticalBytes) {
  workloads::IorMixedSizesConfig ior;
  ior.num_procs = 4;
  ior.request_sizes = {8_KiB, 32_KiB};
  ior.file_size = 4_MiB;
  ior.op = OpType::kRead;
  ior.file_name = "same.dat";
  const trace::Trace workload = workloads::ior_mixed_sizes(ior);
  const auto extent = trace::extent_end(workload.records);

  std::vector<std::vector<std::uint8_t>> images;
  for (auto& scheme : layouts::all_schemes()) {
    pfs::HybridPfs pfs(paper_cluster());
    auto deployment = scheme->prepare(pfs, workload);
    ASSERT_TRUE(deployment.is_ok()) << scheme->name();
    io::MpiSim mpi(1);
    auto file = *io::MpiFile::open(pfs, mpi, workload.file_name);
    if (deployment->interceptor != nullptr) {
      file.set_interceptor(deployment->interceptor.get());
    }
    auto image = file.read_vec(0, 0, extent);
    ASSERT_TRUE(image.is_ok()) << scheme->name();
    images.push_back(std::move(*image));
  }
  for (std::size_t i = 1; i < images.size(); ++i) {
    EXPECT_EQ(images[i], images[0]) << "scheme " << i << " diverged";
  }
}

}  // namespace
}  // namespace mha
