// Client-side page cache: consistency modes, CLOCK eviction with
// heterogeneity-aware retention, write-back coalescing (flush runs split
// exactly at translate boundaries and dispatch once per touched server),
// sequential read-ahead that refuses to cross a placement-class boundary
// without a fresh DRT lookup, flush-charge job attribution, and cached
// replay correctness/determinism over real workload shapes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/page_cache.hpp"
#include "common/units.hpp"
#include "core/placer.hpp"
#include "core/redirector.hpp"
#include "core/reorganizer.hpp"
#include "io/mpi_file.hpp"
#include "layouts/scheme.hpp"
#include "repair/membership.hpp"
#include "repair/rebuilder.hpp"
#include "workloads/apps.hpp"
#include "workloads/replayer.hpp"

namespace mha {
namespace {

using common::OpType;
using namespace common::literals;

sim::DeviceProfile flat_device(const char* name, double startup, double per_byte) {
  sim::DeviceProfile d;
  d.name = name;
  d.startup_read = startup;
  d.startup_write = 2 * startup;
  d.per_byte_read = per_byte;
  d.per_byte_write = 2 * per_byte;
  d.queued_startup_factor = 1.0;
  return d;
}

sim::ClusterConfig tiny_cluster(std::size_t hservers = 2, std::size_t sservers = 1) {
  sim::ClusterConfig config;
  config.num_hservers = hservers;
  config.num_sservers = sservers;
  config.hdd = flat_device("hdd", 1.0, 0.001);
  config.ssd = flat_device("ssd", 0.1, 0.0001);
  config.network = sim::null_network();
  return config;
}

std::vector<std::uint8_t> pattern(common::Offset offset, common::ByteCount size) {
  std::vector<std::uint8_t> out(size);
  for (common::ByteCount i = 0; i < size; ++i) out[i] = layouts::populate_byte(offset + i);
  return out;
}

std::vector<std::uint8_t> marked(common::ByteCount size, std::uint8_t mark) {
  return std::vector<std::uint8_t>(size, mark);
}

std::uint64_t total_sub_requests(const pfs::HybridPfs& pfs) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < pfs.num_servers(); ++i) {
    total += pfs.server_stats(i).sub_requests;
  }
  return total;
}

/// A migrated world with a placement-class boundary the cache can observe:
///   [0, 128K)     -> region r0, SServer-only stripe pair (h = 0)
///   [128K, 256K)  -> passthrough (original file, HServer-backed)
///   [256K, 384K)  -> region r1, HServer-backed stripe pair
///   [384K, 512K)  -> passthrough
struct CacheWorld {
  std::unique_ptr<pfs::HybridPfs> pfs;
  std::unique_ptr<core::Redirector> redirector;
  std::unique_ptr<io::MpiSim> mpi;
  std::unique_ptr<io::MpiFile> file;
  common::FileId original = common::kInvalidFileId;

  explicit CacheWorld(int world = 2, bool store_data = true) {
    pfs::PfsOptions options;
    options.store_data = store_data;
    pfs = std::make_unique<pfs::HybridPfs>(tiny_cluster(2, 1), options);
    original = *pfs->create_file("orig");
    EXPECT_TRUE(layouts::populate_file(*pfs, original, 512_KiB).is_ok());

    core::ReorganizePlan plan;
    plan.drt = core::Drt("orig");
    core::Region r0;
    r0.name = "orig.mha.r0";
    r0.length = 128_KiB;
    core::Region r1;
    r1.name = "orig.mha.r1";
    r1.length = 128_KiB;
    plan.regions.push_back(r0);
    plan.regions.push_back(r1);
    EXPECT_TRUE(plan.drt.insert(core::DrtEntry{0, 128_KiB, "orig.mha.r0", 0}).is_ok());
    EXPECT_TRUE(plan.drt.insert(core::DrtEntry{256_KiB, 128_KiB, "orig.mha.r1", 0}).is_ok());
    auto report = core::Placer::apply(
        *pfs, plan, {core::StripePair{0, 64_KiB}, core::StripePair{32_KiB, 32_KiB}});
    EXPECT_TRUE(report.is_ok()) << report.status().to_string();

    auto redir = core::Redirector::create(*pfs, std::move(plan.drt));
    EXPECT_TRUE(redir.is_ok());
    redirector = std::make_unique<core::Redirector>(std::move(*redir));
    mpi = std::make_unique<io::MpiSim>(world);
    auto f = io::MpiFile::open(*pfs, *mpi, "orig");
    EXPECT_TRUE(f.is_ok());
    file = std::make_unique<io::MpiFile>(std::move(*f));
    file->set_interceptor(redirector.get());
  }

  cache::CacheConfig small_config() const {
    cache::CacheConfig config;
    config.page_size = 16_KiB;
    config.num_pages = 16;
    config.mode = cache::ConsistencyMode::kWriteBack;
    return config;
  }
};

// ----------------------------------------------------------- hits/misses ---

TEST(Cache, ReadMissFillsThenHits) {
  CacheWorld w;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, w.small_config());

  std::vector<std::uint8_t> buf(4_KiB);
  auto miss = cached.read_at(0, 10_KiB, buf.data(), buf.size());
  ASSERT_TRUE(miss.is_ok()) << miss.status().to_string();
  EXPECT_EQ(buf, pattern(10_KiB, 4_KiB));
  EXPECT_EQ(cached.metrics().misses, 1u);
  EXPECT_EQ(cached.metrics().hits, 0u);
  EXPECT_TRUE(cached.is_cached(0, 10_KiB));

  const std::uint64_t before = total_sub_requests(*w.pfs);
  auto hit = cached.read_at(0, 8_KiB, buf.data(), buf.size());
  ASSERT_TRUE(hit.is_ok());
  EXPECT_EQ(buf, pattern(8_KiB, 4_KiB));
  EXPECT_EQ(cached.metrics().hits, 1u);
  // The hit never touched a server and cost only the hit overhead.
  EXPECT_EQ(total_sub_requests(*w.pfs), before);
  EXPECT_LT(hit->duration(), miss->duration());
  EXPECT_NEAR(hit->duration(), w.small_config().hit_overhead, 1e-10);
}

TEST(Cache, WholePageFillServesNeighbouringOffsets) {
  CacheWorld w;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, w.small_config());
  std::vector<std::uint8_t> buf(1_KiB);
  ASSERT_TRUE(cached.read_at(0, 0, buf.data(), buf.size()).is_ok());
  // The miss filled the whole 16 KiB page: the far end of the page hits.
  ASSERT_TRUE(cached.read_at(0, 15_KiB, buf.data(), buf.size()).is_ok());
  EXPECT_EQ(buf, pattern(15_KiB, 1_KiB));
  EXPECT_EQ(cached.metrics().hits, 1u);
  EXPECT_EQ(cached.metrics().misses, 1u);
}

// ------------------------------------------------------------ write-back ---

TEST(Cache, WriteBackAbsorbsUntilSyncFlush) {
  CacheWorld w;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, w.small_config());

  const auto bytes = marked(4_KiB, 0xEE);
  const std::uint64_t before = total_sub_requests(*w.pfs);
  ASSERT_TRUE(cached.write_at(0, 130_KiB, bytes.data(), bytes.size()).is_ok());
  EXPECT_EQ(cached.metrics().absorbed_writes, 1u);
  EXPECT_EQ(total_sub_requests(*w.pfs), before);  // nothing dispatched yet
  EXPECT_TRUE(cached.is_dirty(0, 130_KiB));
  // The underlying bytes are still the original pattern (write deferred).
  EXPECT_EQ(*w.pfs->read_bytes(w.original, 130_KiB, 4_KiB, 0.0), pattern(130_KiB, 4_KiB));

  auto flushed = cached.flush_all(w.mpi->max_time());
  ASSERT_TRUE(flushed.is_ok());
  EXPECT_FALSE(cached.is_dirty(0, 130_KiB));
  EXPECT_GT(total_sub_requests(*w.pfs), before);
  // [128K, 256K) is passthrough: the original file now holds the bytes.
  EXPECT_EQ(*w.pfs->read_bytes(w.original, 130_KiB, 4_KiB, 1e9), bytes);
  EXPECT_EQ(cached.metrics().flush_by_trigger[static_cast<int>(cache::FlushTrigger::kSync)],
            1u);
}

TEST(Cache, SmallWritesCoalesceIntoOnePageRun) {
  CacheWorld w;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, w.small_config());

  // The LANL shape in miniature: 16 B + (4 KiB - 16 B) + 4 KiB per loop,
  // sequential — 24 application writes, one contiguous 32 KiB dirty run.
  common::Offset off = 130_KiB;
  std::vector<std::uint8_t> bytes(8_KiB, 0xAB);
  for (int loop = 0; loop < 8; ++loop) {
    ASSERT_TRUE(cached.write_at(0, off, bytes.data(), 16).is_ok());
    ASSERT_TRUE(cached.write_at(0, off + 16, bytes.data(), 4_KiB - 16).is_ok());
    ASSERT_TRUE(cached.write_at(0, off + 4_KiB, bytes.data(), 4_KiB).is_ok());
    off += 8_KiB;
  }
  // Absorption is page-granular: 24 application writes, of which 4 cross a
  // 16 KiB page boundary -> 28 page-writes absorbed.
  EXPECT_EQ(cached.metrics().absorbed_writes, 28u);
  EXPECT_GT(cached.metrics().coalesced_writes, 0u);

  ASSERT_TRUE(cached.flush_all(w.mpi->max_time()).is_ok());
  // One flush event, one coalesced run: the 64 KiB dirty hull is contiguous
  // and single-job, so it leaves as a single bulk op.
  EXPECT_EQ(cached.metrics().flushes, 1u);
  EXPECT_EQ(cached.metrics().flush_ops, 1u);
  EXPECT_EQ(cached.metrics().flush_bytes, 64_KiB);
}

TEST(Cache, LanlPatternCutsServerOpsByOrderOfMagnitude) {
  // Same write sequence, uncached vs write-back cached, on identical
  // startup-dominated clusters (the LANL regime: per-op seek cost dwarfs the
  // byte cost): the cached run must dispatch >= 10x fewer server sub-ops and
  // finish at least 3x sooner (the acceptance shape ext_cache gates at full
  // scale).
  const auto run = [](bool use_cache) {
    sim::ClusterConfig cluster = tiny_cluster(2, 1);
    cluster.hdd = flat_device("hdd", 1.0, 1e-5);
    cluster.ssd = flat_device("ssd", 0.1, 1e-6);
    pfs::PfsOptions options;
    options.store_data = true;
    pfs::HybridPfs pfs(cluster, options);
    (void)*pfs.create_file("lanl");
    io::MpiSim mpi(1);
    auto file = io::MpiFile::open(pfs, mpi, "lanl");
    EXPECT_TRUE(file.is_ok());
    cache::CacheConfig config;
    config.page_size = 16_KiB;
    config.num_pages = 64;
    std::unique_ptr<cache::CachedFile> cached;
    if (use_cache) cached = std::make_unique<cache::CachedFile>(*file, mpi, pfs, config);

    std::vector<std::uint8_t> payload(8_KiB, 0x5A);
    common::Offset off = 0;
    for (int loop = 0; loop < 64; ++loop) {
      const common::ByteCount sizes[3] = {16, 4_KiB - 16, 4_KiB};
      for (const common::ByteCount size : sizes) {
        if (use_cache) {
          EXPECT_TRUE(cached->write_at(0, off, payload.data(), size).is_ok());
        } else {
          EXPECT_TRUE(file->write_at(0, off, payload.data(), size).is_ok());
        }
        off += size;
      }
    }
    common::Seconds makespan = mpi.max_time();
    if (use_cache) {
      auto tail = cached->flush_all(mpi.max_time());
      EXPECT_TRUE(tail.is_ok());
      makespan = std::max(makespan, *tail);
    }
    return std::pair<std::uint64_t, common::Seconds>(total_sub_requests(pfs), makespan);
  };

  const auto [uncached_ops, uncached_time] = run(false);
  const auto [cached_ops, cached_time] = run(true);
  EXPECT_GE(uncached_ops, 10 * cached_ops)
      << "uncached=" << uncached_ops << " cached=" << cached_ops;
  EXPECT_LT(cached_time, uncached_time / 3.0);
}

TEST(Cache, FlushSplitsExactlyAtTranslateBoundaries) {
  CacheWorld w;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, w.small_config());

  // Dirty a contiguous 64 KiB run straddling the region-to-passthrough
  // boundary at 128K: logically one bulk op, physically split by translate.
  const auto bytes = marked(16_KiB, 0xD7);
  for (common::Offset off = 96_KiB; off < 160_KiB; off += 16_KiB) {
    ASSERT_TRUE(cached.write_at(0, off, bytes.data(), bytes.size()).is_ok());
  }
  ASSERT_TRUE(cached.flush_all(w.mpi->max_time()).is_ok());
  EXPECT_EQ(cached.metrics().flush_ops, 1u);

  // [96K, 128K) landed in region r0 at region offsets [96K, 128K)...
  auto r0 = w.pfs->open("orig.mha.r0");
  ASSERT_TRUE(r0.is_ok());
  EXPECT_EQ(*w.pfs->read_bytes(*r0, 96_KiB, 32_KiB, 1e9), marked(32_KiB, 0xD7));
  // ...the passthrough half landed in the original file...
  EXPECT_EQ(*w.pfs->read_bytes(w.original, 128_KiB, 32_KiB, 1e9), marked(32_KiB, 0xD7));
  // ...and the original's covered range was NOT touched (exact split).
  EXPECT_EQ(*w.pfs->read_bytes(w.original, 96_KiB, 32_KiB, 1e9), pattern(96_KiB, 32_KiB));
}

TEST(Cache, CoalescedFlushDispatchesOncePerTouchedServer) {
  CacheWorld w;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, w.small_config());

  // 64 KiB contiguous dirty run inside region r1 (stripe pair h=32K,s=32K on
  // 2H+1S: region offsets [0,32K) -> H0, [32K,64K) -> H1).  Four dirty
  // 16 KiB pages must leave as ONE run costing exactly one sub-op per
  // touched server — per-page dispatch would cost four.
  const auto bytes = marked(16_KiB, 0x33);
  for (common::Offset off = 256_KiB; off < 320_KiB; off += 16_KiB) {
    ASSERT_TRUE(cached.write_at(0, off, bytes.data(), bytes.size()).is_ok());
  }
  const std::uint64_t before = total_sub_requests(*w.pfs);
  ASSERT_TRUE(cached.flush_all(w.mpi->max_time()).is_ok());
  EXPECT_EQ(total_sub_requests(*w.pfs) - before, 2u);  // H0 + H1, nothing else
}

TEST(Cache, FlushChargesTheDirtyingJob) {
  CacheWorld w;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, w.small_config());

  const auto bytes = marked(4_KiB, 0x44);
  w.pfs->set_active_job(3);
  ASSERT_TRUE(cached.write_at(0, 132_KiB, bytes.data(), bytes.size()).is_ok());
  // Another tenant triggers the flush; the charge must follow the dirtier.
  w.pfs->set_active_job(1);
  ASSERT_TRUE(cached.flush_all(w.mpi->max_time()).is_ok());
  w.pfs->set_active_job(common::kDefaultJob);

  common::ByteCount job3 = 0, job1 = 0;
  for (std::size_t i = 0; i < w.pfs->num_servers(); ++i) {
    job3 += w.pfs->data_server(i).sim().job_stats(3).bytes_written;
    job1 += w.pfs->data_server(i).sim().job_stats(1).bytes_written;
  }
  EXPECT_EQ(job3, 4_KiB);
  EXPECT_EQ(job1, 0u);
}

TEST(Cache, ConflictingReadFlushesDirtyPageFirst) {
  CacheWorld w;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, w.small_config());

  // Write-allocate dirties only [4K, 8K) of the page; a read of the whole
  // page is not covered by the valid hull -> conflict flush, then refill.
  const auto bytes = marked(4_KiB, 0x88);
  ASSERT_TRUE(cached.write_at(0, 132_KiB, bytes.data(), bytes.size()).is_ok());
  ASSERT_TRUE(cached.is_dirty(0, 132_KiB));

  std::vector<std::uint8_t> buf(16_KiB);
  ASSERT_TRUE(cached.read_at(0, 128_KiB, buf.data(), buf.size()).is_ok());
  EXPECT_EQ(
      cached.metrics().flush_by_trigger[static_cast<int>(cache::FlushTrigger::kConflict)],
      1u);
  EXPECT_FALSE(cached.is_dirty(0, 132_KiB));
  // The refilled page shows the flushed write composed over the pattern.
  auto expect = pattern(128_KiB, 16_KiB);
  std::fill(expect.begin() + 4_KiB, expect.begin() + 8_KiB, 0x88);
  EXPECT_EQ(buf, expect);
}

TEST(Cache, PressureFlushDrainsHServerPagesFirst) {
  CacheWorld w;
  cache::CacheConfig config = w.small_config();
  config.num_pages = 8;
  config.dirty_high = 0.5;  // pressure beyond 4 dirty pages
  config.dirty_low = 0.25;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, config);

  const auto bytes = marked(16_KiB, 0x21);
  // Two SServer-backed dirty pages (region r0) ...
  ASSERT_TRUE(cached.write_at(0, 0, bytes.data(), bytes.size()).is_ok());
  ASSERT_TRUE(cached.write_at(0, 32_KiB, bytes.data(), bytes.size()).is_ok());
  // ... then HServer-backed dirty pages (region r1) until pressure trips.
  ASSERT_TRUE(cached.write_at(0, 256_KiB, bytes.data(), bytes.size()).is_ok());
  ASSERT_TRUE(cached.write_at(0, 288_KiB, bytes.data(), bytes.size()).is_ok());
  ASSERT_TRUE(cached.write_at(0, 320_KiB, bytes.data(), bytes.size()).is_ok());

  EXPECT_GT(
      cached.metrics().flush_by_trigger[static_cast<int>(cache::FlushTrigger::kPressure)],
      0u);
  // The HServer pages went first; the SServer pages are still absorbed.
  EXPECT_TRUE(cached.is_dirty(0, 0));
  EXPECT_TRUE(cached.is_dirty(0, 32_KiB));
  EXPECT_FALSE(cached.is_dirty(0, 256_KiB));
}

TEST(Cache, JobDeadlineTriggersFlush) {
  CacheWorld w;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, w.small_config());

  const auto bytes = marked(4_KiB, 0x66);
  w.pfs->set_active_deadline(5.0);
  ASSERT_TRUE(cached.write_at(0, 132_KiB, bytes.data(), bytes.size()).is_ok());
  w.pfs->set_active_deadline(std::numeric_limits<double>::infinity());
  ASSERT_TRUE(cached.is_dirty(0, 132_KiB));

  // Nothing due yet: an access before the deadline does not flush.
  std::vector<std::uint8_t> buf(1_KiB);
  ASSERT_TRUE(cached.read_at(0, 400_KiB, buf.data(), buf.size()).is_ok());
  EXPECT_TRUE(cached.is_dirty(0, 132_KiB));

  // Past the deadline the next access drains the due page.
  w.mpi->advance(0, 6.0);
  ASSERT_TRUE(cached.read_at(0, 420_KiB, buf.data(), buf.size()).is_ok());
  EXPECT_FALSE(cached.is_dirty(0, 132_KiB));
  EXPECT_EQ(
      cached.metrics().flush_by_trigger[static_cast<int>(cache::FlushTrigger::kDeadline)],
      1u);
  EXPECT_EQ(*w.pfs->read_bytes(w.original, 132_KiB, 4_KiB, 1e9), bytes);
}

// ------------------------------------------------------ consistency modes ---

TEST(Cache, WriteThroughKeepsStoreCurrent) {
  CacheWorld w;
  cache::CacheConfig config = w.small_config();
  config.mode = cache::ConsistencyMode::kWriteThrough;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, config);

  std::vector<std::uint8_t> buf(16_KiB);
  ASSERT_TRUE(cached.read_at(0, 128_KiB, buf.data(), buf.size()).is_ok());
  const auto bytes = marked(4_KiB, 0x99);
  ASSERT_TRUE(cached.write_at(0, 130_KiB, bytes.data(), bytes.size()).is_ok());
  EXPECT_EQ(cached.metrics().write_throughs, 1u);
  EXPECT_EQ(cached.dirty_pages(0), 0u);
  // Store current immediately; the cached copy stayed coherent and hits.
  EXPECT_EQ(*w.pfs->read_bytes(w.original, 130_KiB, 4_KiB, 1e9), bytes);
  ASSERT_TRUE(cached.read_at(0, 130_KiB, buf.data(), 4_KiB).is_ok());
  EXPECT_EQ(std::vector<std::uint8_t>(buf.begin(), buf.begin() + 4_KiB), bytes);
  EXPECT_GT(cached.metrics().hits, 0u);
}

TEST(Cache, CloseToOpenFlushesAndInvalidatesAtEpoch) {
  CacheWorld w;
  cache::CacheConfig config = w.small_config();
  config.mode = cache::ConsistencyMode::kCloseToOpen;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, config);

  const auto bytes = marked(4_KiB, 0x77);
  ASSERT_TRUE(cached.write_at(0, 132_KiB, bytes.data(), bytes.size()).is_ok());
  EXPECT_TRUE(cached.is_cached(0, 132_KiB));

  auto epoch = cached.epoch_close();
  ASSERT_TRUE(epoch.is_ok());
  EXPECT_FALSE(cached.is_cached(0, 132_KiB));
  EXPECT_EQ(cached.dirty_pages(0), 0u);
  EXPECT_EQ(*w.pfs->read_bytes(w.original, 132_KiB, 4_KiB, 1e9), bytes);
  // Every rank observed the epoch's flush completion.
  EXPECT_GE(w.mpi->now(1), *epoch - 1e-12);
}

TEST(Cache, SharedPoolIsCoherentAcrossRanks) {
  CacheWorld w;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, w.small_config());
  const auto bytes = marked(4_KiB, 0x13);
  ASSERT_TRUE(cached.write_at(0, 132_KiB, bytes.data(), bytes.size()).is_ok());
  // Rank 1 reads rank 0's absorbed write out of the shared pool.
  std::vector<std::uint8_t> buf(4_KiB);
  ASSERT_TRUE(cached.read_at(1, 132_KiB, buf.data(), buf.size()).is_ok());
  EXPECT_EQ(buf, bytes);
  EXPECT_GT(cached.metrics().hits, 0u);
}

TEST(Cache, PerClientPoolsAreIndependent) {
  CacheWorld w;
  cache::CacheConfig config = w.small_config();
  config.shared = false;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, config);
  std::vector<std::uint8_t> buf(4_KiB);
  ASSERT_TRUE(cached.read_at(0, 128_KiB, buf.data(), buf.size()).is_ok());
  EXPECT_TRUE(cached.is_cached(0, 128_KiB));
  EXPECT_FALSE(cached.is_cached(1, 128_KiB));
}

// -------------------------------------------------- eviction & retention ---

TEST(Cache, ClockEvictionPreferentiallyRetainsHServerPages) {
  CacheWorld w;
  cache::CacheConfig config = w.small_config();
  config.num_pages = 4;
  config.readahead_pages = 0;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, config);

  std::vector<std::uint8_t> buf(1_KiB);
  // One HServer-backed page (region r1) ...
  ASSERT_TRUE(cached.read_at(0, 256_KiB, buf.data(), buf.size()).is_ok());
  ASSERT_EQ(cached.cached_class(0, 256_KiB), cache::PageClass::kHServer);
  // ... then stream SServer-backed pages (region r0) through the tiny pool:
  // five fills through the three remaining frames force two evictions.  A
  // boost-1 page can be swept out within two evictions; the HServer page's
  // boost of 3 guarantees it outlives them.
  for (common::Offset off = 0; off < 80_KiB; off += 16_KiB) {
    ASSERT_TRUE(cached.read_at(0, off, buf.data(), buf.size()).is_ok());
  }
  EXPECT_EQ(cached.metrics().evict_clean, 2u);
  EXPECT_TRUE(cached.is_cached(0, 256_KiB));
}

TEST(Cache, LargeRequestsBypassThePool) {
  CacheWorld w;
  cache::CacheConfig config = w.small_config();
  config.num_pages = 8;
  config.bypass_pages = 2;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, config);

  // Dirty a page inside the bypass range first: the bypass must flush it so
  // the uncached read sees the absorbed bytes.
  const auto bytes = marked(4_KiB, 0x55);
  ASSERT_TRUE(cached.write_at(0, 132_KiB, bytes.data(), bytes.size()).is_ok());

  std::vector<std::uint8_t> buf(64_KiB);
  ASSERT_TRUE(cached.read_at(0, 128_KiB, buf.data(), buf.size()).is_ok());
  EXPECT_EQ(cached.metrics().bypasses, 1u);
  auto expect = pattern(128_KiB, 64_KiB);
  std::fill(expect.begin() + 4_KiB, expect.begin() + 8_KiB, 0x55);
  EXPECT_EQ(buf, expect);
  EXPECT_FALSE(cached.is_cached(0, 128_KiB));
}

// ------------------------------------------------------------- read-ahead ---

TEST(Cache, SequentialReadsTriggerBatchedPrefetch) {
  CacheWorld w;
  cache::CacheConfig config = w.small_config();
  config.readahead_trigger = 2;
  config.readahead_pages = 4;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, config);

  std::vector<std::uint8_t> buf(16_KiB);
  // Two sequential reads arm the stream; the second issues one batched
  // prefetch of the next four pages.
  ASSERT_TRUE(cached.read_at(0, 384_KiB, buf.data(), buf.size()).is_ok());
  ASSERT_TRUE(cached.read_at(0, 400_KiB, buf.data(), buf.size()).is_ok());
  EXPECT_EQ(cached.metrics().prefetch_batches, 1u);
  EXPECT_EQ(cached.metrics().prefetch_pages, 4u);
  EXPECT_TRUE(cached.is_cached(0, 416_KiB));
  EXPECT_TRUE(cached.is_cached(0, 464_KiB));

  // The streamed pages now hit (some while their fill is still in flight).
  const std::uint64_t misses_before = cached.metrics().misses;
  for (common::Offset off = 416_KiB; off < 480_KiB; off += 16_KiB) {
    ASSERT_TRUE(cached.read_at(0, off, buf.data(), buf.size()).is_ok());
    EXPECT_EQ(buf, pattern(off, 16_KiB));
  }
  EXPECT_EQ(cached.metrics().misses, misses_before);
  EXPECT_GT(cached.metrics().prefetch_hits, 0u);
}

TEST(Cache, ReadAheadStopsAtPlacementClassBoundary) {
  CacheWorld w;
  cache::CacheConfig config = w.small_config();
  config.readahead_trigger = 2;
  config.readahead_pages = 6;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, config);

  std::vector<std::uint8_t> buf(8_KiB);
  // Stream inside region r0 (SServer class); the 6-page window would reach
  // past the class boundary at 128K into HServer-backed passthrough.  The
  // second read hits the page the first one filled, so every translation
  // between the two counter reads belongs to the read-ahead machinery.
  ASSERT_TRUE(cached.read_at(0, 64_KiB, buf.data(), buf.size()).is_ok());
  const std::size_t lookups_before = w.redirector->translations();
  ASSERT_TRUE(cached.read_at(0, 72_KiB, buf.data(), buf.size()).is_ok());

  // Prefetch covered the rest of r0 but refused to cross into the different
  // class...
  EXPECT_TRUE(cached.is_cached(0, 80_KiB));
  EXPECT_TRUE(cached.is_cached(0, 96_KiB));
  EXPECT_TRUE(cached.is_cached(0, 112_KiB));
  EXPECT_FALSE(cached.is_cached(0, 128_KiB));
  EXPECT_FALSE(cached.is_cached(0, 144_KiB));
  // ... and the stop decision came from fresh DRT lookups (the placement
  // probe translates; a stale cached guess would not).
  EXPECT_GT(w.redirector->translations(), lookups_before);

  // Same stream shape fully inside one class keeps prefetching freely:
  // passthrough [384K..) has no class change ahead.
  ASSERT_TRUE(cached.read_at(0, 384_KiB, buf.data(), buf.size()).is_ok());
  ASSERT_TRUE(cached.read_at(0, 392_KiB, buf.data(), buf.size()).is_ok());
  EXPECT_TRUE(cached.is_cached(0, 416_KiB));
  EXPECT_TRUE(cached.is_cached(0, 432_KiB));
}

// --------------------------------------------------------- cached replays ---

TEST(Cache, CachedReplayVerifiesAndMatchesUncachedBytes) {
  workloads::LanlConfig lanl;
  lanl.num_procs = 4;
  lanl.loops = 24;
  const trace::Trace trace = workloads::lanl_app2(lanl);

  const auto run = [&](const cache::CacheConfig* config,
                       cache::CacheMetrics* metrics) -> workloads::ReplayResult {
    // DEF striping: every uncached request pays per-server startups, the
    // regime write-back coalescing wins in.  (The MHA-scheme cached path is
    // pinned byte-level by CloseToOpenReplayVerifies.)
    auto scheme = layouts::make_def();
    // Startup-dominated devices (the small-write regime the cache targets);
    // byte-correctness is pinned by verify_data regardless of timing.
    sim::ClusterConfig cluster = tiny_cluster(2, 1);
    cluster.hdd = flat_device("hdd", 1.0, 1e-5);
    cluster.ssd = flat_device("ssd", 0.1, 1e-6);
    pfs::PfsOptions options;
    options.store_data = true;
    pfs::HybridPfs pfs(cluster, options);
    auto deployment = scheme->prepare(pfs, trace);
    EXPECT_TRUE(deployment.is_ok());
    workloads::ReplayOptions replay_options;
    replay_options.verify_data = true;
    replay_options.cache = config;
    replay_options.cache_metrics = metrics;
    auto result = workloads::replay(pfs, *deployment, trace, replay_options);
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    return result.is_ok() ? std::move(result).take() : workloads::ReplayResult{};
  };

  cache::CacheConfig config;
  config.page_size = 32_KiB;
  config.num_pages = 64;
  // Deep drain per watermark flush: larger sorted runs, fewer dispatches.
  config.dirty_low = 0.125;
  cache::CacheMetrics metrics;
  const workloads::ReplayResult uncached = run(nullptr, nullptr);
  const workloads::ReplayResult cached = run(&config, &metrics);

  // verify_data already pinned byte correctness inside both replays; the
  // cached one must also have absorbed the small writes and won time.
  EXPECT_EQ(cached.bytes_written, uncached.bytes_written);
  EXPECT_GT(metrics.absorbed_writes, 0u);
  EXPECT_GT(metrics.flushes, 0u);
  EXPECT_LT(cached.makespan, uncached.makespan);

  // Determinism: an identical cached replay reproduces makespan and counters.
  cache::CacheMetrics metrics2;
  const workloads::ReplayResult again = run(&config, &metrics2);
  EXPECT_DOUBLE_EQ(again.makespan, cached.makespan);
  EXPECT_EQ(metrics2.flush_ops, metrics.flush_ops);
  EXPECT_EQ(metrics2.hits, metrics.hits);
}

TEST(Cache, CloseToOpenReplayVerifies) {
  workloads::LanlConfig lanl;
  lanl.num_procs = 4;
  lanl.loops = 12;
  const trace::Trace trace = workloads::lanl_app2(lanl);
  auto scheme = layouts::make_mha();
  pfs::PfsOptions options;
  options.store_data = true;
  pfs::HybridPfs pfs(tiny_cluster(2, 1), options);
  auto deployment = scheme->prepare(pfs, trace);
  ASSERT_TRUE(deployment.is_ok());
  cache::CacheConfig config;
  config.page_size = 32_KiB;
  config.num_pages = 32;
  config.mode = cache::ConsistencyMode::kCloseToOpen;
  config.shared = false;  // per-client pools need the epoch flushes
  workloads::ReplayOptions replay_options;
  replay_options.verify_data = true;
  replay_options.cache = &config;
  auto result = workloads::replay(pfs, *deployment, trace, replay_options);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
}

// ------------------------------------------------- cache x permanent loss ---

/// A replicated world for the cache-under-loss tests: 2H+2S, one hot
/// H-resident region [0, 128K) replicated onto an SServer (replicate_hot),
/// passthrough above.  Killing HServer 0 wipes its stores, so any
/// byte-correct page fill below really came from the replica.
struct LossWorld {
  std::unique_ptr<pfs::HybridPfs> pfs;
  std::unique_ptr<core::Redirector> redirector;
  std::unique_ptr<repair::Membership> membership;
  std::unique_ptr<io::MpiSim> mpi;
  std::unique_ptr<io::MpiFile> file;

  LossWorld() {
    pfs = std::make_unique<pfs::HybridPfs>(tiny_cluster(2, 2));
    auto original = pfs->create_file("orig");
    EXPECT_TRUE(original.is_ok());
    EXPECT_TRUE(layouts::populate_file(*pfs, *original, 256_KiB).is_ok());

    core::ReorganizePlan plan;
    plan.drt = core::Drt("orig");
    core::Region r0;
    r0.name = "orig.mha.r0";
    r0.length = 128_KiB;
    plan.regions.push_back(r0);
    EXPECT_TRUE(plan.drt.insert(core::DrtEntry{0, 128_KiB, r0.name, 0}).is_ok());
    core::ApplyOptions apply;
    apply.replicate_hot = true;
    auto report = core::Placer::apply(*pfs, plan, {core::StripePair{32_KiB, 0}}, apply);
    EXPECT_TRUE(report.is_ok()) << report.status().to_string();
    for (const auto& [region, replica] : report->replica_pairs) {
      EXPECT_TRUE(plan.drt.set_replica(region, replica).is_ok());
    }

    auto redir = core::Redirector::create(*pfs, std::move(plan.drt));
    EXPECT_TRUE(redir.is_ok());
    redirector = std::make_unique<core::Redirector>(std::move(*redir));
    membership = std::make_unique<repair::Membership>(pfs->num_servers());
    pfs->set_membership(membership.get());
    mpi = std::make_unique<io::MpiSim>(1);
    auto f = io::MpiFile::open(*pfs, *mpi, "orig");
    EXPECT_TRUE(f.is_ok());
    file = std::make_unique<io::MpiFile>(std::move(*f));
    file->set_interceptor(redirector.get());
    pfs->reset_stats();
    pfs->reset_clocks();
  }

  cache::CacheConfig small_config() const {
    cache::CacheConfig config;
    config.page_size = 16_KiB;
    config.num_pages = 16;
    config.mode = cache::ConsistencyMode::kWriteBack;
    return config;
  }
};

TEST(Cache, FailoverReadPopulatesFrames) {
  LossWorld w;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, w.small_config());
  repair::kill_server(*w.membership, *w.pfs, 0, 0.0);

  // The miss fills a whole page whose even stripes lived on the dead
  // HServer: the fill is served through replica failover, byte-identical.
  std::vector<std::uint8_t> buf(4_KiB);
  ASSERT_TRUE(cached.read_at(0, 10_KiB, buf.data(), buf.size()).is_ok());
  EXPECT_EQ(buf, pattern(10_KiB, 4_KiB));
  EXPECT_GT(w.pfs->failover_stats().failover_reads, 0u);
  EXPECT_EQ(w.pfs->failover_stats().unavailable, 0u);
  EXPECT_TRUE(cached.is_cached(0, 10_KiB));

  // The frame is now a normal cache page: the re-read hits it without
  // touching the replica (or any server) again.
  const std::uint64_t failovers = w.pfs->failover_stats().failover_reads;
  const std::uint64_t before = total_sub_requests(*w.pfs);
  ASSERT_TRUE(cached.read_at(0, 8_KiB, buf.data(), buf.size()).is_ok());
  EXPECT_EQ(buf, pattern(8_KiB, 4_KiB));
  EXPECT_EQ(cached.metrics().hits, 1u);
  EXPECT_EQ(w.pfs->failover_stats().failover_reads, failovers);
  EXPECT_EQ(total_sub_requests(*w.pfs), before);
}

TEST(Cache, RebuildRunsMigrationProtocolAgainstCache) {
  LossWorld w;
  cache::CachedFile cached(*w.file, *w.mpi, *w.pfs, w.small_config());

  // Warm a clean frame and absorb a dirty write inside the region, both
  // write-back deferred: the newest bytes exist only in the pool.
  std::vector<std::uint8_t> buf(4_KiB);
  ASSERT_TRUE(cached.read_at(0, 64_KiB, buf.data(), buf.size()).is_ok());
  const auto bytes = marked(4_KiB, 0xEE);
  ASSERT_TRUE(cached.write_at(0, 20_KiB, bytes.data(), bytes.size()).is_ok());
  EXPECT_TRUE(cached.is_dirty(0, 20_KiB));

  repair::kill_server(*w.membership, *w.pfs, 0, 1.0);
  repair::RebuildOptions options;
  options.cache = &cached;
  repair::Rebuilder rebuilder(*w.pfs, *w.redirector, *w.membership, "", options);
  ASSERT_TRUE(rebuilder.run_to_completion(1.0).is_ok());
  ASSERT_TRUE(rebuilder.done());
  EXPECT_EQ(rebuilder.report().primaries_rebuilt, 1u);

  // prepare_migration flushed the dirty page before the copy, so the
  // rebuilt primary holds the written bytes; invalidate then dropped every
  // frame whose placement changed.
  EXPECT_FALSE(cached.is_dirty(0, 20_KiB));
  EXPECT_FALSE(cached.is_cached(0, 64_KiB));
  EXPECT_GT(cached.metrics().invalidated_pages, 0u);

  // The uncached client view reads the rebuilt region byte-identically —
  // no failover, no unavailability — including the cache-absorbed write.
  w.pfs->reset_failover_stats();
  std::vector<std::uint8_t> all(256_KiB);
  ASSERT_TRUE(w.file->read_at(0, 0, all.data(), all.size()).is_ok());
  std::vector<std::uint8_t> want = pattern(0, 256_KiB);
  for (common::ByteCount i = 0; i < 4_KiB; ++i) want[20_KiB + i] = 0xEE;
  EXPECT_EQ(all, want);
  EXPECT_EQ(w.pfs->failover_stats().failover_reads, 0u);
  EXPECT_EQ(w.pfs->failover_stats().unavailable, 0u);
}

}  // namespace
}  // namespace mha
