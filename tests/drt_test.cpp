#include <gtest/gtest.h>

#include <cstdio>

#include "core/drt.hpp"

namespace mha::core {
namespace {

DrtEntry entry(common::Offset o, common::ByteCount len, std::string r_file,
               common::Offset r) {
  return DrtEntry{o, len, std::move(r_file), r};
}

TEST(Drt, InsertRejectsDegenerate) {
  Drt drt("orig");
  EXPECT_FALSE(drt.insert(entry(0, 0, "r0", 0)).is_ok());
  EXPECT_FALSE(drt.insert(DrtEntry{0, 10, "", 0}).is_ok());
  EXPECT_TRUE(drt.insert(entry(0, 10, "r0", 0)).is_ok());
}

TEST(Drt, InsertRejectsOverlaps) {
  Drt drt("orig");
  ASSERT_TRUE(drt.insert(entry(100, 50, "r0", 0)).is_ok());
  EXPECT_FALSE(drt.insert(entry(100, 50, "r1", 0)).is_ok());  // exact dup
  EXPECT_FALSE(drt.insert(entry(90, 20, "r1", 0)).is_ok());   // left overlap
  EXPECT_FALSE(drt.insert(entry(140, 20, "r1", 0)).is_ok());  // right overlap
  EXPECT_FALSE(drt.insert(entry(110, 10, "r1", 0)).is_ok());  // contained
  EXPECT_FALSE(drt.insert(entry(50, 200, "r1", 0)).is_ok());  // containing
  EXPECT_TRUE(drt.insert(entry(150, 10, "r1", 0)).is_ok());   // adjacent ok
  EXPECT_TRUE(drt.insert(entry(50, 50, "r1", 10)).is_ok());   // adjacent left
  EXPECT_EQ(drt.size(), 3u);
}

TEST(Drt, LookupFullyCovered) {
  Drt drt("orig");
  ASSERT_TRUE(drt.insert(entry(0, 100, "r0", 1000)).is_ok());
  const auto segments = drt.lookup(10, 50);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_TRUE(segments[0].redirected);
  EXPECT_EQ(drt.region_name(segments[0].region), "r0");
  EXPECT_EQ(segments[0].target_offset, 1010u);
  EXPECT_EQ(segments[0].length, 50u);
  EXPECT_EQ(segments[0].logical_offset, 10u);
}

TEST(Drt, LookupUncoveredIsPassthrough) {
  Drt drt("orig");
  const auto segments = drt.lookup(500, 100);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_FALSE(segments[0].redirected);
  EXPECT_EQ(segments[0].target_offset, 500u);
  EXPECT_EQ(segments[0].length, 100u);
}

TEST(Drt, LookupSplitsAcrossEntriesAndGaps) {
  Drt drt("orig");
  ASSERT_TRUE(drt.insert(entry(100, 100, "r0", 0)).is_ok());
  ASSERT_TRUE(drt.insert(entry(300, 100, "r1", 5000)).is_ok());
  // Request [50, 450): gap, r0, gap, r1, gap.
  const auto segments = drt.lookup(50, 400);
  ASSERT_EQ(segments.size(), 5u);
  EXPECT_FALSE(segments[0].redirected);
  EXPECT_EQ(segments[0].length, 50u);
  EXPECT_TRUE(segments[1].redirected);
  EXPECT_EQ(drt.region_name(segments[1].region), "r0");
  EXPECT_EQ(segments[1].length, 100u);
  EXPECT_FALSE(segments[2].redirected);
  EXPECT_EQ(segments[2].length, 100u);
  EXPECT_TRUE(segments[3].redirected);
  EXPECT_EQ(drt.region_name(segments[3].region), "r1");
  EXPECT_EQ(segments[3].target_offset, 5000u);
  EXPECT_FALSE(segments[4].redirected);
  EXPECT_EQ(segments[4].length, 50u);

  // Segments must tile the request exactly.
  common::Offset cursor = 50;
  for (const auto& seg : segments) {
    EXPECT_EQ(seg.logical_offset, cursor);
    cursor += seg.length;
  }
  EXPECT_EQ(cursor, 450u);
}

TEST(Drt, LookupPartialEntryEdges) {
  Drt drt("orig");
  ASSERT_TRUE(drt.insert(entry(100, 100, "r0", 0)).is_ok());
  // Straddles only the entry's tail.
  auto tail = drt.lookup(150, 100);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_TRUE(tail[0].redirected);
  EXPECT_EQ(tail[0].target_offset, 50u);
  EXPECT_EQ(tail[0].length, 50u);
  EXPECT_FALSE(tail[1].redirected);
  // Entirely inside.
  auto inside = drt.lookup(120, 10);
  ASSERT_EQ(inside.size(), 1u);
  EXPECT_EQ(inside[0].target_offset, 20u);
}

TEST(Drt, LookupZeroSize) {
  Drt drt("orig");
  ASSERT_TRUE(drt.insert(entry(0, 10, "r0", 0)).is_ok());
  EXPECT_TRUE(drt.lookup(5, 0).empty());
}

TEST(Drt, CoveredBytesAndMetadata) {
  Drt drt("orig");
  ASSERT_TRUE(drt.insert(entry(0, 100, "r0", 0)).is_ok());
  ASSERT_TRUE(drt.insert(entry(500, 200, "r1", 100)).is_ok());
  EXPECT_EQ(drt.covered_bytes(), 300u);
  EXPECT_GT(drt.metadata_bytes(), 2 * sizeof(DrtEntry) - 1);
  const auto entries = drt.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].o_offset, 0u);
  EXPECT_EQ(entries[1].o_offset, 500u);
}

TEST(Drt, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "drt_test.db";
  std::remove(path.c_str());
  Drt drt("data/app.out");
  ASSERT_TRUE(drt.insert(entry(0, 4096, "data/app.out.mha.r0", 0)).is_ok());
  ASSERT_TRUE(drt.insert(entry(8192, 131072, "data/app.out.mha.r1", 4096)).is_ok());
  {
    kv::KvStore store;
    ASSERT_TRUE(store.open(path).is_ok());
    ASSERT_TRUE(drt.save(store).is_ok());
  }
  kv::KvStore store;
  ASSERT_TRUE(store.open(path).is_ok());
  auto loaded = Drt::load(store, "data/app.out");
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded->entries(), drt.entries());
  EXPECT_EQ(loaded->o_file(), "data/app.out");
  std::remove(path.c_str());
}

TEST(Drt, LoadIgnoresOtherFilesEntries) {
  const std::string path = testing::TempDir() + "drt_test2.db";
  std::remove(path.c_str());
  Drt a("file_a"), b("file_b");
  ASSERT_TRUE(a.insert(entry(0, 10, "ra", 0)).is_ok());
  ASSERT_TRUE(b.insert(entry(0, 20, "rb", 0)).is_ok());
  kv::KvStore store;
  ASSERT_TRUE(store.open(path).is_ok());
  ASSERT_TRUE(a.save(store).is_ok());
  ASSERT_TRUE(b.save(store).is_ok());
  auto loaded = Drt::load(store, "file_a");
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->entries()[0].r_file, "ra");
  std::remove(path.c_str());
}

TEST(Drt, LoadRejectsCorruptValue) {
  const std::string path = testing::TempDir() + "drt_test3.db";
  std::remove(path.c_str());
  kv::KvStore store;
  ASSERT_TRUE(store.open(path).is_ok());
  ASSERT_TRUE(store.put("f#00000000000000000010", "not-a-valid-row").is_ok());
  EXPECT_FALSE(Drt::load(store, "f").is_ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mha::core
