// System-level property sweeps: conservation laws and invariants that must
// hold for EVERY (scheme x workload x cluster shape) combination.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "common/crc32.hpp"
#include "common/units.hpp"
#include "core/placer.hpp"
#include "core/recovery.hpp"
#include "fault/journal.hpp"
#include "layouts/scheme.hpp"
#include "trace/analysis.hpp"
#include "workloads/apps.hpp"
#include "workloads/btio.hpp"
#include "workloads/hpio.hpp"
#include "workloads/ior.hpp"
#include "workloads/replayer.hpp"

namespace mha {
namespace {

using common::OpType;
using namespace mha::common::literals;

struct Combo {
  const char* scheme;
  const char* workload;
  std::size_t hservers;
  std::size_t sservers;
};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  return std::string(info.param.scheme) + "_" + info.param.workload + "_" +
         std::to_string(info.param.hservers) + "h" + std::to_string(info.param.sservers) +
         "s";
}

trace::Trace make_workload(const std::string& kind) {
  if (kind == "lanl") {
    workloads::LanlConfig config;
    config.num_procs = 4;
    config.loops = 24;
    return workloads::lanl_app2(config);
  }
  if (kind == "hpio") {
    workloads::HpioConfig config;
    config.num_procs = 4;
    config.region_count = 96;
    config.op = OpType::kRead;
    return workloads::hpio(config);
  }
  if (kind == "btio") {
    workloads::BtioConfig config;
    config.num_procs = 4;
    config.time_steps = 12;
    config.scale = 256;
    return workloads::btio(config);
  }
  workloads::IorMixedSizesConfig config;
  config.num_procs = 8;
  config.request_sizes = {16_KiB, 96_KiB};
  config.file_size = 12_MiB;
  config.op = OpType::kWrite;
  config.file_name = "prop.ior";
  return workloads::ior_mixed_sizes(config);
}

std::unique_ptr<layouts::LayoutScheme> make_scheme(const std::string& name) {
  if (name == "DEF") return layouts::make_def();
  if (name == "AAL") return layouts::make_aal();
  if (name == "HARL") return layouts::make_harl();
  return layouts::make_mha();
}

class SystemProperties : public ::testing::TestWithParam<Combo> {};

TEST_P(SystemProperties, ConservationAndTimingInvariants) {
  const Combo combo = GetParam();
  const trace::Trace workload = make_workload(combo.workload);
  sim::ClusterConfig cluster;
  cluster.num_hservers = combo.hservers;
  cluster.num_sservers = combo.sservers;

  pfs::PfsOptions pfs_options;
  pfs_options.store_data = false;
  pfs::HybridPfs pfs(cluster, pfs_options);
  auto scheme = make_scheme(combo.scheme);
  auto deployment = scheme->prepare(pfs, workload);
  ASSERT_TRUE(deployment.is_ok()) << deployment.status().to_string();

  auto result = workloads::replay(pfs, *deployment, workload, {});
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  // --- Conservation: every requested byte was served exactly once. ---
  common::ByteCount requested_reads = 0, requested_writes = 0;
  for (const auto& r : workload.records) {
    (r.op == OpType::kRead ? requested_reads : requested_writes) += r.size;
  }
  EXPECT_EQ(result->bytes_read, requested_reads);
  EXPECT_EQ(result->bytes_written, requested_writes);
  EXPECT_EQ(result->requests, workload.records.size());

  common::ByteCount served = 0;
  for (const auto& st : result->server_stats) served += st.bytes_total();
  EXPECT_EQ(served, requested_reads + requested_writes);

  // --- Timing sanity. ---
  EXPECT_GT(result->makespan, 0.0);
  double max_busy = 0.0;
  for (const auto& st : result->server_stats) max_busy = std::max(max_busy, st.busy_time);
  // The slowest server's busy time lower-bounds the makespan; queuing and
  // synchronisation can only add to it.
  EXPECT_GE(result->makespan, max_busy - 1e-9);
  // And the makespan cannot exceed fully-serial service of all requests.
  double total_busy = 0.0;
  for (const auto& st : result->server_stats) total_busy += st.busy_time;
  EXPECT_LE(result->makespan, total_busy + 1.0);

  // --- Replays are deterministic. ---
  pfs::HybridPfs pfs2(cluster, pfs_options);
  auto scheme2 = make_scheme(combo.scheme);
  auto deployment2 = scheme2->prepare(pfs2, workload);
  ASSERT_TRUE(deployment2.is_ok());
  auto result2 = workloads::replay(pfs2, *deployment2, workload, {});
  ASSERT_TRUE(result2.is_ok());
  EXPECT_DOUBLE_EQ(result->makespan, result2->makespan);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SystemProperties,
    ::testing::Values(
        Combo{"DEF", "ior", 6, 2}, Combo{"AAL", "ior", 6, 2}, Combo{"HARL", "ior", 6, 2},
        Combo{"MHA", "ior", 6, 2}, Combo{"DEF", "lanl", 6, 2}, Combo{"MHA", "lanl", 6, 2},
        Combo{"HARL", "lanl", 3, 1}, Combo{"MHA", "hpio", 6, 2}, Combo{"MHA", "hpio", 2, 2},
        Combo{"HARL", "btio", 6, 2}, Combo{"MHA", "btio", 4, 4}, Combo{"MHA", "ior", 7, 1},
        Combo{"MHA", "ior", 1, 7}, Combo{"AAL", "btio", 2, 6}),
    combo_name);

// Stripe pairs produced by every scheme must be realisable layouts: the MDS
// must never hold a layout whose widths are all zero or whose server count
// mismatches the cluster.
class LayoutRealisability : public ::testing::TestWithParam<Combo> {};

TEST_P(LayoutRealisability, AllMdsLayoutsAreValid) {
  const Combo combo = GetParam();
  const trace::Trace workload = make_workload(combo.workload);
  sim::ClusterConfig cluster;
  cluster.num_hservers = combo.hservers;
  cluster.num_sservers = combo.sservers;
  pfs::PfsOptions pfs_options;
  pfs_options.store_data = false;
  pfs::HybridPfs pfs(cluster, pfs_options);
  auto scheme = make_scheme(combo.scheme);
  auto deployment = scheme->prepare(pfs, workload);
  ASSERT_TRUE(deployment.is_ok());

  for (const std::string& name : pfs.mds().list_files()) {
    const auto& info = pfs.mds().info(*pfs.mds().lookup(name));
    EXPECT_EQ(info.layout.num_servers(), pfs.num_servers()) << name;
    EXPECT_GT(info.layout.cycle_width(), 0u) << name;
    // SServer widths never below HServer widths (s > h or uniform).
    const auto h_width = info.layout.width(0);
    const auto s_width = info.layout.width(pfs.num_servers() - 1);
    EXPECT_GE(s_width, h_width) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LayoutRealisability,
                         ::testing::Values(Combo{"MHA", "ior", 6, 2},
                                           Combo{"HARL", "ior", 6, 2},
                                           Combo{"MHA", "lanl", 2, 2},
                                           Combo{"HARL", "btio", 5, 3},
                                           Combo{"AAL", "hpio", 6, 2}),
                         combo_name);

// Recovery is idempotent from EVERY crash point: running recover_migration
// a second time after a successful recovery must change nothing — same
// journal phase (kNone), bitwise-identical logical file contents.
class RecoveryIdempotence : public ::testing::TestWithParam<const char*> {
 protected:
  static std::string journal_path() {
    static std::atomic<int> counter{0};
    return testing::TempDir() + "prop_recovery_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".db";
  }

  /// CRC over every file's name and full logical contents.
  static std::uint32_t fingerprint(pfs::HybridPfs& pfs) {
    std::uint32_t crc = 0;
    std::vector<std::string> names = pfs.mds().list_files();
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      crc ^= common::crc32(name.data(), name.size());
      const auto id = pfs.open(name);
      if (!id.is_ok()) continue;
      const auto& info = pfs.mds().info(*id);
      auto bytes = pfs.read_bytes(*id, 0, info.size, 0.0);
      if (bytes.is_ok()) crc ^= common::crc32(bytes->data(), bytes->size());
    }
    return crc;
  }
};

TEST_P(RecoveryIdempotence, SecondRecoveryIsANoOp) {
  const std::string site = GetParam();
  const std::string path = journal_path();

  sim::ClusterConfig cluster;
  cluster.num_hservers = 2;
  cluster.num_sservers = 1;
  pfs::HybridPfs pfs(cluster);
  auto file = pfs.create_file("prop.dat");
  ASSERT_TRUE(file.is_ok());
  ASSERT_TRUE(layouts::populate_file(pfs, *file, 256_KiB).is_ok());

  core::ReorganizePlan plan;
  plan.drt = core::Drt("prop.dat");
  core::Region region;
  region.name = "prop.dat.mha.r0";
  region.length = 128_KiB;
  plan.regions.push_back(region);
  ASSERT_TRUE(plan.drt.insert(core::DrtEntry{0, 64_KiB, region.name, 64_KiB}).is_ok());
  ASSERT_TRUE(plan.drt.insert(core::DrtEntry{192_KiB, 64_KiB, region.name, 0}).is_ok());

  {
    fault::MigrationJournal journal;
    ASSERT_TRUE(journal.open(path).is_ok());
    core::ApplyOptions options;
    options.chunk = 32_KiB;
    options.journal = &journal;
    options.crash_at = [&](std::string_view point) { return point == site; };
    auto report =
        core::Placer::apply(pfs, plan, {core::StripePair{16_KiB, 48_KiB}}, options);
    ASSERT_FALSE(report.is_ok());
    EXPECT_EQ(report.status().code(), common::ErrorCode::kIoError);
  }

  fault::MigrationJournal journal;
  ASSERT_TRUE(journal.open(path).is_ok());
  auto first = core::recover_migration(pfs, journal);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  EXPECT_EQ(journal.phase(), fault::JournalPhase::kNone);
  const std::uint32_t after_first = fingerprint(pfs);

  auto second = core::recover_migration(pfs, journal);
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  EXPECT_EQ(second->action, core::RecoveryAction::kNone);
  EXPECT_FALSE(second->has_drt);
  EXPECT_FALSE(second->journal_torn);
  EXPECT_EQ(journal.phase(), fault::JournalPhase::kNone);
  EXPECT_EQ(fingerprint(pfs), after_first);

  // Whatever the outcome, the original file's passthrough truth survived:
  // either everything rolled back (bytes at original locations) or the
  // migration committed (region holds them, origin retains its copy — the
  // placer never erases origin bytes).
  EXPECT_EQ(*pfs.read_bytes(*file, 64_KiB, 128_KiB, 0.0),
            [] {
              std::vector<std::uint8_t> p(128_KiB);
              layouts::populate_fill(64_KiB, p.data(), p.size());
              return p;
            }());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllCrashSites, RecoveryIdempotence,
                         ::testing::Values("planned", "regions-created", "copying",
                                           "copied-entry-0", "copied-entry-1", "copied",
                                           "committed"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace mha
