// Counted allocations-per-request on the steady-state replay path.  This
// binary links mha_alloc_hook (counting operator new/delete), so the numbers
// are measured, not estimated: after warm-up, a redirected read or write must
// perform ZERO heap allocations end to end — DRT lookup, redirector
// translation + coalescing, stripe mapping, dispatch, extent-store I/O.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/alloc_counter.hpp"
#include "core/redirector.hpp"
#include "io/mpi_file.hpp"
#include "pfs/file_system.hpp"
#include "sim/cluster_sim.hpp"

namespace mha {
namespace {

sim::ClusterConfig cluster() {
  sim::ClusterConfig config;
  config.num_hservers = 6;
  config.num_sservers = 2;
  return config;
}

TEST(AllocCount, HookIsLinked) {
  ASSERT_TRUE(common::allocation_hook_linked());
  common::AllocationScope scope;
  std::vector<int>* v = new std::vector<int>(100);
  delete v;
  EXPECT_GE(scope.allocations(), 1u);
}

TEST(AllocCount, DrtSequentialLookupIsZeroAllocWarm) {
  core::Drt drt("orig");
  constexpr common::ByteCount kEntry = 64 * 1024;
  for (common::Offset pos = 0; pos < 128 * kEntry; pos += kEntry) {
    ASSERT_TRUE(
        drt.insert(core::DrtEntry{pos, kEntry, "region", pos}).is_ok());
  }
  core::Drt::SegmentVec scratch;
  drt.lookup(0, 4096, scratch);  // warm the scratch
  common::AllocationScope scope;
  for (common::Offset pos = 0; pos < 128 * kEntry; pos += 4096) {
    drt.lookup(pos, 4096, scratch);
  }
  const std::uint64_t allocs = scope.allocations();
  EXPECT_EQ(allocs, 0u);
}

TEST(AllocCount, SteadyStateRequestPathIsZeroAlloc) {
  pfs::HybridPfs pfs(cluster());
  constexpr common::ByteCount kFile = 4 * 1024 * 1024;
  constexpr common::ByteCount kRequest = 64 * 1024;
  auto id = pfs.create_file("f");
  ASSERT_TRUE(id.is_ok());

  // Identity redirection, 1 MiB entries: every request flows DRT -> region
  // resolution -> stripe mapping -> dispatch, like a deployed MHA layout.
  auto redirector =
      core::Redirector::create(pfs, core::Redirector::identity_table("f", kFile, 1024 * 1024));
  ASSERT_TRUE(redirector.is_ok());

  io::MpiSim mpi(1);
  auto file = io::MpiFile::open(pfs, mpi, "f");
  ASSERT_TRUE(file.is_ok());
  file->set_interceptor(&*redirector);

  std::vector<std::uint8_t> buffer(kRequest, 0x5A);
  // Warm-up pass: first-touch extents, scratch spill, stats vectors.
  for (common::Offset pos = 0; pos < kFile; pos += kRequest) {
    ASSERT_TRUE(file->write_at(0, pos, buffer.data(), kRequest).is_ok());
  }
  for (common::Offset pos = 0; pos < kFile; pos += kRequest) {
    ASSERT_TRUE(file->read_at(0, pos, buffer.data(), kRequest).is_ok());
  }

  // Steady state: every byte written again (in-place) and read back.
  common::AllocationScope scope;
  for (common::Offset pos = 0; pos < kFile; pos += kRequest) {
    ASSERT_TRUE(file->write_at(0, pos, buffer.data(), kRequest).is_ok());
    ASSERT_TRUE(file->read_at(0, pos, buffer.data(), kRequest).is_ok());
  }
  const std::uint64_t allocs = scope.allocations();
  EXPECT_EQ(allocs, 0u) << "expected a zero-allocation steady-state request path, got "
                        << allocs << " allocations over "
                        << 2 * (kFile / kRequest) << " requests";
}

TEST(AllocCount, SteadyStateUnalignedRequestsAreZeroAllocToo) {
  // 8 KiB entries make each 64 KiB request split into 8+ segments; the
  // SmallVec scratch spills once during warm-up and is retained after.
  pfs::HybridPfs pfs(cluster());
  constexpr common::ByteCount kFile = 1024 * 1024;
  constexpr common::ByteCount kRequest = 64 * 1024;
  ASSERT_TRUE(pfs.create_file("g").is_ok());
  auto redirector =
      core::Redirector::create(pfs, core::Redirector::identity_table("g", kFile, 8 * 1024));
  ASSERT_TRUE(redirector.is_ok());
  io::MpiSim mpi(1);
  auto file = io::MpiFile::open(pfs, mpi, "g");
  ASSERT_TRUE(file.is_ok());
  file->set_interceptor(&*redirector);

  std::vector<std::uint8_t> buffer(kRequest, 0xC3);
  for (int pass = 0; pass < 2; ++pass) {  // pass 0 is warm-up
    common::AllocationScope scope;
    for (common::Offset pos = 0; pos + kRequest <= kFile; pos += kRequest) {
      ASSERT_TRUE(file->write_at(0, pos, buffer.data(), kRequest).is_ok());
      ASSERT_TRUE(file->read_at(0, pos, buffer.data(), kRequest).is_ok());
    }
    if (pass == 1) {
      const std::uint64_t allocs = scope.allocations();
      EXPECT_EQ(allocs, 0u);
    }
  }
}

}  // namespace
}  // namespace mha
