#include <gtest/gtest.h>

#include <set>

#include "core/reorganizer.hpp"

namespace mha::core {
namespace {

using common::OpType;

trace::TraceRecord rec(int rank, OpType op, common::Offset offset, common::ByteCount size,
                       common::Seconds t = 0.0) {
  trace::TraceRecord r;
  r.rank = rank;
  r.op = op;
  r.offset = offset;
  r.size = size;
  r.t_start = t;
  return r;
}

trace::Trace make_trace(std::vector<trace::TraceRecord> records) {
  trace::Trace t;
  t.file_name = "orig";
  t.records = std::move(records);
  return t;
}

TEST(Reorganizer, ValidatesInputs) {
  const auto trace = make_trace({rec(0, OpType::kRead, 0, 10)});
  EXPECT_FALSE(build_plan(trace, {}, {1}, 1).is_ok());       // misaligned assignment
  EXPECT_FALSE(build_plan(trace, {0}, {}, 1).is_ok());       // misaligned concurrency
  EXPECT_FALSE(build_plan(trace, {0}, {1}, 0).is_ok());      // no groups
  EXPECT_FALSE(build_plan(trace, {3}, {1}, 2).is_ok());      // label out of range
  EXPECT_TRUE(build_plan(trace, {0}, {1}, 1).is_ok());
}

TEST(Reorganizer, SingleGroupSingleRegion) {
  const auto trace = make_trace({rec(0, OpType::kWrite, 0, 100), rec(0, OpType::kWrite, 100, 100)});
  auto plan = build_plan(trace, {0, 0}, {1, 1}, 1);
  ASSERT_TRUE(plan.is_ok());
  ASSERT_EQ(plan->regions.size(), 1u);
  EXPECT_EQ(plan->regions[0].length, 200u);
  EXPECT_EQ(plan->regions[0].record_count, 2u);
  EXPECT_EQ(plan->regions[0].name, "orig.mha.r0");
  // Contiguous blocks of one group merge into a single DRT entry.
  EXPECT_EQ(plan->drt.size(), 1u);
  EXPECT_EQ(plan->drt.covered_bytes(), 200u);
}

TEST(Reorganizer, InterleavedGroupsReorderByPattern) {
  // The motivating pattern: small and large requests alternate in the file;
  // reordering gathers each class contiguously.
  std::vector<trace::TraceRecord> records;
  std::vector<int> assignment;
  common::Offset offset = 0;
  for (int loop = 0; loop < 4; ++loop) {
    records.push_back(rec(0, OpType::kWrite, offset, 16));
    assignment.push_back(0);
    offset += 16;
    records.push_back(rec(0, OpType::kWrite, offset, 1024));
    assignment.push_back(1);
    offset += 1024;
  }
  auto plan = build_plan(make_trace(records), assignment,
                         std::vector<std::uint32_t>(records.size(), 1), 2);
  ASSERT_TRUE(plan.is_ok());
  ASSERT_EQ(plan->regions.size(), 2u);
  EXPECT_EQ(plan->regions[0].length, 4 * 16u);
  EXPECT_EQ(plan->regions[1].length, 4 * 1024u);

  // Every region request is region-relative and inside the region.
  for (const Region& region : plan->regions) {
    for (const ModelRequest& r : region.requests) {
      EXPECT_LT(r.offset, region.length);
    }
  }
  // Region 0's four small blocks are contiguous in the region: their DRT
  // entries map increasing o_offsets to increasing r_offsets.
  common::Offset expect_r = 0;
  for (const DrtEntry& e : plan->drt.entries()) {
    if (e.r_file == "orig.mha.r0") {
      EXPECT_EQ(e.r_offset, expect_r);
      expect_r += e.length;
    }
  }
  EXPECT_EQ(expect_r, 64u);
}

TEST(Reorganizer, DrtCoversExactlyTouchedBytes) {
  const auto trace = make_trace({rec(0, OpType::kWrite, 0, 50),
                                 rec(0, OpType::kWrite, 100, 50),
                                 rec(1, OpType::kRead, 200, 50)});
  auto plan = build_plan(trace, {0, 0, 1}, {1, 1, 1}, 2);
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan->drt.covered_bytes(), 150u);
  // The hole [50,100) stays unmapped: lookups there pass through.
  const auto segs = plan->drt.lookup(50, 50);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_FALSE(segs[0].redirected);
}

TEST(Reorganizer, FirstToucherClaimsSharedBytes) {
  // Record 0 (group 0) touches [0,100); record 1 (group 1) touches [50,150).
  // The overlap [50,100) belongs to group 0; group 1 gets only [100,150).
  const auto trace =
      make_trace({rec(0, OpType::kWrite, 0, 100, 0.0), rec(1, OpType::kWrite, 50, 100, 1.0)});
  auto plan = build_plan(trace, {0, 1}, {1, 1}, 2);
  ASSERT_TRUE(plan.is_ok());
  ASSERT_EQ(plan->regions.size(), 2u);
  EXPECT_EQ(plan->regions[0].length, 100u);
  EXPECT_EQ(plan->regions[1].length, 50u);
  // Record 1's cost anchor is where its first byte actually lives: region 0.
  EXPECT_EQ(plan->regions[0].requests.size(), 2u);
  EXPECT_EQ(plan->regions[1].requests.size(), 0u);
  EXPECT_EQ(plan->regions[1].record_count, 0u);
}

TEST(Reorganizer, RepeatedAccessClaimsOnce) {
  const auto trace = make_trace({rec(0, OpType::kRead, 0, 100, 0.0),
                                 rec(1, OpType::kRead, 0, 100, 1.0),
                                 rec(2, OpType::kRead, 0, 100, 2.0)});
  auto plan = build_plan(trace, {0, 0, 0}, {1, 1, 1}, 1);
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan->regions[0].length, 100u);  // bytes counted once
  EXPECT_EQ(plan->regions[0].requests.size(), 3u);
}

TEST(Reorganizer, EmptyGroupsAreDropped) {
  const auto trace = make_trace({rec(0, OpType::kRead, 0, 10)});
  // Declare 3 groups; only group 2 is used.
  auto plan = build_plan(trace, {2}, {1}, 3);
  ASSERT_TRUE(plan.is_ok());
  ASSERT_EQ(plan->regions.size(), 1u);
  EXPECT_EQ(plan->regions[0].group, 2);
}

TEST(Reorganizer, ZeroSizeRecordsIgnored) {
  const auto trace = make_trace({rec(0, OpType::kRead, 0, 0), rec(0, OpType::kRead, 0, 10)});
  auto plan = build_plan(trace, {0, 0}, {1, 1}, 1);
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan->regions[0].record_count, 1u);
}

TEST(Reorganizer, ConcurrencyAnnotationsFlowIntoRequests) {
  const auto trace = make_trace({rec(0, OpType::kWrite, 0, 64), rec(1, OpType::kWrite, 64, 64)});
  auto plan = build_plan(trace, {0, 0}, {8, 8}, 1);
  ASSERT_TRUE(plan.is_ok());
  for (const ModelRequest& r : plan->regions[0].requests) {
    EXPECT_EQ(r.concurrency, 8u);
  }
}

TEST(Reorganizer, CustomRegionSuffix) {
  ReorganizerOptions options;
  options.region_suffix = ".zone";
  const auto trace = make_trace({rec(0, OpType::kRead, 0, 10)});
  auto plan = build_plan(trace, {0}, {1}, 1, options);
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan->regions[0].name, "orig.zone0");
}

TEST(Reorganizer, ManyInterleavedClaimsRemainDisjoint) {
  // Stress the interval bookkeeping: overlapping requests from three groups.
  std::vector<trace::TraceRecord> records;
  std::vector<int> assignment;
  for (int i = 0; i < 60; ++i) {
    records.push_back(rec(i % 4, OpType::kWrite, static_cast<common::Offset>(i) * 37, 64,
                          0.001 * i));
    assignment.push_back(i % 3);
  }
  auto plan = build_plan(make_trace(records), assignment,
                         std::vector<std::uint32_t>(records.size(), 4), 3);
  ASSERT_TRUE(plan.is_ok());
  // DRT entries must be non-overlapping (insert enforces it) and cover
  // exactly the union of all touched ranges: [0, 59*37+64).
  EXPECT_EQ(plan->drt.covered_bytes(), 59u * 37 + 64);
  // Region lengths sum to the same.
  common::ByteCount total = 0;
  for (const Region& region : plan->regions) total += region.length;
  EXPECT_EQ(total, 59u * 37 + 64);
}

}  // namespace
}  // namespace mha::core
