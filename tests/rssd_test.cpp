#include <gtest/gtest.h>

#include <limits>

#include "core/rssd.hpp"

namespace mha::core {
namespace {

using common::ByteCount;
using common::OpType;

CostParams simple_params(std::size_t m, std::size_t n) {
  CostParams p;
  p.num_hservers = m;
  p.num_sservers = n;
  p.t = 1e-9;
  p.alpha_h = 2e-3;
  p.beta_h = 25e-9;
  p.alpha_sr = 1e-4;
  p.beta_sr = 2e-9;
  p.alpha_sw = 2e-4;
  p.beta_sw = 3e-9;
  p.gamma_h = 0.1;
  p.gamma_s = 1.0;
  return p;
}

std::vector<ModelRequest> uniform_requests(ByteCount size, std::size_t n,
                                           std::uint32_t conc = 8) {
  std::vector<ModelRequest> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ModelRequest{OpType::kRead, i * size, size, conc});
  }
  return out;
}

// Brute force over the same candidate grid RSSD sweeps.
RssdResult brute_force(const CostModel& model, const std::vector<ModelRequest>& requests,
                       ByteCount bound_h, ByteCount bound_s, ByteCount step) {
  const BatchedRegion region = BatchedRegion::build(requests, model.concurrency_aware());
  RssdResult best;
  best.best_cost = std::numeric_limits<double>::infinity();
  for (ByteCount h = 0; h <= bound_h; h += step) {
    for (ByteCount s = h + step; s <= bound_s; s += step) {
      const double cost = region.cost(model, h, s);
      ++best.pairs_evaluated;
      if (cost < best.best_cost) {
        best.best_cost = cost;
        best.best = StripePair{h, s};
      }
    }
  }
  return best;
}

TEST(Rssd, RejectsEmptyRegion) {
  const CostModel model(simple_params(2, 2));
  EXPECT_FALSE(determine_stripes(model, {}).is_ok());
}

TEST(Rssd, RejectsAllZeroSizes) {
  const CostModel model(simple_params(2, 2));
  std::vector<ModelRequest> requests{{OpType::kRead, 0, 0, 1}};
  EXPECT_FALSE(determine_stripes(model, requests).is_ok());
}

TEST(Rssd, RejectsZeroStep) {
  const CostModel model(simple_params(2, 2));
  RssdOptions options;
  options.step = 0;
  EXPECT_FALSE(determine_stripes(model, uniform_requests(65536, 4), options).is_ok());
}

TEST(Rssd, RejectsNoSservers) {
  const CostModel model(simple_params(4, 0));
  EXPECT_FALSE(determine_stripes(model, uniform_requests(65536, 4)).is_ok());
}

TEST(Rssd, SStrictlyExceedsH) {
  const CostModel model(simple_params(6, 2));
  for (ByteCount size : {ByteCount{16384}, ByteCount{262144}, ByteCount{1048576}}) {
    auto result = determine_stripes(model, uniform_requests(size, 8));
    ASSERT_TRUE(result.is_ok()) << size;
    EXPECT_GT(result->best.s, result->best.h) << size;
    EXPECT_GT(result->pairs_evaluated, 0u);
  }
}

TEST(Rssd, SmallRmaxUsesRmaxBounds) {
  const CostModel model(simple_params(2, 2));
  // r_max = 32 KiB < (2+2)*64 KiB -> bounds are r_max (rounded to step).
  auto result = determine_stripes(model, uniform_requests(32768, 4));
  ASSERT_TRUE(result.is_ok());
  EXPECT_LE(result->best.s, 32768u);
}

TEST(Rssd, LargeRmaxDividesByServerCounts) {
  const CostModel model(simple_params(2, 2));
  // r_max = 4 MiB >= 4*64 KiB -> B_h = r_max/M = 2 MiB, B_s = r_max/N.
  auto result = determine_stripes(model, uniform_requests(4 << 20, 4));
  ASSERT_TRUE(result.is_ok());
  EXPECT_LE(result->best.h, (4u << 20) / 2);
  EXPECT_LE(result->best.s, (4u << 20) / 2);
}

TEST(Rssd, TinyRequestsStillYieldACandidate) {
  const CostModel model(simple_params(6, 2));
  // r_max = 16 bytes, far below one 4 KiB step: the sweep must still
  // produce <0, step> at minimum.
  auto result = determine_stripes(model, uniform_requests(16, 10));
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->best.h, 0u);
  EXPECT_EQ(result->best.s, 4096u);
}

TEST(Rssd, MatchesBruteForce) {
  const CostModel model(simple_params(3, 2));
  RssdOptions options;
  options.step = 8192;
  std::vector<ModelRequest> requests;
  for (std::size_t i = 0; i < 6; ++i) {
    requests.push_back(ModelRequest{OpType::kRead, i * 100000, 131072, 16});
    requests.push_back(ModelRequest{OpType::kWrite, i * 200000, 262144, 16});
  }
  auto result = determine_stripes(model, requests, options);
  ASSERT_TRUE(result.is_ok());
  // Same bounds RSSD derives: r_max = 256 KiB < 5*64 KiB -> bounds r_max.
  const auto reference = brute_force(model, requests, 262144, 262144, options.step);
  EXPECT_EQ(result->best, reference.best);
  EXPECT_DOUBLE_EQ(result->best_cost, reference.best_cost);
}

TEST(Rssd, ReturnedCostMatchesModelEvaluation) {
  const CostModel model(simple_params(6, 2));
  const auto requests = uniform_requests(262144, 12, 32);
  auto result = determine_stripes(model, requests);
  ASSERT_TRUE(result.is_ok());
  const BatchedRegion region = BatchedRegion::build(requests);
  EXPECT_DOUBLE_EQ(result->best_cost,
                   region.cost(model, result->best.h, result->best.s));
}

TEST(Rssd, FinerStepNeverWorse) {
  const CostModel model(simple_params(6, 2));
  const auto requests = uniform_requests(262144, 12, 32);
  RssdOptions coarse;
  coarse.step = 32768;
  RssdOptions fine;
  fine.step = 4096;
  const auto c = determine_stripes(model, requests, coarse);
  const auto f = determine_stripes(model, requests, fine);
  ASSERT_TRUE(c.is_ok());
  ASSERT_TRUE(f.is_ok());
  // The fine grid contains every coarse candidate.
  EXPECT_LE(f->best_cost, c->best_cost + 1e-12);
  EXPECT_GT(f->pairs_evaluated, c->pairs_evaluated);
}

TEST(Rssd, HarlBoundsUseAverageSize) {
  const CostModel model(simple_params(2, 2));
  RssdOptions harl;
  harl.adaptive_bounds = false;
  // Mixed 64 KiB and 4 MiB: average is ~2 MiB, so the HARL-bounded search
  // cannot return stripes above the average.
  std::vector<ModelRequest> requests{{OpType::kRead, 0, 65536, 4},
                                     {OpType::kRead, 1 << 22, 4u << 20, 4}};
  auto result = determine_stripes(model, requests, harl);
  ASSERT_TRUE(result.is_ok());
  const ByteCount avg = (65536u + (4u << 20)) / 2;
  EXPECT_LE(result->best.s, avg + 4096);
}

TEST(Rssd, ConcurrencyAwarenessControlsBatching) {
  // The concurrency-aware model costs whole concurrent batches; the
  // HARL-era ablation treats every request independently.
  const auto hot = uniform_requests(1 << 20, 8, 64);  // all at t = 0
  const BatchedRegion batched = BatchedRegion::build(hot, /*batch_by_time=*/true);
  const BatchedRegion singles = BatchedRegion::build(hot, /*batch_by_time=*/false);
  EXPECT_EQ(batched.num_batches(), 1u);
  EXPECT_EQ(singles.num_batches(), 8u);
  // A shared batch never costs more than the same requests served one by
  // one (the sum of individual makespans), and genuinely less when the
  // batch spreads across servers.
  const CostModel model(simple_params(6, 2));
  const double together = batched.cost(model, 65536, 196608);
  const double alone = singles.cost(model, 65536, 196608);
  EXPECT_LT(together, alone);
  // Both variants must still produce valid stripe pairs.
  const CostModel aware(simple_params(6, 2), true);
  const CostModel blind(simple_params(6, 2), false);
  auto a = determine_stripes(aware, hot);
  auto b = determine_stripes(blind, hot);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_GT(a->best.s, a->best.h);
  EXPECT_GT(b->best.s, b->best.h);
}

TEST(StripePairToString, Formats) {
  EXPECT_EQ((StripePair{32768, 98304}).to_string(), "<32KiB, 96KiB>");
  EXPECT_EQ((StripePair{0, 4096}).to_string(), "<0B, 4KiB>");
}

}  // namespace
}  // namespace mha::core
