// Placer, Redirector and the five-phase pipeline, exercised end to end on a
// byte-accurate PFS.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "io/mpi_file.hpp"
#include "layouts/scheme.hpp"
#include "trace/analysis.hpp"

namespace mha::core {
namespace {

using common::OpType;
using namespace mha::common::literals;

sim::ClusterConfig small_cluster() {
  sim::ClusterConfig c;
  c.num_hservers = 2;
  c.num_sservers = 2;
  return c;
}

trace::TraceRecord rec(int rank, OpType op, common::Offset offset, common::ByteCount size,
                       common::Seconds t = 0.0) {
  trace::TraceRecord r;
  r.rank = rank;
  r.op = op;
  r.offset = offset;
  r.size = size;
  r.t_start = t;
  return r;
}

/// A LANL-style mini trace over a populated file: alternating small/large.
trace::Trace mini_trace(const std::string& name = "orig") {
  trace::Trace t;
  t.file_name = name;
  common::Offset offset = 0;
  double time = 0.0;
  for (int loop = 0; loop < 8; ++loop) {
    for (int rank = 0; rank < 4; ++rank) {
      t.records.push_back(rec(rank, OpType::kRead, offset + rank * 200_KiB, 16, time));
    }
    time += 0.01;
    for (int rank = 0; rank < 4; ++rank) {
      t.records.push_back(
          rec(rank, OpType::kRead, offset + rank * 200_KiB + 16, 128_KiB, time));
    }
    time += 0.01;
    offset += 16 + 128_KiB;
  }
  return t;
}

// ---------------------------------------------------------------- placer ---

TEST(Placer, MigratesBytesIntoRegions) {
  pfs::HybridPfs pfs(small_cluster());
  auto original = *pfs.create_file("orig");
  ASSERT_TRUE(layouts::populate_file(pfs, original, 512_KiB).is_ok());

  ReorganizePlan plan;
  plan.drt = Drt("orig");
  Region region;
  region.name = "orig.mha.r0";
  region.length = 128_KiB;
  plan.regions.push_back(region);
  // Two displaced pieces: [0,64K) -> region[64K,128K), [256K,320K) -> region[0,64K).
  ASSERT_TRUE(plan.drt.insert(DrtEntry{0, 64_KiB, "orig.mha.r0", 64_KiB}).is_ok());
  ASSERT_TRUE(plan.drt.insert(DrtEntry{256_KiB, 64_KiB, "orig.mha.r0", 0}).is_ok());

  auto report = Placer::apply(pfs, plan, {StripePair{16_KiB, 48_KiB}});
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->bytes_migrated, 128_KiB);
  EXPECT_EQ(report->regions_created, 1u);
  EXPECT_GT(report->migration_time, 0.0);

  // Region bytes equal the original bytes at the mapped locations.
  auto region_id = *pfs.open("orig.mha.r0");
  auto a = *pfs.read_bytes(region_id, 64_KiB, 64_KiB, 0.0);
  auto b = *pfs.read_bytes(original, 0, 64_KiB, 0.0);
  EXPECT_EQ(a, b);
  auto c = *pfs.read_bytes(region_id, 0, 64_KiB, 0.0);
  auto d = *pfs.read_bytes(original, 256_KiB, 64_KiB, 0.0);
  EXPECT_EQ(c, d);

  // The region file carries the optimized stripe pair (the RST row).
  const auto& layout = pfs.mds().info(region_id).layout;
  EXPECT_EQ(layout.width(0), 16_KiB);
  EXPECT_EQ(layout.width(3), 48_KiB);
}

TEST(Placer, RequiresPairPerRegion) {
  pfs::HybridPfs pfs(small_cluster());
  (void)pfs.create_file("orig");
  ReorganizePlan plan;
  plan.drt = Drt("orig");
  plan.regions.push_back(Region{"r0", 0, 0, {}, 0});
  EXPECT_FALSE(Placer::apply(pfs, plan, {}).is_ok());
}

TEST(Placer, FailsWhenOriginalMissing) {
  pfs::HybridPfs pfs(small_cluster());
  ReorganizePlan plan;
  plan.drt = Drt("missing");
  EXPECT_FALSE(Placer::apply(pfs, plan, {}).is_ok());
}

// ------------------------------------------------------------ redirector ---

TEST(Redirector, TranslatesThroughDrt) {
  pfs::HybridPfs pfs(small_cluster());
  auto original = *pfs.create_file("orig");
  auto region = *pfs.create_file("region0");
  Drt drt("orig");
  ASSERT_TRUE(drt.insert(DrtEntry{100, 50, "region0", 0}).is_ok());

  auto redirector = Redirector::create(pfs, std::move(drt), 1e-6);
  ASSERT_TRUE(redirector.is_ok());
  const auto segs = redirector->translate(80, 100);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].file, original);
  EXPECT_EQ(segs[0].offset, 80u);
  EXPECT_EQ(segs[1].file, region);
  EXPECT_EQ(segs[1].offset, 0u);
  EXPECT_EQ(segs[1].length, 50u);
  EXPECT_EQ(segs[2].file, original);
  EXPECT_EQ(segs[2].offset, 150u);
  EXPECT_EQ(redirector->translations(), 1u);
  EXPECT_DOUBLE_EQ(redirector->lookup_overhead(), 1e-6);
}

TEST(Redirector, CreateFailsOnUnknownRegion) {
  pfs::HybridPfs pfs(small_cluster());
  (void)pfs.create_file("orig");
  Drt drt("orig");
  ASSERT_TRUE(drt.insert(DrtEntry{0, 10, "nonexistent-region", 0}).is_ok());
  EXPECT_FALSE(Redirector::create(pfs, std::move(drt)).is_ok());
}

TEST(Redirector, IdentityTableCoversFile) {
  const Drt drt = Redirector::identity_table("f", 1000, 300);
  EXPECT_EQ(drt.size(), 4u);  // 300+300+300+100
  EXPECT_EQ(drt.covered_bytes(), 1000u);
  const auto segs = drt.lookup(0, 1000);
  for (const auto& seg : segs) {
    EXPECT_TRUE(seg.redirected);
    EXPECT_EQ(drt.region_name(seg.region), "f");
    EXPECT_EQ(seg.target_offset, seg.logical_offset);  // identity mapping
  }
}

// -------------------------------------------------------------- pipeline ---

TEST(Pipeline, AnalyzeRejectsBadTraces) {
  EXPECT_FALSE(MhaPipeline::analyze(small_cluster(), trace::Trace{}).is_ok());
  trace::Trace unnamed;
  unnamed.records.push_back(rec(0, OpType::kRead, 0, 16));
  EXPECT_FALSE(MhaPipeline::analyze(small_cluster(), unnamed).is_ok());
}

TEST(Pipeline, AnalyzeGroupsAndOptimizes) {
  auto plan = MhaPipeline::analyze(small_cluster(), mini_trace());
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  // The mini trace has two clear size classes.
  EXPECT_EQ(plan->plan.regions.size(), 2u);
  EXPECT_EQ(plan->stripe_pairs.size(), 2u);
  EXPECT_EQ(plan->region_costs.size(), 2u);
  for (const auto& pair : plan->stripe_pairs) {
    EXPECT_GT(pair.s, pair.h);
  }
  // Small-request region gets smaller stripes than the large-request one.
  std::size_t small_region = plan->plan.regions[0].length < plan->plan.regions[1].length ? 0 : 1;
  EXPECT_LE(plan->stripe_pairs[small_region].s, plan->stripe_pairs[1 - small_region].s);
  EXPECT_FALSE(plan->to_string().empty());
}

TEST(Pipeline, DeployEndToEndPreservesData) {
  pfs::HybridPfs pfs(small_cluster());
  const auto trace = mini_trace();
  auto original = *pfs.create_file("orig");
  ASSERT_TRUE(layouts::populate_file(pfs, original, trace::extent_end(trace.records)).is_ok());

  auto deployment = MhaPipeline::deploy(pfs, trace);
  ASSERT_TRUE(deployment.is_ok()) << deployment.status().to_string();
  ASSERT_NE(deployment->redirector, nullptr);
  EXPECT_GT(deployment->placement.bytes_migrated, 0u);

  // Reading any traced range through the redirector returns the original
  // populated bytes.
  io::MpiSim mpi(4);
  auto file = *io::MpiFile::open(pfs, mpi, "orig");
  file.set_interceptor(deployment->redirector.get());
  for (const auto& record : trace.records) {
    auto got = file.read_vec(record.rank, record.offset, record.size);
    ASSERT_TRUE(got.is_ok());
    for (common::ByteCount i = 0; i < record.size; ++i) {
      ASSERT_EQ((*got)[i], layouts::populate_byte(record.offset + i))
          << "offset " << record.offset + i;
    }
  }
}

TEST(Pipeline, DeployWritesThroughRedirectionConsistently) {
  pfs::HybridPfs pfs(small_cluster());
  const auto trace = mini_trace();
  auto original = *pfs.create_file("orig");
  ASSERT_TRUE(layouts::populate_file(pfs, original, trace::extent_end(trace.records)).is_ok());
  auto deployment = MhaPipeline::deploy(pfs, trace);
  ASSERT_TRUE(deployment.is_ok());

  io::MpiSim mpi(1);
  auto file = *io::MpiFile::open(pfs, mpi, "orig");
  file.set_interceptor(deployment->redirector.get());
  // Overwrite a range that straddles region boundaries, then read it back.
  std::vector<std::uint8_t> data(150_KiB);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 3 + 1);
  ASSERT_TRUE(file.write_at(0, 100, data).is_ok());
  auto back = file.read_vec(0, 100, data.size());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, data);
}

TEST(Pipeline, DeployPersistsDrtWhenAsked) {
  const std::string drt_path = testing::TempDir() + "pipeline_drt.db";
  std::remove(drt_path.c_str());
  pfs::HybridPfs pfs(small_cluster());
  const auto trace = mini_trace();
  auto original = *pfs.create_file("orig");
  ASSERT_TRUE(layouts::populate_file(pfs, original, trace::extent_end(trace.records)).is_ok());

  MhaOptions options;
  options.drt_path = drt_path;
  auto deployment = MhaPipeline::deploy(pfs, trace, options);
  ASSERT_TRUE(deployment.is_ok());

  // A "restarted" middleware reloads the DRT and serves identical bytes.
  kv::KvStore store;
  ASSERT_TRUE(store.open(drt_path).is_ok());
  auto reloaded = Drt::load(store, "orig");
  ASSERT_TRUE(reloaded.is_ok());
  EXPECT_EQ(reloaded->entries(), deployment->plan.plan.drt.entries());

  auto redirector = Redirector::create(pfs, std::move(reloaded).take());
  ASSERT_TRUE(redirector.is_ok());
  io::MpiSim mpi(1);
  auto file = *io::MpiFile::open(pfs, mpi, "orig");
  auto fresh = Redirector(std::move(redirector).take());
  file.set_interceptor(&fresh);
  auto got = file.read_vec(0, 16, 128_KiB);
  ASSERT_TRUE(got.is_ok());
  for (common::ByteCount i = 0; i < got->size(); ++i) {
    ASSERT_EQ((*got)[i], layouts::populate_byte(16 + i));
  }
  std::remove(drt_path.c_str());
}

TEST(Pipeline, UniformTraceDegradesToSingleRegion) {
  trace::Trace trace;
  trace.file_name = "uniform";
  for (int i = 0; i < 32; ++i) {
    trace.records.push_back(
        rec(i % 4, OpType::kWrite, static_cast<common::Offset>(i) * 64_KiB, 64_KiB,
            0.01 * (i / 4)));
  }
  auto plan = MhaPipeline::analyze(small_cluster(), trace);
  ASSERT_TRUE(plan.is_ok());
  // Uniform pattern -> one group -> one region: MHA degrades to HARL.
  EXPECT_EQ(plan->plan.regions.size(), 1u);
}

}  // namespace
}  // namespace mha::core
