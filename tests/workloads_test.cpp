#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/units.hpp"
#include "trace/analysis.hpp"
#include "workloads/apps.hpp"
#include "workloads/btio.hpp"
#include "workloads/hpio.hpp"
#include "workloads/ior.hpp"

namespace mha::workloads {
namespace {

using common::OpType;
using namespace mha::common::literals;

// ------------------------------------------------------------------ ior ---

TEST(IorMixedSizes, GeneratesRequestedMix) {
  IorMixedSizesConfig config;
  config.num_procs = 8;
  config.request_sizes = {128_KiB, 256_KiB};
  config.file_size = 32_MiB;
  config.seed = 5;
  const auto trace = ior_mixed_sizes(config);
  ASSERT_FALSE(trace.records.empty());

  std::set<common::ByteCount> sizes;
  std::set<int> ranks;
  for (const auto& r : trace.records) {
    sizes.insert(r.size);
    ranks.insert(r.rank);
    EXPECT_EQ(r.op, OpType::kWrite);
    EXPECT_LE(r.offset + r.size, config.file_size);
    EXPECT_EQ(r.offset % r.size, 0u);  // size-aligned random slots
  }
  EXPECT_EQ(sizes, (std::set<common::ByteCount>{128_KiB, 256_KiB}));
  EXPECT_EQ(ranks.size(), 8u);
  // Volume is close to the requested file size.
  common::ByteCount total = 0;
  for (const auto& r : trace.records) total += r.size;
  EXPECT_GT(total, config.file_size / 2);
}

TEST(IorMixedSizes, IterationsShareIssueTime) {
  IorMixedSizesConfig config;
  config.num_procs = 4;
  config.request_sizes = {64_KiB};
  config.file_size = 4_MiB;
  const auto trace = ior_mixed_sizes(config);
  std::map<common::Seconds, int> by_time;
  for (const auto& r : trace.records) ++by_time[r.t_start];
  for (const auto& [t, n] : by_time) EXPECT_EQ(n, 4) << t;
  // Concurrency annotation recovers the process count.
  const auto conc = trace::request_concurrency(trace.records);
  for (auto c : conc) EXPECT_EQ(c, 4u);
}

TEST(IorMixedSizes, DeterministicBySeed) {
  IorMixedSizesConfig config;
  config.request_sizes = {64_KiB};
  config.file_size = 8_MiB;
  config.seed = 9;
  const auto a = ior_mixed_sizes(config);
  const auto b = ior_mixed_sizes(config);
  EXPECT_EQ(a.records, b.records);
  config.seed = 10;
  const auto c = ior_mixed_sizes(config);
  ASSERT_EQ(c.records.size(), a.records.size());  // structure is seed-independent
  EXPECT_NE(c.records, a.records);                // offsets are reseeded
}

TEST(IorMixedSizes, SequentialModeAdvancesCursor) {
  IorMixedSizesConfig config;
  config.num_procs = 2;
  config.request_sizes = {1_KiB};
  config.file_size = 16_KiB;
  config.random_offsets = false;
  const auto trace = ior_mixed_sizes(config);
  for (std::size_t i = 1; i < trace.records.size(); ++i) {
    EXPECT_EQ(trace.records[i].offset, trace.records[i - 1].offset + 1_KiB);
  }
}

TEST(IorMixedProcs, SectionsSeeDifferentConcurrency) {
  IorMixedProcsConfig config;
  config.process_counts = {2, 8};
  config.request_size = 64_KiB;
  config.file_size = 16_MiB;
  const auto trace = ior_mixed_procs(config);
  ASSERT_FALSE(trace.records.empty());

  const common::ByteCount section = config.file_size / 2;
  const auto conc = trace::request_concurrency(trace.records);
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    const bool low_section = trace.records[i].offset < section;
    EXPECT_EQ(conc[i], low_section ? 2u : 8u) << "record " << i;
  }
}

// ----------------------------------------------------------------- hpio ---

TEST(Hpio, StridedInterleavedOffsets) {
  HpioConfig config;
  config.num_procs = 4;
  config.region_count = 8;
  config.region_sizes = {16_KiB};
  config.region_spacing = 0;
  const auto trace = hpio(config);
  ASSERT_EQ(trace.records.size(), 32u);
  // Record i of process p sits at (i*P + p) * size: all offsets distinct,
  // densely tiling the file.
  std::set<common::Offset> offsets;
  for (const auto& r : trace.records) offsets.insert(r.offset);
  EXPECT_EQ(offsets.size(), 32u);
  EXPECT_EQ(*offsets.rbegin(), 31u * 16_KiB);
}

TEST(Hpio, SpacingLeavesGaps) {
  HpioConfig config;
  config.num_procs = 2;
  config.region_count = 2;
  config.region_sizes = {4_KiB};
  config.region_spacing = 4_KiB;
  const auto trace = hpio(config);
  // Slot is size+space = 8 KiB.
  EXPECT_EQ(trace.records[1].offset, 8_KiB);
  EXPECT_EQ(trace.records[2].offset, 16_KiB);
}

TEST(Hpio, MixedSizesCycle) {
  HpioConfig config;
  config.num_procs = 1;
  config.region_count = 6;
  config.region_sizes = {16_KiB, 32_KiB, 64_KiB};
  const auto trace = hpio(config);
  ASSERT_EQ(trace.records.size(), 6u);
  EXPECT_EQ(trace.records[0].size, 16_KiB);
  EXPECT_EQ(trace.records[1].size, 32_KiB);
  EXPECT_EQ(trace.records[2].size, 64_KiB);
  EXPECT_EQ(trace.records[3].size, 16_KiB);
  // No offset collisions even with mixed sizes.
  std::set<common::Offset> offsets;
  for (const auto& r : trace.records) {
    EXPECT_TRUE(offsets.insert(r.offset).second);
  }
}

// ----------------------------------------------------------------- btio ---

TEST(Btio, RequiresSquareProcessCounts) {
  EXPECT_TRUE(btio_procs_valid(9));
  EXPECT_TRUE(btio_procs_valid(16));
  EXPECT_TRUE(btio_procs_valid(25));
  EXPECT_TRUE(btio_procs_valid(1));
  EXPECT_FALSE(btio_procs_valid(8));
  EXPECT_FALSE(btio_procs_valid(0));
  EXPECT_FALSE(btio_procs_valid(-4));
}

TEST(Btio, InterleavesClassBAndC) {
  BtioConfig config;
  config.num_procs = 9;
  config.time_steps = 8;
  config.scale = 64;
  config.include_read_phase = false;
  const auto trace = btio(config);
  ASSERT_EQ(trace.records.size(), 8u * 9u);
  // Two distinct sizes, with the class C slices ~4x the class B slices.
  std::set<common::ByteCount> sizes;
  for (const auto& r : trace.records) sizes.insert(r.size);
  ASSERT_EQ(sizes.size(), 2u);
  const auto small = *sizes.begin();
  const auto large = *sizes.rbegin();
  EXPECT_NEAR(static_cast<double>(large) / static_cast<double>(small), 4.0, 0.5);
  // Writes append without overlap.
  std::set<common::Offset> offsets;
  for (const auto& r : trace.records) EXPECT_TRUE(offsets.insert(r.offset).second);
}

TEST(Btio, ReadPhaseMirrorsWritePhase) {
  BtioConfig config;
  config.num_procs = 4;
  config.time_steps = 4;
  config.scale = 64;
  const auto trace = btio(config);
  const std::size_t half = trace.records.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    EXPECT_EQ(trace.records[i].op, OpType::kWrite);
    EXPECT_EQ(trace.records[half + i].op, OpType::kRead);
    EXPECT_EQ(trace.records[half + i].offset, trace.records[i].offset);
    EXPECT_EQ(trace.records[half + i].size, trace.records[i].size);
  }
}

TEST(Btio, ScaleShrinksFootprint) {
  BtioConfig big;
  big.scale = 16;
  big.include_read_phase = false;
  BtioConfig small = big;
  small.scale = 64;
  EXPECT_GT(trace::extent_end(btio(big).records), trace::extent_end(btio(small).records));
}

// ----------------------------------------------------------------- apps ---

TEST(Lanl, LoopBodyMatchesFig3) {
  LanlConfig config;
  config.num_procs = 2;
  config.loops = 3;
  const auto trace = lanl_app2(config);
  ASSERT_EQ(trace.records.size(), 3u * 3u * 2u);
  // Per loop and process: 16 B, 128K-16 B, 128 KiB — all writes.
  std::multiset<common::ByteCount> sizes;
  for (const auto& r : trace.records) {
    EXPECT_EQ(r.op, OpType::kWrite);
    sizes.insert(r.size);
  }
  EXPECT_EQ(sizes.count(16), 6u);
  EXPECT_EQ(sizes.count(128_KiB - 16), 6u);
  EXPECT_EQ(sizes.count(128_KiB), 6u);
  // Identical sizes are NOT adjacent in file order: sort by offset and check
  // the motivating interleaving (Fig. 3).
  auto sorted = trace.records;
  trace::sort_by_offset(sorted);
  int runs = 0;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].size == sorted[i - 1].size) ++runs;
  }
  EXPECT_LT(runs, static_cast<int>(sorted.size()) / 4);
}

TEST(Lanl, ProcessSectionsDisjoint) {
  LanlConfig config;
  config.num_procs = 4;
  config.loops = 2;
  const auto trace = lanl_app2(config);
  // All (offset, size) extents must be pairwise disjoint.
  auto sorted = trace.records;
  trace::sort_by_offset(sorted);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i - 1].offset + sorted[i - 1].size, sorted[i].offset);
  }
}

TEST(Lu, SizesMatchPaper) {
  LuConfig config;
  config.num_procs = 2;
  config.slabs = 16;
  const auto trace = lu_decomposition(config);
  common::ByteCount read_min = ~0ULL, read_max = 0;
  for (const auto& r : trace.records) {
    if (r.op == OpType::kWrite) {
      EXPECT_EQ(r.size, 524544u);  // fixed write size
    } else {
      read_min = std::min(read_min, r.size);
      read_max = std::max(read_max, r.size);
    }
  }
  EXPECT_EQ(read_min, 6272u);
  EXPECT_EQ(read_max, 524544u);
}

TEST(Lu, AlternatesReadWritePhases) {
  LuConfig config;
  config.num_procs = 1;
  config.slabs = 4;
  const auto trace = lu_decomposition(config);
  ASSERT_EQ(trace.records.size(), 8u);
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    EXPECT_EQ(trace.records[i].op, i % 2 == 0 ? OpType::kRead : OpType::kWrite);
  }
}

TEST(Cholesky, SizesInPaperRanges) {
  CholeskyConfig config;
  config.num_procs = 2;
  config.panels = 64;
  const auto trace = sparse_cholesky(config);
  for (const auto& r : trace.records) {
    if (r.op == OpType::kRead) {
      EXPECT_GE(r.size, 2u);
      EXPECT_LE(r.size, 4206976u);
    } else {
      EXPECT_GE(r.size, 131556u);
      EXPECT_LE(r.size, 4206976u);
    }
  }
}

TEST(Cholesky, WideVarianceFewLargeRequests) {
  CholeskyConfig config;
  config.panels = 256;
  const auto trace = sparse_cholesky(config);
  std::size_t large = 0, reads = 0;
  for (const auto& r : trace.records) {
    if (r.op != OpType::kRead) continue;
    ++reads;
    if (r.size > 1u << 21) ++large;
  }
  ASSERT_GT(reads, 0u);
  // "only has a small number of large requests"
  EXPECT_LT(large, reads / 4);
  EXPECT_GT(large, 0u);
}

TEST(Cholesky, SameRequestsForEachClient) {
  CholeskyConfig config;
  config.num_procs = 3;
  config.panels = 8;
  const auto trace = sparse_cholesky(config);
  // Group records by step: within one step all ranks issue the same size.
  std::map<common::Seconds, std::set<common::ByteCount>> by_step;
  for (const auto& r : trace.records) by_step[r.t_start].insert(r.size);
  for (const auto& [t, sizes] : by_step) EXPECT_EQ(sizes.size(), 1u) << t;
}

}  // namespace
}  // namespace mha::workloads
