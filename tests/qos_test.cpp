// Multi-tenant QoS subsystem tests: job table, per-job server accounting,
// fair-share plan() semantics, token-bucket shaping, tenant metrics math,
// and the MultiTenantDriver — including the acceptance property that the
// bursty-aggressor victim's p99 slowdown under job-fair is measurably lower
// than under FCFS, and that the driver reports byte-identically at 1 and 8
// worker threads.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <vector>

#include "exec/thread_pool.hpp"
#include "layouts/scheme.hpp"
#include "qos/driver.hpp"
#include "qos/job.hpp"
#include "qos/job_fair.hpp"
#include "qos/metrics.hpp"
#include "qos/policy.hpp"
#include "qos/size_fair.hpp"
#include "qos/token_bucket.hpp"
#include "sched/server_row.hpp"
#include "sim/cluster_sim.hpp"

namespace mha {
namespace {

using common::JobId;
using common::OpType;
using common::Request;

constexpr common::ByteCount kKiB = 1024;
constexpr common::ByteCount kMiB = 1024 * 1024;

// ------------------------------------------------------------ Jain's index ---

TEST(JainsIndex, EmptyAndAllZeroAreFair) {
  EXPECT_DOUBLE_EQ(qos::jains_index({}), 1.0);
  const std::array<double, 3> zeros = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(qos::jains_index(zeros), 1.0);
}

TEST(JainsIndex, EqualSharesAreFair) {
  const std::array<double, 4> equal = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(qos::jains_index(equal), 1.0);
}

TEST(JainsIndex, OneTakesAllIsOneOverN) {
  const std::array<double, 4> skewed = {12.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(qos::jains_index(skewed), 0.25);
}

TEST(JainsIndex, KnownMidpoint) {
  // (1+3)^2 / (2 * (1+9)) = 16/20 = 0.8.
  const std::array<double, 2> xs = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(qos::jains_index(xs), 0.8);
}

// --------------------------------------------------------------- JobTable ---

TEST(JobTable, DenseIdsWeightsAndRankOwnership) {
  qos::JobTable jobs;
  const JobId a = jobs.add("alpha", 2.0, qos::PriorityClass::kInteractive);
  const JobId b = jobs.add("beta");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs.weight(a), 2.0);
  EXPECT_DOUBLE_EQ(jobs.weight(b), 1.0);
  EXPECT_DOUBLE_EQ(jobs.total_weight(), 3.0);
  EXPECT_EQ(jobs.priority(a), qos::PriorityClass::kInteractive);
  EXPECT_EQ(jobs.spec(b).name, "beta");

  jobs.assign_ranks(a, 0, 4);
  jobs.assign_ranks(b, 4, 2);
  EXPECT_EQ(jobs.num_ranks(), 6);
  EXPECT_EQ(jobs.job_of_rank(0), a);
  EXPECT_EQ(jobs.job_of_rank(3), a);
  EXPECT_EQ(jobs.job_of_rank(5), b);
  // Unmapped ranks fall into the default job — single-tenant callers are
  // behaviourally unchanged.
  EXPECT_EQ(jobs.job_of_rank(99), common::kDefaultJob);
  EXPECT_EQ(jobs.job_of_rank(-1), common::kDefaultJob);
}

// ------------------------------------------------- per-job ServerSim rows ---

TEST(ServerSimJobs, RowsReconcileWithAggregateStats) {
  sim::ServerSim server(common::ServerKind::kHdd, sim::hdd_sata(),
                        sim::null_network());
  server.submit(OpType::kWrite, 1000, 0.0, /*job=*/0);
  server.submit(OpType::kRead, 500, 0.0, /*job=*/1);
  server.submit(OpType::kWrite, 300, 0.0, /*job=*/1);

  const sim::ServerStats& total = server.stats();
  EXPECT_EQ(total.sub_requests, 3u);
  EXPECT_EQ(total.bytes_total(), 1800u);

  const sim::JobServerStats& row0 = server.job_stats(0);
  const sim::JobServerStats& row1 = server.job_stats(1);
  EXPECT_EQ(row0.sub_requests, 1u);
  EXPECT_EQ(row0.bytes_written, 1000u);
  EXPECT_EQ(row1.sub_requests, 2u);
  EXPECT_EQ(row1.bytes_read, 500u);
  EXPECT_EQ(row1.bytes_written, 300u);
  EXPECT_EQ(row0.bytes_total() + row1.bytes_total(), total.bytes_total());
  EXPECT_DOUBLE_EQ(row0.busy_time + row1.busy_time, total.busy_time);
  // A job this server never saw reads as an empty row, not UB.
  EXPECT_EQ(server.job_stats(7).sub_requests, 0u);
}

TEST(ServerSimJobs, TryCancelRewindsTheJobRow) {
  sim::ServerSim server(common::ServerKind::kSsd, sim::ssd_pcie(),
                        sim::null_network());
  server.submit(OpType::kRead, 100, 0.0, /*job=*/0);
  const sim::Charge charge = server.charge(OpType::kRead, 4096, 0.0, /*job=*/3);
  EXPECT_EQ(server.job_stats(3).bytes_read, 4096u);

  ASSERT_TRUE(server.try_cancel(charge));
  EXPECT_EQ(server.job_stats(3).sub_requests, 0u);
  EXPECT_EQ(server.job_stats(3).bytes_read, 0u);
  EXPECT_DOUBLE_EQ(server.job_stats(3).busy_time, 0.0);
  // The other tenant's row and the aggregate survive untouched.
  EXPECT_EQ(server.job_stats(0).bytes_read, 100u);
  EXPECT_EQ(server.stats().bytes_total(), 100u);
}

// ------------------------------------------------------- fair-share plans ---

std::vector<Request> window(std::initializer_list<std::pair<JobId, common::ByteCount>>
                                items) {
  std::vector<Request> batch;
  int rank = 0;
  for (const auto& [job, bytes] : items) {
    Request r;
    r.rank = rank++;
    r.op = OpType::kWrite;
    r.offset = 0;
    r.size = bytes;
    r.issue_time = 0.0;
    r.job = job;
    batch.push_back(r);
  }
  return batch;
}

TEST(FairSharePlan, JobFairInterleavesWideTenant) {
  qos::JobTable jobs;
  jobs.add("wide");
  jobs.add("narrow");
  qos::JobFairScheduler sched(jobs);

  // Arrival order gives the wide tenant the whole prefix; job-fair must
  // alternate service opportunities instead.
  const auto batch = window({{0, 64 * kKiB}, {0, 64 * kKiB}, {0, 64 * kKiB},
                             {0, 64 * kKiB}, {1, 64 * kKiB}, {1, 64 * kKiB}});
  const auto order = sched.plan(batch);
  ASSERT_EQ(order.size(), batch.size());
  // First two service slots: one per job (equal weights, tag 1 each, stable
  // tie-break by arrival).
  EXPECT_EQ(batch[order[0]].job, 0u);
  EXPECT_EQ(batch[order[1]].job, 1u);
  EXPECT_EQ(batch[order[2]].job, 0u);
  EXPECT_EQ(batch[order[3]].job, 1u);
}

TEST(FairSharePlan, SizeFairDrainsSmallRequestsPastALargeOne) {
  qos::JobTable jobs;
  jobs.add("elephant");
  jobs.add("mouse");
  qos::SizeFairScheduler sched(jobs);

  const auto batch = window(
      {{0, 8 * kMiB}, {1, 4 * kKiB}, {1, 4 * kKiB}, {1, 4 * kKiB}});
  const auto order = sched.plan(batch);
  // Byte clock: the elephant's single request costs 8 MiB of virtual time,
  // every mouse request a few KiB — all mice go first.
  EXPECT_EQ(batch[order[0]].job, 1u);
  EXPECT_EQ(batch[order[1]].job, 1u);
  EXPECT_EQ(batch[order[2]].job, 1u);
  EXPECT_EQ(batch[order[3]].job, 0u);
}

TEST(FairSharePlan, WeightsScaleServiceShare) {
  qos::JobTable jobs;
  jobs.add("heavy", 2.0);
  jobs.add("light", 1.0);
  qos::JobFairScheduler sched(jobs);

  const auto batch = window({{0, kKiB}, {0, kKiB}, {0, kKiB}, {0, kKiB},
                             {1, kKiB}, {1, kKiB}, {1, kKiB}, {1, kKiB}});
  const auto order = sched.plan(batch);
  // Weight-2 tags: .5 1 1.5 2; weight-1 tags: 1 2 3 4.  Of the first three
  // slots the heavy job holds two.
  int heavy_in_first_three = 0;
  for (std::size_t i = 0; i < 3; ++i) heavy_in_first_three += batch[order[i]].job == 0;
  EXPECT_EQ(heavy_in_first_three, 2);
}

TEST(FairSharePlan, PriorityTiersPreemptFairness) {
  qos::JobTable jobs;
  jobs.add("batch", 10.0, qos::PriorityClass::kBatch);
  jobs.add("interactive", 0.1, qos::PriorityClass::kInteractive);
  qos::JobFairScheduler sched(jobs);

  const auto batch = window({{0, kKiB}, {0, kKiB}, {1, kKiB}, {1, kKiB}});
  const auto order = sched.plan(batch);
  // Tier beats any weight: interactive requests occupy the whole prefix.
  EXPECT_EQ(batch[order[0]].job, 1u);
  EXPECT_EQ(batch[order[1]].job, 1u);
  EXPECT_EQ(batch[order[2]].job, 0u);
  EXPECT_EQ(batch[order[3]].job, 0u);
}

TEST(FairSharePlan, DeterministicAcrossIdenticalSchedulers) {
  qos::JobTable jobs;
  jobs.add("a");
  jobs.add("b", 3.0);
  const auto batch = window({{0, 4 * kKiB}, {1, 64 * kKiB}, {0, kMiB},
                             {1, 4 * kKiB}, {0, 16 * kKiB}, {1, kMiB}});
  qos::SizeFairScheduler first(jobs);
  qos::SizeFairScheduler second(jobs);
  EXPECT_EQ(first.plan(batch), second.plan(batch));
  // Replanning the same window advances the simulated clocks identically.
  EXPECT_EQ(first.plan(batch), second.plan(batch));
}

// ------------------------------------------------------------ token bucket ---

TEST(TokenBucket, RatesSplitByWeight) {
  qos::JobTable jobs;
  jobs.add("a", 3.0);
  jobs.add("b", 1.0);
  qos::TokenBucketOptions options;
  options.aggregate_bytes_per_s = 4000.0;
  qos::TokenBucketScheduler sched(jobs, options);
  EXPECT_DOUBLE_EQ(sched.rate_of(0), 3000.0);
  EXPECT_DOUBLE_EQ(sched.rate_of(1), 1000.0);
}

TEST(TokenBucket, BurstAdmittedThenExcessDeferred) {
  qos::JobTable jobs;
  jobs.add("only");
  qos::TokenBucketOptions options;
  options.aggregate_bytes_per_s = 1000.0;  // rate 1000 B/s
  options.burst_seconds = 1.0;             // burst depth 1000 B
  qos::TokenBucketScheduler sched(jobs, options);

  sim::ClusterConfig config;
  config.num_hservers = 1;
  config.num_sservers = 0;
  sim::ClusterSim cluster(config);
  const sched::ServerRow row = sched::ServerRow::from(cluster);

  // Within burst: admitted at arrival, no deferral counted.
  sched.dispatch(row, {{0, OpType::kWrite, 600, 0}}, 0.0);
  EXPECT_EQ(sched.metrics().deferrals, 0u);
  EXPECT_NEAR(sched.tokens_of(0), 400.0, 1e-9);

  // Past burst: the 800-byte request finds 400 tokens; the 400-byte deficit
  // refills at 1000 B/s, so admission slips 0.4 s and the bucket is empty.
  sched.dispatch(row, {{0, OpType::kWrite, 800, 0}}, 0.0);
  EXPECT_EQ(sched.metrics().deferrals, 1u);
  EXPECT_NEAR(sched.tokens_of(0), 0.0, 1e-9);
}

TEST(TokenBucket, PlanOrdersThrottledWorkBehindUnthrottled) {
  qos::JobTable jobs;
  jobs.add("hog");
  jobs.add("meek");
  qos::TokenBucketOptions options;
  options.aggregate_bytes_per_s = 2000.0;  // 1000 B/s each
  options.burst_seconds = 1.0;             // 1000 B burst each
  qos::TokenBucketScheduler sched(jobs, options);

  // The hog's second request overruns its bucket and gets a late simulated
  // admission; the meek job's request must not queue behind it.
  const auto batch = window({{0, 900}, {0, 900}, {1, 100}});
  const auto order = sched.plan(batch);
  EXPECT_EQ(batch[order[0]].job, 0u);  // first hog request: within burst
  EXPECT_EQ(batch[order[1]].job, 1u);  // meek slots into the gap
  EXPECT_EQ(order[2], 1u);             // throttled hog request goes last
}

// ---------------------------------------------------------- tenant metrics ---

TEST(TenantMetrics, SlowdownIsContendedOverIsolated) {
  qos::TenantReport report;
  report.p50 = 0.02;
  report.p99 = 0.5;
  report.isolated_p50 = 0.01;
  report.isolated_p99 = 0.1;
  EXPECT_DOUBLE_EQ(report.slowdown_p50(), 2.0);
  EXPECT_DOUBLE_EQ(report.slowdown_p99(), 5.0);
  // A zero baseline reads as "no interference" instead of dividing by zero.
  report.isolated_p99 = 0.0;
  EXPECT_DOUBLE_EQ(report.slowdown_p99(), 1.0);
}

TEST(TenantMetrics, WeightedFairnessNormalisesByWeight) {
  // 2:1 bandwidth split under 2:1 weights is perfectly fair.
  std::vector<qos::TenantReport> tenants(2);
  tenants[0].spec.weight = 2.0;
  tenants[0].bandwidth_mib_s = 200.0;
  tenants[1].spec.weight = 1.0;
  tenants[1].bandwidth_mib_s = 100.0;
  EXPECT_NEAR(qos::weighted_fairness(tenants), 1.0, 1e-12);
  // The same split under equal weights is not.
  tenants[0].spec.weight = 1.0;
  EXPECT_LT(qos::weighted_fairness(tenants), 1.0);
}

// ------------------------------------------------------ MultiTenantDriver ---

std::vector<qos::TenantSpec> bursty_mix() {
  // The aggressor is listed first: inside a synchronous window the stable
  // time-order merge then gives FCFS its worst case for the victim.
  qos::TenantSpec burst;
  burst.name = "burst";
  burst.workload = qos::TenantWorkload::kIorLarge;
  burst.clients = 16;
  burst.bytes_per_client = 4 * kMiB;
  burst.seed = 21;
  qos::TenantSpec victim;
  victim.name = "victim";
  victim.workload = qos::TenantWorkload::kIorSmall;
  victim.clients = 8;
  victim.priority = qos::PriorityClass::kInteractive;  // as in the bench mix
  victim.bytes_per_client = 256 * kKiB;
  victim.seed = 22;
  return {burst, victim};
}

qos::SchemeFactory def_factory() {
  return [] { return layouts::make_def(); };
}

TEST(MultiTenantDriver, BuildsDisjointRankBlocksAndRegions) {
  qos::MultiTenantDriver driver(bursty_mix());
  EXPECT_EQ(driver.total_clients(), 24);
  EXPECT_EQ(driver.jobs().size(), 2u);
  EXPECT_EQ(driver.jobs().job_of_rank(0), 0u);
  EXPECT_EQ(driver.jobs().job_of_rank(15), 0u);
  EXPECT_EQ(driver.jobs().job_of_rank(16), 1u);
  EXPECT_EQ(driver.jobs().job_of_rank(23), 1u);
  // The combined trace holds both tenants' records, merged in time order.
  const trace::Trace& combined = driver.combined_trace();
  EXPECT_EQ(combined.records.size(), driver.tenant_trace(0).records.size() +
                                         driver.tenant_trace(1).records.size());
  for (std::size_t i = 1; i < combined.records.size(); ++i) {
    EXPECT_LE(combined.records[i - 1].t_start, combined.records[i].t_start);
  }
}

TEST(MultiTenantDriver, VictimIsolationJobFairBeatsFcfs) {
  qos::MultiTenantDriver driver(bursty_mix());
  const sim::ClusterConfig config;  // the paper's 6H+2S hybrid testbed

  auto fcfs = driver.run(def_factory(), config, nullptr);
  ASSERT_TRUE(fcfs.is_ok()) << fcfs.status().to_string();
  auto job_fair_sched = qos::make_qos_scheduler(qos::QosKind::kJobFair, driver.jobs());
  auto job_fair = driver.run(def_factory(), config, job_fair_sched.get());
  ASSERT_TRUE(job_fair.is_ok()) << job_fair.status().to_string();

  const qos::TenantReport& victim_fcfs = fcfs->tenants[1];
  const qos::TenantReport& victim_fair = job_fair->tenants[1];
  EXPECT_EQ(victim_fcfs.spec.name, "victim");

  // The acceptance property: behind a bursty aggressor, the victim's p99
  // slowdown under job-fair is *measurably* lower than under FCFS (the bench
  // shows ~24x vs ~1x at full scale; demand 2x here to stay robust).
  EXPECT_GT(victim_fcfs.slowdown_p99(), 2.0 * victim_fair.slowdown_p99())
      << "fcfs slowdown " << victim_fcfs.slowdown_p99() << " vs job-fair "
      << victim_fair.slowdown_p99();
  // Fair sharing also shows up in the aggregate fairness index.
  EXPECT_GE(job_fair->fairness, fcfs->fairness);
}

TEST(MultiTenantDriver, ReportsAreIdenticalAtOneAndEightThreads) {
  const sim::ClusterConfig config;
  const std::size_t saved = exec::default_threads();

  auto run_at = [&](std::size_t threads) {
    exec::set_default_threads(threads);
    qos::MultiTenantDriver driver(bursty_mix());
    auto sched = qos::make_qos_scheduler(qos::QosKind::kSizeFair, driver.jobs());
    auto result = driver.run(def_factory(), config, sched.get());
    EXPECT_TRUE(result.is_ok());
    return result.is_ok() ? *result : qos::MultiTenantResult{};
  };

  const qos::MultiTenantResult one = run_at(1);
  const qos::MultiTenantResult eight = run_at(8);
  exec::set_default_threads(saved);

  // Baselines fan out on the pool; results land by tenant index, so every
  // reported number is bit-identical regardless of worker count.
  EXPECT_EQ(one.makespan, eight.makespan);
  EXPECT_EQ(one.aggregate_bandwidth, eight.aggregate_bandwidth);
  EXPECT_EQ(one.fairness, eight.fairness);
  ASSERT_EQ(one.tenants.size(), eight.tenants.size());
  for (std::size_t i = 0; i < one.tenants.size(); ++i) {
    EXPECT_EQ(one.tenants[i].p50, eight.tenants[i].p50);
    EXPECT_EQ(one.tenants[i].p99, eight.tenants[i].p99);
    EXPECT_EQ(one.tenants[i].isolated_p50, eight.tenants[i].isolated_p50);
    EXPECT_EQ(one.tenants[i].isolated_p99, eight.tenants[i].isolated_p99);
    EXPECT_EQ(one.tenants[i].bandwidth_mib_s, eight.tenants[i].bandwidth_mib_s);
  }
}

}  // namespace
}  // namespace mha
