#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>

#include "common/units.hpp"
#include "pfs/file_system.hpp"

namespace mha::pfs {
namespace {

using common::OpType;
using namespace mha::common::literals;

sim::ClusterConfig small_cluster() {
  sim::ClusterConfig c;
  c.num_hservers = 2;
  c.num_sservers = 2;
  return c;
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed + i * 7);
  return v;
}

// ------------------------------------------------------------------ mds ---

TEST(MetadataServer, CreateLookupRemove) {
  MetadataServer mds;
  auto id = mds.create_file("a", StripeLayout::uniform(4, 64_KiB));
  ASSERT_TRUE(id.is_ok());
  EXPECT_TRUE(mds.exists("a"));
  EXPECT_EQ(*mds.lookup("a"), *id);
  EXPECT_FALSE(mds.lookup("b").is_ok());
  EXPECT_FALSE(mds.create_file("a", StripeLayout::uniform(4, 64_KiB)).is_ok());
  EXPECT_TRUE(mds.remove("a").is_ok());
  EXPECT_FALSE(mds.exists("a"));
  EXPECT_FALSE(mds.remove("a").is_ok());
}

TEST(MetadataServer, TracksSizeMonotonically) {
  MetadataServer mds;
  auto id = *mds.create_file("f", StripeLayout::uniform(2, 1_KiB));
  mds.extend(id, 100);
  mds.extend(id, 50);
  EXPECT_EQ(mds.info(id).size, 100u);
}

TEST(MetadataServer, LayoutCodecRoundTrip) {
  const auto layout = StripeLayout::stripe_pair(3, 2, 0, 96_KiB).take();
  const std::string row = MetadataServer::encode_layout(layout);
  auto back = MetadataServer::decode_layout(row);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, layout);
  EXPECT_FALSE(MetadataServer::decode_layout("12,abc").is_ok());
  EXPECT_FALSE(MetadataServer::decode_layout("").is_ok());
}

TEST(MetadataServer, RstPersistenceSurvivesRestart) {
  const std::string rst = testing::TempDir() + "mds_rst_test.db";
  std::remove(rst.c_str());
  {
    MetadataServer mds(rst);
    ASSERT_TRUE(mds.create_file("region0", StripeLayout::stripe_pair(2, 2, 8_KiB, 24_KiB).take())
                    .is_ok());
    ASSERT_TRUE(mds.create_file("region1", StripeLayout::uniform(4, 64_KiB)).is_ok());
  }
  MetadataServer revived(rst);
  ASSERT_TRUE(revived.restore_from_rst().is_ok());
  ASSERT_TRUE(revived.exists("region0"));
  ASSERT_TRUE(revived.exists("region1"));
  const auto& info = revived.info(*revived.lookup("region0"));
  EXPECT_EQ(info.layout.width(0), 8_KiB);
  EXPECT_EQ(info.layout.width(3), 24_KiB);
  std::remove(rst.c_str());
}

TEST(MetadataServer, ListFilesSorted) {
  MetadataServer mds;
  (void)mds.create_file("zeta", StripeLayout::uniform(1, 1_KiB));
  (void)mds.create_file("alpha", StripeLayout::uniform(1, 1_KiB));
  const auto names = mds.list_files();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

// ------------------------------------------------------------------ pfs ---

TEST(HybridPfs, ServerOrderingMatchesPaper) {
  HybridPfs pfs(small_cluster());
  EXPECT_EQ(pfs.num_servers(), 4u);
  EXPECT_TRUE(pfs.is_hserver(0));
  EXPECT_TRUE(pfs.is_hserver(1));
  EXPECT_FALSE(pfs.is_hserver(2));
  EXPECT_EQ(pfs.data_server(3).kind(), common::ServerKind::kSsd);
}

TEST(HybridPfs, RejectsMismatchedLayout) {
  HybridPfs pfs(small_cluster());
  EXPECT_FALSE(pfs.create_file("bad", StripeLayout::uniform(7, 64_KiB)).is_ok());
}

TEST(HybridPfs, WriteReadIntegritySmall) {
  HybridPfs pfs(small_cluster());
  auto file = *pfs.create_file("f");
  const auto data = pattern(100);
  ASSERT_TRUE(pfs.write(file, 5, data, 0.0).is_ok());
  auto back = pfs.read_bytes(file, 5, 100, 1.0);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, data);
}

TEST(HybridPfs, WriteReadIntegrityAcrossStripes) {
  HybridPfs pfs(small_cluster());
  auto file = *pfs.create_file("f", StripeLayout::stripe_pair(2, 2, 4_KiB, 12_KiB).take());
  // Spans many stripes and several cycles, unaligned on both ends.
  const auto data = pattern(200_KiB + 333, 9);
  ASSERT_TRUE(pfs.write(file, 1_KiB + 17, data, 0.0).is_ok());
  auto back = pfs.read_bytes(file, 1_KiB + 17, data.size(), 1.0);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, data);
  EXPECT_EQ(pfs.stored_bytes(file), data.size());
  EXPECT_EQ(pfs.file_size(file), 1_KiB + 17 + data.size());
}

TEST(HybridPfs, SsdOnlyLayoutLeavesHserversEmpty) {
  HybridPfs pfs(small_cluster());
  auto file = *pfs.create_file("f", StripeLayout::stripe_pair(2, 2, 0, 16_KiB).take());
  ASSERT_TRUE(pfs.write(file, 0, pattern(64_KiB), 0.0).is_ok());
  EXPECT_EQ(pfs.data_server(0).stored_bytes(file), 0u);
  EXPECT_EQ(pfs.data_server(1).stored_bytes(file), 0u);
  EXPECT_EQ(pfs.data_server(2).stored_bytes(file) + pfs.data_server(3).stored_bytes(file),
            64_KiB);
}

TEST(HybridPfs, ReadOfHoleReturnsZeros) {
  HybridPfs pfs(small_cluster());
  auto file = *pfs.create_file("f");
  auto back = pfs.read_bytes(file, 1_MiB, 64, 0.0);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, std::vector<std::uint8_t>(64, 0));
}

TEST(HybridPfs, TimingReflectsHeterogeneity) {
  HybridPfs pfs(small_cluster());
  auto file = *pfs.create_file("f");
  ASSERT_TRUE(pfs.write(file, 0, pattern(256_KiB), 0.0).is_ok());
  // HServers (0,1) must have spent more device time than SServers (2,3) on
  // the same byte count.
  EXPECT_EQ(pfs.server_stats(0).bytes_total(), pfs.server_stats(2).bytes_total());
  EXPECT_GT(pfs.server_stats(0).busy_time, pfs.server_stats(2).busy_time * 2);
}

TEST(HybridPfs, IoResultCountsServersAndSubRequests) {
  HybridPfs pfs(small_cluster());
  auto file = *pfs.create_file("f", StripeLayout::uniform(4, 1_KiB));
  auto r = pfs.write(file, 0, pattern(4_KiB), 0.0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->servers_touched, 4u);
  EXPECT_EQ(r->sub_requests, 4u);
}

TEST(HybridPfs, RemoveDropsDataEverywhere) {
  HybridPfs pfs(small_cluster());
  auto file = *pfs.create_file("f");
  ASSERT_TRUE(pfs.write(file, 0, pattern(64_KiB), 0.0).is_ok());
  ASSERT_TRUE(pfs.remove("f").is_ok());
  for (std::size_t i = 0; i < pfs.num_servers(); ++i) {
    EXPECT_EQ(pfs.data_server(i).stored_bytes(file), 0u);
  }
  EXPECT_FALSE(pfs.open("f").is_ok());
}

TEST(HybridPfs, BadFileIdRejected) {
  HybridPfs pfs(small_cluster());
  std::uint8_t byte = 0;
  EXPECT_FALSE(pfs.write(42, 0, &byte, 1, 0.0).is_ok());
  EXPECT_FALSE(pfs.read(42, 0, &byte, 1, 0.0).is_ok());
}

TEST(HybridPfs, TimingOnlyModeDiscardsPayload) {
  pfs::PfsOptions options;
  options.store_data = false;
  HybridPfs pfs(small_cluster(), options);
  auto file = *pfs.create_file("f");
  ASSERT_TRUE(pfs.write(file, 0, pattern(64_KiB), 0.0).is_ok());
  EXPECT_EQ(pfs.stored_bytes(file), 0u);
  // Timing is still charged.
  EXPECT_GT(pfs.server_stats(0).busy_time, 0.0);
  // Reads come back zero-filled.
  auto back = pfs.read_bytes(file, 0, 16, 1.0);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, std::vector<std::uint8_t>(16, 0));
}

TEST(HybridPfs, StatsResetIsolatesMeasurementWindows) {
  HybridPfs pfs(small_cluster());
  auto file = *pfs.create_file("f");
  ASSERT_TRUE(pfs.write(file, 0, pattern(64_KiB), 0.0).is_ok());
  pfs.reset_stats();
  pfs.reset_clocks();
  for (std::size_t i = 0; i < pfs.num_servers(); ++i) {
    EXPECT_EQ(pfs.server_stats(i).bytes_total(), 0u);
  }
  // A fresh request starts from a drained queue at t=0.
  auto r = pfs.read_bytes(file, 0, 1_KiB, 0.0);
  ASSERT_TRUE(r.is_ok());
}

TEST(HybridPfs, StatsTableMentionsEveryServer) {
  HybridPfs pfs(small_cluster());
  const std::string table = pfs.stats_table();
  EXPECT_NE(table.find("S0"), std::string::npos);
  EXPECT_NE(table.find("S3"), std::string::npos);
}

}  // namespace
}  // namespace mha::pfs
