#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "fault/context.hpp"
#include "fault/injector.hpp"
#include "layouts/scheme.hpp"
#include "pfs/file_system.hpp"
#include "sched/fcfs.hpp"
#include "sched/hedged.hpp"
#include "sched/load_aware.hpp"
#include "sched/scheduler.hpp"
#include "sched/server_row.hpp"
#include "sim/cluster_sim.hpp"
#include "workloads/ior.hpp"
#include "workloads/replayer.hpp"

namespace mha::sched {
namespace {

using common::OpType;
using common::ServerKind;
using namespace common::literals;

/// Predictable numbers: service = 1.0 + bytes * 0.001 for HServer reads,
/// 0.1 + bytes * 0.0001 for SServer reads, no network.
sim::DeviceProfile slow_device() {
  sim::DeviceProfile d;
  d.name = "slow";
  d.startup_read = 1.0;
  d.startup_write = 2.0;
  d.per_byte_read = 0.001;
  d.per_byte_write = 0.002;
  d.queued_startup_factor = 1.0;
  return d;
}

sim::DeviceProfile fast_device() {
  sim::DeviceProfile d;
  d.name = "fast";
  d.startup_read = 0.1;
  d.startup_write = 0.2;
  d.per_byte_read = 0.0001;
  d.per_byte_write = 0.0002;
  d.queued_startup_factor = 1.0;
  return d;
}

sim::ClusterConfig tiny_cluster(std::size_t hservers = 2, std::size_t sservers = 1) {
  sim::ClusterConfig config;
  config.num_hservers = hservers;
  config.num_sservers = sservers;
  config.hdd = slow_device();
  config.ssd = fast_device();
  config.network = sim::null_network();
  return config;
}

// ------------------------------------------------------ policy selection ---

TEST(SchedulerFactory, KindsNamesAndFactoryAgree) {
  EXPECT_STREQ(to_string(SchedulerKind::kFcfs), "fcfs");
  EXPECT_STREQ(to_string(SchedulerKind::kLoadAware), "load-aware");
  EXPECT_STREQ(to_string(SchedulerKind::kHedgedRead), "hedged-read");

  const std::vector<SchedulerKind> kinds = all_scheduler_kinds();
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], SchedulerKind::kFcfs);  // baseline first
  for (SchedulerKind kind : kinds) {
    auto scheduler = make_scheduler(kind);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_EQ(scheduler->name(), to_string(kind));
    EXPECT_EQ(scheduler->metrics().requests, 0u);
  }
}

// ------------------------------------------------- charge / cancel model ---

TEST(Charge, ChargeAgreesWithPredictAndSubmit) {
  sim::ServerSim a(ServerKind::kHdd, slow_device(), sim::null_network());
  sim::ServerSim b(ServerKind::kHdd, slow_device(), sim::null_network());

  const common::Seconds predicted = a.predict(OpType::kRead, 1000, 0.5);
  const sim::Charge c = a.charge(OpType::kRead, 1000, 0.5);
  EXPECT_DOUBLE_EQ(c.completion, predicted);
  EXPECT_DOUBLE_EQ(c.completion, b.submit(OpType::kRead, 1000, 0.5));
  EXPECT_DOUBLE_EQ(c.start + c.service, c.completion);
  EXPECT_DOUBLE_EQ(c.wait, 0.0);  // empty queue: starts at arrival
}

TEST(Charge, TryCancelRestoresQueueAndStats) {
  sim::ServerSim server(ServerKind::kHdd, slow_device(), sim::null_network());
  server.submit(OpType::kRead, 1000, 0.0);
  const common::Seconds drain = server.next_free();
  const sim::ServerStats before = server.stats();

  const sim::Charge c = server.charge(OpType::kRead, 2000, 0.0);
  EXPECT_GT(server.next_free(), drain);
  EXPECT_TRUE(server.try_cancel(c));
  EXPECT_DOUBLE_EQ(server.next_free(), drain);
  EXPECT_EQ(server.stats().sub_requests, before.sub_requests);
  EXPECT_EQ(server.stats().bytes_read, before.bytes_read);
  EXPECT_DOUBLE_EQ(server.stats().busy_time, before.busy_time);
  EXPECT_DOUBLE_EQ(server.stats().queue_wait, before.queue_wait);

  // Double-cancel and non-LIFO cancel both refuse.
  EXPECT_FALSE(server.try_cancel(c));
  const sim::Charge first = server.charge(OpType::kRead, 100, 0.0);
  server.charge(OpType::kRead, 100, 0.0);
  EXPECT_FALSE(server.try_cancel(first));
}

// -------------------------------------------------------- FCFS baseline ---

TEST(FcfsScheduler, MatchesDirectSubmitBitForBit) {
  sim::ClusterSim direct(tiny_cluster());
  sim::ClusterSim scheduled(tiny_cluster());
  FcfsScheduler fcfs;
  const ServerRow row = ServerRow::from(scheduled);

  const std::vector<std::vector<sim::SubRequest>> requests = {
      {{0, OpType::kRead, 4096}, {1, OpType::kRead, 4096}},
      {{0, OpType::kWrite, 1024}, {2, OpType::kRead, 512}},
      {{1, OpType::kRead, 8192}},
  };
  common::Seconds arrival = 0.0;
  for (const auto& subs : requests) {
    const common::Seconds expected = direct.submit(subs, arrival);
    const DispatchResult got = fcfs.dispatch(row, subs, arrival);
    EXPECT_DOUBLE_EQ(got.completion, expected);
    EXPECT_EQ(got.sub_requests, subs.size());
    EXPECT_EQ(got.hedges, 0u);
    arrival += 0.25;
  }
  for (std::size_t i = 0; i < direct.num_servers(); ++i) {
    EXPECT_DOUBLE_EQ(scheduled.server(i).next_free(), direct.server(i).next_free());
    EXPECT_EQ(scheduled.server(i).stats().sub_requests,
              direct.server(i).stats().sub_requests);
  }
  EXPECT_EQ(fcfs.metrics().requests, requests.size());
  EXPECT_EQ(fcfs.metrics().subs, 5u);
}

// ------------------------------------------------- EWMA straggler logic ---

TEST(HedgedReadScheduler, ThresholdInfiniteDuringWarmupThenConverges) {
  HedgedReadOptions options;
  options.warmup_subs = 4;
  HedgedReadScheduler hedged(options);
  sim::ClusterSim cluster(tiny_cluster(1, 0));  // no SServers: plain submits
  const ServerRow row = ServerRow::from(cluster);

  const double service = slow_device().service_time(OpType::kRead, 1000);
  common::Seconds arrival = 0.0;
  for (std::size_t i = 0; i < options.warmup_subs; ++i) {
    EXPECT_TRUE(std::isinf(hedged.straggler_threshold()));
    hedged.dispatch(row, {{0, OpType::kRead, 1000}}, arrival);
    arrival += 10.0;  // spaced out: every sample sees an empty queue
  }
  // Constant samples: srtt == service, rttvar decays toward zero, so the
  // threshold is finite, above the mean, and tightens with more samples.
  const double t0 = hedged.straggler_threshold();
  EXPECT_TRUE(std::isfinite(t0));
  EXPECT_GT(t0, service);
  hedged.dispatch(row, {{0, OpType::kRead, 1000}}, arrival);
  EXPECT_LT(hedged.straggler_threshold(), t0);
}

TEST(LoadAwareScheduler, FlagsServersOverTheThreshold) {
  LoadAwareOptions options;
  options.warmup_subs = 2;
  LoadAwareScheduler load_aware(options);
  sim::ClusterSim cluster(tiny_cluster(2, 0));
  const ServerRow row = ServerRow::from(cluster);

  common::Seconds arrival = 0.0;
  for (int i = 0; i < 4; ++i) {
    load_aware.dispatch(row, {{0, OpType::kRead, 1000}}, arrival);
    arrival += 10.0;
  }
  EXPECT_FALSE(load_aware.straggler(0));
  EXPECT_EQ(load_aware.metrics().straggler_detections, 0u);

  // Pile work onto server 1 behind the scheduler's back; its prediction for
  // the next dispatch breaks srtt + k*rttvar while server 0 stays healthy.
  row.server(1).submit(OpType::kRead, 1_MiB, arrival);
  load_aware.dispatch(row, {{1, OpType::kRead, 1000}, {0, OpType::kRead, 1000}},
                      arrival);
  EXPECT_TRUE(load_aware.straggler(1));
  EXPECT_FALSE(load_aware.straggler(0));
  EXPECT_EQ(load_aware.metrics().straggler_detections, 1u);
}

TEST(LoadAwareScheduler, LedgerTracksOutstandingBytes) {
  LoadAwareScheduler load_aware;
  sim::ClusterSim cluster(tiny_cluster(2, 0));
  const ServerRow row = ServerRow::from(cluster);

  load_aware.dispatch(row, {{0, OpType::kRead, 4096}}, 0.0);
  EXPECT_EQ(load_aware.outstanding_bytes(0), 4096u);
  EXPECT_EQ(load_aware.outstanding_bytes(1), 0u);
  // Next dispatch far past the completion drains the ledger.
  load_aware.dispatch(row, {{1, OpType::kRead, 512}}, 1e6);
  EXPECT_EQ(load_aware.outstanding_bytes(0), 0u);
}

// ---------------------------------------------- hedge win/loss accounting ---

TEST(HedgedReadScheduler, WonHedgeCancelsPrimaryCharge) {
  HedgedReadOptions options;
  options.warmup_subs = 0;  // zero-sample threshold is 0: everything hedges
  HedgedReadScheduler hedged(options);
  sim::ClusterSim cluster(tiny_cluster(1, 1));
  const ServerRow row = ServerRow::from(cluster);

  const DispatchResult result = hedged.dispatch(row, {{0, OpType::kRead, 1000}}, 0.0);
  EXPECT_EQ(result.hedges, 1u);
  EXPECT_EQ(hedged.metrics().hedges_issued, 1u);
  EXPECT_EQ(hedged.metrics().hedges_won, 1u);
  EXPECT_EQ(hedged.metrics().hedges_lost, 0u);
  EXPECT_EQ(hedged.metrics().straggler_detections, 1u);
  // The SSD replica won; the request waits on it and the HServer's charge
  // was rolled back entirely.
  EXPECT_DOUBLE_EQ(result.completion, fast_device().service_time(OpType::kRead, 1000));
  EXPECT_DOUBLE_EQ(row.server(0).next_free(), 0.0);
  EXPECT_EQ(row.server(0).stats().sub_requests, 0u);
  EXPECT_EQ(row.server(1).stats().sub_requests, 1u);
}

TEST(HedgedReadScheduler, LostHedgeCancelsReplicaCharge) {
  HedgedReadOptions options;
  options.warmup_subs = 0;
  HedgedReadScheduler hedged(options);
  sim::ClusterSim cluster(tiny_cluster(1, 1));
  const ServerRow row = ServerRow::from(cluster);

  // Bury the SSD tier so the replica predicts later than the primary.
  row.server(1).submit(OpType::kWrite, 100_MiB, 0.0);
  const common::Seconds replica_drain = row.server(1).next_free();

  const DispatchResult result = hedged.dispatch(row, {{0, OpType::kRead, 1000}}, 0.0);
  EXPECT_EQ(hedged.metrics().hedges_issued, 1u);
  EXPECT_EQ(hedged.metrics().hedges_won, 0u);
  EXPECT_EQ(hedged.metrics().hedges_lost, 1u);
  // The primary's charge stands; the replica queue rewound to its backlog.
  EXPECT_DOUBLE_EQ(result.completion, slow_device().service_time(OpType::kRead, 1000));
  EXPECT_DOUBLE_EQ(row.server(1).next_free(), replica_drain);
  EXPECT_EQ(row.server(0).stats().sub_requests, 1u);
}

TEST(HedgedReadScheduler, CancelledHedgeReleasesFullServerCharge) {
  // A cancelled hedge must roll back *all* of the loser's accounting — not
  // just the queue clock but every ServerStats field and the per-job row —
  // or per-server/per-tenant reports would show phantom load.
  HedgedReadOptions options;
  options.warmup_subs = 0;  // zero-sample threshold is 0: everything hedges
  HedgedReadScheduler hedged(options);
  sim::ClusterSim cluster(tiny_cluster(1, 1));
  const ServerRow row = ServerRow::from(cluster);

  const common::JobId job = 3;
  const DispatchResult result = hedged.dispatch(row, {{0, OpType::kRead, 1000, job}}, 0.0);
  ASSERT_EQ(result.hedges, 1u);
  ASSERT_EQ(hedged.metrics().hedges_won, 1u);  // SSD replica wins on this rig

  // Loser (the HServer primary): aggregate stats fully released...
  const sim::ServerStats& lost = row.server(0).stats();
  EXPECT_EQ(lost.sub_requests, 0u);
  EXPECT_EQ(lost.bytes_read, 0u);
  EXPECT_DOUBLE_EQ(lost.busy_time, 0.0);
  EXPECT_DOUBLE_EQ(lost.queue_wait, 0.0);
  // ...and the job's accounting row with them.
  const sim::JobServerStats& lost_job = row.server(0).job_stats(job);
  EXPECT_EQ(lost_job.sub_requests, 0u);
  EXPECT_EQ(lost_job.bytes_read, 0u);
  EXPECT_DOUBLE_EQ(lost_job.busy_time, 0.0);
  EXPECT_DOUBLE_EQ(lost_job.queue_wait, 0.0);

  // Winner: exactly one charge, attributed to the stamped job.
  EXPECT_EQ(row.server(1).stats().sub_requests, 1u);
  const sim::JobServerStats& won_job = row.server(1).job_stats(job);
  EXPECT_EQ(won_job.sub_requests, 1u);
  EXPECT_EQ(won_job.bytes_read, 1000u);
}

TEST(HedgedReadScheduler, OnlySmallHserverReadsAreHedged) {
  HedgedReadOptions options;
  options.warmup_subs = 0;
  options.straggler_k = -1e9;  // threshold pinned below any prediction:
                               // every *eligible* read hedges, so only the
                               // eligibility gates are under test
  options.max_hedge_bytes = 4096;
  HedgedReadScheduler hedged(options);
  sim::ClusterSim cluster(tiny_cluster(1, 1));
  const ServerRow row = ServerRow::from(cluster);

  hedged.dispatch(row, {{0, OpType::kWrite, 1000}}, 0.0);   // write: never
  hedged.dispatch(row, {{1, OpType::kRead, 1000}}, 100.0);  // SServer primary
  hedged.dispatch(row, {{0, OpType::kRead, 8192}}, 200.0);  // over size cap
  EXPECT_EQ(hedged.metrics().hedges_issued, 0u);
  hedged.dispatch(row, {{0, OpType::kRead, 1000}}, 300.0);  // hedgeable
  EXPECT_EQ(hedged.metrics().hedges_issued, 1u);
}

// ------------------------------------------------------ plan() ordering ---

common::Request read_of(common::ByteCount size) {
  common::Request r;
  r.op = OpType::kRead;
  r.size = size;
  return r;
}

TEST(LoadAwareScheduler, PlanSortsShortestPredictedFirst) {
  LoadAwareScheduler load_aware;
  // Pre-warmup the predictor falls back to the byte count, so the order is
  // simply ascending size.
  const std::vector<common::Request> batch = {read_of(300), read_of(100),
                                              read_of(200)};
  const std::vector<std::size_t> order = load_aware.plan(batch);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
  EXPECT_EQ(load_aware.metrics().reorders, 3u);

  // Ties keep arrival order (stable), and identity costs no reorders.
  LoadAwareScheduler fresh;
  const std::vector<common::Request> equal = {read_of(64), read_of(64), read_of(64)};
  EXPECT_EQ(fresh.plan(equal), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(fresh.metrics().reorders, 0u);
}

TEST(LoadAwareScheduler, PlanSortsEachCongestionWindowIndependently) {
  LoadAwareOptions options;
  options.window = 2;
  LoadAwareScheduler load_aware(options);
  const std::vector<common::Request> batch = {read_of(400), read_of(300),
                                              read_of(200), read_of(100)};
  // Windows [0,1] and [2,3] sort internally; nothing crosses the boundary.
  EXPECT_EQ(load_aware.plan(batch), (std::vector<std::size_t>{1, 0, 3, 2}));
}

// ---------------------------------------------------- replay integration ---

trace::Trace skewed_trace(common::OpType op) {
  workloads::IorMixedSizesConfig config;
  config.num_procs = 8;
  config.request_sizes = {64_KiB, 256_KiB};
  config.file_size = 16_MiB;
  config.op = op;
  config.per_rank_sizes = true;
  config.file_name = "sched_test.ior";
  config.seed = 42;
  return workloads::ior_mixed_sizes(config);
}

TEST(SchedulerReplay, DeterministicUnderFixedSeed) {
  const trace::Trace trace = skewed_trace(OpType::kRead);
  for (SchedulerKind kind : all_scheduler_kinds()) {
    workloads::ReplayResult runs[2];
    for (auto& run : runs) {
      auto scheme = layouts::make_def();
      auto scheduler = make_scheduler(kind);
      workloads::ReplayOptions options;
      options.scheduler = scheduler.get();
      auto result =
          workloads::run_scheme(*scheme, tiny_cluster(4, 2), trace, options);
      ASSERT_TRUE(result.is_ok()) << result.status().to_string();
      run = *result;
    }
    EXPECT_DOUBLE_EQ(runs[0].makespan, runs[1].makespan) << to_string(kind);
    EXPECT_DOUBLE_EQ(runs[0].latency_p99, runs[1].latency_p99) << to_string(kind);
    EXPECT_EQ(runs[0].scheduler_metrics.reorders, runs[1].scheduler_metrics.reorders);
    EXPECT_EQ(runs[0].scheduler_metrics.hedges_won,
              runs[1].scheduler_metrics.hedges_won);
    EXPECT_EQ(runs[0].scheduler_metrics.straggler_detections,
              runs[1].scheduler_metrics.straggler_detections);
    EXPECT_EQ(runs[0].requests, runs[1].requests);
  }
}

TEST(SchedulerReplay, FcfsSchedulerReproducesSchedulerlessReplay) {
  const trace::Trace trace = skewed_trace(OpType::kRead);
  auto baseline_scheme = layouts::make_def();
  auto baseline = workloads::run_scheme(*baseline_scheme, tiny_cluster(4, 2), trace);
  ASSERT_TRUE(baseline.is_ok());

  auto scheme = layouts::make_def();
  FcfsScheduler fcfs;
  workloads::ReplayOptions options;
  options.scheduler = &fcfs;
  auto scheduled = workloads::run_scheme(*scheme, tiny_cluster(4, 2), trace, options);
  ASSERT_TRUE(scheduled.is_ok());

  EXPECT_DOUBLE_EQ(scheduled->makespan, baseline->makespan);
  EXPECT_DOUBLE_EQ(scheduled->latency_p99, baseline->latency_p99);
  EXPECT_EQ(scheduled->requests, baseline->requests);
  EXPECT_EQ(fcfs.metrics().requests, baseline->requests);
}

TEST(SchedulerReplay, HedgedReplayConservesChargedBytes) {
  // End-to-end conservation: with cancelled hedges released, every read
  // byte of the trace is charged to exactly one server — the summed server
  // stats match the replay's byte count even though many requests were
  // double-charged transiently.
  const trace::Trace trace = skewed_trace(OpType::kRead);
  common::ByteCount trace_bytes = 0;
  for (const trace::TraceRecord& r : trace.records) trace_bytes += r.size;

  HedgedReadOptions hedge_options;
  hedge_options.warmup_subs = 0;
  hedge_options.straggler_k = -1e9;  // hedge every eligible read
  HedgedReadScheduler hedged(hedge_options);
  workloads::ReplayOptions options;
  options.scheduler = &hedged;
  auto scheme = layouts::make_def();
  auto result = workloads::run_scheme(*scheme, tiny_cluster(2, 1), trace, options);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  ASSERT_GT(hedged.metrics().hedges_issued, 0u);

  EXPECT_EQ(result->bytes_read, trace_bytes);
  common::ByteCount charged = 0;
  for (const sim::ServerStats& st : result->server_stats) charged += st.bytes_total();
  EXPECT_EQ(charged, trace_bytes);
}

TEST(SchedulerReplay, HedgedReplayPreservesDataIntegrity) {
  // Write the file then read it back through an aggressive hedger with
  // byte-level verification on: hedging only duplicates the timing charge,
  // never the data path, so every read must still verify.
  trace::Trace trace;
  trace.file_name = "sched_verify.ior";
  const common::ByteCount size = 64_KiB;
  for (int rank = 0; rank < 4; ++rank) {
    trace::TraceRecord w;
    w.rank = rank;
    w.op = OpType::kWrite;
    w.size = size;
    w.offset = static_cast<common::Offset>(rank) * size;
    w.t_start = 0.0;
    trace.records.push_back(w);
    trace::TraceRecord r = w;
    r.op = OpType::kRead;
    r.offset = static_cast<common::Offset>(3 - rank) * size;
    r.t_start = workloads::kIterationSpacing;
    trace.records.push_back(r);
  }

  HedgedReadOptions hedge_options;
  hedge_options.warmup_subs = 0;
  hedge_options.straggler_k = -1e9;  // hedge every eligible read
  HedgedReadScheduler hedged(hedge_options);
  workloads::ReplayOptions options;
  options.scheduler = &hedged;
  options.verify_data = true;
  auto scheme = layouts::make_def();
  auto result = workloads::run_scheme(*scheme, tiny_cluster(2, 1), trace, options);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_GT(hedged.metrics().hedges_issued, 0u);
  EXPECT_EQ(hedged.metrics().hedges_issued,
            hedged.metrics().hedges_won + hedged.metrics().hedges_lost);
}

// ----------------------------------------------------------- metrics ---

TEST(SchedulerMetrics, TableReportsDecisionsAndPerServerDepth) {
  HedgedReadOptions options;
  options.warmup_subs = 0;
  HedgedReadScheduler hedged(options);
  sim::ClusterSim cluster(tiny_cluster(1, 1));
  const ServerRow row = ServerRow::from(cluster);
  hedged.dispatch(row, {{0, OpType::kRead, 1000}}, 0.0);

  const std::string table = hedged.stats_table();
  EXPECT_NE(table.find("requests=1"), std::string::npos);
  EXPECT_NE(table.find("issued=1"), std::string::npos);
  EXPECT_NE(table.find("S0"), std::string::npos);

  hedged.reset_metrics();
  EXPECT_EQ(hedged.metrics().requests, 0u);
  EXPECT_EQ(hedged.metrics().hedges_issued, 0u);
}

// ------------------------------------------------ stats reconciliation ---

TEST(Charge, AggregateStatsEqualSumOfJobRowsThroughCancelAndWaste) {
  sim::ServerSim server(ServerKind::kHdd, slow_device(), sim::null_network());
  server.charge(OpType::kRead, 1000, 0.0, 1);
  server.charge(OpType::kWrite, 2000, 0.0, 2);
  const sim::Charge last = server.charge(OpType::kRead, 500, 0.0, 1);
  ASSERT_TRUE(server.try_cancel(last));
  // An uncancellable abandoned charge lands in the waste column instead.
  server.note_wasted(2, 2000);

  sim::JobServerStats sum;
  for (const sim::JobServerStats& row : server.job_stats()) {
    sum.sub_requests += row.sub_requests;
    sum.bytes_read += row.bytes_read;
    sum.bytes_written += row.bytes_written;
    sum.busy_time += row.busy_time;
    sum.queue_wait += row.queue_wait;
    sum.bytes_wasted += row.bytes_wasted;
  }
  const sim::ServerStats& total = server.stats();
  EXPECT_EQ(total.sub_requests, sum.sub_requests);
  EXPECT_EQ(total.bytes_read, sum.bytes_read);
  EXPECT_EQ(total.bytes_written, sum.bytes_written);
  EXPECT_DOUBLE_EQ(total.busy_time, sum.busy_time);
  EXPECT_DOUBLE_EQ(total.queue_wait, sum.queue_wait);
  EXPECT_EQ(total.bytes_wasted, sum.bytes_wasted);
  // The cancel really released the charge and the waste really landed.
  EXPECT_EQ(total.sub_requests, 2u);
  EXPECT_EQ(total.bytes_read, 1000u);
  EXPECT_EQ(total.bytes_wasted, 2000u);
  EXPECT_EQ(server.job_stats(1).bytes_read, 1000u);
  EXPECT_EQ(server.job_stats(2).bytes_wasted, 2000u);
}

TEST(Charge, FailedRequestLeavesNoResidualServerCharges) {
  // A read that spans both HServers while the second is crashed (and no
  // SServer replica exists) must surface the failure AND rewind the charge
  // it already placed on the first server — the mid-dispatch leak.
  pfs::HybridPfs pfs(tiny_cluster(2, 0));
  auto file = pfs.create_file("rewind");
  ASSERT_TRUE(file.is_ok());
  std::vector<std::uint8_t> payload(128 * 1024, 0xAB);
  ASSERT_TRUE(pfs.write(*file, 0, payload, 0.0).is_ok());
  pfs.reset_stats();
  pfs.reset_clocks();

  fault::FaultInjector injector(7);
  fault::FaultWindow w;
  w.server = 1;
  w.kind = fault::FaultKind::kCrash;
  w.start = 0.0;
  w.end = 100.0;  // far past the retry budget
  injector.add(w);
  fault::FaultContext fault_context(injector, {}, 11);
  pfs.set_fault_context(&fault_context);

  std::vector<std::uint8_t> out(payload.size());
  auto io = pfs.read(*file, 0, out.data(), out.size(), 0.0);
  EXPECT_FALSE(io.is_ok());
  EXPECT_GE(injector.metrics().offline_hits, 1u);
  EXPECT_GE(injector.metrics().budget_exhausted, 1u);
  for (std::size_t s = 0; s < pfs.num_servers(); ++s) {
    EXPECT_EQ(pfs.server_stats(s).sub_requests, 0u) << "server " << s;
    EXPECT_EQ(pfs.server_stats(s).bytes_read, 0u) << "server " << s;
    EXPECT_EQ(pfs.server_stats(s).bytes_wasted, 0u) << "server " << s;
  }
}

}  // namespace
}  // namespace mha::sched
