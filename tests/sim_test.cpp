#include <gtest/gtest.h>

#include "sim/cluster_sim.hpp"
#include "sim/device.hpp"
#include "sim/server_sim.hpp"

namespace mha::sim {
namespace {

using common::OpType;
using common::ServerKind;

DeviceProfile simple_device() {
  DeviceProfile d;
  d.name = "test";
  d.startup_read = 1.0;
  d.startup_write = 2.0;
  d.per_byte_read = 0.001;
  d.per_byte_write = 0.002;
  d.queued_startup_factor = 1.0;
  return d;
}

// --------------------------------------------------------------- device ---

TEST(Device, ServiceTimeIsLinear) {
  const DeviceProfile d = simple_device();
  EXPECT_DOUBLE_EQ(d.service_time(OpType::kRead, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.service_time(OpType::kRead, 100), 1.0 + 0.1);
  EXPECT_DOUBLE_EQ(d.service_time(OpType::kWrite, 100), 2.0 + 0.2);
}

TEST(Device, PresetsHaveSaneShapes) {
  const DeviceProfile hdd = hdd_sata();
  const DeviceProfile ssd = ssd_pcie();
  // SSD startup orders of magnitude below HDD positioning.
  EXPECT_LT(ssd.startup_read * 10, hdd.startup_read);
  // SSD bandwidth an order of magnitude above the HDD's effective rate.
  EXPECT_GT(ssd.bandwidth(OpType::kRead), 10 * hdd.bandwidth(OpType::kRead));
  // SSD reads faster than SSD writes (the asymmetry Table I models).
  EXPECT_LT(ssd.per_byte_read, ssd.per_byte_write);
  // The paper's ~3.5x HServer/SServer service gap at the 64 KiB default
  // holds for the full server path (device + network).
  ServerSim hserver(ServerKind::kHdd, hdd, gigabit_ethernet());
  ServerSim sserver(ServerKind::kSsd, ssd, gigabit_ethernet());
  const double h64 = hserver.service_time(OpType::kRead, 64 * 1024);
  const double s64 = sserver.service_time(OpType::kRead, 64 * 1024);
  EXPECT_GT(h64 / s64, 2.5);
  EXPECT_LT(h64 / s64, 8.0);
}

TEST(Device, NetworkTransferTime) {
  const NetworkProfile net = gigabit_ethernet();
  EXPECT_GT(net.transfer_time(1), net.latency);
  EXPECT_NEAR(net.transfer_time(117000000), 1.0, 0.01);  // ~1s for ~117MB
  EXPECT_DOUBLE_EQ(null_network().transfer_time(1 << 20), 0.0);
}

// --------------------------------------------------------------- server ---

TEST(ServerSim, IdleRequestStartsImmediately) {
  ServerSim s(ServerKind::kHdd, simple_device(), null_network());
  const double done = s.submit(OpType::kRead, 100, 5.0);
  EXPECT_DOUBLE_EQ(done, 5.0 + 1.0 + 0.1);
  EXPECT_DOUBLE_EQ(s.stats().queue_wait, 0.0);
}

TEST(ServerSim, FcfsQueueing) {
  ServerSim s(ServerKind::kHdd, simple_device(), null_network());
  const double first = s.submit(OpType::kRead, 100, 0.0);   // 0 .. 1.1
  const double second = s.submit(OpType::kRead, 100, 0.0);  // queued: 1.1 .. 2.2
  EXPECT_DOUBLE_EQ(first, 1.1);
  EXPECT_DOUBLE_EQ(second, 2.2);
  EXPECT_DOUBLE_EQ(s.stats().queue_wait, 1.1);
  EXPECT_EQ(s.stats().sub_requests, 2u);
}

TEST(ServerSim, QueuedStartupDiscount) {
  DeviceProfile d = simple_device();
  d.queued_startup_factor = 0.25;
  ServerSim s(ServerKind::kHdd, d, null_network());
  s.submit(OpType::kRead, 100, 0.0);                        // full startup: 1.1
  const double second = s.submit(OpType::kRead, 100, 0.0);  // 1.1 + 0.25 + 0.1
  EXPECT_DOUBLE_EQ(second, 1.1 + 0.35);
}

TEST(ServerSim, GapResetsDiscount) {
  DeviceProfile d = simple_device();
  d.queued_startup_factor = 0.25;
  ServerSim s(ServerKind::kHdd, d, null_network());
  s.submit(OpType::kRead, 100, 0.0);  // done at 1.1
  // Arrives after the queue drained: pays full startup again.
  const double done = s.submit(OpType::kRead, 100, 10.0);
  EXPECT_DOUBLE_EQ(done, 10.0 + 1.1);
}

TEST(ServerSim, ZeroByteRequestIsFree) {
  ServerSim s(ServerKind::kHdd, simple_device(), null_network());
  EXPECT_DOUBLE_EQ(s.submit(OpType::kRead, 0, 3.0), 3.0);
  EXPECT_EQ(s.stats().sub_requests, 0u);
}

TEST(ServerSim, NetworkCostAdds) {
  NetworkProfile net;
  net.per_byte = 0.01;
  net.latency = 0.5;
  ServerSim s(ServerKind::kSsd, simple_device(), net);
  // startup 1 + bytes*(0.001+0.01) + latency 0.5
  EXPECT_DOUBLE_EQ(s.submit(OpType::kRead, 100, 0.0), 1.0 + 1.1 + 0.5);
}

TEST(ServerSim, StatsAccumulateByOp) {
  ServerSim s(ServerKind::kHdd, simple_device(), null_network());
  s.submit(OpType::kRead, 100, 0.0);
  s.submit(OpType::kWrite, 200, 0.0);
  EXPECT_EQ(s.stats().bytes_read, 100u);
  EXPECT_EQ(s.stats().bytes_written, 200u);
  EXPECT_EQ(s.stats().bytes_total(), 300u);
  s.reset_stats();
  EXPECT_EQ(s.stats().bytes_total(), 0u);
  // Clock is independent of stats.
  EXPECT_GT(s.next_free(), 0.0);
  s.reset_clock();
  EXPECT_DOUBLE_EQ(s.next_free(), 0.0);
}

// -------------------------------------------------------------- cluster ---

ClusterConfig test_cluster(std::size_t h, std::size_t s) {
  ClusterConfig c;
  c.num_hservers = h;
  c.num_sservers = s;
  c.hdd = simple_device();
  c.ssd = simple_device();
  c.ssd.startup_read = 0.1;  // make SServers visibly faster
  c.ssd.per_byte_read = 0.0001;
  c.network = null_network();
  return c;
}

TEST(ClusterSim, OrdersHThenS) {
  ClusterSim cluster(test_cluster(2, 2));
  EXPECT_EQ(cluster.num_servers(), 4u);
  EXPECT_EQ(cluster.num_hservers(), 2u);
  EXPECT_EQ(cluster.num_sservers(), 2u);
  EXPECT_EQ(cluster.server(0).kind(), ServerKind::kHdd);
  EXPECT_EQ(cluster.server(1).kind(), ServerKind::kHdd);
  EXPECT_EQ(cluster.server(2).kind(), ServerKind::kSsd);
  EXPECT_EQ(cluster.server(3).kind(), ServerKind::kSsd);
  EXPECT_TRUE(cluster.is_hserver(1));
  EXPECT_FALSE(cluster.is_hserver(2));
}

TEST(ClusterSim, CompletionIsSlowestSubRequest) {
  ClusterSim cluster(test_cluster(1, 1));
  // HServer: 1 + 100*0.001 = 1.1; SServer: 0.1 + 100*0.0001 = 0.11.
  const double done = cluster.submit(
      {SubRequest{0, OpType::kRead, 100}, SubRequest{1, OpType::kRead, 100}}, 0.0);
  EXPECT_DOUBLE_EQ(done, 1.1);
}

TEST(ClusterSim, EmptySubmitCompletesAtArrival) {
  ClusterSim cluster(test_cluster(1, 1));
  EXPECT_DOUBLE_EQ(cluster.submit({}, 7.5), 7.5);
}

TEST(ClusterSim, AggregateStats) {
  ClusterSim cluster(test_cluster(1, 1));
  cluster.submit({SubRequest{0, OpType::kWrite, 300}, SubRequest{1, OpType::kRead, 200}}, 0.0);
  EXPECT_EQ(cluster.total_bytes(), 500u);
  EXPECT_GT(cluster.max_busy_time(), 0.0);
  const std::string table = cluster.stats_table();
  EXPECT_NE(table.find("HServer"), std::string::npos);
  EXPECT_NE(table.find("SServer"), std::string::npos);
  cluster.reset_stats();
  EXPECT_EQ(cluster.total_bytes(), 0u);
}

}  // namespace
}  // namespace mha::sim
