#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "pfs/layout.hpp"

namespace mha::pfs {
namespace {

using common::ByteCount;
using common::Offset;
using namespace mha::common::literals;

// ----------------------------------------------------------- unit tests ---

TEST(StripeLayout, RejectsDegenerateConfigs) {
  EXPECT_FALSE(StripeLayout::create({}).is_ok());
  EXPECT_FALSE(StripeLayout::create({0, 0, 0}).is_ok());
  EXPECT_TRUE(StripeLayout::create({0, 4096}).is_ok());
  EXPECT_FALSE(StripeLayout::stripe_pair(2, 2, 0, 0).is_ok());
  EXPECT_TRUE(StripeLayout::stripe_pair(2, 2, 0, 4096).is_ok());
}

TEST(StripeLayout, UniformMapsRoundRobin) {
  const StripeLayout layout = StripeLayout::uniform(4, 100);
  EXPECT_EQ(layout.cycle_width(), 400u);
  // First cycle.
  EXPECT_EQ(layout.map_offset(0).server, 0u);
  EXPECT_EQ(layout.map_offset(99).server, 0u);
  EXPECT_EQ(layout.map_offset(100).server, 1u);
  EXPECT_EQ(layout.map_offset(399).server, 3u);
  // Second cycle wraps with dense per-server physical offsets.
  const SubExtent at = layout.map_offset(450);
  EXPECT_EQ(at.server, 0u);
  EXPECT_EQ(at.physical_offset, 150u);
}

TEST(StripeLayout, StripePairLayout) {
  auto layout = StripeLayout::stripe_pair(2, 2, 32_KiB, 96_KiB);
  ASSERT_TRUE(layout.is_ok());
  EXPECT_EQ(layout->cycle_width(), 2 * 32_KiB + 2 * 96_KiB);
  EXPECT_EQ(layout->width(0), 32_KiB);
  EXPECT_EQ(layout->width(1), 32_KiB);
  EXPECT_EQ(layout->width(2), 96_KiB);
  EXPECT_EQ(layout->width(3), 96_KiB);
}

TEST(StripeLayout, ZeroWidthServersAreSkipped) {
  auto layout = StripeLayout::stripe_pair(2, 2, 0, 64_KiB);
  ASSERT_TRUE(layout.is_ok());
  // All bytes land on SServers (indices 2 and 3).
  const auto subs = layout->map_extent(0, 256_KiB);
  for (const SubExtent& sub : subs) EXPECT_GE(sub.server, 2u);
  // Inverse mapping on a zero-width server is an error.
  EXPECT_FALSE(layout->logical_offset(0, 0).is_ok());
}

TEST(StripeLayout, MapExtentSplitsAtStripeBoundaries) {
  const StripeLayout layout = StripeLayout::uniform(2, 100);
  const auto subs = layout.map_extent(50, 100);
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0].server, 0u);
  EXPECT_EQ(subs[0].physical_offset, 50u);
  EXPECT_EQ(subs[0].length, 50u);
  EXPECT_EQ(subs[0].logical_offset, 50u);
  EXPECT_EQ(subs[1].server, 1u);
  EXPECT_EQ(subs[1].physical_offset, 0u);
  EXPECT_EQ(subs[1].length, 50u);
  EXPECT_EQ(subs[1].logical_offset, 100u);
}

TEST(StripeLayout, MapExtentCoalescesAcrossCycles) {
  // One server: every cycle lands back-to-back physically.
  const StripeLayout layout = StripeLayout::uniform(1, 100);
  const auto subs = layout.map_extent(0, 1000);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].length, 1000u);
}

TEST(StripeLayout, EmptyExtent) {
  const StripeLayout layout = StripeLayout::uniform(3, 100);
  EXPECT_TRUE(layout.map_extent(123, 0).empty());
}

TEST(StripeLayout, ServersTouchedGrowsWithSize) {
  const StripeLayout layout = StripeLayout::uniform(4, 64_KiB);
  EXPECT_EQ(layout.servers_touched(0, 1), 1u);
  EXPECT_EQ(layout.servers_touched(0, 64_KiB), 1u);
  EXPECT_EQ(layout.servers_touched(0, 64_KiB + 1), 2u);
  EXPECT_EQ(layout.servers_touched(0, 4 * 64_KiB), 4u);
  EXPECT_EQ(layout.servers_touched(0, 8 * 64_KiB), 4u);  // capped at servers
}

TEST(StripeLayout, InverseMappingRoundTrip) {
  auto layout = StripeLayout::stripe_pair(3, 2, 12_KiB, 40_KiB).take();
  for (Offset offset : {Offset{0}, Offset{12_KiB - 1}, Offset{12_KiB}, Offset{100000},
                        Offset{3 * 12_KiB + 2 * 40_KiB}, Offset{987654}}) {
    const SubExtent at = layout.map_offset(offset);
    auto back = layout.logical_offset(at.server, at.physical_offset);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(*back, offset);
  }
}

TEST(StripeLayout, ToStringNamesWidths) {
  auto layout = StripeLayout::stripe_pair(1, 1, 32_KiB, 96_KiB).take();
  EXPECT_EQ(layout.to_string(), "[32KiB,96KiB]");
}

// ------------------------------------------------- property-style sweep ---

struct LayoutCase {
  std::vector<ByteCount> widths;
  const char* label;
};

class LayoutPropertyTest : public ::testing::TestWithParam<LayoutCase> {};

// The mapping must partition any extent: pieces cover it exactly, in order,
// without overlap, and the per-server physical images must be disjoint.
TEST_P(LayoutPropertyTest, MapExtentIsAPartition) {
  auto layout = StripeLayout::create(GetParam().widths).take();
  common::Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 200; ++trial) {
    const Offset offset = rng.next_below(1 << 22);
    const ByteCount length = 1 + rng.next_below(1 << 20);
    const auto subs = layout.map_extent(offset, length);

    // Coverage: logical pieces are contiguous, ascending, and sum to length.
    Offset cursor = offset;
    ByteCount total = 0;
    for (const SubExtent& sub : subs) {
      EXPECT_EQ(sub.logical_offset, cursor);
      EXPECT_GT(sub.length, 0u);
      EXPECT_EQ(layout.width(sub.server) == 0, false) << "byte on zero-width server";
      cursor += sub.length;
      total += sub.length;
    }
    EXPECT_EQ(total, length);
    EXPECT_EQ(cursor, offset + length);
  }
}

// Every byte's (server, physical) image must invert back to it.
TEST_P(LayoutPropertyTest, OffsetMappingIsBijective) {
  auto layout = StripeLayout::create(GetParam().widths).take();
  common::Rng rng(0xBEEF);
  for (int trial = 0; trial < 500; ++trial) {
    const Offset offset = rng.next_below(1 << 24);
    const SubExtent at = layout.map_offset(offset);
    auto back = layout.logical_offset(at.server, at.physical_offset);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(*back, offset);
  }
}

// Per-server physical placement must be dense: mapping the whole prefix
// [0, N*cycle) gives each server exactly N*width bytes.
TEST_P(LayoutPropertyTest, PhysicalPlacementIsDense) {
  auto layout = StripeLayout::create(GetParam().widths).take();
  const ByteCount cycles = 7;
  const auto subs = layout.map_extent(0, cycles * layout.cycle_width());
  std::vector<ByteCount> per_server(layout.num_servers(), 0);
  for (const SubExtent& sub : subs) per_server[sub.server] += sub.length;
  for (std::size_t i = 0; i < layout.num_servers(); ++i) {
    EXPECT_EQ(per_server[i], cycles * layout.width(i)) << "server " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, LayoutPropertyTest,
    ::testing::Values(LayoutCase{{64_KiB, 64_KiB, 64_KiB, 64_KiB}, "uniform"},
                      LayoutCase{{4_KiB}, "single"},
                      LayoutCase{{32_KiB, 32_KiB, 96_KiB, 96_KiB}, "pair"},
                      LayoutCase{{0, 0, 64_KiB, 64_KiB}, "ssd_only"},
                      LayoutCase{{4_KiB, 8_KiB, 12_KiB, 100_KiB, 0, 1}, "ragged"},
                      LayoutCase{{1, 1, 1}, "tiny"},
                      LayoutCase{{12_KiB, 12_KiB, 12_KiB, 12_KiB, 12_KiB, 12_KiB,
                                  28_KiB, 28_KiB},
                                 "paper_6h2s"}),
    [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace mha::pfs
