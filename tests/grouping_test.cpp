#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "core/grouping.hpp"

namespace mha::core {
namespace {

std::vector<FeaturePoint> cluster_at(double size, double conc, std::size_t n,
                                     common::Rng& rng, double jitter = 0.0) {
  std::vector<FeaturePoint> points;
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(FeaturePoint{size + jitter * (rng.next_double() - 0.5),
                                  conc + jitter * (rng.next_double() - 0.5)});
  }
  return points;
}

TEST(FeatureDistance, NormalisesPerDimension) {
  // Raw size gap is huge, but relative to the range it's tiny.
  const FeaturePoint a{1000.0, 1.0};
  const FeaturePoint b{2000.0, 2.0};
  const double d = feature_distance(a, b, /*size_range=*/1000000.0, /*conc_range=*/1.0);
  EXPECT_NEAR(d, std::sqrt(0.001 * 0.001 + 1.0), 1e-12);
}

TEST(FeatureDistance, DegenerateRangesDoNotDivideByZero) {
  const FeaturePoint a{5.0, 5.0};
  const FeaturePoint b{6.0, 6.0};
  const double d = feature_distance(a, b, 0.0, 0.0);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_DOUBLE_EQ(feature_distance(a, a, 0.0, 0.0), 0.0);
}

TEST(ChooseK, CountsPatternBuckets) {
  GroupingOptions options;
  // Two well-separated size classes, one concurrency level.
  std::vector<FeaturePoint> points{{16.0, 8}, {16.0, 8}, {131072.0, 8}, {131072.0, 8}};
  EXPECT_EQ(choose_k(points, options), 2u);
  // Same sizes, two concurrency levels -> 2 buckets.
  std::vector<FeaturePoint> conc{{4096.0, 8}, {4096.0, 32}};
  EXPECT_EQ(choose_k(conc, options), 2u);
  EXPECT_EQ(choose_k({}, options), 1u);
}

TEST(ChooseK, RespectsUpperBound) {
  GroupingOptions options;
  options.max_groups = 3;
  std::vector<FeaturePoint> points;
  for (int i = 0; i < 12; ++i) points.push_back(FeaturePoint{std::pow(4.0, i), 1.0});
  EXPECT_EQ(choose_k(points, options), 3u);
}

TEST(Grouping, FewerPointsThanKGetSingletonGroups) {
  std::vector<FeaturePoint> points{{16, 1}, {1024, 4}};
  const auto result = group_requests(points, 5);
  EXPECT_EQ(result.num_groups, 2u);
  EXPECT_NE(result.assignment[0], result.assignment[1]);
}

TEST(Grouping, EmptyInput) {
  const auto result = group_requests({}, 3);
  EXPECT_EQ(result.num_groups, 0u);
  EXPECT_TRUE(result.assignment.empty());
}

TEST(Grouping, SeparatesWellSeparatedClusters) {
  common::Rng rng(1);
  auto points = cluster_at(16, 32, 40, rng, 2.0);
  const auto tail = cluster_at(262144, 8, 40, rng, 1000.0);
  points.insert(points.end(), tail.begin(), tail.end());

  const auto result = group_requests(points, 2);
  ASSERT_EQ(result.num_groups, 2u);
  // All members of each natural cluster share one label.
  const int label_a = result.assignment[0];
  const int label_b = result.assignment[40];
  EXPECT_NE(label_a, label_b);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(result.assignment[i], label_a);
  for (std::size_t i = 40; i < 80; ++i) EXPECT_EQ(result.assignment[i], label_b);
}

TEST(Grouping, AtMostThreeIterations) {
  common::Rng rng(2);
  auto points = cluster_at(100, 1, 200, rng, 50.0);
  GroupingOptions options;
  options.max_iterations = 3;
  const auto result = group_requests(points, 4, options);
  EXPECT_LE(result.iterations_run, 3);
  EXPECT_GE(result.iterations_run, 1);
}

TEST(Grouping, LabelsAreDense) {
  common::Rng rng(3);
  auto points = cluster_at(64, 8, 30, rng, 1.0);
  const auto result = group_requests(points, 8);  // far more centers than clusters
  std::set<int> labels(result.assignment.begin(), result.assignment.end());
  EXPECT_EQ(labels.size(), result.num_groups);
  // Dense: labels are exactly 0..num_groups-1.
  int expect = 0;
  for (int l : labels) EXPECT_EQ(l, expect++);
  EXPECT_EQ(result.centers.size(), result.num_groups);
}

TEST(Grouping, DeterministicForSeed) {
  common::Rng rng(4);
  auto points = cluster_at(1000, 4, 50, rng, 400.0);
  GroupingOptions options;
  options.seed = 99;
  const auto a = group_requests(points, 3, options);
  const auto b = group_requests(points, 3, options);
  EXPECT_EQ(a.assignment, b.assignment);
  options.seed = 100;
  // Different seed may differ, but must still produce a valid grouping.
  const auto c = group_requests(points, 3, options);
  EXPECT_EQ(c.assignment.size(), points.size());
}

// Property: every point is assigned to its nearest final center.
class GroupingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupingProperty, AssignmentIsNearestCenter) {
  common::Rng rng(GetParam());
  std::vector<FeaturePoint> points;
  for (int i = 0; i < 120; ++i) {
    points.push_back(FeaturePoint{static_cast<double>(rng.next_below(1 << 20)),
                                  static_cast<double>(1 + rng.next_below(64))});
  }
  GroupingOptions options;
  options.seed = GetParam() * 13 + 7;
  // Many iterations so the final assignment step ran against the final
  // centers (with the paper's 3-iteration cap the last centroid update can
  // legitimately leave a point mid-flight).
  options.max_iterations = 50;
  const auto result = group_requests(points, 5, options);

  double size_min = 1e300, size_max = -1e300, conc_min = 1e300, conc_max = -1e300;
  for (const auto& p : points) {
    size_min = std::min(size_min, p.size);
    size_max = std::max(size_max, p.size);
    conc_min = std::min(conc_min, p.concurrency);
    conc_max = std::max(conc_max, p.concurrency);
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double assigned = feature_distance(
        points[i], result.centers[static_cast<std::size_t>(result.assignment[i])],
        size_max - size_min, conc_max - conc_min);
    for (const auto& center : result.centers) {
      const double other =
          feature_distance(points[i], center, size_max - size_min, conc_max - conc_min);
      EXPECT_LE(assigned, other + 1e-9) << "point " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupingProperty, ::testing::Values(1u, 7u, 21u, 63u));

TEST(GroupingAuto, UniformTraceCollapsesToOneGroup) {
  std::vector<FeaturePoint> points(50, FeaturePoint{65536.0, 16.0});
  const auto result = group_requests_auto(points);
  EXPECT_EQ(result.num_groups, 1u);
}

TEST(GroupingAuto, LanlStylePatternYieldsThreeGroups) {
  // The Fig. 3 pattern: 16 B, 128 KiB - 16 B, 128 KiB ... but the two large
  // sizes share a power-of-two bucket, so the pattern-bucket heuristic sees
  // two classes; k-means then separates what matters for layout.
  std::vector<FeaturePoint> points;
  for (int loop = 0; loop < 30; ++loop) {
    points.push_back(FeaturePoint{16, 8});
    points.push_back(FeaturePoint{131056, 8});
    points.push_back(FeaturePoint{131072, 8});
  }
  const auto result = group_requests_auto(points);
  EXPECT_GE(result.num_groups, 2u);
  // The tiny and the large requests must never share a group.
  EXPECT_NE(result.assignment[0], result.assignment[1]);
}

}  // namespace
}  // namespace mha::core
