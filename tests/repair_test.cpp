// Permanent server loss: membership epochs, the DRT replica column,
// heterogeneity-aware replication at placement, transparent failover
// reads/mirrored writes, and the throttled crash-safe rebuilder.
//
// The world is the smallest cluster that exercises every path: 2 HServers +
// 2 SServers, one original file reordered into a hot region (H-resident,
// replicated onto an SServer) and a cold region (S-resident, unreplicated).
// kill_server() wipes the dead server's stores, so every byte-identical
// assertion below proves the surviving copy really served the data.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "core/placer.hpp"
#include "core/redirector.hpp"
#include "core/reorganizer.hpp"
#include "io/mpi_file.hpp"
#include "layouts/scheme.hpp"
#include "repair/membership.hpp"
#include "repair/rebuilder.hpp"
#include "workloads/replayer.hpp"

namespace mha {
namespace {

using common::OpType;
using namespace common::literals;

std::string temp_path(const std::string& tag) {
  static std::atomic<int> counter{0};
  return testing::TempDir() + "repair_test_" + tag + "_" + std::to_string(::getpid()) +
         "_" + std::to_string(counter.fetch_add(1)) + ".db";
}

sim::DeviceProfile slow_device() {
  sim::DeviceProfile d;
  d.name = "slow";
  d.startup_read = 1.0;
  d.startup_write = 2.0;
  d.per_byte_read = 0.001;
  d.per_byte_write = 0.002;
  d.queued_startup_factor = 1.0;
  return d;
}

sim::DeviceProfile fast_device() {
  sim::DeviceProfile d;
  d.name = "fast";
  d.startup_read = 0.1;
  d.startup_write = 0.2;
  d.per_byte_read = 0.0001;
  d.per_byte_write = 0.0002;
  d.queued_startup_factor = 1.0;
  return d;
}

sim::ClusterConfig tiny_cluster() {
  sim::ClusterConfig config;
  config.num_hservers = 2;
  config.num_sservers = 2;
  config.hdd = slow_device();
  config.ssd = fast_device();
  config.network = sim::null_network();
  return config;
}

std::vector<std::uint8_t> pattern(common::Offset offset, common::ByteCount size) {
  std::vector<std::uint8_t> out(size);
  layouts::populate_fill(offset, out.data(), size);
  return out;
}

// ------------------------------------------------------- membership ------

TEST(Membership, EpochsAndTransitions) {
  repair::Membership m(4);
  EXPECT_EQ(m.epoch(), 0u);
  EXPECT_EQ(m.dead_count(), 0u);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(m.state(s), repair::ServerState::kUp);

  m.set_state(1, repair::ServerState::kSuspect, 1.0);
  EXPECT_EQ(m.epoch(), 1u);
  m.set_state(1, repair::ServerState::kSuspect, 2.0);  // no-op: no epoch bump
  EXPECT_EQ(m.epoch(), 1u);
  EXPECT_FALSE(m.dead(1));  // suspicion is not death

  m.kill(2, 3.0);
  EXPECT_EQ(m.epoch(), 2u);
  EXPECT_TRUE(m.dead(2));
  EXPECT_EQ(m.dead_count(), 1u);

  // A dead server may flip to kRebuilding and back, but never revives.
  m.set_state(2, repair::ServerState::kRebuilding, 4.0);
  EXPECT_TRUE(m.dead(2));
  EXPECT_EQ(m.dead_count(), 1u);
  m.set_state(2, repair::ServerState::kUp, 5.0);
  EXPECT_EQ(m.state(2), repair::ServerState::kRebuilding);
  m.set_state(2, repair::ServerState::kDead, 6.0);
  EXPECT_EQ(m.state(2), repair::ServerState::kDead);

  ASSERT_FALSE(m.events().empty());
  const repair::MembershipEvent& first = m.events().front();
  EXPECT_EQ(first.server, 1u);
  EXPECT_EQ(first.to, repair::ServerState::kSuspect);
  EXPECT_EQ(first.epoch, 1u);
  EXPECT_FALSE(m.table().empty());
}

TEST(Membership, KillRegistersUnboundedCrashWindow) {
  fault::FaultInjector injector;
  repair::Membership m(4);
  m.kill(3, 2.0, &injector);
  // Schedulers and look-ahead see the loss as a crash window that never
  // closes.
  EXPECT_TRUE(injector.offline(3, 2.5));
  EXPECT_TRUE(injector.offline(3, 1.0e12));
  EXPECT_FALSE(injector.offline(3, 1.0));
}

TEST(Membership, ObserveGuardPromotesBreakerVerdicts) {
  guard::OverloadGuard guard(4);
  // Saturate server 1's outcome window with failures: rate 1.0 >= 0.5 opens.
  for (int i = 0; i < 16; ++i) guard.record_server(1, 0.01 * i, false);
  ASSERT_EQ(guard.breaker_state(1), guard::BreakerState::kOpen);

  repair::Membership m(4);
  m.kill(2, 0.5);
  m.observe_guard(guard, 1.0);
  EXPECT_EQ(m.state(1), repair::ServerState::kSuspect);
  EXPECT_EQ(m.state(0), repair::ServerState::kUp);
  EXPECT_TRUE(m.dead(2));  // death is a fact; health opinions never touch it

  // A closed breaker clears suspicion back to kUp.
  guard::OverloadGuard healthy(4);
  m.observe_guard(healthy, 2.0);
  EXPECT_EQ(m.state(1), repair::ServerState::kUp);
  EXPECT_TRUE(m.dead(2));
}

// -------------------------------------------------- DRT replica column ---

TEST(DrtReplica, ColumnRoundTripAndRetarget) {
  core::Drt drt("orig");
  ASSERT_TRUE(drt.insert(core::DrtEntry{0, 64_KiB, "r0", 0}).is_ok());
  ASSERT_TRUE(drt.insert(core::DrtEntry{64_KiB, 32_KiB, "r1", 0}).is_ok());
  ASSERT_TRUE(drt.set_replica("r0", "r0.rep").is_ok());

  // The column is stamped into every entry pointing at the region ...
  std::vector<core::DrtEntry> entries = drt.entries();
  EXPECT_EQ(entries[0].replica_file, "r0.rep");
  EXPECT_EQ(entries[1].replica_file, "");
  // ... and rides along in lookup segments as an interned id.
  std::vector<core::DrtSegment> segs = drt.lookup(0, 96_KiB);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_NE(segs[0].replica, core::kNoRegion);
  EXPECT_EQ(drt.region_name(segs[0].replica), "r0.rep");
  EXPECT_EQ(segs[1].replica, core::kNoRegion);

  // Persistence: the replica column survives a save/load round trip.
  const std::string path = temp_path("drt");
  {
    kv::KvStore store;
    ASSERT_TRUE(store.open(path).is_ok());
    ASSERT_TRUE(drt.save(store).is_ok());
    auto loaded = core::Drt::load(store, "orig");
    ASSERT_TRUE(loaded.is_ok());
    EXPECT_EQ(loaded->entries(), drt.entries());
    std::vector<core::DrtSegment> lsegs = loaded->lookup(0, 16_KiB);
    ASSERT_EQ(lsegs.size(), 1u);
    EXPECT_EQ(loaded->region_name(lsegs[0].replica), "r0.rep");
  }
  std::remove(path.c_str());

  // Retarget renames the interned name in place: entries follow, no rewrite.
  ASSERT_TRUE(drt.retarget_region("r0", "r0.rb1").is_ok());
  EXPECT_EQ(drt.entries()[0].r_file, "r0.rb1");
  EXPECT_EQ(drt.entries()[0].replica_file, "r0.rep");
  EXPECT_FALSE(drt.retarget_region("nope", "x").is_ok());
  EXPECT_FALSE(drt.retarget_region("r1", "r0.rep").is_ok());  // already interned
}

// ------------------------------------------------------ repair world -----

/// 2H+2S cluster, 768 KiB original reordered into a hot H-resident region
/// r0 (replicated onto an SServer) and a cold S-resident region r1
/// (unreplicated).  Server indices: 0,1 = HServers; 2,3 = SServers.
class RepairTest : public ::testing::Test {
 protected:
  static constexpr common::ByteCount kR0 = 512_KiB;
  static constexpr common::ByteCount kR1 = 256_KiB;
  static constexpr common::ByteCount kExtent = kR0 + kR1;

  void SetUp() override { Build(); }
  void TearDown() override { std::remove(journal_path_.c_str()); }

  void Build() {
    journal_path_ = temp_path("rebuild");
    redirector_.reset();
    membership_.reset();
    pfs_ = std::make_unique<pfs::HybridPfs>(tiny_cluster());
    original_ = *pfs_->create_file("orig");
    ASSERT_TRUE(layouts::populate_file(*pfs_, original_, kExtent).is_ok());

    plan_ = core::ReorganizePlan{};
    plan_.drt = core::Drt("orig");
    core::Region r0;
    r0.name = "orig.mha.r0";
    r0.length = kR0;
    core::Region r1;
    r1.name = "orig.mha.r1";
    r1.length = kR1;
    plan_.regions = {r0, r1};
    ASSERT_TRUE(plan_.drt.insert(core::DrtEntry{0, kR0, r0.name, 0}).is_ok());
    ASSERT_TRUE(plan_.drt.insert(core::DrtEntry{kR0, kR1, r1.name, 0}).is_ok());

    core::ApplyOptions options;
    options.replicate_hot = true;
    // r0 hot on the HServers only; r1 cold on the SServers only.
    auto report = core::Placer::apply(
        *pfs_, plan_, {core::StripePair{64_KiB, 0}, core::StripePair{0, 96_KiB}},
        options);
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    ASSERT_EQ(report->replicas_created, 1u);
    ASSERT_EQ(report->replica_pairs.size(), 1u);
    EXPECT_EQ(report->replica_pairs[0].first, "orig.mha.r0");
    EXPECT_EQ(report->replica_pairs[0].second, "orig.mha.r0.rep");
    for (const auto& [region, replica] : report->replica_pairs) {
      ASSERT_TRUE(plan_.drt.set_replica(region, replica).is_ok());
    }

    auto redirector = core::Redirector::create(*pfs_, plan_.drt);
    ASSERT_TRUE(redirector.is_ok());
    redirector_.emplace(std::move(redirector).take());

    membership_ = std::make_unique<repair::Membership>(pfs_->num_servers());
    pfs_->set_membership(membership_.get());

    region0_ = *pfs_->open("orig.mha.r0");
    region1_ = *pfs_->open("orig.mha.r1");
    replica0_ = *pfs_->open("orig.mha.r0.rep");
    pfs_->reset_stats();
    pfs_->reset_clocks();
  }

  /// Byte-identical full-file read through the redirector (the client view).
  void VerifyLogical(common::ByteCount write_end = 0) {
    io::MpiSim mpi(1);
    auto file = io::MpiFile::open(*pfs_, mpi, "orig");
    ASSERT_TRUE(file.is_ok());
    file->set_interceptor(&*redirector_);
    std::vector<std::uint8_t> buffer(kExtent);
    ASSERT_TRUE(file->read_at(0, 0, buffer.data(), buffer.size()).is_ok());
    std::vector<std::uint8_t> want = pattern(0, kExtent);
    for (common::ByteCount i = 0; i < write_end; ++i) {
      want[i] = workloads::replay_write_byte(i);
    }
    EXPECT_EQ(buffer, want);
  }

  std::string journal_path_;
  std::unique_ptr<pfs::HybridPfs> pfs_;
  std::unique_ptr<repair::Membership> membership_;
  std::optional<core::Redirector> redirector_;
  core::ReorganizePlan plan_;
  common::FileId original_ = common::kInvalidFileId;
  common::FileId region0_ = common::kInvalidFileId;
  common::FileId region1_ = common::kInvalidFileId;
  common::FileId replica0_ = common::kInvalidFileId;
};

TEST_F(RepairTest, PlacerReplicatesHotOntoSServer) {
  // The replica is a single-SServer file (cost-model argmin; equal load ties
  // to the lowest index = server 2) covering the region's full byte space.
  const pfs::StripeLayout& layout = pfs_->mds().info(replica0_).layout;
  EXPECT_EQ(layout.width(0), 0u);
  EXPECT_EQ(layout.width(1), 0u);
  EXPECT_GT(layout.width(2), 0u);
  EXPECT_EQ(layout.width(3), 0u);
  EXPECT_EQ(pfs_->file_size(replica0_), kR0);
  EXPECT_EQ(*pfs_->read_bytes(replica0_, 0, kR0, 0.0), pattern(0, kR0));
  // The redirector registered the (primary, replica) pair with the PFS.
  EXPECT_EQ(pfs_->replica_of(region0_), replica0_);
  EXPECT_EQ(pfs_->replica_of(region1_), common::kInvalidFileId);
}

TEST_F(RepairTest, KillWipesStores) {
  const common::ByteCount before = pfs_->stored_bytes(region0_);
  EXPECT_EQ(before, kR0);
  repair::kill_server(*membership_, *pfs_, 0, 1.0);
  // r0 stripes [64 KiB per 128 KiB cycle] on server 0 are really gone.
  EXPECT_EQ(pfs_->stored_bytes(region0_), kR0 / 2);
  EXPECT_TRUE(membership_->dead(0));
}

TEST_F(RepairTest, FailoverReadServesReplicatedRegion) {
  repair::kill_server(*membership_, *pfs_, 0, 1.0);
  // Direct region read: dead-server sub-reads retarget to the replica.
  std::vector<std::uint8_t> buffer(kR0);
  auto read = pfs_->read(region0_, 0, buffer.data(), kR0, 1.0);
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  EXPECT_EQ(buffer, pattern(0, kR0));
  const pfs::FailoverStats& stats = pfs_->failover_stats();
  EXPECT_GT(stats.failover_reads, 0u);
  EXPECT_EQ(stats.failover_bytes, kR0 / 2);  // server 0 held half the region
  EXPECT_EQ(stats.unavailable, 0u);
  // And the client view through the redirector stays byte-identical.
  VerifyLogical();
}

TEST_F(RepairTest, WritesMirrorToReplica) {
  std::vector<std::uint8_t> data(8_KiB);
  workloads::replay_write_fill(0, data.data(), data.size());
  ASSERT_TRUE(pfs_->write(region0_, 0, data.data(), data.size(), 0.0).is_ok());
  EXPECT_GT(pfs_->failover_stats().mirrored_writes, 0u);
  EXPECT_EQ(pfs_->failover_stats().mirror_bytes, 8_KiB);
  // The replica absorbed the write, so it can serve it after the loss.
  EXPECT_EQ(*pfs_->read_bytes(replica0_, 0, 8_KiB, 0.0), data);
  repair::kill_server(*membership_, *pfs_, 0, 1.0);
  std::vector<std::uint8_t> buffer(64_KiB);
  ASSERT_TRUE(pfs_->read(region0_, 0, buffer.data(), buffer.size(), 1.0).is_ok());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), buffer.begin()));
}

TEST_F(RepairTest, UnreplicatedRegionSurfacesUnavailable) {
  // r1 stripes: server 2 holds [0,96K)+[192K,256K), server 3 [96K,192K).
  repair::kill_server(*membership_, *pfs_, 3, 1.0);
  std::vector<std::uint8_t> buffer(64_KiB);
  auto dead = pfs_->read(region1_, 96_KiB, buffer.data(), 64_KiB, 1.0);
  ASSERT_FALSE(dead.is_ok());
  EXPECT_EQ(dead.status().code(), common::ErrorCode::kUnavailable);
  EXPECT_GT(pfs_->failover_stats().unavailable, 0u);
  // Ranges living entirely on survivors still read fine.
  auto live = pfs_->read(region1_, 0, buffer.data(), 64_KiB, 1.0);
  ASSERT_TRUE(live.is_ok());
  EXPECT_TRUE(std::equal(buffer.begin(), buffer.end(), pattern(kR0, 64_KiB).begin()));
}

TEST_F(RepairTest, BatchMatchesSerialUnderKill) {
  repair::kill_server(*membership_, *pfs_, 3, 1.0);

  // Serial reference: same requests, one at a time.
  struct Req {
    common::FileId file;
    common::Offset offset;
    common::ByteCount size;
  };
  const std::vector<Req> reqs = {{region0_, 0, 64_KiB},
                                 {region1_, 0, 32_KiB},
                                 {region1_, 96_KiB, 32_KiB},   // dead, unreplicated
                                 {region0_, 256_KiB, 64_KiB}};
  std::vector<common::Status> serial_status;
  std::vector<std::vector<std::uint8_t>> serial_bytes;
  for (const Req& r : reqs) {
    std::vector<std::uint8_t> buf(r.size, 0xEE);
    auto res = pfs_->read(r.file, r.offset, buf.data(), r.size, 1.0);
    serial_status.push_back(res.is_ok() ? common::Status::ok() : res.status());
    serial_bytes.push_back(std::move(buf));
  }
  ASSERT_FALSE(serial_status[2].is_ok());
  EXPECT_EQ(serial_status[2].code(), common::ErrorCode::kUnavailable);

  // Batched path: statuses and delivered bytes must match exactly; the
  // rejected request's buffer is untouched (translate-time rejection).
  std::vector<pfs::BatchRequest> batch;
  std::vector<std::vector<std::uint8_t>> batch_bytes;
  batch_bytes.reserve(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    batch_bytes.emplace_back(reqs[i].size, 0xEE);
    pfs::BatchRequest b;
    b.file = reqs[i].file;
    b.offset = reqs[i].offset;
    b.size = reqs[i].size;
    b.read_out = batch_bytes.back().data();
    b.arrival = 1.0;
    b.group = static_cast<std::uint32_t>(i);
    batch.push_back(b);
  }
  pfs::BatchResultVec results;
  pfs_->read_batch(batch, results);
  ASSERT_EQ(results.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(results[i].status.code(), serial_status[i].code());
    EXPECT_EQ(batch_bytes[i], serial_bytes[i]);
  }
  EXPECT_EQ(batch_bytes[2], std::vector<std::uint8_t>(32_KiB, 0xEE));
}

TEST_F(RepairTest, RebuildEndToEnd) {
  repair::kill_server(*membership_, *pfs_, 0, 1.0);
  const std::string new_name =
      "orig.mha.r0.rb" + std::to_string(membership_->epoch());

  repair::Rebuilder rebuilder(*pfs_, *redirector_, *membership_, journal_path_);
  ASSERT_TRUE(rebuilder.run_to_completion(1.0).is_ok());
  EXPECT_TRUE(rebuilder.done());

  const repair::RebuildReport& report = rebuilder.report();
  EXPECT_EQ(report.tasks, 1u);
  EXPECT_EQ(report.primaries_rebuilt, 1u);
  EXPECT_EQ(report.replicas_rebuilt, 0u);
  EXPECT_EQ(report.lost_regions, 0u);
  EXPECT_EQ(report.bytes_copied, kR0);
  EXPECT_FALSE(report.table().empty());

  // The region was re-homed onto the survivors and retargeted in the DRT.
  auto rebuilt = pfs_->open(new_name);
  ASSERT_TRUE(rebuilt.is_ok());
  const pfs::StripeLayout& layout = pfs_->mds().info(*rebuilt).layout;
  EXPECT_EQ(layout.width(0), 0u);
  EXPECT_GT(layout.width(1), 0u);
  std::vector<core::DrtEntry> entries = redirector_->drt().entries();
  EXPECT_EQ(entries[0].r_file, new_name);
  EXPECT_EQ(entries[0].replica_file, "orig.mha.r0.rep");
  // The refresh re-registered the replica pair under the new primary.
  EXPECT_EQ(pfs_->replica_of(*rebuilt), replica0_);

  // Post-rebuild reads touch no dead server: byte-identical with zero
  // failover traffic.
  pfs_->reset_failover_stats();
  VerifyLogical();
  EXPECT_EQ(pfs_->failover_stats().failover_reads, 0u);
  EXPECT_EQ(pfs_->failover_stats().unavailable, 0u);

  // Rebuild visibility: the dead server showed kRebuilding while tasks were
  // open and settled back to kDead at commit.
  EXPECT_EQ(membership_->state(0), repair::ServerState::kDead);
  bool saw_rebuilding = false;
  for (const repair::MembershipEvent& e : membership_->events()) {
    saw_rebuilding |= e.to == repair::ServerState::kRebuilding;
  }
  EXPECT_TRUE(saw_rebuilding);
}

TEST_F(RepairTest, RebuildReplacesLostReplicaAndCountsLostRegions) {
  // Server 2 holds r0's replica and part of unreplicated r1.
  repair::kill_server(*membership_, *pfs_, 2, 1.0);
  const std::string new_rep =
      "orig.mha.r0.rep" + std::to_string(membership_->epoch());

  repair::Rebuilder rebuilder(*pfs_, *redirector_, *membership_, journal_path_);
  ASSERT_TRUE(rebuilder.run_to_completion(1.0).is_ok());
  const repair::RebuildReport& report = rebuilder.report();
  EXPECT_EQ(report.tasks, 1u);
  EXPECT_EQ(report.replicas_rebuilt, 1u);
  EXPECT_EQ(report.primaries_rebuilt, 0u);
  EXPECT_EQ(report.lost_regions, 1u);  // r1: data on server 2, no copy

  // The fresh replica landed on the surviving SServer, re-filled from the
  // intact primary, and is registered for failover.
  auto replica = pfs_->open(new_rep);
  ASSERT_TRUE(replica.is_ok());
  const pfs::StripeLayout& layout = pfs_->mds().info(*replica).layout;
  EXPECT_GT(layout.width(3), 0u);
  EXPECT_EQ(*pfs_->read_bytes(*replica, 0, kR0, 2.0), pattern(0, kR0));
  EXPECT_EQ(pfs_->replica_of(region0_), *replica);

  // Losing an HServer now fails over to the new replica.
  repair::kill_server(*membership_, *pfs_, 0, 3.0);
  std::vector<std::uint8_t> buffer(kR0);
  ASSERT_TRUE(pfs_->read(region0_, 0, buffer.data(), kR0, 3.0).is_ok());
  EXPECT_EQ(buffer, pattern(0, kR0));
}

TEST_F(RepairTest, RebuildIsThrottledAndChargesItsJob) {
  repair::kill_server(*membership_, *pfs_, 0, 1.0);
  repair::RebuildOptions options;
  options.chunk = 64_KiB;
  options.rate = 64.0 * 1024.0;  // one chunk per virtual second
  options.job = 7;
  repair::Rebuilder rebuilder(*pfs_, *redirector_, *membership_, journal_path_,
                              options);
  ASSERT_TRUE(rebuilder.plan(1.0).is_ok());
  // One step at the plan instant admits exactly the chunks whose pacing
  // instant has arrived — the rebuild trickles instead of flooding.
  ASSERT_TRUE(rebuilder.step(1.0).is_ok());
  EXPECT_EQ(rebuilder.report().bytes_copied, 64_KiB);
  EXPECT_FALSE(rebuilder.done());
  EXPECT_GT(rebuilder.next_issue(), 1.0);
  // Far enough in the future every chunk is admitted and the switch runs.
  ASSERT_TRUE(rebuilder.step(1.0e9).is_ok());
  EXPECT_TRUE(rebuilder.done());
  EXPECT_EQ(rebuilder.report().bytes_copied, kR0);
  // The copy traffic was charged under the rebuild's QoS job.
  common::ByteCount job_bytes = 0;
  for (std::size_t s = 0; s < pfs_->num_servers(); ++s) {
    job_bytes += pfs_->data_server(s).sim().job_stats(7).bytes_total();
  }
  EXPECT_GT(job_bytes, 0u);
  VerifyLogical();
}

TEST_F(RepairTest, RebuildRecopiesRangesDirtiedByRacingWrites) {
  repair::kill_server(*membership_, *pfs_, 0, 1.0);
  repair::RebuildOptions options;
  options.chunk = 64_KiB;
  options.rate = 64.0 * 1024.0;
  repair::Rebuilder rebuilder(*pfs_, *redirector_, *membership_, journal_path_,
                              options);
  ASSERT_TRUE(rebuilder.plan(1.0).is_ok());
  ASSERT_TRUE(rebuilder.step(1.0).is_ok());  // copies only the first chunk
  ASSERT_FALSE(rebuilder.done());

  // A client write races the copy: it lands in the old primary (live
  // stripes) + replica and marks the DRT entry dirty.
  io::MpiSim mpi(1);
  auto file = io::MpiFile::open(*pfs_, mpi, "orig");
  ASSERT_TRUE(file.is_ok());
  file->set_interceptor(&*redirector_);
  std::vector<std::uint8_t> data(8_KiB);
  workloads::replay_write_fill(0, data.data(), data.size());
  ASSERT_TRUE(file->write_at(0, 0, data.data(), data.size()).is_ok());

  ASSERT_TRUE(rebuilder.step(1.0e9).is_ok());
  ASSERT_TRUE(rebuilder.done());
  // The switch re-copied the dirty entry at the quiescent instant, so the
  // rebuilt region carries the racing write, not the stale copy.
  EXPECT_EQ(rebuilder.report().bytes_recopied, kR0);
  VerifyLogical(/*write_end=*/8_KiB);
}

class RepairCrashTest : public RepairTest,
                        public ::testing::WithParamInterface<const char*> {};

TEST_P(RepairCrashTest, CrashedRebuildResumesToCompletion) {
  const std::string point = GetParam();
  repair::kill_server(*membership_, *pfs_, 0, 1.0);

  repair::RebuildOptions crashing;
  crashing.crash_at = [&](std::string_view p) { return p == point; };
  {
    repair::Rebuilder rebuilder(*pfs_, *redirector_, *membership_, journal_path_,
                                crashing);
    auto status = rebuilder.run_to_completion(1.0);
    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), common::ErrorCode::kIoError);
  }

  // A fresh rebuilder over the same journal rolls the rebuild forward.
  repair::Rebuilder resumed(*pfs_, *redirector_, *membership_, journal_path_);
  ASSERT_TRUE(resumed.resume(2.0).is_ok());
  ASSERT_TRUE(resumed.run_to_completion(2.0).is_ok());
  EXPECT_TRUE(resumed.done());

  // Whatever the crash point, the end state is the same: retargeted DRT,
  // byte-identical client view with no dead-server traffic, clean journal.
  EXPECT_NE(redirector_->drt().entries()[0].r_file, "orig.mha.r0");
  pfs_->reset_failover_stats();
  VerifyLogical();
  EXPECT_EQ(pfs_->failover_stats().failover_reads, 0u);
  EXPECT_EQ(pfs_->failover_stats().unavailable, 0u);
  fault::MigrationJournal journal;
  ASSERT_TRUE(journal.open(journal_path_).is_ok());
  EXPECT_FALSE(journal.active());
  EXPECT_EQ(journal.phase(), fault::JournalPhase::kNone);
}

INSTANTIATE_TEST_SUITE_P(AllPoints, RepairCrashTest,
                         ::testing::Values("planned", "created", "copying",
                                           "copied-task-0", "copied",
                                           "switched-task-0", "switched"));

TEST_F(RepairTest, PlanRefusesUnresolvedJournalAndNoDeadServersIsNoop) {
  // No dead servers: plan() finds nothing and finishes immediately.
  {
    repair::Rebuilder rebuilder(*pfs_, *redirector_, *membership_, journal_path_);
    ASSERT_TRUE(rebuilder.run_to_completion(0.0).is_ok());
    EXPECT_TRUE(rebuilder.done());
    EXPECT_EQ(rebuilder.report().tasks, 0u);
  }
  // An unresolved journal must be resumed, not re-planned.
  repair::kill_server(*membership_, *pfs_, 0, 1.0);
  repair::RebuildOptions crashing;
  crashing.crash_at = [](std::string_view p) { return p == "copying"; };
  {
    repair::Rebuilder rebuilder(*pfs_, *redirector_, *membership_, journal_path_,
                                crashing);
    ASSERT_FALSE(rebuilder.run_to_completion(1.0).is_ok());
  }
  repair::Rebuilder fresh(*pfs_, *redirector_, *membership_, journal_path_);
  auto status = fresh.plan(2.0);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), common::ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace mha
