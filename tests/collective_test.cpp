// Two-phase collective I/O: correctness, synchronisation, and the
// aggregation benefit over independent I/O.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "io/collective.hpp"

namespace mha::io {
namespace {

using common::OpType;
using namespace mha::common::literals;

sim::ClusterConfig small_cluster() {
  sim::ClusterConfig c;
  c.num_hservers = 2;
  c.num_sservers = 2;
  return c;
}

std::vector<std::uint8_t> pattern(std::size_t n, int seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed * 31 + i);
  return v;
}

TEST(Collective, ValidatesInputs) {
  pfs::HybridPfs pfs(small_cluster());
  auto file = *pfs.create_file("c");
  MpiSim mpi(4);
  EXPECT_FALSE(collective_write(pfs, mpi, file, {}).is_ok());
  EXPECT_FALSE(collective_write(pfs, mpi, 999, {CollectiveRequest{0, 0, 16}}).is_ok());
  EXPECT_FALSE(collective_write(pfs, mpi, file, {CollectiveRequest{9, 0, 16}}).is_ok());
  std::vector<std::vector<std::uint8_t>> short_payloads;
  EXPECT_FALSE(
      collective_write(pfs, mpi, file, {CollectiveRequest{0, 0, 16}}, &short_payloads)
          .is_ok());
}

TEST(Collective, WriteThenIndependentReadRoundTrips) {
  pfs::HybridPfs pfs(small_cluster());
  auto file = *pfs.create_file("c");
  MpiSim mpi(4);
  // Interleaved per-rank pieces (the pattern collective buffering exists for).
  std::vector<CollectiveRequest> requests;
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < 16; ++i) {
    requests.push_back(CollectiveRequest{i % 4, static_cast<common::Offset>(i) * 8_KiB, 8_KiB});
    payloads.push_back(pattern(8_KiB, i));
  }
  auto result = collective_write(pfs, mpi, file, requests, &payloads);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_GT(result->completion, result->start);
  EXPECT_GT(result->aggregators_used, 0u);

  for (int i = 0; i < 16; ++i) {
    auto got = pfs.read_bytes(file, static_cast<common::Offset>(i) * 8_KiB, 8_KiB, 100.0);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(*got, payloads[static_cast<std::size_t>(i)]) << i;
  }
}

TEST(Collective, ReadGathersWrittenBytes) {
  pfs::HybridPfs pfs(small_cluster());
  auto file = *pfs.create_file("c");
  const auto data = pattern(64_KiB, 7);
  ASSERT_TRUE(pfs.write(file, 0, data, 0.0).is_ok());
  pfs.reset_clocks();

  MpiSim mpi(4);
  std::vector<CollectiveRequest> requests;
  for (int r = 0; r < 4; ++r) {
    requests.push_back(CollectiveRequest{r, static_cast<common::Offset>(r) * 16_KiB, 16_KiB});
  }
  std::vector<std::vector<std::uint8_t>> out;
  auto result = collective_read(pfs, mpi, file, requests, &out);
  ASSERT_TRUE(result.is_ok());
  ASSERT_EQ(out.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    const std::vector<std::uint8_t> expected(
        data.begin() + r * static_cast<long>(16_KiB),
        data.begin() + (r + 1) * static_cast<long>(16_KiB));
    EXPECT_EQ(out[static_cast<std::size_t>(r)], expected) << r;
  }
}

TEST(Collective, ExitSynchronisesAllRanks) {
  pfs::HybridPfs pfs(small_cluster());
  auto file = *pfs.create_file("c");
  MpiSim mpi(4);
  mpi.advance(2, 0.5);  // one rank arrives late
  auto result = collective_write(pfs, mpi, file, {CollectiveRequest{0, 0, 64_KiB}});
  ASSERT_TRUE(result.is_ok());
  EXPECT_GE(result->start, 0.5);  // barrier waited for the late rank
  for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(mpi.now(r), result->completion);
}

TEST(Collective, AggregationIssuesFewFileRequests) {
  pfs::HybridPfs pfs(small_cluster());
  auto file = *pfs.create_file("c");
  MpiSim mpi(8);
  // 64 interleaved 4 KiB pieces forming one contiguous 256 KiB extent.
  std::vector<CollectiveRequest> requests;
  for (int i = 0; i < 64; ++i) {
    requests.push_back(CollectiveRequest{i % 8, static_cast<common::Offset>(i) * 4_KiB, 4_KiB});
  }
  auto result = collective_write(pfs, mpi, file, requests);
  ASSERT_TRUE(result.is_ok());
  // Far fewer phase-2 requests than the 64 independent pieces.
  EXPECT_LE(result->file_requests, result->aggregators_used);
  EXPECT_LE(result->aggregators_used, 4u);  // min(world, servers)
}

TEST(Collective, BeatsIndependentIoOnInterleavedSmallPieces) {
  const auto cluster = small_cluster();
  constexpr int kPieces = 128;
  constexpr common::ByteCount kPiece = 4_KiB;

  // Independent: every piece is its own file request from its own rank.
  pfs::PfsOptions timing_only;
  timing_only.store_data = false;
  double independent;
  {
    pfs::HybridPfs pfs(cluster, timing_only);
    auto file = *pfs.create_file("c");
    MpiSim mpi(8);
    std::vector<std::uint8_t> buffer(kPiece);
    for (int i = 0; i < kPieces; ++i) {
      auto w = pfs.write(file, static_cast<common::Offset>(i) * kPiece, buffer.data(), kPiece,
                         mpi.now(i % 8));
      ASSERT_TRUE(w.is_ok());
      mpi.advance(i % 8, w->completion);
    }
    mpi.barrier();
    independent = mpi.max_time();
  }

  // Collective: one two-phase call.
  double collective;
  {
    pfs::HybridPfs pfs(cluster, timing_only);
    auto file = *pfs.create_file("c");
    MpiSim mpi(8);
    std::vector<CollectiveRequest> requests;
    for (int i = 0; i < kPieces; ++i) {
      requests.push_back(
          CollectiveRequest{i % 8, static_cast<common::Offset>(i) * kPiece, kPiece});
    }
    auto result = collective_write(pfs, mpi, file, requests);
    ASSERT_TRUE(result.is_ok());
    collective = result->completion;
  }
  EXPECT_LT(collective, independent);
}

TEST(Collective, ZeroSizeRequestsAreNoOps) {
  pfs::HybridPfs pfs(small_cluster());
  auto file = *pfs.create_file("c");
  MpiSim mpi(2);
  auto result = collective_write(pfs, mpi, file,
                                 {CollectiveRequest{0, 0, 0}, CollectiveRequest{1, 100, 0}});
  ASSERT_TRUE(result.is_ok());
  EXPECT_DOUBLE_EQ(result->completion, result->start);
  EXPECT_EQ(result->file_requests, 0u);
}

}  // namespace
}  // namespace mha::io
