// Online (dynamic) MHA: drift detection, adaptation, rollback consistency.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/online.hpp"
#include "layouts/scheme.hpp"

namespace mha::core {
namespace {

using common::OpType;
using namespace mha::common::literals;

sim::ClusterConfig small_cluster() {
  sim::ClusterConfig c;
  c.num_hservers = 2;
  c.num_sservers = 2;
  return c;
}

trace::TraceRecord rec(int rank, OpType op, common::Offset offset, common::ByteCount size,
                       common::Seconds t) {
  trace::TraceRecord r;
  r.rank = rank;
  r.op = op;
  r.offset = offset;
  r.size = size;
  r.t_start = t;
  return r;
}

/// Phase generator: `count` iterations of 4-rank concurrent requests of
/// `size` at advancing offsets.
std::vector<trace::TraceRecord> phase(OpType op, common::ByteCount size, int count,
                                      common::Offset base, double t0) {
  std::vector<trace::TraceRecord> out;
  for (int i = 0; i < count; ++i) {
    for (int rank = 0; rank < 4; ++rank) {
      out.push_back(rec(rank, op, base + (static_cast<common::Offset>(i) * 4 + rank) * size,
                        size, t0 + i * 2.5e-3));
    }
  }
  return out;
}

// ---------------------------------------------------------- signatures ---

TEST(PatternSignature, IdenticalWindowsHaveZeroDistance) {
  const auto a = phase(OpType::kWrite, 64_KiB, 8, 0, 0.0);
  EXPECT_DOUBLE_EQ(PatternSignature::of(a).distance(PatternSignature::of(a)), 0.0);
}

TEST(PatternSignature, SizeShiftIsVisible) {
  const auto small = phase(OpType::kWrite, 4_KiB, 8, 0, 0.0);
  const auto large = phase(OpType::kWrite, 1_MiB, 8, 0, 0.0);
  EXPECT_GT(PatternSignature::of(small).distance(PatternSignature::of(large)), 1.5);
}

TEST(PatternSignature, OpMixShiftIsVisible) {
  const auto reads = phase(OpType::kRead, 64_KiB, 8, 0, 0.0);
  const auto writes = phase(OpType::kWrite, 64_KiB, 8, 0, 0.0);
  const double d = PatternSignature::of(reads).distance(PatternSignature::of(writes));
  EXPECT_NEAR(d, 1.0, 1e-9);  // only the write fraction differs
}

TEST(PatternSignature, EmptyWindow) {
  const PatternSignature empty = PatternSignature::of({});
  EXPECT_DOUBLE_EQ(empty.write_fraction, 0.0);
}

// ------------------------------------------------------------- adapter ---

class OnlineMhaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pfs_ = std::make_unique<pfs::HybridPfs>(small_cluster());
    auto file = pfs_->create_file("online.dat");
    ASSERT_TRUE(file.is_ok());
    ASSERT_TRUE(layouts::populate_file(*pfs_, *file, 16_MiB).is_ok());
  }

  std::unique_ptr<pfs::HybridPfs> pfs_;
};

TEST_F(OnlineMhaTest, CreateRequiresExistingFile) {
  EXPECT_FALSE(OnlineMha::create(*pfs_, "missing").is_ok());
  EXPECT_TRUE(OnlineMha::create(*pfs_, "online.dat").is_ok());
}

TEST_F(OnlineMhaTest, PassthroughBeforeFirstPlan) {
  auto online = std::move(OnlineMha::create(*pfs_, "online.dat")).take();
  const auto segs = online->translate(100, 50);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].offset, 100u);
  EXPECT_EQ(online->current(), nullptr);
  EXPECT_DOUBLE_EQ(online->lookup_overhead(), 0.0);
}

TEST_F(OnlineMhaTest, NoAdaptBelowMinRecords) {
  OnlineOptions options;
  options.min_records = 100;
  auto online = std::move(OnlineMha::create(*pfs_, "online.dat", options)).take();
  for (const auto& r : phase(OpType::kRead, 64_KiB, 4, 0, 0.0)) online->observe(r);
  auto adapted = online->maybe_adapt();
  ASSERT_TRUE(adapted.is_ok());
  EXPECT_FALSE(*adapted);
  EXPECT_EQ(online->adaptations(), 0u);
}

TEST_F(OnlineMhaTest, FirstFullWindowBuildsAPlan) {
  OnlineOptions options;
  options.min_records = 32;
  options.window = 64;
  auto online = std::move(OnlineMha::create(*pfs_, "online.dat", options)).take();
  for (const auto& r : phase(OpType::kRead, 64_KiB, 16, 0, 0.0)) online->observe(r);
  auto adapted = online->maybe_adapt();
  ASSERT_TRUE(adapted.is_ok()) << adapted.status().to_string();
  EXPECT_TRUE(*adapted);
  EXPECT_EQ(online->adaptations(), 1u);
  EXPECT_NE(online->current(), nullptr);
}

TEST_F(OnlineMhaTest, StablePatternDoesNotReAdapt) {
  OnlineOptions options;
  options.min_records = 32;
  options.window = 64;
  auto online = std::move(OnlineMha::create(*pfs_, "online.dat", options)).take();
  for (const auto& r : phase(OpType::kRead, 64_KiB, 16, 0, 0.0)) online->observe(r);
  ASSERT_TRUE(online->maybe_adapt().is_ok());
  // Same pattern again: signature distance ~0, no re-adaptation.
  for (const auto& r : phase(OpType::kRead, 64_KiB, 16, 8_MiB, 1.0)) online->observe(r);
  auto again = online->maybe_adapt();
  ASSERT_TRUE(again.is_ok());
  EXPECT_FALSE(*again);
  EXPECT_EQ(online->adaptations(), 1u);
}

TEST_F(OnlineMhaTest, DriftTriggersReAdaptation) {
  OnlineOptions options;
  options.min_records = 32;
  options.window = 64;
  auto online = std::move(OnlineMha::create(*pfs_, "online.dat", options)).take();
  for (const auto& r : phase(OpType::kRead, 64_KiB, 16, 0, 0.0)) online->observe(r);
  ASSERT_TRUE(online->maybe_adapt().is_ok());
  // Radically different pattern: small writes instead of large reads.
  for (const auto& r : phase(OpType::kWrite, 4_KiB, 16, 8_MiB, 1.0)) online->observe(r);
  auto again = online->maybe_adapt();
  ASSERT_TRUE(again.is_ok()) << again.status().to_string();
  EXPECT_TRUE(*again);
  EXPECT_EQ(online->adaptations(), 2u);
}

TEST_F(OnlineMhaTest, DataSurvivesAdaptationCycles) {
  // Bytes must be identical through plan -> re-plan -> rollback chains.
  OnlineOptions options;
  options.min_records = 16;
  options.window = 64;
  options.drift_threshold = 0.0;  // adapt on every full window
  auto online = std::move(OnlineMha::create(*pfs_, "online.dat", options)).take();
  io::MpiSim mpi(4);
  auto file = *io::MpiFile::open(*pfs_, mpi, "online.dat");
  file.set_interceptor(online.get());

  // Write a recognisable pattern through the adapter, adapting in between.
  std::vector<std::uint8_t> payload(128_KiB);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  ASSERT_TRUE(file.write_at(0, 1_MiB, payload).is_ok());
  for (const auto& r : phase(OpType::kRead, 64_KiB, 16, 0, 0.0)) online->observe(r);
  ASSERT_TRUE(online->maybe_adapt().is_ok());
  // After adaptation the write landed in region files or the original —
  // either way it must read back through the adapter.
  auto back = file.read_vec(0, 1_MiB, payload.size());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, payload);

  for (const auto& r : phase(OpType::kWrite, 4_KiB, 32, 8_MiB, 1.0)) online->observe(r);
  ASSERT_TRUE(online->maybe_adapt().is_ok());
  EXPECT_EQ(online->adaptations(), 2u);
  auto after_second = file.read_vec(1, 1_MiB, payload.size());
  ASSERT_TRUE(after_second.is_ok());
  EXPECT_EQ(*after_second, payload);

  // Populated background bytes stay intact too.
  auto background = file.read_vec(2, 5_MiB, 4096);
  ASSERT_TRUE(background.is_ok());
  for (std::size_t i = 0; i < background->size(); ++i) {
    ASSERT_EQ((*background)[i], layouts::populate_byte(5_MiB + i));
  }
}

TEST_F(OnlineMhaTest, AdaptNowWithoutObservationsFails) {
  auto online = std::move(OnlineMha::create(*pfs_, "online.dat")).take();
  EXPECT_FALSE(online->adapt_now().is_ok());
}

}  // namespace
}  // namespace mha::core
