// Fault injection, degraded-mode client I/O and crash-safe migration.
//
// Covers the injector's virtual-time fault windows, the retry policy, the
// HybridPfs degraded dispatch path (retries, degraded reads, redo-logged
// writes, budget exhaustion), the phase-stamped migration journal with
// crash-at-every-phase recovery, and the negative paths the robustness issue
// calls out (beyond-EOF redirection, zero-size requests under faults,
// truncated RST recovery, replay verification mismatches).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "core/recovery.hpp"
#include "fault/context.hpp"
#include "fault/injector.hpp"
#include "fault/journal.hpp"
#include "fault/retry.hpp"
#include "io/mpi_file.hpp"
#include "layouts/scheme.hpp"
#include "workloads/replayer.hpp"

namespace mha {
namespace {

using common::OpType;
using namespace common::literals;

std::string temp_path(const std::string& tag) {
  // The counter alone is not unique across processes: ctest runs each test
  // case in its own process, so concurrent cases would collide on _0.
  static std::atomic<int> counter{0};
  return testing::TempDir() + "fault_test_" + tag + "_" + std::to_string(::getpid()) +
         "_" + std::to_string(counter.fetch_add(1)) + ".db";
}

/// Predictable service math (no network, no queued-startup discount).
sim::DeviceProfile slow_device() {
  sim::DeviceProfile d;
  d.name = "slow";
  d.startup_read = 1.0;
  d.startup_write = 2.0;
  d.per_byte_read = 0.001;
  d.per_byte_write = 0.002;
  d.queued_startup_factor = 1.0;
  return d;
}

sim::DeviceProfile fast_device() {
  sim::DeviceProfile d;
  d.name = "fast";
  d.startup_read = 0.1;
  d.startup_write = 0.2;
  d.per_byte_read = 0.0001;
  d.per_byte_write = 0.0002;
  d.queued_startup_factor = 1.0;
  return d;
}

sim::ClusterConfig tiny_cluster(std::size_t hservers = 2, std::size_t sservers = 1) {
  sim::ClusterConfig config;
  config.num_hservers = hservers;
  config.num_sservers = sservers;
  config.hdd = slow_device();
  config.ssd = fast_device();
  config.network = sim::null_network();
  return config;
}

fault::FaultWindow crash(std::size_t server, common::Seconds start, common::Seconds end) {
  fault::FaultWindow w;
  w.server = server;
  w.kind = fault::FaultKind::kCrash;
  w.start = start;
  w.end = end;
  return w;
}

fault::FaultWindow transient(std::size_t server, common::Seconds start, common::Seconds end,
                             double probability) {
  fault::FaultWindow w;
  w.server = server;
  w.kind = fault::FaultKind::kTransient;
  w.start = start;
  w.end = end;
  w.probability = probability;
  return w;
}

fault::FaultWindow brownout(std::size_t server, common::Seconds start, common::Seconds end,
                            double factor) {
  fault::FaultWindow w;
  w.server = server;
  w.kind = fault::FaultKind::kBrownout;
  w.start = start;
  w.end = end;
  w.factor = factor;
  return w;
}

// ----------------------------------------------------------- injector ---

TEST(FaultInjector, WindowQueriesAndChainedOutages) {
  fault::FaultInjector injector;
  injector.add(crash(0, 1.0, 2.0));
  injector.add(crash(0, 1.8, 3.0));  // overlaps the first: one long outage
  injector.add(crash(1, 5.0, 6.0));

  EXPECT_FALSE(injector.offline(0, 0.5));
  EXPECT_TRUE(injector.offline(0, 1.0));
  EXPECT_TRUE(injector.offline(0, 2.5));
  EXPECT_FALSE(injector.offline(0, 3.0));  // half-open
  EXPECT_FALSE(injector.offline(1, 1.5));

  EXPECT_DOUBLE_EQ(injector.recovery_time(0, 0.5), 0.5);
  // Chained windows must push past BOTH, whatever order they are scanned in.
  EXPECT_DOUBLE_EQ(injector.recovery_time(0, 1.5), 3.0);
  EXPECT_DOUBLE_EQ(injector.recovery_time(1, 5.5), 6.0);
}

TEST(FaultInjector, BrownoutFactorAppliesInsideWindowOnly) {
  fault::FaultInjector injector;
  injector.add(brownout(2, 4.0, 6.0, 3.5));
  EXPECT_DOUBLE_EQ(injector.service_factor(2, 5.0), 3.5);
  EXPECT_DOUBLE_EQ(injector.service_factor(2, 6.0), 1.0);
  EXPECT_DOUBLE_EQ(injector.service_factor(1, 5.0), 1.0);
}

TEST(FaultInjector, RandomScheduleIsSeedDeterministic) {
  fault::RandomFaultConfig config;
  config.num_servers = 4;
  config.horizon = 10.0;
  config.crashes_per_server = 1.5;
  config.brownouts_per_server = 0.75;
  config.transient_probability = 0.05;

  fault::FaultInjector a(42), b(42), c(43);
  a.add_random(config);
  b.add_random(config);
  c.add_random(config);
  ASSERT_EQ(a.windows().size(), b.windows().size());
  for (std::size_t i = 0; i < a.windows().size(); ++i) {
    EXPECT_EQ(a.windows()[i].server, b.windows()[i].server);
    EXPECT_EQ(a.windows()[i].kind, b.windows()[i].kind);
    EXPECT_DOUBLE_EQ(a.windows()[i].start, b.windows()[i].start);
    EXPECT_DOUBLE_EQ(a.windows()[i].end, b.windows()[i].end);
  }
  // A different seed produces a different schedule (overwhelmingly likely).
  bool differs = a.windows().size() != c.windows().size();
  for (std::size_t i = 0; !differs && i < a.windows().size(); ++i) {
    differs = a.windows()[i].start != c.windows()[i].start;
  }
  EXPECT_TRUE(differs);
}

// ------------------------------------------------------------ sim hook ---

TEST(FaultHook, CrashWindowPushesStartPastOutage) {
  sim::ServerSim server(common::ServerKind::kHdd, slow_device(), sim::null_network());
  fault::FaultInjector injector;
  injector.add(crash(0, 1.0, 2.0));
  server.set_fault_hook(&injector, 0);

  const common::Seconds done = server.submit(OpType::kRead, 100, 1.5);
  EXPECT_DOUBLE_EQ(done, 2.0 + server.service_time(OpType::kRead, 100));
}

TEST(FaultHook, PredictMatchesChargeUnderFaults) {
  sim::ServerSim server(common::ServerKind::kHdd, slow_device(), sim::null_network());
  fault::FaultInjector injector;
  injector.add(crash(0, 2.0, 3.0));
  injector.add(brownout(0, 5.0, 10.0, 4.0));
  server.set_fault_hook(&injector, 0);

  for (const common::Seconds arrival : {0.0, 2.5, 5.5, 9.9}) {
    const common::Seconds predicted = server.predict(OpType::kRead, 4_KiB, arrival);
    const sim::Charge charged = server.charge(OpType::kRead, 4_KiB, arrival);
    EXPECT_DOUBLE_EQ(predicted, charged.completion) << "arrival " << arrival;
  }
  // Brownout actually inflated service: a 4 KiB read starting at 5.5 (fresh
  // queue, inside the factor-4 window) costs 4x the plain service time.
  sim::ServerSim faulted(common::ServerKind::kHdd, slow_device(), sim::null_network());
  faulted.set_fault_hook(&injector, 0);
  sim::ServerSim plain(common::ServerKind::kHdd, slow_device(), sim::null_network());
  EXPECT_GT(faulted.charge(OpType::kRead, 4_KiB, 5.5).service,
            plain.charge(OpType::kRead, 4_KiB, 5.5).service * 3.9);
}

// --------------------------------------------------------------- retry ---

TEST(RetryPolicy, BackoffDoublesAndCapsWithoutJitter) {
  fault::RetryPolicy policy;
  policy.base_backoff = 1e-3;
  policy.multiplier = 2.0;
  policy.max_backoff = 8e-3;
  policy.jitter = 0.0;
  common::Rng rng(1);
  EXPECT_DOUBLE_EQ(fault::backoff_delay(policy, 1, rng), 1e-3);
  EXPECT_DOUBLE_EQ(fault::backoff_delay(policy, 2, rng), 2e-3);
  EXPECT_DOUBLE_EQ(fault::backoff_delay(policy, 3, rng), 4e-3);
  EXPECT_DOUBLE_EQ(fault::backoff_delay(policy, 4, rng), 8e-3);
  EXPECT_DOUBLE_EQ(fault::backoff_delay(policy, 10, rng), 8e-3);  // capped
}

TEST(RetryPolicy, JitterIsBoundedAndSeedDeterministic) {
  fault::RetryPolicy policy;  // jitter = 0.2
  common::Rng a(7), b(7);
  for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
    const common::Seconds da = fault::backoff_delay(policy, attempt, a);
    const common::Seconds db = fault::backoff_delay(policy, attempt, b);
    EXPECT_DOUBLE_EQ(da, db);
    const common::Seconds nominal =
        std::min(policy.base_backoff * std::pow(policy.multiplier,
                                                static_cast<double>(attempt - 1)),
                 policy.max_backoff);
    EXPECT_GE(da, nominal * (1.0 - policy.jitter));
    EXPECT_LE(da, nominal * (1.0 + policy.jitter));
  }
}

TEST(RetryPolicy, HugeAttemptCountSaturatesAtCapWithoutOverflow) {
  // With the pow() form, multiplier^(attempt-1) overflows to inf long before
  // attempt 10000; the iterative form must stop growing at the cap.
  fault::RetryPolicy policy;
  policy.jitter = 0.0;
  common::Rng rng(1);
  const common::Seconds d = fault::backoff_delay(policy, 10000, rng);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_DOUBLE_EQ(d, policy.max_backoff);
}

TEST(RetryPolicy, ZeroBaseBackoffStaysZeroNotNaN) {
  // base == 0 made the pow() form compute 0 * inf = NaN at large attempts,
  // which survives min() and poisons every later virtual-time sum.
  fault::RetryPolicy policy;
  policy.base_backoff = 0.0;
  policy.jitter = 0.0;
  common::Rng rng(1);
  for (const std::size_t attempt : {std::size_t{1}, std::size_t{64}, std::size_t{100000}}) {
    EXPECT_EQ(fault::backoff_delay(policy, attempt, rng), 0.0) << attempt;
  }
}

TEST(RetryPolicy, CapBoundaryAttemptIsBitExact) {
  // 0.5 ms * 2^7 == 64 ms exactly: the attempt that lands on the cap must
  // equal it bit-for-bit (the early-stop loop must not change the default
  // schedule), and later attempts stay pinned there.
  fault::RetryPolicy policy;  // base 0.5e-3, multiplier 2, cap 64e-3
  policy.jitter = 0.0;
  common::Rng rng(1);
  EXPECT_LT(fault::backoff_delay(policy, 7, rng), policy.max_backoff);
  EXPECT_DOUBLE_EQ(fault::backoff_delay(policy, 8, rng), policy.max_backoff);
  EXPECT_DOUBLE_EQ(fault::backoff_delay(policy, 9, rng), policy.max_backoff);
}

// ------------------------------------------------- degraded-mode client ---

class DegradedIoTest : public ::testing::Test {
 protected:
  /// A PFS with an attached context, one file striped over all servers and
  /// populated with the deterministic byte pattern.
  void attach(const sim::ClusterConfig& config, fault::RetryPolicy policy = {}) {
    pfs_ = std::make_unique<pfs::HybridPfs>(config);
    // Populate fault-free so the redo log starts empty even when a fault
    // window covers t=0; the context attaches only for the test's own I/O.
    file_ = *pfs_->create_file("f", pfs::StripeLayout::uniform(pfs_->num_servers(), 64_KiB));
    ASSERT_TRUE(layouts::populate_file(*pfs_, file_, kExtent).is_ok());
    context_ = std::make_unique<fault::FaultContext>(injector_, policy);
    pfs_->set_fault_context(context_.get());
    pfs_->reset_clocks();
    pfs_->reset_stats();
    injector_.reset_metrics();
  }

  std::vector<std::uint8_t> expected(common::Offset offset, common::ByteCount size) const {
    std::vector<std::uint8_t> out(size);
    for (common::ByteCount i = 0; i < size; ++i) out[i] = layouts::populate_byte(offset + i);
    return out;
  }

  static constexpr common::ByteCount kExtent = 512_KiB;
  fault::FaultInjector injector_;
  std::unique_ptr<fault::FaultContext> context_;
  std::unique_ptr<pfs::HybridPfs> pfs_;
  common::FileId file_ = common::kInvalidFileId;
};

TEST_F(DegradedIoTest, TransientFailuresAreRetriedToSuccess) {
  // Transients fire with certainty until t = 2 ms; backoff walks the retry
  // past the window and the request then succeeds.
  injector_.add(transient(0, 0.0, 2e-3, 1.0));
  fault::RetryPolicy policy;
  policy.jitter = 0.0;
  attach(tiny_cluster(), policy);

  auto r = pfs_->read_bytes(file_, 0, 4_KiB, 0.0);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(*r, expected(0, 4_KiB));
  const fault::FaultMetrics& m = injector_.metrics();
  EXPECT_GT(m.transient_errors, 0u);
  EXPECT_GT(m.retries, 0u);
  EXPECT_GT(m.backoff_seconds, 0.0);
  EXPECT_EQ(m.budget_exhausted, 0u);
}

TEST_F(DegradedIoTest, TransientExhaustionSurfacesIoError) {
  injector_.add(transient(0, 0.0, 1e9, 1.0));  // never stops failing
  fault::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.jitter = 0.0;
  attach(tiny_cluster(), policy);

  auto r = pfs_->read_bytes(file_, 0, 4_KiB, 0.0);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), common::ErrorCode::kIoError);
  EXPECT_EQ(injector_.metrics().budget_exhausted, 1u);
  EXPECT_EQ(injector_.metrics().retries, 2u);  // 3 attempts = 2 retries
}

TEST_F(DegradedIoTest, OfflineWaitPastBudgetSurfacesUnavailable) {
  // Only SServer (index 2 in a 2H+1S cluster) holds the data; its outage
  // outlasts the request budget and there is no replica to degrade to.
  injector_.add(crash(2, 0.0, 100.0));
  fault::RetryPolicy policy;
  policy.timeout_budget = 1.0;
  attach(tiny_cluster(), policy);
  auto sserver_only =
      pfs::StripeLayout::stripe_pair(pfs_->num_hservers(), pfs_->num_sservers(), 0, 64_KiB);
  ASSERT_TRUE(sserver_only.is_ok());
  const common::FileId ssd_file =
      *pfs_->create_file("ssd_only", std::move(sserver_only).take());
  std::vector<std::uint8_t> payload(4_KiB, 0x42);
  // The write itself parks in the redo log (acknowledged); the READ must
  // wait for the server and exhausts its budget.
  ASSERT_TRUE(pfs_->write(ssd_file, 0, payload, 0.0).is_ok());
  auto r = pfs_->read_bytes(ssd_file, 0, 4_KiB, 0.0);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), common::ErrorCode::kUnavailable);
  EXPECT_EQ(injector_.metrics().budget_exhausted, 1u);
}

TEST_F(DegradedIoTest, DegradedReadIsByteIdenticalAndBeatsWaiting) {
  injector_.add(crash(0, 0.0, 50.0));  // HServer 0 down for a long time
  attach(tiny_cluster());

  // [0, 64 KiB) lives entirely on the crashed server 0; its bytes degrade to
  // the SServer replica instead of waiting 50 virtual seconds.
  std::vector<std::uint8_t> buffer(64_KiB);
  auto result = pfs_->read(file_, 0, buffer.data(), buffer.size(), 0.0);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(buffer, expected(0, 64_KiB));
  EXPECT_GT(injector_.metrics().degraded_reads, 0u);
  EXPECT_GT(injector_.metrics().offline_hits, 0u);
  // Served well before the outage would have ended.
  EXPECT_LT(result->completion, 50.0);
  // The SServer (index 2) took the charge, not the offline HServer.
  EXPECT_EQ(pfs_->server_stats(0).sub_requests, 0u);
  EXPECT_GT(pfs_->server_stats(2).sub_requests, 0u);
}

TEST_F(DegradedIoTest, DegradedReadPicksLeastLoadedSServer) {
  injector_.add(crash(0, 0.0, 50.0));
  attach(tiny_cluster(2, 2));  // two SServers: indices 2 and 3

  // Pile queue onto SServer 2 so the replica choice must be SServer 3.
  pfs_->data_server(2).sim().submit(OpType::kRead, 1_MiB, 0.0);
  pfs_->reset_stats();

  // [0, 64 KiB) lives entirely on server 0 under the uniform 64 KiB layout.
  auto bytes = pfs_->read_bytes(file_, 0, 64_KiB, 0.0);
  ASSERT_TRUE(bytes.is_ok());
  EXPECT_EQ(*bytes, expected(0, 64_KiB));
  EXPECT_EQ(pfs_->server_stats(3).sub_requests, 1u);
  EXPECT_EQ(pfs_->server_stats(2).sub_requests, 0u);
}

TEST_F(DegradedIoTest, OfflineWriteParksInRedoAndReplaysOnRecovery) {
  injector_.add(crash(0, 0.0, 1.0));
  attach(tiny_cluster());

  // [0, 64 KiB) targets only the crashed server 0: the write acknowledges
  // immediately (redo-logged) and read-your-writes holds via the replica.
  std::vector<std::uint8_t> payload(64_KiB);
  for (common::ByteCount i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  auto w = pfs_->write(file_, 0, payload, 0.5);
  ASSERT_TRUE(w.is_ok()) << w.status().to_string();
  EXPECT_EQ(injector_.metrics().redo_logged, 1u);
  EXPECT_EQ(context_->redo().size(), 1u);
  EXPECT_LT(w->completion, 1.0);  // did not wait out the outage

  auto during = pfs_->read_bytes(file_, 0, 64_KiB, 0.6);
  ASSERT_TRUE(during.is_ok());
  EXPECT_EQ(*during, payload);

  // First request after recovery triggers the replay against server 0.
  auto after = pfs_->read_bytes(file_, 0, 64_KiB, 2.0);
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(*after, payload);
  EXPECT_EQ(injector_.metrics().redo_replayed, 1u);
  EXPECT_EQ(injector_.metrics().redo_bytes, 64_KiB);
  EXPECT_TRUE(context_->redo().empty());
  EXPECT_GE(injector_.metrics().recovery_events, 1u);
  EXPECT_GT(pfs_->server_stats(0).bytes_written, 0u);
}

TEST_F(DegradedIoTest, ZeroSizeRequestsDuringFaultWindowAreNoops) {
  injector_.add(crash(0, 0.0, 10.0));
  injector_.add(transient(1, 0.0, 10.0, 1.0));
  attach(tiny_cluster());

  auto r = pfs_->read(file_, 0, nullptr, 0, 1.0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_DOUBLE_EQ(r->completion, 1.0);
  auto w = pfs_->write(file_, 0, nullptr, 0, 1.0);
  ASSERT_TRUE(w.is_ok());
  const fault::FaultMetrics& m = injector_.metrics();
  EXPECT_EQ(m.transient_errors + m.offline_hits + m.retries + m.redo_logged, 0u);
}

TEST(FaultMetrics, TableMentionsEveryCounterFamily) {
  fault::FaultMetrics m;
  m.transient_errors = 3;
  m.retries = 2;
  m.degraded_reads = 1;
  m.redo_logged = 4;
  const std::string table = m.table();
  EXPECT_NE(table.find("transient=3"), std::string::npos);
  EXPECT_NE(table.find("count=2"), std::string::npos);
  EXPECT_NE(table.find("reads=1"), std::string::npos);
  EXPECT_NE(table.find("redo-logged=4"), std::string::npos);
}

// ------------------------------------------------------------- journal ---

TEST(MigrationJournal, PersistsPlanAndProgressAcrossReopen) {
  const std::string path = temp_path("journal");
  {
    fault::MigrationJournal journal;
    ASSERT_TRUE(journal.open(path).is_ok());
    EXPECT_FALSE(journal.active());
    ASSERT_TRUE(journal
                    .begin("orig",
                           {fault::JournalRegion{"orig.mha.r0", {64_KiB, 0, 32_KiB}}},
                           {fault::JournalEntry{0, 64_KiB, "orig.mha.r0", 0},
                            fault::JournalEntry{256_KiB, 64_KiB, "orig.mha.r0", 64_KiB}})
                    .is_ok());
    ASSERT_TRUE(journal.set_phase(fault::JournalPhase::kCopying).is_ok());
    ASSERT_TRUE(journal.set_copy_progress(0, 64_KiB).is_ok());
  }
  fault::MigrationJournal journal;
  ASSERT_TRUE(journal.open(path).is_ok());
  EXPECT_TRUE(journal.active());
  EXPECT_EQ(journal.phase(), fault::JournalPhase::kCopying);
  EXPECT_EQ(journal.o_file(), "orig");
  ASSERT_EQ(journal.regions().size(), 1u);
  EXPECT_EQ(journal.regions()[0].name, "orig.mha.r0");
  EXPECT_EQ(journal.regions()[0].widths,
            (std::vector<common::ByteCount>{64_KiB, 0, 32_KiB}));
  ASSERT_EQ(journal.entries().size(), 2u);
  EXPECT_EQ(journal.entries()[1],
            (fault::JournalEntry{256_KiB, 64_KiB, "orig.mha.r0", 64_KiB}));
  EXPECT_EQ(journal.copy_progress(0), 64_KiB);
  EXPECT_EQ(journal.copy_progress(1), 0u);
  ASSERT_TRUE(journal.clear().is_ok());
  EXPECT_FALSE(journal.active());
  std::remove(path.c_str());
}

TEST(MigrationJournal, RefusesSecondBeginWhileActive) {
  const std::string path = temp_path("journal_active");
  fault::MigrationJournal journal;
  ASSERT_TRUE(journal.open(path).is_ok());
  ASSERT_TRUE(journal.begin("a", {}, {}).is_ok());
  auto s = journal.begin("b", {}, {});
  EXPECT_EQ(s.code(), common::ErrorCode::kFailedPrecondition);
  // Committed journals accept a fresh migration again.
  ASSERT_TRUE(journal.commit().is_ok());
  EXPECT_TRUE(journal.begin("b", {}, {}).is_ok());
  std::remove(path.c_str());
}

// --------------------------------------------- crash-safe migration ------

class MigrationCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    journal_path_ = temp_path("migration");
    pfs_ = std::make_unique<pfs::HybridPfs>(tiny_cluster(2, 1));
    original_ = *pfs_->create_file("orig");
    ASSERT_TRUE(layouts::populate_file(*pfs_, original_, 512_KiB).is_ok());

    plan_ = core::ReorganizePlan{};
    plan_.drt = core::Drt("orig");
    core::Region region;
    region.name = "orig.mha.r0";
    region.length = 128_KiB;
    plan_.regions.push_back(region);
    ASSERT_TRUE(plan_.drt.insert(core::DrtEntry{0, 64_KiB, "orig.mha.r0", 64_KiB}).is_ok());
    ASSERT_TRUE(
        plan_.drt.insert(core::DrtEntry{256_KiB, 64_KiB, "orig.mha.r0", 0}).is_ok());
  }
  void TearDown() override { std::remove(journal_path_.c_str()); }

  /// Runs a journaled placement that crashes at `point`; returns the
  /// recovery report produced by a freshly-reopened journal (restart).
  core::RecoveryReport crash_and_recover(const std::string& point) {
    core::ApplyOptions options;
    {
      fault::MigrationJournal journal;
      EXPECT_TRUE(journal.open(journal_path_).is_ok());
      options.journal = &journal;
      options.crash_at = [&](std::string_view p) { return p == point; };
      auto report = core::Placer::apply(*pfs_, plan_, {core::StripePair{16_KiB, 48_KiB}},
                                        options);
      EXPECT_FALSE(report.is_ok());
      EXPECT_EQ(report.status().code(), common::ErrorCode::kIoError);
    }
    fault::MigrationJournal reopened;
    EXPECT_TRUE(reopened.open(journal_path_).is_ok());
    auto recovery = core::recover_migration(*pfs_, reopened);
    EXPECT_TRUE(recovery.is_ok()) << recovery.status().to_string();
    return recovery.is_ok() ? std::move(recovery).take() : core::RecoveryReport{};
  }

  std::vector<std::uint8_t> original_bytes(common::Offset offset, common::ByteCount size) {
    return *pfs_->read_bytes(original_, offset, size, 0.0);
  }

  std::vector<std::uint8_t> pattern(common::Offset offset, common::ByteCount size) const {
    std::vector<std::uint8_t> out(size);
    for (common::ByteCount i = 0; i < size; ++i) out[i] = layouts::populate_byte(offset + i);
    return out;
  }

  /// Byte-identical check of the fully-migrated state through a Redirector.
  void verify_migrated(const core::Drt& drt) {
    auto redirector = core::Redirector::create(*pfs_, drt);
    ASSERT_TRUE(redirector.is_ok());
    io::MpiSim mpi(1);
    auto file = io::MpiFile::open(*pfs_, mpi, "orig");
    ASSERT_TRUE(file.is_ok());
    file->set_interceptor(&*redirector);
    std::vector<std::uint8_t> buffer(512_KiB);
    ASSERT_TRUE(file->read_at(0, 0, buffer.data(), buffer.size()).is_ok());
    EXPECT_EQ(buffer, pattern(0, 512_KiB));
    // The displaced ranges really live in the region file.
    auto region = pfs_->open("orig.mha.r0");
    ASSERT_TRUE(region.is_ok());
    EXPECT_EQ(*pfs_->read_bytes(*region, 64_KiB, 64_KiB, 0.0), pattern(0, 64_KiB));
    EXPECT_EQ(*pfs_->read_bytes(*region, 0, 64_KiB, 0.0), pattern(256_KiB, 64_KiB));
  }

  std::string journal_path_;
  std::unique_ptr<pfs::HybridPfs> pfs_;
  common::FileId original_ = common::kInvalidFileId;
  core::ReorganizePlan plan_;
};

TEST_F(MigrationCrashTest, CrashBeforeCopyRollsBack) {
  for (const std::string point : {"planned", "regions-created"}) {
    SCOPED_TRACE(point);
    const core::RecoveryReport report = crash_and_recover(point);
    EXPECT_EQ(report.action, core::RecoveryAction::kRolledBack);
    EXPECT_FALSE(report.has_drt);
    EXPECT_FALSE(pfs_->open("orig.mha.r0").is_ok());  // region gone
    EXPECT_EQ(original_bytes(0, 512_KiB), pattern(0, 512_KiB));
  }
}

TEST_F(MigrationCrashTest, CrashMidCopyRollsForward) {
  const core::RecoveryReport report = crash_and_recover("copying");
  EXPECT_EQ(report.action, core::RecoveryAction::kRolledForward);
  ASSERT_TRUE(report.has_drt);
  EXPECT_EQ(report.bytes_copied, 128_KiB);  // both entries re-copied
  verify_migrated(report.drt);
}

TEST_F(MigrationCrashTest, CrashBetweenEntriesResumesFromProgress) {
  const core::RecoveryReport report = crash_and_recover("copied-entry-0");
  EXPECT_EQ(report.action, core::RecoveryAction::kRolledForward);
  ASSERT_TRUE(report.has_drt);
  EXPECT_EQ(report.bytes_copied, 64_KiB);  // entry 0 was journaled done
  verify_migrated(report.drt);
}

TEST_F(MigrationCrashTest, CrashAfterCopyOrCommitCompletes) {
  for (const std::string point : {"copied", "committed"}) {
    SCOPED_TRACE(point);
    // Each loop iteration needs a fresh un-migrated PFS.
    SetUp();
    const core::RecoveryReport report = crash_and_recover(point);
    EXPECT_EQ(report.action, core::RecoveryAction::kRolledForward);
    ASSERT_TRUE(report.has_drt);
    EXPECT_EQ(report.bytes_copied, 0u);  // nothing left to copy
    verify_migrated(report.drt);
  }
}

TEST_F(MigrationCrashTest, RecoveredJournalIsReusable) {
  (void)crash_and_recover("planned");
  // After recovery the journal is clear: a full, un-crashed placement runs.
  fault::MigrationJournal journal;
  ASSERT_TRUE(journal.open(journal_path_).is_ok());
  EXPECT_FALSE(journal.active());
  core::ApplyOptions options;
  options.journal = &journal;
  auto report = core::Placer::apply(*pfs_, plan_, {core::StripePair{16_KiB, 48_KiB}},
                                    options);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->bytes_migrated, 128_KiB);
  EXPECT_EQ(journal.phase(), fault::JournalPhase::kCommitted);
}

// ------------------------------------------------- pipeline + online ------

trace::TraceRecord rec(int rank, OpType op, common::Offset offset, common::ByteCount size,
                       common::Seconds t) {
  trace::TraceRecord r;
  r.rank = rank;
  r.op = op;
  r.offset = offset;
  r.size = size;
  r.t_start = t;
  return r;
}

trace::Trace mini_trace(const std::string& name) {
  trace::Trace t;
  t.file_name = name;
  common::Offset offset = 0;
  double time = 0.0;
  for (int loop = 0; loop < 8; ++loop) {
    for (int rank = 0; rank < 4; ++rank) {
      t.records.push_back(rec(rank, OpType::kRead, offset + rank * 200_KiB, 16, time));
    }
    time += 0.01;
    for (int rank = 0; rank < 4; ++rank) {
      t.records.push_back(
          rec(rank, OpType::kRead, offset + rank * 200_KiB + 16, 128_KiB, time));
    }
    time += 0.01;
    offset += 16 + 128_KiB;
  }
  return t;
}

TEST(PipelineJournal, DeployCrashThenRecoverThenRedeploy) {
  const std::string journal_path = temp_path("pipeline");
  pfs::HybridPfs pfs(tiny_cluster(2, 2));
  const trace::Trace trace = mini_trace("orig");
  auto original = *pfs.create_file("orig");
  ASSERT_TRUE(layouts::populate_file(pfs, original, trace::extent_end(trace.records)).is_ok());

  core::MhaOptions options;
  options.journal_path = journal_path;
  auto crash_point = std::make_shared<std::string>("planned");
  options.crash_at = [crash_point](std::string_view p) { return p == *crash_point; };

  auto failed = core::MhaPipeline::deploy(pfs, trace, options);
  ASSERT_FALSE(failed.is_ok());
  EXPECT_EQ(failed.status().code(), common::ErrorCode::kIoError);

  // A second deploy must refuse to run over the unresolved journal.
  auto refused = core::MhaPipeline::deploy(pfs, trace, options);
  ASSERT_FALSE(refused.is_ok());
  EXPECT_EQ(refused.status().code(), common::ErrorCode::kFailedPrecondition);

  fault::MigrationJournal journal;
  ASSERT_TRUE(journal.open(journal_path).is_ok());
  auto recovery = core::recover_migration(pfs, journal);
  ASSERT_TRUE(recovery.is_ok()) << recovery.status().to_string();
  EXPECT_EQ(recovery->action, core::RecoveryAction::kRolledBack);
  ASSERT_TRUE(journal.close().is_ok());

  crash_point->clear();  // no more crashes
  auto deployment = core::MhaPipeline::deploy(pfs, trace, options);
  ASSERT_TRUE(deployment.is_ok()) << deployment.status().to_string();
  EXPECT_NE(deployment->redirector, nullptr);
  std::remove(journal_path.c_str());
}

TEST(OnlineJournal, FoldbackCrashRecoversRedirectedWrites) {
  const std::string journal_path = temp_path("online");
  pfs::HybridPfs pfs(tiny_cluster(2, 2));
  auto original = *pfs.create_file("dyn");
  const trace::Trace trace = mini_trace("dyn");
  const common::ByteCount extent = trace::extent_end(trace.records);
  ASSERT_TRUE(layouts::populate_file(pfs, original, extent).is_ok());

  core::OnlineOptions options;
  options.window = 64;
  options.min_records = 8;
  options.mha.journal_path = journal_path;
  auto crash_on = std::make_shared<bool>(false);
  options.mha.crash_at = [crash_on](std::string_view p) {
    return *crash_on && p == "foldback-begun";
  };

  auto online = core::OnlineMha::create(pfs, "dyn", options);
  ASSERT_TRUE(online.is_ok());
  for (const trace::TraceRecord& r : trace.records) (*online)->observe(r);
  ASSERT_TRUE((*online)->adapt_now().is_ok());
  ASSERT_NE((*online)->current(), nullptr);

  // Dirty a redirected range: the bytes land in the region file only.
  io::MpiSim mpi(1);
  auto file = io::MpiFile::open(pfs, mpi, "dyn");
  ASSERT_TRUE(file.is_ok());
  file->set_interceptor(online->get());
  std::vector<std::uint8_t> payload(4_KiB, 0xB7);
  ASSERT_TRUE(file->write_at(0, 16, payload.data(), payload.size()).is_ok());

  // The next adaptation's fold-back crashes after journaling the plan.
  *crash_on = true;
  auto failed = (*online)->adapt_now();
  ASSERT_FALSE(failed.is_ok());
  EXPECT_EQ(failed.code(), common::ErrorCode::kIoError);

  // Restart: recovery re-runs the idempotent fold-back and drops regions.
  fault::MigrationJournal journal;
  ASSERT_TRUE(journal.open(journal_path).is_ok());
  EXPECT_EQ(journal.phase(), fault::JournalPhase::kFoldback);
  auto recovery = core::recover_migration(pfs, journal);
  ASSERT_TRUE(recovery.is_ok()) << recovery.status().to_string();
  EXPECT_EQ(recovery->action, core::RecoveryAction::kFoldedBack);
  EXPECT_GT(recovery->regions_removed, 0u);
  EXPECT_FALSE(recovery->has_drt);

  // Every region is gone and the dirty bytes survived the fold-back.
  for (const std::string& name : pfs.mds().list_files()) {
    EXPECT_EQ(name.find(".mha."), std::string::npos) << name;
  }
  EXPECT_EQ(*pfs.read_bytes(original, 16, 4_KiB, 0.0), payload);
  std::vector<std::uint8_t> head = *pfs.read_bytes(original, 0, 16, 0.0);
  for (common::ByteCount i = 0; i < 16; ++i) {
    EXPECT_EQ(head[i], layouts::populate_byte(i));
  }
  std::remove(journal_path.c_str());
}

// ------------------------------------------ satellites / negative paths ---

TEST(TryCancelProperty, RandomizedInterleavingsKeepQueueConsistent) {
  common::Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 50; ++trial) {
    sim::ServerSim server(common::ServerKind::kHdd, slow_device(), sim::null_network());
    // Reference trace of the charges that survive cancellation.
    std::vector<std::pair<common::Seconds, common::ByteCount>> survivors;
    std::vector<sim::Charge> history;  // admissions, newest last
    bool newest_cancellable = false;   // no charge admitted since last cancel
    common::Seconds t = 0.0;
    for (int step = 0; step < 60; ++step) {
      const double dice = rng.next_double();
      if (dice < 0.55 || !newest_cancellable) {
        const common::ByteCount bytes = 1 + rng.next_below(8_KiB);
        const sim::Charge c = server.charge(OpType::kRead, bytes, t);
        EXPECT_GE(c.start, t);
        history.push_back(c);
        survivors.emplace_back(t, bytes);
        newest_cancellable = true;
        t += rng.next_double() * 0.5;
      } else if (dice < 0.8) {
        // Cancel the newest admission: must succeed exactly once; a repeat
        // of the same receipt must fail and change nothing.
        const sim::Charge c = history.back();
        history.pop_back();
        survivors.pop_back();
        EXPECT_TRUE(server.try_cancel(c));
        EXPECT_FALSE(server.try_cancel(c)) << "double cancel must fail";
        newest_cancellable = false;
      } else if (history.size() >= 2) {
        // Cancelling anything but the newest must fail and change nothing.
        const common::Seconds before = server.next_free();
        EXPECT_FALSE(server.try_cancel(history[history.size() - 2]));
        EXPECT_DOUBLE_EQ(server.next_free(), before);
      }
    }
    // The queue must equal a fresh replay of the surviving charges.
    sim::ServerSim replayed(common::ServerKind::kHdd, slow_device(), sim::null_network());
    for (const auto& [arrival, bytes] : survivors) {
      replayed.charge(OpType::kRead, bytes, arrival);
    }
    EXPECT_DOUBLE_EQ(server.next_free(), replayed.next_free()) << "trial " << trial;
    EXPECT_EQ(server.stats().sub_requests, replayed.stats().sub_requests);
    EXPECT_EQ(server.stats().bytes_read, replayed.stats().bytes_read);
  }
}

TEST(RedirectorNegative, LookupBeyondCoveredRangePassesThrough) {
  pfs::HybridPfs pfs(tiny_cluster(2, 1));
  auto original = *pfs.create_file("orig");
  ASSERT_TRUE(layouts::populate_file(pfs, original, 128_KiB).is_ok());

  core::Drt drt("orig");
  ASSERT_TRUE(drt.insert(core::DrtEntry{0, 64_KiB, "orig", 64_KiB}).is_ok());
  // Beyond every entry: the lookup must come back as one passthrough
  // segment, not crash or clamp.
  const auto segments = drt.lookup(1_MiB, 4_KiB);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_FALSE(segments[0].redirected);
  EXPECT_EQ(segments[0].target_offset, 1_MiB);
  EXPECT_EQ(segments[0].length, 4_KiB);

  // Reading far past EOF through the stack is defined: unwritten bytes are
  // zero in the content plane (sparse extent semantics).
  auto redirector = core::Redirector::create(pfs, drt);
  ASSERT_TRUE(redirector.is_ok());
  io::MpiSim mpi(1);
  auto file = io::MpiFile::open(pfs, mpi, "orig");
  ASSERT_TRUE(file.is_ok());
  file->set_interceptor(&*redirector);
  std::vector<std::uint8_t> buffer(4_KiB, 0xFF);
  ASSERT_TRUE(file->read_at(0, 1_MiB, buffer.data(), buffer.size()).is_ok());
  for (const std::uint8_t b : buffer) EXPECT_EQ(b, 0u);
}

TEST(MetadataNegative, TruncatedRstRestoresTheValidPrefix) {
  const std::string rst_path = temp_path("rst");
  {
    pfs::HybridPfs pfs(tiny_cluster(2, 1), rst_path);
    ASSERT_TRUE(pfs.create_file("first").is_ok());
    ASSERT_TRUE(pfs.create_file("second").is_ok());
  }
  // Tear the tail: the last appended record ("second") loses its framing.
  const auto size = std::filesystem::file_size(rst_path);
  ASSERT_GT(size, 3u);
  std::filesystem::resize_file(rst_path, size - 3);

  pfs::HybridPfs pfs(tiny_cluster(2, 1), rst_path);
  ASSERT_TRUE(pfs.mds().restore_from_rst().is_ok());
  EXPECT_TRUE(pfs.mds().exists("first"));
  EXPECT_FALSE(pfs.mds().exists("second"));
  std::remove(rst_path.c_str());
}

TEST(ReplayerNegative, VerificationMismatchPropagatesFailingOffset) {
  pfs::PfsOptions pfs_options;
  pfs_options.store_data = true;
  pfs::HybridPfs pfs(tiny_cluster(2, 1), pfs_options);
  trace::Trace trace;
  trace.file_name = "orig";
  trace.records.push_back(rec(0, OpType::kRead, 0, 4_KiB, 0.0));

  auto def = layouts::make_def();
  auto deployment = def->prepare(pfs, trace);
  ASSERT_TRUE(deployment.is_ok());

  // Corrupt one stored byte behind the replayer's back.
  auto file = pfs.open("orig");
  ASSERT_TRUE(file.is_ok());
  const std::uint8_t wrong = static_cast<std::uint8_t>(layouts::populate_byte(10) ^ 0xFF);
  pfs.data_server(0).store(*file, 10, &wrong, 1);

  workloads::ReplayOptions options;
  options.verify_data = true;
  auto result = workloads::replay(pfs, *deployment, trace, options);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), common::ErrorCode::kCorruption);
  EXPECT_NE(result.status().message().find("offset 10"), std::string::npos)
      << result.status().message();
}

TEST(FaultedReplay, SameSeedSameNumbers) {
  const trace::Trace trace = mini_trace("orig");
  auto run = [&](std::uint64_t seed) {
    fault::FaultInjector injector(seed);
    fault::RandomFaultConfig config;
    config.num_servers = 4;
    config.horizon = 2.0;
    config.crashes_per_server = 0.5;
    config.mean_outage = 0.05;
    config.transient_probability = 0.02;
    injector.add_random(config);
    fault::FaultContext context(injector);
    workloads::ReplayOptions options;
    options.verify_data = true;
    options.fault_context = &context;
    auto scheme = layouts::make_def();
    auto result = workloads::run_scheme(*scheme, tiny_cluster(2, 2), trace, options);
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    return std::make_pair(result.is_ok() ? result->makespan : -1.0, injector.metrics());
  };
  const auto [makespan_a, metrics_a] = run(99);
  const auto [makespan_b, metrics_b] = run(99);
  EXPECT_DOUBLE_EQ(makespan_a, makespan_b);
  EXPECT_EQ(metrics_a.transient_errors, metrics_b.transient_errors);
  EXPECT_EQ(metrics_a.retries, metrics_b.retries);
  EXPECT_DOUBLE_EQ(metrics_a.backoff_seconds, metrics_b.backoff_seconds);
  EXPECT_EQ(metrics_a.degraded_reads, metrics_b.degraded_reads);
  EXPECT_EQ(metrics_a.redo_logged, metrics_b.redo_logged);
}

}  // namespace
}  // namespace mha
