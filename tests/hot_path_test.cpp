// Flat-DRT layout edge cases, lookup-hint behaviour across copies/moves, the
// SmallVec scratch container, and coalescing equivalence in the redirector —
// the correctness side of the zero-allocation request path.
#include <gtest/gtest.h>

#include <utility>

#include "common/small_vec.hpp"
#include "core/redirector.hpp"
#include "io/mpi_file.hpp"
#include "pfs/file_system.hpp"
#include "sim/cluster_sim.hpp"

namespace mha::core {
namespace {

DrtEntry entry(common::Offset o, common::ByteCount len, std::string r_file,
               common::Offset r) {
  return DrtEntry{o, len, std::move(r_file), r};
}

/// Every lookup must tile [offset, offset+size) exactly, in order.
void expect_tiles(const Drt& drt, common::Offset offset, common::ByteCount size) {
  Drt::SegmentVec segments;
  drt.lookup(offset, size, segments);
  common::Offset cursor = offset;
  for (const DrtSegment& seg : segments) {
    EXPECT_EQ(seg.logical_offset, cursor);
    EXPECT_GT(seg.length, 0u);
    if (!seg.redirected) {
      EXPECT_EQ(seg.region, kNoRegion);
      EXPECT_EQ(seg.target_offset, cursor);  // passthrough is identity
    } else {
      EXPECT_LT(seg.region, drt.region_count());
    }
    cursor += seg.length;
  }
  EXPECT_EQ(cursor, offset + size);
}

TEST(DrtFlat, EmptyTableIsSinglePassthrough) {
  Drt drt("orig");
  const auto segments = drt.lookup(0, 4096);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_FALSE(segments[0].redirected);
  EXPECT_EQ(segments[0].region, kNoRegion);
  EXPECT_EQ(segments[0].length, 4096u);
  expect_tiles(drt, 123, 7777);
}

TEST(DrtFlat, GapOnlyRequestBetweenEntries) {
  Drt drt("orig");
  ASSERT_TRUE(drt.insert(entry(0, 100, "r0", 0)).is_ok());
  ASSERT_TRUE(drt.insert(entry(1000, 100, "r1", 0)).is_ok());
  const auto segments = drt.lookup(200, 300);  // entirely inside the gap
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_FALSE(segments[0].redirected);
  EXPECT_EQ(segments[0].target_offset, 200u);
  EXPECT_EQ(segments[0].length, 300u);
}

TEST(DrtFlat, RequestSpanningManyEntriesAndGaps) {
  // 16 entries of 64 bytes with 64-byte gaps: a request over the whole range
  // splits into 32+ segments, exercising the SmallVec spill path too.
  Drt drt("orig");
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        drt.insert(entry(static_cast<common::Offset>(i) * 128, 64,
                         "r" + std::to_string(i % 3), static_cast<common::Offset>(i) * 64))
            .is_ok());
  }
  Drt::SegmentVec segments;
  drt.lookup(0, 16 * 128, segments);
  EXPECT_EQ(segments.size(), 32u);  // entry, gap, entry, gap, ...
  EXPECT_TRUE(segments.spilled());
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].redirected, i % 2 == 0);
  }
  expect_tiles(drt, 0, 16 * 128);
  expect_tiles(drt, 33, 16 * 128 - 57);  // unaligned span
  EXPECT_EQ(drt.region_count(), 3u);  // names interned, not duplicated
}

TEST(DrtFlat, ZeroLengthLookupAndInsert) {
  Drt drt("orig");
  ASSERT_TRUE(drt.insert(entry(0, 10, "r0", 0)).is_ok());
  EXPECT_FALSE(drt.insert(entry(50, 0, "r0", 0)).is_ok());
  Drt::SegmentVec out;
  out.push_back(DrtSegment{});  // lookup must clear stale scratch
  drt.lookup(5, 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(DrtFlat, HintSurvivesCopyMoveAndInsert) {
  Drt drt("orig");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(drt.insert(entry(static_cast<common::Offset>(i) * 100, 100,
                                 "r0", static_cast<common::Offset>(i) * 100))
                    .is_ok());
  }
  // Warm the sequential hint deep into the table.
  Drt::SegmentVec scratch;
  for (common::Offset pos = 0; pos < 800; pos += 100) drt.lookup(pos, 100, scratch);

  // A copy carries the hint as an index — lookups anywhere stay correct.
  Drt copy = drt;
  expect_tiles(copy, 0, 800);
  copy.lookup(750, 10, scratch);
  ASSERT_EQ(scratch.size(), 1u);
  EXPECT_EQ(scratch[0].target_offset, 750u);

  // Rewinding to the start with a stale forward hint is just a cache miss.
  drt.lookup(0, 50, scratch);
  ASSERT_EQ(scratch.size(), 1u);
  EXPECT_EQ(scratch[0].target_offset, 0u);

  // Inserting ahead of the hinted entry shifts the vector; the hinted index
  // now names a different entry and must be re-validated, not trusted.
  Drt moved = std::move(copy);
  ASSERT_TRUE(moved.insert(entry(900, 50, "r1", 0)).is_ok());
  expect_tiles(moved, 0, 1000);
  moved.lookup(920, 10, scratch);
  ASSERT_EQ(scratch.size(), 1u);
  EXPECT_TRUE(scratch[0].redirected);
  EXPECT_EQ(moved.region_name(scratch[0].region), "r1");
  EXPECT_EQ(scratch[0].target_offset, 20u);
}

TEST(SmallVec, InlineThenSpillRoundTrip) {
  common::SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_FALSE(v.spilled());
  for (int i = 4; i < 40; ++i) v.push_back(i);
  EXPECT_TRUE(v.spilled());
  ASSERT_EQ(v.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);

  // clear() keeps the spilled capacity: refilling must not re-spill.
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);

  common::SmallVec<int, 4> w;
  w.push_back(7);
  v = w;  // copy into previously-spilled vector
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 7);
  EXPECT_TRUE(v == w);

  common::SmallVec<int, 4> big;
  for (int i = 0; i < 16; ++i) big.push_back(i);
  common::SmallVec<int, 4> taken = std::move(big);
  ASSERT_EQ(taken.size(), 16u);
  EXPECT_EQ(taken[15], 15);
}

TEST(Redirector, CoalescesAdjacentSegmentsSameRegion) {
  sim::ClusterConfig config;
  config.num_hservers = 2;
  config.num_sservers = 2;
  pfs::HybridPfs pfs(config, pfs::PfsOptions{"", false});
  (void)pfs.create_file("orig");
  (void)pfs.create_file("region");

  // Three entries contiguous in both spaces, then one with a target gap.
  Drt drt("orig");
  ASSERT_TRUE(drt.insert(entry(0, 100, "region", 0)).is_ok());
  ASSERT_TRUE(drt.insert(entry(100, 100, "region", 100)).is_ok());
  ASSERT_TRUE(drt.insert(entry(200, 100, "region", 200)).is_ok());
  ASSERT_TRUE(drt.insert(entry(300, 100, "region", 1000)).is_ok());
  auto redirector = Redirector::create(pfs, std::move(drt));
  ASSERT_TRUE(redirector.is_ok());

  io::SegmentList out;
  redirector->translate(0, 400, out);
  ASSERT_EQ(out.size(), 2u);  // first three merged, the target-gap one not
  EXPECT_EQ(out[0].offset, 0u);
  EXPECT_EQ(out[0].length, 300u);
  EXPECT_EQ(out[1].offset, 1000u);
  EXPECT_EQ(out[1].length, 100u);

  // Equivalence with the uncoalesced DRT split: same logical tiling and the
  // same (file, target) byte mapping, piece by piece.
  const auto raw = redirector->drt().lookup(0, 400);
  common::Offset cursor = 0;
  for (const DrtSegment& seg : raw) {
    bool found = false;
    for (const io::RedirectSegment& merged : out) {
      if (seg.logical_offset >= merged.logical_offset &&
          seg.logical_offset + seg.length <= merged.logical_offset + merged.length) {
        // The merged segment must map this piece to the same target bytes.
        EXPECT_EQ(merged.offset + (seg.logical_offset - merged.logical_offset),
                  seg.target_offset);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "raw segment at " << seg.logical_offset << " not covered";
    EXPECT_EQ(seg.logical_offset, cursor);
    cursor += seg.length;
  }
  EXPECT_EQ(cursor, 400u);
}

TEST(Redirector, DoesNotCoalesceAcrossFilesOrLogicalGaps) {
  sim::ClusterConfig config;
  config.num_hservers = 2;
  config.num_sservers = 2;
  pfs::HybridPfs pfs(config, pfs::PfsOptions{"", false});
  (void)pfs.create_file("orig");
  (void)pfs.create_file("ra");
  (void)pfs.create_file("rb");

  Drt drt("orig");
  ASSERT_TRUE(drt.insert(entry(0, 100, "ra", 0)).is_ok());
  ASSERT_TRUE(drt.insert(entry(100, 100, "rb", 100)).is_ok());  // other file
  ASSERT_TRUE(drt.insert(entry(300, 100, "rb", 200)).is_ok());  // logical gap
  auto redirector = Redirector::create(pfs, std::move(drt));
  ASSERT_TRUE(redirector.is_ok());

  io::SegmentList out;
  redirector->translate(0, 400, out);
  ASSERT_EQ(out.size(), 4u);  // ra, rb, passthrough gap, rb
  const auto ra = pfs.open("ra");
  const auto rb = pfs.open("rb");
  const auto orig = pfs.open("orig");
  ASSERT_TRUE(ra.is_ok() && rb.is_ok() && orig.is_ok());
  EXPECT_EQ(out[0].file, *ra);
  EXPECT_EQ(out[1].file, *rb);
  EXPECT_EQ(out[2].file, *orig);  // the [200, 300) gap passes through
  EXPECT_EQ(out[3].file, *rb);
  EXPECT_EQ(out[3].offset, 200u);
}

}  // namespace
}  // namespace mha::core
