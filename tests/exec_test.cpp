// Tests for the exec thread pool and the determinism contract it must keep:
// multi-threaded runs produce results bitwise-identical to --threads=1.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "exec/thread_pool.hpp"
#include "fault/context.hpp"
#include "fault/injector.hpp"
#include "layouts/scheme.hpp"
#include "sched/scheduler.hpp"
#include "workloads/ior.hpp"
#include "workloads/replayer.hpp"

namespace mha {
namespace {

using namespace common::literals;

// ------------------------------------------------------------ pool basics --

TEST(ExecPoolTest, RunsEveryIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  const std::size_t n = 10000;
  // Each index is claimed exactly once, so the plain writes cannot race.
  std::vector<int> hits(n, 0);
  pool.parallel_for(n, [&](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ExecPoolTest, ParallelMapLandsResultsByIndex) {
  exec::ThreadPool pool(8);
  auto squares =
      pool.parallel_map(257, [](std::size_t i) { return static_cast<long>(i * i); });
  ASSERT_EQ(squares.size(), 257u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<long>(i * i));
  }
}

TEST(ExecPoolTest, MoveOnlyResultsAreSupported) {
  exec::ThreadPool pool(4);
  auto ptrs = pool.parallel_map(
      64, [](std::size_t i) { return std::make_unique<std::size_t>(i); });
  ASSERT_EQ(ptrs.size(), 64u);
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    ASSERT_NE(ptrs[i], nullptr);
    EXPECT_EQ(*ptrs[i], i);
  }
}

TEST(ExecPoolTest, ExceptionPropagatesAndPoolSurvives) {
  exec::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The batch drained fully despite the abort; the pool stays usable.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ExecPoolTest, NestedParallelForDoesNotDeadlock) {
  exec::ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ExecPoolTest, SingleThreadedPoolRunsInline) {
  exec::ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::size_t on_caller = 0;
  pool.parallel_for(32, [&](std::size_t) {
    if (std::this_thread::get_id() == caller) ++on_caller;
  });
  EXPECT_EQ(on_caller, 32u);
}

TEST(ExecPoolTest, EmptyAndSingletonBatches) {
  exec::ThreadPool pool(4);
  std::size_t calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  auto one = pool.parallel_map(1, [](std::size_t i) { return i + 41; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 41u);
}

TEST(ExecPoolTest, StreamSeedsAreDistinctPerTaskAndBase) {
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 1000; ++i) seeds.insert(exec::stream_seed(42, i));
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(exec::stream_seed(42, 0), exec::stream_seed(43, 0));
}

TEST(ExecPoolTest, DefaultPoolRespectsSetThreads) {
  const std::size_t before = exec::default_threads();
  exec::set_default_threads(3);
  EXPECT_EQ(exec::default_threads(), 3u);
  EXPECT_EQ(exec::default_pool().thread_count(), 3u);
  exec::set_default_threads(before);
}

// --------------------------------------------------------- determinism ----

trace::Trace mixed_trace(std::uint64_t seed,
                         common::OpType op = common::OpType::kWrite) {
  workloads::IorMixedSizesConfig config;
  config.num_procs = 8;
  config.request_sizes = {128_KiB, 256_KiB};
  config.file_size = 16_MiB;
  config.op = op;
  config.file_name = "exec_det.ior";
  config.seed = seed;
  return workloads::ior_mixed_sizes(config);
}

sim::ClusterConfig small_cluster() {
  sim::ClusterConfig cluster;
  cluster.num_hservers = 6;
  cluster.num_sservers = 2;
  return cluster;
}

/// Runs `body` with the default pool sized to `threads` and restores the
/// previous size afterwards.
template <typename Fn>
auto with_threads(std::size_t threads, Fn&& body) {
  const std::size_t before = exec::default_threads();
  exec::set_default_threads(threads);
  auto result = body();
  exec::set_default_threads(before);
  return result;
}

TEST(ExecDeterminismTest, PipelinePlanIdenticalAcrossThreadCounts) {
  const trace::Trace trace = mixed_trace(7);
  const auto cluster = small_cluster();
  auto plan_at = [&](std::size_t threads) {
    return with_threads(threads, [&] {
      auto plan = core::MhaPipeline::analyze(cluster, trace);
      EXPECT_TRUE(plan.is_ok()) << plan.status().to_string();
      return plan.is_ok() ? plan->to_string() : std::string();
    });
  };
  const std::string serial = plan_at(1);
  const std::string threaded = plan_at(8);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded);
}

struct GridCell {
  double bandwidth = 0.0;
  double makespan = 0.0;
};

/// Replays a (trace x scheme) grid on the default pool the way the figure
/// benches do, returning the raw doubles for bitwise comparison.
std::vector<GridCell> replay_grid(std::size_t threads) {
  return with_threads(threads, [&] {
    const std::vector<trace::Trace> traces = {mixed_trace(7), mixed_trace(11)};
    const auto cluster = small_cluster();
    const std::size_t num_schemes = 4;
    return exec::default_pool().parallel_map(
        traces.size() * num_schemes, [&](std::size_t index) {
          std::unique_ptr<layouts::LayoutScheme> scheme;
          switch (index % num_schemes) {
            case 0: scheme = layouts::make_def(); break;
            case 1: scheme = layouts::make_aal(); break;
            case 2: scheme = layouts::make_harl(); break;
            default: scheme = layouts::make_mha(); break;
          }
          GridCell cell;
          auto result =
              workloads::run_scheme(*scheme, cluster, traces[index / num_schemes], {});
          if (result.is_ok()) {
            cell.bandwidth = result->aggregate_bandwidth;
            cell.makespan = result->makespan;
          }
          return cell;
        });
  });
}

TEST(ExecDeterminismTest, ReplayGridIdenticalAcrossThreadCounts) {
  const auto serial = replay_grid(1);
  const auto threaded = replay_grid(8);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_GT(serial[i].bandwidth, 0.0) << "cell " << i;
    // Bitwise equality: the pool must not change a single double.
    EXPECT_EQ(serial[i].bandwidth, threaded[i].bandwidth) << "cell " << i;
    EXPECT_EQ(serial[i].makespan, threaded[i].makespan) << "cell " << i;
  }
}

/// The ext_fault cell shape: seeded injector + scheduler + verification.
std::vector<GridCell> faulted_grid(std::size_t threads) {
  return with_threads(threads, [&] {
    const trace::Trace trace = mixed_trace(7, common::OpType::kRead);
    const auto cluster = small_cluster();
    return exec::default_pool().parallel_map(4, [&](std::size_t index) {
      auto scheme = index / 2 == 0 ? layouts::make_def() : layouts::make_mha();
      auto scheduler = sched::make_scheduler(index % 2 == 0
                                                 ? sched::SchedulerKind::kFcfs
                                                 : sched::SchedulerKind::kHedgedRead);
      fault::FaultInjector injector(0xFA17ULL);
      fault::RandomFaultConfig config;
      config.num_servers = 8;
      config.horizon = 5.0;
      config.transient_probability = 0.08;
      config.crashes_per_server = 1.0;
      config.mean_outage = 0.05;
      config.brownouts_per_server = 1.0;
      config.mean_brownout = 0.2;
      config.brownout_factor = 4.0;
      injector.add_random(config);
      fault::FaultContext context(injector);
      workloads::ReplayOptions options;
      options.verify_data = true;
      options.scheduler = scheduler.get();
      options.fault_context = &context;
      GridCell cell;
      auto result = workloads::run_scheme(*scheme, cluster, trace, options);
      if (result.is_ok()) {
        cell.bandwidth = result->aggregate_bandwidth;
        cell.makespan = result->makespan;
      }
      return cell;
    });
  });
}

TEST(ExecDeterminismTest, FaultedReplayIdenticalAcrossThreadCounts) {
  const auto serial = faulted_grid(1);
  const auto threaded = faulted_grid(8);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_GT(serial[i].bandwidth, 0.0) << "cell " << i;
    EXPECT_EQ(serial[i].bandwidth, threaded[i].bandwidth) << "cell " << i;
    EXPECT_EQ(serial[i].makespan, threaded[i].makespan) << "cell " << i;
  }
}

}  // namespace
}  // namespace mha
