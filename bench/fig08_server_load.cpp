// Fig. 8: per-server I/O time under each layout scheme.
//
// Paper setup: the "128+256" mixed-size IOR write workload; the plot shows
// each server's I/O time normalized to the minimum server time under MHA.
// S0-S5 are HServers, S6-S7 SServers.
//
// Expected shape: DEF and AAL heavily skewed (HServers several times busier
// than SServers); HARL and MHA nearly even, with MHA's times lowest.
#include "bench_common.hpp"

#include "common/units.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

int main(int argc, char** argv) {
  bench::init("fig08_server_load", argc, argv);
  std::printf("=== Fig. 8: per-server I/O time, IOR 128+256 KiB writes (32 procs, 6h:2s) ===\n");

  workloads::IorMixedSizesConfig config;
  config.num_procs = bench::scaled_procs(32);
  config.request_sizes = {128_KiB, 256_KiB};
  config.file_size = bench::scaled_bytes(256_MiB);
  config.op = common::OpType::kWrite;
  config.file_name = "fig8.ior";
  config.seed = 8;
  const trace::Trace trace = workloads::ior_mixed_sizes(config);
  const auto cluster = bench::paper_cluster();

  // Gather per-server busy time for each scheme: one pool task per scheme,
  // each on a fresh ClusterSim, results landing in scheme order.
  struct SchemeLoad {
    std::string name;
    std::vector<double> busy;  // per server
    bool ok = false;
  };
  const std::size_t num_schemes = bench::scheme_columns().size();
  auto loads = exec::default_pool().parallel_map(num_schemes, [&](std::size_t s) {
    SchemeLoad load;
    auto scheme = bench::make_scheme(s);
    load.name = scheme->name();
    const double start = bench::wall_now();
    auto result = bench::run_full(*scheme, cluster, trace);
    const double wall = bench::wall_now() - start;
    if (!result.is_ok()) {
      std::fprintf(stderr, "%s failed: %s\n", load.name.c_str(),
                   result.status().to_string().c_str());
      return load;
    }
    for (const auto& st : result->server_stats) load.busy.push_back(st.busy_time);
    bench::report().add(s, bench::CellRecord{
        "Fig. 8", load.name, wall, result->makespan,
        result->aggregate_bandwidth / static_cast<double>(common::kMiB)});
    load.ok = true;
    return load;
  });

  std::vector<std::vector<double>> busy;  // [scheme][server]
  std::vector<std::string> names;
  for (auto& load : loads) {
    if (!load.ok) return bench::finish(1);
    busy.push_back(std::move(load.busy));
    names.push_back(std::move(load.name));
  }

  // Normalize to the minimum server time under MHA (paper's normalization).
  double mha_min = 1e300;
  for (double v : busy.back()) {
    if (v > 0) mha_min = std::min(mha_min, v);
  }

  std::vector<bench::Row> rows;
  const std::size_t servers = busy.front().size();
  for (std::size_t s = 0; s < servers; ++s) {
    bench::Row row;
    row.label = "S" + std::to_string(s) + (s < cluster.num_hservers ? " (H)" : " (S)");
    for (std::size_t k = 0; k < busy.size(); ++k) row.values.push_back(busy[k][s] / mha_min);
    rows.push_back(std::move(row));
  }
  bench::print_table("Fig. 8: server I/O time (normalized to min under MHA)", names, rows,
                     "x min(MHA)");

  // Skew summary: max/min busy ratio per scheme (load imbalance).
  std::printf("\nload imbalance (max/min busy time):\n");
  for (std::size_t k = 0; k < busy.size(); ++k) {
    double lo = 1e300, hi = 0;
    for (double v : busy[k]) {
      if (v <= 0) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    std::printf("  %-5s %.2fx\n", names[k].c_str(), hi / lo);
  }
  return bench::finish();
}
