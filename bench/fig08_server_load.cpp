// Fig. 8: per-server I/O time under each layout scheme.
//
// Paper setup: the "128+256" mixed-size IOR write workload; the plot shows
// each server's I/O time normalized to the minimum server time under MHA.
// S0-S5 are HServers, S6-S7 SServers.
//
// Expected shape: DEF and AAL heavily skewed (HServers several times busier
// than SServers); HARL and MHA nearly even, with MHA's times lowest.
#include "bench_common.hpp"

#include "common/units.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

int main() {
  std::printf("=== Fig. 8: per-server I/O time, IOR 128+256 KiB writes (32 procs, 6h:2s) ===\n");

  workloads::IorMixedSizesConfig config;
  config.num_procs = 32;
  config.request_sizes = {128_KiB, 256_KiB};
  config.file_size = 256_MiB;
  config.op = common::OpType::kWrite;
  config.file_name = "fig8.ior";
  config.seed = 8;
  const trace::Trace trace = workloads::ior_mixed_sizes(config);
  const auto cluster = bench::paper_cluster();

  // Gather per-server busy time for each scheme.
  std::vector<std::vector<double>> busy;  // [scheme][server]
  std::vector<std::string> names;
  for (auto& scheme : layouts::all_schemes()) {
    auto result = bench::run_full(*scheme, cluster, trace);
    if (!result.is_ok()) {
      std::fprintf(stderr, "%s failed: %s\n", scheme->name().c_str(),
                   result.status().to_string().c_str());
      return 1;
    }
    std::vector<double> row;
    for (const auto& st : result->server_stats) row.push_back(st.busy_time);
    busy.push_back(std::move(row));
    names.push_back(scheme->name());
  }

  // Normalize to the minimum server time under MHA (paper's normalization).
  double mha_min = 1e300;
  for (double v : busy.back()) {
    if (v > 0) mha_min = std::min(mha_min, v);
  }

  std::vector<bench::Row> rows;
  const std::size_t servers = busy.front().size();
  for (std::size_t s = 0; s < servers; ++s) {
    bench::Row row;
    row.label = "S" + std::to_string(s) + (s < cluster.num_hservers ? " (H)" : " (S)");
    for (std::size_t k = 0; k < busy.size(); ++k) row.values.push_back(busy[k][s] / mha_min);
    rows.push_back(std::move(row));
  }
  bench::print_table("Fig. 8: server I/O time (normalized to min under MHA)", names, rows,
                     "x min(MHA)");

  // Skew summary: max/min busy ratio per scheme (load imbalance).
  std::printf("\nload imbalance (max/min busy time):\n");
  for (std::size_t k = 0; k < busy.size(); ++k) {
    double lo = 1e300, hi = 0;
    for (double v : busy[k]) {
      if (v <= 0) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    std::printf("  %-5s %.2fx\n", names[k].c_str(), hi / lo);
  }
  return 0;
}
