// Fig. 9: IOR bandwidth with mixed process numbers.
//
// Paper setup: request size fixed at 256 KiB; configurations "8" (uniform),
// "8+32", "16+64", "32+128" — different parts of the file are accessed by
// different numbers of processes.
//
// Expected shape: MHA ~= HARL on the uniform "8"; MHA best on all mixes;
// bandwidth dropping as process counts rise (contention), with MHA degrading
// the least.
#include "bench_common.hpp"

#include "common/units.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

namespace {

trace::Trace make_case(const std::vector<int>& counts, common::OpType op) {
  workloads::IorMixedProcsConfig config;
  config.process_counts = counts;
  for (int& procs : config.process_counts) procs = bench::scaled_procs(procs);
  config.request_size = 256_KiB;
  config.file_size = bench::scaled_bytes(256_MiB);
  config.op = op;
  config.file_name = "fig9.ior";
  config.seed = 9;
  return workloads::ior_mixed_procs(config);
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("fig09_ior_mixed_procs", argc, argv);
  std::printf("=== Fig. 9: IOR with mixed process numbers (256 KiB requests, 6h:2s) ===\n");
  const std::vector<std::pair<std::string, std::vector<int>>> mixes = {
      {"8", {8}},
      {"8+32", {8, 32}},
      {"16+64", {16, 64}},
      {"32+128", {32, 128}},
  };
  for (common::OpType op : {common::OpType::kRead, common::OpType::kWrite}) {
    std::vector<std::pair<std::string, trace::Trace>> cases;
    for (const auto& [label, counts] : mixes) {
      cases.emplace_back(label, make_case(counts, op));
    }
    bench::run_figure(std::string("Fig. 9 ") +
                          (op == common::OpType::kRead ? "(a) read" : "(b) write"),
                      cases, bench::paper_cluster());
  }
  return bench::finish();
}
