// Extension bench (beyond the paper's figures): cluster-scale sweep.
//
// The paper's future work: "we plan to evaluate MHA in a much larger
// cluster, which is not currently available to us".  The simulated substrate
// has no such constraint — this bench scales the paper's 6h:2s testbed by
// 1x/2x/4x/8x (keeping the 3:1 HServer:SServer ratio) with a matching scale
// of processes and data volume, and reports how each scheme's aggregate
// bandwidth and MHA's relative gain evolve.
//
// Expected shape: absolute bandwidth scales near-linearly with the server
// count for the heterogeneity-aware schemes; MHA's gain over DEF persists at
// scale (layout decisions are per-server-ratio, not per-server-count).
#include "bench_common.hpp"

#include "common/units.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

int main(int argc, char** argv) {
  bench::init("ext_scalability", argc, argv);
  std::printf("=== Extension: scaling the testbed (paper Sec. VII future work) ===\n");

  // Build the per-testbed-scale traces up front (serial, seeded), then fan
  // the (testbed scale x scheme) grid out on the pool.
  struct Case {
    sim::ClusterConfig cluster;
    std::string label;
    trace::Trace trace;
  };
  std::vector<Case> cases;
  for (int scale : {1, 2, 4, 8}) {
    Case c;
    c.cluster.num_hservers = 6u * static_cast<std::size_t>(scale);
    c.cluster.num_sservers = 2u * static_cast<std::size_t>(scale);

    workloads::IorMixedSizesConfig config;
    config.num_procs = bench::scaled_procs(32 * scale);
    config.request_sizes = {128_KiB, 256_KiB};
    config.file_size = bench::scaled_bytes(128_MiB * static_cast<common::ByteCount>(scale));
    config.op = common::OpType::kWrite;
    config.file_name = "scale.ior";
    config.seed = 40 + static_cast<std::uint64_t>(scale);
    c.trace = workloads::ior_mixed_sizes(config);
    c.label = std::to_string(c.cluster.num_hservers) + "h:" +
              std::to_string(c.cluster.num_sservers) + "s/" +
              std::to_string(config.num_procs) + "p";
    cases.push_back(std::move(c));
  }

  const std::size_t num_schemes = bench::scheme_columns().size();
  struct Cell {
    double bandwidth = 0.0;
    double makespan = 0.0;
    double wall = 0.0;
  };
  auto cells = exec::default_pool().parallel_map(
      cases.size() * num_schemes, [&](std::size_t index) {
        const Case& c = cases[index / num_schemes];
        auto scheme = bench::make_scheme(index % num_schemes);
        Cell cell;
        const double start = bench::wall_now();
        auto result = bench::run_full(*scheme, c.cluster, c.trace);
        cell.wall = bench::wall_now() - start;
        if (result.is_ok()) {
          cell.bandwidth = result->aggregate_bandwidth / static_cast<double>(common::kMiB);
          cell.makespan = result->makespan;
        } else {
          std::fprintf(stderr, "[bench] %s failed: %s\n", scheme->name().c_str(),
                       result.status().to_string().c_str());
        }
        return cell;
      });

  std::vector<bench::Row> rows;
  for (std::size_t c = 0; c < cases.size(); ++c) {
    bench::Row row;
    row.label = cases[c].label;
    for (std::size_t s = 0; s < num_schemes; ++s) {
      const Cell& cell = cells[c * num_schemes + s];
      row.values.push_back(cell.bandwidth);
      bench::report().add(bench::report().size(),
                          bench::CellRecord{row.label, bench::scheme_columns()[s],
                                            cell.wall, cell.makespan, cell.bandwidth});
    }
    rows.push_back(std::move(row));
  }
  bench::print_table("Scaling sweep (IOR 128+256 KiB writes)", bench::scheme_columns(), rows);

  // Efficiency: bandwidth per server, normalized to the 1x row.
  std::printf("\nscaling efficiency (MHA MiB/s per server, normalized to 1x):\n");
  const double base = rows[0].values[3] / 8.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double servers = 8.0 * static_cast<double>(1 << i);
    std::printf("  %-14s %.2f\n", rows[i].label.c_str(),
                rows[i].values[3] / servers / base);
  }
  return bench::finish();
}
