// Extension bench (beyond the paper's figures): cluster-scale sweep.
//
// The paper's future work: "we plan to evaluate MHA in a much larger
// cluster, which is not currently available to us".  The simulated substrate
// has no such constraint — this bench scales the paper's 6h:2s testbed by
// 1x/2x/4x/8x (keeping the 3:1 HServer:SServer ratio) with a matching scale
// of processes and data volume, and reports how each scheme's aggregate
// bandwidth and MHA's relative gain evolve.
//
// Expected shape: absolute bandwidth scales near-linearly with the server
// count for the heterogeneity-aware schemes; MHA's gain over DEF persists at
// scale (layout decisions are per-server-ratio, not per-server-count).
#include "bench_common.hpp"

#include "common/units.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

int main() {
  std::printf("=== Extension: scaling the testbed (paper Sec. VII future work) ===\n");
  std::vector<bench::Row> rows;
  for (int scale : {1, 2, 4, 8}) {
    sim::ClusterConfig cluster;
    cluster.num_hservers = 6u * static_cast<std::size_t>(scale);
    cluster.num_sservers = 2u * static_cast<std::size_t>(scale);

    workloads::IorMixedSizesConfig config;
    config.num_procs = 32 * scale;
    config.request_sizes = {128_KiB, 256_KiB};
    config.file_size = 128_MiB * static_cast<common::ByteCount>(scale);
    config.op = common::OpType::kWrite;
    config.file_name = "scale.ior";
    config.seed = 40 + static_cast<std::uint64_t>(scale);
    const trace::Trace trace = workloads::ior_mixed_sizes(config);

    bench::Row row;
    row.label = std::to_string(cluster.num_hservers) + "h:" +
                std::to_string(cluster.num_sservers) + "s/" +
                std::to_string(config.num_procs) + "p";
    for (auto& scheme : layouts::all_schemes()) {
      row.values.push_back(bench::run_bandwidth(*scheme, cluster, trace));
    }
    rows.push_back(std::move(row));
  }
  bench::print_table("Scaling sweep (IOR 128+256 KiB writes)", bench::scheme_columns(), rows);

  // Efficiency: bandwidth per server, normalized to the 1x row.
  std::printf("\nscaling efficiency (MHA MiB/s per server, normalized to 1x):\n");
  const double base = rows[0].values[3] / 8.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double servers = 8.0 * static_cast<double>(1 << i);
    std::printf("  %-14s %.2f\n", rows[i].label.c_str(),
                rows[i].values[3] / servers / base);
  }
  return 0;
}
