// Extension bench: client-side cooperative page cache — does write-back
// coalescing turn the small-write storm into a few large dispatches?
//
// Grid: four workloads (IOR mixed small writes, HPIO dense regions, the
// LANL App2 16B+128K interleave, the DL-pipeline epoch reader) x two
// placements (DEF striping, MHA reorganised) x four client configurations
// (uncached batched baseline, write-through, write-back, close-to-open),
// every cell byte-verified against a shadow copy.  A second sweep holds
// LANL write-back fixed and shrinks the pool through the pressure regimes:
// a pool that holds the working set flushes once at the end (a handful of
// per-rank runs), a starved pool drains continuously at the dirty
// watermarks, and the sorted coalescer keeps even those drains to
// one dispatch per touched server.
//
// Expected shape: write-through matches uncached (every byte still pays a
// round trip), write-back collapses dispatched server sub-ops by >=10x on
// LANL and multiplies replay bandwidth by >=3x (both exit-code gated
// below), and close-to-open sits between (absorbs within an iteration,
// drains at every barrier).  Reads: the DL pipeline's second epoch runs
// from the pool at hit_overhead instead of the disks.
#include "bench_common.hpp"

#include "cache/page_cache.hpp"
#include "common/units.hpp"
#include "workloads/apps.hpp"
#include "workloads/dlpipe.hpp"
#include "workloads/hpio.hpp"
#include "workloads/ior.hpp"

using namespace mha;

namespace {

struct Cell {
  workloads::ReplayResult result;
  cache::CacheMetrics cache;
  std::uint64_t server_ops = 0;
  double wall = 0.0;
  bool ok = false;
};

constexpr const char* kModeNames[4] = {"uncached", "w-thru", "w-back", "c-to-o"};
constexpr common::ByteCount kGridPool = 128ULL * common::kMiB;

cache::CacheConfig make_cache(std::size_t mode, common::ByteCount pool_bytes) {
  cache::CacheConfig config;
  config.page_size = 64 * 1024;
  config.num_pages = static_cast<std::size_t>(pool_bytes / config.page_size);
  switch (mode) {
    case 1: config.mode = cache::ConsistencyMode::kWriteThrough; break;
    case 2: config.mode = cache::ConsistencyMode::kWriteBack; break;
    default: config.mode = cache::ConsistencyMode::kCloseToOpen; break;
  }
  return config;
}

Cell run_cell(const trace::Trace& trace, std::size_t scheme_index,
              const cache::CacheConfig* config, const char* what) {
  Cell cell;
  const double start = bench::wall_now();
  auto scheme = bench::make_scheme(scheme_index);
  workloads::ReplayOptions options;
  options.verify_data = true;
  options.cache = config;
  options.cache_metrics = config != nullptr ? &cell.cache : nullptr;
  auto result = workloads::run_scheme(*scheme, bench::paper_cluster(), trace, options,
                                      /*store_data=*/true);
  cell.wall = bench::wall_now() - start;
  if (!result.is_ok()) {
    std::fprintf(stderr, "[ext_cache] %s failed: %s\n", what,
                 result.status().to_string().c_str());
    return cell;
  }
  cell.result = std::move(*result);
  for (const auto& s : cell.result.server_stats) cell.server_ops += s.sub_requests;
  cell.ok = true;
  return cell;
}

double mib_s(const Cell& cell) {
  return cell.ok ? cell.result.aggregate_bandwidth / static_cast<double>(common::kMiB)
                 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("ext_cache", argc, argv);
  std::printf("=== Extension: client-side page cache (coalescing write-back, "
              "hetero-aware) ===\n");

  // The four workload traces, shared read-only across cells.
  std::vector<std::pair<std::string, trace::Trace>> workloads_list;
  {
    workloads::IorMixedSizesConfig config;
    config.num_procs = bench::scaled_procs(16, 4);
    config.request_sizes = {16 * 1024, 64 * 1024};
    config.file_size = bench::scaled_bytes(24ULL * common::kMiB, 8ULL * common::kMiB);
    config.file_name = "ext.ior";
    workloads_list.emplace_back("ior-small", workloads::ior_mixed_sizes(config));
  }
  {
    workloads::HpioConfig config;
    config.num_procs = bench::scaled_procs(16, 4);
    config.region_count = static_cast<std::size_t>(bench::scaled_count(1024, 256));
    config.file_name = "ext.hpio";
    workloads_list.emplace_back("hpio", workloads::hpio(config));
  }
  {
    workloads::LanlConfig config;
    config.num_procs = 8;
    config.loops = bench::scaled_count(32, 16);
    config.file_name = "ext.lanl";
    workloads_list.emplace_back("lanl", workloads::lanl_app2(config));
  }
  {
    workloads::DlPipeConfig config;
    config.num_procs = bench::scaled_procs(16, 4);
    config.dataset_size = bench::scaled_bytes(32ULL * common::kMiB, 8ULL * common::kMiB);
    config.file_name = "ext.dlpipe";
    workloads_list.emplace_back("dlpipe", workloads::dl_pipeline(config));
  }

  constexpr std::size_t kSchemes[2] = {0, 3};  // DEF, MHA
  constexpr const char* kSchemeNames[2] = {"DEF", "MHA"};
  const std::vector<common::ByteCount> sweep_pools = {
      4ULL * common::kMiB, 16ULL * common::kMiB, 64ULL * common::kMiB, kGridPool};
  const std::size_t grid_cells = workloads_list.size() * 2 * 4;
  const std::size_t total_cells = grid_cells + sweep_pools.size() * 2;
  const trace::Trace& lanl_trace = workloads_list[2].second;

  // Cache configs owned outside the tasks (ReplayOptions borrows a pointer).
  std::vector<cache::CacheConfig> grid_configs;
  for (std::size_t mode = 1; mode < 4; ++mode)
    grid_configs.push_back(make_cache(mode, kGridPool));
  std::vector<cache::CacheConfig> sweep_configs;
  for (common::ByteCount pool : sweep_pools) sweep_configs.push_back(make_cache(2, pool));

  // One task per cell; results land by index, so the grid is thread-count
  // invariant (byte-identical stdout at any --threads=N).
  auto cells = exec::default_pool().parallel_map(total_cells, [&](std::size_t i) {
    if (i < grid_cells) {
      const std::size_t mode = i % 4;
      const std::size_t scheme = (i / 4) % 2;
      const std::size_t wl = i / 8;
      const std::string what = workloads_list[wl].first + "/" +
                               kSchemeNames[scheme] + "/" + kModeNames[mode];
      return run_cell(workloads_list[wl].second, kSchemes[scheme],
                      mode == 0 ? nullptr : &grid_configs[mode - 1], what.c_str());
    }
    const std::size_t j = i - grid_cells;
    const std::size_t scheme = j % 2;
    const std::size_t pool = j / 2;
    const std::string what = "lanl-pool" +
                             std::to_string(sweep_pools[pool] / common::kMiB) + "/" +
                             kSchemeNames[scheme];
    return run_cell(lanl_trace, kSchemes[scheme], &sweep_configs[pool], what.c_str());
  });

  std::printf("pool %llu MiB (64 KiB pages), read-ahead 8 pages, watermarks "
              "0.75/0.50, byte-verified\n\n",
              static_cast<unsigned long long>(kGridPool / common::kMiB));
  std::printf("%-10s %-4s | %9s %9s %9s %9s | %6s %9s %6s %8s %8s\n", "workload",
              "plc", "uncached", "w-thru", "w-back", "c-to-o", "hit%", "absorbed",
              "runs", "ops-unc", "ops-wb");
  for (std::size_t wl = 0; wl < workloads_list.size(); ++wl) {
    for (std::size_t scheme = 0; scheme < 2; ++scheme) {
      const std::size_t base = wl * 8 + scheme * 4;
      const Cell& uncached = cells[base + 0];
      const Cell& wb = cells[base + 2];
      std::printf("%-10s %-4s | %9.1f %9.1f %9.1f %9.1f | %5.1f%% %9llu %6llu "
                  "%8llu %8llu\n",
                  workloads_list[wl].first.c_str(), kSchemeNames[scheme],
                  mib_s(uncached), mib_s(cells[base + 1]), mib_s(wb),
                  mib_s(cells[base + 3]), 100.0 * wb.cache.hit_ratio(),
                  static_cast<unsigned long long>(wb.cache.absorbed_writes),
                  static_cast<unsigned long long>(wb.cache.flush_ops),
                  static_cast<unsigned long long>(uncached.server_ops),
                  static_cast<unsigned long long>(wb.server_ops));
      for (std::size_t mode = 0; mode < 4; ++mode) {
        const Cell& cell = cells[base + mode];
        bench::report().add(
            base + mode,
            bench::CellRecord{workloads_list[wl].first + "/" + kSchemeNames[scheme],
                              kModeNames[mode], cell.wall,
                              cell.ok ? cell.result.makespan : 0.0, mib_s(cell)});
      }
    }
  }

  std::printf("\n--- LANL write-back vs pool size (watermark pressure regimes) ---\n");
  std::printf("%-9s %-4s | %9s %8s %6s %10s %10s %7s\n", "pool", "plc", "MiB/s",
              "srv-ops", "runs", "evict-dirt", "wm-flush", "hit%");
  for (std::size_t pool = 0; pool < sweep_pools.size(); ++pool) {
    for (std::size_t scheme = 0; scheme < 2; ++scheme) {
      const std::size_t index = grid_cells + pool * 2 + scheme;
      const Cell& cell = cells[index];
      const std::string label =
          std::to_string(sweep_pools[pool] / common::kMiB) + " MiB";
      std::printf("%-9s %-4s | %9.1f %8llu %6llu %10llu %10llu %6.1f%%\n",
                  label.c_str(), kSchemeNames[scheme], mib_s(cell),
                  static_cast<unsigned long long>(cell.server_ops),
                  static_cast<unsigned long long>(cell.cache.flush_ops),
                  static_cast<unsigned long long>(cell.cache.evict_dirty),
                  static_cast<unsigned long long>(
                      cell.cache.flush_by_trigger[static_cast<int>(
                          cache::FlushTrigger::kPressure)]),
                  100.0 * cell.cache.hit_ratio());
      bench::report().add(index,
                          bench::CellRecord{"lanl-pool/" + label, kSchemeNames[scheme],
                                            cell.wall,
                                            cell.ok ? cell.result.makespan : 0.0,
                                            mib_s(cell)});
    }
  }

  // The detailed exhibit: every decision the cache made on the poster-child
  // cell (LANL, DEF placement, write-back).
  const Cell& show = cells[2 * 8 + 0 * 4 + 2];
  if (show.ok) {
    std::printf("\ncache ledger, lanl/DEF/w-back:\n%s", show.cache.table().c_str());
  }

  // Acceptance gates — the coalescing contract, enforced.
  int failures = 0;
  std::size_t broken = 0;
  for (const Cell& cell : cells) {
    if (!cell.ok) ++broken;
  }
  {
    const bool pass = broken == 0;
    failures += pass ? 0 : 1;
    std::printf("\n[gate] all %zu cells replayed byte-verified: %zu failed -- %s\n",
                cells.size(), broken, pass ? "PASS" : "FAIL");
  }
  const Cell& lanl_uncached = cells[2 * 8 + 0 * 4 + 0];
  const Cell& lanl_wb = show;
  if (lanl_uncached.ok && lanl_wb.ok) {
    const double ops_ratio = lanl_wb.server_ops > 0
                                 ? static_cast<double>(lanl_uncached.server_ops) /
                                       static_cast<double>(lanl_wb.server_ops)
                                 : 0.0;
    const double bw_ratio =
        mib_s(lanl_uncached) > 0.0 ? mib_s(lanl_wb) / mib_s(lanl_uncached) : 0.0;
    const bool ops_pass = ops_ratio >= 10.0;
    const bool bw_pass = bw_ratio >= 3.0;
    failures += ops_pass ? 0 : 1;
    failures += bw_pass ? 0 : 1;
    std::printf("[gate] lanl/DEF dispatched server ops %llu -> %llu (%.1fx, need "
                ">=10x) -- %s\n",
                static_cast<unsigned long long>(lanl_uncached.server_ops),
                static_cast<unsigned long long>(lanl_wb.server_ops), ops_ratio,
                ops_pass ? "PASS" : "FAIL");
    std::printf("[gate] lanl/DEF replay bandwidth %.1f -> %.1f MiB/s (%.2fx, need "
                ">=3x) -- %s\n",
                mib_s(lanl_uncached), mib_s(lanl_wb), bw_ratio,
                bw_pass ? "PASS" : "FAIL");
  } else {
    ++failures;
  }

  return bench::finish(failures == 0 ? 0 : 1);
}
