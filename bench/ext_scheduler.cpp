// Extension bench: layout x scheduler — are layout and dispatch
// complementary levers?
//
// The paper optimises *where* bytes live; a client-side scheduler decides
// *when and against which copy* each sub-request is charged (Tavakoli et
// al., "Client-side Straggler-Aware I/O Scheduler for Object-based Parallel
// File Systems").  This bench replays the Fig. 7 mixed-size and Fig. 9
// mixed-process-count IOR workloads — plus a skewed variant whose size mix
// is heterogeneous *within* each iteration — under DEF and MHA, each
// dispatched through all three policies (FCFS baseline, load-aware windowed
// SJF, hedged reads), and reports mean/p50/p99 request latency plus the
// schedulers' decision counters.
//
// Expected shape: under DEF every request stripes equally across tiers, so
// the HServers straggle every read — hedging to the lightly-loaded SSD tier
// cuts p99 hard, and load-aware reordering trims mean latency on mixed
// sizes.  Under MHA the layout has already evened the tiers, so scheduling
// adds little — layout fixes the systematic imbalance, scheduling the
// residual stragglers.
#include "bench_common.hpp"

#include "common/units.hpp"
#include "sched/scheduler.hpp"
#include "workloads/dlpipe.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

namespace {

void run_case(const std::string& workload_label, const trace::Trace& trace,
              common::OpType op) {
  std::printf("\n--- %s (%s) ---\n", workload_label.c_str(), common::to_string(op));
  std::printf("%-8s %-12s %9s %10s %10s %10s  %s\n", "scheme", "scheduler", "MiB/s",
              "mean(ms)", "p50(ms)", "p99(ms)", "decisions");

  const auto cluster = bench::paper_cluster();
  const std::vector<const char*> scheme_names = {"DEF", "MHA"};
  const std::vector<sched::SchedulerKind> kinds = sched::all_scheduler_kinds();

  struct Cell {
    double bandwidth = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double wall = 0.0;
    sched::SchedulerMetrics metrics;
    bool ok = false;
  };
  // Each (scheme, policy) cell replays on its own PFS — independent work,
  // fanned out on the pool.  Printing (and the FCFS-baseline deltas, which
  // read a sibling cell) happens after the join in presentation order.
  auto cells = exec::default_pool().parallel_map(
      scheme_names.size() * kinds.size(), [&](std::size_t index) {
        const char* scheme_name = scheme_names[index / kinds.size()];
        const sched::SchedulerKind kind = kinds[index % kinds.size()];
        Cell cell;
        const double start = bench::wall_now();
        auto scheme = std::string(scheme_name) == "DEF" ? layouts::make_def()
                                                        : layouts::make_mha();
        auto scheduler = sched::make_scheduler(kind);
        workloads::ReplayOptions options;
        options.scheduler = scheduler.get();
        auto result = workloads::run_scheme(*scheme, cluster, trace, options);
        if (!result.is_ok()) {
          std::fprintf(stderr, "[ext_scheduler] %s/%s failed: %s\n", scheme_name,
                       to_string(kind), result.status().to_string().c_str());
          return cell;
        }
        cell.bandwidth = result->aggregate_bandwidth / static_cast<double>(common::kMiB);
        cell.mean = result->request_latency.mean();
        cell.p50 = result->latency_p50;
        cell.p99 = result->latency_p99;
        cell.metrics = result->scheduler_metrics;
        cell.wall = bench::wall_now() - start;
        cell.ok = true;
        return cell;
      });

  for (std::size_t s = 0; s < scheme_names.size(); ++s) {
    double fcfs_p99 = 0.0;
    double fcfs_mean = 0.0;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const sched::SchedulerKind kind = kinds[k];
      const Cell& cell = cells[s * kinds.size() + k];
      if (!cell.ok) continue;
      if (kind == sched::SchedulerKind::kFcfs) {
        fcfs_p99 = cell.p99;
        fcfs_mean = cell.mean;
      }
      const auto& m = cell.metrics;
      char decisions[160];
      std::snprintf(decisions, sizeof(decisions),
                    "stragglers=%llu hedges=%llu/%llu won/lost, reorders=%llu "
                    "deferrals=%llu",
                    static_cast<unsigned long long>(m.straggler_detections),
                    static_cast<unsigned long long>(m.hedges_won),
                    static_cast<unsigned long long>(m.hedges_lost),
                    static_cast<unsigned long long>(m.reorders),
                    static_cast<unsigned long long>(m.deferrals));
      const double p99_delta = fcfs_p99 > 0.0 ? (cell.p99 / fcfs_p99 - 1.0) * 100.0 : 0.0;
      const double mean_delta =
          fcfs_mean > 0.0 ? (cell.mean / fcfs_mean - 1.0) * 100.0 : 0.0;
      std::printf("%-8s %-12s %9.1f %10.3f %10.3f %10.3f  %s", scheme_names[s],
                  to_string(kind), cell.bandwidth, cell.mean * 1e3, cell.p50 * 1e3,
                  cell.p99 * 1e3, decisions);
      if (kind != sched::SchedulerKind::kFcfs && fcfs_p99 > 0.0) {
        std::printf("  [mean %+.1f%% p99 %+.1f%% vs fcfs]", mean_delta, p99_delta);
      }
      std::printf("\n");
      bench::report().add(
          bench::report().size(),
          bench::CellRecord{workload_label + " / " + scheme_names[s], to_string(kind),
                            cell.wall, cell.p99, cell.bandwidth});
    }
  }
}

trace::Trace mixed_sizes_case(common::OpType op) {
  workloads::IorMixedSizesConfig config;
  config.num_procs = bench::scaled_procs(32);
  config.request_sizes = {128_KiB, 256_KiB};
  config.file_size = bench::scaled_bytes(256_MiB);
  config.op = op;
  config.file_name = "sched.ior";
  config.seed = 7;
  return workloads::ior_mixed_sizes(config);
}

// Within-iteration skew: every iteration half the ranks issue 64 KiB and
// half 1 MiB, so the congestion window the scheduler plans over is actually
// heterogeneous — the case where windowed SJF has something to sort.
trace::Trace skewed_batch_case(common::OpType op) {
  workloads::IorMixedSizesConfig config;
  config.num_procs = bench::scaled_procs(32);
  config.request_sizes = {64_KiB, 1_MiB};
  config.file_size = bench::scaled_bytes(512_MiB);
  config.op = op;
  config.per_rank_sizes = true;
  config.file_name = "sched_skew.ior";
  config.seed = 11;
  return workloads::ior_mixed_sizes(config);
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("ext_scheduler", argc, argv);
  std::printf("=== Extension: client-side I/O schedulers under DEF vs MHA ===\n");
  std::printf("policies: fcfs (baseline) | load-aware (windowed SJF + straggler "
              "deferral) | hedged-read (SSD replica duplicates)\n");

  // Fig. 7 shape: 32 procs, mixed 128+256 KiB requests.
  run_case("Fig. 7 mix 128+256 KiB, 32 procs", mixed_sizes_case(common::OpType::kRead),
           common::OpType::kRead);
  run_case("Fig. 7 mix 128+256 KiB, 32 procs", mixed_sizes_case(common::OpType::kWrite),
           common::OpType::kWrite);

  // Within-iteration skew: the load-aware showcase (heterogeneous batches).
  run_case("Skewed batch 64 KiB + 1 MiB per iter, 32 procs",
           skewed_batch_case(common::OpType::kRead), common::OpType::kRead);

  // DL input pipeline: epoch-shuffled 128 KiB sample reads (ResNet-style).
  // Every training step is one synchronous iteration of small random reads,
  // so this is the shape the batched request path coalesces hardest — and a
  // random-access pattern neither scheduler has seen above.
  {
    workloads::DlPipeConfig config =
        workloads::dl_resnet(bench::scaled_procs(32), bench::scaled_bytes(128_MiB), 5);
    run_case("DL pipeline 128 KiB epoch-shuffled, 32 procs",
             workloads::dl_pipeline(config), common::OpType::kRead);
  }

  // Fig. 9 shape: mixed process counts, 256 KiB requests.
  {
    workloads::IorMixedProcsConfig config;
    config.process_counts = {bench::scaled_procs(16), bench::scaled_procs(64)};
    config.request_size = 256_KiB;
    config.file_size = bench::scaled_bytes(256_MiB);
    config.op = common::OpType::kRead;
    config.file_name = "sched9.ior";
    config.seed = 9;
    run_case("Fig. 9 mix 16+64 procs, 256 KiB", workloads::ior_mixed_procs(config),
             common::OpType::kRead);
  }

  // One full decision report: the hedger under DEF, where the SSD tier has
  // spare capacity and hedging should pay.
  {
    auto scheme = layouts::make_def();
    auto scheduler = sched::make_scheduler(sched::SchedulerKind::kHedgedRead);
    workloads::ReplayOptions options;
    options.scheduler = scheduler.get();
    auto result = workloads::run_scheme(*scheme, bench::paper_cluster(),
                                        mixed_sizes_case(common::OpType::kRead), options);
    if (result.is_ok()) {
      std::printf("\nhedged-read decision report under DEF (read mix):\n%s",
                  scheduler->stats_table().c_str());
    }
  }
  return bench::finish();
}
