// Extension bench: overload resilience under chaos — does the guard turn a
// goodput collapse into graceful degradation?
//
// Sweeps the chaos cell's offered-load multiplier through and past
// saturation (every HServer browns out for good shortly after start, two of
// them also drop sub-requests).  Each load runs twice on identical worlds:
// *naive* (no guard; the per-tier completion allowances are accounting
// only) and *guarded* (admission gate shedding batch first, per-server
// circuit breakers rerouting reads off the browned HServers, a retry-token
// budget, and deadline-propagated sibling cancellation).
//
// Expected shape: naive goodput collapses as load grows — every byte is
// still delivered, but late, so the on-time fraction goes to zero while
// queues stretch the makespan.  Guarded goodput stays near the low-load
// plateau: batch traffic is shed at admission (≥90% of all shed requests),
// interactive reads ride the SServers, and abandoned work is cancelled
// before it loads the servers.  The acceptance gates at the bottom encode
// exactly that contrast and fail the binary (non-zero exit) if it breaks.
#include "bench_common.hpp"

#include "common/units.hpp"
#include "guard/chaos.hpp"

using namespace mha;

namespace {

struct TimedCell {
  guard::ChaosCellResult cell;
  double wall = 0.0;
  bool ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  bench::init("ext_overload", argc, argv);
  std::printf("=== Extension: overload resilience (naive vs guarded) under chaos ===\n");
  const auto allowances = guard::chaos_allowances();
  std::printf("chaos: all 6 HServers brown out at t=0.02s (x6 service) and never "
              "recover; S1/S4 drop 25%% of sub-requests\n");
  std::printf("allowances: batch=%.2fs normal=%.2fs interactive=%.2fs (goodput = "
              "on-time bytes / makespan)\n\n",
              allowances[guard::kTierBatch], allowances[guard::kTierNormal],
              allowances[guard::kTierInteractive]);

  const std::vector<double> loads = {0.5, 1.0, 1.5, 2.0, 3.0};

  // Two independent worlds per load (naive, guarded); cells land by index,
  // so the sweep is thread-count invariant.
  auto cells = exec::default_pool().parallel_map(loads.size() * 2, [&](std::size_t i) {
    guard::ChaosOptions options;
    options.scale = bench::options().scale;
    options.load = loads[i / 2];
    options.guarded = (i % 2) == 1;
    const double start = bench::wall_now();
    TimedCell timed;
    auto cell = guard::run_chaos_cell(options);
    timed.wall = bench::wall_now() - start;
    if (!cell.is_ok()) {
      std::fprintf(stderr, "[ext_overload] load=%.1f %s failed: %s\n", options.load,
                   options.guarded ? "guarded" : "naive",
                   cell.status().to_string().c_str());
      return timed;
    }
    timed.cell = std::move(*cell);
    timed.ok = true;
    return timed;
  });

  std::printf("%-6s | %10s %10s %8s | %10s %10s %8s %8s %6s %12s %8s %12s\n", "load",
              "naiveMiB/s", "good", "late", "guardMiB/s", "good", "shed", "batch%",
              "fail", "brk(o/h/c)", "reroute", "tokens(g/d)");
  for (std::size_t l = 0; l < loads.size(); ++l) {
    const TimedCell& naive = cells[l * 2];
    const TimedCell& guarded = cells[l * 2 + 1];
    if (!naive.ok || !guarded.ok) continue;
    const double batch_share =
        guarded.cell.shed > 0
            ? 100.0 * static_cast<double>(guarded.cell.shed_by_tier[guard::kTierBatch]) /
                  static_cast<double>(guarded.cell.shed)
            : 0.0;
    // Breaker life-cycle and retry-token budget, straight from the guard
    // ledger: how often servers tripped open, probed half-open and recovered,
    // and how hard the retry budget was hit (denied = exhaustion events).
    const guard::GuardMetrics& gm = guarded.cell.guard_metrics;
    char breaker[32];
    std::snprintf(breaker, sizeof(breaker), "%llu/%llu/%llu",
                  static_cast<unsigned long long>(gm.breaker_opens),
                  static_cast<unsigned long long>(gm.breaker_half_opens),
                  static_cast<unsigned long long>(gm.breaker_closes));
    char tokens[32];
    std::snprintf(tokens, sizeof(tokens), "%llu/%llu",
                  static_cast<unsigned long long>(gm.retry_tokens_granted),
                  static_cast<unsigned long long>(gm.retry_tokens_denied));
    std::printf("%-6.1f | %10.1f %10.1f %8zu | %10.1f %10.1f %8zu %7.1f%% %6zu %12s %8llu %12s\n",
                loads[l], naive.cell.throughput_mib_s, naive.cell.goodput_mib_s,
                naive.cell.late, guarded.cell.throughput_mib_s,
                guarded.cell.goodput_mib_s, guarded.cell.shed, batch_share,
                guarded.cell.failed, breaker,
                static_cast<unsigned long long>(gm.breaker_reroutes), tokens);
    bench::report().add(l * 2 + 0,
                        bench::CellRecord{"load " + std::to_string(loads[l]), "naive",
                                          naive.wall, naive.cell.makespan,
                                          naive.cell.goodput_mib_s});
    bench::report().add(l * 2 + 1,
                        bench::CellRecord{"load " + std::to_string(loads[l]), "guarded",
                                          guarded.wall, guarded.cell.makespan,
                                          guarded.cell.goodput_mib_s});
  }

  // The detailed exhibit: what the guard decided at the top load.
  const TimedCell& top = cells[cells.size() - 1];
  if (top.ok) {
    std::printf("\nguard ledger at load %.1f:\n%s", loads.back(),
                top.cell.guard_metrics.table().c_str());
  }

  // Acceptance gates — the graceful-degradation contract, enforced.
  int failures = 0;
  const TimedCell& naive_low = cells[0];
  const TimedCell& naive_top = cells[cells.size() - 2];
  const TimedCell& guard_low = cells[1];
  const TimedCell& guard_top = cells[cells.size() - 1];
  if (naive_low.ok && naive_top.ok && guard_low.ok && guard_top.ok) {
    const double plateau = guard_low.cell.goodput_mib_s;
    const bool collapse =
        naive_top.cell.goodput_mib_s < 0.5 * naive_low.cell.goodput_mib_s;
    const bool graceful = guard_top.cell.goodput_mib_s >= 0.8 * plateau;
    const double batch_share =
        guard_top.cell.shed > 0
            ? static_cast<double>(guard_top.cell.shed_by_tier[guard::kTierBatch]) /
                  static_cast<double>(guard_top.cell.shed)
            : 0.0;
    const bool shed_ordered = guard_top.cell.shed > 0 && batch_share >= 0.9;
    std::printf("\nacceptance:\n");
    std::printf("  naive collapse   (top < 0.5x low-load goodput): %.1f vs %.1f -> %s\n",
                naive_top.cell.goodput_mib_s, naive_low.cell.goodput_mib_s,
                collapse ? "PASS" : "FAIL");
    std::printf("  guarded graceful (top >= 0.8x plateau):         %.1f vs %.1f -> %s\n",
                guard_top.cell.goodput_mib_s, plateau, graceful ? "PASS" : "FAIL");
    std::printf("  shed order       (>= 90%% batch tier):           %.1f%% of %zu -> %s\n",
                100.0 * batch_share, guard_top.cell.shed, shed_ordered ? "PASS" : "FAIL");
    failures += !collapse + !graceful + !shed_ordered;
  } else {
    std::fprintf(stderr, "[ext_overload] acceptance cells missing\n");
    ++failures;
  }
  return bench::finish(failures == 0 ? 0 : 1);
}
