// Fig. 7: IOR bandwidth with mixed request sizes.
//
// Paper setup: 32 processes, random requests over a 16 GiB shared file,
// size mixes "16" (uniform baseline), "128+256", "256+512", "512+1024"
// (KiB), read and write, on 6 HServers + 2 SServers.  The file is scaled to
// 256 MiB per case (shape-preserving; see EXPERIMENTS.md).
//
// Expected shape: MHA ~= HARL on the uniform "16" case (MHA degrades to
// HARL), MHA best on every mixed case, both heterogeneity-aware schemes
// above DEF/AAL, bandwidth rising with request size.
#include "bench_common.hpp"

#include "common/units.hpp"
#include "core/cost_model.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

namespace {

trace::Trace make_case(const std::vector<common::ByteCount>& sizes, common::OpType op) {
  workloads::IorMixedSizesConfig config;
  config.num_procs = bench::scaled_procs(32);
  config.request_sizes = sizes;
  config.file_size = bench::scaled_bytes(256_MiB);
  config.op = op;
  config.file_name = "fig7.ior";
  config.seed = 7;
  return workloads::ior_mixed_sizes(config);
}

void print_cost_params() {
  const core::CostParams p = core::CostParams::from_cluster(bench::paper_cluster());
  std::printf("Table I calibration (from simulator profiles):\n");
  std::printf("  M=%zu N=%zu  t=%.2f ns/B\n", p.num_hservers, p.num_sservers, p.t * 1e9);
  std::printf("  alpha_h=%.2f ms beta_h=%.2f ns/B (gamma_h=%.2f)\n", p.alpha_h * 1e3,
              p.beta_h * 1e9, p.gamma_h);
  std::printf("  alpha_sr=%.0f us beta_sr=%.2f ns/B  alpha_sw=%.0f us beta_sw=%.2f ns/B\n",
              p.alpha_sr * 1e6, p.beta_sr * 1e9, p.alpha_sw * 1e6, p.beta_sw * 1e9);
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("fig07_ior_mixed_sizes", argc, argv);
  std::printf("=== Fig. 7: IOR with mixed request sizes (32 procs, 6h:2s) ===\n");
  print_cost_params();

  const std::vector<std::pair<std::string, std::vector<common::ByteCount>>> mixes = {
      {"16", {16_KiB}},
      {"128+256", {128_KiB, 256_KiB}},
      {"256+512", {256_KiB, 512_KiB}},
      {"512+1024", {512_KiB, 1024_KiB}},
  };

  for (common::OpType op : {common::OpType::kRead, common::OpType::kWrite}) {
    std::vector<std::pair<std::string, trace::Trace>> cases;
    for (const auto& [label, sizes] : mixes) {
      cases.emplace_back(label, make_case(sizes, op));
    }
    bench::run_figure(std::string("Fig. 7 ") + (op == common::OpType::kRead ? "(a) read" : "(b) write"),
                      cases, bench::paper_cluster());
  }
  return bench::finish();
}
