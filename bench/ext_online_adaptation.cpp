// Extension bench (beyond the paper's figures): online/dynamic MHA.
//
// The paper's future work asks for "dynamic approaches to further improve
// the performance of those applications with unpredictable patterns".  This
// bench runs a two-phase application whose pattern changes mid-run — phase A
// is large concurrent reads, phase B small concurrent writes — under:
//
//   static DEF   - fixed stripes all the way
//   static MHA   - planned once from a phase-A profile (stale for phase B)
//   online MHA   - OnlineMha adapting between phases
//
// Expected shape: static MHA wins phase A but loses its edge in phase B;
// online MHA tracks both phases and wins overall.
#include "bench_common.hpp"

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/online.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

namespace {

std::vector<trace::TraceRecord> make_phase(common::OpType op, common::ByteCount size,
                                           int iterations, int procs,
                                           common::ByteCount base,
                                           common::ByteCount span, double t0,
                                           std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<trace::TraceRecord> out;
  for (int i = 0; i < iterations; ++i) {
    for (int rank = 0; rank < procs; ++rank) {
      trace::TraceRecord r;
      r.rank = rank;
      r.op = op;
      r.size = size;
      r.offset = base + rng.next_below(span / size) * size;
      r.t_start = t0 + i * 2.5e-3;
      out.push_back(r);
    }
  }
  return out;
}

/// Replays records through the shared file handle, feeding the adapter and
/// giving it a chance to adapt every `adapt_every` requests.  Adaptation
/// (migration) runs out-of-band: after a swap the server queues are reset,
/// as the re-layout happens during an application quiescent period.
void run(pfs::HybridPfs& pfs, io::MpiFile& file, core::OnlineMha* online,
         const std::vector<trace::TraceRecord>& records, std::size_t adapt_every = 1024) {
  std::vector<std::uint8_t> buffer;
  std::size_t count = 0;
  for (const trace::TraceRecord& r : records) {
    buffer.resize(r.size);
    if (r.op == common::OpType::kWrite) {
      (void)file.write_at(r.rank, r.offset, buffer.data(), r.size);
    } else {
      (void)file.read_at(r.rank, r.offset, buffer.data(), r.size);
    }
    if (online != nullptr) {
      online->observe(r);
      if (++count % adapt_every == 0) {
        auto adapted = online->maybe_adapt();
        if (adapted.is_ok() && *adapted) pfs.reset_clocks();
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("ext_online_adaptation", argc, argv);
  std::printf("=== Extension: online MHA vs static layouts on a pattern shift ===\n");
  const int procs = bench::scaled_procs(16);
  const int iterations = bench::scaled_count(128, 16);
  const auto phase_a =
      make_phase(common::OpType::kRead, 512_KiB, iterations, procs, 0, 128_MiB, 0.0, 21);
  const auto phase_b =
      make_phase(common::OpType::kWrite, 1_MiB, iterations, procs, 128_MiB, 32_MiB, 10.0, 22);
  const common::ByteCount extent = 160_MiB;

  struct Mode {
    const char* name;
    bool use_mha_static;
    bool use_online;
  };
  const std::vector<Mode> modes = {Mode{"static DEF", false, false},
                                   Mode{"static MHA (phase-A plan)", true, false},
                                   Mode{"online MHA", false, true}};
  struct ModeResult {
    double bw_a = 0.0;
    double bw_b = 0.0;
    double wall = 0.0;
    std::size_t adaptations = 0;
    bool has_online = false;
    bool ok = false;
  };
  // The three modes are independent end-to-end experiments (each owns its
  // PFS, MPI sim and interceptor), so they fan out on the pool; printing
  // keeps presentation order after the join.
  auto mode_results = exec::default_pool().parallel_map(
      modes.size(), [&](std::size_t index) {
    const Mode mode = modes[index];
    ModeResult out;
    const double start = bench::wall_now();
    pfs::PfsOptions pfs_options;
    pfs_options.store_data = false;
    pfs::HybridPfs pfs(bench::paper_cluster(), pfs_options);
    auto original = pfs.create_file("shift.dat");
    if (!original.is_ok()) return out;
    pfs.mds().extend(*original, extent);

    io::MpiSim mpi(procs);
    auto file = io::MpiFile::open(pfs, mpi, "shift.dat");
    if (!file.is_ok()) return out;

    std::unique_ptr<core::Redirector> static_redirector;
    std::unique_ptr<core::OnlineMha> online;
    if (mode.use_mha_static) {
      trace::Trace profile;
      profile.file_name = "shift.dat";
      profile.records = phase_a;  // plan from phase A only
      auto deployment = core::MhaPipeline::deploy(pfs, profile, {});
      if (!deployment.is_ok()) return out;
      static_redirector = std::move(deployment->redirector);
      file->set_interceptor(static_redirector.get());
    } else if (mode.use_online) {
      core::OnlineOptions options;
      options.window = 1024;
      options.min_records = 512;
      options.drift_threshold = 0.25;
      auto created = core::OnlineMha::create(pfs, "shift.dat", options);
      if (!created.is_ok()) return out;
      online = std::move(created).take();
      file->set_interceptor(online.get());
    }
    pfs.reset_stats();
    pfs.reset_clocks();
    mpi.reset();

    run(pfs, *file, online.get(), phase_a);
    const double t_a = mpi.max_time();
    run(pfs, *file, online.get(), phase_b);
    const double t_b = mpi.max_time() - t_a;

    common::ByteCount bytes_a = 0, bytes_b = 0;
    for (const auto& r : phase_a) bytes_a += r.size;
    for (const auto& r : phase_b) bytes_b += r.size;
    out.bw_a = static_cast<double>(bytes_a) / t_a / 1048576.0;
    out.bw_b = static_cast<double>(bytes_b) / t_b / 1048576.0;
    out.has_online = online != nullptr;
    out.adaptations = online != nullptr ? online->adaptations() : 0;
    out.wall = bench::wall_now() - start;
    out.ok = true;
    return out;
  });

  for (std::size_t m = 0; m < modes.size(); ++m) {
    const ModeResult& out = mode_results[m];
    if (!out.ok) return bench::finish(1);
    std::printf("%-28s phase A %7.1f MiB/s   phase B %7.1f MiB/s", modes[m].name,
                out.bw_a, out.bw_b);
    if (out.has_online) std::printf("   (%zu adaptations)", out.adaptations);
    std::printf("\n");
    bench::report().add(2 * m, bench::CellRecord{modes[m].name, "phase A", out.wall, 0.0,
                                                 out.bw_a});
    bench::report().add(2 * m + 1,
                        bench::CellRecord{modes[m].name, "phase B", 0.0, 0.0, out.bw_b});
  }
  return bench::finish();
}
