// Extension bench: layout x dispatch policy under injected faults.
//
// The paper evaluates MHA on a healthy cluster; this bench asks what happens
// when the cluster degrades.  A seeded FaultInjector scripts three fault
// levels (healthy / mild / harsh: transient drop probability, crash windows
// and brownouts scale together) and the Fig. 7-shaped IOR read mix is
// replayed under {DEF, MHA} x {fcfs, hedged-read}, with byte-level
// verification on so every degraded read is checked against the shadow copy.
//
// Expected shape: faults hurt DEF+fcfs most — every offline HServer stalls a
// full stripe and every transient retries against the same queue.  MHA's
// SServer-heavy regions shrink the blast radius, and hedging adds a second
// path around stragglers, so MHA+hedged should hold the highest bandwidth at
// every nonzero fault level with zero integrity failures.  Every cell also
// replays twice — batched dispatch and serial — on identically seeded worlds
// and asserts the numbers are bitwise-identical: vectorized dispatch must not
// change a single fault decision.  Everything is seeded: same binary, same
// numbers.
#include "bench_common.hpp"

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/placer.hpp"
#include "core/redirector.hpp"
#include "core/scrubber.hpp"
#include "fault/context.hpp"
#include "fault/injector.hpp"
#include "io/mpi_file.hpp"
#include "sched/scheduler.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

namespace {

struct FaultLevel {
  const char* label;
  double transient_probability;
  double crashes_per_server;
  double brownouts_per_server;
};

constexpr FaultLevel kLevels[] = {
    {"healthy", 0.00, 0.0, 0.0},
    {"mild", 0.02, 0.5, 0.5},
    {"harsh", 0.08, 1.0, 1.0},
};

constexpr std::uint64_t kFaultSeed = 0xFA17ULL;

trace::Trace read_mix() {
  workloads::IorMixedSizesConfig config;
  config.num_procs = bench::scaled_procs(16);
  config.request_sizes = {128_KiB, 256_KiB};
  config.file_size = bench::scaled_bytes(64_MiB);
  config.op = common::OpType::kRead;
  config.file_name = "fault.ior";
  config.seed = 7;
  return workloads::ior_mixed_sizes(config);
}

fault::RandomFaultConfig fault_config(const FaultLevel& level, std::size_t num_servers) {
  fault::RandomFaultConfig config;
  config.num_servers = num_servers;
  config.horizon = 5.0;
  config.transient_probability = level.transient_probability;
  config.crashes_per_server = level.crashes_per_server;
  config.mean_outage = 0.05;
  config.brownouts_per_server = level.brownouts_per_server;
  config.mean_brownout = 0.2;
  config.brownout_factor = 4.0;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("ext_fault", argc, argv);
  std::printf("=== Extension: fault injection — layout x dispatch under degraded service ===\n");
  std::printf("IOR read mix 128+256 KiB, 16 procs, 64 MiB file; byte-level verification on.\n");
  std::printf("levels: healthy | mild (2%% transient, 0.5 crash+brownout/server) | "
              "harsh (8%% transient, 1.0 crash+brownout/server)\n");

  const auto cluster = bench::paper_cluster();
  const std::size_t num_servers = cluster.num_hservers + cluster.num_sservers;
  const trace::Trace trace = read_mix();

  const std::vector<const char*> scheme_names = {"DEF", "MHA"};
  const std::vector<sched::SchedulerKind> kinds = {sched::SchedulerKind::kFcfs,
                                                   sched::SchedulerKind::kHedgedRead};
  const std::size_t num_levels = std::size(kLevels);
  const std::size_t cells_per_level = scheme_names.size() * kinds.size();

  struct Cell {
    double bandwidth = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double wall = 0.0;
    fault::FaultMetrics metrics;
    bool ok = false;
    bool corruption = false;
    bool batch_equal = false;  ///< batched dispatch == serial dispatch, exactly
  };
  // Every (level, scheme, policy) cell replays with its own PFS and a fresh
  // injector seeded identically, so cells are independent and the schedule
  // each one sees does not depend on the fan-out.  Each cell runs TWICE —
  // batched dispatch (the default request path) and serial — on identically
  // seeded worlds, and asserts the two are bitwise-identical: the vectorized
  // path must not change a single timing or fault decision even on a
  // degraded cluster.  Printing — including the DEF+fcfs baseline deltas,
  // which read a sibling cell — runs after the join in presentation order.
  auto cells = exec::default_pool().parallel_map(
      num_levels * cells_per_level, [&](std::size_t index) {
        const FaultLevel& level = kLevels[index / cells_per_level];
        const char* scheme_name =
            scheme_names[(index % cells_per_level) / kinds.size()];
        const sched::SchedulerKind kind = kinds[index % kinds.size()];
        Cell cell;
        const double start = bench::wall_now();

        struct Run {
          bool ok = false;
          bool corruption = false;
          double bandwidth = 0.0;
          double p50 = 0.0;
          double p99 = 0.0;
          std::size_t failed = 0;
          fault::FaultMetrics metrics;
        };
        const auto run_once = [&](bool batched) {
          Run run;
          auto scheme = std::string(scheme_name) == "DEF" ? layouts::make_def()
                                                          : layouts::make_mha();
          auto scheduler = sched::make_scheduler(kind);
          // Fresh injector per run, same seed: every run sees the identical
          // fault schedule and the whole sweep is reproducible.
          fault::FaultInjector injector(kFaultSeed);
          injector.add_random(fault_config(level, num_servers));
          fault::FaultContext context(injector);
          workloads::ReplayOptions options;
          options.verify_data = true;
          options.scheduler = scheduler.get();
          options.fault_context = &context;
          options.batch_requests = batched;
          auto result = workloads::run_scheme(*scheme, cluster, trace, options);
          if (!result.is_ok()) {
            run.corruption = result.status().code() == common::ErrorCode::kCorruption;
            std::fprintf(stderr, "[ext_fault] %s/%s/%s (%s) failed: %s\n", level.label,
                         scheme_name, to_string(kind), batched ? "batched" : "serial",
                         result.status().to_string().c_str());
            return run;
          }
          run.bandwidth = result->aggregate_bandwidth / static_cast<double>(common::kMiB);
          run.p50 = result->latency_p50;
          run.p99 = result->latency_p99;
          run.failed = result->failed_requests;
          run.metrics = injector.metrics();
          run.ok = true;
          return run;
        };

        const Run batched = run_once(true);
        const Run serial = run_once(false);
        cell.corruption = batched.corruption || serial.corruption;
        if (!batched.ok || !serial.ok) return cell;
        cell.bandwidth = batched.bandwidth;
        cell.p50 = batched.p50;
        cell.p99 = batched.p99;
        cell.metrics = batched.metrics;
        cell.batch_equal =
            batched.bandwidth == serial.bandwidth && batched.p50 == serial.p50 &&
            batched.p99 == serial.p99 && batched.failed == serial.failed &&
            batched.metrics.transient_errors == serial.metrics.transient_errors &&
            batched.metrics.retries == serial.metrics.retries &&
            batched.metrics.degraded_reads == serial.metrics.degraded_reads &&
            batched.metrics.offline_hits == serial.metrics.offline_hits &&
            batched.metrics.budget_exhausted == serial.metrics.budget_exhausted;
        cell.wall = bench::wall_now() - start;
        cell.ok = true;
        return cell;
      });

  std::size_t integrity_failures = 0;
  std::size_t batch_mismatches = 0;
  std::string harsh_mha_hedged_table;
  for (std::size_t l = 0; l < num_levels; ++l) {
    const FaultLevel& level = kLevels[l];
    std::printf("\n--- fault level: %s ---\n", level.label);
    std::printf("%-8s %-12s %9s %10s %10s  %s\n", "scheme", "scheduler", "MiB/s",
                "p50(ms)", "p99(ms)", "fault decisions");
    double def_fcfs_bandwidth = 0.0;
    for (std::size_t s = 0; s < scheme_names.size(); ++s) {
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        const char* scheme_name = scheme_names[s];
        const sched::SchedulerKind kind = kinds[k];
        const Cell& cell = cells[l * cells_per_level + s * kinds.size() + k];
        if (!cell.ok) {
          if (cell.corruption) ++integrity_failures;
          continue;
        }
        const fault::FaultMetrics& m = cell.metrics;
        if (std::string(scheme_name) == "DEF" && kind == sched::SchedulerKind::kFcfs) {
          def_fcfs_bandwidth = cell.bandwidth;
        }
        if (!cell.batch_equal) ++batch_mismatches;
        char decisions[200];
        std::snprintf(decisions, sizeof(decisions),
                      "batch==serial:%s transients=%llu retries=%llu degraded=%llu "
                      "offline-hits=%llu budget-exhausted=%llu",
                      cell.batch_equal ? "yes" : "NO",
                      static_cast<unsigned long long>(m.transient_errors),
                      static_cast<unsigned long long>(m.retries),
                      static_cast<unsigned long long>(m.degraded_reads),
                      static_cast<unsigned long long>(m.offline_hits),
                      static_cast<unsigned long long>(m.budget_exhausted));
        std::printf("%-8s %-12s %9.1f %10.3f %10.3f  %s", scheme_name, to_string(kind),
                    cell.bandwidth, cell.p50 * 1e3, cell.p99 * 1e3, decisions);
        if (def_fcfs_bandwidth > 0.0 &&
            !(std::string(scheme_name) == "DEF" && kind == sched::SchedulerKind::kFcfs)) {
          std::printf("  [%+.1f%% vs DEF+fcfs]",
                      (cell.bandwidth / def_fcfs_bandwidth - 1.0) * 100.0);
        }
        std::printf("\n");
        bench::report().add(
            bench::report().size(),
            bench::CellRecord{std::string(level.label) + " / " + scheme_name,
                              to_string(kind), cell.wall, cell.p99, cell.bandwidth});
        if (std::string(level.label) == "harsh" && std::string(scheme_name) == "MHA" &&
            kind == sched::SchedulerKind::kHedgedRead) {
          harsh_mha_hedged_table = m.table();
        }
      }
    }
  }

  if (!harsh_mha_hedged_table.empty()) {
    std::printf("\nfull fault-metrics table, MHA + hedged-read at harsh level:\n%s",
                harsh_mha_hedged_table.c_str());
  }
  std::printf("\nintegrity failures across the sweep: %zu (every degraded read is "
              "byte-checked against the shadow copy)\n",
              integrity_failures);
  std::printf("batched-vs-serial dispatch mismatches: %zu (every cell replayed both "
              "ways on identically seeded worlds; all numbers must match exactly)\n",
              batch_mismatches);

  // ------------------------------------------------------------------------
  // Seeded corruption & scrub sweep.  Runs single-threaded after the grid
  // join and touches no shared RNG, so stdout is byte-identical at any
  // --threads=N.  Phase 1 plants at-rest damage (bit flips, a torn write, a
  // misdirected squat) on a migrated file and expects the scrubber to detect
  // every faulty chunk and repair every DRT-reachable one from the surviving
  // copy.  Phase 2 injects write-path silent faults through the redirector:
  // the damaged bytes then exist only in the regions (the entries are
  // dirty), so the honest outcome is 100% detection, zero repair.
  std::printf("\n=== Seeded corruption & scrub sweep (deterministic, single-threaded) ===\n");
  bool sweep_ok = true;
  {
    pfs::HybridPfs pfs(cluster);
    auto file = pfs.create_file("sweep.dat");
    bool setup_ok = file.is_ok() && layouts::populate_file(pfs, *file, 1_MiB).is_ok();
    core::ReorganizePlan plan;
    plan.drt = core::Drt("sweep.dat");
    core::Region region;
    region.name = "sweep.dat.mha.r0";
    region.length = 1_MiB;
    plan.regions.push_back(region);
    setup_ok = setup_ok &&
               plan.drt.insert(core::DrtEntry{0, 512_KiB, region.name, 512_KiB}).is_ok() &&
               plan.drt.insert(core::DrtEntry{512_KiB, 512_KiB, region.name, 0}).is_ok();
    auto placed = core::Placer::apply(pfs, plan, {core::StripePair{64_KiB, 192_KiB}});
    auto plain = pfs.create_file("plain.dat");
    setup_ok = setup_ok && placed.is_ok() && plain.is_ok() &&
               layouts::populate_file(pfs, *plain, 64_KiB).is_ok();
    sweep_ok = sweep_ok && setup_ok;

    const auto count_faulty = [&] {
      std::size_t faulty = 0;
      for (const std::string& name : pfs.mds().list_files()) {
        auto id = pfs.open(name);
        if (!id.is_ok()) continue;
        for (std::size_t s = 0; s < pfs.num_servers(); ++s) {
          const pfs::ExtentStore* store = pfs.data_server(s).store(*id);
          if (store != nullptr) {
            faulty += store->verify_chunks([](const pfs::ExtentStore::ChunkFault&) {});
          }
        }
      }
      return faulty;
    };

    // --- phase 1: at-rest damage, one faulty chunk per planted fault.
    // Two rounds so each damaged chunk's repair source is intact: round A
    // rots the origin everywhere (regions are the authoritative copy),
    // round B rots the regions (repaired from the just-healed origin).
    // Rotting both copies of the same range at once is double-replica loss —
    // honestly unrepairable, and not what this sweep measures.
    common::Rng rng(kFaultSeed);
    constexpr common::ByteCount kChunk = pfs::ExtentStore::kChecksumChunk;
    const auto flip_every_store = [&](common::FileId id, std::size_t& counter) {
      for (std::size_t s = 0; s < pfs.num_servers(); ++s) {
        pfs::ExtentStore* store = pfs.data_server(s).mutable_store(id);
        if (store == nullptr) continue;
        // A seeded position inside chunk 0: exactly one faulty chunk per
        // store, at a run-to-run stable but non-trivial byte.
        const common::ByteCount span = std::min<common::ByteCount>(store->stored_bytes(), kChunk);
        auto at = store->nth_stored_byte(rng.next_below(span));
        if (at.is_ok() && store->corrupt_flip(*at)) ++counter;
      }
    };

    fault::FaultInjector sweep_injector(kFaultSeed);
    core::Scrubber scrubber(pfs);
    scrubber.attach_drt(&plan.drt);
    scrubber.set_metrics(&sweep_injector.metrics());
    const auto run_round = [&](const char* label, std::size_t repairable,
                               std::size_t unrepairable) {
      auto round = scrubber.scrub_all();
      std::printf("at-rest %s: planted %zu repairable + %zu unrepairable faults\n", label,
                  repairable, unrepairable);
      if (!round.is_ok()) {
        sweep_ok = false;
        return;
      }
      std::printf("at-rest %s: scrub found %zu faulty chunks, repaired %zu, "
                  "unrepairable %zu (%zu bytes rewritten)\n",
                  label, round->chunks_faulty, round->repaired, round->unrepairable,
                  static_cast<std::size_t>(round->bytes_rewritten));
      sweep_ok = sweep_ok && round->chunks_faulty == repairable + unrepairable &&
                 round->repaired == repairable && round->unrepairable == unrepairable;
      // Independent check: the only damage left is what scrub could not
      // reach (the uncovered plain.dat flip).
      sweep_ok = sweep_ok && count_faulty() == unrepairable;
    };

    // Round A: bit-rot + a torn write on the origin, bit-rot on plain.dat.
    std::size_t round_a_repairable = 0;
    std::size_t round_a_unrepairable = 0;
    flip_every_store(*file, round_a_repairable);
    flip_every_store(*plain, round_a_unrepairable);
    pfs::ExtentStore* origin0 = pfs.data_server(0).mutable_store(*file);
    if (origin0 != nullptr && origin0->stored_bytes() > kChunk + 266) {
      std::vector<std::uint8_t> torn_payload(256, 0xEE);
      origin0->write_torn(kChunk + 10, torn_payload.data(), torn_payload.size(), 100);
      ++round_a_repairable;  // chunk 1, distinct from the chunk-0 flip
    }
    run_round("round A (origin)", round_a_repairable, round_a_unrepairable);

    // Round B: bit-rot + a misdirected squat on the regions; plain.dat's
    // flip is still there and still honestly unrepairable.
    std::size_t round_b_repairable = 0;
    auto region_id = pfs.open(region.name);
    if (region_id.is_ok()) {
      flip_every_store(*region_id, round_b_repairable);
      pfs::ExtentStore* squat_store = pfs.data_server(0).mutable_store(*region_id);
      if (squat_store != nullptr) {
        std::vector<std::uint8_t> squat(64, 0xDD);
        squat_store->write_unchecked(squat_store->end_offset() + 2 * kChunk, squat.data(),
                                     squat.size());
        ++round_b_repairable;  // orphan chunk, evicted to zeros
      }
    }
    run_round("round B (regions)", round_b_repairable, round_a_unrepairable);

    // --- phase 2: write-path silent faults through the redirector ---
    auto redirector = core::Redirector::create(pfs, plan.drt);
    if (redirector.is_ok()) {
      fault::FaultInjector write_injector(kFaultSeed);
      for (std::size_t s = 0; s < pfs.num_servers(); ++s) {
        fault::FaultWindow w;
        w.server = s;
        w.kind = s % 2 == 0 ? fault::FaultKind::kBitRot : fault::FaultKind::kTornWrite;
        w.start = 0.0;
        w.end = 1.0e9;
        w.probability = 1.0;
        write_injector.add(w);
      }
      fault::FaultContext write_context(write_injector);
      pfs.set_fault_context(&write_context);
      io::MpiSim mpi(1);
      auto handle = io::MpiFile::open(pfs, mpi, "sweep.dat");
      if (handle.is_ok()) {
        handle->set_interceptor(&*redirector);
        std::vector<std::uint8_t> payload(64_KiB, 0xA5);
        const bool first = handle->write_at(0, 100_KiB, payload.data(), payload.size()).is_ok();
        const bool second = handle->write_at(0, 600_KiB, payload.data(), payload.size()).is_ok();
        sweep_ok = sweep_ok && first && second;
      } else {
        sweep_ok = false;
      }
      pfs.set_fault_context(nullptr);
      const fault::FaultMetrics& wm = write_injector.metrics();
      std::printf("write-path: injected bit-rot=%llu torn=%llu into redirected writes\n",
                  static_cast<unsigned long long>(wm.bitrot_injected),
                  static_cast<unsigned long long>(wm.torn_injected));
      sweep_ok = sweep_ok && wm.bitrot_injected + wm.torn_injected > 0;

      // The redirector marked the overwritten entries dirty; snapshot its DRT
      // so the scrubber refuses the stale origin copy instead of rolling the
      // new (damaged) data back.
      core::Scrubber verifier(pfs);
      verifier.attach_drt(&redirector->drt());
      verifier.set_metrics(&sweep_injector.metrics());
      auto post_write = verifier.scrub_all();
      if (post_write.is_ok()) {
        std::printf("write-path: scrub found %zu faulty chunks, repaired %zu, "
                    "unrepairable %zu (newest bytes live only in dirty regions)\n",
                    post_write->chunks_faulty, post_write->repaired,
                    post_write->unrepairable);
        sweep_ok = sweep_ok && post_write->chunks_faulty > 0 &&
                   post_write->chunks_faulty ==
                       post_write->unrepairable + post_write->repaired &&
                   count_faulty() == post_write->unrepairable;
      } else {
        sweep_ok = false;
      }
    } else {
      sweep_ok = false;
    }

    std::printf("shared fault ledger after both scrub phases:\n%s",
                sweep_injector.metrics().table().c_str());
  }
  std::printf("corruption sweep: %s (every fault detected; every DRT-reachable "
              "chunk repaired)\n",
              sweep_ok ? "PASS" : "FAIL");

  return bench::finish(integrity_failures == 0 && batch_mismatches == 0 && sweep_ok ? 0 : 1);
}
