// Extension bench: layout x dispatch policy under injected faults.
//
// The paper evaluates MHA on a healthy cluster; this bench asks what happens
// when the cluster degrades.  A seeded FaultInjector scripts three fault
// levels (healthy / mild / harsh: transient drop probability, crash windows
// and brownouts scale together) and the Fig. 7-shaped IOR read mix is
// replayed under {DEF, MHA} x {fcfs, hedged-read}, with byte-level
// verification on so every degraded read is checked against the shadow copy.
//
// Expected shape: faults hurt DEF+fcfs most — every offline HServer stalls a
// full stripe and every transient retries against the same queue.  MHA's
// SServer-heavy regions shrink the blast radius, and hedging adds a second
// path around stragglers, so MHA+hedged should hold the highest bandwidth at
// every nonzero fault level with zero integrity failures.  Everything is
// seeded: same binary, same numbers.
#include "bench_common.hpp"

#include "common/units.hpp"
#include "fault/context.hpp"
#include "fault/injector.hpp"
#include "sched/scheduler.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

namespace {

struct FaultLevel {
  const char* label;
  double transient_probability;
  double crashes_per_server;
  double brownouts_per_server;
};

constexpr FaultLevel kLevels[] = {
    {"healthy", 0.00, 0.0, 0.0},
    {"mild", 0.02, 0.5, 0.5},
    {"harsh", 0.08, 1.0, 1.0},
};

constexpr std::uint64_t kFaultSeed = 0xFA17ULL;

trace::Trace read_mix() {
  workloads::IorMixedSizesConfig config;
  config.num_procs = bench::scaled_procs(16);
  config.request_sizes = {128_KiB, 256_KiB};
  config.file_size = bench::scaled_bytes(64_MiB);
  config.op = common::OpType::kRead;
  config.file_name = "fault.ior";
  config.seed = 7;
  return workloads::ior_mixed_sizes(config);
}

fault::RandomFaultConfig fault_config(const FaultLevel& level, std::size_t num_servers) {
  fault::RandomFaultConfig config;
  config.num_servers = num_servers;
  config.horizon = 5.0;
  config.transient_probability = level.transient_probability;
  config.crashes_per_server = level.crashes_per_server;
  config.mean_outage = 0.05;
  config.brownouts_per_server = level.brownouts_per_server;
  config.mean_brownout = 0.2;
  config.brownout_factor = 4.0;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("ext_fault", argc, argv);
  std::printf("=== Extension: fault injection — layout x dispatch under degraded service ===\n");
  std::printf("IOR read mix 128+256 KiB, 16 procs, 64 MiB file; byte-level verification on.\n");
  std::printf("levels: healthy | mild (2%% transient, 0.5 crash+brownout/server) | "
              "harsh (8%% transient, 1.0 crash+brownout/server)\n");

  const auto cluster = bench::paper_cluster();
  const std::size_t num_servers = cluster.num_hservers + cluster.num_sservers;
  const trace::Trace trace = read_mix();

  const std::vector<const char*> scheme_names = {"DEF", "MHA"};
  const std::vector<sched::SchedulerKind> kinds = {sched::SchedulerKind::kFcfs,
                                                   sched::SchedulerKind::kHedgedRead};
  const std::size_t num_levels = std::size(kLevels);
  const std::size_t cells_per_level = scheme_names.size() * kinds.size();

  struct Cell {
    double bandwidth = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double wall = 0.0;
    fault::FaultMetrics metrics;
    bool ok = false;
    bool corruption = false;
  };
  // Every (level, scheme, policy) cell replays with its own PFS and a fresh
  // injector seeded identically, so cells are independent and the schedule
  // each one sees does not depend on the fan-out.  Printing — including the
  // DEF+fcfs baseline deltas, which read a sibling cell — runs after the
  // join in presentation order.
  auto cells = exec::default_pool().parallel_map(
      num_levels * cells_per_level, [&](std::size_t index) {
        const FaultLevel& level = kLevels[index / cells_per_level];
        const char* scheme_name =
            scheme_names[(index % cells_per_level) / kinds.size()];
        const sched::SchedulerKind kind = kinds[index % kinds.size()];
        Cell cell;
        const double start = bench::wall_now();
        auto scheme = std::string(scheme_name) == "DEF" ? layouts::make_def()
                                                        : layouts::make_mha();
        auto scheduler = sched::make_scheduler(kind);
        // Fresh injector per run, same seed: every cell sees the identical
        // fault schedule and the whole sweep is reproducible.
        fault::FaultInjector injector(kFaultSeed);
        injector.add_random(fault_config(level, num_servers));
        fault::FaultContext context(injector);
        workloads::ReplayOptions options;
        options.verify_data = true;
        options.scheduler = scheduler.get();
        options.fault_context = &context;
        auto result = workloads::run_scheme(*scheme, cluster, trace, options);
        if (!result.is_ok()) {
          cell.corruption = result.status().code() == common::ErrorCode::kCorruption;
          std::fprintf(stderr, "[ext_fault] %s/%s/%s failed: %s\n", level.label,
                       scheme_name, to_string(kind),
                       result.status().to_string().c_str());
          return cell;
        }
        cell.bandwidth = result->aggregate_bandwidth / static_cast<double>(common::kMiB);
        cell.p50 = result->latency_p50;
        cell.p99 = result->latency_p99;
        cell.metrics = injector.metrics();
        cell.wall = bench::wall_now() - start;
        cell.ok = true;
        return cell;
      });

  std::size_t integrity_failures = 0;
  std::string harsh_mha_hedged_table;
  for (std::size_t l = 0; l < num_levels; ++l) {
    const FaultLevel& level = kLevels[l];
    std::printf("\n--- fault level: %s ---\n", level.label);
    std::printf("%-8s %-12s %9s %10s %10s  %s\n", "scheme", "scheduler", "MiB/s",
                "p50(ms)", "p99(ms)", "fault decisions");
    double def_fcfs_bandwidth = 0.0;
    for (std::size_t s = 0; s < scheme_names.size(); ++s) {
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        const char* scheme_name = scheme_names[s];
        const sched::SchedulerKind kind = kinds[k];
        const Cell& cell = cells[l * cells_per_level + s * kinds.size() + k];
        if (!cell.ok) {
          if (cell.corruption) ++integrity_failures;
          continue;
        }
        const fault::FaultMetrics& m = cell.metrics;
        if (std::string(scheme_name) == "DEF" && kind == sched::SchedulerKind::kFcfs) {
          def_fcfs_bandwidth = cell.bandwidth;
        }
        char decisions[200];
        std::snprintf(decisions, sizeof(decisions),
                      "transients=%llu retries=%llu degraded=%llu offline-hits=%llu "
                      "budget-exhausted=%llu",
                      static_cast<unsigned long long>(m.transient_errors),
                      static_cast<unsigned long long>(m.retries),
                      static_cast<unsigned long long>(m.degraded_reads),
                      static_cast<unsigned long long>(m.offline_hits),
                      static_cast<unsigned long long>(m.budget_exhausted));
        std::printf("%-8s %-12s %9.1f %10.3f %10.3f  %s", scheme_name, to_string(kind),
                    cell.bandwidth, cell.p50 * 1e3, cell.p99 * 1e3, decisions);
        if (def_fcfs_bandwidth > 0.0 &&
            !(std::string(scheme_name) == "DEF" && kind == sched::SchedulerKind::kFcfs)) {
          std::printf("  [%+.1f%% vs DEF+fcfs]",
                      (cell.bandwidth / def_fcfs_bandwidth - 1.0) * 100.0);
        }
        std::printf("\n");
        bench::report().add(
            bench::report().size(),
            bench::CellRecord{std::string(level.label) + " / " + scheme_name,
                              to_string(kind), cell.wall, cell.p99, cell.bandwidth});
        if (std::string(level.label) == "harsh" && std::string(scheme_name) == "MHA" &&
            kind == sched::SchedulerKind::kHedgedRead) {
          harsh_mha_hedged_table = m.table();
        }
      }
    }
  }

  if (!harsh_mha_hedged_table.empty()) {
    std::printf("\nfull fault-metrics table, MHA + hedged-read at harsh level:\n%s",
                harsh_mha_hedged_table.c_str());
  }
  std::printf("\nintegrity failures across the sweep: %zu (every degraded read is "
              "byte-checked against the shadow copy)\n",
              integrity_failures);
  return bench::finish(integrity_failures == 0 ? 0 : 1);
}
