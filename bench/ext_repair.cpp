// Extension bench: surviving permanent server loss.
//
// The paper's evaluation assumes servers never disappear; this bench kills
// one mid-workload and asks what the layout scheme can still serve.  A
// Fig. 7-shaped IOR read mix replays synchronously under {DEF, MHA+replica}
// x {no-kill, kill an HServer, kill an SServer}; at a mid-replay barrier the
// victim is marked dead in the membership view AND its extent stores are
// wiped (the bytes are gone, not merely unreachable), then the throttled
// rebuilder trickles the re-protection copy between the remaining
// iterations, charged to a batch-tier QoS job.
//
// Expected shape: DEF has one copy of everything, so any loss surfaces
// failed requests.  MHA+replica keeps a secondary copy of every hot (h > 0)
// region on a cost-model-chosen SServer, so an HServer loss is absorbed by
// failover reads with ZERO failures and byte-identical data; an SServer
// loss honestly loses only unreplicated cold regions (wrong bytes are never
// served).  After the rebuild commits, re-reading the workload touches no
// dead server at all.  Exit code gates pin all of this, plus crash+resume
// of the rebuild journal and a bounded victim p99.  Everything prints after
// the grid join: stdout is byte-identical at any --threads=N.
#include "bench_common.hpp"

#include <unistd.h>

#include <cstring>

#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "core/redirector.hpp"
#include "fault/journal.hpp"
#include "io/mpi_file.hpp"
#include "qos/job.hpp"
#include "repair/membership.hpp"
#include "repair/rebuilder.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

namespace {

struct KillCase {
  const char* label;
  int victim;  ///< server index; -1 = no kill
};

trace::Trace read_mix(int num_procs) {
  workloads::IorMixedSizesConfig config;
  config.num_procs = num_procs;
  config.request_sizes = {128_KiB, 256_KiB};
  config.file_size = bench::scaled_bytes(64_MiB);
  config.op = common::OpType::kRead;
  config.file_name = "repair.ior";
  config.seed = 11;
  return workloads::ior_mixed_sizes(config);
}

std::size_t count_iterations(const trace::Trace& trace) {
  std::size_t iterations = 0;
  double last = -1.0;
  for (const trace::TraceRecord& r : trace.records) {
    if (r.t_start != last) {
      ++iterations;
      last = r.t_start;
    }
  }
  return iterations;
}

std::string journal_path(std::size_t cell) {
  return "/tmp/ext_repair_" + std::to_string(::getpid()) + "_" +
         std::to_string(cell) + ".db";
}

struct Cell {
  bool ok = false;            ///< replay completed (failures tolerated)
  double bandwidth = 0.0;     ///< MiB/s
  double p99 = 0.0;           ///< seconds
  double makespan = 0.0;
  double wall = 0.0;
  std::size_t failed = 0;
  std::size_t shed = 0;
  pfs::FailoverStats failover;
  std::uint64_t final_epoch = 0;
  // Rebuild (MHA kill cells only).
  bool rebuild_ran = false;
  bool rebuild_done = false;
  common::ByteCount overlap_bytes = 0;  ///< copied while the workload ran
  repair::RebuildReport rebuild;
  common::ByteCount rebuild_job_bytes = 0;
  // Post-rebuild re-read of every traced range (content-plane oracle).
  std::size_t post_mismatches = 0;
  std::size_t post_unavailable = 0;
  std::uint64_t post_failover_reads = 0;
  std::string membership_table;
};

/// Re-reads every traced range through the deployment's interceptor and
/// scores it against the populate pattern (the workload is read-only, so
/// the pattern is the exact oracle).  Unavailable ranges are counted, never
/// scored: serving WRONG bytes is the one unforgivable outcome.
void verify_traced_ranges(pfs::HybridPfs& pfs, const layouts::Deployment& deployment,
                          const trace::Trace& trace, std::size_t& mismatches,
                          std::size_t& unavailable) {
  mismatches = 0;
  unavailable = 0;
  io::MpiSim mpi(1);
  auto handle = io::MpiFile::open(pfs, mpi, deployment.file_name);
  if (!handle.is_ok()) {
    mismatches = trace.records.size();
    return;
  }
  handle->set_interceptor(deployment.interceptor.get());
  std::vector<std::uint8_t> buffer;
  std::vector<std::uint8_t> want;
  for (const trace::TraceRecord& r : trace.records) {
    buffer.assign(r.size, 0);
    auto read = handle->read_at(0, r.offset, buffer.data(), r.size);
    if (!read.is_ok()) {
      ++unavailable;
      continue;
    }
    want.resize(r.size);
    layouts::populate_fill(r.offset, want.data(), r.size);
    if (std::memcmp(buffer.data(), want.data(), r.size) != 0) ++mismatches;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("ext_repair", argc, argv);
  std::printf("=== Extension: permanent server loss — membership, failover, online rebuild ===\n");

  const auto cluster = bench::paper_cluster();
  const int num_procs = bench::scaled_procs(16);
  const trace::Trace trace = read_mix(num_procs);
  const std::size_t iterations = count_iterations(trace);
  // Kill a third of the way in: enough replay before the loss to measure a
  // healthy phase, enough after that failover + the rebuild trickle overlap
  // real traffic.
  const std::size_t kill_barrier = std::max<std::size_t>(1, iterations / 3);
  const int first_sserver = static_cast<int>(cluster.num_hservers);

  std::printf("IOR read mix 128+256 KiB, %zu iterations; kill at barrier %zu; "
              "byte-level verification on.\n",
              iterations, kill_barrier);
  std::printf("victims: none | HServer 0 (hot stripes -> replica failover) | "
              "SServer %d (cold regions are unreplicated)\n",
              first_sserver);

  const KillCase kills[] = {
      {"no-kill", -1},
      {"kill-H0", 0},
      {"kill-S", first_sserver},
  };
  const std::vector<const char*> scheme_names = {"DEF", "MHA+rep"};
  const std::size_t num_kills = std::size(kills);
  const std::size_t num_cells = num_kills * scheme_names.size();

  // Every (kill, scheme) cell runs on a fresh world: own PFS, membership
  // view, rebuild journal.  Printing runs after the join in presentation
  // order, so stdout is byte-identical at any --threads=N.
  auto cells = exec::default_pool().parallel_map(num_cells, [&](std::size_t index) {
    const KillCase& kill = kills[index / scheme_names.size()];
    const bool is_mha = index % scheme_names.size() == 1;
    Cell cell;
    const double start = bench::wall_now();

    pfs::HybridPfs pfs(cluster);
    layouts::Deployment deployment;
    core::Redirector* redirector = nullptr;
    if (is_mha) {
      core::MhaOptions options;
      options.replicate_hot = true;
      auto scheme = layouts::make_mha(options);
      auto prepared = scheme->prepare(pfs, trace);
      if (!prepared.is_ok()) return cell;
      deployment = std::move(prepared).take();
      // MhaScheme's interceptor IS the pipeline's redirector; the rebuilder
      // needs the concrete type for DRT retargeting.
      redirector = static_cast<core::Redirector*>(deployment.interceptor.get());
    } else {
      auto scheme = layouts::make_def();
      auto prepared = scheme->prepare(pfs, trace);
      if (!prepared.is_ok()) return cell;
      deployment = std::move(prepared).take();
    }

    repair::Membership membership(pfs.num_servers());
    pfs.set_membership(&membership);

    // Tenants: the application is a normal-tier job owning every rank; the
    // rebuild is charged to a batch-tier job, the lowest QoS tier.
    qos::JobTable jobs;
    const common::JobId app_job = jobs.add("app", 1.0, qos::PriorityClass::kNormal);
    jobs.assign_ranks(app_job, 0, num_procs);
    const common::JobId rebuild_job =
        jobs.add("rebuild", 1.0, qos::PriorityClass::kBatch);

    const std::string journal = journal_path(index);
    std::remove(journal.c_str());
    repair::RebuildOptions rebuild_options;
    rebuild_options.chunk = 256_KiB;
    rebuild_options.rate = 64.0 * 1024.0 * 1024.0;  // 64 MiB/s virtual throttle
    rebuild_options.job = rebuild_job;
    std::optional<repair::Rebuilder> rebuilder;
    if (redirector != nullptr) {
      rebuilder.emplace(pfs, *redirector, membership, journal, rebuild_options);
    }

    // The kill fires at a quiescent barrier instant; afterwards every
    // barrier pumps the throttled rebuild between iterations.
    std::size_t barriers = 0;
    bool killed = false;
    bool repair_ok = true;
    workloads::ReplayOptions options;
    options.verify_data = true;
    options.tolerate_failures = true;
    options.jobs = &jobs;
    options.on_barrier = [&](common::Seconds now) {
      ++barriers;
      if (kill.victim >= 0 && !killed && barriers == kill_barrier) {
        repair::kill_server(membership, pfs,
                            static_cast<std::size_t>(kill.victim), now);
        killed = true;
        if (rebuilder.has_value()) {
          repair_ok = rebuilder->plan(now).is_ok() && repair_ok;
        }
      }
      if (rebuilder.has_value() && killed && rebuilder->planned() &&
          !rebuilder->done()) {
        repair_ok = rebuilder->step(now).is_ok() && repair_ok;
      }
    };

    auto result = workloads::replay(pfs, deployment, trace, options);
    if (!result.is_ok()) {
      std::fprintf(stderr, "[ext_repair] %s/%s failed: %s\n", kill.label,
                   is_mha ? "MHA+rep" : "DEF", result.status().to_string().c_str());
      return cell;
    }
    cell.bandwidth = result->aggregate_bandwidth / static_cast<double>(common::kMiB);
    cell.p99 = result->latency_p99;
    cell.makespan = result->makespan;
    cell.failed = result->failed_requests;
    cell.shed = result->shed_requests;
    cell.failover = pfs.failover_stats();

    // Drain the rebuild to completion after the workload (it keeps its
    // throttle only in virtual time).
    if (rebuilder.has_value() && killed && repair_ok) {
      cell.rebuild_ran = true;
      cell.overlap_bytes = rebuilder->report().bytes_copied;
      repair_ok = rebuilder->run_to_completion(result->makespan).is_ok() && repair_ok;
      cell.rebuild_done = repair_ok && rebuilder->done();
      cell.rebuild = rebuilder->report();
      for (std::size_t s = 0; s < pfs.num_servers(); ++s) {
        cell.rebuild_job_bytes +=
            pfs.data_server(s).sim().job_stats(rebuild_job).bytes_total();
      }
    }

    // Content-plane oracle: after everything settled, every traced range is
    // re-read and byte-checked.  With the rebuild committed, the surviving
    // copies must serve without touching the replica at all.
    pfs.reset_failover_stats();
    verify_traced_ranges(pfs, deployment, trace, cell.post_mismatches,
                         cell.post_unavailable);
    cell.post_failover_reads = pfs.failover_stats().failover_reads;
    cell.final_epoch = membership.epoch();
    cell.membership_table = membership.table();
    std::remove(journal.c_str());
    cell.wall = bench::wall_now() - start;
    cell.ok = repair_ok;
    return cell;
  });

  // ---------------------------------------------------------- printing ----
  bool gates_ok = true;
  const auto gate = [&](bool pass, const char* what) {
    std::printf("gate %-52s %s\n", what, pass ? "PASS" : "FAIL");
    gates_ok = gates_ok && pass;
  };

  for (std::size_t k = 0; k < num_kills; ++k) {
    std::printf("\n--- %s ---\n", kills[k].label);
    std::printf("%-8s %9s %9s %7s %6s %9s %8s %8s  %s\n", "scheme", "MiB/s",
                "p99(ms)", "failed", "shed", "failover", "unavail", "epoch",
                "post-rebuild re-read");
    for (std::size_t s = 0; s < scheme_names.size(); ++s) {
      const Cell& cell = cells[k * scheme_names.size() + s];
      char post[160];
      if (cell.rebuild_ran) {
        std::snprintf(post, sizeof(post),
                      "mismatch=%zu unavail=%zu failover=%llu | rebuild %s: "
                      "%zu prim + %zu rep, lost=%zu, %.1f MiB (%.1f overlapped), "
                      "job-charged %.1f MiB",
                      cell.post_mismatches, cell.post_unavailable,
                      static_cast<unsigned long long>(cell.post_failover_reads),
                      cell.rebuild_done ? "done" : "INCOMPLETE",
                      cell.rebuild.primaries_rebuilt, cell.rebuild.replicas_rebuilt,
                      cell.rebuild.lost_regions,
                      static_cast<double>(cell.rebuild.bytes_copied) / (1 << 20),
                      static_cast<double>(cell.overlap_bytes) / (1 << 20),
                      static_cast<double>(cell.rebuild_job_bytes) / (1 << 20));
      } else {
        std::snprintf(post, sizeof(post), "mismatch=%zu unavail=%zu failover=%llu",
                      cell.post_mismatches, cell.post_unavailable,
                      static_cast<unsigned long long>(cell.post_failover_reads));
      }
      std::printf("%-8s %9.1f %9.3f %7zu %6zu %9llu %8llu %8llu  %s\n",
                  scheme_names[s], cell.bandwidth, cell.p99 * 1e3, cell.failed,
                  cell.shed,
                  static_cast<unsigned long long>(cell.failover.failover_reads),
                  static_cast<unsigned long long>(cell.failover.unavailable),
                  static_cast<unsigned long long>(cell.final_epoch), post);
      bench::report().add(k * scheme_names.size() + s,
                          bench::CellRecord{kills[k].label, scheme_names[s],
                                            cell.wall, cell.makespan,
                                            cell.bandwidth});
    }
  }

  const Cell& def_nokill = cells[0];
  const Cell& mha_nokill = cells[1];
  const Cell& def_killh = cells[2];
  const Cell& mha_killh = cells[3];
  const Cell& def_kills = cells[4];
  const Cell& mha_kills = cells[5];

  std::printf("\nmembership after kill-H0 (MHA): %s", mha_killh.membership_table.c_str());

  std::printf("\n=== exit-code gates ===\n");
  gate(def_nokill.ok && mha_nokill.ok && def_killh.ok && mha_killh.ok &&
           def_kills.ok && mha_kills.ok,
       "all cells replayed (failures tolerated, no corruption)");
  gate(mha_nokill.failed == 0 && mha_nokill.failover.failover_reads == 0 &&
           mha_nokill.post_mismatches == 0 && mha_nokill.post_unavailable == 0,
       "MHA no-kill baseline is clean (no failover, no failures)");
  gate(mha_killh.failed == 0 && mha_killh.failover.unavailable == 0 &&
           mha_killh.failover.failover_reads > 0,
       "MHA kill-H: zero data loss, served by replica failover");
  gate(def_killh.failed > 0,
       "DEF kill-H contrast: unreplicated loss surfaces failures");
  gate(mha_killh.rebuild_done && mha_killh.rebuild.primaries_rebuilt > 0 &&
           mha_killh.rebuild.lost_regions == 0,
       "MHA kill-H: rebuild completed, no region lost");
  gate(mha_killh.post_mismatches == 0 && mha_killh.post_unavailable == 0 &&
           mha_killh.post_failover_reads == 0,
       "MHA kill-H: post-rebuild re-read needs no failover at all");
  gate(mha_killh.p99 <= 10.0 * std::max(mha_nokill.p99, 1e-9),
       "MHA kill-H: victim p99 within 10x of no-kill baseline");
  gate(mha_kills.post_mismatches == 0 && def_kills.post_mismatches == 0,
       "kill-S: wrong bytes are never served (loss is typed, not silent)");
  gate(def_kills.failed > 0, "DEF kill-S contrast: loss surfaces failures");

  // ------------------------------------------------------------------------
  // Crash + resume mid-rebuild (deterministic, single-threaded): the rebuild
  // journals its plan and per-task progress, so a crash at any point rolls
  // forward from a fresh Rebuilder over the same journal file.
  std::printf("\n=== rebuild crash + resume (deterministic, single-threaded) ===\n");
  bool crash_ok = true;
  {
    const char* points[] = {"copying", "switched-task-0"};
    for (std::size_t p = 0; p < std::size(points); ++p) {
      pfs::HybridPfs pfs(cluster);
      core::MhaOptions options;
      options.replicate_hot = true;
      auto scheme = layouts::make_mha(options);
      auto prepared = scheme->prepare(pfs, trace);
      if (!prepared.is_ok()) {
        crash_ok = false;
        continue;
      }
      layouts::Deployment deployment = std::move(prepared).take();
      auto* redirector = static_cast<core::Redirector*>(deployment.interceptor.get());
      repair::Membership membership(pfs.num_servers());
      pfs.set_membership(&membership);
      repair::kill_server(membership, pfs, 0, 1.0);

      const std::string journal = journal_path(100 + p);
      std::remove(journal.c_str());
      repair::RebuildOptions crashing;
      crashing.crash_at = [&](std::string_view at) { return at == points[p]; };
      {
        repair::Rebuilder rebuilder(pfs, *redirector, membership, journal, crashing);
        const bool crashed = !rebuilder.run_to_completion(1.0).is_ok();
        crash_ok = crash_ok && crashed;
      }
      repair::Rebuilder resumed(pfs, *redirector, membership, journal);
      const bool resumed_ok = resumed.resume(2.0).is_ok() &&
                              resumed.run_to_completion(2.0).is_ok() &&
                              resumed.done();
      std::size_t mismatches = 0;
      std::size_t unavailable = 0;
      pfs.reset_failover_stats();
      verify_traced_ranges(pfs, deployment, trace, mismatches, unavailable);
      fault::MigrationJournal reopened;
      const bool journal_clean = reopened.open(journal).is_ok() &&
                                 !reopened.active() &&
                                 reopened.phase() == fault::JournalPhase::kNone;
      std::printf("crash at %-16s resume=%s re-read: mismatch=%zu unavail=%zu "
                  "failover=%llu journal-clean=%s\n",
                  points[p], resumed_ok ? "ok" : "FAIL", mismatches, unavailable,
                  static_cast<unsigned long long>(
                      pfs.failover_stats().failover_reads),
                  journal_clean ? "yes" : "NO");
      crash_ok = crash_ok && resumed_ok && mismatches == 0 && unavailable == 0 &&
                 pfs.failover_stats().failover_reads == 0 && journal_clean;
      std::remove(journal.c_str());
    }
  }
  gate(crash_ok, "rebuild crashed mid-flight resumes to a clean commit");

  // ------------------------------------------------------------------------
  // Sequential double loss: epochs order the two kills, and each rebuild
  // re-homes onto whatever still survives.
  std::printf("\n=== sequential double loss (deterministic, single-threaded) ===\n");
  bool double_ok = true;
  {
    pfs::HybridPfs pfs(cluster);
    core::MhaOptions options;
    options.replicate_hot = true;
    auto scheme = layouts::make_mha(options);
    auto prepared = scheme->prepare(pfs, trace);
    double_ok = prepared.is_ok();
    if (double_ok) {
      layouts::Deployment deployment = std::move(prepared).take();
      auto* redirector = static_cast<core::Redirector*>(deployment.interceptor.get());
      repair::Membership membership(pfs.num_servers());
      pfs.set_membership(&membership);
      for (std::size_t round = 0; round < 2 && double_ok; ++round) {
        const std::size_t victim = round;  // HServer 0, then HServer 1
        repair::kill_server(membership, pfs, victim, 1.0 + static_cast<double>(round));
        const std::string journal = journal_path(200 + round);
        std::remove(journal.c_str());
        repair::Rebuilder rebuilder(pfs, *redirector, membership, journal);
        double_ok = rebuilder.run_to_completion(1.0 + static_cast<double>(round)).is_ok() &&
                    rebuilder.done() && rebuilder.report().lost_regions == 0;
        std::printf("round %zu: killed server %zu -> %s", round, victim,
                    rebuilder.report().table().c_str());
        std::remove(journal.c_str());
      }
      std::size_t mismatches = 0;
      std::size_t unavailable = 0;
      pfs.reset_failover_stats();
      verify_traced_ranges(pfs, deployment, trace, mismatches, unavailable);
      double_ok = double_ok && mismatches == 0 && unavailable == 0;
      std::printf("after both rebuilds: %sre-read: mismatch=%zu unavail=%zu "
                  "(%zu membership events)\n",
                  membership.table().c_str(), mismatches, unavailable,
                  membership.events().size());
    }
  }
  gate(double_ok, "two sequential losses both rebuilt, zero data loss");

  return bench::finish(gates_ok ? 0 : 1);
}
