#include "bench_report.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace mha::bench {

BenchReport::BenchReport(std::string bench_name) : name_(std::move(bench_name)) {}

void BenchReport::set_name(std::string bench_name) { name_ = std::move(bench_name); }

void BenchReport::add(std::size_t sequence, CellRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  cells_.emplace_back(sequence, std::move(record));
}

std::size_t BenchReport::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cells_.size();
}

namespace {

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

common::Status BenchReport::write_json(const std::string& path, std::size_t threads,
                                       double scale, double total_wall_seconds) const {
  std::vector<std::pair<std::size_t, CellRecord>> cells;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cells = cells_;
  }
  std::stable_sort(cells.begin(), cells.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return common::Status::io_error("bench report: cannot open " + path);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", escape_json(name_).c_str());
  std::fprintf(f, "  \"threads\": %zu,\n", threads);
  std::fprintf(f, "  \"scale\": %.6g,\n", scale);
  std::fprintf(f, "  \"total_wall_seconds\": %.6f,\n", total_wall_seconds);
  std::fprintf(f, "  \"cells\": [");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellRecord& c = cells[i].second;
    std::fprintf(f, "%s\n    {\"case\": \"%s\", \"variant\": \"%s\", "
                    "\"wall_seconds\": %.6f, \"virtual_seconds\": %.9f, "
                    "\"MiB_per_s\": %.3f",
                 i == 0 ? "" : ",", escape_json(c.case_label).c_str(),
                 escape_json(c.variant).c_str(), c.wall_seconds, c.virtual_seconds,
                 c.mib_per_s);
    if (c.ops_per_s > 0.0 || c.ns_per_op > 0.0) {
      std::fprintf(f, ", \"ops_per_s\": %.1f, \"ns_per_op\": %.2f", c.ops_per_s,
                   c.ns_per_op);
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  if (std::fclose(f) != 0) {
    return common::Status::io_error("bench report: write failed for " + path);
  }
  return common::Status::ok();
}

double wall_now() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

}  // namespace mha::bench
