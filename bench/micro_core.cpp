// Micro-benchmarks (google-benchmark) for the MHA core's hot paths, plus
// ablation tables for the design choices DESIGN.md calls out:
//   - concurrency term in the cost model on/off (MHA's extension over HARL)
//   - adaptive RSSD bounds vs HARL's average-size bound
//   - RSSD step sensitivity (4 KiB default vs coarser)
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/drt.hpp"
#include "core/grouping.hpp"
#include "core/pipeline.hpp"
#include "core/rssd.hpp"
#include "pfs/layout.hpp"
#include "workloads/apps.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

namespace {

core::CostModel paper_model() {
  return core::CostModel(core::CostParams::from_cluster(bench::paper_cluster()));
}

std::vector<core::ModelRequest> sample_requests(std::size_t n) {
  std::vector<core::ModelRequest> out;
  common::Rng rng(11);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(core::ModelRequest{
        i % 3 ? common::OpType::kRead : common::OpType::kWrite,
        rng.next_below(1_GiB), (1 + rng.next_below(64)) * 4_KiB,
        static_cast<std::uint32_t>(1 + rng.next_below(32))});
  }
  return out;
}

void BM_CostModelRequestCost(benchmark::State& state) {
  const auto model = paper_model();
  const auto requests = sample_requests(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.request_cost(requests[i++ % requests.size()], 12_KiB, 40_KiB));
  }
}
BENCHMARK(BM_CostModelRequestCost);

void BM_CostModelAggregate(benchmark::State& state) {
  const auto requests = sample_requests(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::CostModel::aggregate(requests));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CostModelAggregate)->Arg(1024)->Arg(16384);

void BM_RssdSweep(benchmark::State& state) {
  const auto model = paper_model();
  std::vector<core::ModelRequest> requests;
  for (std::size_t i = 0; i < 64; ++i) {
    requests.push_back(core::ModelRequest{common::OpType::kRead, i * 256_KiB,
                                          static_cast<common::ByteCount>(state.range(0)), 16});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::determine_stripes(model, requests));
  }
}
BENCHMARK(BM_RssdSweep)->Arg(64 * 1024)->Arg(256 * 1024)->Arg(1024 * 1024);

void BM_KmeansGrouping(benchmark::State& state) {
  std::vector<core::FeaturePoint> points;
  common::Rng rng(3);
  for (int i = 0; i < state.range(0); ++i) {
    points.push_back(core::FeaturePoint{static_cast<double>(rng.next_below(1 << 20)),
                                        static_cast<double>(1 + rng.next_below(64))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::group_requests_auto(points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KmeansGrouping)->Arg(1024)->Arg(32768);

void BM_DrtLookup(benchmark::State& state) {
  core::Drt drt("f");
  const std::size_t entries = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < entries; ++i) {
    (void)drt.insert(core::DrtEntry{i * 8_KiB, 4_KiB, "r" + std::to_string(i % 4), i * 4_KiB});
  }
  common::Rng rng(5);
  for (auto _ : state) {
    const common::Offset offset = rng.next_below(entries * 8_KiB);
    benchmark::DoNotOptimize(drt.lookup(offset, 64_KiB));
  }
}
BENCHMARK(BM_DrtLookup)->Arg(1024)->Arg(65536);

void BM_LayoutMapExtent(benchmark::State& state) {
  const auto layout = pfs::StripeLayout::stripe_pair(6, 2, 12_KiB, 40_KiB).take();
  common::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout.map_extent(rng.next_below(1_GiB), 256_KiB));
  }
}
BENCHMARK(BM_LayoutMapExtent);

void BM_PipelineAnalyze(benchmark::State& state) {
  workloads::IorMixedSizesConfig config;
  config.num_procs = 16;
  config.request_sizes = {128_KiB, 256_KiB};
  config.file_size = static_cast<common::ByteCount>(state.range(0)) * 1_MiB;
  config.file_name = "bm.ior";
  const auto trace = workloads::ior_mixed_sizes(config);
  const auto cluster = bench::paper_cluster();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MhaPipeline::analyze(cluster, trace));
  }
  state.SetItemsProcessed(state.iterations() * trace.records.size());
}
BENCHMARK(BM_PipelineAnalyze)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------ ablations ---

void run_ablations_on(const char* label, const trace::Trace& trace) {
  const auto cluster = bench::paper_cluster();
  auto bw_with = [&](core::MhaOptions options) {
    auto scheme = layouts::make_mha(options);
    return bench::run_bandwidth(*scheme, cluster, trace);
  };

  std::printf("\n=== Ablations (MHA on %s) ===\n", label);

  core::MhaOptions base;
  const double full = bw_with(base);

  core::MhaOptions no_conc = base;
  no_conc.concurrency_aware = false;
  const double without_concurrency = bw_with(no_conc);

  core::MhaOptions harl_bounds = base;
  harl_bounds.rssd.adaptive_bounds = false;
  const double with_harl_bounds = bw_with(harl_bounds);

  core::MhaOptions coarse = base;
  coarse.rssd.step = 32_KiB;
  const double with_coarse_step = bw_with(coarse);

  core::MhaOptions single_group = base;
  single_group.grouping.max_groups = 1;  // disables reordering benefit
  const double without_grouping = bw_with(single_group);

  std::printf("%-44s %8.1f MiB/s\n", "full MHA (concurrency model, adaptive bounds, 4K step)", full);
  std::printf("%-44s %8.1f MiB/s (%+.1f%%)\n", "- concurrency term (HARL-era model)",
              without_concurrency, (without_concurrency / full - 1) * 100);
  std::printf("%-44s %8.1f MiB/s (%+.1f%%)\n", "- adaptive bounds (HARL average-size bound)",
              with_harl_bounds, (with_harl_bounds / full - 1) * 100);
  std::printf("%-44s %8.1f MiB/s (%+.1f%%)\n", "- 4K step (32K step)", with_coarse_step,
              (with_coarse_step / full - 1) * 100);
  std::printf("%-44s %8.1f MiB/s (%+.1f%%)\n", "- grouping (single region, k=1)",
              without_grouping, (without_grouping / full - 1) * 100);
}

}  // namespace

void run_ablations() {
  workloads::IorMixedSizesConfig ior;
  ior.num_procs = 32;
  ior.request_sizes = {128_KiB, 256_KiB};
  ior.file_size = 128_MiB;
  ior.op = common::OpType::kWrite;
  ior.file_name = "ablate.ior";
  run_ablations_on("IOR 128+256 KiB writes, 32 procs", workloads::ior_mixed_sizes(ior));

  workloads::LanlConfig lanl;
  lanl.num_procs = 8;
  lanl.loops = 256;
  run_ablations_on("LANL App2 (heterogeneous sizes), 8 procs", workloads::lanl_app2(lanl));
}

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  run_ablations();
  return 0;
}
