// Fig. 14 + §V-E: MHA overhead analysis.
//
// (1) Redirection overhead: IOR with mixed 4 KiB + 64 KiB requests at 8/32/
//     128 processes, replayed twice under the default layout — once plain,
//     once through an *identity* DRT ("we intentionally do not make data
//     reordering so that I/O requests are redirected to the original I/O
//     system").  The gap is the pure redirection cost.
// (2) Tracing overhead: the same workload with the IOSIG-style collector
//     attached (paper: 2-6%).
// (3) §V-E.2 metadata space: DRT entry bytes for an all-4KiB workload,
//     compared with the paper's 0.6% bound.
//
// Expected shape: redirection within a few percent at every process count.
#include "bench_common.hpp"

#include "common/units.hpp"
#include "core/redirector.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

namespace {

trace::Trace make_case(int procs, common::OpType op) {
  workloads::IorMixedSizesConfig config;
  config.num_procs = bench::scaled_procs(procs);
  config.request_sizes = {4_KiB, 64_KiB};
  config.file_size = bench::scaled_bytes(64_MiB);
  config.op = op;
  config.file_name = "fig14.ior";
  config.seed = 14;
  return workloads::ior_mixed_sizes(config);
}

double replay_bw(pfs::HybridPfs& pfs, const layouts::Deployment& d,
                 const trace::Trace& trace, const workloads::ReplayOptions& options = {}) {
  pfs.reset_stats();
  pfs.reset_clocks();
  auto result = workloads::replay(pfs, d, trace, options);
  return result.is_ok() ? result->aggregate_bandwidth / static_cast<double>(common::kMiB) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init("fig14_overhead", argc, argv);
  std::printf("=== Fig. 14: MHA performance overhead (IOR 4K+64K writes) ===\n");

  // One pool task per process count; the three replay variants within a
  // cell share its PFS and must stay sequential.
  const std::vector<int> proc_counts = {8, 32, 128};
  auto results = exec::default_pool().parallel_map(
      proc_counts.size(), [&](std::size_t index) -> std::optional<bench::Row> {
        const int procs = proc_counts[index];
        const trace::Trace trace = make_case(procs, common::OpType::kWrite);
        pfs::PfsOptions options;
        options.store_data = false;
        pfs::HybridPfs pfs(bench::paper_cluster(), options);
        auto file = pfs.create_file(trace.file_name);
        if (!file.is_ok()) return std::nullopt;
        pfs.mds().extend(*file, trace::extent_end(trace.records));

        const double start = bench::wall_now();

        // Plain replay.
        layouts::Deployment plain;
        plain.file_name = trace.file_name;
        const double base = replay_bw(pfs, plain, trace);

        // Identity-redirected replay: every request goes through the DRT but
        // lands at its original location.
        core::Drt identity = core::Redirector::identity_table(
            trace.file_name, trace::extent_end(trace.records), 1_MiB);
        auto redirector = core::Redirector::create(pfs, std::move(identity));
        if (!redirector.is_ok()) return std::nullopt;
        layouts::Deployment redirected;
        redirected.file_name = trace.file_name;
        redirected.interceptor =
            std::make_unique<core::Redirector>(std::move(redirector).take());
        const double with_redirect = replay_bw(pfs, redirected, trace);

        // Tracing run (collector attached).
        workloads::ReplayOptions tracing;
        tracing.trace_run = true;
        tracing.tracer_overhead = 20e-6;  // IOSIG-style per-op instrumentation
        const double with_tracing = replay_bw(pfs, plain, trace, tracing);

        bench::Row row;
        row.label = std::to_string(procs) + " procs";
        row.values = {base, with_redirect, with_tracing};
        bench::report().add(index, bench::CellRecord{row.label, "plain/redirect/traced",
                                                     bench::wall_now() - start, 0.0, base});
        return row;
      });

  std::vector<bench::Row> rows;
  for (auto& result : results) {
    if (!result.has_value()) return bench::finish(1);
    rows.push_back(std::move(*result));
  }
  bench::print_table("Fig. 14: redirection & tracing overhead",
                     {"plain", "redirected", "traced"}, rows);
  std::printf("\noverhead vs plain:\n");
  for (const auto& row : rows) {
    std::printf("  %-10s redirection %.2f%%  tracing %.2f%%\n", row.label.c_str(),
                (1.0 - row.values[1] / row.values[0]) * 100.0,
                (1.0 - row.values[2] / row.values[0]) * 100.0);
  }

  // ---- §V-E.2: DRT metadata space bound. ----
  std::printf("\n=== Sec. V-E.2: DRT metadata space ===\n");
  {
    // Worst case in the paper: every request 4 KiB.  One DRT entry per
    // non-mergeable 4 KiB block.
    const common::ByteCount data_bytes = 64_MiB;
    core::Drt drt("space.check");
    for (common::Offset off = 0; off < data_bytes; off += 4_KiB) {
      // Alternate region names so entries never merge (worst case).
      (void)drt.insert(core::DrtEntry{off, 4_KiB,
                                      (off / 4_KiB) % 2 ? "space.check.mha.r1"
                                                        : "space.check.mha.r0",
                                      off / 2});
    }
    const double paper_bound = 6.0 * 4.0 / 4096.0;  // 24 B per 4 KiB = 0.59%
    const double measured =
        static_cast<double>(drt.metadata_bytes()) / static_cast<double>(data_bytes);
    std::printf("entries: %zu for %s of 4 KiB blocks\n", drt.size(),
                common::format_bytes(data_bytes).c_str());
    std::printf("paper bound (24 B/entry): %.2f%%   this impl: %.2f%% of data bytes\n",
                paper_bound * 100.0, measured * 100.0);
  }
  return bench::finish();
}
