// Machine-readable bench output: every bench binary can record one
// CellRecord per (case, variant) grid cell — wall time, replay virtual
// time, bandwidth — and dump the run as BENCH_<name>.json via --json.
// scripts/bench_all.sh regenerates the full trajectory; CI diffs the
// tables and archives the JSON as artifacts.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace mha::bench {

/// One grid cell of a bench run.
struct CellRecord {
  std::string case_label;       ///< workload/case row (e.g. "7h:1s", "harsh")
  std::string variant;          ///< scheme or scheme+policy column (e.g. "MHA")
  double wall_seconds = 0.0;    ///< host wall-clock for prepare+replay
  double virtual_seconds = 0.0; ///< simulated makespan of the replay
  double mib_per_s = 0.0;       ///< aggregate bandwidth (0 when n/a)
  double ops_per_s = 0.0;       ///< throughput of a timed kernel (0 when n/a)
  double ns_per_op = 0.0;       ///< inverse, in nanoseconds (0 when n/a)
};

/// Collects cells (thread-safe: parallel grid cells record concurrently)
/// and serialises them as JSON.  Cells are sorted by insertion `sequence`
/// assigned by the caller, so the file is deterministic regardless of
/// completion order.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name = "bench");

  void set_name(std::string bench_name);
  const std::string& name() const { return name_; }

  /// Records one cell.  `sequence` fixes the cell's position in the JSON
  /// (use the grid index); records with equal sequence keep insertion order.
  void add(std::size_t sequence, CellRecord record);

  std::size_t size() const;

  /// Writes the report to `path`.  `threads`/`scale` document the run
  /// configuration; `total_wall_seconds` is the whole binary's wall time.
  common::Status write_json(const std::string& path, std::size_t threads, double scale,
                            double total_wall_seconds) const;

 private:
  std::string name_;
  mutable std::mutex mutex_;
  std::vector<std::pair<std::size_t, CellRecord>> cells_;
};

/// Monotonic wall-clock timestamp in seconds (for CellRecord::wall_seconds).
double wall_now();

}  // namespace mha::bench
