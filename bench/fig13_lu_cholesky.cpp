// Fig. 13: (a) out-of-core LU decomposition; (b) sparse Cholesky
// factorisation — real-application trace replays, 8 processes each,
// 6 HServers + 2 SServers, file-per-process folded into per-process
// sections of a shared file (see DESIGN.md substitutions).
//
// Expected shapes: (a) MHA ~56% over DEF, ~8% over AAL, ~14% over HARL;
// (b) MHA ~78% over DEF, ~59% over AAL, ~30% over HARL; Cholesky's absolute
// bandwidth below LU/LANL despite larger requests (wide size variance, few
// large requests).
#include "bench_common.hpp"

#include "workloads/apps.hpp"

using namespace mha;

int main(int argc, char** argv) {
  bench::init("fig13_lu_cholesky", argc, argv);
  std::printf("=== Fig. 13a: LU decomposition (8192x8192 doubles, 64-col slabs, 8 procs) ===\n");
  {
    workloads::LuConfig config;
    config.num_procs = 8;
    config.slabs = bench::scaled_count(128, 8);
    // Build the case list by move: the initializer-list form would
    // deep-copy the trace.
    std::vector<std::pair<std::string, trace::Trace>> cases;
    cases.emplace_back("LU", workloads::lu_decomposition(config));
    bench::run_figure("Fig. 13a: LU", cases, bench::paper_cluster(),
                      workloads::ReplayMode::kIndependent);
  }

  std::printf("\n=== Fig. 13b: sparse Cholesky (panel I/O, 8 procs) ===\n");
  {
    workloads::CholeskyConfig config;
    config.num_procs = 8;
    config.panels = bench::scaled_count(192, 8);
    std::vector<std::pair<std::string, trace::Trace>> cases;
    cases.emplace_back("Cholesky", workloads::sparse_cholesky(config));
    bench::run_figure("Fig. 13b: Cholesky", cases, bench::paper_cluster(),
                      workloads::ReplayMode::kIndependent);
  }
  return bench::finish();
}
