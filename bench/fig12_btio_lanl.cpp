// Fig. 12: (a) BTIO aggregate bandwidth; (b) LANL App2 trace replay.
//
// Paper setup (a): BTIO modified to carry class B + class C footprints
// (1.69 + 6.8 GB) with per-process requests interleaving the two class
// sizes; 9/16/25 processes (square grids).  Scaled by 32x for simulation.
// Paper setup (b): the LANL anonymous App2 trace (Fig. 3 loop pattern:
// 16 B, 128K-16 B, 128 KiB writes per loop), 8 client processes.
//
// Expected shapes: (a) MHA ~48-65% over DEF, growing with process count;
// (b) MHA ~90% over DEF, ~15% over HARL.
#include "bench_common.hpp"

#include "workloads/apps.hpp"
#include "workloads/btio.hpp"

using namespace mha;

int main(int argc, char** argv) {
  bench::init("fig12_btio_lanl", argc, argv);
  std::printf("=== Fig. 12a: BTIO (class B+C interleaved, simple subtype, scaled 1/32) ===\n");
  {
    std::vector<std::pair<std::string, trace::Trace>> cases;
    // BTIO needs square process grids, so --scale shrinks time steps only.
    for (int procs : {9, 16, 25}) {
      workloads::BtioConfig config;
      config.num_procs = procs;
      config.time_steps = bench::scaled_count(40, 4);
      config.scale = 32;
      config.file_name = "fig12.btio";
      cases.emplace_back(std::to_string(procs) + " procs", workloads::btio(config));
    }
    bench::run_figure("Fig. 12a: BTIO aggregate bandwidth", cases, bench::paper_cluster());
  }

  std::printf("\n=== Fig. 12b: LANL App2 replay (8 processes, 6h:2s) ===\n");
  {
    workloads::LanlConfig config;
    config.num_procs = 8;
    config.loops = bench::scaled_count(512, 16);
    trace::Trace trace = workloads::lanl_app2(config);

    // Show the head of the Fig. 3 access sequence for one process.
    std::printf("Fig. 3 access sequence (first 9 requests of rank 0, bytes): ");
    int shown = 0;
    for (const auto& r : trace.records) {
      if (r.rank != 0) continue;
      std::printf("%llu ", static_cast<unsigned long long>(r.size));
      if (++shown == 9) break;
    }
    std::printf("\n");

    // Move the trace into the case list — it is megabytes of records and
    // the initializer-list form would deep-copy it.
    std::vector<std::pair<std::string, trace::Trace>> cases;
    cases.emplace_back("LANL", std::move(trace));
    bench::run_figure("Fig. 12b: LANL App2", cases, bench::paper_cluster());
  }
  return bench::finish();
}
