// Extension bench: multi-tenant QoS — who gets what when hundreds of
// clients from competing jobs share one cluster?
//
// Three tenant mixes (≥500 simulated clients each at full scale) replay
// against {DEF, MHA} layouts, dispatched {direct FCFS, size-fair, job-fair,
// weighted token-bucket}.  Every run reports aggregate bandwidth, Jain's
// fairness index over weight-normalised per-tenant bandwidth, and each
// tenant's p99 slowdown versus its isolated run (same workload, cluster to
// itself).
//
// Expected shape: under FCFS share tracks client count and request size —
// the bursty aggressor's 256 writers bury the interactive victim's p99.
// Size-fair caps the aggressor's *byte* share, job-fair its *request* share
// (strongest for a many-client tenant), and the token bucket enforces the
// share by shifting excess admissions later, trading a little aggregate
// bandwidth for the flattest slowdowns.  MHA under-neath raises everyone's
// baseline; the policies arbitrate whatever contention the layout leaves.
#include "bench_common.hpp"

#include "common/units.hpp"
#include "qos/driver.hpp"
#include "qos/policy.hpp"
#include "qos/token_bucket.hpp"

using namespace mha;
using namespace mha::common::literals;

namespace {

struct Mix {
  std::string name;
  std::string note;
  std::vector<qos::TenantSpec> tenants;
  /// Index of the tenant whose isolation the mix is about (-1: none).
  int victim = -1;
};

std::vector<Mix> build_mixes() {
  std::vector<Mix> mixes;

  // 1. Balanced: four identical IOR tenants — the sanity mix.  Every policy
  //    (including FCFS) should split the cluster almost evenly.
  {
    Mix mix;
    mix.name = "balanced";
    mix.note = "4 identical IOR-small tenants, equal weight";
    for (int i = 0; i < 4; ++i) {
      qos::TenantSpec spec;
      spec.name = "ten-" + std::string(1, static_cast<char>('a' + i));
      spec.workload = qos::TenantWorkload::kIorSmall;
      spec.clients = bench::scaled_procs(128, 8);
      spec.bytes_per_client = bench::scaled_bytes(1_MiB, 256 * 1024);
      spec.seed = 100 + static_cast<std::uint64_t>(i);
      mix.tenants.push_back(spec);
    }
    mixes.push_back(std::move(mix));
  }

  // 2. Bursty aggressor: 256 large-write clients listed first (FCFS's worst
  //    case) against a 128-client interactive read tenant and a batch
  //    background app.  The acceptance story: victim p99 slowdown under
  //    job-fair must come in well under FCFS.
  {
    Mix mix;
    mix.name = "bursty-aggressor";
    mix.note = "256 large writers vs 128 interactive readers + batch bg";
    qos::TenantSpec burst;
    burst.name = "burst";
    burst.workload = qos::TenantWorkload::kIorLarge;
    burst.clients = bench::scaled_procs(256, 16);
    burst.bytes_per_client = bench::scaled_bytes(8_MiB, 1_MiB);
    burst.seed = 21;
    mix.tenants.push_back(burst);
    qos::TenantSpec victim;
    victim.name = "victim";
    victim.workload = qos::TenantWorkload::kIorSmall;
    victim.clients = bench::scaled_procs(128, 8);
    victim.priority = qos::PriorityClass::kInteractive;
    victim.bytes_per_client = bench::scaled_bytes(1_MiB, 256 * 1024);
    victim.seed = 22;
    mix.tenants.push_back(victim);
    qos::TenantSpec bg;
    bg.name = "bg";
    bg.workload = qos::TenantWorkload::kLanl;
    bg.clients = bench::scaled_procs(128, 8);
    bg.priority = qos::PriorityClass::kBatch;
    bg.bytes_per_client = bench::scaled_bytes(1_MiB, 256 * 1024);
    bg.seed = 23;
    mix.tenants.push_back(bg);
    mix.victim = 1;
    mixes.push_back(std::move(mix));
  }

  // 3. Mixed applications: one tenant per workload family, weights skewed
  //    2:1:1:1 — the "real machine room" mix exercising every generator.
  {
    Mix mix;
    mix.name = "mixed-apps";
    mix.note = "IOR + HPIO + BTIO + LANL + DL, weights 2:1:1:1:1";
    qos::TenantSpec ior;
    ior.name = "ior";
    ior.workload = qos::TenantWorkload::kIorSmall;
    ior.clients = bench::scaled_procs(128, 8);
    ior.weight = 2.0;
    ior.bytes_per_client = bench::scaled_bytes(1_MiB, 256 * 1024);
    ior.seed = 31;
    mix.tenants.push_back(ior);
    qos::TenantSpec hp;
    hp.name = "hpio";
    hp.workload = qos::TenantWorkload::kHpio;
    hp.clients = bench::scaled_procs(128, 8);
    hp.bytes_per_client = bench::scaled_bytes(1_MiB, 256 * 1024);
    hp.seed = 32;
    mix.tenants.push_back(hp);
    qos::TenantSpec bt;
    bt.name = "btio";
    bt.workload = qos::TenantWorkload::kBtio;
    bt.clients = bench::scaled_procs(144, 9);
    bt.priority = qos::PriorityClass::kBatch;
    bt.bytes_per_client = bench::scaled_bytes(1_MiB, 256 * 1024);
    bt.seed = 33;
    mix.tenants.push_back(bt);
    qos::TenantSpec la;
    la.name = "lanl";
    la.workload = qos::TenantWorkload::kLanl;
    la.clients = bench::scaled_procs(128, 8);
    la.priority = qos::PriorityClass::kBatch;
    la.bytes_per_client = bench::scaled_bytes(1_MiB, 256 * 1024);
    la.seed = 34;
    mix.tenants.push_back(la);
    qos::TenantSpec dl;
    dl.name = "dlpipe";
    dl.workload = qos::TenantWorkload::kDlPipe;
    dl.clients = bench::scaled_procs(128, 8);
    dl.bytes_per_client = bench::scaled_bytes(1_MiB, 256 * 1024);
    dl.seed = 35;
    mix.tenants.push_back(dl);
    mixes.push_back(std::move(mix));
  }
  return mixes;
}

const std::vector<std::string>& policy_names() {
  static const std::vector<std::string> kNames = {"fcfs", "size-fair", "job-fair",
                                                  "token-bucket"};
  return kNames;
}

/// Policy 0 is direct FCFS (no scheduler attached); the rest are the QoS
/// family.  The token bucket is sized near the 6H+2S cluster's sequential
/// capacity so only tenants exceeding their weight share get shaped.
std::unique_ptr<qos::FairShareScheduler> make_policy(std::size_t policy,
                                                     const qos::JobTable& jobs) {
  switch (policy) {
    case 1:
      return qos::make_qos_scheduler(qos::QosKind::kSizeFair, jobs);
    case 2:
      return qos::make_qos_scheduler(qos::QosKind::kJobFair, jobs);
    case 3: {
      qos::TokenBucketOptions options;
      options.aggregate_bytes_per_s = 1.5e9;
      options.burst_seconds = 0.02;
      return qos::make_token_bucket(jobs, options);
    }
    default:
      return nullptr;
  }
}

std::unique_ptr<layouts::LayoutScheme> make_mix_scheme(std::size_t scheme) {
  return scheme == 0 ? layouts::make_def() : layouts::make_mha();
}

struct PolicyRun {
  qos::MultiTenantResult result;
  double wall = 0.0;
  bool ok = false;
};

struct CellResult {
  std::vector<PolicyRun> runs;  ///< one per policy
  int total_clients = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::init("ext_multitenant", argc, argv);
  std::printf("=== Extension: multi-tenant QoS under DEF vs MHA ===\n");
  std::printf("policies: fcfs (no QoS) | size-fair (WFQ bytes) | job-fair (WFQ "
              "slots) | token-bucket (weighted rate shaping)\n");

  const auto mixes = build_mixes();
  const auto cluster = bench::paper_cluster();
  const std::vector<std::string> scheme_names = {"DEF", "MHA"};
  const std::size_t num_policies = policy_names().size();

  // One grid cell per (mix, scheme): the cell owns a driver (so the four
  // policies share its per-scheme isolated baselines) and runs the policies
  // serially.  Cells are independent — fresh clusters, fresh schemes — and
  // land by index, so the grid is thread-count invariant.
  auto cells = exec::default_pool().parallel_map(
      mixes.size() * scheme_names.size(), [&](std::size_t index) {
        const Mix& mix = mixes[index / scheme_names.size()];
        const std::size_t scheme = index % scheme_names.size();
        CellResult cell;
        qos::MultiTenantDriver driver(mix.tenants);
        cell.total_clients = driver.total_clients();
        cell.runs.resize(num_policies);
        for (std::size_t p = 0; p < num_policies; ++p) {
          const double start = bench::wall_now();
          auto scheduler = make_policy(p, driver.jobs());
          auto result = driver.run([&] { return make_mix_scheme(scheme); }, cluster,
                                   scheduler.get());
          if (!result.is_ok()) {
            std::fprintf(stderr, "[ext_multitenant] %s/%s/%s failed: %s\n",
                         mix.name.c_str(), scheme_names[scheme].c_str(),
                         policy_names()[p].c_str(), result.status().to_string().c_str());
            continue;
          }
          cell.runs[p].result = std::move(*result);
          cell.runs[p].wall = bench::wall_now() - start;
          cell.runs[p].ok = true;
        }
        return cell;
      });

  for (std::size_t m = 0; m < mixes.size(); ++m) {
    const Mix& mix = mixes[m];
    const int clients = cells[m * scheme_names.size()].total_clients;
    std::printf("\n--- mix: %s (%d clients; %s) ---\n", mix.name.c_str(), clients,
                mix.note.c_str());
    std::printf("%-6s %-13s %9s %12s %9s  %s\n", "scheme", "policy", "MiB/s",
                "makespan(s)", "fairness", "per-tenant p99 slowdown");
    for (std::size_t s = 0; s < scheme_names.size(); ++s) {
      const CellResult& cell = cells[m * scheme_names.size() + s];
      for (std::size_t p = 0; p < num_policies; ++p) {
        const PolicyRun& run = cell.runs[p];
        if (!run.ok) continue;
        const qos::MultiTenantResult& r = run.result;
        std::string slowdowns;
        for (const qos::TenantReport& t : r.tenants) {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%s%s=%.2f", slowdowns.empty() ? "" : " ",
                        t.spec.name.c_str(), t.slowdown_p99());
          slowdowns += buf;
        }
        std::printf("%-6s %-13s %9.1f %12.4f %9.3f  %s\n", scheme_names[s].c_str(),
                    policy_names()[p].c_str(),
                    r.aggregate_bandwidth / static_cast<double>(common::kMiB),
                    r.makespan, r.fairness, slowdowns.c_str());
        bench::report().add(
            (m * scheme_names.size() + s) * num_policies + p,
            bench::CellRecord{mix.name + " / " + scheme_names[s], policy_names()[p],
                              run.wall, r.makespan,
                              r.aggregate_bandwidth / static_cast<double>(common::kMiB)});
      }
    }
    // The isolation headline: how much contention the victim actually felt.
    if (mix.victim >= 0) {
      for (std::size_t s = 0; s < scheme_names.size(); ++s) {
        const CellResult& cell = cells[m * scheme_names.size() + s];
        std::string line;
        for (std::size_t p = 0; p < num_policies; ++p) {
          if (!cell.runs[p].ok) continue;
          const auto& tenants = cell.runs[p].result.tenants;
          if (static_cast<std::size_t>(mix.victim) >= tenants.size()) continue;
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%s%s=%.2f", line.empty() ? "" : " ",
                        policy_names()[p].c_str(),
                        tenants[static_cast<std::size_t>(mix.victim)].slowdown_p99());
          line += buf;
        }
        std::printf("victim p99 slowdown under %s: %s\n", scheme_names[s].c_str(),
                    line.c_str());
      }
    }
  }

  // One full per-tenant table as the detailed exhibit: the contention mix
  // under DEF, FCFS vs job-fair side by side.
  {
    const CellResult& def_cell = cells[1 * scheme_names.size() + 0];
    for (std::size_t p : {std::size_t{0}, std::size_t{2}}) {
      if (!def_cell.runs[p].ok) continue;
      std::printf("\nbursty-aggressor under DEF / %s:\n%s", policy_names()[p].c_str(),
                  qos::tenant_table(def_cell.runs[p].result.tenants).c_str());
    }
  }
  return bench::finish();
}
