// Shared harness for the figure-regeneration benches.
//
// Every bench binary reproduces one table/figure of the paper's evaluation:
// it builds the paper's workload (scaled to simulator-friendly sizes),
// prepares each layout scheme on a fresh simulated cluster, replays the
// trace, and prints the same rows/series the paper plots.  Absolute numbers
// are simulator numbers; the shapes (who wins, by what factor, where
// crossovers fall) are the reproduction target — see EXPERIMENTS.md.
//
// Execution model: benches call bench::init(name, argc, argv) first, which
// parses the shared flags —
//
//   --threads=N   total concurrency for the grid (default MHA_THREADS env
//                 or hardware_concurrency); every (case, scheme) cell runs
//                 on a fresh ClusterSim, results land by grid index, and
//                 all printing happens after the join, so stdout is
//                 byte-identical at any N.
//   --json=PATH   write a timed machine-readable report (per-cell wall
//                 time, replay virtual time, bandwidth) to PATH.
//   --scale=F     shrink workloads by factor F (0 < F <= 1) for smoke runs;
//                 benches route their size knobs through scaled_bytes /
//                 scaled_procs / scaled_count.
//
// and return through bench::finish(code), which writes the JSON report.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "exec/thread_pool.hpp"
#include "layouts/scheme.hpp"
#include "sim/cluster_sim.hpp"
#include "trace/record.hpp"
#include "workloads/replayer.hpp"

namespace mha::bench {

struct BenchOptions {
  std::size_t threads = 1;  ///< resolved total concurrency
  double scale = 1.0;       ///< workload scale factor (--scale)
  std::string json_path;    ///< empty => no JSON report
};

/// Parses the shared flags, sizes exec::default_pool(), and names the run's
/// report.  Unknown flags abort with a usage message.  Call first in main.
void init(const std::string& bench_name, int argc, char** argv);

/// Options resolved by init() (defaults when init was never called).
const BenchOptions& options();

/// The process-wide report init() named; cells recorded here land in the
/// --json output.  run_figure records automatically; hand-rolled grids call
/// report().add(sequence, cell) themselves.
BenchReport& report();

/// Writes the JSON report when --json was given; returns `code` (so mains
/// can `return bench::finish(code);`).
int finish(int code = 0);

/// --scale helpers: multiply a workload knob by options().scale, clamped to
/// a floor that keeps the workload well-formed.
common::ByteCount scaled_bytes(common::ByteCount bytes,
                               common::ByteCount floor = 4u * 1024 * 1024);
int scaled_procs(int procs, int floor = 2);
int scaled_count(int count, int floor = 1);

/// The paper's default testbed: 6 HServers + 2 SServers.
inline sim::ClusterConfig paper_cluster(std::size_t h = 6, std::size_t s = 2) {
  sim::ClusterConfig c;
  c.num_hservers = h;
  c.num_sservers = s;
  return c;
}

/// Runs one scheme on a fresh timing-only PFS; returns MiB/s (0 on error).
double run_bandwidth(layouts::LayoutScheme& scheme, const sim::ClusterConfig& cluster,
                     const trace::Trace& trace,
                     workloads::ReplayMode mode = workloads::ReplayMode::kSynchronous);

/// Runs one scheme and returns the full replay result.
common::Result<workloads::ReplayResult> run_full(
    layouts::LayoutScheme& scheme, const sim::ClusterConfig& cluster,
    const trace::Trace& trace,
    workloads::ReplayMode mode = workloads::ReplayMode::kSynchronous);

/// The standard scheme column at `index` of scheme_columns() (fresh
/// instance; cells construct their own scheme so grid tasks share nothing).
std::unique_ptr<layouts::LayoutScheme> make_scheme(std::size_t index);

/// One row of a figure table: a label plus one bandwidth per scheme.
struct Row {
  std::string label;
  std::vector<double> values;
};

/// Prints a paper-style table: columns DEF/AAL/HARL/MHA (or custom), values
/// in MiB/s, plus MHA-vs-DEF and MHA-vs-HARL improvement percentages when
/// the standard four columns are used.
void print_table(const std::string& title, const std::vector<std::string>& columns,
                 const std::vector<Row>& rows, const char* unit = "MiB/s");

/// Convenience: run all four schemes over a set of labelled traces and
/// print the table.  Each (case, scheme) cell is an independent task on the
/// exec pool (fresh ClusterSim per cell); rows come back in case order with
/// per-cell timings recorded in report().  Returns the rows.
std::vector<Row> run_figure(const std::string& title,
                            const std::vector<std::pair<std::string, trace::Trace>>& cases,
                            const sim::ClusterConfig& cluster,
                            workloads::ReplayMode mode = workloads::ReplayMode::kSynchronous);

/// Standard scheme column labels.
std::vector<std::string> scheme_columns();

}  // namespace mha::bench
