// Shared harness for the figure-regeneration benches.
//
// Every bench binary reproduces one table/figure of the paper's evaluation:
// it builds the paper's workload (scaled to simulator-friendly sizes),
// prepares each layout scheme on a fresh simulated cluster, replays the
// trace, and prints the same rows/series the paper plots.  Absolute numbers
// are simulator numbers; the shapes (who wins, by what factor, where
// crossovers fall) are the reproduction target — see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "layouts/scheme.hpp"
#include "sim/cluster_sim.hpp"
#include "trace/record.hpp"
#include "workloads/replayer.hpp"

namespace mha::bench {

/// The paper's default testbed: 6 HServers + 2 SServers.
inline sim::ClusterConfig paper_cluster(std::size_t h = 6, std::size_t s = 2) {
  sim::ClusterConfig c;
  c.num_hservers = h;
  c.num_sservers = s;
  return c;
}

/// Runs one scheme on a fresh timing-only PFS; returns MiB/s (0 on error).
double run_bandwidth(layouts::LayoutScheme& scheme, const sim::ClusterConfig& cluster,
                     const trace::Trace& trace,
                     workloads::ReplayMode mode = workloads::ReplayMode::kSynchronous);

/// Runs one scheme and returns the full replay result.
common::Result<workloads::ReplayResult> run_full(
    layouts::LayoutScheme& scheme, const sim::ClusterConfig& cluster,
    const trace::Trace& trace,
    workloads::ReplayMode mode = workloads::ReplayMode::kSynchronous);

/// One row of a figure table: a label plus one bandwidth per scheme.
struct Row {
  std::string label;
  std::vector<double> values;
};

/// Prints a paper-style table: columns DEF/AAL/HARL/MHA (or custom), values
/// in MiB/s, plus MHA-vs-DEF and MHA-vs-HARL improvement percentages when
/// the standard four columns are used.
void print_table(const std::string& title, const std::vector<std::string>& columns,
                 const std::vector<Row>& rows, const char* unit = "MiB/s");

/// Convenience: run all four schemes over a set of labelled traces and
/// print the table.  Returns the rows for further processing.
std::vector<Row> run_figure(const std::string& title,
                            const std::vector<std::pair<std::string, trace::Trace>>& cases,
                            const sim::ClusterConfig& cluster,
                            workloads::ReplayMode mode = workloads::ReplayMode::kSynchronous);

/// Standard scheme column labels.
std::vector<std::string> scheme_columns();

}  // namespace mha::bench
