// Fig. 10: IOR bandwidth under various HServer:SServer ratios.
//
// Paper setup: 32 processes, mixed 128+256 KiB requests, cluster shapes
// 7h:1s, 6h:2s, 5h:3s, 4h:4s (8 servers total).
//
// Expected shape: bandwidth rising with the SServer share for every scheme;
// MHA's edge over HARL growing with more SServers ("MHA can better utilize
// the high-performance SServers").
#include "bench_common.hpp"

#include "common/units.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

int main() {
  std::printf("=== Fig. 10: IOR with various server ratios (32 procs, 128+256 KiB) ===\n");

  workloads::IorMixedSizesConfig config;
  config.num_procs = 32;
  config.request_sizes = {128_KiB, 256_KiB};
  config.file_size = 256_MiB;
  config.file_name = "fig10.ior";
  config.seed = 10;

  const std::vector<std::pair<std::size_t, std::size_t>> ratios = {
      {7, 1}, {6, 2}, {5, 3}, {4, 4}};

  for (common::OpType op : {common::OpType::kRead, common::OpType::kWrite}) {
    config.op = op;
    const trace::Trace trace = workloads::ior_mixed_sizes(config);
    std::vector<bench::Row> rows;
    for (const auto& [h, s] : ratios) {
      bench::Row row;
      row.label = std::to_string(h) + "h:" + std::to_string(s) + "s";
      const auto cluster = bench::paper_cluster(h, s);
      for (auto& scheme : layouts::all_schemes()) {
        row.values.push_back(bench::run_bandwidth(*scheme, cluster, trace));
      }
      rows.push_back(std::move(row));
    }
    bench::print_table(std::string("Fig. 10 ") +
                           (op == common::OpType::kRead ? "(a) read" : "(b) write"),
                       bench::scheme_columns(), rows);
  }
  return 0;
}
