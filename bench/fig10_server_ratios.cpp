// Fig. 10: IOR bandwidth under various HServer:SServer ratios.
//
// Paper setup: 32 processes, mixed 128+256 KiB requests, cluster shapes
// 7h:1s, 6h:2s, 5h:3s, 4h:4s (8 servers total).
//
// Expected shape: bandwidth rising with the SServer share for every scheme;
// MHA's edge over HARL growing with more SServers ("MHA can better utilize
// the high-performance SServers").
#include "bench_common.hpp"

#include "common/units.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

int main(int argc, char** argv) {
  bench::init("fig10_server_ratios", argc, argv);
  std::printf("=== Fig. 10: IOR with various server ratios (32 procs, 128+256 KiB) ===\n");

  workloads::IorMixedSizesConfig config;
  config.num_procs = bench::scaled_procs(32);
  config.request_sizes = {128_KiB, 256_KiB};
  config.file_size = bench::scaled_bytes(256_MiB);
  config.file_name = "fig10.ior";
  config.seed = 10;

  const std::vector<std::pair<std::size_t, std::size_t>> ratios = {
      {7, 1}, {6, 2}, {5, 3}, {4, 4}};
  const std::size_t num_schemes = bench::scheme_columns().size();

  for (common::OpType op : {common::OpType::kRead, common::OpType::kWrite}) {
    config.op = op;
    const trace::Trace trace = workloads::ior_mixed_sizes(config);
    const std::string title = std::string("Fig. 10 ") +
                              (op == common::OpType::kRead ? "(a) read" : "(b) write");

    // One pool task per (ratio, scheme) cell; the trace is shared read-only
    // and every cell runs a fresh ClusterSim of its own shape.
    struct Cell {
      double bandwidth = 0.0;
      double makespan = 0.0;
      double wall = 0.0;
    };
    auto cells = exec::default_pool().parallel_map(
        ratios.size() * num_schemes, [&](std::size_t index) {
          const auto& [h, s] = ratios[index / num_schemes];
          const auto cluster = bench::paper_cluster(h, s);
          auto scheme = bench::make_scheme(index % num_schemes);
          Cell cell;
          const double start = bench::wall_now();
          auto result = bench::run_full(*scheme, cluster, trace);
          cell.wall = bench::wall_now() - start;
          if (result.is_ok()) {
            cell.bandwidth = result->aggregate_bandwidth / static_cast<double>(common::kMiB);
            cell.makespan = result->makespan;
          } else {
            std::fprintf(stderr, "[bench] %s failed: %s\n", scheme->name().c_str(),
                         result.status().to_string().c_str());
          }
          return cell;
        });

    std::vector<bench::Row> rows;
    for (std::size_t r = 0; r < ratios.size(); ++r) {
      bench::Row row;
      row.label = std::to_string(ratios[r].first) + "h:" +
                  std::to_string(ratios[r].second) + "s";
      for (std::size_t s = 0; s < num_schemes; ++s) {
        const Cell& cell = cells[r * num_schemes + s];
        row.values.push_back(cell.bandwidth);
        bench::report().add(bench::report().size(),
                            bench::CellRecord{title + " / " + row.label,
                                              bench::scheme_columns()[s], cell.wall,
                                              cell.makespan, cell.bandwidth});
      }
      rows.push_back(std::move(row));
    }
    bench::print_table(title, bench::scheme_columns(), rows);
  }
  return bench::finish();
}
