// Fig. 11: HPIO bandwidth with various process numbers.
//
// Paper setup: region count 4096, region spacing 0, mixed region sizes
// 16/32/64 KiB, process counts 16/32/64.
//
// Expected shape: MHA above DEF/AAL/HARL at every process count (the paper
// reports up to ~49/32/45% over HARL); throughput decreasing with more
// processes as small-request contention grows.
#include "bench_common.hpp"

#include "common/units.hpp"
#include "workloads/hpio.hpp"

using namespace mha;
using namespace mha::common::literals;

int main(int argc, char** argv) {
  bench::init("fig11_hpio", argc, argv);
  std::printf("=== Fig. 11: HPIO (region count 4096, spacing 0, sizes 16/32/64 KiB) ===\n");
  for (common::OpType op : {common::OpType::kRead, common::OpType::kWrite}) {
    std::vector<std::pair<std::string, trace::Trace>> cases;
    for (int procs : {16, 32, 64}) {
      workloads::HpioConfig config;
      config.num_procs = bench::scaled_procs(procs);
      config.region_count = bench::scaled_count(4096, 64);
      config.region_spacing = 0;
      config.region_sizes = {16_KiB, 32_KiB, 64_KiB};
      config.op = op;
      config.file_name = "fig11.hpio";
      cases.emplace_back(std::to_string(procs) + " procs", workloads::hpio(config));
    }
    bench::run_figure(std::string("Fig. 11 ") +
                          (op == common::OpType::kRead ? "(a) read" : "(b) write"),
                      cases, bench::paper_cluster());
  }
  return bench::finish();
}
