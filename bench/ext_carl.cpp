// Extension bench: validating the paper's related-work criticism of CARL.
//
// §VI: "CARL ... places file regions with high access costs only on SSD
// servers.  However, this may compromise I/O performance because I/O
// parallelism on all servers may not be fully utilized.  Our current work,
// MHA, can do this because of its adaptive data distribution."
//
// The bench sweeps CARL's SSD traffic budget on the Fig. 7 "128+256" mixed
// workload and compares with DEF and MHA.  Expected shape: CARL beats DEF
// once hot regions reach the SSDs, but plateaus below MHA — its exclusive
// tiers idle one half of the cluster per request, exactly the parallelism
// loss the paper calls out.
#include "bench_common.hpp"

#include "common/units.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

int main() {
  std::printf("=== Extension: CARL [36] vs DEF/MHA (paper Sec. VI criticism) ===\n");

  workloads::IorMixedSizesConfig config;
  config.num_procs = 32;
  config.request_sizes = {128_KiB, 256_KiB};
  config.file_size = 128_MiB;
  config.op = common::OpType::kWrite;
  config.file_name = "carl.ior";
  const trace::Trace trace = workloads::ior_mixed_sizes(config);
  const auto cluster = bench::paper_cluster();

  auto def = layouts::make_def();
  auto mha = layouts::make_mha();
  const double bw_def = bench::run_bandwidth(*def, cluster, trace);
  const double bw_mha = bench::run_bandwidth(*mha, cluster, trace);

  std::printf("%-26s %8.1f MiB/s\n", "DEF (fixed 64KiB)", bw_def);
  for (double share : {0.1, 0.25, 0.5, 0.75}) {
    auto carl = layouts::make_carl(share);
    const double bw = bench::run_bandwidth(*carl, cluster, trace);
    std::printf("CARL (SSD share %.0f%%)      %8.1f MiB/s  (%+5.1f%% vs DEF)\n",
                share * 100, bw, (bw / bw_def - 1) * 100);
  }
  std::printf("%-26s %8.1f MiB/s  (%+5.1f%% vs DEF)\n", "MHA (adaptive distribution)",
              bw_mha, (bw_mha / bw_def - 1) * 100);
  return 0;
}
