// Extension bench: validating the paper's related-work criticism of CARL.
//
// §VI: "CARL ... places file regions with high access costs only on SSD
// servers.  However, this may compromise I/O performance because I/O
// parallelism on all servers may not be fully utilized.  Our current work,
// MHA, can do this because of its adaptive data distribution."
//
// The bench sweeps CARL's SSD traffic budget on the Fig. 7 "128+256" mixed
// workload and compares with DEF and MHA.  Expected shape: CARL beats DEF
// once hot regions reach the SSDs, but plateaus below MHA — its exclusive
// tiers idle one half of the cluster per request, exactly the parallelism
// loss the paper calls out.
#include "bench_common.hpp"

#include "common/units.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

int main(int argc, char** argv) {
  bench::init("ext_carl", argc, argv);
  std::printf("=== Extension: CARL [36] vs DEF/MHA (paper Sec. VI criticism) ===\n");

  workloads::IorMixedSizesConfig config;
  config.num_procs = bench::scaled_procs(32);
  config.request_sizes = {128_KiB, 256_KiB};
  config.file_size = bench::scaled_bytes(128_MiB);
  config.op = common::OpType::kWrite;
  config.file_name = "carl.ior";
  const trace::Trace trace = workloads::ior_mixed_sizes(config);
  const auto cluster = bench::paper_cluster();

  // Grid: DEF, the CARL budget sweep, MHA — one pool cell each, printed in
  // presentation order after the join.
  const std::vector<double> shares = {0.1, 0.25, 0.5, 0.75};
  auto cells = exec::default_pool().parallel_map(
      shares.size() + 2, [&](std::size_t index) {
        std::unique_ptr<layouts::LayoutScheme> scheme;
        if (index == 0) {
          scheme = layouts::make_def();
        } else if (index <= shares.size()) {
          scheme = layouts::make_carl(shares[index - 1]);
        } else {
          scheme = layouts::make_mha();
        }
        const double start = bench::wall_now();
        const double bw = bench::run_bandwidth(*scheme, cluster, trace);
        bench::report().add(index, bench::CellRecord{"carl sweep", scheme->name(),
                                                     bench::wall_now() - start, 0.0, bw});
        return bw;
      });

  const double bw_def = cells.front();
  std::printf("%-26s %8.1f MiB/s\n", "DEF (fixed 64KiB)", bw_def);
  for (std::size_t i = 0; i < shares.size(); ++i) {
    std::printf("CARL (SSD share %.0f%%)      %8.1f MiB/s  (%+5.1f%% vs DEF)\n",
                shares[i] * 100, cells[i + 1], (cells[i + 1] / bw_def - 1) * 100);
  }
  std::printf("%-26s %8.1f MiB/s  (%+5.1f%% vs DEF)\n", "MHA (adaptive distribution)",
              cells.back(), (cells.back() / bw_def - 1) * 100);
  return bench::finish();
}
