#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/units.hpp"

namespace mha::bench {

namespace {

BenchOptions g_options;
BenchReport g_report;
double g_start_wall = 0.0;

[[noreturn]] void usage(const std::string& name, const char* bad_arg) {
  std::fprintf(stderr,
               "%s: unknown argument '%s'\n"
               "usage: %s [--threads=N] [--json=PATH] [--scale=F]\n",
               name.c_str(), bad_arg, name.c_str());
  std::exit(2);
}

}  // namespace

void init(const std::string& bench_name, int argc, char** argv) {
  g_report.set_name(bench_name);
  g_start_wall = wall_now();
  g_options.threads = exec::default_threads();
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      const long value = std::strtol(arg + 10, nullptr, 10);
      if (value <= 0) usage(bench_name, arg);
      g_options.threads = static_cast<std::size_t>(value);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      g_options.json_path = arg + 7;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      const double value = std::strtod(arg + 8, nullptr);
      if (!(value > 0.0) || value > 1.0) usage(bench_name, arg);
      g_options.scale = value;
    } else {
      usage(bench_name, arg);
    }
  }
  exec::set_default_threads(g_options.threads);
}

const BenchOptions& options() { return g_options; }

BenchReport& report() { return g_report; }

int finish(int code) {
  if (!g_options.json_path.empty()) {
    const common::Status status = g_report.write_json(
        g_options.json_path, g_options.threads, g_options.scale, wall_now() - g_start_wall);
    if (!status.is_ok()) {
      std::fprintf(stderr, "[bench] %s\n", status.to_string().c_str());
      if (code == 0) code = 1;
    }
  }
  return code;
}

common::ByteCount scaled_bytes(common::ByteCount bytes, common::ByteCount floor) {
  const auto scaled = static_cast<common::ByteCount>(
      std::llround(static_cast<double>(bytes) * g_options.scale));
  return std::max(scaled, std::min(bytes, floor));
}

int scaled_procs(int procs, int floor) {
  const int scaled = static_cast<int>(std::llround(procs * g_options.scale));
  return std::max(scaled, std::min(procs, floor));
}

int scaled_count(int count, int floor) {
  const int scaled = static_cast<int>(std::llround(count * g_options.scale));
  return std::max(scaled, std::min(count, floor));
}

double run_bandwidth(layouts::LayoutScheme& scheme, const sim::ClusterConfig& cluster,
                     const trace::Trace& trace, workloads::ReplayMode mode) {
  auto result = run_full(scheme, cluster, trace, mode);
  if (!result.is_ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", scheme.name().c_str(),
                 result.status().to_string().c_str());
    return 0.0;
  }
  return result->aggregate_bandwidth / static_cast<double>(common::kMiB);
}

common::Result<workloads::ReplayResult> run_full(layouts::LayoutScheme& scheme,
                                                 const sim::ClusterConfig& cluster,
                                                 const trace::Trace& trace,
                                                 workloads::ReplayMode mode) {
  workloads::ReplayOptions options;
  options.mode = mode;
  return workloads::run_scheme(scheme, cluster, trace, options, /*store_data=*/false);
}

std::vector<std::string> scheme_columns() { return {"DEF", "AAL", "HARL", "MHA"}; }

std::unique_ptr<layouts::LayoutScheme> make_scheme(std::size_t index) {
  switch (index) {
    case 0: return layouts::make_def();
    case 1: return layouts::make_aal();
    case 2: return layouts::make_harl();
    default: return layouts::make_mha();
  }
}

void print_table(const std::string& title, const std::vector<std::string>& columns,
                 const std::vector<Row>& rows, const char* unit) {
  std::printf("\n%s  (%s)\n", title.c_str(), unit);
  std::printf("%-14s", "");
  for (const auto& col : columns) std::printf("%10s", col.c_str());
  const bool standard = columns == scheme_columns();
  if (standard) std::printf("%12s%12s", "MHA/DEF", "MHA/HARL");
  std::printf("\n");
  for (const Row& row : rows) {
    std::printf("%-14s", row.label.c_str());
    for (double v : row.values) std::printf("%10.1f", v);
    if (standard && row.values.size() == 4 && row.values[0] > 0 && row.values[2] > 0) {
      std::printf("%11.1f%%%11.1f%%", (row.values[3] / row.values[0] - 1.0) * 100.0,
                  (row.values[3] / row.values[2] - 1.0) * 100.0);
    }
    std::printf("\n");
  }
}

std::vector<Row> run_figure(const std::string& title,
                            const std::vector<std::pair<std::string, trace::Trace>>& cases,
                            const sim::ClusterConfig& cluster, workloads::ReplayMode mode) {
  const std::size_t num_schemes = scheme_columns().size();
  const std::size_t num_cells = cases.size() * num_schemes;

  struct Cell {
    double bandwidth = 0.0;
    double makespan = 0.0;
    double wall = 0.0;
  };
  // One task per (case, scheme) cell.  Each builds its own scheme instance
  // and ClusterSim, reads the trace by const&, and lands its result in slot
  // `index`, so the table is independent of scheduling order.
  auto cells = exec::default_pool().parallel_map(num_cells, [&](std::size_t index) {
    const std::size_t case_index = index / num_schemes;
    const std::size_t scheme_index = index % num_schemes;
    const trace::Trace& trace = cases[case_index].second;
    Cell cell;
    const double start = wall_now();
    auto scheme = make_scheme(scheme_index);
    auto result = run_full(*scheme, cluster, trace, mode);
    cell.wall = wall_now() - start;
    if (result.is_ok()) {
      cell.bandwidth = result->aggregate_bandwidth / static_cast<double>(common::kMiB);
      cell.makespan = result->makespan;
    } else {
      std::fprintf(stderr, "[bench] %s failed: %s\n", scheme->name().c_str(),
                   result.status().to_string().c_str());
    }
    return cell;
  });

  const std::vector<std::string> columns = scheme_columns();
  std::vector<Row> rows;
  rows.reserve(cases.size());
  for (std::size_t c = 0; c < cases.size(); ++c) {
    Row row;
    row.label = cases[c].first;
    for (std::size_t s = 0; s < num_schemes; ++s) {
      const Cell& cell = cells[c * num_schemes + s];
      row.values.push_back(cell.bandwidth);
      g_report.add(g_report.size(),
                   CellRecord{title + " / " + row.label, columns[s], cell.wall,
                              cell.makespan, cell.bandwidth});
    }
    rows.push_back(std::move(row));
  }
  print_table(title, columns, rows);
  return rows;
}

}  // namespace mha::bench
