#include "bench_common.hpp"

#include "common/units.hpp"

namespace mha::bench {

double run_bandwidth(layouts::LayoutScheme& scheme, const sim::ClusterConfig& cluster,
                     const trace::Trace& trace, workloads::ReplayMode mode) {
  auto result = run_full(scheme, cluster, trace, mode);
  if (!result.is_ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", scheme.name().c_str(),
                 result.status().to_string().c_str());
    return 0.0;
  }
  return result->aggregate_bandwidth / static_cast<double>(common::kMiB);
}

common::Result<workloads::ReplayResult> run_full(layouts::LayoutScheme& scheme,
                                                 const sim::ClusterConfig& cluster,
                                                 const trace::Trace& trace,
                                                 workloads::ReplayMode mode) {
  workloads::ReplayOptions options;
  options.mode = mode;
  return workloads::run_scheme(scheme, cluster, trace, options, /*store_data=*/false);
}

std::vector<std::string> scheme_columns() { return {"DEF", "AAL", "HARL", "MHA"}; }

void print_table(const std::string& title, const std::vector<std::string>& columns,
                 const std::vector<Row>& rows, const char* unit) {
  std::printf("\n%s  (%s)\n", title.c_str(), unit);
  std::printf("%-14s", "");
  for (const auto& col : columns) std::printf("%10s", col.c_str());
  const bool standard = columns == scheme_columns();
  if (standard) std::printf("%12s%12s", "MHA/DEF", "MHA/HARL");
  std::printf("\n");
  for (const Row& row : rows) {
    std::printf("%-14s", row.label.c_str());
    for (double v : row.values) std::printf("%10.1f", v);
    if (standard && row.values.size() == 4 && row.values[0] > 0 && row.values[2] > 0) {
      std::printf("%11.1f%%%11.1f%%", (row.values[3] / row.values[0] - 1.0) * 100.0,
                  (row.values[3] / row.values[2] - 1.0) * 100.0);
    }
    std::printf("\n");
  }
}

std::vector<Row> run_figure(const std::string& title,
                            const std::vector<std::pair<std::string, trace::Trace>>& cases,
                            const sim::ClusterConfig& cluster, workloads::ReplayMode mode) {
  std::vector<Row> rows;
  for (const auto& [label, trace] : cases) {
    Row row;
    row.label = label;
    for (auto& scheme : layouts::all_schemes()) {
      row.values.push_back(run_bandwidth(*scheme, cluster, trace, mode));
    }
    rows.push_back(std::move(row));
  }
  print_table(title, scheme_columns(), rows);
  return rows;
}

}  // namespace mha::bench
