// Request-path microbenchmarks + structural perf guard.
//
// Two kinds of output, deliberately separated:
//
//   stdout  - STRUCTURAL numbers only: counted heap allocations per request
//             (this binary links the counting operator new/delete), segment
//             and coalescing counts, extent-store fragmentation.  These are
//             deterministic — independent of machine speed, --threads, and
//             load — so CI diffs stdout byte-for-byte against
//             bench/golden/microbench.stdout and fails on any structural
//             regression (an allocation creeping back into the hot path, a
//             coalescing miss, a fragmentation change).
//   stderr + BENCH_micro.json (--json) - TIMED numbers: ns/op and ops/s for
//             each kernel.  Machine-dependent; tracked as a trajectory, never
//             diffed.
//
// Kernels: DRT lookup (sequential hit / random hit / miss), full
// translate+dispatch through MpiFile -> Redirector -> HybridPfs, page-cache
// read hits, extent-store write/read fast paths, and steady-state trace
// replay.
#include "bench_common.hpp"

#include <cstring>
#include <limits>

#include "cache/page_cache.hpp"
#include "common/alloc_counter.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/redirector.hpp"
#include "guard/guard.hpp"
#include "io/mpi_file.hpp"
#include "pfs/extent_store.hpp"
#include "qos/job.hpp"
#include "qos/policy.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

namespace {

/// Times `op` over `iters` iterations and records one JSON cell.  A batched
/// kernel passes ops_per_iter > 1 so ns/op stays per *request* (comparable
/// to the serial baselines); byte-moving kernels pass bytes_per_op so the
/// cell reports real MiB/s instead of 0.  Returns ns/op for speedup gates.
template <typename Fn>
double timed(std::size_t sequence, const char* label, std::size_t iters, Fn&& op,
             std::size_t ops_per_iter = 1, common::ByteCount bytes_per_op = 0) {
  const double start = bench::wall_now();
  for (std::size_t i = 0; i < iters; ++i) op(i);
  const double elapsed = bench::wall_now() - start;
  const double ops = static_cast<double>(iters) * static_cast<double>(ops_per_iter);
  bench::CellRecord cell;
  cell.case_label = label;
  cell.variant = "timed";
  cell.wall_seconds = elapsed;
  cell.ops_per_s = elapsed > 0.0 ? ops / elapsed : 0.0;
  cell.ns_per_op = ops > 0.0 ? elapsed * 1e9 / ops : 0.0;
  cell.mib_per_s = elapsed > 0.0 && bytes_per_op > 0
                       ? static_cast<double>(bytes_per_op) * ops / elapsed /
                             static_cast<double>(common::kMiB)
                       : 0.0;
  bench::report().add(sequence, cell);
  if (cell.mib_per_s > 0.0) {
    std::fprintf(stderr, "%-32s %12.1f ops/s  %10.2f ns/op  %10.1f MiB/s\n", label,
                 cell.ops_per_s, cell.ns_per_op, cell.mib_per_s);
  } else {
    std::fprintf(stderr, "%-32s %12.1f ops/s  %10.2f ns/op\n", label, cell.ops_per_s,
                 cell.ns_per_op);
  }
  return cell.ns_per_op;
}

core::Drt dense_table(common::ByteCount file_bytes, common::ByteCount entry) {
  core::Drt drt("micro.orig");
  for (common::Offset pos = 0; pos < file_bytes; pos += entry) {
    (void)drt.insert(core::DrtEntry{pos, entry, "micro.region", pos});
  }
  return drt;
}

/// A world for end-to-end request kernels: PFS + identity redirector + file.
/// Members are constructed in place (MpiFile keeps pointers to pfs/mpi, so
/// the world must not relocate them after open).
struct RequestWorld {
  pfs::HybridPfs pfs;
  io::MpiSim mpi;
  std::unique_ptr<core::Redirector> redirector;
  std::unique_ptr<io::MpiFile> file;

  RequestWorld(common::ByteCount file_bytes, common::ByteCount entry, int ranks = 1)
      : pfs(bench::paper_cluster()), mpi(ranks) {
    (void)pfs.create_file("micro.f");
    auto r = core::Redirector::create(
        pfs, core::Redirector::identity_table("micro.f", file_bytes, entry));
    redirector = std::make_unique<core::Redirector>(std::move(r).take());
    auto f = io::MpiFile::open(pfs, mpi, "micro.f");
    file = std::make_unique<io::MpiFile>(std::move(*f));
    file->set_interceptor(redirector.get());
  }
};

}  // namespace

int main(int argc, char** argv) {
  // --assert-batch-speedup: exit non-zero unless the batched request path
  // beats the serial per-request baseline by >= 3x at batch size 32 (the
  // CI perf-smoke gate).  Filtered out before bench::init, which rejects
  // flags it does not know.
  bool assert_batch_speedup = false;
  // --assert-cache-speedup: exit non-zero unless a page-cache read hit is
  // >= 50x cheaper than the uncached 4 KiB translate+dispatch baseline.
  bool assert_cache_speedup = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--assert-batch-speedup") == 0) {
      assert_batch_speedup = true;
      continue;
    }
    if (i > 0 && std::strcmp(argv[i], "--assert-cache-speedup") == 0) {
      assert_cache_speedup = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  bench::init("micro", static_cast<int>(args.size()), args.data());
  constexpr common::ByteCount kFile = 16_MiB;
  constexpr common::ByteCount kEntry = 64_KiB;
  constexpr common::ByteCount kRequest = 4_KiB;

  // ------------------------------------------------------------ structural
  std::printf("=== microbench structural guard (deterministic) ===\n");
  std::printf("allocation hook linked: %s\n",
              common::allocation_hook_linked() ? "yes" : "NO");

  {
    // Counted allocations per steady-state request, single-segment shape:
    // 64 KiB requests against 1 MiB identity entries (the fig14 shape).
    RequestWorld world(4_MiB, 1_MiB);
    std::vector<std::uint8_t> buffer(64_KiB, 0x5A);
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {  // warm-up
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
      (void)world.file->read_at(0, pos, buffer.data(), buffer.size());
    }
    common::AllocationScope scope;
    std::size_t requests = 0;
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
      (void)world.file->read_at(0, pos, buffer.data(), buffer.size());
      requests += 2;
    }
    std::printf("steady-state allocs/request (64KiB req, 1MiB entries): %.2f over %zu requests\n",
                static_cast<double>(scope.allocations()) / static_cast<double>(requests),
                requests);
  }
  {
    // Multi-segment shape: 8 KiB entries split each 64 KiB request 8 ways.
    RequestWorld world(1_MiB, 8_KiB);
    std::vector<std::uint8_t> buffer(64_KiB, 0xC3);
    for (common::Offset pos = 0; pos < 1_MiB; pos += 64_KiB) {  // warm-up
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
    }
    common::AllocationScope scope;
    std::size_t requests = 0;
    for (common::Offset pos = 0; pos < 1_MiB; pos += 64_KiB) {
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
      (void)world.file->read_at(0, pos, buffer.data(), buffer.size());
      requests += 2;
    }
    std::printf("steady-state allocs/request (64KiB req, 8KiB entries):  %.2f over %zu requests\n",
                static_cast<double>(scope.allocations()) / static_cast<double>(requests),
                requests);
  }
  {
    // Coalescing: adjacent same-region segments must merge before dispatch.
    pfs::HybridPfs pfs(bench::paper_cluster());
    (void)pfs.create_file("c.orig");
    (void)pfs.create_file("c.region");
    core::Drt drt("c.orig");
    for (common::Offset pos = 0; pos < 1_MiB; pos += 8_KiB) {
      (void)drt.insert(core::DrtEntry{pos, 8_KiB, "c.region", pos});
    }
    auto redirector = core::Redirector::create(pfs, std::move(drt));
    const auto raw = redirector->drt().lookup(0, 1_MiB);
    io::SegmentList merged;
    redirector->translate(0, 1_MiB, merged);
    std::printf("coalescing (1MiB span, 8KiB entries): %zu DRT segments -> %zu dispatched\n",
                raw.size(), merged.size());
  }
  {
    // Extent-store append pattern must stay a single extent (no fragmentation).
    pfs::ExtentStore store;
    std::vector<std::uint8_t> block(64_KiB, 1);
    for (common::Offset pos = 0; pos < 8_MiB; pos += 64_KiB) {
      store.write(pos, block.data(), block.size());
    }
    std::printf("extent store after 8MiB sequential append: %zu extent(s), %llu bytes\n",
                store.extent_count(),
                static_cast<unsigned long long>(store.stored_bytes()));
  }
  {
    // Batched store write: 32 adjacent 4 KiB slices land as ONE extent with
    // the checksum refresh merged across the whole span (not 32 per-slice
    // rechecksums) — the coalescing the batched request path rides.
    pfs::ExtentStore store;
    std::vector<std::uint8_t> payload(32 * 4_KiB, 3);
    std::vector<pfs::ExtentStore::IoSlice> slices;
    for (std::size_t i = 0; i < 32; ++i) {
      slices.push_back(pfs::ExtentStore::IoSlice{
          static_cast<common::Offset>(i) * 4_KiB, payload.data() + i * 4_KiB, 4_KiB});
    }
    store.write_batch(slices);
    std::printf("extent store after batched 32x4KiB adjacent write: %zu extent(s), %llu bytes\n",
                store.extent_count(),
                static_cast<unsigned long long>(store.stored_bytes()));
  }
  {
    // DRT split shape for a representative straddling request.
    const core::Drt drt = dense_table(kFile, kEntry);
    const auto segs = drt.lookup(kEntry - 1_KiB, 2_KiB);  // straddles two entries
    std::printf("DRT straddle split (2KiB over a 64KiB boundary): %zu segments\n",
                segs.size());
  }
  {
    // Multi-tenant request path: job stamping + per-job server rows + a
    // fair-share scheduler's ledgers must all stay allocation-free once the
    // flat per-job structures are warm.
    qos::JobTable jobs;
    (void)jobs.add("a", 1.0, qos::PriorityClass::kInteractive);
    (void)jobs.add("b", 2.0);
    auto scheduler = qos::make_qos_scheduler(qos::QosKind::kJobFair, jobs);
    RequestWorld world(4_MiB, 1_MiB);
    world.pfs.set_scheduler(scheduler.get());
    scheduler->reserve_metrics(512, world.pfs.num_servers());
    std::vector<std::uint8_t> buffer(64_KiB, 0x7E);
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {  // warm-up
      world.pfs.set_active_job(static_cast<common::JobId>((pos / 64_KiB) % 2));
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
      (void)world.file->read_at(0, pos, buffer.data(), buffer.size());
    }
    common::AllocationScope scope;
    std::size_t requests = 0;
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {
      world.pfs.set_active_job(static_cast<common::JobId>((pos / 64_KiB) % 2));
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
      (void)world.file->read_at(0, pos, buffer.data(), buffer.size());
      requests += 2;
    }
    std::printf("steady-state allocs/request (job-fair, 2 jobs stamped):  %.2f over %zu requests\n",
                static_cast<double>(scope.allocations()) / static_cast<double>(requests),
                requests);
    world.pfs.set_scheduler(nullptr);
    world.pfs.set_active_job(common::kDefaultJob);
  }
  {
    // Guarded request path: an OverloadGuard attached and an enforced
    // end-to-end deadline route every sub-request through the admission
    // gate, breaker bookkeeping, and cancellation receipts — all of which
    // must stay allocation-free once the flat per-server state is warm.
    guard::GuardOptions options;
    options.shed_backlog = {std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::infinity()};
    RequestWorld world(4_MiB, 1_MiB);
    guard::OverloadGuard overload_guard(world.pfs.num_servers(), options);
    world.pfs.set_guard(&overload_guard);
    world.pfs.set_active_deadline(1e9);  // enforced, never missed
    std::vector<std::uint8_t> buffer(64_KiB, 0x99);
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {  // warm-up
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
      (void)world.file->read_at(0, pos, buffer.data(), buffer.size());
    }
    common::AllocationScope scope;
    std::size_t requests = 0;
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
      (void)world.file->read_at(0, pos, buffer.data(), buffer.size());
      requests += 2;
    }
    std::printf("steady-state allocs/request (guarded, deadline enforced): %.2f over %zu requests\n",
                static_cast<double>(scope.allocations()) / static_cast<double>(requests),
                requests);
    world.pfs.set_guard(nullptr);
    world.pfs.set_active_deadline(std::numeric_limits<double>::infinity());
  }
  {
    // Batched request path: after the first batch grows the arenas, the
    // whole vectorized pipeline — shared-cursor translate, cross-request
    // coalescing, one dispatch per server — must be allocation-free.
    RequestWorld world(4_MiB, 1_MiB, /*ranks=*/32);
    std::vector<std::uint8_t> buffer(32 * 4_KiB, 0x42);
    std::vector<io::BatchOp> ops(32);
    io::BatchOutcomeVec outcomes;
    const auto run_batches = [&](std::size_t* requests) {
      for (common::Offset base = 0; base < 4_MiB; base += 32 * 4_KiB) {
        for (std::size_t w = 0; w < ops.size(); ++w) {
          ops[w].rank = static_cast<int>(w);
          ops[w].offset = base + static_cast<common::Offset>(w) * 4_KiB;
          ops[w].size = 4_KiB;
          ops[w].read_out = buffer.data() + w * 4_KiB;
          ops[w].write_data = buffer.data() + w * 4_KiB;
        }
        world.file->write_at_batch(ops, outcomes);
        world.file->read_at_batch(ops, outcomes);
        if (requests != nullptr) *requests += 2 * ops.size();
      }
    };
    run_batches(nullptr);  // warm-up
    common::AllocationScope scope;
    std::size_t requests = 0;
    run_batches(&requests);
    std::printf("steady-state allocs/request (batched 32x4KiB, fast path): %.2f over %zu requests\n",
                static_cast<double>(scope.allocations()) / static_cast<double>(requests),
                requests);
  }
  {
    // Page-cache hit path: once every page is resident, a read is a table
    // probe plus a client-local memcpy — it must not allocate.
    RequestWorld world(4_MiB, 1_MiB);
    cache::CacheConfig config;
    config.num_pages = 64;  // 4 MiB pool: the whole file stays resident
    cache::CachedFile cached(*world.file, world.mpi, world.pfs, config);
    std::vector<std::uint8_t> buffer(64_KiB, 0);
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {  // warm the pool
      (void)cached.read_at(0, pos, buffer.data(), 64_KiB);
    }
    common::AllocationScope scope;
    std::size_t requests = 0;
    for (common::Offset pos = 0; pos < 4_MiB; pos += 4_KiB) {
      (void)cached.read_at(0, pos, buffer.data(), 4_KiB);
      ++requests;
    }
    std::printf("steady-state allocs/request (cached 4KiB read hits):      %.2f over %zu requests\n",
                static_cast<double>(scope.allocations()) / static_cast<double>(requests),
                requests);
  }
  {
    // Write-back coalescing shape: 256 adjacent 4 KiB writes dirty 16 pages
    // and the sync flush must dispatch them as ONE offset-sorted run.
    RequestWorld world(4_MiB, 1_MiB);
    cache::CacheConfig config;
    config.num_pages = 64;
    cache::CachedFile cached(*world.file, world.mpi, world.pfs, config);
    std::vector<std::uint8_t> block(4_KiB, 0x6B);
    for (common::Offset pos = 0; pos < 1_MiB; pos += 4_KiB) {
      (void)cached.write_at(0, pos, block.data(), block.size());
    }
    (void)cached.flush_all(0.0);
    const cache::CacheMetrics& m = cached.metrics();
    std::printf("write-back coalescing (256x4KiB adjacent): absorbed=%llu coalesced=%llu "
                "-> %llu run(s), %llu page(s), %llu bytes\n",
                static_cast<unsigned long long>(m.absorbed_writes),
                static_cast<unsigned long long>(m.coalesced_writes),
                static_cast<unsigned long long>(m.flush_ops),
                static_cast<unsigned long long>(m.flush_pages),
                static_cast<unsigned long long>(m.flush_bytes));
  }

  // ----------------------------------------------------------------- timed
  std::fprintf(stderr, "=== microbench timed kernels (machine-dependent) ===\n");
  const auto iters = [](std::size_t n) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(
                                        static_cast<double>(n) * bench::options().scale));
  };
  {
    const core::Drt drt = dense_table(kFile, kEntry);
    core::Drt::SegmentVec scratch;
    const std::size_t n = iters(200'000);
    timed(0, "drt_lookup_sequential", n, [&](std::size_t i) {
      drt.lookup((static_cast<common::Offset>(i) * kRequest) % kFile, kRequest, scratch);
    });
    std::vector<common::Offset> offsets(8192);
    common::Rng rng(42);
    for (auto& o : offsets) o = rng.next_below(kFile - kRequest);
    timed(1, "drt_lookup_hit_random", n, [&](std::size_t i) {
      drt.lookup(offsets[i % offsets.size()], kRequest, scratch);
    });
    // The batched-translate hint: one cursor shared across an ascending
    // sweep gallops from the previous hit instead of re-searching.
    core::Drt::LookupCursor cursor;
    timed(8, "drt_lookup_cursor_sequential", n, [&](std::size_t i) {
      const common::Offset pos = (static_cast<common::Offset>(i) * kRequest) % kFile;
      if (pos == 0) cursor = core::Drt::LookupCursor{};
      drt.lookup(pos, kRequest, scratch, cursor);
    });
  }
  {
    // Miss kernel: sparse table (every other 64 KiB covered), lookups in gaps.
    core::Drt drt("micro.sparse");
    for (common::Offset pos = 0; pos < kFile; pos += 2 * kEntry) {
      (void)drt.insert(core::DrtEntry{pos, kEntry, "micro.region", pos / 2});
    }
    core::Drt::SegmentVec scratch;
    timed(2, "drt_lookup_miss", iters(200'000), [&](std::size_t i) {
      const common::Offset gap =
          kEntry + (static_cast<common::Offset>(i) * 2 * kEntry) % kFile;
      drt.lookup(gap + 4_KiB, kRequest, scratch);
    });
  }
  {
    RequestWorld world(4_MiB, 1_MiB);
    std::vector<std::uint8_t> buffer(64_KiB, 0x5A);
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
    }
    timed(3, "translate_dispatch_write", iters(20'000), [&](std::size_t i) {
      (void)world.file->write_at(0, (i * 64_KiB) % 4_MiB, buffer.data(), buffer.size());
    }, 1, 64_KiB);
    timed(4, "translate_dispatch_read", iters(20'000), [&](std::size_t i) {
      (void)world.file->read_at(0, (i * 64_KiB) % 4_MiB, buffer.data(), buffer.size());
    }, 1, 64_KiB);
  }
  double serial_write_ns = 0.0;
  double serial_read_ns = 0.0;
  double batch32_write_ns = 0.0;
  double batch32_read_ns = 0.0;
  {
    // Batched vs serial end-to-end path, small-request regime: adjacent
    // 4 KiB requests, where per-request fixed costs (translate, dispatch,
    // checksum refresh of a whole 64 KiB chunk) dominate and coalescing
    // pays.  ns/op is per request in both shapes.
    RequestWorld world(4_MiB, 1_MiB, /*ranks=*/128);
    std::vector<std::uint8_t> buffer(128 * 4_KiB, 0x5A);
    for (common::Offset pos = 0; pos < 4_MiB; pos += 4_KiB) {  // warm file
      (void)world.file->write_at(0, pos, buffer.data(), 4_KiB);
    }
    serial_write_ns =
        timed(9, "translate_dispatch_write_4k", iters(20'000), [&](std::size_t i) {
          (void)world.file->write_at(0, (i * 4_KiB) % 4_MiB, buffer.data(), 4_KiB);
        }, 1, 4_KiB);
    serial_read_ns =
        timed(10, "translate_dispatch_read_4k", iters(20'000), [&](std::size_t i) {
          (void)world.file->read_at(0, (i * 4_KiB) % 4_MiB, buffer.data(), 4_KiB);
        }, 1, 4_KiB);

    const std::size_t batch_sizes[] = {8, 32, 128};
    std::vector<io::BatchOp> ops;
    io::BatchOutcomeVec outcomes;
    std::size_t sequence = 11;
    for (const std::size_t n : batch_sizes) {
      ops.resize(n);
      const common::ByteCount span = static_cast<common::ByteCount>(n) * 4_KiB;
      const auto run_batch = [&](std::size_t i) {
        const common::Offset base = (static_cast<common::Offset>(i) * span) % 4_MiB;
        for (std::size_t w = 0; w < n; ++w) {
          ops[w].rank = static_cast<int>(w);
          ops[w].offset = base + static_cast<common::Offset>(w) * 4_KiB;
          ops[w].size = 4_KiB;
          ops[w].read_out = buffer.data() + w * 4_KiB;
          ops[w].write_data = buffer.data() + w * 4_KiB;
        }
      };
      run_batch(0);
      world.file->write_at_batch(ops, outcomes);  // warm the arenas
      world.file->read_at_batch(ops, outcomes);
      char label[64];
      std::snprintf(label, sizeof(label), "translate_dispatch_write_batch%zu", n);
      const double write_ns = timed(sequence++, label, iters(40'000 / n),
                                    [&](std::size_t i) {
                                      run_batch(i);
                                      world.file->write_at_batch(ops, outcomes);
                                    },
                                    n, 4_KiB);
      std::snprintf(label, sizeof(label), "translate_dispatch_read_batch%zu", n);
      const double read_ns = timed(sequence++, label, iters(40'000 / n),
                                   [&](std::size_t i) {
                                     run_batch(i);
                                     world.file->read_at_batch(ops, outcomes);
                                   },
                                   n, 4_KiB);
      if (n == 32) {
        batch32_write_ns = write_ns;
        batch32_read_ns = read_ns;
      }
    }
  }
  double cached_hit_ns = 0.0;
  {
    // Cache hit kernel: the comparison target for translate_dispatch_read_4k
    // — a resident 4 KiB read skips translate and dispatch entirely.
    RequestWorld world(4_MiB, 1_MiB);
    cache::CacheConfig config;
    config.num_pages = 64;
    cache::CachedFile cached(*world.file, world.mpi, world.pfs, config);
    std::vector<std::uint8_t> buffer(64_KiB, 0);
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {  // warm the pool
      (void)cached.read_at(0, pos, buffer.data(), 64_KiB);
    }
    cached_hit_ns = timed(17, "cached_read_hit", iters(200'000), [&](std::size_t i) {
      (void)cached.read_at(0, (i * 4_KiB) % 4_MiB, buffer.data(), 4_KiB);
    }, 1, 4_KiB);
  }
  {
    pfs::ExtentStore store;
    std::vector<std::uint8_t> block(64_KiB, 2);
    for (common::Offset pos = 0; pos < 8_MiB; pos += 64_KiB) {
      store.write(pos, block.data(), block.size());
    }
    timed(5, "extent_store_write_inplace", iters(50'000), [&](std::size_t i) {
      store.write((i * 64_KiB) % 8_MiB, block.data(), block.size());
    }, 1, 64_KiB);
    timed(6, "extent_store_read_fast", iters(50'000), [&](std::size_t i) {
      store.read((i * 64_KiB) % 8_MiB, block.data(), block.size());
    }, 1, 64_KiB);
  }
  {
    // Steady-state replay: the whole measurement harness end to end.
    workloads::IorMixedSizesConfig config;
    config.num_procs = 8;
    config.request_sizes = {4_KiB, 64_KiB};
    config.file_size = 16_MiB;
    config.file_name = "micro.ior";
    config.seed = 7;
    const trace::Trace trace = workloads::ior_mixed_sizes(config);
    pfs::PfsOptions options;
    options.store_data = false;
    pfs::HybridPfs pfs(bench::paper_cluster(), options);
    (void)pfs.create_file(trace.file_name);
    pfs.mds().extend(*pfs.open(trace.file_name), trace::extent_end(trace.records));
    layouts::Deployment plain;
    plain.file_name = trace.file_name;
    (void)workloads::replay(pfs, plain, trace);  // warm-up
    const std::size_t reps = iters(8);
    std::size_t requests = 0;
    common::ByteCount bytes = 0;
    const double start = bench::wall_now();
    for (std::size_t i = 0; i < reps; ++i) {
      pfs.reset_stats();
      pfs.reset_clocks();
      auto result = workloads::replay(pfs, plain, trace);
      if (result.is_ok()) {
        requests += result->requests;
        bytes += result->bytes_total();
      }
    }
    const double elapsed = bench::wall_now() - start;
    bench::CellRecord cell;
    cell.case_label = "replay_steady_state";
    cell.variant = "timed";
    cell.wall_seconds = elapsed;
    cell.ops_per_s = elapsed > 0.0 ? static_cast<double>(requests) / elapsed : 0.0;
    cell.ns_per_op =
        requests > 0 ? elapsed * 1e9 / static_cast<double>(requests) : 0.0;
    cell.mib_per_s = elapsed > 0.0 ? static_cast<double>(bytes) / elapsed /
                                         static_cast<double>(common::kMiB)
                                   : 0.0;
    bench::report().add(7, cell);
    std::fprintf(stderr, "%-32s %12.1f req/s  %10.2f ns/req  %10.1f MiB/s\n",
                 "replay_steady_state", cell.ops_per_s, cell.ns_per_op, cell.mib_per_s);
  }

  if (assert_cache_speedup) {
    const double hit_speedup =
        cached_hit_ns > 0.0 ? serial_read_ns / cached_hit_ns : 0.0;
    std::fprintf(stderr,
                 "cached hit speedup vs uncached 4k read: %.1fx (gate: >= 50x)\n",
                 hit_speedup);
    if (hit_speedup < 50.0) {
      std::fprintf(stderr, "FAIL: cached read hit under 50x speedup gate\n");
      return bench::finish(1);
    }
  }
  if (assert_batch_speedup) {
    const double write_speedup =
        batch32_write_ns > 0.0 ? serial_write_ns / batch32_write_ns : 0.0;
    const double read_speedup =
        batch32_read_ns > 0.0 ? serial_read_ns / batch32_read_ns : 0.0;
    std::fprintf(stderr,
                 "batch32 speedup vs serial 4k: write %.2fx, read %.2fx (gate: >= 3x)\n",
                 write_speedup, read_speedup);
    if (write_speedup < 3.0 || read_speedup < 3.0) {
      std::fprintf(stderr, "FAIL: batched request path under 3x speedup gate\n");
      return bench::finish(1);
    }
  }
  return bench::finish();
}
