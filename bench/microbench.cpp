// Request-path microbenchmarks + structural perf guard.
//
// Two kinds of output, deliberately separated:
//
//   stdout  - STRUCTURAL numbers only: counted heap allocations per request
//             (this binary links the counting operator new/delete), segment
//             and coalescing counts, extent-store fragmentation.  These are
//             deterministic — independent of machine speed, --threads, and
//             load — so CI diffs stdout byte-for-byte against
//             bench/golden/microbench.stdout and fails on any structural
//             regression (an allocation creeping back into the hot path, a
//             coalescing miss, a fragmentation change).
//   stderr + BENCH_micro.json (--json) - TIMED numbers: ns/op and ops/s for
//             each kernel.  Machine-dependent; tracked as a trajectory, never
//             diffed.
//
// Kernels: DRT lookup (sequential hit / random hit / miss), full
// translate+dispatch through MpiFile -> Redirector -> HybridPfs, extent-store
// write/read fast paths, and steady-state trace replay.
#include "bench_common.hpp"

#include <cstring>
#include <limits>

#include "common/alloc_counter.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/redirector.hpp"
#include "guard/guard.hpp"
#include "io/mpi_file.hpp"
#include "pfs/extent_store.hpp"
#include "qos/job.hpp"
#include "qos/policy.hpp"
#include "workloads/ior.hpp"

using namespace mha;
using namespace mha::common::literals;

namespace {

/// Times `op` over `iters` iterations and records one JSON cell.
template <typename Fn>
void timed(std::size_t sequence, const char* label, std::size_t iters, Fn&& op) {
  const double start = bench::wall_now();
  for (std::size_t i = 0; i < iters; ++i) op(i);
  const double elapsed = bench::wall_now() - start;
  bench::CellRecord cell;
  cell.case_label = label;
  cell.variant = "timed";
  cell.wall_seconds = elapsed;
  cell.ops_per_s = elapsed > 0.0 ? static_cast<double>(iters) / elapsed : 0.0;
  cell.ns_per_op = static_cast<double>(elapsed) * 1e9 / static_cast<double>(iters);
  bench::report().add(sequence, cell);
  std::fprintf(stderr, "%-28s %12.1f ops/s  %10.2f ns/op\n", label, cell.ops_per_s,
               cell.ns_per_op);
}

core::Drt dense_table(common::ByteCount file_bytes, common::ByteCount entry) {
  core::Drt drt("micro.orig");
  for (common::Offset pos = 0; pos < file_bytes; pos += entry) {
    (void)drt.insert(core::DrtEntry{pos, entry, "micro.region", pos});
  }
  return drt;
}

/// A world for end-to-end request kernels: PFS + identity redirector + file.
/// Members are constructed in place (MpiFile keeps pointers to pfs/mpi, so
/// the world must not relocate them after open).
struct RequestWorld {
  pfs::HybridPfs pfs;
  io::MpiSim mpi{1};
  std::unique_ptr<core::Redirector> redirector;
  std::unique_ptr<io::MpiFile> file;

  RequestWorld(common::ByteCount file_bytes, common::ByteCount entry)
      : pfs(bench::paper_cluster()) {
    (void)pfs.create_file("micro.f");
    auto r = core::Redirector::create(
        pfs, core::Redirector::identity_table("micro.f", file_bytes, entry));
    redirector = std::make_unique<core::Redirector>(std::move(r).take());
    auto f = io::MpiFile::open(pfs, mpi, "micro.f");
    file = std::make_unique<io::MpiFile>(std::move(*f));
    file->set_interceptor(redirector.get());
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::init("micro", argc, argv);
  constexpr common::ByteCount kFile = 16_MiB;
  constexpr common::ByteCount kEntry = 64_KiB;
  constexpr common::ByteCount kRequest = 4_KiB;

  // ------------------------------------------------------------ structural
  std::printf("=== microbench structural guard (deterministic) ===\n");
  std::printf("allocation hook linked: %s\n",
              common::allocation_hook_linked() ? "yes" : "NO");

  {
    // Counted allocations per steady-state request, single-segment shape:
    // 64 KiB requests against 1 MiB identity entries (the fig14 shape).
    RequestWorld world(4_MiB, 1_MiB);
    std::vector<std::uint8_t> buffer(64_KiB, 0x5A);
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {  // warm-up
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
      (void)world.file->read_at(0, pos, buffer.data(), buffer.size());
    }
    common::AllocationScope scope;
    std::size_t requests = 0;
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
      (void)world.file->read_at(0, pos, buffer.data(), buffer.size());
      requests += 2;
    }
    std::printf("steady-state allocs/request (64KiB req, 1MiB entries): %.2f over %zu requests\n",
                static_cast<double>(scope.allocations()) / static_cast<double>(requests),
                requests);
  }
  {
    // Multi-segment shape: 8 KiB entries split each 64 KiB request 8 ways.
    RequestWorld world(1_MiB, 8_KiB);
    std::vector<std::uint8_t> buffer(64_KiB, 0xC3);
    for (common::Offset pos = 0; pos < 1_MiB; pos += 64_KiB) {  // warm-up
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
    }
    common::AllocationScope scope;
    std::size_t requests = 0;
    for (common::Offset pos = 0; pos < 1_MiB; pos += 64_KiB) {
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
      (void)world.file->read_at(0, pos, buffer.data(), buffer.size());
      requests += 2;
    }
    std::printf("steady-state allocs/request (64KiB req, 8KiB entries):  %.2f over %zu requests\n",
                static_cast<double>(scope.allocations()) / static_cast<double>(requests),
                requests);
  }
  {
    // Coalescing: adjacent same-region segments must merge before dispatch.
    pfs::HybridPfs pfs(bench::paper_cluster());
    (void)pfs.create_file("c.orig");
    (void)pfs.create_file("c.region");
    core::Drt drt("c.orig");
    for (common::Offset pos = 0; pos < 1_MiB; pos += 8_KiB) {
      (void)drt.insert(core::DrtEntry{pos, 8_KiB, "c.region", pos});
    }
    auto redirector = core::Redirector::create(pfs, std::move(drt));
    const auto raw = redirector->drt().lookup(0, 1_MiB);
    io::SegmentList merged;
    redirector->translate(0, 1_MiB, merged);
    std::printf("coalescing (1MiB span, 8KiB entries): %zu DRT segments -> %zu dispatched\n",
                raw.size(), merged.size());
  }
  {
    // Extent-store append pattern must stay a single extent (no fragmentation).
    pfs::ExtentStore store;
    std::vector<std::uint8_t> block(64_KiB, 1);
    for (common::Offset pos = 0; pos < 8_MiB; pos += 64_KiB) {
      store.write(pos, block.data(), block.size());
    }
    std::printf("extent store after 8MiB sequential append: %zu extent(s), %llu bytes\n",
                store.extent_count(),
                static_cast<unsigned long long>(store.stored_bytes()));
  }
  {
    // DRT split shape for a representative straddling request.
    const core::Drt drt = dense_table(kFile, kEntry);
    const auto segs = drt.lookup(kEntry - 1_KiB, 2_KiB);  // straddles two entries
    std::printf("DRT straddle split (2KiB over a 64KiB boundary): %zu segments\n",
                segs.size());
  }
  {
    // Multi-tenant request path: job stamping + per-job server rows + a
    // fair-share scheduler's ledgers must all stay allocation-free once the
    // flat per-job structures are warm.
    qos::JobTable jobs;
    (void)jobs.add("a", 1.0, qos::PriorityClass::kInteractive);
    (void)jobs.add("b", 2.0);
    auto scheduler = qos::make_qos_scheduler(qos::QosKind::kJobFair, jobs);
    RequestWorld world(4_MiB, 1_MiB);
    world.pfs.set_scheduler(scheduler.get());
    scheduler->reserve_metrics(512, world.pfs.num_servers());
    std::vector<std::uint8_t> buffer(64_KiB, 0x7E);
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {  // warm-up
      world.pfs.set_active_job(static_cast<common::JobId>((pos / 64_KiB) % 2));
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
      (void)world.file->read_at(0, pos, buffer.data(), buffer.size());
    }
    common::AllocationScope scope;
    std::size_t requests = 0;
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {
      world.pfs.set_active_job(static_cast<common::JobId>((pos / 64_KiB) % 2));
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
      (void)world.file->read_at(0, pos, buffer.data(), buffer.size());
      requests += 2;
    }
    std::printf("steady-state allocs/request (job-fair, 2 jobs stamped):  %.2f over %zu requests\n",
                static_cast<double>(scope.allocations()) / static_cast<double>(requests),
                requests);
    world.pfs.set_scheduler(nullptr);
    world.pfs.set_active_job(common::kDefaultJob);
  }
  {
    // Guarded request path: an OverloadGuard attached and an enforced
    // end-to-end deadline route every sub-request through the admission
    // gate, breaker bookkeeping, and cancellation receipts — all of which
    // must stay allocation-free once the flat per-server state is warm.
    guard::GuardOptions options;
    options.shed_backlog = {std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::infinity()};
    RequestWorld world(4_MiB, 1_MiB);
    guard::OverloadGuard overload_guard(world.pfs.num_servers(), options);
    world.pfs.set_guard(&overload_guard);
    world.pfs.set_active_deadline(1e9);  // enforced, never missed
    std::vector<std::uint8_t> buffer(64_KiB, 0x99);
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {  // warm-up
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
      (void)world.file->read_at(0, pos, buffer.data(), buffer.size());
    }
    common::AllocationScope scope;
    std::size_t requests = 0;
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
      (void)world.file->read_at(0, pos, buffer.data(), buffer.size());
      requests += 2;
    }
    std::printf("steady-state allocs/request (guarded, deadline enforced): %.2f over %zu requests\n",
                static_cast<double>(scope.allocations()) / static_cast<double>(requests),
                requests);
    world.pfs.set_guard(nullptr);
    world.pfs.set_active_deadline(std::numeric_limits<double>::infinity());
  }

  // ----------------------------------------------------------------- timed
  std::fprintf(stderr, "=== microbench timed kernels (machine-dependent) ===\n");
  const auto iters = [](std::size_t n) {
    return std::max<std::size_t>(1, static_cast<std::size_t>(
                                        static_cast<double>(n) * bench::options().scale));
  };
  {
    const core::Drt drt = dense_table(kFile, kEntry);
    core::Drt::SegmentVec scratch;
    const std::size_t n = iters(2'000'000);
    timed(0, "drt_lookup_sequential", n, [&](std::size_t i) {
      drt.lookup((static_cast<common::Offset>(i) * kRequest) % kFile, kRequest, scratch);
    });
    std::vector<common::Offset> offsets(8192);
    common::Rng rng(42);
    for (auto& o : offsets) o = rng.next_below(kFile - kRequest);
    timed(1, "drt_lookup_hit_random", n, [&](std::size_t i) {
      drt.lookup(offsets[i % offsets.size()], kRequest, scratch);
    });
  }
  {
    // Miss kernel: sparse table (every other 64 KiB covered), lookups in gaps.
    core::Drt drt("micro.sparse");
    for (common::Offset pos = 0; pos < kFile; pos += 2 * kEntry) {
      (void)drt.insert(core::DrtEntry{pos, kEntry, "micro.region", pos / 2});
    }
    core::Drt::SegmentVec scratch;
    timed(2, "drt_lookup_miss", iters(2'000'000), [&](std::size_t i) {
      const common::Offset gap =
          kEntry + (static_cast<common::Offset>(i) * 2 * kEntry) % kFile;
      drt.lookup(gap + 4_KiB, kRequest, scratch);
    });
  }
  {
    RequestWorld world(4_MiB, 1_MiB);
    std::vector<std::uint8_t> buffer(64_KiB, 0x5A);
    for (common::Offset pos = 0; pos < 4_MiB; pos += 64_KiB) {
      (void)world.file->write_at(0, pos, buffer.data(), buffer.size());
    }
    timed(3, "translate_dispatch_write", iters(200'000), [&](std::size_t i) {
      (void)world.file->write_at(0, (i * 64_KiB) % 4_MiB, buffer.data(), buffer.size());
    });
    timed(4, "translate_dispatch_read", iters(200'000), [&](std::size_t i) {
      (void)world.file->read_at(0, (i * 64_KiB) % 4_MiB, buffer.data(), buffer.size());
    });
  }
  {
    pfs::ExtentStore store;
    std::vector<std::uint8_t> block(64_KiB, 2);
    for (common::Offset pos = 0; pos < 8_MiB; pos += 64_KiB) {
      store.write(pos, block.data(), block.size());
    }
    timed(5, "extent_store_write_inplace", iters(500'000), [&](std::size_t i) {
      store.write((i * 64_KiB) % 8_MiB, block.data(), block.size());
    });
    timed(6, "extent_store_read_fast", iters(500'000), [&](std::size_t i) {
      store.read((i * 64_KiB) % 8_MiB, block.data(), block.size());
    });
  }
  {
    // Steady-state replay: the whole measurement harness end to end.
    workloads::IorMixedSizesConfig config;
    config.num_procs = 8;
    config.request_sizes = {4_KiB, 64_KiB};
    config.file_size = 16_MiB;
    config.file_name = "micro.ior";
    config.seed = 7;
    const trace::Trace trace = workloads::ior_mixed_sizes(config);
    pfs::PfsOptions options;
    options.store_data = false;
    pfs::HybridPfs pfs(bench::paper_cluster(), options);
    (void)pfs.create_file(trace.file_name);
    pfs.mds().extend(*pfs.open(trace.file_name), trace::extent_end(trace.records));
    layouts::Deployment plain;
    plain.file_name = trace.file_name;
    (void)workloads::replay(pfs, plain, trace);  // warm-up
    const std::size_t reps = iters(40);
    std::size_t requests = 0;
    const double start = bench::wall_now();
    for (std::size_t i = 0; i < reps; ++i) {
      pfs.reset_stats();
      pfs.reset_clocks();
      auto result = workloads::replay(pfs, plain, trace);
      if (result.is_ok()) requests += result->requests;
    }
    const double elapsed = bench::wall_now() - start;
    bench::CellRecord cell;
    cell.case_label = "replay_steady_state";
    cell.variant = "timed";
    cell.wall_seconds = elapsed;
    cell.ops_per_s = elapsed > 0.0 ? static_cast<double>(requests) / elapsed : 0.0;
    cell.ns_per_op =
        requests > 0 ? elapsed * 1e9 / static_cast<double>(requests) : 0.0;
    bench::report().add(7, cell);
    std::fprintf(stderr, "%-28s %12.1f req/s  %10.2f ns/req\n", "replay_steady_state",
                 cell.ops_per_s, cell.ns_per_op);
  }
  return bench::finish();
}
