// Extension bench: two-phase collective I/O vs independent I/O.
//
// HPIO's interleaved strided pattern is the canonical collective-buffering
// case: every process owns every P-th small region, so independent I/O
// floods the servers with tiny requests while two-phase aggregation turns
// each iteration into a few large contiguous ones.  This quantifies the
// substrate's collective path across region sizes (the layout schemes of the
// paper are orthogonal: both modes run on the same DEF-striped file).
#include "bench_common.hpp"

#include "common/units.hpp"
#include "io/collective.hpp"
#include "workloads/hpio.hpp"

using namespace mha;
using namespace mha::common::literals;

int main(int argc, char** argv) {
  bench::init("ext_collective_io", argc, argv);
  std::printf("=== Extension: collective (two-phase) vs independent I/O ===\n");
  std::printf("HPIO interleaved pattern, 16 procs, 512 iterations, 6h:2s, DEF layout\n\n");
  std::printf("%-12s %14s %14s %10s\n", "region size", "indep MiB/s", "collec MiB/s", "speedup");  // indep = synchronous per-iteration

  const std::vector<common::ByteCount> sizes = {4_KiB, 16_KiB, 64_KiB, 256_KiB};
  struct Cell {
    double independent = 0.0;
    double collective = 0.0;
    double wall = 0.0;
    bool ok = false;
  };
  // One pool cell per region size; the two replay modes within a cell stay
  // sequential (each builds and mutates its own PFS).
  auto cells = exec::default_pool().parallel_map(sizes.size(), [&](std::size_t index) {
    const common::ByteCount size = sizes[index];
    Cell cell;
    const double cell_start = bench::wall_now();
    workloads::HpioConfig config;
    config.num_procs = bench::scaled_procs(16);
    config.region_count = bench::scaled_count(512, 32);
    config.region_sizes = {size};
    config.op = common::OpType::kWrite;
    const trace::Trace trace = workloads::hpio(config);
    const common::ByteCount total =
        size * static_cast<common::ByteCount>(config.region_count) *
        static_cast<common::ByteCount>(config.num_procs);

    pfs::PfsOptions timing_only;
    timing_only.store_data = false;

    // Independent: closed-loop per rank, as the replayer does it.
    {
      pfs::HybridPfs pfs(bench::paper_cluster(), timing_only);
      auto file = pfs.create_file(trace.file_name);
      if (!file.is_ok()) return cell;
      // Synchronous independent I/O: each iteration's pieces issue together
      // and a barrier closes the iteration (the same synchronisation a
      // collective call implies).
      io::MpiSim mpi(config.num_procs);
      std::vector<std::uint8_t> buffer;
      common::Seconds iteration = trace.records.front().t_start;
      for (const auto& r : trace.records) {
        if (r.t_start != iteration) {
          mpi.barrier();
          iteration = r.t_start;
        }
        buffer.resize(r.size);
        auto w = pfs.write(*file, r.offset, buffer.data(), r.size, mpi.now(r.rank));
        if (!w.is_ok()) return cell;
        mpi.advance(r.rank, w->completion);
      }
      mpi.barrier();
      cell.independent = static_cast<double>(total) / mpi.max_time() / 1048576.0;
    }

    // Collective: one write_at_all per iteration (the records sharing a
    // t_start), the way an MPI application would issue this pattern.
    {
      pfs::HybridPfs pfs(bench::paper_cluster(), timing_only);
      auto file = pfs.create_file(trace.file_name);
      if (!file.is_ok()) return cell;
      io::MpiSim mpi(config.num_procs);
      std::vector<io::CollectiveRequest> batch;
      common::Seconds batch_time = trace.records.front().t_start;
      auto flush = [&]() -> bool {
        if (batch.empty()) return true;
        auto result = io::collective_write(pfs, mpi, *file, batch);
        batch.clear();
        return result.is_ok();
      };
      for (const auto& r : trace.records) {
        if (r.t_start != batch_time) {
          if (!flush()) return cell;
          batch_time = r.t_start;
        }
        batch.push_back(io::CollectiveRequest{r.rank, r.offset, r.size});
      }
      if (!flush()) return cell;
      cell.collective = static_cast<double>(total) / mpi.max_time() / 1048576.0;
    }
    cell.wall = bench::wall_now() - cell_start;
    cell.ok = true;
    return cell;
  });

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Cell& cell = cells[i];
    if (!cell.ok) return bench::finish(1);
    const std::string label = common::format_bytes(sizes[i]);
    bench::report().add(2 * i, bench::CellRecord{label, "independent", cell.wall, 0.0,
                                                 cell.independent});
    bench::report().add(2 * i + 1,
                        bench::CellRecord{label, "collective", 0.0, 0.0, cell.collective});
    std::printf("%-12s %14.1f %14.1f %9.2fx\n", label.c_str(), cell.independent,
                cell.collective, cell.collective / cell.independent);
  }
  std::printf(
      "\nReading guide: the textbook two-phase crossover — aggregation wins for\n"
      "small strided pieces (per-request overheads dominate) and loses once\n"
      "pieces are large enough that the extra copy through the aggregators\n"
      "costs more than it saves.  ROMIO enables collective buffering under\n"
      "exactly this heuristic.\n");
  return bench::finish();
}
