#!/usr/bin/env bash
# Tier-1 gate under sanitizers: configure + build + ctest with the `asan`
# preset (-fsanitize=address,undefined).  Run from anywhere; exits non-zero
# on the first failing step so it slots into CI as-is.
#
# LeakSanitizer is disabled via the preset's ASAN_OPTIONS: it needs ptrace,
# which sandboxed containers commonly deny, and the suite's processes are
# short-lived anyway — ASan/UBSan keep memory errors and UB covered.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 4)"

cmake --preset asan
cmake --build --preset asan -j "${jobs}"
ctest --preset asan -j "${jobs}"

# Structural perf guard: the microbench's stdout (counted allocs/request,
# coalescing and fragmentation counts) is deterministic — including under
# sanitizers — so any drift from the committed golden is a regression.
# --scale only shrinks the timed kernels (stderr/JSON), never stdout.
cmake --build --preset asan -j "${jobs}" --target microbench
"${repo_root}/build-asan/bench/microbench" --threads=1 --scale=0.05 \
  | diff -u "${repo_root}/bench/golden/microbench.stdout" -

# Page-cache gate: re-run the cache suites by name (hit/eviction semantics,
# boundary-exact coalescing, cached-replay equivalence, cache-vs-migration
# consistency), then the coalescing bench whose exit code enforces the
# >=10x dispatched-op / >=3x bandwidth contract on the LANL pattern.
ctest --preset asan -j "${jobs}" -R 'Cache|Cached|Prefetch|ReadAhead|Flush|Clock'
cmake --build --preset asan -j "${jobs}" --target ext_cache
"${repo_root}/build-asan/bench/ext_cache" --threads=1 --scale=0.05 > /dev/null

# Integrity gate: re-run the checksum/scrub/crash-recovery suites by name so
# a filter typo in the binaries can never silently drop them, then run the
# seeded corruption + scrub sweep (the tail section of ext_fault) under the
# sanitizers.  The sweep exits non-zero unless every planted fault is
# detected and every DRT-reachable chunk repairs.
ctest --preset asan -j "${jobs}" \
  -R 'Checksums|SilentFault|Scrubber|Integrity|CrashMatrix|FaultMetricsTable|ReplayVerification|RecoveryIdempotence'
cmake --build --preset asan -j "${jobs}" --target ext_fault
"${repo_root}/build-asan/bench/ext_fault" --threads=1 --scale=0.05 > /dev/null

# Repair gate: re-run the permanent-loss suites by name (membership epochs,
# replica column, failover/mirror semantics, rebuild crash matrix), then the
# kill-grid bench whose exit code enforces zero data loss for replicated
# regions, rebuild-to-zero-failover and the bounded victim p99.
ctest --preset asan -j "${jobs}" -R 'Repair|Membership|DrtReplica|Failover|Rebuild|Unreplicated|KillWipes'
cmake --build --preset asan -j "${jobs}" --target ext_repair
"${repo_root}/build-asan/bench/ext_repair" --threads=1 --scale=0.05 > /dev/null

# ThreadSanitizer pass over the concurrency surface: the exec pool's own
# tests plus the sched/fault/guard suites that exercise replay on the pool
# (the guard suite's chaos cells fan out on it), the batched-vs-serial
# equivalence suite (its thread-invariance test fans combos out on an
# 8-thread pool), and the repair suite (ext_repair's kill cells pump the
# rebuilder from replay barriers on pool threads).  The rest of the suite
# is single-threaded and already covered above, so only the affected
# binaries are built to keep single-core runtimes sane.
cmake --preset tsan
cmake --build --preset tsan -j "${jobs}" --target mha_exec_tests mha_system_tests mha_guard_tests mha_batch_tests mha_repair_tests
ctest --preset tsan -j "${jobs}" -R 'Exec|Sched|Scheduler|Fault|Retry|TryCancel|Degraded|Migration|Journal|RecoveryIdempotence|CircuitBreaker|OverloadGuard|ChaosCell|StatsTable|Batch|Repair|Membership|Rebuild|Failover'
