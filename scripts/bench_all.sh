#!/usr/bin/env bash
# Runs the full bench suite and collects one BENCH_<name>.json per binary
# (per-cell wall time, replay virtual time and bandwidth).  Knobs:
#
#   BUILD_DIR  - bench binaries live in $BUILD_DIR/bench   (default: build)
#   OUT_DIR    - where the JSON reports land               (default: .)
#   THREADS    - forwarded as --threads=N                  (default: auto)
#   SCALE      - forwarded as --scale=F, 0 < F <= 1        (default: 1)
#
# Stdout of every bench is deterministic and independent of THREADS; only
# the JSON wall times vary run to run.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"
out_dir="${OUT_DIR:-.}"
mkdir -p "${out_dir}"

flags=()
[[ -n "${THREADS:-}" ]] && flags+=("--threads=${THREADS}")
[[ -n "${SCALE:-}" ]] && flags+=("--scale=${SCALE}")

benches=(
  fig07_ior_mixed_sizes
  fig08_server_load
  fig09_ior_mixed_procs
  fig10_server_ratios
  fig11_hpio
  fig12_btio_lanl
  fig13_lu_cholesky
  fig14_overhead
  ext_online_adaptation
  ext_scalability
  ext_carl
  ext_collective_io
  ext_scheduler
  ext_fault
  ext_multitenant
  ext_overload
  ext_cache
)

for bench in "${benches[@]}"; do
  echo "==> ${bench}"
  "${build_dir}/bench/${bench}" "${flags[@]}" \
    --json="${out_dir}/BENCH_${bench}.json"
done

# Request-path microbench: structural guard on stdout (diffed against
# bench/golden/microbench.stdout), timed kernels in BENCH_micro.json.
echo "==> microbench"
"${build_dir}/bench/microbench" "${flags[@]}" \
  --json="${out_dir}/BENCH_micro.json" \
  > "${out_dir}/microbench.stdout"
diff -u "${repo_root}/bench/golden/microbench.stdout" "${out_dir}/microbench.stdout"

# micro_core is a google-benchmark binary with its own flag set.
echo "==> micro_core"
"${build_dir}/bench/micro_core" \
  --benchmark_out="${out_dir}/BENCH_micro_core.json" \
  --benchmark_out_format=json

echo "reports written to ${out_dir}/BENCH_*.json"
