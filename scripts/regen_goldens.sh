#!/usr/bin/env bash
# Regenerates the golden stdout files in bench/golden/ from the current
# build.  Run this after an *intentional* structural change (a new
# microbench section, a changed coalescing shape, a new allocs/request
# line), review the diff, and commit the golden together with the change
# that caused it.  CI diffs bench stdout byte-for-byte against these files,
# so an unreviewed regen would launder a real regression.
#
#   BUILD_DIR - where the bench binaries live (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"
golden_dir="${repo_root}/bench/golden"
mkdir -p "${golden_dir}"

cmake --build "${build_dir}" -j --target microbench

# Structural stdout only: timed kernels print to stderr and are never
# golden-diffed.  --threads=1 matches CI; stdout must not depend on it.
"${build_dir}/bench/microbench" --threads=1 \
  > "${golden_dir}/microbench.stdout" 2> /dev/null

echo "regenerated goldens in ${golden_dir}:"
git -C "${repo_root}" diff --stat -- bench/golden || true
