file(REMOVE_RECURSE
  "../bench/ext_online_adaptation"
  "../bench/ext_online_adaptation.pdb"
  "CMakeFiles/ext_online_adaptation.dir/ext_online_adaptation.cpp.o"
  "CMakeFiles/ext_online_adaptation.dir/ext_online_adaptation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_online_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
