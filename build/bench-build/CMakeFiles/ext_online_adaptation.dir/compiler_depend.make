# Empty compiler generated dependencies file for ext_online_adaptation.
# This may be replaced when dependencies are built.
