# Empty compiler generated dependencies file for fig08_server_load.
# This may be replaced when dependencies are built.
