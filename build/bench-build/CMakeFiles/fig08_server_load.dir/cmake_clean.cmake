file(REMOVE_RECURSE
  "../bench/fig08_server_load"
  "../bench/fig08_server_load.pdb"
  "CMakeFiles/fig08_server_load.dir/fig08_server_load.cpp.o"
  "CMakeFiles/fig08_server_load.dir/fig08_server_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_server_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
