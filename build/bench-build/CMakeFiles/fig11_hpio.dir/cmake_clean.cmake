file(REMOVE_RECURSE
  "../bench/fig11_hpio"
  "../bench/fig11_hpio.pdb"
  "CMakeFiles/fig11_hpio.dir/fig11_hpio.cpp.o"
  "CMakeFiles/fig11_hpio.dir/fig11_hpio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_hpio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
