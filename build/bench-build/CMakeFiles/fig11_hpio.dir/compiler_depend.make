# Empty compiler generated dependencies file for fig11_hpio.
# This may be replaced when dependencies are built.
