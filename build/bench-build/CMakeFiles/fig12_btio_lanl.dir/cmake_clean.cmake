file(REMOVE_RECURSE
  "../bench/fig12_btio_lanl"
  "../bench/fig12_btio_lanl.pdb"
  "CMakeFiles/fig12_btio_lanl.dir/fig12_btio_lanl.cpp.o"
  "CMakeFiles/fig12_btio_lanl.dir/fig12_btio_lanl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_btio_lanl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
