# Empty dependencies file for fig12_btio_lanl.
# This may be replaced when dependencies are built.
