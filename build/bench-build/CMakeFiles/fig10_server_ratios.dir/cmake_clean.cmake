file(REMOVE_RECURSE
  "../bench/fig10_server_ratios"
  "../bench/fig10_server_ratios.pdb"
  "CMakeFiles/fig10_server_ratios.dir/fig10_server_ratios.cpp.o"
  "CMakeFiles/fig10_server_ratios.dir/fig10_server_ratios.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_server_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
