# Empty dependencies file for fig10_server_ratios.
# This may be replaced when dependencies are built.
