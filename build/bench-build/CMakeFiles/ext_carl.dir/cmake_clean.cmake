file(REMOVE_RECURSE
  "../bench/ext_carl"
  "../bench/ext_carl.pdb"
  "CMakeFiles/ext_carl.dir/ext_carl.cpp.o"
  "CMakeFiles/ext_carl.dir/ext_carl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_carl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
