# Empty dependencies file for ext_carl.
# This may be replaced when dependencies are built.
