# Empty compiler generated dependencies file for fig07_ior_mixed_sizes.
# This may be replaced when dependencies are built.
