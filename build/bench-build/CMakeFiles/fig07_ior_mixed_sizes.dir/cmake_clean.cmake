file(REMOVE_RECURSE
  "../bench/fig07_ior_mixed_sizes"
  "../bench/fig07_ior_mixed_sizes.pdb"
  "CMakeFiles/fig07_ior_mixed_sizes.dir/fig07_ior_mixed_sizes.cpp.o"
  "CMakeFiles/fig07_ior_mixed_sizes.dir/fig07_ior_mixed_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ior_mixed_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
