file(REMOVE_RECURSE
  "CMakeFiles/mha_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/mha_bench_common.dir/bench_common.cpp.o.d"
  "libmha_bench_common.a"
  "libmha_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
