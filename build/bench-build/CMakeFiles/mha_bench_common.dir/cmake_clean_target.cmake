file(REMOVE_RECURSE
  "libmha_bench_common.a"
)
