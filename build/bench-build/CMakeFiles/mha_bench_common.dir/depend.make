# Empty dependencies file for mha_bench_common.
# This may be replaced when dependencies are built.
