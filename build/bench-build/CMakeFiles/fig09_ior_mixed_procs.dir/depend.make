# Empty dependencies file for fig09_ior_mixed_procs.
# This may be replaced when dependencies are built.
