
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_ior_mixed_procs.cpp" "bench-build/CMakeFiles/fig09_ior_mixed_procs.dir/fig09_ior_mixed_procs.cpp.o" "gcc" "bench-build/CMakeFiles/fig09_ior_mixed_procs.dir/fig09_ior_mixed_procs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/mha_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_layouts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
