file(REMOVE_RECURSE
  "../bench/fig09_ior_mixed_procs"
  "../bench/fig09_ior_mixed_procs.pdb"
  "CMakeFiles/fig09_ior_mixed_procs.dir/fig09_ior_mixed_procs.cpp.o"
  "CMakeFiles/fig09_ior_mixed_procs.dir/fig09_ior_mixed_procs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ior_mixed_procs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
