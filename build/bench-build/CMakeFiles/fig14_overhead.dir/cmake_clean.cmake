file(REMOVE_RECURSE
  "../bench/fig14_overhead"
  "../bench/fig14_overhead.pdb"
  "CMakeFiles/fig14_overhead.dir/fig14_overhead.cpp.o"
  "CMakeFiles/fig14_overhead.dir/fig14_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
