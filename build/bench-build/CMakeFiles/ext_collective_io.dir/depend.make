# Empty dependencies file for ext_collective_io.
# This may be replaced when dependencies are built.
