file(REMOVE_RECURSE
  "../bench/ext_collective_io"
  "../bench/ext_collective_io.pdb"
  "CMakeFiles/ext_collective_io.dir/ext_collective_io.cpp.o"
  "CMakeFiles/ext_collective_io.dir/ext_collective_io.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_collective_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
