# Empty dependencies file for fig13_lu_cholesky.
# This may be replaced when dependencies are built.
