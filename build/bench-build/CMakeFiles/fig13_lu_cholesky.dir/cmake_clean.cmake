file(REMOVE_RECURSE
  "../bench/fig13_lu_cholesky"
  "../bench/fig13_lu_cholesky.pdb"
  "CMakeFiles/fig13_lu_cholesky.dir/fig13_lu_cholesky.cpp.o"
  "CMakeFiles/fig13_lu_cholesky.dir/fig13_lu_cholesky.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_lu_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
