file(REMOVE_RECURSE
  "CMakeFiles/mha_sim.dir/sim/cluster_sim.cpp.o"
  "CMakeFiles/mha_sim.dir/sim/cluster_sim.cpp.o.d"
  "CMakeFiles/mha_sim.dir/sim/device.cpp.o"
  "CMakeFiles/mha_sim.dir/sim/device.cpp.o.d"
  "CMakeFiles/mha_sim.dir/sim/server_sim.cpp.o"
  "CMakeFiles/mha_sim.dir/sim/server_sim.cpp.o.d"
  "libmha_sim.a"
  "libmha_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
