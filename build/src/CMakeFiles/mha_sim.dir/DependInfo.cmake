
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster_sim.cpp" "src/CMakeFiles/mha_sim.dir/sim/cluster_sim.cpp.o" "gcc" "src/CMakeFiles/mha_sim.dir/sim/cluster_sim.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/CMakeFiles/mha_sim.dir/sim/device.cpp.o" "gcc" "src/CMakeFiles/mha_sim.dir/sim/device.cpp.o.d"
  "/root/repo/src/sim/server_sim.cpp" "src/CMakeFiles/mha_sim.dir/sim/server_sim.cpp.o" "gcc" "src/CMakeFiles/mha_sim.dir/sim/server_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
