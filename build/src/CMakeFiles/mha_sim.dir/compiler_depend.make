# Empty compiler generated dependencies file for mha_sim.
# This may be replaced when dependencies are built.
