file(REMOVE_RECURSE
  "libmha_sim.a"
)
