file(REMOVE_RECURSE
  "libmha_trace.a"
)
