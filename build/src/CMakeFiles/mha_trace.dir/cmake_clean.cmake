file(REMOVE_RECURSE
  "CMakeFiles/mha_trace.dir/trace/analysis.cpp.o"
  "CMakeFiles/mha_trace.dir/trace/analysis.cpp.o.d"
  "CMakeFiles/mha_trace.dir/trace/record.cpp.o"
  "CMakeFiles/mha_trace.dir/trace/record.cpp.o.d"
  "CMakeFiles/mha_trace.dir/trace/trace_io.cpp.o"
  "CMakeFiles/mha_trace.dir/trace/trace_io.cpp.o.d"
  "libmha_trace.a"
  "libmha_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
