# Empty compiler generated dependencies file for mha_trace.
# This may be replaced when dependencies are built.
