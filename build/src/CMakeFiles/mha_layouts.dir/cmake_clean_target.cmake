file(REMOVE_RECURSE
  "libmha_layouts.a"
)
