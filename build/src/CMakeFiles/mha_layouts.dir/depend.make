# Empty dependencies file for mha_layouts.
# This may be replaced when dependencies are built.
