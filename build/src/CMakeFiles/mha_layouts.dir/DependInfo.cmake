
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layouts/aal.cpp" "src/CMakeFiles/mha_layouts.dir/layouts/aal.cpp.o" "gcc" "src/CMakeFiles/mha_layouts.dir/layouts/aal.cpp.o.d"
  "/root/repo/src/layouts/carl.cpp" "src/CMakeFiles/mha_layouts.dir/layouts/carl.cpp.o" "gcc" "src/CMakeFiles/mha_layouts.dir/layouts/carl.cpp.o.d"
  "/root/repo/src/layouts/def.cpp" "src/CMakeFiles/mha_layouts.dir/layouts/def.cpp.o" "gcc" "src/CMakeFiles/mha_layouts.dir/layouts/def.cpp.o.d"
  "/root/repo/src/layouts/harl.cpp" "src/CMakeFiles/mha_layouts.dir/layouts/harl.cpp.o" "gcc" "src/CMakeFiles/mha_layouts.dir/layouts/harl.cpp.o.d"
  "/root/repo/src/layouts/mha_scheme.cpp" "src/CMakeFiles/mha_layouts.dir/layouts/mha_scheme.cpp.o" "gcc" "src/CMakeFiles/mha_layouts.dir/layouts/mha_scheme.cpp.o.d"
  "/root/repo/src/layouts/scheme.cpp" "src/CMakeFiles/mha_layouts.dir/layouts/scheme.cpp.o" "gcc" "src/CMakeFiles/mha_layouts.dir/layouts/scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mha_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
