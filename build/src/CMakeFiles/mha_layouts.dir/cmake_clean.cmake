file(REMOVE_RECURSE
  "CMakeFiles/mha_layouts.dir/layouts/aal.cpp.o"
  "CMakeFiles/mha_layouts.dir/layouts/aal.cpp.o.d"
  "CMakeFiles/mha_layouts.dir/layouts/carl.cpp.o"
  "CMakeFiles/mha_layouts.dir/layouts/carl.cpp.o.d"
  "CMakeFiles/mha_layouts.dir/layouts/def.cpp.o"
  "CMakeFiles/mha_layouts.dir/layouts/def.cpp.o.d"
  "CMakeFiles/mha_layouts.dir/layouts/harl.cpp.o"
  "CMakeFiles/mha_layouts.dir/layouts/harl.cpp.o.d"
  "CMakeFiles/mha_layouts.dir/layouts/mha_scheme.cpp.o"
  "CMakeFiles/mha_layouts.dir/layouts/mha_scheme.cpp.o.d"
  "CMakeFiles/mha_layouts.dir/layouts/scheme.cpp.o"
  "CMakeFiles/mha_layouts.dir/layouts/scheme.cpp.o.d"
  "libmha_layouts.a"
  "libmha_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
