file(REMOVE_RECURSE
  "libmha_common.a"
)
