# Empty compiler generated dependencies file for mha_common.
# This may be replaced when dependencies are built.
