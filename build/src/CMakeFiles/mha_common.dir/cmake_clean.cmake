file(REMOVE_RECURSE
  "CMakeFiles/mha_common.dir/common/crc32.cpp.o"
  "CMakeFiles/mha_common.dir/common/crc32.cpp.o.d"
  "CMakeFiles/mha_common.dir/common/log.cpp.o"
  "CMakeFiles/mha_common.dir/common/log.cpp.o.d"
  "CMakeFiles/mha_common.dir/common/rng.cpp.o"
  "CMakeFiles/mha_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/mha_common.dir/common/stats.cpp.o"
  "CMakeFiles/mha_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/mha_common.dir/common/units.cpp.o"
  "CMakeFiles/mha_common.dir/common/units.cpp.o.d"
  "libmha_common.a"
  "libmha_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
