# Empty compiler generated dependencies file for mha_io.
# This may be replaced when dependencies are built.
