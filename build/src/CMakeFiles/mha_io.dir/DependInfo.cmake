
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/collective.cpp" "src/CMakeFiles/mha_io.dir/io/collective.cpp.o" "gcc" "src/CMakeFiles/mha_io.dir/io/collective.cpp.o.d"
  "/root/repo/src/io/mpi_file.cpp" "src/CMakeFiles/mha_io.dir/io/mpi_file.cpp.o" "gcc" "src/CMakeFiles/mha_io.dir/io/mpi_file.cpp.o.d"
  "/root/repo/src/io/mpi_sim.cpp" "src/CMakeFiles/mha_io.dir/io/mpi_sim.cpp.o" "gcc" "src/CMakeFiles/mha_io.dir/io/mpi_sim.cpp.o.d"
  "/root/repo/src/io/tracer.cpp" "src/CMakeFiles/mha_io.dir/io/tracer.cpp.o" "gcc" "src/CMakeFiles/mha_io.dir/io/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mha_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
