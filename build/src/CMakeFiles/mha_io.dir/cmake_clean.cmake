file(REMOVE_RECURSE
  "CMakeFiles/mha_io.dir/io/collective.cpp.o"
  "CMakeFiles/mha_io.dir/io/collective.cpp.o.d"
  "CMakeFiles/mha_io.dir/io/mpi_file.cpp.o"
  "CMakeFiles/mha_io.dir/io/mpi_file.cpp.o.d"
  "CMakeFiles/mha_io.dir/io/mpi_sim.cpp.o"
  "CMakeFiles/mha_io.dir/io/mpi_sim.cpp.o.d"
  "CMakeFiles/mha_io.dir/io/tracer.cpp.o"
  "CMakeFiles/mha_io.dir/io/tracer.cpp.o.d"
  "libmha_io.a"
  "libmha_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
