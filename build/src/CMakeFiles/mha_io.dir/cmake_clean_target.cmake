file(REMOVE_RECURSE
  "libmha_io.a"
)
