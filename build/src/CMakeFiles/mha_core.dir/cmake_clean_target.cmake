file(REMOVE_RECURSE
  "libmha_core.a"
)
