# Empty compiler generated dependencies file for mha_core.
# This may be replaced when dependencies are built.
