
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cpp" "src/CMakeFiles/mha_core.dir/core/cost_model.cpp.o" "gcc" "src/CMakeFiles/mha_core.dir/core/cost_model.cpp.o.d"
  "/root/repo/src/core/drt.cpp" "src/CMakeFiles/mha_core.dir/core/drt.cpp.o" "gcc" "src/CMakeFiles/mha_core.dir/core/drt.cpp.o.d"
  "/root/repo/src/core/grouping.cpp" "src/CMakeFiles/mha_core.dir/core/grouping.cpp.o" "gcc" "src/CMakeFiles/mha_core.dir/core/grouping.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/CMakeFiles/mha_core.dir/core/online.cpp.o" "gcc" "src/CMakeFiles/mha_core.dir/core/online.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/mha_core.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/mha_core.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/placer.cpp" "src/CMakeFiles/mha_core.dir/core/placer.cpp.o" "gcc" "src/CMakeFiles/mha_core.dir/core/placer.cpp.o.d"
  "/root/repo/src/core/redirector.cpp" "src/CMakeFiles/mha_core.dir/core/redirector.cpp.o" "gcc" "src/CMakeFiles/mha_core.dir/core/redirector.cpp.o.d"
  "/root/repo/src/core/reorganizer.cpp" "src/CMakeFiles/mha_core.dir/core/reorganizer.cpp.o" "gcc" "src/CMakeFiles/mha_core.dir/core/reorganizer.cpp.o.d"
  "/root/repo/src/core/rssd.cpp" "src/CMakeFiles/mha_core.dir/core/rssd.cpp.o" "gcc" "src/CMakeFiles/mha_core.dir/core/rssd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mha_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
