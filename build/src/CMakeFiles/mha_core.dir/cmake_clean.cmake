file(REMOVE_RECURSE
  "CMakeFiles/mha_core.dir/core/cost_model.cpp.o"
  "CMakeFiles/mha_core.dir/core/cost_model.cpp.o.d"
  "CMakeFiles/mha_core.dir/core/drt.cpp.o"
  "CMakeFiles/mha_core.dir/core/drt.cpp.o.d"
  "CMakeFiles/mha_core.dir/core/grouping.cpp.o"
  "CMakeFiles/mha_core.dir/core/grouping.cpp.o.d"
  "CMakeFiles/mha_core.dir/core/online.cpp.o"
  "CMakeFiles/mha_core.dir/core/online.cpp.o.d"
  "CMakeFiles/mha_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/mha_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/mha_core.dir/core/placer.cpp.o"
  "CMakeFiles/mha_core.dir/core/placer.cpp.o.d"
  "CMakeFiles/mha_core.dir/core/redirector.cpp.o"
  "CMakeFiles/mha_core.dir/core/redirector.cpp.o.d"
  "CMakeFiles/mha_core.dir/core/reorganizer.cpp.o"
  "CMakeFiles/mha_core.dir/core/reorganizer.cpp.o.d"
  "CMakeFiles/mha_core.dir/core/rssd.cpp.o"
  "CMakeFiles/mha_core.dir/core/rssd.cpp.o.d"
  "libmha_core.a"
  "libmha_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
