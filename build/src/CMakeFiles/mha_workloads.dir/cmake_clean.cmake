file(REMOVE_RECURSE
  "CMakeFiles/mha_workloads.dir/workloads/apps.cpp.o"
  "CMakeFiles/mha_workloads.dir/workloads/apps.cpp.o.d"
  "CMakeFiles/mha_workloads.dir/workloads/btio.cpp.o"
  "CMakeFiles/mha_workloads.dir/workloads/btio.cpp.o.d"
  "CMakeFiles/mha_workloads.dir/workloads/hpio.cpp.o"
  "CMakeFiles/mha_workloads.dir/workloads/hpio.cpp.o.d"
  "CMakeFiles/mha_workloads.dir/workloads/ior.cpp.o"
  "CMakeFiles/mha_workloads.dir/workloads/ior.cpp.o.d"
  "CMakeFiles/mha_workloads.dir/workloads/replayer.cpp.o"
  "CMakeFiles/mha_workloads.dir/workloads/replayer.cpp.o.d"
  "libmha_workloads.a"
  "libmha_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
