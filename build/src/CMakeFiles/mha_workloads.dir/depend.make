# Empty dependencies file for mha_workloads.
# This may be replaced when dependencies are built.
