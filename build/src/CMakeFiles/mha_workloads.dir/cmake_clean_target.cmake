file(REMOVE_RECURSE
  "libmha_workloads.a"
)
