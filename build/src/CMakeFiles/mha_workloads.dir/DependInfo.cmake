
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apps.cpp" "src/CMakeFiles/mha_workloads.dir/workloads/apps.cpp.o" "gcc" "src/CMakeFiles/mha_workloads.dir/workloads/apps.cpp.o.d"
  "/root/repo/src/workloads/btio.cpp" "src/CMakeFiles/mha_workloads.dir/workloads/btio.cpp.o" "gcc" "src/CMakeFiles/mha_workloads.dir/workloads/btio.cpp.o.d"
  "/root/repo/src/workloads/hpio.cpp" "src/CMakeFiles/mha_workloads.dir/workloads/hpio.cpp.o" "gcc" "src/CMakeFiles/mha_workloads.dir/workloads/hpio.cpp.o.d"
  "/root/repo/src/workloads/ior.cpp" "src/CMakeFiles/mha_workloads.dir/workloads/ior.cpp.o" "gcc" "src/CMakeFiles/mha_workloads.dir/workloads/ior.cpp.o.d"
  "/root/repo/src/workloads/replayer.cpp" "src/CMakeFiles/mha_workloads.dir/workloads/replayer.cpp.o" "gcc" "src/CMakeFiles/mha_workloads.dir/workloads/replayer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mha_layouts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
