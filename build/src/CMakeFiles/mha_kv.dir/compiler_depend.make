# Empty compiler generated dependencies file for mha_kv.
# This may be replaced when dependencies are built.
