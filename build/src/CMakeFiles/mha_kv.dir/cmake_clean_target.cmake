file(REMOVE_RECURSE
  "libmha_kv.a"
)
