file(REMOVE_RECURSE
  "CMakeFiles/mha_kv.dir/kv/kvstore.cpp.o"
  "CMakeFiles/mha_kv.dir/kv/kvstore.cpp.o.d"
  "libmha_kv.a"
  "libmha_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
