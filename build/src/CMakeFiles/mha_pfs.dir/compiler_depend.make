# Empty compiler generated dependencies file for mha_pfs.
# This may be replaced when dependencies are built.
