file(REMOVE_RECURSE
  "libmha_pfs.a"
)
