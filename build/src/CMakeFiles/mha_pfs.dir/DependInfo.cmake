
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pfs/data_server.cpp" "src/CMakeFiles/mha_pfs.dir/pfs/data_server.cpp.o" "gcc" "src/CMakeFiles/mha_pfs.dir/pfs/data_server.cpp.o.d"
  "/root/repo/src/pfs/extent_store.cpp" "src/CMakeFiles/mha_pfs.dir/pfs/extent_store.cpp.o" "gcc" "src/CMakeFiles/mha_pfs.dir/pfs/extent_store.cpp.o.d"
  "/root/repo/src/pfs/file_system.cpp" "src/CMakeFiles/mha_pfs.dir/pfs/file_system.cpp.o" "gcc" "src/CMakeFiles/mha_pfs.dir/pfs/file_system.cpp.o.d"
  "/root/repo/src/pfs/layout.cpp" "src/CMakeFiles/mha_pfs.dir/pfs/layout.cpp.o" "gcc" "src/CMakeFiles/mha_pfs.dir/pfs/layout.cpp.o.d"
  "/root/repo/src/pfs/metadata_server.cpp" "src/CMakeFiles/mha_pfs.dir/pfs/metadata_server.cpp.o" "gcc" "src/CMakeFiles/mha_pfs.dir/pfs/metadata_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
