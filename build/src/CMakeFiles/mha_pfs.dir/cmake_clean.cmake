file(REMOVE_RECURSE
  "CMakeFiles/mha_pfs.dir/pfs/data_server.cpp.o"
  "CMakeFiles/mha_pfs.dir/pfs/data_server.cpp.o.d"
  "CMakeFiles/mha_pfs.dir/pfs/extent_store.cpp.o"
  "CMakeFiles/mha_pfs.dir/pfs/extent_store.cpp.o.d"
  "CMakeFiles/mha_pfs.dir/pfs/file_system.cpp.o"
  "CMakeFiles/mha_pfs.dir/pfs/file_system.cpp.o.d"
  "CMakeFiles/mha_pfs.dir/pfs/layout.cpp.o"
  "CMakeFiles/mha_pfs.dir/pfs/layout.cpp.o.d"
  "CMakeFiles/mha_pfs.dir/pfs/metadata_server.cpp.o"
  "CMakeFiles/mha_pfs.dir/pfs/metadata_server.cpp.o.d"
  "libmha_pfs.a"
  "libmha_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
