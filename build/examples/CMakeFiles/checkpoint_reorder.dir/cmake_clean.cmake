file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_reorder.dir/checkpoint_reorder.cpp.o"
  "CMakeFiles/checkpoint_reorder.dir/checkpoint_reorder.cpp.o.d"
  "checkpoint_reorder"
  "checkpoint_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
