# Empty compiler generated dependencies file for checkpoint_reorder.
# This may be replaced when dependencies are built.
