# Empty dependencies file for trace_optimizer.
# This may be replaced when dependencies are built.
