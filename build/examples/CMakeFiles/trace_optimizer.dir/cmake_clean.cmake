file(REMOVE_RECURSE
  "CMakeFiles/trace_optimizer.dir/trace_optimizer.cpp.o"
  "CMakeFiles/trace_optimizer.dir/trace_optimizer.cpp.o.d"
  "trace_optimizer"
  "trace_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
