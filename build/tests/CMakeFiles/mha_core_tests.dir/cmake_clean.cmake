file(REMOVE_RECURSE
  "CMakeFiles/mha_core_tests.dir/online_test.cpp.o"
  "CMakeFiles/mha_core_tests.dir/online_test.cpp.o.d"
  "CMakeFiles/mha_core_tests.dir/pipeline_test.cpp.o"
  "CMakeFiles/mha_core_tests.dir/pipeline_test.cpp.o.d"
  "CMakeFiles/mha_core_tests.dir/reorganizer_test.cpp.o"
  "CMakeFiles/mha_core_tests.dir/reorganizer_test.cpp.o.d"
  "mha_core_tests"
  "mha_core_tests.pdb"
  "mha_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
