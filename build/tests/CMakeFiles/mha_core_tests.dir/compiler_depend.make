# Empty compiler generated dependencies file for mha_core_tests.
# This may be replaced when dependencies are built.
