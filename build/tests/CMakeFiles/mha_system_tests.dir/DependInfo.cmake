
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/mha_system_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/mha_system_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/properties_test.cpp" "tests/CMakeFiles/mha_system_tests.dir/properties_test.cpp.o" "gcc" "tests/CMakeFiles/mha_system_tests.dir/properties_test.cpp.o.d"
  "/root/repo/tests/schemes_test.cpp" "tests/CMakeFiles/mha_system_tests.dir/schemes_test.cpp.o" "gcc" "tests/CMakeFiles/mha_system_tests.dir/schemes_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/mha_system_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/mha_system_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mha_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_layouts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
