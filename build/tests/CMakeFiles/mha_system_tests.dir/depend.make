# Empty dependencies file for mha_system_tests.
# This may be replaced when dependencies are built.
