file(REMOVE_RECURSE
  "CMakeFiles/mha_system_tests.dir/integration_test.cpp.o"
  "CMakeFiles/mha_system_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/mha_system_tests.dir/properties_test.cpp.o"
  "CMakeFiles/mha_system_tests.dir/properties_test.cpp.o.d"
  "CMakeFiles/mha_system_tests.dir/schemes_test.cpp.o"
  "CMakeFiles/mha_system_tests.dir/schemes_test.cpp.o.d"
  "CMakeFiles/mha_system_tests.dir/workloads_test.cpp.o"
  "CMakeFiles/mha_system_tests.dir/workloads_test.cpp.o.d"
  "mha_system_tests"
  "mha_system_tests.pdb"
  "mha_system_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_system_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
