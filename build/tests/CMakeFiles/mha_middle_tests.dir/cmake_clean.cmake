file(REMOVE_RECURSE
  "CMakeFiles/mha_middle_tests.dir/collective_test.cpp.o"
  "CMakeFiles/mha_middle_tests.dir/collective_test.cpp.o.d"
  "CMakeFiles/mha_middle_tests.dir/cost_model_test.cpp.o"
  "CMakeFiles/mha_middle_tests.dir/cost_model_test.cpp.o.d"
  "CMakeFiles/mha_middle_tests.dir/drt_test.cpp.o"
  "CMakeFiles/mha_middle_tests.dir/drt_test.cpp.o.d"
  "CMakeFiles/mha_middle_tests.dir/grouping_test.cpp.o"
  "CMakeFiles/mha_middle_tests.dir/grouping_test.cpp.o.d"
  "CMakeFiles/mha_middle_tests.dir/io_test.cpp.o"
  "CMakeFiles/mha_middle_tests.dir/io_test.cpp.o.d"
  "CMakeFiles/mha_middle_tests.dir/rssd_test.cpp.o"
  "CMakeFiles/mha_middle_tests.dir/rssd_test.cpp.o.d"
  "CMakeFiles/mha_middle_tests.dir/trace_test.cpp.o"
  "CMakeFiles/mha_middle_tests.dir/trace_test.cpp.o.d"
  "mha_middle_tests"
  "mha_middle_tests.pdb"
  "mha_middle_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_middle_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
