
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/collective_test.cpp" "tests/CMakeFiles/mha_middle_tests.dir/collective_test.cpp.o" "gcc" "tests/CMakeFiles/mha_middle_tests.dir/collective_test.cpp.o.d"
  "/root/repo/tests/cost_model_test.cpp" "tests/CMakeFiles/mha_middle_tests.dir/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/mha_middle_tests.dir/cost_model_test.cpp.o.d"
  "/root/repo/tests/drt_test.cpp" "tests/CMakeFiles/mha_middle_tests.dir/drt_test.cpp.o" "gcc" "tests/CMakeFiles/mha_middle_tests.dir/drt_test.cpp.o.d"
  "/root/repo/tests/grouping_test.cpp" "tests/CMakeFiles/mha_middle_tests.dir/grouping_test.cpp.o" "gcc" "tests/CMakeFiles/mha_middle_tests.dir/grouping_test.cpp.o.d"
  "/root/repo/tests/io_test.cpp" "tests/CMakeFiles/mha_middle_tests.dir/io_test.cpp.o" "gcc" "tests/CMakeFiles/mha_middle_tests.dir/io_test.cpp.o.d"
  "/root/repo/tests/rssd_test.cpp" "tests/CMakeFiles/mha_middle_tests.dir/rssd_test.cpp.o" "gcc" "tests/CMakeFiles/mha_middle_tests.dir/rssd_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/mha_middle_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/mha_middle_tests.dir/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mha_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
