# Empty compiler generated dependencies file for mha_middle_tests.
# This may be replaced when dependencies are built.
