file(REMOVE_RECURSE
  "CMakeFiles/mha_substrate_tests.dir/common_test.cpp.o"
  "CMakeFiles/mha_substrate_tests.dir/common_test.cpp.o.d"
  "CMakeFiles/mha_substrate_tests.dir/extent_store_test.cpp.o"
  "CMakeFiles/mha_substrate_tests.dir/extent_store_test.cpp.o.d"
  "CMakeFiles/mha_substrate_tests.dir/kv_test.cpp.o"
  "CMakeFiles/mha_substrate_tests.dir/kv_test.cpp.o.d"
  "CMakeFiles/mha_substrate_tests.dir/layout_test.cpp.o"
  "CMakeFiles/mha_substrate_tests.dir/layout_test.cpp.o.d"
  "CMakeFiles/mha_substrate_tests.dir/pfs_test.cpp.o"
  "CMakeFiles/mha_substrate_tests.dir/pfs_test.cpp.o.d"
  "CMakeFiles/mha_substrate_tests.dir/sim_test.cpp.o"
  "CMakeFiles/mha_substrate_tests.dir/sim_test.cpp.o.d"
  "mha_substrate_tests"
  "mha_substrate_tests.pdb"
  "mha_substrate_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mha_substrate_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
