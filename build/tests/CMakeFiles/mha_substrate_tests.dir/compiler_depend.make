# Empty compiler generated dependencies file for mha_substrate_tests.
# This may be replaced when dependencies are built.
