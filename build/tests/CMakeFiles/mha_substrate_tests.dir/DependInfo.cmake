
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/mha_substrate_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/mha_substrate_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/extent_store_test.cpp" "tests/CMakeFiles/mha_substrate_tests.dir/extent_store_test.cpp.o" "gcc" "tests/CMakeFiles/mha_substrate_tests.dir/extent_store_test.cpp.o.d"
  "/root/repo/tests/kv_test.cpp" "tests/CMakeFiles/mha_substrate_tests.dir/kv_test.cpp.o" "gcc" "tests/CMakeFiles/mha_substrate_tests.dir/kv_test.cpp.o.d"
  "/root/repo/tests/layout_test.cpp" "tests/CMakeFiles/mha_substrate_tests.dir/layout_test.cpp.o" "gcc" "tests/CMakeFiles/mha_substrate_tests.dir/layout_test.cpp.o.d"
  "/root/repo/tests/pfs_test.cpp" "tests/CMakeFiles/mha_substrate_tests.dir/pfs_test.cpp.o" "gcc" "tests/CMakeFiles/mha_substrate_tests.dir/pfs_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/mha_substrate_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/mha_substrate_tests.dir/sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mha_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mha_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
