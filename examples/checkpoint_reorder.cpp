// Checkpoint reordering — the paper's motivating scenario (Fig. 3/4) as a
// runnable walkthrough of all five MHA phases.
//
// A LANL-App2-style checkpoint writer emits, per loop and process, a 16 B
// marker, a 128 KiB - 16 B body, and a 128 KiB body.  Identical sizes recur
// across the file but never adjacently — the worst case for one-size-fits-
// all striping.  This example:
//
//   phase 1 (tracing)       profiles the first run under the default layout
//   phase 2 (reordering)    groups requests and builds regions + DRT
//   phase 3 (determination) picks per-region stripe pairs via Algorithm 2
//   phase 4 (placement)     creates region files and migrates the data
//   phase 5 (redirection)   replays the next run through the redirector
//
// and prints what each phase produced plus the end-to-end speedup.
#include <cstdio>

#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "layouts/scheme.hpp"
#include "trace/analysis.hpp"
#include "workloads/apps.hpp"
#include "workloads/replayer.hpp"

using namespace mha;

int main() {
  sim::ClusterConfig cluster;
  cluster.num_hservers = 6;
  cluster.num_sservers = 2;

  workloads::LanlConfig app;
  app.num_procs = 8;
  app.loops = 256;
  const trace::Trace workload = workloads::lanl_app2(app);

  // ---- First run: default layout, collector attached (phase 1). ----
  pfs::PfsOptions pfs_options;
  pfs_options.store_data = false;  // timing-only; flip to true to verify bytes
  pfs::HybridPfs pfs(cluster, pfs_options);
  auto scheme_def = layouts::make_def();
  auto deployment = scheme_def->prepare(pfs, workload);
  if (!deployment.is_ok()) return 1;

  workloads::ReplayOptions profiling;
  profiling.trace_run = true;
  profiling.tracer_overhead = 20e-6;  // IOSIG-style instrumentation cost
  auto first_run = workloads::replay(pfs, *deployment, workload, profiling);
  if (!first_run.is_ok()) return 1;
  std::printf("phase 1 (tracing): %zu records captured; first run %s\n",
              first_run->captured.records.size(),
              common::format_bandwidth(first_run->aggregate_bandwidth).c_str());

  const auto summary = trace::summarize(first_run->captured.records);
  std::printf("%s", summary.to_string().c_str());

  // ---- Phases 2-5 against the same PFS, driven by the captured trace. ----
  core::MhaOptions options;
  options.drt_path = "/tmp/checkpoint_reorder.drt";  // survive "power failure"
  auto mha = core::MhaPipeline::deploy(pfs, first_run->captured, options);
  if (!mha.is_ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", mha.status().to_string().c_str());
    return 1;
  }
  std::printf("\nphases 2-4 (reorder/determine/place):\n%s",
              mha->plan.to_string().c_str());
  std::printf("migrated %s in %.3fs of off-line virtual time\n",
              common::format_bytes(mha->placement.bytes_migrated).c_str(),
              mha->placement.migration_time);

  // ---- Subsequent run through the redirector (phase 5). ----
  pfs.reset_stats();
  pfs.reset_clocks();
  layouts::Deployment redirected;
  redirected.file_name = workload.file_name;
  redirected.interceptor = std::move(mha->redirector);
  auto second_run = workloads::replay(pfs, redirected, workload, {});
  if (!second_run.is_ok()) return 1;

  std::printf("\nphase 5 (redirection): second run %s (%.2fx the first run)\n",
              common::format_bandwidth(second_run->aggregate_bandwidth).c_str(),
              second_run->aggregate_bandwidth / first_run->aggregate_bandwidth);
  std::printf("per-server load after MHA:\n%s", pfs.stats_table().c_str());
  std::remove("/tmp/checkpoint_reorder.drt");
  return 0;
}
