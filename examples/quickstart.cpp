// Quickstart: the complete MHA workflow in ~80 lines.
//
// 1. Build a simulated hybrid PFS (6 HDD servers + 2 SSD servers on GigE).
// 2. Generate a heterogeneous IOR-style workload (mixed 128 KiB + 256 KiB
//    requests from 32 processes).
// 3. Run it under the default fixed-stripe layout and under MHA.
// 4. Print both bandwidths and the layout MHA chose.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "common/units.hpp"
#include "layouts/scheme.hpp"
#include "workloads/ior.hpp"
#include "workloads/replayer.hpp"

using namespace mha;
using namespace mha::common::literals;

int main() {
  // The paper's default testbed shape: 6 HServers, 2 SServers.
  sim::ClusterConfig cluster;
  cluster.num_hservers = 6;
  cluster.num_sservers = 2;

  // A heterogeneous workload: every iteration each of 32 processes issues a
  // random-offset request, sizes alternating between 128 KiB and 256 KiB.
  workloads::IorMixedSizesConfig ior;
  ior.num_procs = 32;
  ior.request_sizes = {128_KiB, 256_KiB};
  ior.file_size = 128_MiB;
  ior.op = common::OpType::kWrite;
  const trace::Trace trace = workloads::ior_mixed_sizes(ior);
  std::printf("workload: %zu requests over %s\n", trace.records.size(),
              common::format_bytes(trace::extent_end(trace.records)).c_str());

  workloads::ReplayOptions replay;
  replay.mode = workloads::ReplayMode::kSynchronous;

  // --- Baseline: the file system default (fixed 64 KiB stripes). ---
  auto def = layouts::make_def();
  auto def_result = workloads::run_scheme(*def, cluster, trace, replay);
  if (!def_result.is_ok()) {
    std::fprintf(stderr, "DEF failed: %s\n", def_result.status().to_string().c_str());
    return 1;
  }

  // --- MHA: trace-driven grouping, migration and per-region stripes. ---
  auto mha_scheme = layouts::make_mha();
  auto mha_result = workloads::run_scheme(*mha_scheme, cluster, trace, replay);
  if (!mha_result.is_ok()) {
    std::fprintf(stderr, "MHA failed: %s\n", mha_result.status().to_string().c_str());
    return 1;
  }

  std::printf("DEF: %s in %.3fs virtual -> %s\n",
              common::format_bytes(def_result->bytes_total()).c_str(),
              def_result->makespan,
              common::format_bandwidth(def_result->aggregate_bandwidth).c_str());
  std::printf("MHA: %s in %.3fs virtual -> %s\n",
              common::format_bytes(mha_result->bytes_total()).c_str(),
              mha_result->makespan,
              common::format_bandwidth(mha_result->aggregate_bandwidth).c_str());
  std::printf("speedup: %.2fx\n",
              mha_result->aggregate_bandwidth / def_result->aggregate_bandwidth);

  // Show what MHA actually decided (plan only; no PFS side effects).
  auto plan = core::MhaPipeline::analyze(cluster, trace);
  if (plan.is_ok()) {
    std::printf("\nMHA plan:\n%s", plan->to_string().c_str());
  }
  return 0;
}
