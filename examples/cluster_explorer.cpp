// cluster_explorer — what-if analysis for hybrid PFS procurement.
//
// Answers the capacity-planning question the paper's Fig. 10 gestures at:
// given a fixed budget of 8 file servers, how does the HServer:SServer split
// change delivered bandwidth for *your* workload, and how much of the
// potential does each layout scheme actually harvest?
//
// Runs a chosen workload across every ratio from 7h:1s to 1h:7s under DEF
// and MHA and prints both the absolute bandwidths and MHA's harvest of the
// SSD investment.
//
// Usage: cluster_explorer [ior|lu|cholesky]   (default: ior)
#include <cstdio>
#include <string>

#include "common/units.hpp"
#include "layouts/scheme.hpp"
#include "workloads/apps.hpp"
#include "workloads/ior.hpp"
#include "workloads/replayer.hpp"

using namespace mha;
using namespace mha::common::literals;

namespace {

trace::Trace make_workload(const std::string& kind) {
  if (kind == "lu") {
    workloads::LuConfig config;
    config.num_procs = 8;
    config.slabs = 64;
    return workloads::lu_decomposition(config);
  }
  if (kind == "cholesky") {
    workloads::CholeskyConfig config;
    config.num_procs = 8;
    config.panels = 96;
    return workloads::sparse_cholesky(config);
  }
  workloads::IorMixedSizesConfig config;
  config.num_procs = 32;
  config.request_sizes = {128_KiB, 256_KiB};
  config.file_size = 128_MiB;
  config.op = common::OpType::kWrite;
  config.file_name = "explore.ior";
  return workloads::ior_mixed_sizes(config);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kind = argc > 1 ? argv[1] : "ior";
  const trace::Trace workload = make_workload(kind);
  std::printf("workload: %s (%zu requests, %s touched)\n\n", kind.c_str(),
              workload.records.size(),
              common::format_bytes(trace::extent_end(workload.records)).c_str());

  std::printf("%-8s %12s %12s %10s\n", "ratio", "DEF MiB/s", "MHA MiB/s", "MHA gain");
  double def_baseline = 0.0;  // all-HDD reference for the harvest column
  for (std::size_t sservers = 1; sservers <= 7; ++sservers) {
    sim::ClusterConfig cluster;
    cluster.num_hservers = 8 - sservers;
    cluster.num_sservers = sservers;

    auto def = layouts::make_def();
    auto mha = layouts::make_mha();
    auto def_result = workloads::run_scheme(*def, cluster, workload, {});
    auto mha_result = workloads::run_scheme(*mha, cluster, workload, {});
    if (!def_result.is_ok() || !mha_result.is_ok()) {
      std::fprintf(stderr, "run failed at ratio %zuh:%zus\n", 8 - sservers, sservers);
      return 1;
    }
    const double def_bw = def_result->aggregate_bandwidth / (1024.0 * 1024.0);
    const double mha_bw = mha_result->aggregate_bandwidth / (1024.0 * 1024.0);
    if (sservers == 1) def_baseline = def_bw;
    std::printf("%zuh:%zus   %12.1f %12.1f %9.1f%%\n", 8 - sservers, sservers, def_bw,
                mha_bw, (mha_bw / def_bw - 1.0) * 100.0);
  }
  std::printf(
      "\nReading guide: DEF barely improves as SSDs replace HDDs (fixed stripes\n"
      "leave the fast servers underused), while MHA's per-region stripe pairs\n"
      "shift load onto the SServers — the gap is the value a migratory,\n"
      "heterogeneity-aware layout extracts from the same hardware budget\n"
      "(baseline 7h:1s DEF = %.1f MiB/s).\n",
      def_baseline);
  return 0;
}
