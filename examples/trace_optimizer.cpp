// trace_optimizer — off-line layout planning from a trace file (CLI).
//
// Reads an mha-trace CSV (as written by the tracer / trace::write_csv_file),
// runs the off-line MHA phases (grouping, reordering plan, RSSD) for a given
// cluster shape, and prints the resulting plan: regions, stripe pairs, DRT
// summary.  No file system is touched — this is the planning tool an
// administrator would run between application campaigns.
//
// Usage:
//   trace_optimizer <trace.csv> [hservers] [sservers] [step-bytes]
//   trace_optimizer --demo          (generates and plans a demo trace)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "trace/analysis.hpp"
#include "trace/trace_io.hpp"
#include "workloads/apps.hpp"

using namespace mha;

namespace {

int plan(const trace::Trace& trace, std::size_t hservers, std::size_t sservers,
         common::ByteCount step) {
  std::printf("trace: %s, %zu records\n", trace.file_name.c_str(), trace.records.size());
  std::printf("%s\n", trace::summarize(trace.records).to_string().c_str());

  sim::ClusterConfig cluster;
  cluster.num_hservers = hservers;
  cluster.num_sservers = sservers;

  core::MhaOptions options;
  if (step != 0) options.rssd.step = step;
  auto result = core::MhaPipeline::analyze(cluster, trace, options);
  if (!result.is_ok()) {
    std::fprintf(stderr, "planning failed: %s\n", result.status().to_string().c_str());
    return 1;
  }
  std::printf("plan for %zu HServers + %zu SServers (step %s):\n%s", hservers, sservers,
              common::format_bytes(options.rssd.step).c_str(),
              result->to_string().c_str());

  // DRT head: where the first few reordered blocks will live.
  std::printf("\nDRT head (first 5 entries):\n");
  std::size_t shown = 0;
  for (const core::DrtEntry& e : result->plan.drt.entries()) {
    std::printf("  [%llu, +%s) -> %s @ %llu\n", static_cast<unsigned long long>(e.o_offset),
                common::format_bytes(e.length).c_str(), e.r_file.c_str(),
                static_cast<unsigned long long>(e.r_offset));
    if (++shown == 5) break;
  }
  std::printf("metadata footprint: %s for %s of reordered data (%.3f%%)\n",
              common::format_bytes(result->plan.drt.metadata_bytes()).c_str(),
              common::format_bytes(result->plan.drt.covered_bytes()).c_str(),
              100.0 * static_cast<double>(result->plan.drt.metadata_bytes()) /
                  static_cast<double>(std::max<common::ByteCount>(
                      result->plan.drt.covered_bytes(), 1)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--demo") {
    workloads::LuConfig demo;
    demo.num_procs = 8;
    demo.slabs = 64;
    std::printf("(demo mode: planning a synthetic out-of-core LU trace)\n\n");
    return plan(workloads::lu_decomposition(demo), 6, 2, 0);
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <trace.csv> [hservers=6] [sservers=2] [step-bytes]\n"
                 "       %s --demo\n",
                 argv[0], argv[0]);
    return 2;
  }
  auto trace = trace::read_csv_file(argv[1]);
  if (!trace.is_ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", argv[1], trace.status().to_string().c_str());
    return 1;
  }
  const std::size_t hservers = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 6;
  const std::size_t sservers = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 2;
  common::ByteCount step = 0;
  if (argc > 4) {
    auto parsed = common::parse_bytes(argv[4]);
    if (!parsed) {
      std::fprintf(stderr, "bad step: %s\n", argv[4]);
      return 2;
    }
    step = *parsed;
  }
  return plan(*trace, hservers, sservers, step);
}
