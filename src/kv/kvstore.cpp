#include "kv/kvstore.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/crc32.hpp"
#include "common/log.hpp"

namespace mha::kv {

namespace {

// Log record framing:
//   u32 crc (over everything after this field)
//   u8  type (kPut / kErase)
//   u32 key_len
//   u32 value_len (0 for erase)
//   key bytes, value bytes
constexpr std::uint8_t kPut = 1;
constexpr std::uint8_t kErase = 2;

void put_u32(std::string& buf, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  buf.append(b, 4);
}

bool read_exact(std::FILE* f, void* out, std::size_t n) {
  return std::fread(out, 1, n, f) == n;
}

}  // namespace

KvStore::~KvStore() { (void)close(); }

KvStore::KvStore(KvStore&& other) noexcept { *this = std::move(other); }

KvStore& KvStore::operator=(KvStore&& other) noexcept {
  if (this != &other) {
    (void)close();
    path_ = std::move(other.path_);
    options_ = other.options_;
    file_ = other.file_;
    map_ = std::move(other.map_);
    dead_records_ = other.dead_records_;
    other.file_ = nullptr;
    other.map_.clear();
    other.dead_records_ = 0;
  }
  return *this;
}

common::Status KvStore::open(const std::string& path, KvOptions options) {
  if (is_open()) return common::Status::failed_precondition("store already open");
  path_ = path;
  options_ = options;
  map_.clear();
  dead_records_ = 0;

  // A crash during compact() can strand a "<path>.compact" temp file; the
  // live log is authoritative until the atomic rename, so the leftover is
  // garbage and must not survive (a later compact would reuse the name).
  std::remove((path + ".compact").c_str());

  // "a+b" creates the file if missing and allows reading for replay.
  file_ = std::fopen(path.c_str(), "a+b");
  if (file_ == nullptr) {
    return common::Status::io_error("cannot open kv log: " + path);
  }
  common::Status s = load();
  if (!s.is_ok()) {
    std::fclose(file_);
    file_ = nullptr;
  }
  return s;
}

common::Status KvStore::load() {
  std::rewind(file_);
  last_load_ = LoadReport{};
  long valid_end = 0;
  for (;;) {
    std::uint32_t crc = 0;
    std::uint8_t type = 0;
    std::uint32_t key_len = 0;
    std::uint32_t value_len = 0;
    if (!read_exact(file_, &crc, 4)) break;
    if (!read_exact(file_, &type, 1) || !read_exact(file_, &key_len, 4) ||
        !read_exact(file_, &value_len, 4)) {
      break;  // truncated header: torn tail
    }
    std::string key(key_len, '\0');
    std::string value(value_len, '\0');
    if ((key_len != 0 && !read_exact(file_, key.data(), key_len)) ||
        (value_len != 0 && !read_exact(file_, value.data(), value_len))) {
      break;  // truncated payload
    }
    std::string framed;
    framed.push_back(static_cast<char>(type));
    put_u32(framed, key_len);
    put_u32(framed, value_len);
    framed += key;
    framed += value;
    if (common::crc32(framed) != crc) {
      MHA_WARN << "kv: corrupt record in " << path_ << "; truncating tail";
      last_load_.crc_mismatch = true;
      break;
    }
    if (type == kPut) {
      dead_records_ += map_.count(key);
      map_[std::move(key)] = std::move(value);
    } else if (type == kErase) {
      // The erase record itself is dead weight once applied, and so is the
      // put it cancels (when one existed).
      dead_records_ += 1 + map_.erase(key);
    } else {
      MHA_WARN << "kv: unknown record type in " << path_ << "; truncating tail";
      last_load_.crc_mismatch = true;
      break;
    }
    ++last_load_.records_applied;
    valid_end = std::ftell(file_);
  }
  // Drop any torn tail so future appends start from a clean prefix.  The
  // forensics land in last_load() so the journal/recovery layers can report
  // "phase N reached, but its successor's record was torn away".
  std::fseek(file_, 0, SEEK_END);
  const long file_end = std::ftell(file_);
  if (file_end != valid_end) {
    last_load_.tail_truncated = true;
    last_load_.torn_bytes = static_cast<common::ByteCount>(file_end - valid_end);
    if (::truncate(path_.c_str(), valid_end) != 0) {
      return common::Status::io_error("cannot truncate torn tail of " + path_);
    }
    // Reopen so the stdio stream agrees with the truncated file.
    std::fclose(file_);
    file_ = std::fopen(path_.c_str(), "a+b");
    if (file_ == nullptr) return common::Status::io_error("reopen after truncate failed");
  }
  std::fseek(file_, 0, SEEK_END);
  return common::Status::ok();
}

common::Result<LogVerifyReport> KvStore::verify_log() const {
  if (!is_open()) return common::Status::failed_precondition("store not open");
  // Appended records may still sit in the stdio buffer; make the on-disk
  // image current before auditing it.
  std::fflush(file_);
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return common::Status::io_error("cannot open kv log: " + path_);
  LogVerifyReport report;
  long valid_end = 0;
  for (;;) {
    std::uint32_t crc = 0;
    std::uint8_t type = 0;
    std::uint32_t key_len = 0;
    std::uint32_t value_len = 0;
    if (!read_exact(f, &crc, 4)) break;
    if (!read_exact(f, &type, 1) || !read_exact(f, &key_len, 4) ||
        !read_exact(f, &value_len, 4)) {
      break;
    }
    std::string key(key_len, '\0');
    std::string value(value_len, '\0');
    if ((key_len != 0 && !read_exact(f, key.data(), key_len)) ||
        (value_len != 0 && !read_exact(f, value.data(), value_len))) {
      break;
    }
    std::string framed;
    framed.push_back(static_cast<char>(type));
    put_u32(framed, key_len);
    put_u32(framed, value_len);
    framed += key;
    framed += value;
    if (common::crc32(framed) != crc || (type != kPut && type != kErase)) {
      ++report.crc_failures;
    } else {
      ++report.records;
    }
    valid_end = std::ftell(f);
  }
  std::fseek(f, 0, SEEK_END);
  report.trailing_bytes = static_cast<common::ByteCount>(std::ftell(f) - valid_end);
  std::fclose(f);
  return report;
}

common::Status KvStore::close() {
  if (!is_open()) return common::Status::ok();
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  return common::Status::ok();
}

common::Status KvStore::append_record(std::uint8_t type, std::string_view key,
                                      std::string_view value) {
  std::string framed;
  framed.reserve(9 + key.size() + value.size());
  framed.push_back(static_cast<char>(type));
  put_u32(framed, static_cast<std::uint32_t>(key.size()));
  put_u32(framed, static_cast<std::uint32_t>(value.size()));
  framed.append(key);
  framed.append(value);
  const std::uint32_t crc = common::crc32(framed);
  if (std::fwrite(&crc, 1, 4, file_) != 4 ||
      std::fwrite(framed.data(), 1, framed.size(), file_) != framed.size()) {
    return common::Status::io_error("kv append failed: " + path_);
  }
  return maybe_sync();
}

common::Status KvStore::maybe_sync() {
  if (options_.sync == SyncMode::kEveryWrite) {
    if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
      return common::Status::io_error("kv fsync failed: " + path_);
    }
  }
  return common::Status::ok();
}

common::Status KvStore::put(std::string_view key, std::string_view value) {
  if (!is_open()) return common::Status::failed_precondition("store not open");
  MHA_RETURN_IF_ERROR(append_record(kPut, key, value));
  auto [it, inserted] = map_.insert_or_assign(std::string(key), std::string(value));
  (void)it;
  if (!inserted) ++dead_records_;
  if (dead_records_ >= options_.auto_compact_dead_records) return compact();
  return common::Status::ok();
}

std::optional<std::string> KvStore::get(std::string_view key) const {
  auto it = map_.find(std::string(key));
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool KvStore::contains(std::string_view key) const {
  return map_.find(std::string(key)) != map_.end();
}

common::Status KvStore::erase(std::string_view key) {
  if (!is_open()) return common::Status::failed_precondition("store not open");
  auto it = map_.find(std::string(key));
  if (it == map_.end()) return common::Status::ok();
  MHA_RETURN_IF_ERROR(append_record(kErase, key, {}));
  map_.erase(it);
  dead_records_ += 2;  // the cancelled put and the erase marker itself
  if (dead_records_ >= options_.auto_compact_dead_records) return compact();
  return common::Status::ok();
}

void KvStore::for_each(
    const std::function<bool(std::string_view, std::string_view)>& fn) const {
  for (const auto& [k, v] : map_) {
    if (!fn(k, v)) return;
  }
}

common::Status KvStore::sync() {
  if (!is_open()) return common::Status::failed_precondition("store not open");
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return common::Status::io_error("kv sync failed: " + path_);
  }
  return common::Status::ok();
}

common::Status KvStore::compact() {
  if (!is_open()) return common::Status::failed_precondition("store not open");
  const std::string tmp_path = path_ + ".compact";
  std::FILE* tmp = std::fopen(tmp_path.c_str(), "wb");
  if (tmp == nullptr) return common::Status::io_error("cannot create " + tmp_path);

  std::FILE* const live = file_;
  file_ = tmp;  // reuse append_record against the temp file
  common::Status status = common::Status::ok();
  for (const auto& [k, v] : map_) {
    status = append_record(kPut, k, v);
    if (!status.is_ok()) break;
  }
  if (status.is_ok() && (std::fflush(tmp) != 0 || ::fsync(::fileno(tmp)) != 0)) {
    status = common::Status::io_error("compact fsync failed");
  }
  std::fclose(tmp);
  file_ = live;
  if (!status.is_ok()) {
    std::remove(tmp_path.c_str());
    return status;
  }
  std::fclose(file_);
  file_ = nullptr;
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    // The live log is still intact on disk; reopen it so the store keeps
    // working instead of being stranded closed.
    std::remove(tmp_path.c_str());
    file_ = std::fopen(path_.c_str(), "a+b");
    if (file_ != nullptr) std::fseek(file_, 0, SEEK_END);
    return common::Status::io_error("compact rename failed: " + path_);
  }
  file_ = std::fopen(path_.c_str(), "a+b");
  if (file_ == nullptr) return common::Status::io_error("reopen after compact failed");
  std::fseek(file_, 0, SEEK_END);
  dead_records_ = 0;
  return common::Status::ok();
}

}  // namespace mha::kv
