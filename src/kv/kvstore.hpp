// Persistent key-value store — the repo's substitute for Berkeley DB, which
// the paper uses to hold the Data Reordering Table (DRT) and the Region
// Stripe Table (RST) (§IV-A).
//
// Design: an in-memory hash table over an append-only log file.  Each log
// record is CRC-framed; `put`/`erase` append a record and (optionally,
// matching the paper's "synchronously written to the storage in order to
// survive power failures") fsync it.  `open` replays the log, stopping at
// the first corrupt/truncated record so a torn tail after a crash is
// tolerated.  `compact` rewrites the log with only live entries.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/result.hpp"
#include "common/types.hpp"

namespace mha::kv {

/// Durability of individual mutations.
enum class SyncMode {
  kNone,       ///< rely on OS write-back (fast; used by tests/benches)
  kEveryWrite  ///< fsync after every mutation (paper's power-failure story)
};

struct KvOptions {
  SyncMode sync = SyncMode::kNone;
  /// Compact automatically when the log holds this many dead records.
  std::size_t auto_compact_dead_records = 1 << 16;
};

/// What the last open()/load() replay found — the crash-forensics record
/// that lets callers (the migration journal, recovery) distinguish "clean
/// log" from "torn record truncated and folded back".
struct LoadReport {
  std::size_t records_applied = 0;
  /// Bytes dropped from the log tail (0 on a clean load).
  common::ByteCount torn_bytes = 0;
  /// True when the tail was cut because a record was torn mid-frame.
  bool tail_truncated = false;
  /// True when the cut was specifically a CRC mismatch (payload complete in
  /// length but damaged) rather than a short header/payload.
  bool crc_mismatch = false;
};

/// verify_log() summary: a read-only integrity audit of the on-disk log.
struct LogVerifyReport {
  std::size_t records = 0;        ///< well-framed records
  std::size_t crc_failures = 0;   ///< frames whose CRC does not match
  common::ByteCount trailing_bytes = 0;  ///< unparseable bytes at the tail
  bool clean() const { return crc_failures == 0 && trailing_bytes == 0; }
};

/// A durable unordered map<string, string>.
///
/// Not internally synchronised: callers serialise access (the MHA pipeline
/// mutates the tables from a single control thread, like the paper's MDS).
class KvStore {
 public:
  KvStore() = default;
  ~KvStore();
  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;
  KvStore(KvStore&&) noexcept;
  KvStore& operator=(KvStore&&) noexcept;

  /// Opens (creating if absent) the store backed by `path`.
  common::Status open(const std::string& path, KvOptions options = {});

  /// True between a successful open() and close().
  bool is_open() const { return file_ != nullptr; }

  /// Flushes and closes the backing file.  Idempotent.
  common::Status close();

  /// Inserts or overwrites.
  common::Status put(std::string_view key, std::string_view value);

  /// Returns the value or std::nullopt when the key is absent.
  std::optional<std::string> get(std::string_view key) const;

  bool contains(std::string_view key) const;

  /// Removes the key; ok (no-op) when absent.
  common::Status erase(std::string_view key);

  std::size_t size() const { return map_.size(); }

  /// Number of superseded/deleted records still in the log.
  std::size_t dead_records() const { return dead_records_; }

  /// Visits every live entry; `fn` returning false stops the scan early.
  void for_each(const std::function<bool(std::string_view key, std::string_view value)>& fn) const;

  /// Rewrites the log with only live entries.
  common::Status compact();

  /// What the most recent open() replay found (torn-tail forensics).
  const LoadReport& last_load() const { return last_load_; }

  /// Walks the on-disk log front to back, CRC-checking every frame, without
  /// touching the in-memory map (the scrubber's KV sweep).  Unlike load()
  /// this does not truncate anything.
  common::Result<LogVerifyReport> verify_log() const;

  /// Flushes and fsyncs the log once (bulk-load durability point: write many
  /// records with SyncMode::kNone, then sync()).
  common::Status sync();

 private:
  common::Status append_record(std::uint8_t type, std::string_view key, std::string_view value);
  common::Status load();
  common::Status maybe_sync();

  std::string path_;
  KvOptions options_;
  std::FILE* file_ = nullptr;
  std::unordered_map<std::string, std::string> map_;
  std::size_t dead_records_ = 0;
  LoadReport last_load_;
};

}  // namespace mha::kv
