// Weighted token-bucket policy: rate *shaping*, not just reordering.
//
// The ordering-only policies (size-fair, job-fair) decide who goes first
// inside a congestion window but still admit every byte the moment the
// window opens — an aggressor past its share is delayed, never denied.  The
// token bucket enforces the share itself: each job owns a bucket refilled
// at `aggregate_bytes_per_s * weight / total_weight` and holding at most
// `burst_seconds` worth of rate.  A request drains its bytes from the
// bucket; when the bucket runs dry, the request's *virtual arrival* is
// pushed to the instant the deficit refills, so the excess work hits the
// server queues later and the well-behaved tenants' requests land in the
// gap.  Because admission times move, the token bucket trades aggregate
// utilisation for strict isolation — the classic QoS trade — and the bench
// reports both sides of it.
//
// Within a window, plan() orders by simulated admission time (tier first),
// so a throttled request never head-of-line-blocks an unthrottled one on
// the server FCFS queues.  Latency is measured from the true arrival, so
// shaping delay is charged to the shaped job's own percentiles.
#pragma once

#include "qos/policy.hpp"

namespace mha::qos {

struct TokenBucketOptions {
  /// Aggregate shaped rate split between jobs by weight share.  The default
  /// is roughly the simulated hybrid testbed's sequential capacity; benches
  /// with bigger clusters should pass their own.
  double aggregate_bytes_per_s = 512.0 * 1024 * 1024;
  /// Bucket depth, in seconds of the job's own rate: bursts up to
  /// rate * burst_seconds are admitted unshaped.
  double burst_seconds = 0.05;
};

class TokenBucketScheduler : public FairShareScheduler {
 public:
  explicit TokenBucketScheduler(const JobTable& jobs, TokenBucketOptions options = {});

  std::string name() const override { return "token-bucket"; }

  std::vector<std::size_t> plan(const std::vector<common::Request>& batch) override;

  /// The job's refill rate in bytes/s (weight share of the aggregate).
  double rate_of(common::JobId job) const;
  /// Tokens currently in the job's bucket (for tests).
  double tokens_of(common::JobId job) const;

 protected:
  /// Fairness tag unit is bytes (the bucket is a byte meter); ordering
  /// within a window is overridden by plan() below anyway.
  double cost_units(common::ByteCount bytes) const override {
    return static_cast<double>(bytes);
  }

  /// Drains `bytes` from the job's bucket; returns the shaped admission
  /// time (== arrival while the bucket holds enough tokens).
  common::Seconds admission_time(common::JobId job, common::ByteCount bytes,
                                 common::Seconds arrival) override;

 private:
  struct Bucket {
    double tokens = 0.0;
    common::Seconds last_refill = 0.0;
    bool primed = false;  ///< first touch fills the bucket to burst depth
  };

  void ensure_bucket(common::JobId job);
  /// Refill-and-drain against `bucket` (pure; plan() simulates on copies).
  common::Seconds draw(Bucket& bucket, double rate, common::ByteCount bytes,
                       common::Seconds arrival) const;

  TokenBucketOptions options_;
  std::vector<Bucket> buckets_;
  /// plan() scratch: simulated bucket states + per-request admission tags.
  std::vector<Bucket> plan_buckets_;
  std::vector<double> plan_admit_;
};

std::unique_ptr<FairShareScheduler> make_token_bucket(const JobTable& jobs,
                                                      TokenBucketOptions options = {});

}  // namespace mha::qos
