#include "qos/policy.hpp"

#include <algorithm>
#include <numeric>

#include "qos/job_fair.hpp"
#include "qos/size_fair.hpp"
#include "qos/token_bucket.hpp"

namespace mha::qos {

const char* to_string(QosKind kind) {
  switch (kind) {
    case QosKind::kSizeFair:
      return "size-fair";
    case QosKind::kJobFair:
      return "job-fair";
    case QosKind::kTokenBucket:
      return "token-bucket";
  }
  return "unknown";
}

std::vector<QosKind> all_qos_kinds() {
  return {QosKind::kSizeFair, QosKind::kJobFair, QosKind::kTokenBucket};
}

std::unique_ptr<FairShareScheduler> make_qos_scheduler(QosKind kind, const JobTable& jobs) {
  switch (kind) {
    case QosKind::kSizeFair:
      return std::make_unique<SizeFairScheduler>(jobs);
    case QosKind::kJobFair:
      return std::make_unique<JobFairScheduler>(jobs);
    case QosKind::kTokenBucket:
      return std::make_unique<TokenBucketScheduler>(jobs);
  }
  return std::make_unique<SizeFairScheduler>(jobs);
}

FairShareScheduler::FairShareScheduler(const JobTable& jobs) : jobs_(&jobs) {
  // Size every per-job structure up front: the request path then never
  // grows them (ensure_job only fires for jobs outside the table).
  virtual_clock_.resize(std::max<std::size_t>(jobs.size(), 1), 0.0);
  ledger_bytes_.resize(virtual_clock_.size(), 0);
  ledger_requests_.resize(virtual_clock_.size(), 0);
}

void FairShareScheduler::ensure_job(common::JobId job) {
  if (job < virtual_clock_.size()) return;
  virtual_clock_.resize(job + 1, 0.0);
  ledger_bytes_.resize(job + 1, 0);
  ledger_requests_.resize(job + 1, 0);
}

common::ByteCount FairShareScheduler::consumed_bytes(common::JobId job) const {
  return job < ledger_bytes_.size() ? ledger_bytes_[job] : 0;
}

std::uint64_t FairShareScheduler::consumed_requests(common::JobId job) const {
  return job < ledger_requests_.size() ? ledger_requests_[job] : 0;
}

sched::DispatchResult FairShareScheduler::dispatch(const sched::ServerRow& row,
                                                   std::span<const sim::SubRequest> subs,
                                                   common::Seconds arrival) {
  sched::DispatchResult result;
  result.completion = arrival;
  if (subs.empty()) return result;

  // All sub-requests of one file request carry the same job stamp.
  const common::JobId job = subs.front().job;
  ensure_job(job);
  common::ByteCount total = 0;
  for (const sim::SubRequest& sub : subs) total += sub.bytes;

  // Shaping hook: a token bucket may push the admission past `arrival`.
  const common::Seconds admit = admission_time(job, total, arrival);
  if (admit > arrival) ++metrics_.deferrals;

  for (const sim::SubRequest& sub : subs) {
    sim::ServerSim& server = row.server(sub.server);
    metrics_.observe_backlog(sub.server, server.backlog(admit));
    const sim::Charge c = server.charge(sub.op, sub.bytes, admit, sub.job);
    result.completion = std::max(result.completion, c.completion);
    result.last_charge = c;
    result.last_server = sub.server;
    ++result.sub_requests;
  }
  metrics_.subs += result.sub_requests;
  // Latency is measured from the *true* arrival, so shaping delay shows up
  // in the shaped job's own percentiles — isolation is not free for the
  // tenant that exceeds its share.
  metrics_.observe_request(result.completion - arrival);

  virtual_clock_[job] += cost_units(total) / jobs_->weight(job);
  ledger_bytes_[job] += total;
  ledger_requests_[job] += 1;
  return result;
}

std::vector<std::size_t> FairShareScheduler::plan(
    const std::vector<common::Request>& batch) {
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), 0);
  if (batch.size() < 2) return order;

  common::JobId max_job = 0;
  for (const common::Request& r : batch) max_job = std::max(max_job, r.job);
  ensure_job(max_job);

  // Tag each request with its virtual finish time: a per-job clock seeded
  // from the persistent ledger and advanced by cost/weight per request in
  // arrival order.  Sorting by tag interleaves jobs proportionally to their
  // weights instead of letting a wide tenant occupy a whole prefix of the
  // window.
  plan_clock_.assign(virtual_clock_.begin(), virtual_clock_.end());
  plan_tag_.resize(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const common::JobId job = batch[i].job;
    plan_clock_[job] += cost_units(batch[i].size) / jobs_->weight(job);
    plan_tag_[i] = plan_clock_[job];
  }

  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const PriorityClass pa = jobs_->priority(batch[a].job);
    const PriorityClass pb = jobs_->priority(batch[b].job);
    if (pa != pb) return pa > pb;  // interactive > normal > batch
    return plan_tag_[a] < plan_tag_[b];
  });
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] != i) ++metrics_.reorders;
  }
  return order;
}

}  // namespace mha::qos
