#include "qos/job_fair.hpp"

namespace mha::qos {

std::unique_ptr<FairShareScheduler> make_job_fair(const JobTable& jobs) {
  return std::make_unique<JobFairScheduler>(jobs);
}

}  // namespace mha::qos
