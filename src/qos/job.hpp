// Tenant/job model for multi-tenant QoS.
//
// A *job* is the unit the fair-share policies arbitrate between: one
// tenant's application run, owning a set of client ranks, a scheduling
// weight and a priority class (ThemisIO's interposed fair-share layer
// arbitrates between jobs the same way; see PAPERS.md).  The JobTable is
// the authoritative registry: job ids are dense (0..size-1) so every
// accounting structure downstream — per-job rows in sim::ServerSim, the
// policies' consumed-service ledgers, the replayer's per-tenant latency
// collectors — can be a flat vector indexed by JobId with no hashing and no
// steady-state allocation.
//
// Rank ownership: the replayer resolves the issuing rank of each request to
// its job via job_of_rank(), an O(1) vector lookup.  Unmapped ranks fall
// into job 0, which keeps every single-tenant caller (all pre-QoS code)
// behaviourally unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mha::qos {

/// Scheduling tier of a job.  Policies order strictly by tier first
/// (interactive preempts normal preempts batch within a congestion window)
/// and apply fair sharing *within* a tier.
enum class PriorityClass : std::uint8_t { kBatch = 0, kNormal = 1, kInteractive = 2 };

/// Human-readable tier name ("batch"/"normal"/"interactive").
const char* to_string(PriorityClass priority);

/// Static description of one job.
struct JobSpec {
  common::JobId id = common::kDefaultJob;
  std::string name;
  /// Fair-share weight (> 0): a job with weight 2 is entitled to twice the
  /// service of a weight-1 job under every policy.
  double weight = 1.0;
  PriorityClass priority = PriorityClass::kNormal;
};

class JobTable {
 public:
  /// Registers a job; ids are handed out densely in registration order.
  common::JobId add(std::string name, double weight = 1.0,
                    PriorityClass priority = PriorityClass::kNormal);

  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }

  const JobSpec& spec(common::JobId job) const { return jobs_[job]; }
  double weight(common::JobId job) const {
    return job < jobs_.size() ? jobs_[job].weight : 1.0;
  }
  PriorityClass priority(common::JobId job) const {
    return job < jobs_.size() ? jobs_[job].priority : PriorityClass::kNormal;
  }
  double total_weight() const { return total_weight_; }

  /// Maps `count` ranks starting at `first_rank` to `job` (the driver calls
  /// this once per tenant with that tenant's contiguous rank block).
  void assign_ranks(common::JobId job, int first_rank, int count);

  /// Owning job of a client rank; kDefaultJob when the rank was never
  /// assigned (single-tenant traces).
  common::JobId job_of_rank(int rank) const {
    const auto r = static_cast<std::size_t>(rank);
    return rank >= 0 && r < rank_to_job_.size() ? rank_to_job_[r] : common::kDefaultJob;
  }

  /// One past the highest mapped rank (the world size the table covers).
  int num_ranks() const { return static_cast<int>(rank_to_job_.size()); }

 private:
  std::vector<JobSpec> jobs_;
  std::vector<common::JobId> rank_to_job_;
  double total_weight_ = 0.0;
};

}  // namespace mha::qos
