#include "qos/token_bucket.hpp"

#include <algorithm>
#include <numeric>

namespace mha::qos {

TokenBucketScheduler::TokenBucketScheduler(const JobTable& jobs, TokenBucketOptions options)
    : FairShareScheduler(jobs), options_(options) {
  buckets_.resize(std::max<std::size_t>(jobs.size(), 1));
}

double TokenBucketScheduler::rate_of(common::JobId job) const {
  const double total = jobs_->total_weight();
  if (total <= 0.0) return options_.aggregate_bytes_per_s;
  return options_.aggregate_bytes_per_s * jobs_->weight(job) / total;
}

double TokenBucketScheduler::tokens_of(common::JobId job) const {
  return job < buckets_.size() ? buckets_[job].tokens : 0.0;
}

void TokenBucketScheduler::ensure_bucket(common::JobId job) {
  if (job >= buckets_.size()) buckets_.resize(job + 1);
}

common::Seconds TokenBucketScheduler::draw(Bucket& bucket, double rate,
                                           common::ByteCount bytes,
                                           common::Seconds arrival) const {
  if (rate <= 0.0 || bytes == 0) return arrival;
  const double burst = rate * options_.burst_seconds;
  if (!bucket.primed) {
    bucket.tokens = burst;
    bucket.last_refill = arrival;
    bucket.primed = true;
  }
  if (arrival > bucket.last_refill) {
    bucket.tokens = std::min(burst, bucket.tokens + (arrival - bucket.last_refill) * rate);
    bucket.last_refill = arrival;
  }
  const double need = static_cast<double>(bytes);
  if (bucket.tokens >= need) {
    bucket.tokens -= need;
    return arrival;
  }
  // Admission waits for the deficit to refill; at that instant the bucket
  // is exactly empty.
  const double deficit = need - bucket.tokens;
  const common::Seconds admit = arrival + deficit / rate;
  bucket.tokens = 0.0;
  bucket.last_refill = admit;
  return admit;
}

common::Seconds TokenBucketScheduler::admission_time(common::JobId job,
                                                     common::ByteCount bytes,
                                                     common::Seconds arrival) {
  ensure_bucket(job);
  return draw(buckets_[job], rate_of(job), bytes, arrival);
}

std::vector<std::size_t> TokenBucketScheduler::plan(
    const std::vector<common::Request>& batch) {
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), 0);
  if (batch.size() < 2) return order;

  common::JobId max_job = 0;
  for (const common::Request& r : batch) max_job = std::max(max_job, r.job);
  ensure_bucket(max_job);

  // Simulate the buckets over the window in arrival order to predict each
  // request's admission time, then order by it (tier first): requests the
  // bucket would defer sort behind every request it would admit now, so a
  // throttled burst cannot head-of-line-block a well-behaved tenant on the
  // server FCFS queues.  The authoritative bucket state only moves in
  // dispatch; a plan is a pure look-ahead.
  plan_buckets_.assign(buckets_.begin(), buckets_.end());
  plan_admit_.resize(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const common::JobId job = batch[i].job;
    plan_admit_[i] =
        draw(plan_buckets_[job], rate_of(job), batch[i].size, batch[i].issue_time);
  }

  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const PriorityClass pa = jobs_->priority(batch[a].job);
    const PriorityClass pb = jobs_->priority(batch[b].job);
    if (pa != pb) return pa > pb;
    return plan_admit_[a] < plan_admit_[b];
  });
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] != i) ++metrics_.reorders;
  }
  return order;
}

std::unique_ptr<FairShareScheduler> make_token_bucket(const JobTable& jobs,
                                                      TokenBucketOptions options) {
  return std::make_unique<TokenBucketScheduler>(jobs, options);
}

}  // namespace mha::qos
