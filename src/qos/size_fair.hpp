// Size-fair policy: weighted fair queuing in bytes.
//
// Each job's virtual clock advances by bytes/weight per request, so within
// any congestion window jobs drain *byte* throughput proportionally to
// their weights — the right notion of fairness when tenants issue
// comparably-sized requests and "share" means bandwidth share (ThemisIO's
// size-fair policy).  A tenant that issues few small requests is tagged far
// ahead of a tenant pouring megabytes in, so the light tenant's requests
// are admitted early instead of queuing behind the heavy tenant's bytes.
#pragma once

#include "qos/policy.hpp"

namespace mha::qos {

class SizeFairScheduler : public FairShareScheduler {
 public:
  explicit SizeFairScheduler(const JobTable& jobs) : FairShareScheduler(jobs) {}

  std::string name() const override { return "size-fair"; }

 protected:
  double cost_units(common::ByteCount bytes) const override {
    return static_cast<double>(bytes);
  }
};

std::unique_ptr<FairShareScheduler> make_size_fair(const JobTable& jobs);

}  // namespace mha::qos
