#include "qos/job.hpp"

#include <algorithm>

namespace mha::qos {

const char* to_string(PriorityClass priority) {
  switch (priority) {
    case PriorityClass::kBatch:
      return "batch";
    case PriorityClass::kNormal:
      return "normal";
    case PriorityClass::kInteractive:
      return "interactive";
  }
  return "unknown";
}

common::JobId JobTable::add(std::string name, double weight, PriorityClass priority) {
  JobSpec spec;
  spec.id = static_cast<common::JobId>(jobs_.size());
  spec.name = std::move(name);
  spec.weight = weight > 0.0 ? weight : 1.0;
  spec.priority = priority;
  total_weight_ += spec.weight;
  jobs_.push_back(std::move(spec));
  return jobs_.back().id;
}

void JobTable::assign_ranks(common::JobId job, int first_rank, int count) {
  if (first_rank < 0 || count <= 0) return;
  const std::size_t end = static_cast<std::size_t>(first_rank) + static_cast<std::size_t>(count);
  if (rank_to_job_.size() < end) rank_to_job_.resize(end, common::kDefaultJob);
  std::fill(rank_to_job_.begin() + first_rank, rank_to_job_.begin() + static_cast<std::ptrdiff_t>(end),
            job);
}

}  // namespace mha::qos
