// Per-tenant service metrics: latency collectors, slowdown-vs-isolated
// reports, and Jain's fairness index.
//
// The multi-tenant story is told in two numbers per tenant: *slowdown* (how
// much worse is your p50/p99 latency under contention than when you had the
// cluster to yourself) and *fairness* (Jain's index over weight-normalised
// bandwidth — 1.0 when every tenant gets exactly its entitled share, 1/n
// when one tenant gets everything).  The replayer fills TenantLatency rows
// while it runs; the driver pairs a contended run with per-tenant isolated
// baselines and folds both into TenantReport rows that tenant_table()
// renders stats_table()-style.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "qos/job.hpp"

namespace mha::qos {

/// Jain's fairness index (sum x)^2 / (n * sum x^2) over non-negative
/// allocations.  1.0 = perfectly fair, 1/n = maximally unfair (one tenant
/// takes everything).  Returns 1.0 for an empty or all-zero span (nothing
/// was allocated, so nothing was unfair).
double jains_index(std::span<const double> xs);

/// Streaming per-tenant latency collector, filled by the replayer.  The
/// percentile store is reserve()d up front from the trace's per-job request
/// counts, so observe() never allocates on the request path.
struct TenantLatency {
  common::OnlineStats latency;
  common::Percentiles percentiles;
  common::ByteCount bytes = 0;
  std::uint64_t requests = 0;
  /// Bytes of this tenant's requests that completed within their tier's
  /// goodput allowance (== bytes when no allowance was configured).
  common::ByteCount goodput_bytes = 0;
  /// Requests the overload guard shed before any server was charged.
  std::uint64_t shed = 0;
  /// Requests that failed in flight (deadline miss, retry/timeout budget).
  std::uint64_t failed = 0;
  /// Requests that completed past their tier's allowance.
  std::uint64_t late = 0;

  void observe(common::Seconds request_latency, common::ByteCount request_bytes) {
    latency.add(request_latency);
    percentiles.add(request_latency);
    bytes += request_bytes;
    ++requests;
  }

  double p50() const { return percentiles.percentile(50.0); }
  double p99() const { return percentiles.percentile(99.0); }
};

/// One tenant's line in the contention report: contended latency percentiles
/// against the tenant's isolated-run baseline, plus achieved bandwidth.
struct TenantReport {
  JobSpec spec;
  std::uint64_t requests = 0;
  common::ByteCount bytes = 0;
  /// Contended-run latency percentiles (seconds).
  double p50 = 0.0;
  double p99 = 0.0;
  /// Same tenant, same workload, cluster to itself (seconds).
  double isolated_p50 = 0.0;
  double isolated_p99 = 0.0;
  /// Tenant bytes / contended makespan (MiB/s).
  double bandwidth_mib_s = 0.0;
  /// Overload-resilience outcome counters (zero when no guard ran).
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t late = 0;
  /// Tenant on-time bytes / contended makespan (MiB/s).
  double goodput_mib_s = 0.0;

  /// Contended / isolated latency ratio; 1.0 = no interference visible.
  double slowdown_p50() const { return isolated_p50 > 0.0 ? p50 / isolated_p50 : 1.0; }
  double slowdown_p99() const { return isolated_p99 > 0.0 ? p99 / isolated_p99 : 1.0; }
};

/// Jain's index over weight-normalised bandwidth (bandwidth_i / weight_i):
/// with proportional sharing every normalised share is equal and the index
/// is 1.0 regardless of the weight mix.
double weighted_fairness(std::span<const TenantReport> tenants);

/// stats_table()-style per-tenant report (header + one row per tenant).
std::string tenant_table(std::span<const TenantReport> tenants);

}  // namespace mha::qos
