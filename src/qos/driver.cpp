#include "qos/driver.hpp"

#include <algorithm>
#include <cmath>

#include "exec/thread_pool.hpp"
#include "workloads/apps.hpp"
#include "workloads/btio.hpp"
#include "workloads/dlpipe.hpp"
#include "workloads/hpio.hpp"
#include "workloads/ior.hpp"
#include "workloads/replayer.hpp"

namespace mha::qos {

namespace {

constexpr common::ByteCount kKiB = 1024;
constexpr common::ByteCount kMiB = 1024 * 1024;
/// Tenant file regions are aligned so no stripe is shared across tenants.
constexpr common::ByteCount kRegionAlign = 4 * kMiB;

int largest_square_leq(int n) {
  int root = static_cast<int>(std::sqrt(static_cast<double>(std::max(n, 1))));
  while ((root + 1) * (root + 1) <= n) ++root;
  while (root > 1 && root * root > n) --root;
  return root * root;
}

/// Clients the spec actually fields (BTIO needs a square process grid).
int effective_clients(const TenantSpec& spec) {
  const int clients = std::max(spec.clients, 1);
  return spec.workload == TenantWorkload::kBtio ? largest_square_leq(clients) : clients;
}

trace::Trace generate(const TenantSpec& spec, int clients) {
  const common::ByteCount volume =
      std::max<common::ByteCount>(spec.bytes_per_client, 64 * kKiB) *
      static_cast<common::ByteCount>(clients);
  switch (spec.workload) {
    case TenantWorkload::kIorSmall: {
      workloads::IorMixedSizesConfig config;
      config.num_procs = clients;
      config.request_sizes = {16 * kKiB, 64 * kKiB};
      config.file_size = volume;
      config.op = common::OpType::kRead;
      config.per_rank_sizes = true;
      config.seed = spec.seed;
      return workloads::ior_mixed_sizes(config);
    }
    case TenantWorkload::kIorLarge: {
      workloads::IorMixedSizesConfig config;
      config.num_procs = clients;
      config.request_sizes = {1 * kMiB, 2 * kMiB};
      config.file_size = volume;
      config.op = common::OpType::kWrite;
      config.per_rank_sizes = true;
      config.seed = spec.seed;
      return workloads::ior_mixed_sizes(config);
    }
    case TenantWorkload::kHpio: {
      workloads::HpioConfig config;
      config.num_procs = clients;
      // region_count is per-process records; mean mixed size is ~37 KiB.
      const common::ByteCount mean = (16 + 32 + 64) * kKiB / 3;
      config.region_count = std::max<std::size_t>(
          2, static_cast<std::size_t>(spec.bytes_per_client / mean));
      return workloads::hpio(config);
    }
    case TenantWorkload::kBtio: {
      workloads::BtioConfig config;
      config.num_procs = clients;
      config.time_steps = 8;
      // BTIO's footprint is (classB + classC) / scale independent of the
      // grid, so back out the scale that hits the requested volume (the
      // write phase; the readback doubles it).
      const double footprint = 1.69e9 + 6.8e9;
      config.scale = std::max<common::ByteCount>(
          1, static_cast<common::ByteCount>(footprint / static_cast<double>(volume)));
      return workloads::btio(config);
    }
    case TenantWorkload::kLanl: {
      workloads::LanlConfig config;
      config.num_procs = clients;
      // One App2 loop moves ~256 KiB per process.
      config.loops = std::max(2, static_cast<int>(spec.bytes_per_client / (256 * kKiB)));
      return workloads::lanl_app2(config);
    }
    case TenantWorkload::kDlPipe: {
      // One training epoch reads the whole dataset, so size the dataset to
      // half the requested volume and train two epochs — the reshuffle
      // between them is the signature access pattern.
      workloads::DlPipeConfig config =
          workloads::dl_resnet(clients, std::max<common::ByteCount>(volume / 2, 8 * kMiB),
                               spec.seed);
      return workloads::dl_pipeline(config);
    }
  }
  return {};
}

}  // namespace

const char* to_string(TenantWorkload workload) {
  switch (workload) {
    case TenantWorkload::kIorSmall:
      return "ior-small";
    case TenantWorkload::kIorLarge:
      return "ior-large";
    case TenantWorkload::kHpio:
      return "hpio";
    case TenantWorkload::kBtio:
      return "btio";
    case TenantWorkload::kLanl:
      return "lanl";
    case TenantWorkload::kDlPipe:
      return "dl-pipe";
  }
  return "unknown";
}

MultiTenantDriver::MultiTenantDriver(std::vector<TenantSpec> specs)
    : specs_(std::move(specs)) {
  combined_.file_name = "multitenant.shared";
  tenant_traces_.reserve(specs_.size());

  int base_rank = 0;
  common::Offset base_offset = 0;
  for (const TenantSpec& spec : specs_) {
    const int clients = effective_clients(spec);
    const common::JobId job = jobs_.add(spec.name, spec.weight, spec.priority);
    jobs_.assign_ranks(job, base_rank, clients);

    trace::Trace t = generate(spec, clients);
    const common::ByteCount extent = trace::extent_end(t.records);
    for (trace::TraceRecord& r : t.records) {
      r.rank += base_rank;
      r.offset += base_offset;
    }
    t.file_name = combined_.file_name;

    combined_.records.insert(combined_.records.end(), t.records.begin(), t.records.end());
    tenant_traces_.push_back(std::move(t));

    base_rank += clients;
    base_offset = (base_offset + extent + kRegionAlign - 1) / kRegionAlign * kRegionAlign;
  }
  total_clients_ = base_rank;
  // Stable: within a synchronous window (equal t_start) tenants keep their
  // listing order, which is the FCFS contention story the mixes encode.
  trace::sort_by_time(combined_.records);
}

common::Result<std::vector<MultiTenantDriver::Baseline>>
MultiTenantDriver::isolated_baselines(const SchemeFactory& make_scheme,
                                      const sim::ClusterConfig& config,
                                      const std::string& scheme_name) {
  if (auto it = baseline_cache_.find(scheme_name); it != baseline_cache_.end()) {
    return it->second;
  }
  // Each baseline replays one tenant's trace alone on its own fresh cluster
  // with its own fresh scheme instance — independent tasks, results landing
  // by tenant index, so the parallel map is thread-count invariant.
  std::vector<common::Result<workloads::ReplayResult>> runs =
      exec::default_pool().parallel_map(
          tenant_traces_.size(), [&](std::size_t i) -> common::Result<workloads::ReplayResult> {
            auto scheme = make_scheme();
            return workloads::run_scheme(*scheme, config, tenant_traces_[i]);
          });
  std::vector<Baseline> baselines;
  baselines.reserve(runs.size());
  for (auto& run : runs) {
    if (!run.is_ok()) return run.status();
    baselines.push_back(Baseline{run->latency_p50, run->latency_p99});
  }
  baseline_cache_.emplace(scheme_name, baselines);
  return baselines;
}

common::Result<MultiTenantResult> MultiTenantDriver::run(const SchemeFactory& make_scheme,
                                                         const sim::ClusterConfig& config,
                                                         sched::Scheduler* scheduler) {
  auto scheme = make_scheme();
  MultiTenantResult result;
  result.scheme_name = scheme->name();
  result.scheduler_name = scheduler != nullptr ? scheduler->name() : "fcfs-direct";
  result.total_clients = total_clients_;

  auto baselines = isolated_baselines(make_scheme, config, result.scheme_name);
  if (!baselines.is_ok()) return baselines.status();

  workloads::ReplayOptions options;
  options.scheduler = scheduler;
  options.jobs = &jobs_;
  auto replay = workloads::run_scheme(*scheme, config, combined_, options);
  if (!replay.is_ok()) return replay.status();

  result.makespan = replay->makespan;
  result.aggregate_bandwidth = replay->aggregate_bandwidth;
  result.requests = replay->requests;
  result.scheduler_metrics = replay->scheduler_metrics;

  result.tenants.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    TenantReport report;
    report.spec = jobs_.spec(static_cast<common::JobId>(i));
    if (i < replay->tenants.size()) {
      const TenantLatency& t = replay->tenants[i];
      report.requests = t.requests;
      report.bytes = t.bytes;
      report.p50 = t.p50();
      report.p99 = t.p99();
      report.bandwidth_mib_s =
          replay->makespan > 0.0
              ? static_cast<double>(t.bytes) / replay->makespan / (1024.0 * 1024.0)
              : 0.0;
      report.shed = t.shed;
      report.failed = t.failed;
      report.late = t.late;
      report.goodput_mib_s =
          replay->makespan > 0.0
              ? static_cast<double>(t.goodput_bytes) / replay->makespan / (1024.0 * 1024.0)
              : 0.0;
    }
    report.isolated_p50 = (*baselines)[i].p50;
    report.isolated_p99 = (*baselines)[i].p99;
    result.tenants.push_back(std::move(report));
  }
  result.fairness = weighted_fairness(result.tenants);
  return result;
}

}  // namespace mha::qos
