// Job-fair policy: weighted fair queuing in request slots.
//
// The virtual clock ticks 1/weight per *request*, regardless of its size or
// of how many client processes the job runs.  This is ThemisIO's job-fair
// semantics: every job gets the same number of service opportunities, so a
// tenant cannot grow its share by running more ranks (as under FCFS, where
// share is proportional to process count) or by batching bigger requests
// (as under size-fair, where share is proportional to... nothing — sizes
// cancel — but a job issuing huge requests still occupies proportionally
// more *server time* per slot).  Job-fair is the strongest isolation of the
// ordering-only policies and the natural default for the bursty-aggressor
// contention mix.
#pragma once

#include "qos/policy.hpp"

namespace mha::qos {

class JobFairScheduler : public FairShareScheduler {
 public:
  explicit JobFairScheduler(const JobTable& jobs) : FairShareScheduler(jobs) {}

  std::string name() const override { return "job-fair"; }

 protected:
  double cost_units(common::ByteCount bytes) const override {
    (void)bytes;
    return 1.0;
  }
};

std::unique_ptr<FairShareScheduler> make_job_fair(const JobTable& jobs);

}  // namespace mha::qos
