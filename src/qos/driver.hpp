// MultiTenantDriver: fan hundreds-to-thousands of simulated clients from
// several tenants onto one shared cluster and measure who got what.
//
// The driver turns a list of TenantSpecs into one combined trace: each
// tenant's workload is generated with its own client count and seed, its
// ranks are rebased into a contiguous block, its offsets into a disjoint
// aligned region of one shared file, and the per-tenant streams are merged
// in issue-time order (stable, so tenant listing order breaks ties inside a
// synchronous window — list the aggressor first to give FCFS its worst
// case).  A JobTable maps every rank block to its job, so the replayer
// stamps requests and the fair-share policies see real tenant identities.
//
// run() measures two things per tenant: the contended run (combined trace,
// chosen scheme + scheduler) and an isolated baseline (the same tenant's
// trace alone on an identical fresh cluster, direct FCFS).  Baselines are
// computed on the default exec pool — results land by tenant index, so a
// --threads=8 run reports byte-identically to --threads=1 — and cached per
// scheme name, since every policy in a bench sweep shares them.  The ratio
// of the two is the slowdown the bench and the isolation tests assert on.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "layouts/scheme.hpp"
#include "qos/job.hpp"
#include "qos/metrics.hpp"
#include "sched/scheduler.hpp"
#include "sim/cluster_sim.hpp"
#include "trace/record.hpp"

namespace mha::qos {

/// Canned workload shapes a tenant can run (each maps to one of the
/// generator families with sizes picked for its role in a contention mix).
enum class TenantWorkload {
  kIorSmall = 0,  ///< IOR, small mixed reads (16+64 KiB) — latency-sensitive
  kIorLarge = 1,  ///< IOR, large writes (1+2 MiB) — the bandwidth aggressor
  kHpio = 2,      ///< HPIO strided writes, 16/32/64 KiB regions
  kBtio = 3,      ///< BTIO write+readback phases (clients rounded to a square)
  kLanl = 4,      ///< LANL App2 loop pattern (16 B + ~128 KiB writes)
  kDlPipe = 5,    ///< DL input pipeline: epoch-shuffled 128 KiB sample reads
};

const char* to_string(TenantWorkload workload);

struct TenantSpec {
  std::string name;
  TenantWorkload workload = TenantWorkload::kIorSmall;
  /// Simulated client processes (BTIO rounds down to a perfect square).
  int clients = 32;
  double weight = 1.0;
  PriorityClass priority = PriorityClass::kNormal;
  /// Approximate I/O volume per client; iteration counts derive from it.
  common::ByteCount bytes_per_client = 2ULL * 1024 * 1024;
  std::uint64_t seed = 1;
};

/// Fresh-scheme factory: run() needs a new instance per replay (isolated
/// baselines run in parallel and prepare() is stateful).
using SchemeFactory = std::function<std::unique_ptr<layouts::LayoutScheme>()>;

struct MultiTenantResult {
  std::string scheme_name;
  std::string scheduler_name;  ///< "fcfs-direct" when no scheduler attached
  common::Seconds makespan = 0.0;
  /// Combined-run bytes / makespan.
  double aggregate_bandwidth = 0.0;
  /// Jain's index over weight-normalised per-tenant bandwidth.
  double fairness = 1.0;
  int total_clients = 0;
  std::size_t requests = 0;
  std::vector<TenantReport> tenants;
  sched::SchedulerMetrics scheduler_metrics;
};

class MultiTenantDriver {
 public:
  /// Builds the job table and the combined trace; deterministic in the spec
  /// list (no global state, no wall clock).
  explicit MultiTenantDriver(std::vector<TenantSpec> specs);

  const JobTable& jobs() const { return jobs_; }
  const trace::Trace& combined_trace() const { return combined_; }
  const trace::Trace& tenant_trace(std::size_t i) const { return tenant_traces_[i]; }
  int total_clients() const { return total_clients_; }

  /// Contended replay of the combined trace under make_scheme() +
  /// `scheduler` (borrowed; null dispatches direct FCFS), reported against
  /// per-tenant isolated baselines.  Baselines are cached by scheme name
  /// across calls — reuse one driver for a policy sweep, one cluster config
  /// per driver.
  common::Result<MultiTenantResult> run(const SchemeFactory& make_scheme,
                                        const sim::ClusterConfig& config,
                                        sched::Scheduler* scheduler = nullptr);

 private:
  struct Baseline {
    double p50 = 0.0;
    double p99 = 0.0;
  };

  common::Result<std::vector<Baseline>> isolated_baselines(
      const SchemeFactory& make_scheme, const sim::ClusterConfig& config,
      const std::string& scheme_name);

  std::vector<TenantSpec> specs_;
  JobTable jobs_;
  trace::Trace combined_;
  std::vector<trace::Trace> tenant_traces_;
  int total_clients_ = 0;
  std::map<std::string, std::vector<Baseline>> baseline_cache_;
};

}  // namespace mha::qos
