// Fair-share scheduling policies: the QoS layer's sched::Scheduler family.
//
// Every policy here is a drop-in sched::Scheduler, so it composes with the
// replayer, HybridPfs, the fault layer and any layout scheme exactly like
// FCFS/load-aware/hedged do.  What changes is *whose* request goes first
// when a congestion window holds work from several tenants, and (for the
// token bucket) *when* a tenant's work is allowed to start:
//
//   SizeFairScheduler        - weighted fair queuing in *bytes*: within a
//                              window, requests are ordered by a per-job
//                              virtual byte clock, so every job drains
//                              bytes/weight at the same rate (ThemisIO's
//                              "size-fair").
//   JobFairScheduler         - weighted fair queuing in *request slots*:
//                              the virtual clock ticks once per request, so
//                              every job gets the same number of service
//                              opportunities per window regardless of how
//                              many clients it runs or how big its requests
//                              are (ThemisIO's "job-fair").
//   TokenBucketScheduler     - weighted token buckets (token_bucket.hpp):
//                              each job owns a bytes/s share of a configured
//                              aggregate rate; work beyond the share is
//                              admitted at a later virtual arrival time.
//
// All three order strictly by priority class first (interactive > normal >
// batch) and apply fairness within the tier.  Ordering is deterministic:
// stable sorts keyed on (tier, virtual tag) with the arrival index as the
// final tie-break, so a multi-threaded bench grid replays byte-identically.
//
// FairShareScheduler is the shared base: it owns the job table reference,
// the per-job consumed ledgers (bytes and request slots, both weighted),
// and the virtual-clock plan() machinery; dispatch stays on the zero-alloc
// path (flat vectors indexed by JobId, grown only when a new job first
// appears).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "qos/job.hpp"
#include "sched/scheduler.hpp"

namespace mha::qos {

/// The three shipped fair-share policies, in presentation order.
enum class QosKind { kSizeFair = 0, kJobFair = 1, kTokenBucket = 2 };

/// Human-readable policy name ("size-fair"/"job-fair"/"token-bucket").
const char* to_string(QosKind kind);

/// All policies in presentation order (for bench sweeps).
std::vector<QosKind> all_qos_kinds();

class FairShareScheduler;

/// Factory with per-policy defaults.  `jobs` is borrowed and must outlive
/// the scheduler (see size_fair.hpp / job_fair.hpp / token_bucket.hpp for
/// tunable construction).
std::unique_ptr<FairShareScheduler> make_qos_scheduler(QosKind kind, const JobTable& jobs);

class FairShareScheduler : public sched::Scheduler {
 public:
  /// `jobs` is borrowed and must outlive the scheduler.
  explicit FairShareScheduler(const JobTable& jobs);

  using Scheduler::dispatch;
  sched::DispatchResult dispatch(const sched::ServerRow& row,
                                 std::span<const sim::SubRequest> subs,
                                 common::Seconds arrival) override;

  /// Weighted fair-queuing order: requests are tagged by a per-job virtual
  /// clock seeded from the persistent consumed ledger and advanced by
  /// tag_cost() per request, then stably sorted by (priority tier desc,
  /// tag asc, arrival index asc).
  std::vector<std::size_t> plan(const std::vector<common::Request>& batch) override;

  const JobTable& jobs() const { return *jobs_; }

  /// Cumulative raw (unweighted) consumption ledgers, for tests and reports.
  common::ByteCount consumed_bytes(common::JobId job) const;
  std::uint64_t consumed_requests(common::JobId job) const;

 protected:
  /// Virtual-clock advance for one request of `bytes`, in the policy's
  /// fairness unit (bytes for size-fair, 1.0 per request for job-fair),
  /// *before* weighting.
  virtual double cost_units(common::ByteCount bytes) const = 0;

  /// Hook for shaping policies: the virtual time the request may start
  /// (default: `arrival`, i.e. no shaping).  `bytes` is the request total.
  virtual common::Seconds admission_time(common::JobId job, common::ByteCount bytes,
                                         common::Seconds arrival) {
    (void)job;
    (void)bytes;
    return arrival;
  }

  /// Grows the per-job ledgers to cover `job` (amortised; steady state free).
  void ensure_job(common::JobId job);

  const JobTable* jobs_;
  /// Per-job weighted virtual clock in tag units (persistent across windows:
  /// least-attained-service first).
  std::vector<double> virtual_clock_;
  /// Raw consumption ledgers (unweighted), for observability.
  std::vector<common::ByteCount> ledger_bytes_;
  std::vector<std::uint64_t> ledger_requests_;

 private:
  /// plan() scratch, reused across windows.
  std::vector<double> plan_clock_;
  std::vector<double> plan_tag_;
};

}  // namespace mha::qos
