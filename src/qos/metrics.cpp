#include "qos/metrics.hpp"

#include <cstdio>

#include "common/units.hpp"

namespace mha::qos {

double jains_index(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

double weighted_fairness(std::span<const TenantReport> tenants) {
  std::vector<double> shares;
  shares.reserve(tenants.size());
  for (const TenantReport& t : tenants) {
    const double w = t.spec.weight > 0.0 ? t.spec.weight : 1.0;
    shares.push_back(t.bandwidth_mib_s / w);
  }
  return jains_index(shares);
}

std::string tenant_table(std::span<const TenantReport> tenants) {
  std::string out =
      "tenant        class        weight reqs     bytes      p50(ms)  p99(ms)  "
      "slow50 slow99 MiB/s     shed     failed late     good MiB/s\n";
  for (const TenantReport& t : tenants) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-13s %-12s %-6.2f %-8llu %-10s %-8.3f %-8.3f %-6.2f %-6.2f %-9.1f "
                  "%-8llu %-6llu %-8llu %-9.1f\n",
                  t.spec.name.c_str(), to_string(t.spec.priority), t.spec.weight,
                  static_cast<unsigned long long>(t.requests),
                  common::format_bytes(t.bytes).c_str(), t.p50 * 1e3, t.p99 * 1e3,
                  t.slowdown_p50(), t.slowdown_p99(), t.bandwidth_mib_s,
                  static_cast<unsigned long long>(t.shed),
                  static_cast<unsigned long long>(t.failed),
                  static_cast<unsigned long long>(t.late), t.goodput_mib_s);
    out += line;
  }
  return out;
}

}  // namespace mha::qos
