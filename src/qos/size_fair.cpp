#include "qos/size_fair.hpp"

namespace mha::qos {

std::unique_ptr<FairShareScheduler> make_size_fair(const JobTable& jobs) {
  return std::make_unique<SizeFairScheduler>(jobs);
}

}  // namespace mha::qos
