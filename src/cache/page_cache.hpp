// Client-side cooperative page cache with write-back coalescing and
// heterogeneity-aware placement policy (ROADMAP item 2).
//
// Sits between the application-facing MpiFile handle and the redirector:
// reads are served from a fixed pool of pages (CLOCK eviction), small
// writes are absorbed and later flushed as few large offset-sorted runs
// through MpiFile::dispatch_bulk — one batched pfs call, one dispatch per
// touched server — instead of one server round trip per application write.
// The LANL App2 16 B + 128 KiB interleave is the poster child: on HDDs the
// per-op startup cost dominates, so coalescing hundreds of small writes
// into page-aligned runs cuts dispatched server ops by an order of
// magnitude.
//
// Heterogeneity-aware hooks (the HACache idea applied at the client): the
// cache probes each page's placement through the DRT — a page whose
// backing region stripes onto any HServer is classed kHServer — and (a)
// retains HServer pages preferentially (a higher CLOCK reference boost, so
// slow devices re-serve fewer misses), (b) flushes dirty HServer pages
// first under pressure (slow devices get the longest runway), and (c)
// stops read-ahead at a placement-run boundary unless a fresh DRT lookup
// shows the next run has the same server class.
//
// Consistency modes:
//   kWriteThrough - writes pass straight through (cached copies updated);
//                   reads may still hit.
//   kWriteBack    - writes absorbed; flush on pressure (dirty watermark /
//                   dirty CLOCK victim), sync, conflicting access, or job
//                   deadline.
//   kCloseToOpen  - write-back within an epoch; epoch_close() (the
//                   replayer's barrier hook) flushes and invalidates
//                   everything, NFS-style.
//
// The hit path is allocation-free in steady state (golden-gated in the
// microbench): page lookup is an open-addressing table sized at
// construction, all scratch lives in member SmallVecs/vectors that retain
// capacity.  Same single-client rule as the rest of the request path: a
// CachedFile may be shared across threads only with external
// synchronisation.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "io/mpi_file.hpp"
#include "io/mpi_sim.hpp"
#include "pfs/file_system.hpp"

namespace mha::cache {

enum class ConsistencyMode : std::uint8_t { kWriteThrough = 0, kWriteBack, kCloseToOpen };

inline const char* to_string(ConsistencyMode m) {
  switch (m) {
    case ConsistencyMode::kWriteThrough: return "write-through";
    case ConsistencyMode::kWriteBack: return "write-back";
    default: return "close-to-open";
  }
}

/// Device class backing a page, derived from its placement: any HServer
/// byte in the backing region's stripe pattern makes the page kHServer.
enum class PageClass : std::uint8_t { kSServer = 0, kHServer = 1 };

/// Why a flush happened (indexes CacheMetrics::flush_by_trigger).
enum class FlushTrigger : std::uint8_t { kPressure = 0, kSync, kConflict, kDeadline };

struct CacheConfig {
  common::ByteCount page_size = 64 * 1024;
  std::size_t num_pages = 256;
  ConsistencyMode mode = ConsistencyMode::kWriteBack;
  /// Consecutive sequential reads (per rank) before read-ahead engages.
  std::size_t readahead_trigger = 2;
  /// Pages prefetched past a sequential read (0 disables read-ahead).
  std::size_t readahead_pages = 8;
  /// Dirty-page watermarks as fractions of the pool: crossing `dirty_high`
  /// flushes (HServer-first, offset-sorted) down to `dirty_low`.
  double dirty_high = 0.75;
  double dirty_low = 0.5;
  /// Heterogeneity-aware policy: HServer pages get a larger CLOCK boost and
  /// dirty HServer pages flush first under pressure.
  bool hetero_aware = true;
  /// Virtual seconds charged per cache hit / absorbed write (table lookup +
  /// client-local copy; ~memcpy at memory bandwidth).
  common::Seconds hit_overhead = 2.0e-7;
  /// Flush dirty pages whose owning job's deadline is within this margin of
  /// the triggering request's issue time.
  common::Seconds deadline_margin = 0.0;
  /// One pool shared by all ranks (coherent: a rank reads its neighbour's
  /// absorbed write) vs. one private pool per rank (real per-client caches;
  /// coherent across ranks only under close-to-open discipline).
  bool shared = true;
  /// Requests spanning more than this many pages bypass the pool entirely
  /// (after flushing/invalidating their overlap) — huge streaming requests
  /// would only churn it.  0 picks num_pages / 4.
  std::size_t bypass_pages = 0;
};

/// Counter block in the FaultMetrics reporting style; every decision the
/// cache makes is visible here (and asserted on in tests/benches).
struct CacheMetrics {
  std::uint64_t hits = 0;             ///< pages served from the pool
  std::uint64_t misses = 0;           ///< pages filled on demand
  std::uint64_t hit_bytes = 0;
  std::uint64_t miss_bytes = 0;
  std::uint64_t bypasses = 0;         ///< requests too large for the pool
  std::uint64_t absorbed_writes = 0;  ///< page-writes absorbed (write-back)
  std::uint64_t coalesced_writes = 0; ///< absorbed into an already-dirty page
  std::uint64_t write_throughs = 0;   ///< requests passed straight through
  std::uint64_t evict_clean = 0;
  std::uint64_t evict_dirty = 0;      ///< CLOCK victims needing a flush first
  std::uint64_t invalidated_pages = 0;
  std::uint64_t flushes = 0;          ///< flush events
  std::uint64_t flush_ops = 0;        ///< coalesced runs dispatched
  std::uint64_t flush_pages = 0;
  std::uint64_t flush_bytes = 0;
  std::uint64_t flush_by_trigger[4] = {0, 0, 0, 0};  ///< FlushTrigger-indexed
  std::uint64_t prefetch_batches = 0;
  std::uint64_t prefetch_pages = 0;
  std::uint64_t prefetch_hits = 0;    ///< hits on a page still in flight

  double hit_ratio() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }

  /// "cache: hits=... / flush: runs=..." block (FaultMetrics::table idiom).
  std::string table() const;
};

/// A page cache wrapped around one MpiFile handle.  All I/O for the file
/// should go through read_at/write_at; flush_all must run before anyone
/// reads the PFS underneath the cache (the replayer does this before
/// reading the makespan).
class CachedFile {
 public:
  /// `file`, `mpi` and `pfs` are borrowed and must outlive the cache.
  CachedFile(io::MpiFile& file, io::MpiSim& mpi, pfs::HybridPfs& pfs, CacheConfig config);

  /// MPI_File_read_at through the cache: hits cost hit_overhead virtual
  /// seconds, misses fill whole pages via one bulk dispatch, sequential
  /// streams arm read-ahead.  Advances the rank's clock like MpiFile does.
  common::Result<io::OpResult> read_at(int rank, common::Offset offset, std::uint8_t* out,
                                       common::ByteCount size);

  /// MPI_File_write_at through the cache: write-through passes down (cached
  /// copies kept coherent), write-back absorbs into dirty pages and flushes
  /// on pressure/conflict/deadline.
  common::Result<io::OpResult> write_at(int rank, common::Offset offset,
                                        const std::uint8_t* data, common::ByteCount size);

  /// Sync flush: every dirty page in every shard, coalesced and dispatched
  /// at virtual instant `issue`.  Returns the last flush completion (`issue`
  /// when nothing was dirty).  On failure pages stay dirty (retryable).
  common::Result<common::Seconds> flush_all(common::Seconds issue);

  /// Close-to-open epoch boundary (the replayer's barrier hook): flush
  /// everything at the barrier instant, invalidate the pool, and advance
  /// every rank past the flush.  No-op in other modes unless `force`.
  common::Result<common::Seconds> epoch_close(bool force = false);

  /// Migration protocol, prepare side: flush dirty pages overlapping
  /// [offset, offset+size) so the migrator copies current bytes.
  common::Result<common::Seconds> prepare_migration(common::Offset offset,
                                                    common::ByteCount size,
                                                    common::Seconds issue);

  /// Migration protocol, commit/recovery side: drop cached pages overlapping
  /// [offset, offset+size) — their placement (and with it the page class)
  /// changed, so the next access re-probes the DRT and refills.
  void invalidate(common::Offset offset, common::ByteCount size);
  void invalidate_all();

  const CacheMetrics& metrics() const { return metrics_; }
  const CacheConfig& config() const { return config_; }

  // ------------------------------------------------- test introspection ---
  /// Whole page holding `offset` present in `rank`'s shard?
  bool is_cached(int rank, common::Offset offset) const;
  bool is_dirty(int rank, common::Offset offset) const;
  /// Placement class recorded for the cached page (precondition: is_cached).
  PageClass cached_class(int rank, common::Offset offset) const;
  std::size_t dirty_pages(int rank) const;

 private:
  static constexpr common::Offset kNoPage = ~common::Offset{0};
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  struct Frame {
    common::Offset page = kNoPage;
    /// Valid byte range within the page (contiguous hull; bytes outside it
    /// are garbage).  A demand-filled page is valid over its fill range; a
    /// write-allocated page only over the written hull.
    std::uint32_t valid_lo = 0, valid_hi = 0;
    /// Dirty sub-hull (dirty_hi > dirty_lo iff dirty); always inside the
    /// valid hull, so flushing the hull writes real bytes only.
    std::uint32_t dirty_lo = 0, dirty_hi = 0;
    std::uint8_t ref = 0;     ///< CLOCK reference counter
    bool pinned = false;      ///< mid-operation; CLOCK must skip
    bool prefetched = false;  ///< filled by read-ahead, not on demand
    PageClass klass = PageClass::kSServer;
    int rank = 0;             ///< last writer (flush attribution)
    common::JobId job = common::kDefaultJob;
    common::Seconds deadline = kInf;  ///< earliest deadline absorbed
    common::Seconds ready_at = 0.0;   ///< prefetch in-flight completion
  };

  /// One pool: the whole cache in shared mode, one per rank otherwise.
  struct Shard {
    std::vector<std::uint8_t> data;          ///< num_pages * page_size
    std::vector<Frame> frames;
    std::vector<std::int32_t> slots;         ///< open addressing, -1 empty
    common::SmallVec<std::uint32_t, 8> free;
    std::size_t hand = 0;
    std::size_t dirty = 0;
    common::Seconds min_deadline = kInf;
  };

  Shard& shard_of(int rank) { return shards_[config_.shared ? 0 : static_cast<std::size_t>(rank)]; }
  const Shard& shard_of(int rank) const {
    return shards_[config_.shared ? 0 : static_cast<std::size_t>(rank)];
  }
  std::uint8_t* frame_data(Shard& sh, std::uint32_t idx) {
    return sh.data.data() + static_cast<std::size_t>(idx) * config_.page_size;
  }

  // Open-addressing page table (linear probe, backward-shift erase).
  std::int32_t find(const Shard& sh, common::Offset page) const;
  void insert(Shard& sh, common::Offset page, std::uint32_t frame);
  void erase(Shard& sh, common::Offset page);

  /// CLOCK reference boost: HServer pages are worth more to retain.
  std::uint8_t ref_boost(PageClass klass) const {
    return config_.hetero_aware && klass == PageClass::kHServer ? 3 : 1;
  }

  /// Claims a frame for `page` (free list, then CLOCK).  A dirty victim is
  /// flushed first at `issue` (completion folded into `completion`).
  common::Result<std::uint32_t> allocate_frame(Shard& sh, common::Offset page,
                                               common::Seconds issue,
                                               common::Seconds& completion);
  /// Drops one frame (hash erase + free list; dirty counter maintained).
  void drop_frame(Shard& sh, std::uint32_t idx);

  /// Placement probe: one fresh DRT lookup at `offset` resolving the
  /// contiguous placement run [offset, run_end) and its server class.
  struct Placement {
    PageClass klass = PageClass::kSServer;
    common::Offset run_end = 0;
  };
  Placement probe(common::Offset offset);
  PageClass file_class(common::FileId file);

  /// Flushes the frames listed in flush_victims_ (indices into sh.frames),
  /// coalescing contiguous same-job dirty hulls into single bulk runs.
  common::Result<common::Seconds> flush_victims(Shard& sh, common::Seconds issue,
                                                FlushTrigger trigger);
  /// Selects + flushes dirty frames overlapping [offset, offset+size).
  common::Result<common::Seconds> flush_overlap(Shard& sh, common::Offset offset,
                                                common::ByteCount size,
                                                common::Seconds issue,
                                                FlushTrigger trigger);
  /// Watermark flush: dirty HServer pages first, down to dirty_low.
  common::Result<common::Seconds> flush_pressure(Shard& sh, common::Seconds issue);
  /// Deadline flush: everything due within deadline_margin of `now`.
  common::Result<common::Seconds> flush_deadline(Shard& sh, common::Seconds now);

  /// Fill of miss_pages_ (ascending, deduped; frames already allocated and
  /// hashed): contiguous pages merge into staged runs read via one
  /// dispatch_bulk, then scatter into their frames.  Pages normally fill
  /// [0, page_size) clipped at EOF; [req_lo, req_hi) widens the clip so a
  /// read past EOF keeps exact uncached semantics.  Returns the slowest run
  /// completion; failed runs drop their frames.
  common::Result<common::Seconds> fill_pages(Shard& sh, common::Seconds issue,
                                             common::Offset req_lo, common::Offset req_hi,
                                             bool prefetch);

  /// Sequential-stream bookkeeping + read-ahead issue (never touches the
  /// rank clock; prefetched frames carry ready_at = their run completion).
  void maybe_readahead(Shard& sh, int rank, common::Offset offset, common::ByteCount size,
                       common::Seconds issue);

  /// Large-request passthrough: flush + invalidate the overlap, then one
  /// uncached MpiFile call (preserves exact uncached semantics).
  common::Result<io::OpResult> bypass(int rank, common::OpType op, common::Offset offset,
                                      std::uint8_t* out, const std::uint8_t* data,
                                      common::ByteCount size);

  io::MpiFile* file_;
  io::MpiSim* mpi_;
  pfs::HybridPfs* pfs_;
  CacheConfig config_;
  CacheMetrics metrics_;
  std::vector<Shard> shards_;

  /// Per-rank sequential-read stream state.
  struct Stream {
    common::Offset next = 0;
    std::size_t run = 0;
  };
  std::vector<Stream> streams_;

  /// Cached placement run (invalidated on migration); per-file class cache
  /// indexed by FileId (cold path only).
  Placement last_probe_;
  common::Offset last_probe_start_ = kNoPage;
  std::vector<std::int8_t> file_class_;  ///< -1 unknown, else PageClass

  // Reused scratch (single-client rule; capacity retained across requests).
  common::SmallVec<common::Offset, 16> miss_pages_;
  common::SmallVec<std::uint32_t, 16> flush_victims_;
  common::SmallVec<io::BulkOp, 8> bulk_ops_;
  io::BulkOutcomeVec bulk_outcomes_;
  /// Run begin indices into miss_pages_/flush_victims_ (size = runs + 1).
  common::SmallVec<std::uint32_t, 8> run_begin_;
  std::vector<std::uint8_t> staging_;  ///< coalesced run payload arena
  io::SegmentList probe_segs_;
};

}  // namespace mha::cache
