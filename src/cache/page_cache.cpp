#include "cache/page_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace mha::cache {

namespace {

/// Fibonacci-hash of a page number into a power-of-two slot table.
inline std::size_t page_hash(common::Offset page) {
  std::uint64_t h = page * 0x9E3779B97F4A7C15ULL;
  return static_cast<std::size_t>(h ^ (h >> 29));
}

inline std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string CacheMetrics::table() const {
  char line[240];
  std::string out;
  std::snprintf(line, sizeof(line),
                "cache:    hits=%llu misses=%llu ratio=%.2f hit-bytes=%llu "
                "miss-bytes=%llu bypasses=%llu\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses), hit_ratio(),
                static_cast<unsigned long long>(hit_bytes),
                static_cast<unsigned long long>(miss_bytes),
                static_cast<unsigned long long>(bypasses));
  out += line;
  std::snprintf(line, sizeof(line),
                "writes:   absorbed=%llu coalesced=%llu write-through=%llu\n",
                static_cast<unsigned long long>(absorbed_writes),
                static_cast<unsigned long long>(coalesced_writes),
                static_cast<unsigned long long>(write_throughs));
  out += line;
  std::snprintf(line, sizeof(line),
                "evict:    clean=%llu dirty=%llu invalidated=%llu\n",
                static_cast<unsigned long long>(evict_clean),
                static_cast<unsigned long long>(evict_dirty),
                static_cast<unsigned long long>(invalidated_pages));
  out += line;
  std::snprintf(line, sizeof(line),
                "flush:    events=%llu runs=%llu pages=%llu bytes=%llu "
                "(pressure=%llu sync=%llu conflict=%llu deadline=%llu)\n",
                static_cast<unsigned long long>(flushes),
                static_cast<unsigned long long>(flush_ops),
                static_cast<unsigned long long>(flush_pages),
                static_cast<unsigned long long>(flush_bytes),
                static_cast<unsigned long long>(flush_by_trigger[0]),
                static_cast<unsigned long long>(flush_by_trigger[1]),
                static_cast<unsigned long long>(flush_by_trigger[2]),
                static_cast<unsigned long long>(flush_by_trigger[3]));
  out += line;
  std::snprintf(line, sizeof(line), "prefetch: batches=%llu pages=%llu hits=%llu\n",
                static_cast<unsigned long long>(prefetch_batches),
                static_cast<unsigned long long>(prefetch_pages),
                static_cast<unsigned long long>(prefetch_hits));
  out += line;
  return out;
}

CachedFile::CachedFile(io::MpiFile& file, io::MpiSim& mpi, pfs::HybridPfs& pfs,
                       CacheConfig config)
    : file_(&file), mpi_(&mpi), pfs_(&pfs), config_(config) {
  if (config_.num_pages == 0) config_.num_pages = 1;
  if (config_.page_size == 0) config_.page_size = 64 * 1024;
  if (config_.bypass_pages == 0) {
    config_.bypass_pages = std::max<std::size_t>(config_.num_pages / 4, 1);
  }
  const std::size_t nshards =
      config_.shared ? 1 : static_cast<std::size_t>(mpi_->world_size());
  shards_.resize(nshards);
  const std::size_t nslots = next_pow2(2 * config_.num_pages);
  for (Shard& sh : shards_) {
    sh.data.resize(config_.num_pages * config_.page_size);
    sh.frames.resize(config_.num_pages);
    sh.slots.assign(nslots, -1);
    sh.free.reserve(config_.num_pages);
    // Pop order = ascending frame index (cosmetic but deterministic).
    for (std::size_t i = config_.num_pages; i > 0; --i) {
      sh.free.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }
  streams_.resize(static_cast<std::size_t>(mpi_->world_size()));
}

// ------------------------------------------------------------ page table ---

std::int32_t CachedFile::find(const Shard& sh, common::Offset page) const {
  const std::size_t mask = sh.slots.size() - 1;
  std::size_t i = page_hash(page) & mask;
  while (sh.slots[i] != -1) {
    if (sh.frames[static_cast<std::size_t>(sh.slots[i])].page == page) return sh.slots[i];
    i = (i + 1) & mask;
  }
  return -1;
}

void CachedFile::insert(Shard& sh, common::Offset page, std::uint32_t frame) {
  const std::size_t mask = sh.slots.size() - 1;
  std::size_t i = page_hash(page) & mask;
  while (sh.slots[i] != -1) i = (i + 1) & mask;
  sh.slots[i] = static_cast<std::int32_t>(frame);
}

void CachedFile::erase(Shard& sh, common::Offset page) {
  const std::size_t mask = sh.slots.size() - 1;
  std::size_t i = page_hash(page) & mask;
  while (sh.slots[i] != -1 &&
         sh.frames[static_cast<std::size_t>(sh.slots[i])].page != page) {
    i = (i + 1) & mask;
  }
  if (sh.slots[i] == -1) return;
  // Backward-shift deletion keeps probe chains gap-free without tombstones.
  sh.slots[i] = -1;
  std::size_t j = i;
  for (;;) {
    j = (j + 1) & mask;
    if (sh.slots[j] == -1) break;
    const std::size_t home =
        page_hash(sh.frames[static_cast<std::size_t>(sh.slots[j])].page) & mask;
    if (((j - home) & mask) >= ((j - i) & mask)) {
      sh.slots[i] = sh.slots[j];
      sh.slots[j] = -1;
      i = j;
    }
  }
}

void CachedFile::drop_frame(Shard& sh, std::uint32_t idx) {
  Frame& fr = sh.frames[idx];
  if (fr.page != kNoPage) erase(sh, fr.page);
  if (fr.dirty_hi > fr.dirty_lo) --sh.dirty;
  fr = Frame{};
  sh.free.push_back(idx);
}

common::Result<std::uint32_t> CachedFile::allocate_frame(Shard& sh, common::Offset page,
                                                         common::Seconds issue,
                                                         common::Seconds& completion) {
  std::uint32_t idx;
  if (!sh.free.empty()) {
    idx = sh.free.back();
    sh.free.pop_back();
  } else {
    // CLOCK sweep: pinned frames are invisible, a referenced frame spends
    // one unit of its boost per pass (HServer pages carry a larger boost, so
    // they survive more passes — the heterogeneity-aware retention hook).
    // Expired *dirty* frames are only fallback victims: evicting one costs a
    // single-page flush dispatch, exactly the small write the cache exists
    // to coalesce, so the sweep prefers any clean expired frame and leaves
    // dirty pages for the watermark flush to drain in large sorted runs.
    const std::size_t n = sh.frames.size();
    std::size_t scanned = 0, unpinned_seen = 0, passes = 0;
    std::int64_t dirty_fallback = -1;
    for (;;) {
      const std::size_t cur = sh.hand;
      sh.hand = (sh.hand + 1) % n;
      Frame& fr = sh.frames[cur];
      if (!fr.pinned) {
        ++unpinned_seen;
        if (fr.ref == 0) {
          if (fr.dirty_hi > fr.dirty_lo) {
            if (dirty_fallback < 0) dirty_fallback = static_cast<std::int64_t>(cur);
          } else {
            idx = static_cast<std::uint32_t>(cur);
            break;
          }
        } else {
          --fr.ref;
        }
      }
      if (++scanned == n) {
        if (unpinned_seen == 0) {
          return common::Status::failed_precondition(
              "page cache exhausted: every frame pinned (request wider than pool)");
        }
        // Two full passes without a clean expired frame: pay the flush.
        if (dirty_fallback >= 0 && ++passes == 2) {
          idx = static_cast<std::uint32_t>(dirty_fallback);
          break;
        }
        scanned = 0;
        unpinned_seen = 0;
      }
    }
    Frame& victim = sh.frames[idx];
    if (victim.dirty_hi > victim.dirty_lo) {
      ++metrics_.evict_dirty;
      flush_victims_.clear();
      flush_victims_.push_back(idx);
      auto flushed = flush_victims(sh, issue, FlushTrigger::kPressure);
      if (!flushed.is_ok()) return flushed.status();
      completion = std::max(completion, *flushed);
    } else {
      ++metrics_.evict_clean;
    }
    erase(sh, victim.page);
    victim = Frame{};
  }
  Frame& fr = sh.frames[idx];
  fr.page = page;
  insert(sh, page, idx);
  return idx;
}

// ------------------------------------------------------- placement probe ---

PageClass CachedFile::file_class(common::FileId file) {
  if (file_class_.size() <= file) file_class_.resize(file + 1, -1);
  if (file_class_[file] < 0) {
    const pfs::StripeLayout& layout = pfs_->mds().info(file).layout;
    PageClass klass = PageClass::kSServer;
    const std::size_t nh = std::min(pfs_->num_hservers(), layout.num_servers());
    for (std::size_t i = 0; i < nh; ++i) {
      if (layout.width(i) > 0) {
        klass = PageClass::kHServer;
        break;
      }
    }
    file_class_[file] = static_cast<std::int8_t>(klass);
  }
  return static_cast<PageClass>(file_class_[file]);
}

CachedFile::Placement CachedFile::probe(common::Offset offset) {
  if (last_probe_start_ != kNoPage && offset >= last_probe_start_ &&
      offset < last_probe_.run_end) {
    return last_probe_;
  }
  Placement pl;
  io::IoInterceptor* ic = file_->interceptor();
  if (ic == nullptr) {
    pl.klass = file_class(file_->file_id());
    pl.run_end = std::numeric_limits<common::Offset>::max();
  } else {
    // One fresh DRT lookup resolves the contiguous placement run starting at
    // `offset`: the translation's first segment is maximal for its target
    // file, so its length bounds how far the current server class extends.
    const common::ByteCount window =
        std::max<common::ByteCount>(config_.page_size * (config_.readahead_pages + 1),
                                    256 * 1024);
    probe_segs_.clear();
    ic->translate(offset, window, probe_segs_);
    const io::RedirectSegment& s0 = probe_segs_[0];
    pl.klass = file_class(s0.file);
    pl.run_end = offset + s0.length;
  }
  last_probe_ = pl;
  last_probe_start_ = offset;
  return pl;
}

// ----------------------------------------------------------------- flush ---

common::Result<common::Seconds> CachedFile::flush_victims(Shard& sh, common::Seconds issue,
                                                          FlushTrigger trigger) {
  if (flush_victims_.empty()) return issue;
  const common::ByteCount ps = config_.page_size;
  // Offset-sorted dirty hulls; contiguous same-job hulls merge into one run
  // so the whole run leaves as a single bulk op (one server dispatch per
  // touched server, one startup charge per sub-op — the coalescing win).
  std::sort(flush_victims_.begin(), flush_victims_.end(),
            [&sh, ps](std::uint32_t a, std::uint32_t b) {
              const common::Offset sa = sh.frames[a].page * ps + sh.frames[a].dirty_lo;
              const common::Offset sb = sh.frames[b].page * ps + sh.frames[b].dirty_lo;
              if (sa != sb) return sa < sb;
              return a < b;
            });

  run_begin_.clear();
  run_begin_.push_back(0);
  common::ByteCount total = 0;
  for (std::size_t i = 0; i < flush_victims_.size(); ++i) {
    const Frame& fr = sh.frames[flush_victims_[i]];
    total += fr.dirty_hi - fr.dirty_lo;
    if (i + 1 < flush_victims_.size()) {
      const Frame& nx = sh.frames[flush_victims_[i + 1]];
      const bool contiguous =
          fr.page * ps + fr.dirty_hi == nx.page * ps + nx.dirty_lo && fr.job == nx.job;
      if (!contiguous) run_begin_.push_back(static_cast<std::uint32_t>(i + 1));
    }
  }
  run_begin_.push_back(static_cast<std::uint32_t>(flush_victims_.size()));

  staging_.resize(total);
  bulk_ops_.clear();
  common::ByteCount stage_off = 0;
  for (std::size_t r = 0; r + 1 < run_begin_.size(); ++r) {
    const Frame& head = sh.frames[flush_victims_[run_begin_[r]]];
    io::BulkOp op;
    op.offset = head.page * ps + head.dirty_lo;
    op.write_data = staging_.data() + stage_off;
    op.job = head.job;
    // Flushes are durability writes: never deadline-abandoned mid-dispatch,
    // even when the owning job's foreground requests would be.
    op.deadline = kInf;
    for (std::uint32_t i = run_begin_[r]; i < run_begin_[r + 1]; ++i) {
      const Frame& fr = sh.frames[flush_victims_[i]];
      const common::ByteCount len = fr.dirty_hi - fr.dirty_lo;
      std::memcpy(staging_.data() + stage_off,
                  frame_data(sh, flush_victims_[i]) + fr.dirty_lo, len);
      stage_off += len;
      op.size += len;
    }
    bulk_ops_.push_back(op);
  }

  file_->dispatch_bulk(common::OpType::kWrite,
                       std::span<const io::BulkOp>(bulk_ops_.data(), bulk_ops_.size()),
                       issue, bulk_outcomes_);

  common::Seconds completion = issue;
  common::Status first_fail;
  std::uint64_t pages_ok = 0, bytes_ok = 0;
  for (std::size_t r = 0; r + 1 < run_begin_.size(); ++r) {
    const io::BulkOutcome& out = bulk_outcomes_[r];
    if (!out.status.is_ok()) {
      // Frames stay dirty: the flush is retryable and no byte was dropped.
      if (first_fail.is_ok()) first_fail = out.status;
      continue;
    }
    completion = std::max(completion, out.completion);
    for (std::uint32_t i = run_begin_[r]; i < run_begin_[r + 1]; ++i) {
      Frame& fr = sh.frames[flush_victims_[i]];
      bytes_ok += fr.dirty_hi - fr.dirty_lo;
      fr.dirty_lo = fr.dirty_hi = 0;
      fr.deadline = kInf;
      --sh.dirty;
      ++pages_ok;
    }
  }
  ++metrics_.flushes;
  metrics_.flush_ops += bulk_ops_.size();
  metrics_.flush_pages += pages_ok;
  metrics_.flush_bytes += bytes_ok;
  ++metrics_.flush_by_trigger[static_cast<std::size_t>(trigger)];

  sh.min_deadline = kInf;
  for (const Frame& fr : sh.frames) {
    if (fr.dirty_hi > fr.dirty_lo) sh.min_deadline = std::min(sh.min_deadline, fr.deadline);
  }
  if (!first_fail.is_ok()) return first_fail;
  return completion;
}

common::Result<common::Seconds> CachedFile::flush_overlap(Shard& sh, common::Offset offset,
                                                          common::ByteCount size,
                                                          common::Seconds issue,
                                                          FlushTrigger trigger) {
  const common::ByteCount ps = config_.page_size;
  flush_victims_.clear();
  for (std::size_t i = 0; i < sh.frames.size(); ++i) {
    const Frame& fr = sh.frames[i];
    if (fr.page == kNoPage || fr.dirty_hi <= fr.dirty_lo) continue;
    const common::Offset base = fr.page * ps;
    if (base < offset + size && offset < base + ps) {
      flush_victims_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return flush_victims(sh, issue, trigger);
}

common::Result<common::Seconds> CachedFile::flush_pressure(Shard& sh, common::Seconds issue) {
  const std::size_t low =
      static_cast<std::size_t>(config_.dirty_low * static_cast<double>(config_.num_pages));
  if (sh.dirty <= low) return issue;
  const std::size_t need = sh.dirty - low;
  flush_victims_.clear();
  for (std::size_t i = 0; i < sh.frames.size(); ++i) {
    const Frame& fr = sh.frames[i];
    if (fr.page != kNoPage && fr.dirty_hi > fr.dirty_lo && !fr.pinned) {
      flush_victims_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  // HServer pages drain first: slow devices want the small ops absorbed the
  // longest, but once the pool is under pressure they are the most expensive
  // pages to leave dirty (a later forced evict would pay HDD startup alone).
  std::sort(flush_victims_.begin(), flush_victims_.end(),
            [this, &sh](std::uint32_t a, std::uint32_t b) {
              const Frame& fa = sh.frames[a];
              const Frame& fb = sh.frames[b];
              if (config_.hetero_aware && fa.klass != fb.klass) {
                return fa.klass == PageClass::kHServer;
              }
              if (fa.page != fb.page) return fa.page < fb.page;
              return a < b;
            });
  if (flush_victims_.size() > need) flush_victims_.resize(need);
  return flush_victims(sh, issue, FlushTrigger::kPressure);
}

common::Result<common::Seconds> CachedFile::flush_deadline(Shard& sh, common::Seconds now) {
  flush_victims_.clear();
  for (std::size_t i = 0; i < sh.frames.size(); ++i) {
    const Frame& fr = sh.frames[i];
    if (fr.page != kNoPage && fr.dirty_hi > fr.dirty_lo && !fr.pinned &&
        fr.deadline <= now + config_.deadline_margin) {
      flush_victims_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return flush_victims(sh, now, FlushTrigger::kDeadline);
}

common::Result<common::Seconds> CachedFile::flush_all(common::Seconds issue) {
  common::Seconds completion = issue;
  for (Shard& sh : shards_) {
    flush_victims_.clear();
    for (std::size_t i = 0; i < sh.frames.size(); ++i) {
      const Frame& fr = sh.frames[i];
      if (fr.page != kNoPage && fr.dirty_hi > fr.dirty_lo) {
        flush_victims_.push_back(static_cast<std::uint32_t>(i));
      }
    }
    auto r = flush_victims(sh, issue, FlushTrigger::kSync);
    if (!r.is_ok()) return r.status();
    completion = std::max(completion, *r);
  }
  return completion;
}

// ------------------------------------------------------------------ fill ---

common::Result<common::Seconds> CachedFile::fill_pages(Shard& sh, common::Seconds issue,
                                                       common::Offset req_lo,
                                                       common::Offset req_hi, bool prefetch) {
  if (miss_pages_.empty()) return issue;
  const common::ByteCount ps = config_.page_size;
  const common::ByteCount fsize = file_->size();
  auto fill_hi = [&](common::Offset page) -> common::ByteCount {
    const common::Offset base = page * ps;
    common::ByteCount hi = ps;
    if (base + ps > fsize) hi = fsize > base ? fsize - base : 0;
    // A demand read past EOF keeps exact uncached semantics: read the
    // requested bytes anyway and let the pfs status speak.
    if (base < req_hi && req_hi <= base + ps) hi = std::max(hi, req_hi - base);
    else if (base < req_hi && req_hi > base + ps) hi = ps;
    return hi;
  };

  run_begin_.clear();
  run_begin_.push_back(0);
  common::ByteCount total = 0;
  for (std::size_t i = 0; i < miss_pages_.size(); ++i) {
    const common::ByteCount hi = fill_hi(miss_pages_[i]);
    total += hi;
    if (i + 1 < miss_pages_.size()) {
      const bool contiguous = miss_pages_[i + 1] == miss_pages_[i] + 1 && hi == ps;
      if (!contiguous) run_begin_.push_back(static_cast<std::uint32_t>(i + 1));
    }
  }
  run_begin_.push_back(static_cast<std::uint32_t>(miss_pages_.size()));

  staging_.resize(total);
  bulk_ops_.clear();
  common::ByteCount stage_off = 0;
  for (std::size_t r = 0; r + 1 < run_begin_.size(); ++r) {
    io::BulkOp op;
    op.offset = miss_pages_[run_begin_[r]] * ps;
    op.read_out = staging_.data() + stage_off;
    for (std::uint32_t i = run_begin_[r]; i < run_begin_[r + 1]; ++i) {
      op.size += fill_hi(miss_pages_[i]);
    }
    stage_off += op.size;
    bulk_ops_.push_back(op);
  }

  file_->dispatch_bulk(common::OpType::kRead,
                       std::span<const io::BulkOp>(bulk_ops_.data(), bulk_ops_.size()),
                       issue, bulk_outcomes_);

  common::Seconds completion = issue;
  common::Status first_fail;
  stage_off = 0;
  std::uint64_t pages_ok = 0;
  for (std::size_t r = 0; r + 1 < run_begin_.size(); ++r) {
    const io::BulkOutcome& out = bulk_outcomes_[r];
    const bool ok = out.status.is_ok();
    if (!ok && first_fail.is_ok()) first_fail = out.status;
    if (ok) completion = std::max(completion, out.completion);
    for (std::uint32_t i = run_begin_[r]; i < run_begin_[r + 1]; ++i) {
      const common::Offset page = miss_pages_[i];
      const common::ByteCount hi = fill_hi(page);
      const std::int32_t idx = find(sh, page);
      if (idx < 0) continue;  // evicted by a sibling run's victim flush
      Frame& fr = sh.frames[static_cast<std::size_t>(idx)];
      if (!ok) {
        drop_frame(sh, static_cast<std::uint32_t>(idx));
      } else {
        std::memcpy(frame_data(sh, static_cast<std::uint32_t>(idx)),
                    staging_.data() + stage_off + (page - miss_pages_[run_begin_[r]]) * ps,
                    hi);
        fr.valid_lo = 0;
        fr.valid_hi = static_cast<std::uint32_t>(hi);
        fr.ready_at = out.completion;
        fr.prefetched = prefetch;
        fr.ref = ref_boost(fr.klass);
        ++pages_ok;
      }
    }
    stage_off += bulk_ops_[r].size;
  }
  if (prefetch) {
    ++metrics_.prefetch_batches;
    metrics_.prefetch_pages += pages_ok;
  }
  (void)req_lo;
  if (!first_fail.is_ok()) return first_fail;
  return completion;
}

// ------------------------------------------------------------- read path ---

common::Result<io::OpResult> CachedFile::read_at(int rank, common::Offset offset,
                                                 std::uint8_t* out, common::ByteCount size) {
  const common::Seconds start = mpi_->now(rank);
  if (size == 0) return io::OpResult{start, start};
  Shard& sh = shard_of(rank);
  if (sh.dirty > 0 && sh.min_deadline <= start + config_.deadline_margin) {
    auto f = flush_deadline(sh, start);
    if (!f.is_ok()) return f.status();
  }
  const common::ByteCount ps = config_.page_size;
  const common::Offset p0 = offset / ps;
  const common::Offset p1 = (offset + size - 1) / ps;
  if (p1 - p0 + 1 > config_.bypass_pages) {
    return bypass(rank, common::OpType::kRead, offset, out, nullptr, size);
  }

  const auto unpin_all = [&]() {
    for (common::Offset p = p0; p <= p1; ++p) {
      const std::int32_t idx = find(sh, p);
      if (idx >= 0) sh.frames[static_cast<std::size_t>(idx)].pinned = false;
    }
  };

  common::Seconds completion = start + config_.hit_overhead;
  miss_pages_.clear();
  for (common::Offset p = p0; p <= p1; ++p) {
    const std::uint32_t lo = p == p0 ? static_cast<std::uint32_t>(offset - p * ps) : 0;
    const std::uint32_t hi = p == p1 ? static_cast<std::uint32_t>(offset + size - p * ps)
                                     : static_cast<std::uint32_t>(ps);
    std::int32_t idx = find(sh, p);
    if (idx >= 0) {
      Frame& fr = sh.frames[static_cast<std::size_t>(idx)];
      if (fr.valid_lo <= lo && hi <= fr.valid_hi) {
        ++metrics_.hits;
        metrics_.hit_bytes += hi - lo;
        if (fr.prefetched && fr.ready_at > start) ++metrics_.prefetch_hits;
        completion = std::max(completion, fr.ready_at);
        fr.ref = ref_boost(fr.klass);
        fr.pinned = true;
        continue;
      }
      // Cached but not covering: a dirty hull is a conflicting read (flush
      // before dropping so the refill sees the absorbed bytes).
      if (fr.dirty_hi > fr.dirty_lo) {
        flush_victims_.clear();
        flush_victims_.push_back(static_cast<std::uint32_t>(idx));
        auto f = flush_victims(sh, start, FlushTrigger::kConflict);
        if (!f.is_ok()) {
          unpin_all();
          return f.status();
        }
        completion = std::max(completion, *f);
      }
      drop_frame(sh, static_cast<std::uint32_t>(idx));
    }
    miss_pages_.push_back(p);
    ++metrics_.misses;
    metrics_.miss_bytes += hi - lo;
  }

  if (!miss_pages_.empty()) {
    for (const common::Offset p : miss_pages_) {
      auto alloc = allocate_frame(sh, p, start, completion);
      if (!alloc.is_ok()) {
        unpin_all();
        return alloc.status();
      }
      Frame& fr = sh.frames[*alloc];
      fr.pinned = true;
      fr.klass = probe(p * ps).klass;
    }
    auto filled = fill_pages(sh, start, offset, offset + size, /*prefetch=*/false);
    if (!filled.is_ok()) {
      unpin_all();
      return filled.status();
    }
    completion = std::max(completion, *filled);
  }

  for (common::Offset p = p0; p <= p1; ++p) {
    const std::uint32_t lo = p == p0 ? static_cast<std::uint32_t>(offset - p * ps) : 0;
    const std::uint32_t hi = p == p1 ? static_cast<std::uint32_t>(offset + size - p * ps)
                                     : static_cast<std::uint32_t>(ps);
    const std::int32_t idx = find(sh, p);
    Frame& fr = sh.frames[static_cast<std::size_t>(idx)];
    std::memcpy(out + (p * ps + lo - offset),
                frame_data(sh, static_cast<std::uint32_t>(idx)) + lo, hi - lo);
    fr.pinned = false;
  }
  mpi_->advance(rank, completion);
  maybe_readahead(sh, rank, offset, size, start);
  return io::OpResult{start, completion};
}

void CachedFile::maybe_readahead(Shard& sh, int rank, common::Offset offset,
                                 common::ByteCount size, common::Seconds issue) {
  Stream& st = streams_[static_cast<std::size_t>(rank)];
  const bool sequential = offset == st.next;
  st.run = sequential ? st.run + 1 : 1;
  st.next = offset + size;
  if (config_.readahead_pages == 0 || st.run < config_.readahead_trigger) return;

  const common::ByteCount ps = config_.page_size;
  const common::ByteCount fsize = file_->size();
  common::Offset p = (offset + size - 1) / ps + 1;
  if (p * ps >= fsize) return;
  // The stream's current server class anchors the window: read-ahead stops
  // at a placement-run boundary whose fresh DRT lookup reports a different
  // class (prefetching HDD pages because the stream was on SSD — or the
  // reverse — is exactly the mistake heterogeneity-awareness exists to
  // avoid).
  Placement pl = probe(p * ps);
  const PageClass k0 = pl.klass;
  miss_pages_.clear();
  for (std::size_t i = 0; i < config_.readahead_pages; ++i, ++p) {
    const common::Offset base = p * ps;
    if (base >= fsize) break;
    if (find(sh, p) >= 0) break;  // already cached: the window has caught up
    if (base >= pl.run_end) {
      pl = probe(base);
      if (pl.klass != k0) break;
    }
    miss_pages_.push_back(p);
  }
  if (miss_pages_.empty()) return;
  common::Seconds scratch_completion = issue;
  for (const common::Offset page : miss_pages_) {
    auto alloc = allocate_frame(sh, page, issue, scratch_completion);
    if (!alloc.is_ok()) return;  // pool too hot: skip the prefetch quietly
    Frame& fr = sh.frames[*alloc];
    fr.klass = probe(page * ps).klass;
    fr.ref = ref_boost(fr.klass);
  }
  // Prefetch is advisory: failures dropped their frames inside fill_pages.
  (void)fill_pages(sh, issue, 0, 0, /*prefetch=*/true);
}

// ------------------------------------------------------------ write path ---

common::Result<io::OpResult> CachedFile::write_at(int rank, common::Offset offset,
                                                  const std::uint8_t* data,
                                                  common::ByteCount size) {
  const common::Seconds start = mpi_->now(rank);
  if (size == 0) return io::OpResult{start, start};
  Shard& sh = shard_of(rank);
  if (sh.dirty > 0 && sh.min_deadline <= start + config_.deadline_margin) {
    auto f = flush_deadline(sh, start);
    if (!f.is_ok()) return f.status();
  }
  const common::ByteCount ps = config_.page_size;
  const common::Offset p0 = offset / ps;
  const common::Offset p1 = (offset + size - 1) / ps;
  if (p1 - p0 + 1 > config_.bypass_pages) {
    return bypass(rank, common::OpType::kWrite, offset, nullptr, data, size);
  }

  if (config_.mode == ConsistencyMode::kWriteThrough) {
    // Keep cached copies coherent, then pass the write straight down (the
    // underlying call owns the rank clock and the timing).
    for (common::Offset p = p0; p <= p1; ++p) {
      const std::int32_t idx = find(sh, p);
      if (idx < 0) continue;
      Frame& fr = sh.frames[static_cast<std::size_t>(idx)];
      const std::uint32_t lo = p == p0 ? static_cast<std::uint32_t>(offset - p * ps) : 0;
      const std::uint32_t hi = p == p1 ? static_cast<std::uint32_t>(offset + size - p * ps)
                                       : static_cast<std::uint32_t>(ps);
      if (lo <= fr.valid_hi && fr.valid_lo <= hi) {
        std::memcpy(frame_data(sh, static_cast<std::uint32_t>(idx)) + lo,
                    data + (p * ps + lo - offset), hi - lo);
        fr.valid_lo = std::min(fr.valid_lo, lo);
        fr.valid_hi = std::max(fr.valid_hi, hi);
        fr.ref = ref_boost(fr.klass);
      } else {
        ++metrics_.invalidated_pages;
        drop_frame(sh, static_cast<std::uint32_t>(idx));
      }
    }
    ++metrics_.write_throughs;
    return file_->write_at(rank, offset, data, size);
  }

  // Write-back / close-to-open: absorb into dirty pages.
  common::Seconds completion = start + config_.hit_overhead;
  const common::JobId job = pfs_->active_job();
  const common::Seconds job_deadline = pfs_->active_deadline();
  for (common::Offset p = p0; p <= p1; ++p) {
    const std::uint32_t lo = p == p0 ? static_cast<std::uint32_t>(offset - p * ps) : 0;
    const std::uint32_t hi = p == p1 ? static_cast<std::uint32_t>(offset + size - p * ps)
                                     : static_cast<std::uint32_t>(ps);
    std::int32_t idx = find(sh, p);
    if (idx < 0) {
      auto alloc = allocate_frame(sh, p, start, completion);
      if (!alloc.is_ok()) return alloc.status();
      idx = static_cast<std::int32_t>(*alloc);
      Frame& fr = sh.frames[static_cast<std::size_t>(idx)];
      fr.klass = probe(p * ps).klass;
      fr.valid_lo = fr.dirty_lo = lo;
      fr.valid_hi = fr.dirty_hi = hi;
      ++sh.dirty;
    } else {
      Frame& fr = sh.frames[static_cast<std::size_t>(idx)];
      const bool was_dirty = fr.dirty_hi > fr.dirty_lo;
      if (lo <= fr.valid_hi && fr.valid_lo <= hi) {
        // Touches the valid hull: widen it.  The dirty hull may widen across
        // clean-but-valid bytes — those equal the stored bytes, so flushing
        // the widened hull rewrites them verbatim (content-idempotent).
        fr.valid_lo = std::min(fr.valid_lo, lo);
        fr.valid_hi = std::max(fr.valid_hi, hi);
        if (was_dirty) {
          fr.dirty_lo = std::min(fr.dirty_lo, lo);
          fr.dirty_hi = std::max(fr.dirty_hi, hi);
          ++metrics_.coalesced_writes;
        } else {
          fr.dirty_lo = lo;
          fr.dirty_hi = hi;
          ++sh.dirty;
        }
      } else {
        // Disjoint from everything valid: flushing first (if dirty) keeps
        // the hull invariant dirty ⊆ valid without caching garbage gaps.
        if (was_dirty) {
          flush_victims_.clear();
          flush_victims_.push_back(static_cast<std::uint32_t>(idx));
          auto f = flush_victims(sh, start, FlushTrigger::kConflict);
          if (!f.is_ok()) return f.status();
          completion = std::max(completion, *f);
        }
        fr.valid_lo = fr.dirty_lo = lo;
        fr.valid_hi = fr.dirty_hi = hi;
        ++sh.dirty;
      }
    }
    Frame& fr = sh.frames[static_cast<std::size_t>(idx)];
    std::memcpy(frame_data(sh, static_cast<std::uint32_t>(idx)) + lo,
                data + (p * ps + lo - offset), hi - lo);
    fr.rank = rank;
    fr.job = job;
    fr.deadline = std::min(fr.deadline, job_deadline);
    fr.ref = ref_boost(fr.klass);
    fr.prefetched = false;
    sh.min_deadline = std::min(sh.min_deadline, fr.deadline);
    ++metrics_.absorbed_writes;
  }

  const std::size_t high =
      static_cast<std::size_t>(config_.dirty_high * static_cast<double>(config_.num_pages));
  if (sh.dirty > high) {
    auto f = flush_pressure(sh, start);
    if (!f.is_ok()) return f.status();
    completion = std::max(completion, *f);
  }
  mpi_->advance(rank, completion);
  return io::OpResult{start, completion};
}

// ---------------------------------------------------------------- bypass ---

common::Result<io::OpResult> CachedFile::bypass(int rank, common::OpType op,
                                                common::Offset offset, std::uint8_t* out,
                                                const std::uint8_t* data,
                                                common::ByteCount size) {
  Shard& sh = shard_of(rank);
  const common::Seconds now = mpi_->now(rank);
  auto f = flush_overlap(sh, offset, size, now, FlushTrigger::kConflict);
  if (!f.is_ok()) return f.status();
  const common::ByteCount ps = config_.page_size;
  for (std::size_t i = 0; i < sh.frames.size(); ++i) {
    const Frame& fr = sh.frames[i];
    if (fr.page == kNoPage) continue;
    const common::Offset base = fr.page * ps;
    if (base < offset + size && offset < base + ps) {
      ++metrics_.invalidated_pages;
      drop_frame(sh, static_cast<std::uint32_t>(i));
    }
  }
  ++metrics_.bypasses;
  return op == common::OpType::kRead ? file_->read_at(rank, offset, out, size)
                                     : file_->write_at(rank, offset, data, size);
}

// ------------------------------------------------------- epochs/migration ---

common::Result<common::Seconds> CachedFile::epoch_close(bool force) {
  if (config_.mode != ConsistencyMode::kCloseToOpen && !force) return mpi_->max_time();
  const common::Seconds issue = mpi_->max_time();
  auto f = flush_all(issue);
  if (!f.is_ok()) return f.status();
  const common::Seconds completion = *f;
  invalidate_all();
  for (int r = 0; r < mpi_->world_size(); ++r) mpi_->advance(r, completion);
  return completion;
}

common::Result<common::Seconds> CachedFile::prepare_migration(common::Offset offset,
                                                              common::ByteCount size,
                                                              common::Seconds issue) {
  common::Seconds completion = issue;
  for (Shard& sh : shards_) {
    auto f = flush_overlap(sh, offset, size, issue, FlushTrigger::kSync);
    if (!f.is_ok()) return f.status();
    completion = std::max(completion, *f);
  }
  return completion;
}

void CachedFile::invalidate(common::Offset offset, common::ByteCount size) {
  const common::ByteCount ps = config_.page_size;
  for (Shard& sh : shards_) {
    for (std::size_t i = 0; i < sh.frames.size(); ++i) {
      const Frame& fr = sh.frames[i];
      if (fr.page == kNoPage) continue;
      const common::Offset base = fr.page * ps;
      if (base < offset + size && offset < base + ps) {
        ++metrics_.invalidated_pages;
        drop_frame(sh, static_cast<std::uint32_t>(i));
      }
    }
    sh.min_deadline = kInf;
    for (const Frame& fr : sh.frames) {
      if (fr.dirty_hi > fr.dirty_lo) sh.min_deadline = std::min(sh.min_deadline, fr.deadline);
    }
  }
  // Placement may have changed under the dropped pages: re-probe lazily.
  last_probe_start_ = kNoPage;
  file_class_.clear();
}

void CachedFile::invalidate_all() {
  for (Shard& sh : shards_) {
    for (std::size_t i = 0; i < sh.frames.size(); ++i) {
      if (sh.frames[i].page != kNoPage) {
        ++metrics_.invalidated_pages;
        drop_frame(sh, static_cast<std::uint32_t>(i));
      }
    }
    sh.min_deadline = kInf;
  }
  last_probe_start_ = kNoPage;
  file_class_.clear();
}

// --------------------------------------------------- test introspection ---

bool CachedFile::is_cached(int rank, common::Offset offset) const {
  const Shard& sh = shard_of(rank);
  return find(sh, offset / config_.page_size) >= 0;
}

bool CachedFile::is_dirty(int rank, common::Offset offset) const {
  const Shard& sh = shard_of(rank);
  const std::int32_t idx = find(sh, offset / config_.page_size);
  if (idx < 0) return false;
  const Frame& fr = sh.frames[static_cast<std::size_t>(idx)];
  return fr.dirty_hi > fr.dirty_lo;
}

PageClass CachedFile::cached_class(int rank, common::Offset offset) const {
  const Shard& sh = shard_of(rank);
  const std::int32_t idx = find(sh, offset / config_.page_size);
  return sh.frames[static_cast<std::size_t>(idx)].klass;
}

std::size_t CachedFile::dirty_pages(int rank) const { return shard_of(rank).dirty; }

}  // namespace mha::cache
