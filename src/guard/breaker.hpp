// Per-server circuit breaker: closed / open / half-open.
//
// A browned-out or flapping server keeps hurting every request routed at it
// long after the first failure — the client should stop asking.  Each server
// gets one CircuitBreaker fed from the dispatch path with two health
// signals:
//
//   * a rolling window of sub-request outcomes (success / failure), opening
//     the breaker when the windowed failure rate crosses a threshold, and
//   * an EWMA of the server's queue backlog, opening it when the smoothed
//     backlog crosses `backlog_unhealthy` — the brownout detector: a
//     browned-out server *succeeds*, just slowly, so failure counting alone
//     never trips.
//
// State machine (the classic shape, Nygard's "Release It!"):
//
//            failure rate / backlog over threshold
//   CLOSED ------------------------------------------> OPEN
//     ^                                                  |
//     | close_after consecutive                          | open_cooldown
//     | probe successes                                  | elapsed
//     |                                                  v
//     +--------------------------------------------- HALF-OPEN
//            (any probe failure reopens)
//
// While OPEN, allow() admits nothing.  While HALF-OPEN, allow() admits one
// probe per `probe_interval` of virtual time; everything between probes is
// rejected.  All transitions are driven by the virtual clock the caller
// passes in, so breaker schedules are exactly reproducible.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace mha::guard {

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* to_string(BreakerState state);

struct BreakerOptions {
  /// Rolling outcome window (bitmask ring; at most 64).
  std::size_t window = 32;
  /// Outcomes required before the failure rate is trusted.
  std::size_t min_samples = 8;
  /// Open when windowed failures / samples >= this.
  double failure_threshold = 0.5;
  /// EWMA smoothing for the backlog health signal.
  double backlog_alpha = 0.3;
  /// Open when the smoothed backlog exceeds this many virtual seconds
  /// (<= 0 disables the backlog detector).
  common::Seconds backlog_unhealthy = 0.0;
  /// OPEN holds at least this long before the first probe.
  common::Seconds open_cooldown = 0.2;
  /// HALF-OPEN admits one probe per this interval.
  common::Seconds probe_interval = 0.02;
  /// Consecutive probe successes required to close.
  std::size_t close_after = 3;
};

/// Per-breaker transition/probe counters (summed into GuardMetrics).
struct BreakerCounters {
  std::uint64_t opens = 0;
  std::uint64_t half_opens = 0;
  std::uint64_t closes = 0;
  std::uint64_t probes = 0;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions options = {});

  BreakerState state() const { return state_; }
  const BreakerCounters& counters() const { return counters_; }
  double smoothed_backlog() const { return backlog_ewma_; }

  /// Windowed failure rate (0 while under min_samples).
  double failure_rate() const;

  /// May a request be admitted to this server at virtual time `now`?
  /// Mutating: performs the OPEN -> HALF-OPEN transition when the cooldown
  /// has elapsed and consumes the half-open probe slot it grants.
  bool allow(common::Seconds now);

  /// Non-mutating admission query: does not transition states or consume a
  /// probe slot (hedging suppression asks this — a hedge must never burn
  /// the probe budget real traffic needs).
  bool healthy() const { return state_ == BreakerState::kClosed; }

  /// Feeds one sub-request outcome observed on this server at `now`.
  void record(common::Seconds now, bool success);

  /// Feeds one backlog observation (seconds of queued work a request
  /// admitted at `now` would wait behind).
  void observe_backlog(common::Seconds now, common::Seconds backlog);

 private:
  void open(common::Seconds now);
  void close();
  void push_outcome(bool failure);

  BreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  /// Rolling outcome ring: bit i set = failure; only the low `window` bits
  /// of the ring are live once saturated.
  std::uint64_t outcome_bits_ = 0;
  std::size_t outcome_count_ = 0;
  std::size_t outcome_head_ = 0;
  std::size_t failures_ = 0;
  double backlog_ewma_ = 0.0;
  bool backlog_init_ = false;
  common::Seconds opened_at_ = 0.0;
  common::Seconds last_probe_ = 0.0;
  std::size_t probe_successes_ = 0;
  BreakerCounters counters_;
};

}  // namespace mha::guard
