// Chaos harness for the overload-resilience guard.
//
// One *cell* = a three-tenant contention mix (a batch large-write
// aggressor, a normal strided-write workload, an interactive small-read
// victim) replayed closed-loop on the paper cluster while a scripted fault
// schedule browns out every HServer and drops a fraction of sub-requests on
// two of them.  The `load` knob multiplies every tenant's client count, so
// sweeping it pushes the offered load through and past saturation.
//
// Each cell runs either *naive* (no guard — the same completion allowances
// are applied as accounting only) or *guarded* (an OverloadGuard attached:
// admission gate, per-server breakers, retry tokens, deadline-propagated
// cancellation).  The contrast the ext_overload bench plots: naive goodput
// collapses past saturation because every byte is delivered late; guarded
// goodput stays near its pre-overload plateau because batch traffic is shed
// and interactive reads route around the browned HServers.
//
// A cell builds its own world (driver, injector, guard, cluster) and runs
// single-threaded, so cells compose freely under exec::parallel_map and the
// results are bit-identical at any thread count.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "fault/injector.hpp"
#include "guard/guard.hpp"
#include "qos/driver.hpp"

namespace mha::guard {

struct ChaosOptions {
  /// Client-count scale (the bench's --scale; CI smoke runs 0.05).
  double scale = 1.0;
  /// Offered-load multiplier on top of the base mix's client counts.
  double load = 1.0;
  /// Attach an OverloadGuard (false = the naive baseline).
  bool guarded = false;
  std::uint64_t seed = 1;
};

struct ChaosCellResult {
  double load = 1.0;
  bool guarded = false;
  common::Seconds makespan = 0.0;
  /// Attempted requests (completed + shed + failed).
  std::size_t requests = 0;
  std::size_t shed = 0;
  std::size_t failed = 0;
  std::size_t late = 0;
  /// All delivered bytes / makespan.
  double throughput_mib_s = 0.0;
  /// On-time bytes / makespan — the number the bench gates on.
  double goodput_mib_s = 0.0;
  /// Per-tier breakdown (batch, normal, interactive).
  std::array<std::uint64_t, kTierCount> requests_by_tier{};
  std::array<std::uint64_t, kTierCount> shed_by_tier{};
  std::array<common::ByteCount, kTierCount> goodput_by_tier{};
  /// Zeros for the naive cell.
  GuardMetrics guard_metrics;
  fault::FaultMetrics fault_metrics;
};

/// Per-tier completion allowances both cells are measured against (and the
/// guarded cell enforces as deadlines).
std::array<common::Seconds, kTierCount> chaos_allowances();

/// The contention mix a cell replays (exposed for tests).
std::vector<qos::TenantSpec> chaos_tenants(const ChaosOptions& options);

/// Guard configuration of the guarded cell (exposed for tests).
GuardOptions chaos_guard_options();

/// Replays one cell; deterministic in `options` alone.
common::Result<ChaosCellResult> run_chaos_cell(const ChaosOptions& options);

}  // namespace mha::guard
