#include "guard/breaker.hpp"

#include <algorithm>

namespace mha::guard {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerOptions options) : options_(options) {
  options_.window = std::clamp<std::size_t>(options_.window, 1, 64);
  options_.close_after = std::max<std::size_t>(options_.close_after, 1);
}

double CircuitBreaker::failure_rate() const {
  if (outcome_count_ < options_.min_samples) return 0.0;
  return static_cast<double>(failures_) / static_cast<double>(outcome_count_);
}

void CircuitBreaker::push_outcome(bool failure) {
  const std::uint64_t bit = 1ULL << outcome_head_;
  if (outcome_count_ == options_.window) {
    // Ring is full: the slot being overwritten leaves the window.
    if (outcome_bits_ & bit) --failures_;
  } else {
    ++outcome_count_;
  }
  if (failure) {
    outcome_bits_ |= bit;
    ++failures_;
  } else {
    outcome_bits_ &= ~bit;
  }
  outcome_head_ = (outcome_head_ + 1) % options_.window;
}

void CircuitBreaker::open(common::Seconds now) {
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  probe_successes_ = 0;
  ++counters_.opens;
}

void CircuitBreaker::close() {
  state_ = BreakerState::kClosed;
  // Fresh start: the window that condemned the server is stale evidence
  // once the probes proved it healthy, and the backlog estimate re-learns
  // from post-recovery observations.
  outcome_bits_ = 0;
  outcome_count_ = 0;
  outcome_head_ = 0;
  failures_ = 0;
  backlog_ewma_ = 0.0;
  backlog_init_ = false;
  ++counters_.closes;
}

bool CircuitBreaker::allow(common::Seconds now) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now < opened_at_ + options_.open_cooldown) return false;
      state_ = BreakerState::kHalfOpen;
      probe_successes_ = 0;
      ++counters_.half_opens;
      // First probe goes out immediately.
      last_probe_ = now;
      ++counters_.probes;
      return true;
    case BreakerState::kHalfOpen:
      if (now < last_probe_ + options_.probe_interval) return false;
      last_probe_ = now;
      ++counters_.probes;
      return true;
  }
  return true;
}

void CircuitBreaker::record(common::Seconds now, bool success) {
  if (state_ == BreakerState::kHalfOpen) {
    if (!success) {
      // A failed probe condemns the server for another full cooldown.
      open(now);
      return;
    }
    if (++probe_successes_ >= options_.close_after) close();
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // rejected traffic records nothing
  push_outcome(!success);
  if (outcome_count_ >= options_.min_samples &&
      failure_rate() >= options_.failure_threshold) {
    open(now);
  }
}

void CircuitBreaker::observe_backlog(common::Seconds now, common::Seconds backlog) {
  if (!backlog_init_) {
    backlog_ewma_ = backlog;
    backlog_init_ = true;
  } else {
    backlog_ewma_ += options_.backlog_alpha * (backlog - backlog_ewma_);
  }
  // The brownout detector: a browned-out server completes everything it is
  // given, just slowly, so the failure window never trips — but its queue
  // visibly stops draining.
  if (state_ == BreakerState::kClosed && options_.backlog_unhealthy > 0.0 &&
      backlog_ewma_ >= options_.backlog_unhealthy) {
    open(now);
  }
}

}  // namespace mha::guard
