#include "guard/chaos.hpp"

#include <algorithm>
#include <cmath>

#include "fault/context.hpp"
#include "layouts/scheme.hpp"
#include "workloads/replayer.hpp"

namespace mha::guard {

namespace {

constexpr common::ByteCount kKiB = 1024;
constexpr common::ByteCount kMiB = 1024 * 1024;

// The chaos schedule: every HServer browns out shortly after the replay
// starts and never recovers (sustained RAID-rebuild / thermal throttling),
// and two of them additionally drop a fraction of admitted sub-requests.
// "Never recovers" makes the schedule scale-invariant: the same windows
// cover a 0.05-scale smoke run and a full-scale sweep.
constexpr common::Seconds kChaosStart = 0.02;
constexpr common::Seconds kForever = 1e9;
constexpr double kBrownoutFactor = 6.0;
constexpr double kTransientProbability = 0.25;

}  // namespace

std::array<common::Seconds, kTierCount> chaos_allowances() {
  // Between the browned-but-uncongested latency (under each bound at the
  // lowest sweep load) and the queue-inflated latency past saturation (over
  // it), so the naive cell's delivered-late bytes read as lost goodput.
  // Past saturation even the admitted first wave of batch writes crosses
  // 0.6 s, so the guarded cell also exercises deadline-propagated sibling
  // cancellation (rescued vs wasted bytes in the ledger).
  return {0.6, 0.4, 0.2};
}

std::vector<qos::TenantSpec> chaos_tenants(const ChaosOptions& options) {
  // `load` multiplies client counts — closed-loop concurrency is what drives
  // the queues past saturation.  `scale` only shrinks per-client volume
  // (run length), so a smoke run keeps the full run's contention shape.
  const auto clients = [&](int base) {
    return std::max(1, static_cast<int>(std::lround(base * options.load)));
  };
  const auto scaled = [&](common::ByteCount bytes, common::ByteCount floor) {
    const auto s = static_cast<common::ByteCount>(static_cast<double>(bytes) *
                                                  options.scale);
    return std::max(s, floor);
  };
  std::vector<qos::TenantSpec> tenants;
  // The aggressor is listed first so FCFS sees its worst case inside every
  // simultaneous-arrival window (same convention as the multi-tenant mixes).
  qos::TenantSpec batch;
  batch.name = "batch-write";
  batch.workload = qos::TenantWorkload::kIorLarge;
  batch.clients = clients(16);
  batch.priority = qos::PriorityClass::kBatch;
  // Several 1-2 MiB requests per client: the first wave is admitted against
  // empty queues, the later ones meet the admission gate.
  batch.bytes_per_client = scaled(8 * kMiB, 4 * kMiB);
  batch.seed = options.seed * 100 + 1;
  tenants.push_back(batch);
  qos::TenantSpec normal;
  normal.name = "norm-hpio";
  normal.workload = qos::TenantWorkload::kHpio;
  normal.clients = clients(8);
  normal.priority = qos::PriorityClass::kNormal;
  normal.bytes_per_client = scaled(2 * kMiB, 512 * kKiB);
  normal.seed = options.seed * 100 + 2;
  tenants.push_back(normal);
  qos::TenantSpec inter;
  inter.name = "inter-read";
  inter.workload = qos::TenantWorkload::kIorSmall;
  inter.clients = clients(8);
  inter.priority = qos::PriorityClass::kInteractive;
  inter.bytes_per_client = scaled(1 * kMiB, 256 * kKiB);
  inter.seed = options.seed * 100 + 3;
  tenants.push_back(inter);
  return tenants;
}

GuardOptions chaos_guard_options() {
  GuardOptions options;
  // Brownout detection: healthy per-server backlog in this mix sits in the
  // low milliseconds; a browned HServer's EWMA climbs past 50 ms quickly.
  options.breaker.backlog_unhealthy = 0.05;
  options.shed_backlog = {0.02, 0.20, 1.00};
  options.deadline = chaos_allowances();
  // The transient windows make retries routine, not exceptional: earn
  // tokens generously so legitimate retry traffic is not the first thing
  // shed, while still bounding the storm to half the fresh rate.
  options.retry_token_ratio = 0.5;
  options.retry_token_burst = 32.0;
  return options;
}

common::Result<ChaosCellResult> run_chaos_cell(const ChaosOptions& options) {
  qos::MultiTenantDriver driver(chaos_tenants(options));

  sim::ClusterConfig cluster;
  cluster.num_hservers = 6;
  cluster.num_sservers = 2;

  fault::FaultInjector injector(options.seed * 7919 + 17);
  for (std::size_t s = 0; s < cluster.num_hservers; ++s) {
    fault::FaultWindow w;
    w.server = s;
    w.kind = fault::FaultKind::kBrownout;
    w.start = kChaosStart;
    w.end = kForever;
    w.factor = kBrownoutFactor;
    injector.add(w);
  }
  for (std::size_t s : {std::size_t{1}, std::size_t{4}}) {
    fault::FaultWindow w;
    w.server = s;
    w.kind = fault::FaultKind::kTransient;
    w.start = kChaosStart;
    w.end = kForever;
    w.probability = kTransientProbability;
    injector.add(w);
  }
  fault::FaultContext fault_context(injector, {}, options.seed * 31 + 5);

  OverloadGuard guard(cluster.num_hservers + cluster.num_sservers,
                      chaos_guard_options());

  workloads::ReplayOptions replay_options;
  replay_options.mode = workloads::ReplayMode::kIndependent;
  replay_options.jobs = &driver.jobs();
  replay_options.fault_context = &fault_context;
  replay_options.tolerate_failures = true;
  replay_options.goodput_allowance = chaos_allowances();
  if (options.guarded) replay_options.guard = &guard;

  auto scheme = layouts::make_def();
  auto replay =
      workloads::run_scheme(*scheme, cluster, driver.combined_trace(), replay_options);
  if (!replay.is_ok()) return replay.status();

  ChaosCellResult cell;
  cell.load = options.load;
  cell.guarded = options.guarded;
  cell.makespan = replay->makespan;
  cell.requests = replay->requests;
  cell.shed = replay->shed_requests;
  cell.failed = replay->failed_requests;
  cell.late = replay->late_requests;
  cell.throughput_mib_s =
      replay->aggregate_bandwidth / static_cast<double>(kMiB);
  cell.goodput_mib_s = replay->goodput_bandwidth / static_cast<double>(kMiB);
  for (std::size_t i = 0;
       i < replay->tenants.size() && i < driver.jobs().size(); ++i) {
    const auto tier = static_cast<std::size_t>(
        driver.jobs().priority(static_cast<common::JobId>(i)));
    const qos::TenantLatency& t = replay->tenants[i];
    cell.requests_by_tier[tier] += t.requests + t.shed + t.failed;
    cell.shed_by_tier[tier] += t.shed;
    cell.goodput_by_tier[tier] += t.goodput_bytes;
  }
  if (options.guarded) cell.guard_metrics = guard.metrics();
  cell.fault_metrics = injector.metrics();
  return cell;
}

}  // namespace mha::guard
