// Overload-resilience guard for the client dispatch path.
//
// Past saturation a parallel file system does not degrade gracefully by
// default: retries multiply offered load (the retry-storm / metastable
// failure recipe), requests that give up leave sibling sub-request charges
// loading the servers, and browned-out servers keep receiving hedges and
// fresh admissions at full rate.  OverloadGuard bundles the three classic
// countermeasures and exposes them to pfs::HybridPfs as one borrowed
// object:
//
//   1. End-to-end deadlines — each priority tier owns a completion
//      allowance; the replayer stamps arrival + allowance on the PFS before
//      every request, the dispatch path refuses to let a sub-request's
//      completion cross it, and on refusal cancels the already-charged
//      siblings (ServerSim::try_cancel) so abandoned work stops loading the
//      servers.  Siblings that can no longer be cancelled (a later charge
//      baked their completion in) are counted as *wasted* bytes — the
//      goodput-vs-throughput gap.
//
//   2. Per-server circuit breakers (breaker.hpp) — failure-rate and
//      backlog-EWMA driven; reads bound for an open HServer reroute to the
//      least-loaded healthy SServer replica (the degraded-read fallback),
//      and hedging toward a non-closed server is suppressed.
//
//   3. Admission control + load shedding — per-tier backlog thresholds shed
//      the lowest priority class first with a typed kOverloaded Status, and
//      a global retry-token bucket (earned as a fixed fraction of admitted
//      fresh traffic) caps total retry volume no matter how many requests
//      are individually entitled to retry.
//
// The guard is sized once (num_servers, job->tier map) and mutated only
// through the dispatch path with flat-array state, so attaching it keeps
// the request path zero-allocation.  All decisions advance with virtual
// time only: same trace, same seed, same guard behaviour at any --threads.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "guard/breaker.hpp"

namespace mha::guard {

/// Priority tiers the guard sheds between, lowest first.  Mirrors
/// qos::PriorityClass by value (batch=0, normal=1, interactive=2) without
/// depending on the qos layer — callers map jobs in via set_job_tier().
inline constexpr std::size_t kTierCount = 3;
inline constexpr std::uint8_t kTierBatch = 0;
inline constexpr std::uint8_t kTierNormal = 1;
inline constexpr std::uint8_t kTierInteractive = 2;

const char* tier_name(std::uint8_t tier);

struct GuardOptions {
  BreakerOptions breaker;
  /// Admission gate: a tier-t request is shed when the deepest backlog over
  /// its target servers exceeds shed_backlog[t] virtual seconds.  Ascending
  /// thresholds shed batch first, interactive last; an infinite entry never
  /// sheds that tier.
  std::array<common::Seconds, kTierCount> shed_backlog = {0.05, 0.20, 0.80};
  /// End-to-end completion allowance per tier (seconds past arrival);
  /// infinity disables deadline enforcement for the tier.
  std::array<common::Seconds, kTierCount> deadline = {
      std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity()};
  /// Retry tokens earned per admitted fresh request; a retry spends 1.0.
  /// Retries can therefore never exceed this fraction of fresh traffic.
  double retry_token_ratio = 0.1;
  /// Token bucket capacity (also the initial balance — the burst).
  double retry_token_burst = 16.0;
};

/// Everything the guard decided, in one table (FaultMetrics style).
struct GuardMetrics {
  std::uint64_t admitted = 0;
  std::array<std::uint64_t, kTierCount> shed = {0, 0, 0};
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_half_opens = 0;
  std::uint64_t breaker_closes = 0;
  std::uint64_t breaker_probes = 0;
  std::uint64_t breaker_rejections = 0;  ///< sub-requests an open breaker turned away
  std::uint64_t breaker_reroutes = 0;    ///< reads replanned to a healthy SServer
  std::uint64_t hedges_suppressed = 0;
  std::uint64_t retry_tokens_granted = 0;
  std::uint64_t retry_tokens_denied = 0;
  std::uint64_t deadline_misses = 0;     ///< requests abandoned at their deadline
  std::uint64_t siblings_cancelled = 0;  ///< sibling charges rewound via try_cancel
  std::uint64_t siblings_wasted = 0;     ///< siblings no longer cancellable
  common::ByteCount bytes_rescued = 0;   ///< bytes of cancelled sibling charges
  common::ByteCount bytes_wasted = 0;    ///< bytes left loading servers for nothing

  std::uint64_t shed_total() const { return shed[0] + shed[1] + shed[2]; }

  /// stats_table()-style multi-line report.
  std::string table() const;
};

class OverloadGuard {
 public:
  explicit OverloadGuard(std::size_t num_servers, GuardOptions options = {});

  const GuardOptions& options() const { return options_; }
  std::size_t num_servers() const { return breakers_.size(); }

  /// Maps a job to its shedding tier (default: every job is kTierNormal).
  void set_job_tier(common::JobId job, std::uint8_t tier);
  std::uint8_t tier_of(common::JobId job) const {
    return job < job_tier_.size() ? job_tier_[job] : kTierNormal;
  }

  /// Deadline a tier-`tier` request arriving at `arrival` must meet
  /// (infinity when the tier has no allowance configured).
  common::Seconds deadline_for(std::uint8_t tier, common::Seconds arrival) const {
    return arrival + options_.deadline[tier < kTierCount ? tier : kTierNormal];
  }

  /// Admission gate: sheds the request (false) when `max_backlog` exceeds
  /// the job's tier threshold; earns retry tokens on admission.
  bool admit(common::JobId job, common::Seconds max_backlog);

  /// Breaker gate for one sub-request at `now` (mutating: may transition
  /// OPEN -> HALF-OPEN and consumes a probe slot when it grants one).
  bool breaker_allow(std::size_t server, common::Seconds now);

  /// Non-mutating health query (hedge suppression; never burns a probe).
  bool breaker_healthy(std::size_t server) const {
    return breakers_[server].healthy();
  }
  BreakerState breaker_state(std::size_t server) const {
    return breakers_[server].state();
  }
  const CircuitBreaker& breaker(std::size_t server) const { return breakers_[server]; }

  /// Feeds a backlog observation / sub-request outcome to a server's breaker.
  void observe_server(std::size_t server, common::Seconds now,
                      common::Seconds backlog) {
    breakers_[server].observe_backlog(now, backlog);
  }
  void record_server(std::size_t server, common::Seconds now, bool success) {
    breakers_[server].record(now, success);
  }

  /// Spends one retry token; false (and counted) when the bucket is dry.
  bool take_retry_token();
  double retry_tokens() const { return retry_tokens_; }

  // Dispatch-path ledger notes.
  void note_breaker_rejection() { ++metrics_.breaker_rejections; }
  void note_reroute() { ++metrics_.breaker_reroutes; }
  void note_hedge_suppressed() { ++metrics_.hedges_suppressed; }
  void note_deadline_miss() { ++metrics_.deadline_misses; }
  void note_sibling_cancelled(common::ByteCount bytes) {
    ++metrics_.siblings_cancelled;
    metrics_.bytes_rescued += bytes;
  }
  void note_sibling_wasted(common::ByteCount bytes) {
    ++metrics_.siblings_wasted;
    metrics_.bytes_wasted += bytes;
  }

  /// Snapshot with the per-breaker transition counters folded in.
  GuardMetrics metrics() const;

  std::string stats_table() const { return metrics().table(); }

 private:
  GuardOptions options_;
  std::vector<CircuitBreaker> breakers_;
  /// Flat job -> tier map (index == JobId; grown only by set_job_tier).
  std::vector<std::uint8_t> job_tier_;
  double retry_tokens_ = 0.0;
  GuardMetrics metrics_;
};

}  // namespace mha::guard
