#include "guard/guard.hpp"

#include <algorithm>
#include <cstdio>

#include "common/units.hpp"

namespace mha::guard {

const char* tier_name(std::uint8_t tier) {
  switch (tier) {
    case kTierBatch: return "batch";
    case kTierNormal: return "normal";
    case kTierInteractive: return "interactive";
  }
  return "unknown";
}

OverloadGuard::OverloadGuard(std::size_t num_servers, GuardOptions options)
    : options_(options),
      breakers_(num_servers, CircuitBreaker(options.breaker)),
      retry_tokens_(options.retry_token_burst) {}

void OverloadGuard::set_job_tier(common::JobId job, std::uint8_t tier) {
  if (job >= job_tier_.size()) job_tier_.resize(job + 1, kTierNormal);
  job_tier_[job] = std::min<std::uint8_t>(tier, kTierCount - 1);
}

bool OverloadGuard::admit(common::JobId job, common::Seconds max_backlog) {
  const std::uint8_t tier = tier_of(job);
  if (max_backlog > options_.shed_backlog[tier]) {
    ++metrics_.shed[tier];
    return false;
  }
  ++metrics_.admitted;
  retry_tokens_ =
      std::min(retry_tokens_ + options_.retry_token_ratio, options_.retry_token_burst);
  return true;
}

bool OverloadGuard::breaker_allow(std::size_t server, common::Seconds now) {
  return breakers_[server].allow(now);
}

bool OverloadGuard::take_retry_token() {
  if (retry_tokens_ < 1.0) {
    ++metrics_.retry_tokens_denied;
    return false;
  }
  retry_tokens_ -= 1.0;
  ++metrics_.retry_tokens_granted;
  return true;
}

GuardMetrics OverloadGuard::metrics() const {
  GuardMetrics out = metrics_;
  for (const CircuitBreaker& b : breakers_) {
    out.breaker_opens += b.counters().opens;
    out.breaker_half_opens += b.counters().half_opens;
    out.breaker_closes += b.counters().closes;
    out.breaker_probes += b.counters().probes;
  }
  return out;
}

std::string GuardMetrics::table() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "admission: admitted=%llu shed=%llu (batch=%llu normal=%llu "
                "interactive=%llu)\n",
                static_cast<unsigned long long>(admitted),
                static_cast<unsigned long long>(shed_total()),
                static_cast<unsigned long long>(shed[kTierBatch]),
                static_cast<unsigned long long>(shed[kTierNormal]),
                static_cast<unsigned long long>(shed[kTierInteractive]));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "breakers:  opens=%llu half_opens=%llu closes=%llu probes=%llu "
                "rejected=%llu rerouted=%llu hedges_suppressed=%llu\n",
                static_cast<unsigned long long>(breaker_opens),
                static_cast<unsigned long long>(breaker_half_opens),
                static_cast<unsigned long long>(breaker_closes),
                static_cast<unsigned long long>(breaker_probes),
                static_cast<unsigned long long>(breaker_rejections),
                static_cast<unsigned long long>(breaker_reroutes),
                static_cast<unsigned long long>(hedges_suppressed));
  out += buf;
  std::snprintf(buf, sizeof(buf), "retries:   tokens_granted=%llu tokens_denied=%llu\n",
                static_cast<unsigned long long>(retry_tokens_granted),
                static_cast<unsigned long long>(retry_tokens_denied));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "deadlines: missed=%llu cancelled=%llu wasted=%llu rescued_bytes=%s "
                "wasted_bytes=%s\n",
                static_cast<unsigned long long>(deadline_misses),
                static_cast<unsigned long long>(siblings_cancelled),
                static_cast<unsigned long long>(siblings_wasted),
                common::format_bytes(bytes_rescued).c_str(),
                common::format_bytes(bytes_wasted).c_str());
  out += buf;
  return out;
}

}  // namespace mha::guard
