// Cluster membership for permanent server loss (the repair subsystem's
// ground truth).
//
// The fault layer models outages as *windows* — every crash eventually
// ends, so the client machinery (redo log, degraded reads, offline waits)
// is built around "wait or work around until the window closes".  A lost
// device never comes back.  Membership is the small state machine that
// makes that distinction first-class:
//
//   kUp         - serving normally
//   kSuspect    - the overload guard's breaker on this server is open; the
//                 server still holds its data, but new work avoids it
//   kDead       - permanently lost (kill_server); its stores are gone and
//                 every sub-request targeting it must fail over
//   kRebuilding - still dead, but the background rebuilder is re-homing its
//                 regions; flips back to... nothing — a dead server never
//                 resurrects.  The state exists so benches/operators can see
//                 rebuild progress per server.
//
// Every transition bumps a monotonically increasing cluster *epoch* and is
// recorded in an event log, so "which membership view produced this
// placement" is a single integer comparison — the classic guard against
// acting on a stale view.
//
// Layering: membership sits beside the guard/fault libraries, *below*
// pfs::HybridPfs (which consults `dead()` on the request path the same way
// it consults the injector).  The pfs-aware kill helper that also wipes the
// dead server's stores lives in repair/rebuilder.hpp, one layer up.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "fault/injector.hpp"
#include "guard/guard.hpp"

namespace mha::repair {

enum class ServerState : std::uint8_t {
  kUp = 0,
  kSuspect = 1,
  kDead = 2,
  kRebuilding = 3,
};

const char* to_string(ServerState state);

/// One membership transition (epoch-stamped audit log).
struct MembershipEvent {
  std::uint64_t epoch = 0;
  std::size_t server = 0;
  ServerState from = ServerState::kUp;
  ServerState to = ServerState::kUp;
  common::Seconds at = 0.0;
};

class Membership {
 public:
  explicit Membership(std::size_t num_servers);

  std::size_t num_servers() const { return states_.size(); }
  ServerState state(std::size_t server) const { return states_[server]; }

  /// Cluster epoch: bumped by every state transition.  Epoch 0 is the
  /// all-up genesis view.
  std::uint64_t epoch() const { return epoch_; }

  /// True when `server` no longer holds data (kDead or kRebuilding).  The
  /// request hot path's only membership query — a flat vector load.
  bool dead(std::size_t server) const {
    return states_[server] == ServerState::kDead ||
           states_[server] == ServerState::kRebuilding;
  }

  /// Number of dead/rebuilding servers; zero means the failover machinery
  /// can be skipped wholesale.
  std::size_t dead_count() const { return dead_count_; }

  /// Transitions `server` to `state` at virtual instant `now`, bumping the
  /// epoch.  No-op (and no epoch bump) when the state is unchanged; a dead
  /// server can move to kRebuilding and back but never to kUp/kSuspect.
  void set_state(std::size_t server, ServerState state, common::Seconds now);

  /// Permanent loss: marks `server` kDead and — when an injector is given —
  /// adds an unbounded crash window starting at `now`, so schedulers and
  /// look-ahead see the loss the same way they see transient crashes.  The
  /// caller must separately wipe the server's stores to make the loss real
  /// in the content plane (repair::kill_server in rebuilder.hpp does both).
  void kill(std::size_t server, common::Seconds now,
            fault::FaultInjector* injector = nullptr);

  /// Promotes the guard's breaker verdicts into suspicion: an open breaker
  /// marks its (live) server kSuspect, a closed breaker clears suspicion
  /// back to kUp.  Half-open keeps the current state (the probe decides).
  /// Dead servers are never touched — suspicion is a health opinion,
  /// death is a fact.
  void observe_guard(const guard::OverloadGuard& guard, common::Seconds now);

  const std::vector<MembershipEvent>& events() const { return events_; }

  /// "membership: epoch=...  up=... suspect=... dead=... rebuilding=..."
  /// one-liner for bench tables.
  std::string table() const;

 private:
  std::vector<ServerState> states_;
  std::uint64_t epoch_ = 0;
  std::size_t dead_count_ = 0;
  std::vector<MembershipEvent> events_;
};

}  // namespace mha::repair
