#include "repair/rebuilder.hpp"

#include <algorithm>
#include <cctype>
#include <limits>

#include "common/log.hpp"
#include "common/units.hpp"

namespace mha::repair {

namespace {

common::Status injected_crash(std::string_view point) {
  return common::Status::io_error("injected crash at " + std::string(point));
}

bool all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Strips one rebuild suffix (".rb<epoch>", ".rep", ".rep<epoch>") off a
/// file name; returns the name unchanged when it carries none.
std::string_view rebuild_base(std::string_view name) {
  const std::size_t pos = name.rfind('.');
  if (pos == std::string_view::npos) return name;
  const std::string_view suffix = name.substr(pos + 1);
  if (suffix.size() > 2 && suffix.substr(0, 2) == "rb" && all_digits(suffix.substr(2))) {
    return name.substr(0, pos);
  }
  if (suffix.size() >= 3 && suffix.substr(0, 3) == "rep" &&
      (suffix.size() == 3 || all_digits(suffix.substr(3)))) {
    return name.substr(0, pos);
  }
  return name;
}

bool is_replica_name(std::string_view name) {
  const std::size_t pos = name.rfind('.');
  if (pos == std::string_view::npos) return false;
  const std::string_view suffix = name.substr(pos + 1);
  return suffix.size() >= 3 && suffix.substr(0, 3) == "rep" &&
         (suffix.size() == 3 || all_digits(suffix.substr(3)));
}

/// Stamps the rebuild's QoS job (and an infinite deadline) on the PFS for
/// one copy burst, restoring the caller's tenant on every exit path.
class JobScope {
 public:
  JobScope(pfs::HybridPfs& pfs, common::JobId job)
      : pfs_(pfs), prev_job_(pfs.active_job()), prev_deadline_(pfs.active_deadline()) {
    pfs_.set_active_job(job);
    pfs_.set_active_deadline(std::numeric_limits<double>::infinity());
  }
  ~JobScope() {
    pfs_.set_active_job(prev_job_);
    pfs_.set_active_deadline(prev_deadline_);
  }

 private:
  pfs::HybridPfs& pfs_;
  common::JobId prev_job_;
  common::Seconds prev_deadline_;
};

}  // namespace

void kill_server(Membership& membership, pfs::HybridPfs& pfs, std::size_t server,
                 common::Seconds now, fault::FaultInjector* injector) {
  membership.kill(server, now, injector);
  pfs.wipe_server(server);
}

std::string RebuildReport::table() const {
  std::string out = "rebuild: tasks=" + std::to_string(tasks) +
                    " primaries=" + std::to_string(primaries_rebuilt) +
                    " replicas=" + std::to_string(replicas_rebuilt) +
                    " lost=" + std::to_string(lost_regions);
  out += " | copied=" + common::format_bytes(bytes_copied) +
         " recopied=" + common::format_bytes(bytes_recopied) + "\n";
  return out;
}

Rebuilder::Rebuilder(pfs::HybridPfs& pfs, core::Redirector& redirector,
                     Membership& membership, std::string journal_path,
                     RebuildOptions options)
    : pfs_(pfs),
      redirector_(redirector),
      membership_(membership),
      journal_path_(std::move(journal_path)),
      options_(std::move(options)) {}

common::Status Rebuilder::plan(common::Seconds now) {
  if (planned_) {
    return common::Status::failed_precondition("rebuilder: already planned");
  }
  if (!journal_path_.empty()) {
    MHA_RETURN_IF_ERROR(journal_.open(journal_path_));
    if (journal_.active()) {
      return common::Status::failed_precondition(
          "rebuilder: journal holds an unresolved rebuild (phase " +
          std::string(fault::to_string(journal_.phase())) + "); resume() instead");
    }
  }

  const core::Drt& drt = redirector_.drt();
  const std::size_t n = drt.region_count();
  std::vector<bool> is_replica(n, false);
  for (core::RegionId id = 0; id < n; ++id) {
    const core::RegionId rid = drt.replica_of_region(id);
    if (rid != core::kNoRegion) is_replica[rid] = true;
  }

  for (core::RegionId id = 0; id < n; ++id) {
    const std::string& name = drt.region_name(id);
    auto fid = pfs_.open(name);
    if (!fid.is_ok()) return fid.status();
    const pfs::StripeLayout& layout = pfs_.mds().info(*fid).layout;
    bool lost = false;
    for (std::size_t s = 0; s < layout.num_servers(); ++s) {
      if (layout.width(s) > 0 && membership_.dead(s)) lost = true;
    }
    if (!lost) continue;

    Task task;
    task.base = std::string(rebuild_base(name));
    task.old_name = name;
    task.length = pfs_.file_size(*fid);
    if (is_replica[id]) {
      // The replica died; re-fill a fresh copy from the (intact) primary.
      core::RegionId primary = core::kNoRegion;
      for (core::RegionId p = 0; p < n; ++p) {
        if (drt.replica_of_region(p) == id) primary = p;
      }
      if (primary == core::kNoRegion) continue;  // orphan replica; nothing points at it
      auto source = pfs_.open(drt.region_name(primary));
      if (!source.is_ok()) return source.status();
      const pfs::StripeLayout& primary_layout = pfs_.mds().info(*source).layout;
      bool primary_lost = false;
      for (std::size_t s = 0; s < primary_layout.num_servers(); ++s) {
        if (primary_layout.width(s) > 0 && membership_.dead(s)) primary_lost = true;
      }
      if (primary_lost) {
        // Both copies gone — nothing to rebuild from.
        ++report_.lost_regions;
        continue;
      }
      auto server = pick_sserver(primary_layout.widths());
      if (!server.is_ok()) return server.status();
      task.kind = TaskKind::kReplica;
      task.widths.assign(pfs_.num_servers(), 0);
      task.widths[*server] = pfs::kDefaultStripe;
      task.new_name = task.base + ".rep" + std::to_string(membership_.epoch());
      task.source = *source;
    } else {
      // The primary lost stripes; re-home it onto the survivors, content
      // read through the failover path (live stripes + replica).
      const core::RegionId rid = drt.replica_of_region(id);
      if (rid == core::kNoRegion) {
        ++report_.lost_regions;  // unreplicated — genuinely gone
        continue;
      }
      auto replica_fid = pfs_.open(drt.region_name(rid));
      if (!replica_fid.is_ok()) return replica_fid.status();
      const pfs::StripeLayout& replica_layout = pfs_.mds().info(*replica_fid).layout;
      bool replica_lost = false;
      for (std::size_t s = 0; s < replica_layout.num_servers(); ++s) {
        if (replica_layout.width(s) > 0 && membership_.dead(s)) replica_lost = true;
      }
      bool survivor = false;
      task.widths = layout.widths();
      for (std::size_t s = 0; s < task.widths.size(); ++s) {
        if (membership_.dead(s)) task.widths[s] = 0;
        if (task.widths[s] > 0) survivor = true;
      }
      if (!survivor && replica_lost) {
        ++report_.lost_regions;  // every stripe and the replica died together
        continue;
      }
      if (replica_lost && task.length > 0) {
        // Dead stripes are unreadable (replica gone too), so only the
        // surviving-stripe bytes exist — partial loss; leave the region
        // alone and let reads surface kUnavailable over the holes.
        ++report_.lost_regions;
        continue;
      }
      if (!survivor) {
        auto server = pick_sserver({});
        if (!server.is_ok()) return server.status();
        task.widths[*server] = pfs::kDefaultStripe;
      }
      task.kind = TaskKind::kPrimary;
      task.new_name = task.base + ".rb" + std::to_string(membership_.epoch());
      task.source = *fid;
    }
    tasks_.push_back(std::move(task));
  }
  report_.tasks = tasks_.size();

  // Rebuild visibility: dead servers show kRebuilding while tasks are open.
  if (!tasks_.empty()) {
    for (std::size_t s = 0; s < membership_.num_servers(); ++s) {
      if (membership_.state(s) == ServerState::kDead) {
        membership_.set_state(s, ServerState::kRebuilding, now);
      }
    }
  }

  planned_ = true;
  next_issue_ = now;
  if (tasks_.empty()) {
    done_ = true;
    report_.finished_at = now;
    return common::Status::ok();
  }

  if (journal_.is_open()) {
    std::vector<fault::JournalRegion> regions;
    std::vector<fault::JournalEntry> entries;
    regions.reserve(tasks_.size());
    entries.reserve(tasks_.size());
    for (const Task& task : tasks_) {
      regions.push_back(fault::JournalRegion{task.new_name, task.widths});
      entries.push_back(fault::JournalEntry{0, task.length, task.new_name, 0});
    }
    MHA_RETURN_IF_ERROR(journal_.begin("__rebuild__", std::move(regions),
                                       std::move(entries)));
  }
  if (crash("planned")) return injected_crash("planned");

  MHA_RETURN_IF_ERROR(create_dests());
  if (journal_.is_open()) {
    MHA_RETURN_IF_ERROR(journal_.set_phase(fault::JournalPhase::kRegionsCreated));
  }
  if (crash("created")) return injected_crash("created");
  if (journal_.is_open()) {
    MHA_RETURN_IF_ERROR(journal_.set_phase(fault::JournalPhase::kCopying));
  }
  if (crash("copying")) return injected_crash("copying");
  return common::Status::ok();
}

common::Status Rebuilder::create_dests() {
  for (Task& task : tasks_) {
    auto layout = pfs::StripeLayout::create(task.widths);
    if (!layout.is_ok()) return layout.status();
    auto id = pfs_.create_file(task.new_name, std::move(layout).take());
    if (id.is_ok()) {
      task.dest = *id;
      continue;
    }
    if (id.status().code() != common::ErrorCode::kAlreadyExists) return id.status();
    auto open = pfs_.open(task.new_name);  // resumed rebuild: created pre-crash
    if (!open.is_ok()) return open.status();
    task.dest = *open;
  }
  return common::Status::ok();
}

common::Result<std::size_t> Rebuilder::pick_sserver(
    const std::vector<common::ByteCount>& avoid) {
  // Prefer a surviving SServer disjoint from `avoid`'s stripes (placement
  // diversity: the replica should not die with its primary), else any
  // survivor.  Lowest index wins — deterministic at any thread count.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t s = pfs_.num_hservers(); s < pfs_.num_servers(); ++s) {
      if (membership_.dead(s)) continue;
      if (pass == 0 && s < avoid.size() && avoid[s] > 0) continue;
      return s;
    }
  }
  return common::Status::unavailable("rebuilder: no surviving SServer");
}

common::Status Rebuilder::copy_range(common::FileId source, common::FileId dest,
                                     common::Offset offset, common::ByteCount length,
                                     common::Seconds& issue) {
  JobScope scope(pfs_, options_.job);
  common::ByteCount moved = 0;
  while (moved < length) {
    const common::ByteCount piece =
        std::min<common::ByteCount>(options_.chunk, length - moved);
    buffer_.resize(piece);
    auto read = pfs_.read(source, offset + moved, buffer_.data(), piece, issue);
    if (!read.is_ok()) return read.status();
    auto write = pfs_.write(dest, offset + moved, buffer_.data(), piece,
                            read->completion);
    if (!write.is_ok()) return write.status();
    issue = write->completion;
    moved += piece;
  }
  return common::Status::ok();
}

common::Status Rebuilder::copy_pump(common::Seconds now, bool unbounded) {
  while (task_index_ < tasks_.size()) {
    Task& task = tasks_[task_index_];
    if (!task_entered_) {
      // A resumed rebuild restarts each task from its journaled progress
      // (chunk copies are idempotent, so a torn chunk just re-copies).
      task_pos_ = journal_.is_open()
                      ? std::min(task.length, journal_.copy_progress(task_index_))
                      : 0;
      task_entered_ = true;
    }
    if (task_pos_ >= task.length) {
      if (journal_.is_open()) {
        MHA_RETURN_IF_ERROR(journal_.set_copy_progress(task_index_, task.length));
      }
      if (crash("copied-task-" + std::to_string(task_index_))) {
        return injected_crash("copied-task-" + std::to_string(task_index_));
      }
      ++task_index_;
      task_entered_ = false;
      continue;
    }
    if (!unbounded && next_issue_ > now) return common::Status::ok();

    const common::ByteCount piece =
        std::min<common::ByteCount>(options_.chunk, task.length - task_pos_);
    buffer_.resize(piece);
    {
      JobScope scope(pfs_, options_.job);
      auto read = pfs_.read(task.source, task_pos_, buffer_.data(), piece, next_issue_);
      if (!read.is_ok()) return read.status();
      auto write = pfs_.write(task.dest, task_pos_, buffer_.data(), piece,
                              read->completion);
      if (!write.is_ok()) return write.status();
      // Pacing: closed-loop when unthrottled (next chunk at this one's
      // completion), token-paced otherwise — whichever is later.
      const common::Seconds pace =
          options_.rate > 0.0 ? static_cast<double>(piece) / options_.rate : 0.0;
      next_issue_ = std::max(write->completion, next_issue_ + pace);
    }
    task_pos_ += piece;
    report_.bytes_copied += piece;
    if (journal_.is_open()) {
      MHA_RETURN_IF_ERROR(journal_.set_copy_progress(task_index_, task_pos_));
    }
  }
  if (journal_.is_open() && journal_.phase() == fault::JournalPhase::kCopying) {
    MHA_RETURN_IF_ERROR(journal_.set_phase(fault::JournalPhase::kCopied));
  }
  if (crash("copied")) return injected_crash("copied");
  return finish(std::max(now, next_issue_));
}

common::Status Rebuilder::finish(common::Seconds now) {
  core::Drt& drt = redirector_.mutable_drt();
  common::Seconds issue = now;

  const auto interned = [&](const std::string& name) {
    for (core::RegionId id = 0; id < drt.region_count(); ++id) {
      if (drt.region_name(id) == name) return true;
    }
    return false;
  };
  std::vector<bool> switched(tasks_.size(), false);
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    switched[i] = interned(tasks_[i].new_name);  // resume redo: already renamed
  }

  // Migration protocol, prepare side: flush cached dirty pages over every
  // logical range a primary rebuild will retarget, so the dirty re-copy
  // below reads current bytes (the flush itself marks entries dirty).
  std::vector<core::DrtEntry> entries = drt.entries();
  if (options_.cache != nullptr) {
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      if (switched[i] || tasks_[i].kind != TaskKind::kPrimary) continue;
      for (const core::DrtEntry& e : entries) {
        if (e.r_file != tasks_[i].old_name) continue;
        auto prep = options_.cache->prepare_migration(e.o_offset, e.length, issue);
        if (!prep.is_ok()) return prep.status();
        issue = std::max(issue, *prep);
      }
    }
    entries = drt.entries();  // re-snapshot: the flush dirtied entries
  }

  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    Task& task = tasks_[i];
    if (switched[i]) {
      task.kind == TaskKind::kPrimary ? ++report_.primaries_rebuilt
                                      : ++report_.replicas_rebuilt;
      continue;
    }
    // Writes that raced the copy marked their entries dirty; re-copy those
    // ranges at this quiescent instant so the new file is current.
    for (const core::DrtEntry& e : entries) {
      const bool mine = task.kind == TaskKind::kPrimary
                            ? e.r_file == task.old_name
                            : e.replica_file == task.old_name;
      if (!mine || !e.dirty) continue;
      common::FileId source = task.source;
      if (task.kind == TaskKind::kReplica) {
        auto primary = pfs_.open(e.r_file);
        if (!primary.is_ok()) return primary.status();
        source = *primary;
      }
      MHA_RETURN_IF_ERROR(copy_range(source, task.dest, e.r_offset, e.length, issue));
      report_.bytes_recopied += e.length;
    }
    MHA_RETURN_IF_ERROR(drt.retarget_region(task.old_name, task.new_name));
    task.kind == TaskKind::kPrimary ? ++report_.primaries_rebuilt
                                    : ++report_.replicas_rebuilt;
    if (crash("switched-task-" + std::to_string(i))) {
      return injected_crash("switched-task-" + std::to_string(i));
    }
  }

  // Migration protocol, commit side: drop cached pages whose placement
  // changed so the next access re-probes the DRT against the new layout.
  if (options_.cache != nullptr) {
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      if (tasks_[i].kind != TaskKind::kPrimary) continue;
      for (const core::DrtEntry& e : entries) {
        if (e.r_file == tasks_[i].old_name || e.r_file == tasks_[i].new_name) {
          options_.cache->invalidate(e.o_offset, e.length);
        }
      }
    }
  }

  MHA_RETURN_IF_ERROR(redirector_.refresh(pfs_));
  if (journal_.is_open()) {
    MHA_RETURN_IF_ERROR(journal_.commit());
  }
  if (crash("switched")) return injected_crash("switched");
  if (journal_.is_open()) {
    MHA_RETURN_IF_ERROR(journal_.clear());
    MHA_RETURN_IF_ERROR(journal_.close());
  }

  for (std::size_t s = 0; s < membership_.num_servers(); ++s) {
    if (membership_.state(s) == ServerState::kRebuilding) {
      membership_.set_state(s, ServerState::kDead, issue);
    }
  }
  done_ = true;
  report_.finished_at = std::max(issue, next_issue_);
  MHA_INFO << "rebuilder: " << report_.primaries_rebuilt << " primaries + "
           << report_.replicas_rebuilt << " replicas re-protected, "
           << report_.lost_regions << " lost";
  return common::Status::ok();
}

common::Status Rebuilder::step(common::Seconds now) {
  if (!planned_) return common::Status::failed_precondition("rebuilder: plan() first");
  if (done_) return common::Status::ok();
  return copy_pump(now, /*unbounded=*/false);
}

common::Status Rebuilder::run_to_completion(common::Seconds now) {
  if (!planned_) MHA_RETURN_IF_ERROR(plan(now));
  if (done_) return common::Status::ok();
  return copy_pump(now, /*unbounded=*/true);
}

common::Status Rebuilder::resume(common::Seconds now) {
  if (planned_) return common::Status::failed_precondition("rebuilder: already planned");
  if (journal_path_.empty()) {
    return common::Status::failed_precondition("rebuilder: resume needs a journal");
  }
  MHA_RETURN_IF_ERROR(journal_.open(journal_path_));
  if (!journal_.active()) {
    // Nothing unresolved: either no rebuild ran, or the crash hit between
    // commit and clear (the switch is already durable) — tidy up.
    if (journal_.phase() == fault::JournalPhase::kCommitted) {
      MHA_RETURN_IF_ERROR(journal_.clear());
    }
    MHA_RETURN_IF_ERROR(journal_.close());
    planned_ = true;
    done_ = true;
    report_.finished_at = now;
    return common::Status::ok();
  }
  if (journal_.o_file() != "__rebuild__") {
    return common::Status::failed_precondition(
        "rebuilder: journal holds a placement migration, not a rebuild; run "
        "core::recover_migration");
  }

  // Reconstruct the task list from the journaled plan.  The destination
  // name encodes kind and base; the *current* source/old name is resolved
  // against the live DRT (it may already be the new name if the crash hit
  // mid-switch — those tasks are detected and skipped in finish()).
  const core::Drt& drt = redirector_.drt();
  const std::size_t n = drt.region_count();
  std::vector<bool> is_replica(n, false);
  for (core::RegionId id = 0; id < n; ++id) {
    const core::RegionId rid = drt.replica_of_region(id);
    if (rid != core::kNoRegion) is_replica[rid] = true;
  }
  const auto find_current = [&](std::string_view base,
                                bool want_replica) -> std::string {
    for (core::RegionId id = 0; id < n; ++id) {
      const std::string& name = drt.region_name(id);
      if (rebuild_base(name) == base && is_replica[id] == want_replica) return name;
    }
    return {};
  };

  const std::vector<fault::JournalRegion>& regions = journal_.regions();
  const std::vector<fault::JournalEntry>& journal_entries = journal_.entries();
  tasks_.reserve(regions.size());
  for (std::size_t i = 0; i < regions.size(); ++i) {
    Task task;
    task.new_name = regions[i].name;
    task.widths = regions[i].widths;
    task.length = journal_entries[i].length;
    task.kind = is_replica_name(task.new_name) ? TaskKind::kReplica : TaskKind::kPrimary;
    task.base = std::string(rebuild_base(task.new_name));
    task.old_name = find_current(task.base, task.kind == TaskKind::kReplica);
    if (task.old_name.empty()) {
      return common::Status::corruption("rebuilder: journaled task " + task.new_name +
                                        " matches no live region");
    }
    const std::string source_name =
        task.kind == TaskKind::kPrimary ? task.old_name : find_current(task.base, false);
    auto source = pfs_.open(source_name);
    if (!source.is_ok()) return source.status();
    task.source = *source;
    tasks_.push_back(std::move(task));
  }
  report_.tasks = tasks_.size();
  MHA_RETURN_IF_ERROR(create_dests());

  if (journal_.phase() == fault::JournalPhase::kPlanned ||
      journal_.phase() == fault::JournalPhase::kRegionsCreated) {
    MHA_RETURN_IF_ERROR(journal_.set_phase(fault::JournalPhase::kCopying));
  }
  for (std::size_t s = 0; s < membership_.num_servers(); ++s) {
    if (membership_.state(s) == ServerState::kDead) {
      membership_.set_state(s, ServerState::kRebuilding, now);
    }
  }
  planned_ = true;
  next_issue_ = now;
  if (journal_.phase() == fault::JournalPhase::kCopied) {
    return finish(now);
  }
  return common::Status::ok();  // caller pumps step()/run_to_completion()
}

}  // namespace mha::repair
