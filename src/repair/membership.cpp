#include "repair/membership.hpp"

#include <limits>

namespace mha::repair {

const char* to_string(ServerState state) {
  switch (state) {
    case ServerState::kUp: return "up";
    case ServerState::kSuspect: return "suspect";
    case ServerState::kDead: return "dead";
    case ServerState::kRebuilding: return "rebuilding";
  }
  return "?";
}

Membership::Membership(std::size_t num_servers)
    : states_(num_servers, ServerState::kUp) {}

void Membership::set_state(std::size_t server, ServerState state, common::Seconds now) {
  const ServerState from = states_[server];
  if (from == state) return;
  // Death is permanent: a dead server may oscillate between kDead and
  // kRebuilding (rebuild start/finish) but never regains kUp/kSuspect.
  const bool was_dead = from == ServerState::kDead || from == ServerState::kRebuilding;
  const bool is_dead = state == ServerState::kDead || state == ServerState::kRebuilding;
  if (was_dead && !is_dead) return;
  states_[server] = state;
  if (is_dead && !was_dead) ++dead_count_;
  ++epoch_;
  events_.push_back(MembershipEvent{epoch_, server, from, state, now});
}

void Membership::kill(std::size_t server, common::Seconds now,
                      fault::FaultInjector* injector) {
  if (dead(server)) return;
  if (injector != nullptr) {
    fault::FaultWindow window;
    window.server = server;
    window.kind = fault::FaultKind::kCrash;
    window.start = now;
    window.end = std::numeric_limits<double>::infinity();
    injector->add(window);
  }
  set_state(server, ServerState::kDead, now);
}

void Membership::observe_guard(const guard::OverloadGuard& guard, common::Seconds now) {
  const std::size_t n = std::min(states_.size(), guard.num_servers());
  for (std::size_t s = 0; s < n; ++s) {
    if (dead(s)) continue;
    switch (guard.breaker_state(s)) {
      case guard::BreakerState::kOpen:
        set_state(s, ServerState::kSuspect, now);
        break;
      case guard::BreakerState::kClosed:
        set_state(s, ServerState::kUp, now);
        break;
      case guard::BreakerState::kHalfOpen:
        break;  // the probe decides
    }
  }
}

std::string Membership::table() const {
  std::size_t counts[4] = {0, 0, 0, 0};
  for (const ServerState s : states_) ++counts[static_cast<std::size_t>(s)];
  std::string out = "membership: epoch=" + std::to_string(epoch_);
  out += "  up=" + std::to_string(counts[0]);
  out += " suspect=" + std::to_string(counts[1]);
  out += " dead=" + std::to_string(counts[2]);
  out += " rebuilding=" + std::to_string(counts[3]);
  out += "\n";
  return out;
}

}  // namespace mha::repair
