// Throttled online rebuild after permanent server loss (the repair
// subsystem's write side; membership.hpp is the read side).
//
// kill_server() makes a loss real in both planes: the membership view marks
// the server kDead (request paths start failing over) and the PFS drops
// every extent it stored (the bytes are gone, not merely unreachable — the
// zero-data-loss gates in bench/ext_repair would be vacuous otherwise).
//
// The Rebuilder then re-protects every region the loss orphaned:
//
//   * a region whose *primary* file striped onto the dead server is re-homed
//     into a fresh file ("<region>.rb<epoch>") laid out over the survivors,
//     its content read through the normal failover path (live stripes from
//     the old primary, dead stripes from the replica) — then the DRT's
//     interned name is retargeted in place, so every existing entry follows
//     with no table rewrite;
//   * a region whose *replica* sat on the dead server gets a fresh copy
//     ("<region>.rep<epoch>") on a surviving SServer, re-filled from the
//     primary.
//
// Rebuild is crash-safe and resumable through the same MigrationJournal
// discipline placement uses (plan journaled before any mutation, per-task
// copy progress, commit as the atomic switch), throttled to a configurable
// byte rate on the virtual timeline, and charged to a caller-chosen QoS job
// so the fair-share scheduler can hold it to the lowest tier while
// foreground traffic keeps its p99.
//
// Writes racing the copy are handled at switch time: the redirector marks
// DRT entries dirty on every intercepted write, and the switch re-copies
// every dirty entry's range (idempotent, quiescent instant) before the
// retarget, so a region rebuilt under a live write workload still reads
// back byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/page_cache.hpp"
#include "core/redirector.hpp"
#include "fault/journal.hpp"
#include "pfs/file_system.hpp"
#include "repair/membership.hpp"

namespace mha::repair {

/// Permanent loss in both planes: membership kDead (+ an unbounded injector
/// crash window when one is given) and the server's extent stores wiped.
void kill_server(Membership& membership, pfs::HybridPfs& pfs, std::size_t server,
                 common::Seconds now, fault::FaultInjector* injector = nullptr);

struct RebuildOptions {
  /// Copy granularity (one read + one write per chunk).
  common::ByteCount chunk = 1 * 1024 * 1024;
  /// Throttle: rebuild copy bytes per virtual second (0 = unthrottled).
  /// step(now) only issues chunks whose pacing instant has arrived, so the
  /// rebuild spreads over the foreground workload instead of flooding it.
  double rate = 0.0;
  /// QoS job every rebuild request is charged against (register a batch-tier
  /// job and fair-share holds the rebuild below foreground tenants).
  common::JobId job = common::kDefaultJob;
  /// Client page cache over the original file (borrowed; may be null).  The
  /// switch runs the migration protocol against it: prepare_migration
  /// (flush) over every affected logical range before the retarget,
  /// invalidate after — cached pages never go stale across a rebuild.
  cache::CachedFile* cache = nullptr;
  /// Crash-injection hook, Placer::ApplyOptions::crash_at style.  Points:
  /// "planned", "created", "copying", "copied-task-<i>", "copied",
  /// "switched-task-<i>", "switched".  Returning true aborts there, leaving
  /// exactly the journal state a real crash would; a fresh Rebuilder over
  /// the same journal path resume()s to completion.
  std::function<bool(std::string_view)> crash_at;
};

struct RebuildReport {
  std::size_t tasks = 0;
  std::size_t primaries_rebuilt = 0;
  std::size_t replicas_rebuilt = 0;
  /// Regions with data on a dead server and no surviving copy (unreplicated
  /// cold regions) — genuinely lost; reads over their dead stripes stay
  /// kUnavailable.
  std::size_t lost_regions = 0;
  common::ByteCount bytes_copied = 0;
  /// Dirty-entry ranges re-copied at switch time (writes raced the copy).
  common::ByteCount bytes_recopied = 0;
  common::Seconds finished_at = 0.0;

  std::string table() const;
};

class Rebuilder {
 public:
  /// All references borrowed and must outlive the rebuilder.  `journal_path`
  /// names the MigrationJournal KV file ("" = unjournaled, tests only).
  Rebuilder(pfs::HybridPfs& pfs, core::Redirector& redirector, Membership& membership,
            std::string journal_path, RebuildOptions options = {});

  /// Enumerates orphaned regions/replicas under the current membership view,
  /// journals the plan and creates the destination files.  Fails if the
  /// journal holds an unresolved rebuild (resume() instead).
  common::Status plan(common::Seconds now);

  /// Pumps the throttled copy: issues chunks whose pacing instant is <= now,
  /// and — once every task is copied — runs the switch (dirty re-copy, DRT
  /// retarget, redirector refresh, cache invalidate, journal commit).
  /// Call from a quiescent instant (the replayer's barrier hook).
  common::Status step(common::Seconds now);

  /// plan() (unless already planned) + copy/switch straight through,
  /// honouring pacing only in virtual time.
  common::Status run_to_completion(common::Seconds now);

  /// Rolls a crashed rebuild forward from its journal: re-creates missing
  /// destinations, re-copies unfinished tasks (idempotent), redoes the
  /// switch (already-retargeted names are detected and skipped) and commits.
  common::Status resume(common::Seconds now);

  bool planned() const { return planned_; }
  bool done() const { return done_; }
  /// Pacing instant of the next chunk (copy front; step(now) is a no-op
  /// while now < next_issue()).
  common::Seconds next_issue() const { return next_issue_; }
  const RebuildReport& report() const { return report_; }

 private:
  enum class TaskKind : std::uint8_t { kPrimary = 0, kReplica = 1 };

  struct Task {
    TaskKind kind = TaskKind::kPrimary;
    std::string base;      ///< region base name (suffixes stripped)
    std::string old_name;  ///< file being replaced
    std::string new_name;  ///< "<base>.rb<epoch>" / "<base>.rep<epoch>"
    std::vector<common::ByteCount> widths;  ///< destination layout
    common::ByteCount length = 0;
    common::FileId source = common::kInvalidFileId;  ///< copy source
    common::FileId dest = common::kInvalidFileId;
  };

  common::Status create_dests();
  common::Status copy_pump(common::Seconds now, bool unbounded);
  common::Status finish(common::Seconds now);
  common::Status copy_range(common::FileId source, common::FileId dest,
                            common::Offset offset, common::ByteCount length,
                            common::Seconds& issue);
  /// Surviving SServer for a fresh replica/fallback stripe: lowest index not
  /// dead and (when possible) not already holding primary stripes of `avoid`.
  common::Result<std::size_t> pick_sserver(const std::vector<common::ByteCount>& avoid);
  bool crash(std::string_view point) const {
    return options_.crash_at && options_.crash_at(point);
  }

  pfs::HybridPfs& pfs_;
  core::Redirector& redirector_;
  Membership& membership_;
  std::string journal_path_;
  RebuildOptions options_;
  fault::MigrationJournal journal_;
  std::vector<Task> tasks_;
  RebuildReport report_;
  bool planned_ = false;
  bool done_ = false;
  std::size_t task_index_ = 0;
  bool task_entered_ = false;
  common::ByteCount task_pos_ = 0;
  common::Seconds next_issue_ = 0.0;
  std::vector<std::uint8_t> buffer_;
};

}  // namespace mha::repair
