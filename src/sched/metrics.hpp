// Per-scheduler observability: every dispatch decision a policy makes is
// counted here, and the per-server queue-depth distribution is kept as
// OnlineStats + exact percentiles so straggler pressure shows up in reports
// (mean backlog hides a p99 straggler; the histogram does not).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace mha::sched {

struct SchedulerMetrics {
  /// Dispatch decisions.
  std::uint64_t requests = 0;        ///< file requests dispatched
  std::uint64_t subs = 0;            ///< primary sub-requests charged
  std::uint64_t reorders = 0;        ///< requests moved off arrival order by plan()
  std::uint64_t deferrals = 0;       ///< requests deferred to a window tail by plan()
  std::uint64_t straggler_detections = 0;  ///< subs whose predicted latency broke the EWMA threshold

  /// Hedging outcomes (hedges_issued == hedges_won + hedges_lost).
  std::uint64_t hedges_issued = 0;
  std::uint64_t hedges_won = 0;   ///< replica beat the primary; primary charge cancelled
  std::uint64_t hedges_lost = 0;  ///< primary won; replica charge cancelled

  /// Request latency (dispatch to slowest awaited sub-request), seconds.
  common::OnlineStats request_latency;
  common::Percentiles request_latency_pcts;

  /// Per-server queue depth (seconds of backlog found at dispatch).
  std::vector<common::OnlineStats> server_backlog;
  std::vector<common::Percentiles> server_backlog_pcts;

  void observe_backlog(std::size_t server, double seconds);
  void observe_request(double latency_seconds);

  /// Pre-sizes the percentile stores for `expected_requests` more requests
  /// against `num_servers` servers, so the observe_* calls on the dispatch
  /// hot path never reallocate (additive: safe to call before every replay
  /// that reuses a scheduler).
  void reserve(std::size_t expected_requests, std::size_t num_servers);

  /// stats_table()-style report: decision counters, latency distribution,
  /// one queue-depth row per server.
  std::string table() const;
};

}  // namespace mha::sched
