#include "sched/hedged.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mha::sched {

HedgedReadScheduler::HedgedReadScheduler(HedgedReadOptions options) : options_(options) {}

double HedgedReadScheduler::straggler_threshold() const {
  if (samples_ < options_.warmup_subs) return std::numeric_limits<double>::infinity();
  return srtt_ + options_.straggler_k * rttvar_;
}

void HedgedReadScheduler::update_ewma(double latency) {
  if (samples_ == 0) {
    srtt_ = latency;
    rttvar_ = latency / 2.0;
  } else {
    const double err = latency - srtt_;
    srtt_ += options_.ewma_alpha * err;
    rttvar_ += options_.ewma_beta * (std::abs(err) - rttvar_);
  }
  ++samples_;
}

DispatchResult HedgedReadScheduler::dispatch(const ServerRow& row,
                                             std::span<const sim::SubRequest> subs,
                                             common::Seconds arrival) {
  DispatchResult result;
  result.completion = arrival;
  for (const sim::SubRequest& sub : subs) {
    sim::ServerSim& primary = row.server(sub.server);
    metrics_.observe_backlog(sub.server, primary.backlog(arrival));

    const double predicted = primary.predict(sub.op, sub.bytes, arrival) - arrival;
    const bool hedgeable = sub.op == common::OpType::kRead &&
                           row.is_hserver(sub.server) && row.num_sservers() > 0 &&
                           sub.bytes <= options_.max_hedge_bytes;

    common::Seconds done;
    if (predicted > straggler_threshold() && hedgeable) {
      ++metrics_.straggler_detections;
      // Replica target: the SServer predicting the earliest completion.
      std::size_t replica = row.num_hservers();
      common::Seconds best = std::numeric_limits<double>::infinity();
      for (std::size_t s = row.num_hservers(); s < row.size(); ++s) {
        const common::Seconds t = row.server(s).predict(sub.op, sub.bytes, arrival);
        if (t < best) {
          best = t;
          replica = s;
        }
      }
      const sim::Charge primary_charge = primary.charge(sub.op, sub.bytes, arrival, sub.job);
      const sim::Charge replica_charge =
          row.server(replica).charge(sub.op, sub.bytes, arrival, sub.job);
      ++metrics_.hedges_issued;
      ++result.hedges;
      if (replica_charge.completion < primary_charge.completion) {
        ++metrics_.hedges_won;
        primary.try_cancel(primary_charge);
        done = replica_charge.completion;
      } else {
        ++metrics_.hedges_lost;
        row.server(replica).try_cancel(replica_charge);
        done = primary_charge.completion;
      }
    } else {
      done = primary.submit(sub.op, sub.bytes, arrival, sub.job);
    }

    update_ewma(done - arrival);
    result.completion = std::max(result.completion, done);
    ++result.sub_requests;
  }
  metrics_.subs += result.sub_requests;
  metrics_.observe_request(result.completion - arrival);
  return result;
}

std::unique_ptr<Scheduler> make_hedged_read(HedgedReadOptions options) {
  return std::make_unique<HedgedReadScheduler>(options);
}

}  // namespace mha::sched
