#include "sched/hedged.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mha::sched {

HedgedReadScheduler::HedgedReadScheduler(HedgedReadOptions options) : options_(options) {}

double HedgedReadScheduler::straggler_threshold() const {
  if (samples_ < options_.warmup_subs) return std::numeric_limits<double>::infinity();
  return srtt_ + options_.straggler_k * rttvar_;
}

void HedgedReadScheduler::update_ewma(double latency) {
  if (samples_ == 0) {
    srtt_ = latency;
    rttvar_ = latency / 2.0;
  } else {
    const double err = latency - srtt_;
    srtt_ += options_.ewma_alpha * err;
    rttvar_ += options_.ewma_beta * (std::abs(err) - rttvar_);
  }
  ++samples_;
}

DispatchResult HedgedReadScheduler::dispatch(const ServerRow& row,
                                             std::span<const sim::SubRequest> subs,
                                             common::Seconds arrival) {
  DispatchResult result;
  result.completion = arrival;
  for (const sim::SubRequest& sub : subs) {
    sim::ServerSim& primary = row.server(sub.server);
    metrics_.observe_backlog(sub.server, primary.backlog(arrival));

    const double predicted = primary.predict(sub.op, sub.bytes, arrival) - arrival;
    const bool hedgeable = sub.op == common::OpType::kRead &&
                           row.is_hserver(sub.server) && row.num_sservers() > 0 &&
                           sub.bytes <= options_.max_hedge_bytes;

    common::Seconds done;
    if (predicted > straggler_threshold() && hedgeable) {
      ++metrics_.straggler_detections;
      // Replica target: the SServer predicting the earliest completion.
      // With a guard attached, only closed-breaker replicas qualify — a
      // duplicate aimed at a browned-out server would feed the brownout,
      // and a half-open server's probe budget belongs to real traffic.
      std::size_t replica = DispatchResult::kNoServer;
      common::Seconds best = std::numeric_limits<double>::infinity();
      for (std::size_t s = row.num_hservers(); s < row.size(); ++s) {
        if (guard_ != nullptr && !guard_->breaker_healthy(s)) continue;
        const common::Seconds t = row.server(s).predict(sub.op, sub.bytes, arrival);
        if (t < best) {
          best = t;
          replica = s;
        }
      }
      if (replica == DispatchResult::kNoServer) {
        // Only reachable with a guard: without one every SServer qualifies.
        if (guard_ != nullptr) guard_->note_hedge_suppressed();
        const sim::Charge c = primary.charge(sub.op, sub.bytes, arrival, sub.job);
        result.last_charge = c;
        result.last_server = sub.server;
        done = c.completion;
      } else {
        const sim::Charge primary_charge =
            primary.charge(sub.op, sub.bytes, arrival, sub.job);
        const sim::Charge replica_charge =
            row.server(replica).charge(sub.op, sub.bytes, arrival, sub.job);
        ++metrics_.hedges_issued;
        ++result.hedges;
        if (replica_charge.completion < primary_charge.completion) {
          ++metrics_.hedges_won;
          primary.try_cancel(primary_charge);
          done = replica_charge.completion;
          result.last_charge = replica_charge;
          result.last_server = replica;
        } else {
          ++metrics_.hedges_lost;
          row.server(replica).try_cancel(replica_charge);
          done = primary_charge.completion;
          result.last_charge = primary_charge;
          result.last_server = sub.server;
        }
      }
    } else {
      const sim::Charge c = primary.charge(sub.op, sub.bytes, arrival, sub.job);
      result.last_charge = c;
      result.last_server = sub.server;
      done = c.completion;
    }

    update_ewma(done - arrival);
    result.completion = std::max(result.completion, done);
    ++result.sub_requests;
  }
  metrics_.subs += result.sub_requests;
  metrics_.observe_request(result.completion - arrival);
  return result;
}

std::unique_ptr<Scheduler> make_hedged_read(HedgedReadOptions options) {
  return std::make_unique<HedgedReadScheduler>(options);
}

}  // namespace mha::sched
