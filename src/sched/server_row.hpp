// Non-owning client-side view over a row of server queues.
//
// The scheduler layer works both against a bare sim::ClusterSim (unit tests,
// examples) and against HybridPfs, where each DataServer owns its ServerSim.
// ServerRow is the adapter either side hands to a Scheduler: an ordered list
// of server queues (HServers first, then SServers, matching the paper's
// S0..S5/S6..S7 numbering) that the policies predict against and charge.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/cluster_sim.hpp"
#include "sim/server_sim.hpp"

namespace mha::sched {

class ServerRow {
 public:
  ServerRow() = default;
  ServerRow(std::vector<sim::ServerSim*> servers, std::size_t num_hservers);

  /// Borrows every server of `cluster` (HServers first, as stored).
  static ServerRow from(sim::ClusterSim& cluster);

  std::size_t size() const { return servers_.size(); }
  std::size_t num_hservers() const { return num_hservers_; }
  std::size_t num_sservers() const { return servers_.size() - num_hservers_; }
  bool is_hserver(std::size_t i) const { return i < num_hservers_; }

  sim::ServerSim& server(std::size_t i) const { return *servers_[i]; }

 private:
  std::vector<sim::ServerSim*> servers_;
  std::size_t num_hservers_ = 0;
};

}  // namespace mha::sched
