// Hedged-read policy: duplicate straggler-bound reads to an SServer replica
// and cancel the loser's charge.
//
// The client keeps a TCP-RTO-style estimate of sub-request latency (srtt
// smoothed with alpha, mean deviation with beta).  When a read sub-request's
// predicted completion — queue backlog plus service, exact under virtual
// time — exceeds srtt + k·rttvar, the primary is a straggler: the read is
// also charged to the least-loaded SServer, modelling a replica copy held on
// the SSD tier.  Whichever copy finishes first is the one the request waits
// on; the loser's charge is cancelled (ServerSim::try_cancel), so a lost
// hedge costs nothing in virtual time while a won hedge consumes real SSD
// queue capacity — later arrivals on the replica see its charge.
//
// Writes are never hedged (a duplicate write would fork the replica), and
// requests whose primary already is an SServer are not hedged either — the
// hedge target pool is the SSD tier.  With no SServers in the row the policy
// degrades to FCFS.
#pragma once

#include "guard/guard.hpp"
#include "sched/scheduler.hpp"

namespace mha::sched {

struct HedgedReadOptions {
  /// EWMA smoothing for the latency estimate (TCP-style alpha/beta).
  double ewma_alpha = 0.125;
  double ewma_beta = 0.25;
  /// Hedge when predicted latency > srtt + k * rttvar.
  double straggler_k = 3.0;
  /// Samples required before the threshold is trusted (no hedges earlier).
  std::size_t warmup_subs = 16;
  /// Never duplicate sub-requests larger than this (a huge duplicate would
  /// monopolise the replica tier for a marginal tail win).
  common::ByteCount max_hedge_bytes = 4 * 1024 * 1024;
};

class HedgedReadScheduler : public Scheduler {
 public:
  explicit HedgedReadScheduler(HedgedReadOptions options = {});

  std::string name() const override { return "hedged-read"; }

  using Scheduler::dispatch;
  DispatchResult dispatch(const ServerRow& row, std::span<const sim::SubRequest> subs,
                          common::Seconds arrival) override;

  /// Current hedge trigger (infinite during warmup).
  double straggler_threshold() const;

  /// Attaches an overload guard (borrowed; may be nullptr).  While set,
  /// replica selection skips servers whose breaker is not closed, and a
  /// straggler read with no healthy replica left is not hedged at all —
  /// hedging toward a browned-out server only feeds the brownout.
  void set_guard(guard::OverloadGuard* g) { guard_ = g; }

 private:
  void update_ewma(double latency);

  HedgedReadOptions options_;
  guard::OverloadGuard* guard_ = nullptr;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  std::size_t samples_ = 0;
};

std::unique_ptr<Scheduler> make_hedged_read(HedgedReadOptions options = {});

}  // namespace mha::sched
