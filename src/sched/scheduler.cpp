#include "sched/scheduler.hpp"

#include <numeric>

#include "sched/fcfs.hpp"
#include "sched/hedged.hpp"
#include "sched/load_aware.hpp"

namespace mha::sched {

std::vector<std::size_t> Scheduler::plan(const std::vector<common::Request>& batch) {
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return "fcfs";
    case SchedulerKind::kLoadAware:
      return "load-aware";
    case SchedulerKind::kHedgedRead:
      return "hedged-read";
  }
  return "unknown";
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs:
      return make_fcfs();
    case SchedulerKind::kLoadAware:
      return make_load_aware();
    case SchedulerKind::kHedgedRead:
      return make_hedged_read();
  }
  return make_fcfs();
}

std::vector<SchedulerKind> all_scheduler_kinds() {
  return {SchedulerKind::kFcfs, SchedulerKind::kLoadAware, SchedulerKind::kHedgedRead};
}

}  // namespace mha::sched
