#include "sched/metrics.hpp"

#include <cstdio>

namespace mha::sched {

void SchedulerMetrics::observe_backlog(std::size_t server, double seconds) {
  if (server >= server_backlog.size()) {
    server_backlog.resize(server + 1);
    server_backlog_pcts.resize(server + 1);
  }
  server_backlog[server].add(seconds);
  server_backlog_pcts[server].add(seconds);
}

void SchedulerMetrics::reserve(std::size_t expected_requests, std::size_t num_servers) {
  request_latency_pcts.reserve(request_latency_pcts.count() + expected_requests);
  if (server_backlog.size() < num_servers) {
    server_backlog.resize(num_servers);
    server_backlog_pcts.resize(num_servers);
  }
  for (auto& pcts : server_backlog_pcts) {
    pcts.reserve(pcts.count() + expected_requests);
  }
}

void SchedulerMetrics::observe_request(double latency_seconds) {
  ++requests;
  request_latency.add(latency_seconds);
  request_latency_pcts.add(latency_seconds);
}

std::string SchedulerMetrics::table() const {
  char line[200];
  std::string out;
  std::snprintf(line, sizeof(line),
                "dispatch: requests=%llu subs=%llu reorders=%llu deferrals=%llu "
                "stragglers=%llu\n",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(subs),
                static_cast<unsigned long long>(reorders),
                static_cast<unsigned long long>(deferrals),
                static_cast<unsigned long long>(straggler_detections));
  out += line;
  std::snprintf(line, sizeof(line), "hedges:   issued=%llu won=%llu lost=%llu\n",
                static_cast<unsigned long long>(hedges_issued),
                static_cast<unsigned long long>(hedges_won),
                static_cast<unsigned long long>(hedges_lost));
  out += line;
  std::snprintf(line, sizeof(line),
                "latency:  mean=%.3fms p50=%.3fms p99=%.3fms max=%.3fms\n",
                request_latency.mean() * 1e3, request_latency_pcts.percentile(50) * 1e3,
                request_latency_pcts.percentile(99) * 1e3, request_latency.max() * 1e3);
  out += line;
  out += "server  dispatches  depth-mean(ms) depth-p50(ms) depth-p99(ms) depth-max(ms)\n";
  for (std::size_t i = 0; i < server_backlog.size(); ++i) {
    const auto& s = server_backlog[i];
    std::snprintf(line, sizeof(line), "S%-6zu %-11zu %-14.3f %-13.3f %-13.3f %-13.3f\n", i,
                  s.count(), s.mean() * 1e3, server_backlog_pcts[i].percentile(50) * 1e3,
                  server_backlog_pcts[i].percentile(99) * 1e3, s.max() * 1e3);
    out += line;
  }
  return out;
}

}  // namespace mha::sched
