// Client-side straggler-aware I/O scheduler interface.
//
// A file request completes at its *slowest* sub-request (§II-A), so one
// loaded server stragglers the whole request even under an MHA-optimized
// layout.  Layout and scheduling are complementary levers (Tavakoli et al.,
// "Client-side Straggler-Aware I/O Scheduler"): the layout decides *where*
// bytes live, the scheduler decides *when and against which copy* each
// sub-request is charged.  This layer sits between the PFS client path
// (pfs::HybridPfs, io::MpiFile) and the server queues (sim::ServerSim):
// every read/write dispatch flows through a Scheduler, which may reorder a
// batch (plan()), defer work behind a congestion window, or duplicate a
// read to a replica (HedgedReadScheduler) — and records every decision in
// SchedulerMetrics.
//
// Policies:
//   FcfsScheduler       - submit every sub-request at its arrival time, in
//                         arrival order: exactly the pre-scheduler behavior,
//                         the baseline.
//   LoadAwareScheduler  - windowed shortest-predicted-first ordering of
//                         simultaneous requests plus EWMA straggler flagging
//                         (load_aware.hpp).
//   HedgedReadScheduler - duplicates straggler-bound reads to the fastest
//                         SServer replica and cancels the loser's charge
//                         (hedged.hpp).
#pragma once

#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sched/metrics.hpp"
#include "sched/server_row.hpp"
#include "sim/cluster_sim.hpp"

namespace mha::sched {

/// Outcome of dispatching one file request.
struct DispatchResult {
  common::Seconds completion = 0.0;  ///< when the slowest awaited sub finished
  std::size_t sub_requests = 0;      ///< primary sub-requests charged
  std::size_t hedges = 0;            ///< duplicate sub-requests charged
  /// Receipt of the last charge this dispatch admitted and kept (for a
  /// hedged read, the winning copy).  The guard's deadline machinery
  /// dispatches sub-requests one at a time and collects these so it can
  /// rewind siblings via ServerSim::try_cancel when a request is abandoned.
  /// last_server == kNoServer when nothing was charged.
  static constexpr std::size_t kNoServer = static_cast<std::size_t>(-1);
  sim::Charge last_charge{};
  std::size_t last_server = kNoServer;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Dispatches all sub-requests of one file request arriving at `arrival`
  /// against `row`; returns the request's completion time (the max across
  /// the sub-requests the request must wait on).  Takes a span so hot-path
  /// callers can pass stack arrays / SmallVec scratch without allocating.
  virtual DispatchResult dispatch(const ServerRow& row,
                                  std::span<const sim::SubRequest> subs,
                                  common::Seconds arrival) = 0;

  /// Brace-list convenience for tests and one-off dispatches.
  DispatchResult dispatch(const ServerRow& row,
                          std::initializer_list<sim::SubRequest> subs,
                          common::Seconds arrival) {
    return dispatch(row, std::span<const sim::SubRequest>(subs.begin(), subs.size()),
                    arrival);
  }

  /// Orders a batch of simultaneously-arriving requests before they are
  /// issued (the replayer consults this once per synchronous iteration — the
  /// scheduler's congestion window).  Returns a permutation of
  /// [0, batch.size()); the default is arrival order.
  virtual std::vector<std::size_t> plan(const std::vector<common::Request>& batch);

  const SchedulerMetrics& metrics() const { return metrics_; }
  void reset_metrics() { metrics_ = SchedulerMetrics{}; }

  /// Pre-sizes the metrics' percentile stores so dispatch never reallocates
  /// (the replayer calls this with the trace size before each replay).
  void reserve_metrics(std::size_t expected_requests, std::size_t num_servers) {
    metrics_.reserve(expected_requests, num_servers);
  }

  /// stats_table()-style report of the policy's dispatch decisions.
  std::string stats_table() const { return metrics_.table(); }

 protected:
  SchedulerMetrics metrics_;
};

/// The three shipped policies, in baseline-first order.
enum class SchedulerKind { kFcfs = 0, kLoadAware = 1, kHedgedRead = 2 };

/// Human-readable policy name ("fcfs"/"load-aware"/"hedged-read").
const char* to_string(SchedulerKind kind);

/// Factory with per-policy defaults (see load_aware.hpp / hedged.hpp for
/// tunable construction).
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind);

/// All three policies in presentation order (for scheduler-sweep benches).
std::vector<SchedulerKind> all_scheduler_kinds();

}  // namespace mha::sched
