#include "sched/fcfs.hpp"

#include <algorithm>

namespace mha::sched {

DispatchResult FcfsScheduler::dispatch(const ServerRow& row,
                                       std::span<const sim::SubRequest> subs,
                                       common::Seconds arrival) {
  DispatchResult result;
  result.completion = arrival;
  for (const sim::SubRequest& sub : subs) {
    sim::ServerSim& server = row.server(sub.server);
    metrics_.observe_backlog(sub.server, server.backlog(arrival));
    const sim::Charge c = server.charge(sub.op, sub.bytes, arrival, sub.job);
    result.completion = std::max(result.completion, c.completion);
    result.last_charge = c;
    result.last_server = sub.server;
    ++result.sub_requests;
  }
  metrics_.subs += result.sub_requests;
  metrics_.observe_request(result.completion - arrival);
  return result;
}

std::unique_ptr<Scheduler> make_fcfs() { return std::make_unique<FcfsScheduler>(); }

}  // namespace mha::sched
