#include "sched/server_row.hpp"

#include <cassert>

namespace mha::sched {

ServerRow::ServerRow(std::vector<sim::ServerSim*> servers, std::size_t num_hservers)
    : servers_(std::move(servers)), num_hservers_(num_hservers) {
  assert(num_hservers_ <= servers_.size());
}

ServerRow ServerRow::from(sim::ClusterSim& cluster) {
  std::vector<sim::ServerSim*> servers;
  servers.reserve(cluster.num_servers());
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    servers.push_back(&cluster.server(i));
  }
  return ServerRow(std::move(servers), cluster.num_hservers());
}

}  // namespace mha::sched
