#include "sched/load_aware.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mha::sched {

LoadAwareScheduler::LoadAwareScheduler(LoadAwareOptions options) : options_(options) {}

void LoadAwareScheduler::drain_ledger(common::Seconds now) {
  while (!ledger_.empty() && ledger_.front().completion <= now) {
    std::pop_heap(ledger_.begin(), ledger_.end(), std::greater<>());
    const InFlight& done = ledger_.back();
    outstanding_[done.server] -= done.bytes;
    ledger_.pop_back();
  }
}

void LoadAwareScheduler::update_ewma(common::OpType op, double latency,
                                     common::ByteCount bytes) {
  const auto o = static_cast<std::size_t>(op);
  const double rate = latency / static_cast<double>(bytes);
  if (!rate_init_[o]) {
    rate_[o] = rate;
    rate_init_[o] = true;
    sub_srtt_[o] = latency;
    sub_rttvar_[o] = latency / 2.0;
  } else {
    rate_[o] += options_.ewma_alpha * (rate - rate_[o]);
    const double err = latency - sub_srtt_[o];
    sub_srtt_[o] += options_.ewma_alpha * err;
    sub_rttvar_[o] += options_.ewma_beta * (std::abs(err) - sub_rttvar_[o]);
  }
  ++sub_samples_;
}

double LoadAwareScheduler::predicted_duration(common::OpType op,
                                              common::ByteCount size) const {
  const auto o = static_cast<std::size_t>(op);
  if (!rate_init_[o]) return static_cast<double>(size);
  return rate_[o] * static_cast<double>(size);
}

bool LoadAwareScheduler::straggler(std::size_t server) const {
  return server < flagged_.size() && flagged_[server];
}

common::ByteCount LoadAwareScheduler::outstanding_bytes(std::size_t server) const {
  return server < outstanding_.size() ? outstanding_[server] : 0;
}

DispatchResult LoadAwareScheduler::dispatch(const ServerRow& row,
                                            std::span<const sim::SubRequest> subs,
                                            common::Seconds arrival) {
  if (flagged_.size() < row.size()) {
    flagged_.resize(row.size(), false);
    outstanding_.resize(row.size(), 0);
  }
  drain_ledger(arrival);

  DispatchResult result;
  result.completion = arrival;
  for (const sim::SubRequest& sub : subs) {
    sim::ServerSim& server = row.server(sub.server);
    metrics_.observe_backlog(sub.server, server.backlog(arrival));

    const auto o = static_cast<std::size_t>(sub.op);
    const double predicted = server.predict(sub.op, sub.bytes, arrival) - arrival;
    if (sub_samples_ >= options_.warmup_subs && rate_init_[o]) {
      const bool breach =
          predicted > sub_srtt_[o] + options_.straggler_k * sub_rttvar_[o];
      if (breach) ++metrics_.straggler_detections;
      flagged_[sub.server] = breach;
    }

    const sim::Charge charge = server.charge(sub.op, sub.bytes, arrival, sub.job);
    const common::Seconds done = charge.completion;
    result.last_charge = charge;
    result.last_server = sub.server;
    update_ewma(sub.op, done - arrival, sub.bytes);
    outstanding_[sub.server] += sub.bytes;
    ledger_.push_back({done, sub.server, sub.bytes});
    std::push_heap(ledger_.begin(), ledger_.end(), std::greater<>());

    result.completion = std::max(result.completion, done);
    ++result.sub_requests;
  }
  metrics_.subs += result.sub_requests;

  const double latency = result.completion - arrival;
  metrics_.observe_request(latency);
  if (req_samples_ == 0) {
    req_srtt_ = latency;
    req_rttvar_ = latency / 2.0;
  } else {
    const double err = latency - req_srtt_;
    req_srtt_ += options_.ewma_alpha * err;
    req_rttvar_ += options_.ewma_beta * (std::abs(err) - req_rttvar_);
  }
  ++req_samples_;
  return result;
}

std::vector<std::size_t> LoadAwareScheduler::plan(
    const std::vector<common::Request>& batch) {
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), 0);

  const bool threshold_ready = req_samples_ >= options_.warmup_subs;
  const double threshold = req_srtt_ + options_.straggler_k * req_rttvar_;

  for (std::size_t begin = 0; begin < order.size(); begin += options_.window) {
    const std::size_t end = std::min(begin + options_.window, order.size());
    // Deferred (straggler-bound) requests sort behind every healthy one;
    // inside each class, shortest predicted duration first.
    std::stable_sort(order.begin() + static_cast<std::ptrdiff_t>(begin),
                     order.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](std::size_t a, std::size_t b) {
                       const double da =
                           predicted_duration(batch[a].op, batch[a].size);
                       const double db =
                           predicted_duration(batch[b].op, batch[b].size);
                       const bool defer_a = threshold_ready && da > threshold;
                       const bool defer_b = threshold_ready && db > threshold;
                       if (defer_a != defer_b) return defer_b;
                       return da < db;
                     });
    for (std::size_t i = begin; i < end; ++i) {
      if (order[i] != i) ++metrics_.reorders;
      if (threshold_ready &&
          predicted_duration(batch[order[i]].op, batch[order[i]].size) > threshold) {
        ++metrics_.deferrals;
      }
    }
  }
  return order;
}

std::unique_ptr<Scheduler> make_load_aware(LoadAwareOptions options) {
  return std::make_unique<LoadAwareScheduler>(options);
}

}  // namespace mha::sched
