// Load-aware policy: windowed shortest-predicted-first dispatch with EWMA
// straggler flagging.
//
// The client tracks what it can observe on its own: per-server outstanding
// bytes (its in-flight ledger), per-server backlog (drain time of its own
// completions), and EWMA-smoothed per-byte service latency per op.  Two
// decisions come out of that state:
//
//   1. plan(): simultaneous requests (one synchronous iteration = one
//      congestion window, chunked to `window` requests) are reordered
//      shortest-predicted-duration-first, and requests whose prediction
//      breaks the EWMA straggler threshold are deferred to the window tail.
//      Under per-server FCFS queues this aligns each request's queue
//      position across servers, so short requests stop waiting behind long
//      stragglers — the mean/p99 win on mixed-size workloads.
//   2. dispatch(): each sub-request's predicted latency is checked against
//      the TCP-RTO-style threshold srtt + k·rttvar; breaches flag the target
//      server as a straggler (visible via straggler()) and are counted.
//
// Deferring an already-assigned sub-request cannot make it finish earlier on
// an FCFS queue, so unlike HedgedReadScheduler this policy never touches a
// replica: it only reorders, which keeps it safe for writes.
#pragma once

#include <cstddef>

#include "sched/scheduler.hpp"

namespace mha::sched {

struct LoadAwareOptions {
  /// Congestion window: max simultaneous requests reordered as one group.
  std::size_t window = 64;
  /// EWMA smoothing for latency estimates (TCP-style: alpha for the mean,
  /// beta for the mean deviation).
  double ewma_alpha = 0.125;
  double ewma_beta = 0.25;
  /// Straggler threshold multiplier: predicted > srtt + k * rttvar.
  double straggler_k = 3.0;
  /// Samples required before the threshold is trusted.
  std::size_t warmup_subs = 16;
};

class LoadAwareScheduler : public Scheduler {
 public:
  explicit LoadAwareScheduler(LoadAwareOptions options = {});

  std::string name() const override { return "load-aware"; }

  using Scheduler::dispatch;
  DispatchResult dispatch(const ServerRow& row, std::span<const sim::SubRequest> subs,
                          common::Seconds arrival) override;

  std::vector<std::size_t> plan(const std::vector<common::Request>& batch) override;

  /// Predicted duration of a `size`-byte request under the current EWMA
  /// per-byte rate (plan()'s sort key; falls back to `size` pre-warmup,
  /// which preserves the shortest-first order).
  double predicted_duration(common::OpType op, common::ByteCount size) const;

  /// True while `server` was last seen over the straggler threshold.
  bool straggler(std::size_t server) const;

  /// Client-side ledger of bytes dispatched to `server` and not yet
  /// completed as of the most recent dispatch.
  common::ByteCount outstanding_bytes(std::size_t server) const;

 private:
  struct InFlight {
    common::Seconds completion;
    std::size_t server;
    common::ByteCount bytes;
    bool operator>(const InFlight& o) const { return completion > o.completion; }
  };

  void drain_ledger(common::Seconds now);
  void update_ewma(common::OpType op, double latency, common::ByteCount bytes);

  LoadAwareOptions options_;
  /// Per-op EWMA of observed per-byte sub-request latency (seconds/byte).
  double rate_[2] = {0.0, 0.0};
  bool rate_init_[2] = {false, false};
  /// Per-op sub-request latency estimator (srtt/rttvar, TCP-style).
  double sub_srtt_[2] = {0.0, 0.0};
  double sub_rttvar_[2] = {0.0, 0.0};
  std::size_t sub_samples_ = 0;
  /// Request-level latency estimator (plan()'s deferral threshold).
  double req_srtt_ = 0.0;
  double req_rttvar_ = 0.0;
  std::size_t req_samples_ = 0;
  std::vector<bool> flagged_;
  std::vector<common::ByteCount> outstanding_;
  std::vector<InFlight> ledger_;  // min-heap on completion
};

std::unique_ptr<Scheduler> make_load_aware(LoadAwareOptions options = {});

}  // namespace mha::sched
