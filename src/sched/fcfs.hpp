// The baseline policy: first-come-first-served, no look-ahead.
//
// Every sub-request is submitted at its arrival time in arrival order —
// bit-for-bit the dispatch the PFS performed before the scheduler layer
// existed, so FCFS doubles as the regression oracle for the wiring (see
// tests/sched_test.cpp FcfsMatchesDirectSubmit).
#pragma once

#include "sched/scheduler.hpp"

namespace mha::sched {

class FcfsScheduler : public Scheduler {
 public:
  std::string name() const override { return "fcfs"; }

  using Scheduler::dispatch;
  DispatchResult dispatch(const ServerRow& row, std::span<const sim::SubRequest> subs,
                          common::Seconds arrival) override;
};

std::unique_ptr<Scheduler> make_fcfs();

}  // namespace mha::sched
