#include "io/tracer.hpp"

namespace mha::io {

void Tracer::record(int rank, int fd, common::OpType op, common::Offset offset,
                    common::ByteCount size, common::Seconds t_start,
                    common::Seconds duration) {
  trace::TraceRecord r;
  r.pid = static_cast<std::uint32_t>(1000 + rank);  // synthetic pid per rank
  r.rank = rank;
  r.fd = fd;
  r.op = op;
  r.offset = offset;
  r.size = size;
  r.t_start = t_start;
  r.duration = duration;
  trace_.records.push_back(r);
}

}  // namespace mha::io
