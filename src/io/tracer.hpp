// The I/O Collector of MHA's tracing phase (IOSIG substitute).
//
// Hooks into MpiFile and records one TraceRecord per read/write with the
// fields of §III-C.  The paper reports 2-6% online profiling overhead; the
// simulator charges a configurable per-op overhead so the tracing phase is
// visible in end-to-end timings too.
#pragma once

#include <string>

#include "common/types.hpp"
#include "trace/record.hpp"

namespace mha::io {

class Tracer {
 public:
  explicit Tracer(std::string file_name, common::Seconds per_op_overhead = 0.0)
      : per_op_overhead_(per_op_overhead) {
    trace_.file_name = std::move(file_name);
  }

  /// Called by the middleware on every file operation.
  void record(int rank, int fd, common::OpType op, common::Offset offset,
              common::ByteCount size, common::Seconds t_start, common::Seconds duration);

  /// Virtual seconds the instrumentation adds to each traced op.
  common::Seconds per_op_overhead() const { return per_op_overhead_; }

  const trace::Trace& trace() const { return trace_; }
  trace::Trace take_trace() { return std::move(trace_); }
  std::size_t num_records() const { return trace_.records.size(); }
  void clear() { trace_.records.clear(); }

 private:
  trace::Trace trace_;
  common::Seconds per_op_overhead_ = 0.0;
};

}  // namespace mha::io
