// MpiSim is header-only; this TU anchors the library target.
#include "io/mpi_sim.hpp"
