#include "io/collective.hpp"

#include <algorithm>
#include <map>

namespace mha::io {

namespace {

struct Domain {
  common::Offset begin = 0;
  common::Offset end = 0;
  common::ByteCount shuffle_bytes = 0;
  std::size_t senders = 0;
  // Merged extents of request pieces inside the domain.
  std::map<common::Offset, common::Offset> extents;  // begin -> end

  void add_piece(common::Offset piece_begin, common::Offset piece_end) {
    shuffle_bytes += piece_end - piece_begin;
    // Merge into the extent map.
    auto it = extents.upper_bound(piece_begin);
    if (it != extents.begin() && std::prev(it)->second >= piece_begin) {
      --it;
      piece_begin = it->first;
      piece_end = std::max(piece_end, it->second);
      it = extents.erase(it);
    }
    while (it != extents.end() && it->first <= piece_end) {
      piece_end = std::max(piece_end, it->second);
      it = extents.erase(it);
    }
    extents.emplace(piece_begin, piece_end);
  }
};

common::Result<CollectiveResult> run_collective(
    pfs::HybridPfs& pfs, MpiSim& mpi, common::FileId file, common::OpType op,
    const std::vector<CollectiveRequest>& requests,
    const std::vector<std::vector<std::uint8_t>>* payloads,
    std::vector<std::vector<std::uint8_t>>* out, const CollectiveOptions& options) {
  if (requests.empty()) {
    return common::Status::invalid_argument("collective: empty request batch");
  }
  if (file >= pfs.mds().file_count()) {
    return common::Status::out_of_range("collective: bad file id");
  }
  if (payloads != nullptr && payloads->size() != requests.size()) {
    return common::Status::invalid_argument("collective: payloads misaligned");
  }
  for (const CollectiveRequest& r : requests) {
    if (r.rank < 0 || r.rank >= mpi.world_size()) {
      return common::Status::invalid_argument("collective: rank out of range");
    }
  }

  // Collective entry: everybody synchronises.
  mpi.barrier();
  CollectiveResult result;
  result.start = mpi.max_time();

  // Aggregate extent and file-domain partition (stripe-cycle aligned).
  common::Offset lo = ~common::Offset{0};
  common::Offset hi = 0;
  for (const CollectiveRequest& r : requests) {
    if (r.size == 0) continue;
    lo = std::min(lo, r.offset);
    hi = std::max(hi, r.offset + r.size);
  }
  if (hi <= lo) {  // all requests empty
    result.completion = result.start;
    return result;
  }
  const std::size_t world = static_cast<std::size_t>(mpi.world_size());
  std::size_t num_aggregators =
      options.aggregators > 0 ? static_cast<std::size_t>(options.aggregators)
                              : std::min(world, pfs.num_servers());
  num_aggregators = std::max<std::size_t>(num_aggregators, 1);

  const common::ByteCount cycle = pfs.mds().info(file).layout.cycle_width();
  common::ByteCount domain_size = (hi - lo + num_aggregators - 1) / num_aggregators;
  domain_size = std::max<common::ByteCount>((domain_size + cycle - 1) / cycle * cycle, cycle);
  num_aggregators = (hi - lo + domain_size - 1) / domain_size;

  std::vector<Domain> domains(num_aggregators);
  for (std::size_t a = 0; a < num_aggregators; ++a) {
    domains[a].begin = lo + a * domain_size;
    domains[a].end = std::min<common::Offset>(hi, lo + (a + 1) * domain_size);
  }

  // Phase 1 bookkeeping: split every request across the owning domains and
  // (byte-accurate mode) land its payload in the file's byte store now —
  // the timing is charged by the aggregated phase-2 submissions below.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const CollectiveRequest& r = requests[i];
    if (r.size == 0) continue;
    const common::Offset r_end = r.offset + r.size;
    const std::size_t first = (r.offset - lo) / domain_size;
    const std::size_t last = (r_end - 1 - lo) / domain_size;
    for (std::size_t a = first; a <= last && a < num_aggregators; ++a) {
      const common::Offset piece_begin = std::max(r.offset, domains[a].begin);
      const common::Offset piece_end = std::min<common::Offset>(r_end, domains[a].end);
      if (piece_begin >= piece_end) continue;
      domains[a].add_piece(piece_begin, piece_end);
      ++domains[a].senders;
    }
  }

  // Data movement (bytes only; timing handled as aggregate below).
  const pfs::StripeLayout& layout = pfs.mds().info(file).layout;
  if (op == common::OpType::kWrite) {
    std::vector<std::uint8_t> zero;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const CollectiveRequest& r = requests[i];
      if (r.size == 0) continue;
      const std::uint8_t* data;
      if (payloads != nullptr) {
        data = (*payloads)[i].data();
        if ((*payloads)[i].size() != r.size) {
          return common::Status::invalid_argument("collective: payload size mismatch");
        }
      } else {
        zero.assign(r.size, 0);
        data = zero.data();
      }
      for (const pfs::SubExtent& sub : layout.map_extent(r.offset, r.size)) {
        pfs.data_server(sub.server)
            .store(file, sub.physical_offset, data + (sub.logical_offset - r.offset),
                   sub.length);
      }
      pfs.mds().extend(file, r.offset + r.size);
    }
  }

  // Phase 1 + 2 timing, per aggregator, all in parallel from the barrier.
  common::Seconds completion = result.start;
  double worst_shuffle = 0.0;
  for (const Domain& domain : domains) {
    if (domain.extents.empty()) continue;
    ++result.aggregators_used;
    const common::Seconds shuffle =
        options.shuffle_latency +
        options.shuffle_per_message * static_cast<double>(domain.senders) +
        options.shuffle_per_byte * static_cast<double>(domain.shuffle_bytes);
    worst_shuffle = std::max(worst_shuffle, shuffle);
    common::Seconds arrival = result.start + shuffle;
    for (const auto& [begin, end] : domain.extents) {
      // Aggregated contiguous file request; timing only (bytes moved above).
      common::ByteCount per_server_total = end - begin;
      std::vector<common::ByteCount> per_server(pfs.num_servers(), 0);
      for (const pfs::SubExtent& sub : layout.map_extent(begin, per_server_total)) {
        per_server[sub.server] += sub.length;
      }
      for (std::size_t s = 0; s < per_server.size(); ++s) {
        if (per_server[s] == 0) continue;
        const common::Seconds done =
            pfs.data_server(s).sim().submit(op, per_server[s], arrival);
        completion = std::max(completion, done);
      }
      ++result.file_requests;
    }
  }
  result.shuffle_time = worst_shuffle;

  // Reads: gather the requested bytes after the file phase.
  if (op == common::OpType::kRead && out != nullptr) {
    out->clear();
    out->reserve(requests.size());
    for (const CollectiveRequest& r : requests) {
      std::vector<std::uint8_t> buffer(r.size);
      for (const pfs::SubExtent& sub : layout.map_extent(r.offset, r.size)) {
        pfs.data_server(sub.server)
            .load(file, sub.physical_offset, buffer.data() + (sub.logical_offset - r.offset),
                  sub.length);
      }
      out->push_back(std::move(buffer));
    }
  }

  // Collective exit: everyone leaves together (reverse shuffle for reads is
  // folded into the same shuffle bound).
  result.completion = completion + (op == common::OpType::kRead ? worst_shuffle : 0.0);
  for (int rank = 0; rank < mpi.world_size(); ++rank) mpi.advance(rank, result.completion);
  return result;
}

}  // namespace

common::Result<CollectiveResult> collective_write(
    pfs::HybridPfs& pfs, MpiSim& mpi, common::FileId file,
    const std::vector<CollectiveRequest>& requests,
    const std::vector<std::vector<std::uint8_t>>* payloads,
    const CollectiveOptions& options) {
  return run_collective(pfs, mpi, file, common::OpType::kWrite, requests, payloads, nullptr,
                        options);
}

common::Result<CollectiveResult> collective_read(
    pfs::HybridPfs& pfs, MpiSim& mpi, common::FileId file,
    const std::vector<CollectiveRequest>& requests,
    std::vector<std::vector<std::uint8_t>>* out, const CollectiveOptions& options) {
  return run_collective(pfs, mpi, file, common::OpType::kRead, requests, nullptr, out,
                        options);
}

}  // namespace mha::io
