// A miniature MPI execution model for the simulated clients.
//
// Real MHA interposes on MPICH2's MPI-IO.  Here, "processes" are ranks with
// independent virtual clocks; collective barriers synchronise them to the
// slowest rank, reproducing the synchronous-I/O phase structure of IOR,
// BTIO and the traced applications.  All parallelism is explicit, in the
// message-passing spirit: no shared mutable state between ranks other than
// the file system they target.
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/types.hpp"

namespace mha::io {

class MpiSim {
 public:
  explicit MpiSim(int world_size) : clocks_(static_cast<std::size_t>(world_size), 0.0) {
    assert(world_size > 0);
  }

  int world_size() const { return static_cast<int>(clocks_.size()); }

  common::Seconds now(int rank) const { return clocks_[index(rank)]; }

  /// Moves a rank's clock forward to `t` (no-op if already past it).
  void advance(int rank, common::Seconds t) {
    auto& clock = clocks_[index(rank)];
    clock = std::max(clock, t);
  }

  /// Adds `dt` to a rank's clock (local computation time).
  void elapse(int rank, common::Seconds dt) { clocks_[index(rank)] += dt; }

  /// MPI_Barrier: every rank leaves at the time the slowest one arrived.
  void barrier() {
    const common::Seconds t = max_time();
    for (auto& clock : clocks_) clock = t;
  }

  /// Time of the furthest-ahead rank (job makespan so far).
  common::Seconds max_time() const {
    return *std::max_element(clocks_.begin(), clocks_.end());
  }

  /// Resets every rank's clock to zero.
  void reset() { std::fill(clocks_.begin(), clocks_.end(), 0.0); }

 private:
  std::size_t index(int rank) const {
    assert(rank >= 0 && rank < world_size());
    return static_cast<std::size_t>(rank);
  }

  std::vector<common::Seconds> clocks_;
};

}  // namespace mha::io
