#include "io/mpi_file.hpp"

#include <algorithm>

namespace mha::io {

common::Result<MpiFile> MpiFile::open(pfs::HybridPfs& pfs, MpiSim& mpi,
                                      const std::string& name) {
  auto id = pfs.open(name);
  if (!id.is_ok()) return id.status();
  return MpiFile(pfs, mpi, name, *id);
}

common::Result<OpResult> MpiFile::do_op(int rank, common::OpType op, common::Offset offset,
                                        std::uint8_t* read_out, const std::uint8_t* write_data,
                                        common::ByteCount size) {
  OpResult result;
  result.start = mpi_->now(rank);
  common::Seconds issue = result.start;
  if (tracer_ != nullptr) issue += tracer_->per_op_overhead();

  // Translate through the interceptor (identity when none is attached) into
  // the handle's reused scratch — no per-request allocation.
  segments_.clear();
  if (interceptor_ != nullptr) {
    issue += interceptor_->lookup_overhead();
    interceptor_->translate(offset, size, segments_);
    if (op == common::OpType::kWrite) interceptor_->note_write(offset, size);
  } else {
    segments_.push_back(RedirectSegment{file_, offset, size, offset});
  }

  common::Seconds completion = issue;
  for (const RedirectSegment& seg : segments_) {
    common::Result<pfs::IoResult> io =
        op == common::OpType::kRead
            ? pfs_->read(seg.file, seg.offset, read_out + (seg.logical_offset - offset),
                         seg.length, issue)
            : pfs_->write(seg.file, seg.offset, write_data + (seg.logical_offset - offset),
                          seg.length, issue);
    if (!io.is_ok()) return io.status();
    completion = std::max(completion, io->completion);
  }
  result.completion = completion;
  mpi_->advance(rank, completion);

  if (tracer_ != nullptr) {
    tracer_->record(rank, next_fd_, op, offset, size, result.start,
                    completion - result.start);
  }
  return result;
}

common::Result<OpResult> MpiFile::read_at(int rank, common::Offset offset, std::uint8_t* out,
                                          common::ByteCount size) {
  return do_op(rank, common::OpType::kRead, offset, out, nullptr, size);
}

common::Result<OpResult> MpiFile::write_at(int rank, common::Offset offset,
                                           const std::uint8_t* data, common::ByteCount size) {
  return do_op(rank, common::OpType::kWrite, offset, nullptr, data, size);
}

common::Result<OpResult> MpiFile::write_at(int rank, common::Offset offset,
                                           const std::vector<std::uint8_t>& data) {
  return write_at(rank, offset, data.data(), data.size());
}

common::Result<std::vector<std::uint8_t>> MpiFile::read_vec(int rank, common::Offset offset,
                                                            common::ByteCount size) {
  std::vector<std::uint8_t> out(size);
  auto r = read_at(rank, offset, out.data(), size);
  if (!r.is_ok()) return r.status();
  return out;
}

}  // namespace mha::io
