#include "io/mpi_file.hpp"

#include <algorithm>

namespace mha::io {

common::Result<MpiFile> MpiFile::open(pfs::HybridPfs& pfs, MpiSim& mpi,
                                      const std::string& name) {
  auto id = pfs.open(name);
  if (!id.is_ok()) return id.status();
  return MpiFile(pfs, mpi, name, *id);
}

common::Result<OpResult> MpiFile::do_op(int rank, common::OpType op, common::Offset offset,
                                        std::uint8_t* read_out, const std::uint8_t* write_data,
                                        common::ByteCount size) {
  OpResult result;
  result.start = mpi_->now(rank);
  common::Seconds issue = result.start;
  if (tracer_ != nullptr) issue += tracer_->per_op_overhead();

  // Translate through the interceptor (identity when none is attached) into
  // the handle's reused scratch — no per-request allocation.
  segments_.clear();
  if (interceptor_ != nullptr) {
    issue += interceptor_->lookup_overhead();
    interceptor_->translate(offset, size, segments_);
    if (op == common::OpType::kWrite) interceptor_->note_write(offset, size);
  } else {
    segments_.push_back(RedirectSegment{file_, offset, size, offset});
  }

  common::Seconds completion = issue;
  for (const RedirectSegment& seg : segments_) {
    common::Result<pfs::IoResult> io =
        op == common::OpType::kRead
            ? pfs_->read(seg.file, seg.offset, read_out + (seg.logical_offset - offset),
                         seg.length, issue)
            : pfs_->write(seg.file, seg.offset, write_data + (seg.logical_offset - offset),
                          seg.length, issue);
    if (!io.is_ok()) return io.status();
    completion = std::max(completion, io->completion);
  }
  result.completion = completion;
  mpi_->advance(rank, completion);

  if (tracer_ != nullptr) {
    tracer_->record(rank, next_fd_, op, offset, size, result.start,
                    completion - result.start);
  }
  return result;
}

void MpiFile::do_op_batch(common::OpType op, std::span<const BatchOp> ops,
                          BatchOutcomeVec& results) {
  results.clear();
  results.resize(ops.size());
  if (ops.empty()) return;

  // Client timeline per op, exactly as do_op charges it: start at the
  // rank's current clock, then tracer + redirection overheads.  Ranks are
  // distinct (see BatchOp), so no op's issue time depends on another's
  // completion — the same independence the serial loop has within one
  // synchronous iteration.
  batch_issue_.clear();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    common::Seconds issue = mpi_->now(ops[i].rank);
    results[i].op.start = issue;
    if (tracer_ != nullptr) issue += tracer_->per_op_overhead();
    if (interceptor_ != nullptr) issue += interceptor_->lookup_overhead();
    batch_issue_.push_back(issue);
  }

  // Translate in ascending-offset order under one shared cursor so each
  // lookup resumes where the previous one ended (the DRT sequential-hint
  // path); the per-op segment lists land in a flat store addressed by op
  // index, so the pfs batch below is still assembled in op order.
  batch_order_.clear();
  for (std::uint32_t i = 0; i < ops.size(); ++i) batch_order_.push_back(i);
  std::sort(batch_order_.begin(), batch_order_.end(),
            [&ops](std::uint32_t a, std::uint32_t b) {
              if (ops[a].offset != ops[b].offset) return ops[a].offset < ops[b].offset;
              return a < b;
            });
  seg_store_.clear();
  seg_range_.resize(ops.size());
  TranslateCursor cursor;
  for (const std::uint32_t idx : batch_order_) {
    const BatchOp& o = ops[idx];
    segments_.clear();
    if (interceptor_ != nullptr) {
      interceptor_->translate(o.offset, o.size, segments_, cursor);
      if (op == common::OpType::kWrite) interceptor_->note_write(o.offset, o.size);
    } else {
      segments_.push_back(RedirectSegment{file_, o.offset, o.size, o.offset});
    }
    seg_range_[idx] = {static_cast<std::uint32_t>(seg_store_.size()),
                       static_cast<std::uint32_t>(segments_.size())};
    for (const RedirectSegment& seg : segments_) seg_store_.push_back(seg);
  }

  // One pfs batch for every segment of every op, grouped by op index so a
  // failing segment skips its later siblings exactly like the serial loop
  // returning at the first failure.
  batch_reqs_.clear();
  for (std::uint32_t i = 0; i < ops.size(); ++i) {
    const BatchOp& o = ops[i];
    const auto [begin, count] = seg_range_[i];
    for (std::uint32_t k = begin; k < begin + count; ++k) {
      const RedirectSegment& seg = seg_store_[k];
      const common::Offset into = seg.logical_offset - o.offset;
      batch_reqs_.push_back(pfs::BatchRequest{
          seg.file, seg.offset, seg.length,
          o.read_out != nullptr ? o.read_out + into : nullptr,
          o.write_data != nullptr ? o.write_data + into : nullptr, batch_issue_[i],
          o.job, o.deadline, i});
    }
  }
  if (op == common::OpType::kRead) {
    pfs_->read_batch(std::span<const pfs::BatchRequest>(batch_reqs_.data(),
                                                        batch_reqs_.size()),
                     batch_results_);
  } else {
    pfs_->write_batch(std::span<const pfs::BatchRequest>(batch_reqs_.data(),
                                                         batch_reqs_.size()),
                      batch_results_);
  }

  // Fold segment outcomes back per op: first failing segment's Status wins
  // and the rank's clock stays put; a fully successful op advances its rank
  // and is traced, both identical to the serial path.
  std::size_t k = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const BatchOp& o = ops[i];
    const std::uint32_t count = seg_range_[i].second;
    common::Seconds completion = batch_issue_[i];
    common::Status status;
    for (std::uint32_t m = 0; m < count; ++m, ++k) {
      const pfs::BatchOpResult& res = batch_results_[k];
      if (status.is_ok() && !res.skipped && !res.status.is_ok()) {
        status = res.status;
      }
      if (status.is_ok()) {
        completion = std::max(completion, res.io.completion);
      }
    }
    if (!status.is_ok()) {
      results[i].status = status;
      continue;
    }
    results[i].op.completion = completion;
    mpi_->advance(o.rank, completion);
    if (tracer_ != nullptr) {
      tracer_->record(o.rank, next_fd_, op, o.offset, o.size, results[i].op.start,
                      completion - results[i].op.start);
    }
  }
}

void MpiFile::dispatch_bulk(common::OpType op, std::span<const BulkOp> ops,
                            common::Seconds issue, BulkOutcomeVec& results) {
  results.clear();
  results.resize(ops.size());
  if (ops.empty()) return;

  // One client, one instant: every op issues at `issue` plus its own
  // redirection lookup (the same per-request charge do_op makes — batching
  // saves server round trips, not table consultations).
  const common::Seconds lookup =
      interceptor_ != nullptr ? interceptor_->lookup_overhead() : 0.0;
  const common::Seconds op_issue = issue + lookup;

  // Translate in ascending-offset order under one shared cursor (callers
  // usually pass offset-sorted runs; sorting here keeps the DRT gallop path
  // engaged either way), landing per-op segments in the flat store.
  batch_order_.clear();
  for (std::uint32_t i = 0; i < ops.size(); ++i) batch_order_.push_back(i);
  std::sort(batch_order_.begin(), batch_order_.end(),
            [&ops](std::uint32_t a, std::uint32_t b) {
              if (ops[a].offset != ops[b].offset) return ops[a].offset < ops[b].offset;
              return a < b;
            });
  seg_store_.clear();
  seg_range_.resize(ops.size());
  TranslateCursor cursor;
  for (const std::uint32_t idx : batch_order_) {
    const BulkOp& o = ops[idx];
    segments_.clear();
    if (interceptor_ != nullptr) {
      interceptor_->translate(o.offset, o.size, segments_, cursor);
      if (op == common::OpType::kWrite) interceptor_->note_write(o.offset, o.size);
    } else {
      segments_.push_back(RedirectSegment{file_, o.offset, o.size, o.offset});
    }
    seg_range_[idx] = {static_cast<std::uint32_t>(seg_store_.size()),
                       static_cast<std::uint32_t>(segments_.size())};
    for (const RedirectSegment& seg : segments_) seg_store_.push_back(seg);
  }

  batch_reqs_.clear();
  for (std::uint32_t i = 0; i < ops.size(); ++i) {
    const BulkOp& o = ops[i];
    const auto [begin, count] = seg_range_[i];
    for (std::uint32_t k = begin; k < begin + count; ++k) {
      const RedirectSegment& seg = seg_store_[k];
      const common::Offset into = seg.logical_offset - o.offset;
      batch_reqs_.push_back(pfs::BatchRequest{
          seg.file, seg.offset, seg.length,
          o.read_out != nullptr ? o.read_out + into : nullptr,
          o.write_data != nullptr ? o.write_data + into : nullptr, op_issue, o.job,
          o.deadline, i});
    }
  }
  if (op == common::OpType::kRead) {
    pfs_->read_batch(std::span<const pfs::BatchRequest>(batch_reqs_.data(),
                                                        batch_reqs_.size()),
                     batch_results_);
  } else {
    pfs_->write_batch(std::span<const pfs::BatchRequest>(batch_reqs_.data(),
                                                         batch_reqs_.size()),
                      batch_results_);
  }

  // Fold per op: first failing segment's Status wins (later siblings were
  // group-skipped by the pfs layer), successful ops report the slowest
  // segment's completion.
  std::size_t k = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const std::uint32_t count = seg_range_[i].second;
    common::Seconds completion = op_issue;
    common::Status status;
    for (std::uint32_t m = 0; m < count; ++m, ++k) {
      const pfs::BatchOpResult& res = batch_results_[k];
      if (status.is_ok() && !res.skipped && !res.status.is_ok()) status = res.status;
      if (status.is_ok()) completion = std::max(completion, res.io.completion);
    }
    results[i].status = status;
    results[i].completion = status.is_ok() ? completion : op_issue;
  }
}

void MpiFile::read_at_batch(std::span<const BatchOp> ops, BatchOutcomeVec& results) {
  do_op_batch(common::OpType::kRead, ops, results);
}

void MpiFile::write_at_batch(std::span<const BatchOp> ops, BatchOutcomeVec& results) {
  do_op_batch(common::OpType::kWrite, ops, results);
}

common::Result<OpResult> MpiFile::read_at(int rank, common::Offset offset, std::uint8_t* out,
                                          common::ByteCount size) {
  return do_op(rank, common::OpType::kRead, offset, out, nullptr, size);
}

common::Result<OpResult> MpiFile::write_at(int rank, common::Offset offset,
                                           const std::uint8_t* data, common::ByteCount size) {
  return do_op(rank, common::OpType::kWrite, offset, nullptr, data, size);
}

common::Result<OpResult> MpiFile::write_at(int rank, common::Offset offset,
                                           const std::vector<std::uint8_t>& data) {
  return write_at(rank, offset, data.data(), data.size());
}

common::Result<std::vector<std::uint8_t>> MpiFile::read_vec(int rank, common::Offset offset,
                                                            common::ByteCount size) {
  std::vector<std::uint8_t> out(size);
  auto r = read_at(rank, offset, out.data(), size);
  if (!r.is_ok()) return r.status();
  return out;
}

}  // namespace mha::io
