// MPI-IO-like file handle with the two interposition points MHA needs.
//
// Mirrors the paper's implementation (§IV-B): the modified MPI library loads
// the DRT at MPI_Init and consults it inside MPI_File_read/write so requests
// are "atomically forwarded to the alternative file servers".  Here the DRT
// consultation is abstracted as an IoInterceptor so the middleware does not
// depend on the MHA core; the core's Redirector implements it.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "io/mpi_sim.hpp"
#include "io/tracer.hpp"
#include "pfs/file_system.hpp"

namespace mha::io {

/// One physical piece a logical request was translated into.
struct RedirectSegment {
  common::FileId file = common::kInvalidFileId;
  common::Offset offset = 0;      ///< offset in the target file
  common::ByteCount length = 0;
  common::Offset logical_offset = 0;  ///< where this piece sits in the request

  friend bool operator==(const RedirectSegment&, const RedirectSegment&) = default;
};

/// Caller-owned translation scratch: inline room for the common request
/// widths, heap spill (retained across clear) beyond that — a reused buffer
/// makes translation allocation-free in steady state.
using SegmentList = common::SmallVec<RedirectSegment, 8>;

/// Opaque resume position threaded through the translations of one batch.
/// A batch translated in ascending-offset order with one shared cursor lets
/// a table-backed interceptor resume each lookup where the previous one
/// ended (the Drt sequential-hint path) instead of binary-searching from
/// scratch per request.  Value-semantic and cheap; a stale cursor is only a
/// cache miss, never a correctness problem.
struct TranslateCursor {
  std::size_t index = 0;
};

/// Translates logical extents of the original file into physical segments.
/// The default behaviour (no interceptor) is the identity mapping onto the
/// original file.
class IoInterceptor {
 public:
  virtual ~IoInterceptor() = default;

  /// Splits [offset, offset+size) into target segments covering it exactly,
  /// in ascending logical order, appending into the caller's scratch
  /// (cleared first).
  virtual void translate(common::Offset offset, common::ByteCount size,
                         SegmentList& out) = 0;

  /// Cursor-carrying variant used by the batched path.  Interceptors that
  /// can exploit positional locality override this (core::Redirector maps
  /// the cursor onto Drt::LookupCursor); the default ignores the cursor.
  virtual void translate(common::Offset offset, common::ByteCount size, SegmentList& out,
                         TranslateCursor& cursor) {
    (void)cursor;
    translate(offset, size, out);
  }

  /// Convenience wrapper (tests / cold paths): translate into a fresh list.
  SegmentList translate(common::Offset offset, common::ByteCount size) {
    SegmentList out;
    translate(offset, size, out);
    return out;
  }

  /// Virtual seconds of lookup cost charged per translated request (the
  /// paper's "redirection phase" overhead, Fig. 14).
  virtual common::Seconds lookup_overhead() const { return 0.0; }

  /// Notifies the interceptor that [offset, offset+size) of the original
  /// file was overwritten through this handle.  The MHA redirector uses this
  /// to mark DRT entries dirty: once a region copy diverges from the
  /// original, the scrubber must not "repair" the region from the stale
  /// origin bytes.  Default: no-op (identity mapping has no second copy).
  virtual void note_write(common::Offset offset, common::ByteCount size) {
    (void)offset;
    (void)size;
  }

  /// Human-readable placement of one logical offset ("region <name> @<off>"
  /// or "passthrough @<off>"), for verification-failure diagnostics.  Cold
  /// path only; default: empty (no mapping attached).
  virtual std::string locate(common::Offset offset) const {
    (void)offset;
    return std::string();
  }
};

/// Per-op result at the middleware layer.
struct OpResult {
  common::Seconds start = 0.0;
  common::Seconds completion = 0.0;
  common::Seconds duration() const { return completion - start; }
};

/// One logical request of a collective batch (read_at_batch /
/// write_at_batch).  All ops of one batch MUST target distinct ranks — each
/// rank's clock is read once at batch start and advanced once at the end,
/// so two ops on the same rank would both issue at the same instant instead
/// of serializing (the replayer enforces this by splitting its per-iteration
/// plan into distinct-rank runs).
struct BatchOp {
  int rank = 0;
  common::Offset offset = 0;
  common::ByteCount size = 0;
  std::uint8_t* read_out = nullptr;         ///< read_at_batch destination
  const std::uint8_t* write_data = nullptr; ///< write_at_batch payload
  common::JobId job = common::kDefaultJob;
  common::Seconds deadline = std::numeric_limits<double>::infinity();
};

/// Per-op outcome of a batched call, index-parallel to the input span.  An
/// op whose pfs segments all succeeded carries the serial-identical OpResult
/// and its rank's clock was advanced; a failed op leaves its rank's clock
/// untouched, exactly like the serial error path.
struct BatchOpOutcome {
  common::Status status;
  OpResult op;
};

using BatchOutcomeVec = common::SmallVec<BatchOpOutcome, 8>;

/// One op of a single-client vectored dispatch (dispatch_bulk).  Unlike
/// BatchOp there is no rank: every op of the call issues at the same virtual
/// instant on behalf of one client — the shape of a cache tier flushing
/// coalesced dirty runs or issuing one batched prefetch.  `job` attributes
/// the server charges (a flushed page is charged to the job whose write
/// dirtied it, not whoever triggered the flush).
struct BulkOp {
  common::Offset offset = 0;
  common::ByteCount size = 0;
  std::uint8_t* read_out = nullptr;         ///< read destination
  const std::uint8_t* write_data = nullptr; ///< write payload
  common::JobId job = common::kDefaultJob;
  common::Seconds deadline = std::numeric_limits<double>::infinity();
};

/// Per-op outcome of dispatch_bulk, index-parallel to the input span.
struct BulkOutcome {
  common::Status status;
  common::Seconds completion = 0.0;
};

using BulkOutcomeVec = common::SmallVec<BulkOutcome, 8>;

class MpiFile {
 public:
  /// Opens `name` on `pfs` (must exist).  The handle is shared by all ranks
  /// of `mpi`, like a shared file opened with MPI_File_open(MPI_COMM_WORLD).
  static common::Result<MpiFile> open(pfs::HybridPfs& pfs, MpiSim& mpi,
                                      const std::string& name);

  common::FileId file_id() const { return file_; }
  const std::string& name() const { return name_; }

  /// Attaches the tracing-phase collector (borrowed; may be nullptr).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Attaches the redirection-phase interceptor (borrowed; may be nullptr).
  void set_interceptor(IoInterceptor* interceptor) { interceptor_ = interceptor; }
  IoInterceptor* interceptor() const { return interceptor_; }

  /// Logical size of the underlying file (one past the highest written
  /// byte) — the cache tier's page-in clip.
  common::ByteCount size() const { return pfs_->file_size(file_); }

  /// MPI_File_read_at: issues at the rank's current clock and advances it
  /// to the completion time.
  common::Result<OpResult> read_at(int rank, common::Offset offset, std::uint8_t* out,
                                   common::ByteCount size);

  /// MPI_File_write_at.
  common::Result<OpResult> write_at(int rank, common::Offset offset,
                                    const std::uint8_t* data, common::ByteCount size);

  /// Collective batched I/O (MPI_File_read_at_all-shaped): issues every op
  /// of `ops` as ONE batched pfs call.  Per-op client overheads (tracer +
  /// redirection lookup) are charged exactly as the serial path does, but
  /// the batch translates in ascending-offset order under one shared
  /// TranslateCursor (so sorted batches ride the DRT sequential-hint path)
  /// and the pfs layer coalesces across ops and dispatches once per server.
  /// Outcomes — Statuses, timings, traced records, rank clocks — are
  /// identical to calling read_at/write_at serially in list order.  See
  /// BatchOp for the distinct-ranks requirement.
  void read_at_batch(std::span<const BatchOp> ops, BatchOutcomeVec& results);
  void write_at_batch(std::span<const BatchOp> ops, BatchOutcomeVec& results);

  /// Single-client vectored dispatch: every op issues at virtual instant
  /// `issue` as ONE batched pfs call — translated in ascending-offset order
  /// under a shared cursor, coalesced per server, one dispatch per touched
  /// server.  Charges one redirection lookup per op (as the serial path
  /// does) but touches no rank clock and no tracer: the caller owns the
  /// client timeline and folds the returned completions in itself.  This is
  /// the cache tier's flush/prefetch entry point — a write-back flush is
  /// many offset-sorted runs leaving one client at one instant, which the
  /// per-rank batched API cannot express (its ops must target distinct
  /// ranks).
  void dispatch_bulk(common::OpType op, std::span<const BulkOp> ops,
                     common::Seconds issue, BulkOutcomeVec& results);

  /// Convenience: write a byte vector / read into a fresh vector.
  common::Result<OpResult> write_at(int rank, common::Offset offset,
                                    const std::vector<std::uint8_t>& data);
  common::Result<std::vector<std::uint8_t>> read_vec(int rank, common::Offset offset,
                                                     common::ByteCount size);

 private:
  MpiFile(pfs::HybridPfs& pfs, MpiSim& mpi, std::string name, common::FileId file)
      : pfs_(&pfs), mpi_(&mpi), name_(std::move(name)), file_(file) {}

  common::Result<OpResult> do_op(int rank, common::OpType op, common::Offset offset,
                                 std::uint8_t* read_out, const std::uint8_t* write_data,
                                 common::ByteCount size);
  void do_op_batch(common::OpType op, std::span<const BatchOp> ops,
                   BatchOutcomeVec& results);

  pfs::HybridPfs* pfs_;
  MpiSim* mpi_;
  std::string name_;
  common::FileId file_;
  Tracer* tracer_ = nullptr;
  IoInterceptor* interceptor_ = nullptr;
  int next_fd_ = 3;
  /// Per-handle translation scratch, reused across requests (the handle is
  /// single-client; see the thread-safety rule in core/drt.hpp).
  SegmentList segments_;
  // Batched-path scratch, reused across batches (same single-client rule).
  /// Per-op issue times (rank clock + client overheads).
  common::SmallVec<common::Seconds, 8> batch_issue_;
  /// Op indices in ascending-offset translation order.
  common::SmallVec<std::uint32_t, 8> batch_order_;
  /// Flat segment store plus per-op (begin, count) ranges into it.
  common::SmallVec<RedirectSegment, 16> seg_store_;
  common::SmallVec<std::pair<std::uint32_t, std::uint32_t>, 8> seg_range_;
  /// The assembled pfs batch (group = op index) and its results.
  common::SmallVec<pfs::BatchRequest, 16> batch_reqs_;
  pfs::BatchResultVec batch_results_;
};

}  // namespace mha::io
