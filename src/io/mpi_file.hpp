// MPI-IO-like file handle with the two interposition points MHA needs.
//
// Mirrors the paper's implementation (§IV-B): the modified MPI library loads
// the DRT at MPI_Init and consults it inside MPI_File_read/write so requests
// are "atomically forwarded to the alternative file servers".  Here the DRT
// consultation is abstracted as an IoInterceptor so the middleware does not
// depend on the MHA core; the core's Redirector implements it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "io/mpi_sim.hpp"
#include "io/tracer.hpp"
#include "pfs/file_system.hpp"

namespace mha::io {

/// One physical piece a logical request was translated into.
struct RedirectSegment {
  common::FileId file = common::kInvalidFileId;
  common::Offset offset = 0;      ///< offset in the target file
  common::ByteCount length = 0;
  common::Offset logical_offset = 0;  ///< where this piece sits in the request

  friend bool operator==(const RedirectSegment&, const RedirectSegment&) = default;
};

/// Caller-owned translation scratch: inline room for the common request
/// widths, heap spill (retained across clear) beyond that — a reused buffer
/// makes translation allocation-free in steady state.
using SegmentList = common::SmallVec<RedirectSegment, 8>;

/// Translates logical extents of the original file into physical segments.
/// The default behaviour (no interceptor) is the identity mapping onto the
/// original file.
class IoInterceptor {
 public:
  virtual ~IoInterceptor() = default;

  /// Splits [offset, offset+size) into target segments covering it exactly,
  /// in ascending logical order, appending into the caller's scratch
  /// (cleared first).
  virtual void translate(common::Offset offset, common::ByteCount size,
                         SegmentList& out) = 0;

  /// Convenience wrapper (tests / cold paths): translate into a fresh list.
  SegmentList translate(common::Offset offset, common::ByteCount size) {
    SegmentList out;
    translate(offset, size, out);
    return out;
  }

  /// Virtual seconds of lookup cost charged per translated request (the
  /// paper's "redirection phase" overhead, Fig. 14).
  virtual common::Seconds lookup_overhead() const { return 0.0; }

  /// Notifies the interceptor that [offset, offset+size) of the original
  /// file was overwritten through this handle.  The MHA redirector uses this
  /// to mark DRT entries dirty: once a region copy diverges from the
  /// original, the scrubber must not "repair" the region from the stale
  /// origin bytes.  Default: no-op (identity mapping has no second copy).
  virtual void note_write(common::Offset offset, common::ByteCount size) {
    (void)offset;
    (void)size;
  }

  /// Human-readable placement of one logical offset ("region <name> @<off>"
  /// or "passthrough @<off>"), for verification-failure diagnostics.  Cold
  /// path only; default: empty (no mapping attached).
  virtual std::string locate(common::Offset offset) const {
    (void)offset;
    return std::string();
  }
};

/// Per-op result at the middleware layer.
struct OpResult {
  common::Seconds start = 0.0;
  common::Seconds completion = 0.0;
  common::Seconds duration() const { return completion - start; }
};

class MpiFile {
 public:
  /// Opens `name` on `pfs` (must exist).  The handle is shared by all ranks
  /// of `mpi`, like a shared file opened with MPI_File_open(MPI_COMM_WORLD).
  static common::Result<MpiFile> open(pfs::HybridPfs& pfs, MpiSim& mpi,
                                      const std::string& name);

  common::FileId file_id() const { return file_; }
  const std::string& name() const { return name_; }

  /// Attaches the tracing-phase collector (borrowed; may be nullptr).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Attaches the redirection-phase interceptor (borrowed; may be nullptr).
  void set_interceptor(IoInterceptor* interceptor) { interceptor_ = interceptor; }

  /// MPI_File_read_at: issues at the rank's current clock and advances it
  /// to the completion time.
  common::Result<OpResult> read_at(int rank, common::Offset offset, std::uint8_t* out,
                                   common::ByteCount size);

  /// MPI_File_write_at.
  common::Result<OpResult> write_at(int rank, common::Offset offset,
                                    const std::uint8_t* data, common::ByteCount size);

  /// Convenience: write a byte vector / read into a fresh vector.
  common::Result<OpResult> write_at(int rank, common::Offset offset,
                                    const std::vector<std::uint8_t>& data);
  common::Result<std::vector<std::uint8_t>> read_vec(int rank, common::Offset offset,
                                                     common::ByteCount size);

 private:
  MpiFile(pfs::HybridPfs& pfs, MpiSim& mpi, std::string name, common::FileId file)
      : pfs_(&pfs), mpi_(&mpi), name_(std::move(name)), file_(file) {}

  common::Result<OpResult> do_op(int rank, common::OpType op, common::Offset offset,
                                 std::uint8_t* read_out, const std::uint8_t* write_data,
                                 common::ByteCount size);

  pfs::HybridPfs* pfs_;
  MpiSim* mpi_;
  std::string name_;
  common::FileId file_;
  Tracer* tracer_ = nullptr;
  IoInterceptor* interceptor_ = nullptr;
  int next_fd_ = 3;
  /// Per-handle translation scratch, reused across requests (the handle is
  /// single-client; see the thread-safety rule in core/drt.hpp).
  SegmentList segments_;
};

}  // namespace mha::io
