// Two-phase collective I/O (ROMIO-style MPI_File_{read,write}_at_all).
//
// Completes the MPI-IO middleware substrate: the paper's benchmarks run with
// independent I/O (BTIO "simple" subtype), but the middleware the paper
// builds on also offers collective buffering, and the layout discussion only
// makes sense against both modes.  The classic two-phase algorithm:
//
//   phase 0  barrier (collective entry)
//   phase 1  the aggregate byte extent of the batch is partitioned into
//            file domains, one per aggregator rank (stripe-cycle aligned);
//            every rank ships its pieces to the owning aggregators over the
//            compute interconnect (shuffle)
//   phase 2  each aggregator issues a few large, contiguous file requests
//            for its domain (merged extents)
//   exit     all ranks leave at the completion of the slowest aggregator
//
// Collective calls address the file directly (no DRT interception): in MPI
// terms the aggregators see the file after layout optimization the same way
// independent I/O does, but collective *re*-aggregation across reordered
// regions is future work, as it is in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "io/mpi_file.hpp"
#include "io/mpi_sim.hpp"
#include "pfs/file_system.hpp"

namespace mha::io {

/// One rank's contribution to a collective call.
struct CollectiveRequest {
  int rank = 0;
  common::Offset offset = 0;
  common::ByteCount size = 0;
};

struct CollectiveOptions {
  /// Number of aggregator ranks; 0 = min(world size, server count).
  int aggregators = 0;
  /// Compute-interconnect shuffle cost (GigE-class defaults).  An
  /// aggregator receives its senders' pieces as one overlapped pipeline:
  /// one wire latency, the payload at line rate, plus a small per-message
  /// CPU cost.
  common::Seconds shuffle_per_byte = 1.0 / 117.0e6;
  common::Seconds shuffle_latency = 30.0e-6;
  common::Seconds shuffle_per_message = 2.0e-6;
};

struct CollectiveResult {
  common::Seconds start = 0.0;       ///< barrier entry time
  common::Seconds completion = 0.0;  ///< when every rank leaves
  common::Seconds shuffle_time = 0.0;
  std::size_t file_requests = 0;     ///< phase-2 requests actually issued
  std::size_t aggregators_used = 0;
};

/// Collective write.  `payloads`, when non-null, is index-aligned with
/// `requests` (byte-accurate mode); otherwise zero payloads are shipped
/// (timing-only mode).  Requests must not overlap each other.
common::Result<CollectiveResult> collective_write(
    pfs::HybridPfs& pfs, MpiSim& mpi, common::FileId file,
    const std::vector<CollectiveRequest>& requests,
    const std::vector<std::vector<std::uint8_t>>* payloads = nullptr,
    const CollectiveOptions& options = {});

/// Collective read.  When `out` is non-null it receives one buffer per
/// request (index-aligned).
common::Result<CollectiveResult> collective_read(
    pfs::HybridPfs& pfs, MpiSim& mpi, common::FileId file,
    const std::vector<CollectiveRequest>& requests,
    std::vector<std::vector<std::uint8_t>>* out = nullptr,
    const CollectiveOptions& options = {});

}  // namespace mha::io
