#include "pfs/file_system.hpp"

#include <algorithm>

namespace mha::pfs {

HybridPfs::HybridPfs(const sim::ClusterConfig& config, PfsOptions options)
    : config_(config), mds_(std::move(options.rst_path)), num_hservers_(config.num_hservers) {
  servers_.reserve(config.num_hservers + config.num_sservers);
  for (std::size_t i = 0; i < config.num_hservers; ++i) {
    servers_.push_back(std::make_unique<DataServer>(common::ServerKind::kHdd, config.hdd,
                                                    config.network, options.store_data));
  }
  for (std::size_t i = 0; i < config.num_sservers; ++i) {
    servers_.push_back(std::make_unique<DataServer>(common::ServerKind::kSsd, config.ssd,
                                                    config.network, options.store_data));
  }
  std::vector<sim::ServerSim*> sims;
  sims.reserve(servers_.size());
  for (auto& server : servers_) sims.push_back(&server->sim());
  row_ = sched::ServerRow(std::move(sims), num_hservers_);
}

void HybridPfs::dispatch(common::OpType op, const std::vector<common::ByteCount>& per_server,
                         common::Seconds arrival, IoResult& result) const {
  if (scheduler_ != nullptr) {
    std::vector<sim::SubRequest> subs;
    for (std::size_t i = 0; i < per_server.size(); ++i) {
      if (per_server[i] == 0) continue;
      subs.push_back(sim::SubRequest{i, op, per_server[i]});
    }
    const sched::DispatchResult out = scheduler_->dispatch(row_, subs, arrival);
    result.completion = std::max(result.completion, out.completion);
    result.sub_requests += out.sub_requests;
    result.servers_touched += subs.size();
    return;
  }
  for (std::size_t i = 0; i < per_server.size(); ++i) {
    if (per_server[i] == 0) continue;
    const common::Seconds done = row_.server(i).submit(op, per_server[i], arrival);
    result.completion = std::max(result.completion, done);
    ++result.sub_requests;
    ++result.servers_touched;
  }
}

HybridPfs::HybridPfs(const sim::ClusterConfig& config, std::string rst_path)
    : HybridPfs(config, PfsOptions{std::move(rst_path), true}) {}

common::Result<common::FileId> HybridPfs::create_file(const std::string& name,
                                                      StripeLayout layout) {
  if (layout.num_servers() != servers_.size()) {
    return common::Status::invalid_argument(
        "layout covers " + std::to_string(layout.num_servers()) + " servers, cluster has " +
        std::to_string(servers_.size()));
  }
  return mds_.create_file(name, std::move(layout));
}

common::Result<common::FileId> HybridPfs::create_file(const std::string& name) {
  return create_file(name, StripeLayout::uniform(servers_.size(), kDefaultStripe));
}

common::Result<common::FileId> HybridPfs::open(const std::string& name) const {
  return mds_.lookup(name);
}

common::Result<IoResult> HybridPfs::write(common::FileId file, common::Offset offset,
                                          const std::uint8_t* data, common::ByteCount size,
                                          common::Seconds arrival) {
  if (file >= mds_.file_count()) return common::Status::out_of_range("bad file id");
  const StripeLayout& layout = mds_.info(file).layout;
  IoResult result;
  result.completion = arrival;
  // Move the data piece by piece, but charge each server exactly once for
  // its accumulated bytes: the per-server physical image of one request is
  // contiguous under dense round-robin packing, so a real client ships it
  // as a single server message (the per-server term of Eq. 2).
  std::vector<common::ByteCount> per_server(servers_.size(), 0);
  for (const SubExtent& sub : layout.map_extent(offset, size)) {
    servers_[sub.server]->store(file, sub.physical_offset,
                                data + (sub.logical_offset - offset), sub.length);
    per_server[sub.server] += sub.length;
  }
  dispatch(common::OpType::kWrite, per_server, arrival, result);
  mds_.extend(file, offset + size);
  return result;
}

common::Result<IoResult> HybridPfs::read(common::FileId file, common::Offset offset,
                                         std::uint8_t* out, common::ByteCount size,
                                         common::Seconds arrival) const {
  if (file >= mds_.file_count()) return common::Status::out_of_range("bad file id");
  const StripeLayout& layout = mds_.info(file).layout;
  IoResult result;
  result.completion = arrival;
  std::vector<common::ByteCount> per_server(servers_.size(), 0);
  for (const SubExtent& sub : layout.map_extent(offset, size)) {
    servers_[sub.server]->load(file, sub.physical_offset, out + (sub.logical_offset - offset),
                               sub.length);
    per_server[sub.server] += sub.length;
  }
  dispatch(common::OpType::kRead, per_server, arrival, result);
  return result;
}

common::Result<IoResult> HybridPfs::write(common::FileId file, common::Offset offset,
                                          const std::vector<std::uint8_t>& data,
                                          common::Seconds arrival) {
  return write(file, offset, data.data(), data.size(), arrival);
}

common::Result<std::vector<std::uint8_t>> HybridPfs::read_bytes(common::FileId file,
                                                                common::Offset offset,
                                                                common::ByteCount size,
                                                                common::Seconds arrival) const {
  std::vector<std::uint8_t> out(size);
  auto r = read(file, offset, out.data(), size, arrival);
  if (!r.is_ok()) return r.status();
  return out;
}

common::Status HybridPfs::remove(const std::string& name) {
  auto id = mds_.lookup(name);
  if (!id.is_ok()) return id.status();
  for (auto& server : servers_) server->remove_file(*id);
  return mds_.remove(name);
}

common::ByteCount HybridPfs::stored_bytes(common::FileId file) const {
  common::ByteCount total = 0;
  for (const auto& server : servers_) total += server->stored_bytes(file);
  return total;
}

void HybridPfs::reset_stats() {
  for (auto& server : servers_) server->sim().reset_stats();
}

void HybridPfs::reset_clocks() {
  for (auto& server : servers_) server->sim().reset_clock();
}

std::string HybridPfs::stats_table() const {
  std::string out = sim::stats_table_header();
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    out += sim::stats_table_row(i, servers_[i]->sim());
  }
  return out;
}

}  // namespace mha::pfs
