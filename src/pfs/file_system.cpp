#include "pfs/file_system.hpp"

#include <algorithm>

#include "repair/membership.hpp"

namespace mha::pfs {

HybridPfs::HybridPfs(const sim::ClusterConfig& config, PfsOptions options)
    : config_(config), mds_(std::move(options.rst_path)), num_hservers_(config.num_hservers) {
  servers_.reserve(config.num_hservers + config.num_sservers);
  for (std::size_t i = 0; i < config.num_hservers; ++i) {
    servers_.push_back(std::make_unique<DataServer>(common::ServerKind::kHdd, config.hdd,
                                                    config.network, options.store_data));
  }
  for (std::size_t i = 0; i < config.num_sservers; ++i) {
    servers_.push_back(std::make_unique<DataServer>(common::ServerKind::kSsd, config.ssd,
                                                    config.network, options.store_data));
  }
  std::vector<sim::ServerSim*> sims;
  sims.reserve(servers_.size());
  for (auto& server : servers_) sims.push_back(&server->sim());
  row_ = sched::ServerRow(std::move(sims), num_hservers_);
  per_server_.resize(servers_.size(), 0);
}

void HybridPfs::set_fault_context(fault::FaultContext* fault) {
  fault_ = fault;
  const sim::FaultHook* hook = fault != nullptr ? &fault->injector() : nullptr;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i]->sim().set_fault_hook(hook, i);
  }
}

void HybridPfs::charge_sub(common::OpType op, std::size_t server, common::ByteCount bytes,
                           common::Seconds t, IoResult& result) const {
  if (scheduler_ != nullptr) {
    const sched::DispatchResult out =
        scheduler_->dispatch(row_, {sim::SubRequest{server, op, bytes, active_job_}}, t);
    result.completion = std::max(result.completion, out.completion);
    result.sub_requests += out.sub_requests;
    ++result.servers_touched;
    if (out.last_server != sched::DispatchResult::kNoServer) {
      receipts_.push_back(SubCharge{out.last_server, out.last_charge});
    }
    return;
  }
  const sim::Charge c = row_.server(server).charge(op, bytes, t, active_job_);
  receipts_.push_back(SubCharge{server, c});
  result.completion = std::max(result.completion, c.completion);
  ++result.sub_requests;
  ++result.servers_touched;
}

void HybridPfs::rewind_receipts() const {
  for (std::size_t i = receipts_.size(); i-- > 0;) {
    const SubCharge& r = receipts_[i];
    if (r.charge.bytes == 0) continue;
    if (row_.server(r.server).try_cancel(r.charge)) {
      if (guard_ != nullptr) guard_->note_sibling_cancelled(r.charge.bytes);
    } else {
      // A later admission baked this charge's completion into the queue:
      // the server will serve it anyway.  Throughput without goodput.
      row_.server(r.server).note_wasted(r.charge.job, r.charge.bytes);
      if (guard_ != nullptr) guard_->note_sibling_wasted(r.charge.bytes);
    }
  }
  receipts_.clear();
}

bool HybridPfs::failover_active() const {
  return membership_ != nullptr && membership_->dead_count() > 0;
}

void HybridPfs::set_replica(common::FileId primary, common::FileId replica) {
  if (replica_of_.size() <= primary) {
    replica_of_.resize(primary + 1, common::kInvalidFileId);
  }
  replica_of_[primary] = replica;
}

void HybridPfs::clear_replica(common::FileId primary) {
  if (primary < replica_of_.size()) replica_of_[primary] = common::kInvalidFileId;
}

void HybridPfs::wipe_server(std::size_t server) {
  for (common::FileId f = 0; f < mds_.file_count(); ++f) {
    servers_[server]->remove_file(f);
  }
}

common::Status HybridPfs::failover_read_sub(common::FileId file, const SubExtent& sub,
                                            std::uint8_t* out) const {
  const common::FileId replica = replica_of(file);
  if (replica == common::kInvalidFileId) {
    ++failover_stats_.unavailable;
    return common::Status::unavailable(
        "server " + std::to_string(sub.server) + " is dead and file " +
        std::to_string(file) + " has no replica for [" +
        std::to_string(sub.logical_offset) + ", +" + std::to_string(sub.length) + ")");
  }
  // The replica shares the file's logical byte space, so this sub-extent's
  // bytes live at the same logical range of the replica; map them through
  // the replica's own layout and serve from there, charging the replica's
  // servers under the active job (exact attribution).
  const StripeLayout& layout = mds_.info(replica).layout;
  layout.map_extent(sub.logical_offset, sub.length, failover_extents_);
  for (const SubExtent& rsub : failover_extents_) {
    if (membership_->dead(rsub.server)) {
      ++failover_stats_.unavailable;
      return common::Status::unavailable(
          "file " + std::to_string(file) + " lost both copies (replica server " +
          std::to_string(rsub.server) + " is dead too)");
    }
    common::Status verified = servers_[rsub.server]->load_verified(
        replica, rsub.physical_offset, out + (rsub.logical_offset - sub.logical_offset),
        rsub.length);
    if (!verified.is_ok()) {
      if (fault_ != nullptr) ++fault_->metrics().corruption_detected;
      return common::Status::corruption("server " + std::to_string(rsub.server) +
                                        " file " + std::to_string(replica) + ": " +
                                        verified.message());
    }
    per_server_[rsub.server] += rsub.length;
    ++failover_stats_.failover_reads;
    failover_stats_.failover_bytes += rsub.length;
  }
  return common::Status::ok();
}

common::Status HybridPfs::mirror_write_sub(common::FileId replica, const SubExtent& sub,
                                           const std::uint8_t* data) {
  const StripeLayout& layout = mds_.info(replica).layout;
  layout.map_extent(sub.logical_offset, sub.length, failover_extents_);
  for (const SubExtent& rsub : failover_extents_) {
    if (membership_ != nullptr && membership_->dead(rsub.server)) {
      ++failover_stats_.unavailable;
      return common::Status::unavailable("replica server " + std::to_string(rsub.server) +
                                         " is dead");
    }
    servers_[rsub.server]->store(replica, rsub.physical_offset,
                                 data + (rsub.logical_offset - sub.logical_offset),
                                 rsub.length);
    per_server_[rsub.server] += rsub.length;
    ++failover_stats_.mirrored_writes;
    failover_stats_.mirror_bytes += rsub.length;
  }
  mds_.extend(replica, sub.logical_offset + sub.length);
  return common::Status::ok();
}

std::size_t HybridPfs::pick_fallback_sserver(common::Seconds t) const {
  std::size_t best = servers_.size();
  common::Seconds best_backlog = 0.0;
  for (std::size_t s = num_hservers_; s < servers_.size(); ++s) {
    if (membership_ != nullptr && membership_->dead(s)) continue;
    if (fault_ != nullptr && fault_->injector().offline(s, t)) continue;
    if (guard_ != nullptr && !guard_->breaker_healthy(s)) continue;
    const common::Seconds b = row_.server(s).backlog(t);
    if (best == servers_.size() || b < best_backlog) {
      best = s;
      best_backlog = b;
    }
  }
  return best;
}

common::Status HybridPfs::admit_request(const std::vector<common::ByteCount>& per_server,
                                        common::Seconds arrival) const {
  if (guard_ == nullptr) return common::Status::ok();
  common::Seconds max_backlog = 0.0;
  for (std::size_t i = 0; i < per_server.size(); ++i) {
    if (per_server[i] == 0) continue;
    const common::Seconds b = row_.server(i).backlog(arrival);
    guard_->observe_server(i, arrival, b);
    max_backlog = std::max(max_backlog, b);
  }
  if (!guard_->admit(active_job_, max_backlog)) {
    return common::Status::overloaded(
        "admission gate shed " +
        std::string(guard::tier_name(guard_->tier_of(active_job_))) +
        "-tier request (backlog " + std::to_string(max_backlog) + "s)");
  }
  return common::Status::ok();
}

common::Status HybridPfs::dispatch_degraded(common::FileId file, common::OpType op,
                                            const std::vector<common::ByteCount>& per_server,
                                            common::Seconds arrival, IoResult& result) const {
  fault::FaultInjector& injector = fault_->injector();
  fault::FaultMetrics& metrics = fault_->metrics();
  const fault::RetryPolicy& policy = fault_->retry();

  // Recovered servers first pay the traffic they missed: replay every redo
  // entry whose target is back online.  The replay is catch-up background
  // work — it loads the server queue (and so delays this request through
  // contention) but does not gate this request's completion directly.
  for (const fault::RedoEntry& entry : fault_->redo().take_replayable(injector, arrival)) {
    row_.server(entry.server).submit(common::OpType::kWrite, entry.bytes, arrival);
    ++metrics.redo_replayed;
    metrics.redo_bytes += entry.bytes;
  }
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    fault_->note_server_state(i, injector.offline(i, arrival));
  }

  // Admission gate: observe post-redo backlogs and shed before any server
  // is charged (the fast-fail contract of kOverloaded).
  MHA_RETURN_IF_ERROR(admit_request(per_server, arrival));

  // The retry/offline-wait budget is additionally capped by the request's
  // end-to-end deadline: waiting past the instant the caller abandons the
  // request is work nobody will collect.
  const bool enforce_deadline =
      guard_ != nullptr && active_deadline_ < std::numeric_limits<double>::infinity();
  const common::Seconds budget_end =
      std::min(arrival + policy.timeout_budget,
               enforce_deadline ? active_deadline_
                                : std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < per_server.size(); ++i) {
    if (per_server[i] == 0) continue;
    std::size_t server = i;
    const common::ByteCount bytes = per_server[i];
    common::Seconds t = arrival;
    std::size_t attempt = 1;
    for (;;) {
      if (injector.offline(server, t)) {
        ++metrics.offline_hits;
        if (guard_ != nullptr) guard_->record_server(server, t, false);
        if (op == common::OpType::kWrite) {
          // The payload is already durable in the client-visible content
          // plane (store() ran before dispatch), so park the server charge
          // in the redo log and acknowledge — read-your-writes holds.
          fault_->redo().append(fault::RedoEntry{server, file, bytes, t});
          ++metrics.redo_logged;
          result.completion = std::max(result.completion, t);
          break;
        }
        if (is_hserver(server)) {
          // Degraded read: HServer data has an SServer replica under the
          // paper's migration story — re-charge the least-loaded online
          // SServer.  Bytes were already load()ed from the content plane,
          // so the answer stays byte-identical.
          const std::size_t best = pick_fallback_sserver(t);
          if (best != servers_.size()) {
            ++metrics.degraded_reads;
            server = best;
            continue;
          }
        }
        // No replica to fall back on: wait out the outage if the budget
        // allows, otherwise surface the failure (releasing any siblings
        // already charged for this request).
        const common::Seconds up = injector.recovery_time(server, t);
        if (up > budget_end) {
          ++metrics.budget_exhausted;
          rewind_receipts();
          return common::Status::unavailable(
              "server " + std::to_string(server) + " offline past the " +
              std::to_string(policy.timeout_budget) + "s request budget");
        }
        t = up;
        continue;
      }
      // Circuit breaker: an open breaker turns HServer reads away before
      // they queue behind a sick server; the replica fallback absorbs them.
      // Writes pass through — their durability story is the redo log, and
      // overload protection for them is the admission gate above.
      if (guard_ != nullptr && op == common::OpType::kRead && is_hserver(server) &&
          !guard_->breaker_allow(server, t)) {
        guard_->note_breaker_rejection();
        const std::size_t best = pick_fallback_sserver(t);
        if (best != servers_.size()) {
          guard_->note_reroute();
          server = best;
          continue;
        }
        // Every fallback is sick too; charging the primary anyway beats
        // failing a request the admission gate already accepted.
      }
      if (injector.draw_transient(server, t)) {
        if (guard_ != nullptr) guard_->record_server(server, t, false);
        if (attempt >= policy.max_attempts) {
          ++metrics.budget_exhausted;
          rewind_receipts();
          return common::Status::io_error(
              "sub-request to server " + std::to_string(server) + " failed " +
              std::to_string(attempt) + " attempts");
        }
        // The global retry-token budget outranks the per-request attempt
        // budget: when the bucket is dry the fleet is already retrying at
        // its ceiling, and this request sheds instead of piling on.
        if (guard_ != nullptr && !guard_->take_retry_token()) {
          ++metrics.budget_exhausted;
          rewind_receipts();
          return common::Status::overloaded(
              "retry tokens exhausted (server " + std::to_string(server) + ")");
        }
        const common::Seconds delay = fault::backoff_delay(policy, attempt, fault_->rng());
        if (t + delay > budget_end) {
          ++metrics.budget_exhausted;
          rewind_receipts();
          return common::Status::unavailable(
              "retries on server " + std::to_string(server) +
              " exhausted the request budget");
        }
        ++attempt;
        ++metrics.retries;
        metrics.backoff_seconds += delay;
        t += delay;
        continue;
      }
      charge_sub(op, server, bytes, t, result);
      if (guard_ != nullptr) {
        // End-to-end deadline: if this sub-request cannot complete before
        // the caller abandons the request, stop here and cancel the
        // siblings already charged — work the servers would otherwise
        // perform for nothing.  The blown deadline is this server's
        // failure as far as its breaker is concerned: it was too slow.
        if (enforce_deadline && result.completion > active_deadline_) {
          guard_->note_deadline_miss();
          guard_->record_server(server, t, false);
          rewind_receipts();
          return common::Status::unavailable(
              "deadline exceeded dispatching to server " + std::to_string(server));
        }
        guard_->record_server(server, t, true);
      }
      break;
    }
  }
  return common::Status::ok();
}

common::Status HybridPfs::dispatch(common::FileId file, common::OpType op,
                                   const std::vector<common::ByteCount>& per_server,
                                   common::Seconds arrival, IoResult& result) const {
  receipts_.clear();
  if (fault_ != nullptr) {
    return dispatch_degraded(file, op, per_server, arrival, result);
  }
  MHA_RETURN_IF_ERROR(admit_request(per_server, arrival));
  const bool enforce_deadline =
      guard_ != nullptr && active_deadline_ < std::numeric_limits<double>::infinity();
  if (scheduler_ != nullptr && !enforce_deadline) {
    subs_.clear();
    for (std::size_t i = 0; i < per_server.size(); ++i) {
      if (per_server[i] == 0) continue;
      subs_.push_back(sim::SubRequest{i, op, per_server[i], active_job_});
    }
    const sched::DispatchResult out = scheduler_->dispatch(
        row_, std::span<const sim::SubRequest>(subs_.data(), subs_.size()), arrival);
    result.completion = std::max(result.completion, out.completion);
    result.sub_requests += out.sub_requests;
    result.servers_touched += subs_.size();
    return common::Status::ok();
  }
  // Direct path — and, under an enforced deadline, the scheduler path too:
  // sub-requests go out one at a time so each leaves a cancellation receipt
  // and the first one that cannot make the deadline aborts the rest.
  for (std::size_t i = 0; i < per_server.size(); ++i) {
    if (per_server[i] == 0) continue;
    charge_sub(op, i, per_server[i], arrival, result);
    if (enforce_deadline && result.completion > active_deadline_) {
      guard_->note_deadline_miss();
      rewind_receipts();
      return common::Status::unavailable(
          "deadline exceeded dispatching to server " + std::to_string(i));
    }
  }
  return common::Status::ok();
}

HybridPfs::HybridPfs(const sim::ClusterConfig& config, std::string rst_path)
    : HybridPfs(config, PfsOptions{std::move(rst_path), true}) {}

common::Result<common::FileId> HybridPfs::create_file(const std::string& name,
                                                      StripeLayout layout) {
  if (layout.num_servers() != servers_.size()) {
    return common::Status::invalid_argument(
        "layout covers " + std::to_string(layout.num_servers()) + " servers, cluster has " +
        std::to_string(servers_.size()));
  }
  return mds_.create_file(name, std::move(layout));
}

common::Result<common::FileId> HybridPfs::create_file(const std::string& name) {
  return create_file(name, StripeLayout::uniform(servers_.size(), kDefaultStripe));
}

common::Result<common::FileId> HybridPfs::open(const std::string& name) const {
  return mds_.lookup(name);
}

common::Result<IoResult> HybridPfs::write(common::FileId file, common::Offset offset,
                                          const std::uint8_t* data, common::ByteCount size,
                                          common::Seconds arrival) {
  if (file >= mds_.file_count()) return common::Status::out_of_range("bad file id");
  const StripeLayout& layout = mds_.info(file).layout;
  IoResult result;
  result.completion = arrival;
  // Move the data piece by piece, but charge each server exactly once for
  // its accumulated bytes: the per-server physical image of one request is
  // contiguous under dense round-robin packing, so a real client ships it
  // as a single server message (the per-server term of Eq. 2).
  std::fill(per_server_.begin(), per_server_.end(), 0);
  layout.map_extent(offset, size, extents_);
  const common::FileId replica = replica_of(file);
  const bool failover = failover_active();
  if (failover && replica == common::kInvalidFileId) {
    // Fail before any content-plane mutation (matching the batched path,
    // which rejects the request at translate time): a write that cannot
    // reach a dead server and has no replica to land on would otherwise be
    // silently lossy.
    for (const SubExtent& sub : extents_) {
      if (!membership_->dead(sub.server)) continue;
      ++failover_stats_.unavailable;
      return common::Status::unavailable(
          "server " + std::to_string(sub.server) + " is dead and file " +
          std::to_string(file) + " has no replica");
    }
  }
  for (const SubExtent& sub : extents_) {
    const bool dead = failover && membership_->dead(sub.server);
    if (dead) {
      // Primary copy is gone for good; the mirror store below is the only
      // landing site, and it carries the full charge.
      ++failover_stats_.failover_writes;
    } else {
      // Silent-fault injection point: with a fault context attached, each
      // stored sub-extent may be bit-rotted, torn or misdirected on its way
      // to the content plane.  The draw consumes randomness only under a
      // covering silent window, and the sim charges normal time either way —
      // silent faults are invisible to schedulers and to every timing golden.
      bool stored = false;
      if (fault_ != nullptr) {
        const sim::WriteFault wf = fault_->injector().draw_write_fault(
            sub.server, arrival, sub.physical_offset, sub.length);
        if (wf.kind != sim::WriteFault::Kind::kNone) {
          servers_[sub.server]->store_faulted(file, sub.physical_offset,
                                              data + (sub.logical_offset - offset),
                                              sub.length, wf);
          per_server_[sub.server] += sub.length;
          stored = true;
        }
      }
      if (!stored) {
        servers_[sub.server]->store(file, sub.physical_offset,
                                    data + (sub.logical_offset - offset), sub.length);
        per_server_[sub.server] += sub.length;
      }
    }
    if (replica != common::kInvalidFileId) {
      MHA_RETURN_IF_ERROR(
          mirror_write_sub(replica, sub, data + (sub.logical_offset - offset)));
    }
  }
  MHA_RETURN_IF_ERROR(dispatch(file, common::OpType::kWrite, per_server_, arrival, result));
  mds_.extend(file, offset + size);
  return result;
}

common::Result<IoResult> HybridPfs::read(common::FileId file, common::Offset offset,
                                         std::uint8_t* out, common::ByteCount size,
                                         common::Seconds arrival) const {
  if (file >= mds_.file_count()) return common::Status::out_of_range("bad file id");
  const StripeLayout& layout = mds_.info(file).layout;
  IoResult result;
  result.completion = arrival;
  std::fill(per_server_.begin(), per_server_.end(), 0);
  layout.map_extent(offset, size, extents_);
  const bool failover = failover_active();
  for (const SubExtent& sub : extents_) {
    if (failover && membership_->dead(sub.server)) {
      MHA_RETURN_IF_ERROR(
          failover_read_sub(file, sub, out + (sub.logical_offset - offset)));
      continue;
    }
    common::Status verified = servers_[sub.server]->load_verified(
        file, sub.physical_offset, out + (sub.logical_offset - offset), sub.length);
    if (!verified.is_ok()) {
      if (fault_ != nullptr) ++fault_->metrics().corruption_detected;
      return common::Status::corruption("server " + std::to_string(sub.server) + " file " +
                                        std::to_string(file) + ": " + verified.message());
    }
    per_server_[sub.server] += sub.length;
  }
  MHA_RETURN_IF_ERROR(dispatch(file, common::OpType::kRead, per_server_, arrival, result));
  return result;
}

void HybridPfs::batch_serial(common::OpType op, std::span<const BatchRequest> reqs,
                             BatchResultVec& results) {
  const common::JobId saved_job = active_job_;
  const common::Seconds saved_deadline = active_deadline_;
  bool have_failed_group = false;
  std::uint32_t failed_group = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const BatchRequest& r = reqs[i];
    BatchOpResult& out = results[i];
    if (have_failed_group && r.group == failed_group) {
      out.skipped = true;
      continue;
    }
    active_job_ = r.job;
    active_deadline_ = r.deadline;
    const common::Result<IoResult> res =
        op == common::OpType::kWrite
            ? write(r.file, r.offset, r.write_data, r.size, r.arrival)
            : read(r.file, r.offset, r.read_out, r.size, r.arrival);
    if (res.is_ok()) {
      out.io = *res;
    } else {
      out.status = res.status();
      have_failed_group = true;
      failed_group = r.group;
    }
  }
  active_job_ = saved_job;
  active_deadline_ = saved_deadline;
}

bool HybridPfs::batch_translate(common::OpType op, std::span<const BatchRequest> reqs,
                                BatchResultVec& results) {
  batch_subs_.clear();
  batch_sub_begin_.clear();
  const bool failover = failover_active();
  bool have_failed_group = false;
  std::uint32_t failed_group = 0;
  bool any = false;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const BatchRequest& r = reqs[i];
    const std::uint32_t req_begin = static_cast<std::uint32_t>(batch_subs_.size());
    batch_sub_begin_.push_back(req_begin);
    if (have_failed_group && r.group == failed_group) {
      results[i].skipped = true;
      continue;
    }
    if (r.file >= mds_.file_count()) {
      results[i].status = common::Status::out_of_range("bad file id");
      have_failed_group = true;
      failed_group = r.group;
      continue;
    }
    mds_.info(r.file).layout.map_extent(r.offset, r.size, extents_);
    const common::FileId replica = replica_of(r.file);
    common::Status failed;
    for (const SubExtent& sub : extents_) {
      const bool dead = failover && membership_->dead(sub.server);
      if (dead && replica == common::kInvalidFileId) {
        ++failover_stats_.unavailable;
        failed = common::Status::unavailable(
            "server " + std::to_string(sub.server) + " is dead and file " +
            std::to_string(r.file) + " has no replica");
        break;
      }
      if (!dead) {
        batch_subs_.push_back(BatchSub{static_cast<std::uint32_t>(i),
                                       static_cast<std::uint32_t>(sub.server), r.file,
                                       sub.physical_offset, sub.length,
                                       sub.logical_offset});
      } else if (op == common::OpType::kWrite) {
        ++failover_stats_.failover_writes;
      }
      // Replica subs: reads retarget only when the primary is dead; writes
      // always mirror so the copies stay coherent for a future kill.
      if (replica != common::kInvalidFileId &&
          (dead || op == common::OpType::kWrite)) {
        mds_.info(replica).layout.map_extent(sub.logical_offset, sub.length,
                                             failover_extents_);
        for (const SubExtent& rsub : failover_extents_) {
          if (membership_ != nullptr && membership_->dead(rsub.server)) {
            ++failover_stats_.unavailable;
            failed = common::Status::unavailable(
                "file " + std::to_string(r.file) + " lost both copies (replica server " +
                std::to_string(rsub.server) + " is dead too)");
            break;
          }
          batch_subs_.push_back(BatchSub{static_cast<std::uint32_t>(i),
                                         static_cast<std::uint32_t>(rsub.server), replica,
                                         rsub.physical_offset, rsub.length,
                                         rsub.logical_offset});
          if (op == common::OpType::kRead) {
            ++failover_stats_.failover_reads;
            failover_stats_.failover_bytes += rsub.length;
          } else {
            ++failover_stats_.mirrored_writes;
            failover_stats_.mirror_bytes += rsub.length;
          }
        }
        if (!failed.is_ok()) break;
      }
    }
    if (!failed.is_ok()) {
      // The failed request contributes nothing: no content op, no charge
      // (same no-mutation contract as the serial pre-scan).
      batch_subs_.resize(req_begin);
      results[i].status = failed;
      have_failed_group = true;
      failed_group = r.group;
      continue;
    }
    any = true;
  }
  batch_sub_begin_.push_back(static_cast<std::uint32_t>(batch_subs_.size()));
  return any;
}

void HybridPfs::batch_dispatch(common::OpType op, std::span<const BatchRequest> reqs,
                               BatchResultVec& results) {
  receipts_.clear();
  if (scheduler_ != nullptr) {
    // Scheduler path: one policy dispatch per request in batch order —
    // identical queue evolution to the serial scheduler path (no guard on
    // the fast path, so deadlines are never enforced here, matching
    // serial).
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      BatchOpResult& out = results[i];
      if (out.skipped || !out.status.is_ok()) continue;
      out.io.completion = reqs[i].arrival;
      std::fill(per_server_.begin(), per_server_.end(), 0);
      for (std::uint32_t k = batch_sub_begin_[i]; k < batch_sub_begin_[i + 1]; ++k) {
        per_server_[batch_subs_[k].server] += batch_subs_[k].length;
      }
      subs_.clear();
      for (std::size_t s = 0; s < per_server_.size(); ++s) {
        if (per_server_[s] == 0) continue;
        subs_.push_back(sim::SubRequest{s, op, per_server_[s], reqs[i].job});
      }
      const sched::DispatchResult dr = scheduler_->dispatch(
          row_, std::span<const sim::SubRequest>(subs_.data(), subs_.size()),
          reqs[i].arrival);
      out.io.completion = std::max(out.io.completion, dr.completion);
      out.io.sub_requests += dr.sub_requests;
      out.io.servers_touched += subs_.size();
    }
    return;
  }
  // Direct path: flatten every request's per-server aggregate sub-ops into
  // one list, then make ONE dispatch call per touched server carrying that
  // server's share of the whole batch.  Within a server the sub-ops keep
  // batch order, so the queue evolution (including which sub-ops see the
  // queued-startup discount) is bit-identical to per-request charges.
  batch_charges_.clear();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    BatchOpResult& out = results[i];
    if (out.skipped || !out.status.is_ok()) continue;
    out.io.completion = reqs[i].arrival;
    std::fill(per_server_.begin(), per_server_.end(), 0);
    for (std::uint32_t k = batch_sub_begin_[i]; k < batch_sub_begin_[i + 1]; ++k) {
      per_server_[batch_subs_[k].server] += batch_subs_[k].length;
    }
    for (std::size_t s = 0; s < per_server_.size(); ++s) {
      if (per_server_[s] == 0) continue;
      batch_charges_.push_back(BatchCharge{
          static_cast<std::uint32_t>(s),
          sim::ServerSim::BatchSubOp{op, per_server_[s], reqs[i].arrival, reqs[i].job,
                                     static_cast<std::uint32_t>(i), 0.0}});
    }
  }
  for (std::uint32_t s = 0; s < servers_.size(); ++s) {
    batch_server_ops_.clear();
    for (const BatchCharge& bc : batch_charges_) {
      if (bc.server == s) batch_server_ops_.push_back(bc.op);
    }
    if (batch_server_ops_.empty()) continue;
    row_.server(s).charge_batch(
        std::span<sim::ServerSim::BatchSubOp>(batch_server_ops_.data(),
                                              batch_server_ops_.size()));
    for (const sim::ServerSim::BatchSubOp& sub : batch_server_ops_) {
      BatchOpResult& out = results[sub.tag];
      out.io.completion = std::max(out.io.completion, sub.completion);
      ++out.io.sub_requests;
      ++out.io.servers_touched;
    }
  }
}

void HybridPfs::write_batch(std::span<const BatchRequest> reqs, BatchResultVec& results) {
  results.clear();
  results.resize(reqs.size());
  if (reqs.empty()) return;
  if (!batch_fast_path()) {
    batch_serial(common::OpType::kWrite, reqs, results);
    return;
  }
  if (batch_translate(common::OpType::kWrite, reqs, results)) {
    // Content plane: group the translated subs by (server, file), keeping
    // batch order within each group so overlapping writes land exactly as
    // the serial sequence would, and push each group through one
    // store_batch call (every touched checksum chunk paid once instead of
    // once per sub-stripe piece — the dominant cost of small writes).
    if (!servers_.empty() && servers_[0]->stores_data()) {
      batch_sorted_ = batch_subs_;
      std::sort(batch_sorted_.begin(), batch_sorted_.end(),
                [](const BatchSub& a, const BatchSub& b) {
                  if (a.server != b.server) return a.server < b.server;
                  if (a.file != b.file) return a.file < b.file;
                  if (a.req != b.req) return a.req < b.req;
                  return a.logical_offset < b.logical_offset;
                });
      std::size_t g = 0;
      while (g < batch_sorted_.size()) {
        const std::uint32_t server = batch_sorted_[g].server;
        const common::FileId file = batch_sorted_[g].file;
        batch_slices_.clear();
        std::size_t e = g;
        for (; e < batch_sorted_.size() && batch_sorted_[e].server == server &&
               batch_sorted_[e].file == file;
             ++e) {
          const BatchSub& s = batch_sorted_[e];
          const BatchRequest& r = reqs[s.req];
          batch_slices_.push_back(ExtentStore::IoSlice{
              s.physical_offset, r.write_data + (s.logical_offset - r.offset), s.length});
        }
        servers_[server]->store_batch(
            file, std::span<const ExtentStore::IoSlice>(batch_slices_.data(),
                                                        batch_slices_.size()));
        g = e;
      }
    }
    batch_dispatch(common::OpType::kWrite, reqs, results);
  }
  // Metadata extends in batch order (an order-independent max, kept
  // deterministic anyway); failed and skipped requests never extend.
  // Mirrored replicas extend with their primary, matching the serial path.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (results[i].status.is_ok() && !results[i].skipped) {
      mds_.extend(reqs[i].file, reqs[i].offset + reqs[i].size);
      const common::FileId replica = replica_of(reqs[i].file);
      if (replica != common::kInvalidFileId) {
        mds_.extend(replica, reqs[i].offset + reqs[i].size);
      }
    }
  }
}

void HybridPfs::read_batch(std::span<const BatchRequest> reqs, BatchResultVec& results) {
  results.clear();
  results.resize(reqs.size());
  if (reqs.empty()) return;
  if (!batch_fast_path()) {
    batch_serial(common::OpType::kRead, reqs, results);
    return;
  }
  if (!batch_translate(common::OpType::kRead, reqs, results)) return;
  // Verification plane: sort the subs by physical position, coalesce
  // overlap-or-adjacent runs per (server, file), and verify each run once.
  // A run never bridges a physical gap, so its chunk set is exactly the
  // union of the per-sub chunk sets the serial path would verify — shared
  // chunks just get checked once instead of once per sub.
  batch_sorted_ = batch_subs_;
  std::sort(batch_sorted_.begin(), batch_sorted_.end(),
            [](const BatchSub& a, const BatchSub& b) {
              if (a.server != b.server) return a.server < b.server;
              if (a.file != b.file) return a.file < b.file;
              if (a.physical_offset != b.physical_offset) {
                return a.physical_offset < b.physical_offset;
              }
              return a.req < b.req;
            });
  bool clean = true;
  for (std::size_t g = 0; g < batch_sorted_.size() && clean;) {
    const BatchSub& head = batch_sorted_[g];
    common::Offset run_end = head.physical_offset + head.length;
    std::size_t e = g + 1;
    for (; e < batch_sorted_.size(); ++e) {
      const BatchSub& s = batch_sorted_[e];
      if (s.server != head.server || s.file != head.file ||
          s.physical_offset > run_end) {
        break;
      }
      run_end = std::max(run_end, s.physical_offset + s.length);
    }
    clean = servers_[head.server]
                ->verify_range(head.file, head.physical_offset,
                               run_end - head.physical_offset)
                .is_ok();
    g = e;
  }
  if (!clean) {
    // Corruption somewhere under the batch: re-run everything through the
    // serial member so the failing request gets the exact serial Status
    // (chunk, CRCs, server), siblings complete or skip exactly as serial,
    // and partially-filled output buffers match.  Nothing was mutated by
    // the verify pass, so the replay starts from the same state.
    for (std::size_t i = 0; i < results.size(); ++i) results[i] = BatchOpResult{};
    batch_serial(common::OpType::kRead, reqs, results);
    return;
  }
  // Content plane: raw loads per sub — verification already passed, and
  // every destination slice is distinct, so order is irrelevant.
  for (const BatchSub& s : batch_subs_) {
    const BatchRequest& r = reqs[s.req];
    servers_[s.server]->load(s.file, s.physical_offset,
                             r.read_out + (s.logical_offset - r.offset), s.length);
  }
  batch_dispatch(common::OpType::kRead, reqs, results);
}

common::Result<IoResult> HybridPfs::write(common::FileId file, common::Offset offset,
                                          const std::vector<std::uint8_t>& data,
                                          common::Seconds arrival) {
  return write(file, offset, data.data(), data.size(), arrival);
}

common::Result<std::vector<std::uint8_t>> HybridPfs::read_bytes(common::FileId file,
                                                                common::Offset offset,
                                                                common::ByteCount size,
                                                                common::Seconds arrival) const {
  std::vector<std::uint8_t> out(size);
  auto r = read(file, offset, out.data(), size, arrival);
  if (!r.is_ok()) return r.status();
  return out;
}

common::Status HybridPfs::remove(const std::string& name) {
  auto id = mds_.lookup(name);
  if (!id.is_ok()) return id.status();
  for (auto& server : servers_) server->remove_file(*id);
  return mds_.remove(name);
}

common::ByteCount HybridPfs::stored_bytes(common::FileId file) const {
  common::ByteCount total = 0;
  for (const auto& server : servers_) total += server->stored_bytes(file);
  return total;
}

void HybridPfs::reset_stats() {
  for (auto& server : servers_) server->sim().reset_stats();
}

void HybridPfs::reset_clocks() {
  for (auto& server : servers_) server->sim().reset_clock();
}

std::string HybridPfs::stats_table() const {
  std::string out = sim::stats_table_header();
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    out += sim::stats_table_row(i, servers_[i]->sim());
  }
  return out;
}

}  // namespace mha::pfs
