#include "pfs/file_system.hpp"

#include <cstdio>

#include "common/units.hpp"

namespace mha::pfs {

HybridPfs::HybridPfs(const sim::ClusterConfig& config, PfsOptions options)
    : config_(config), mds_(std::move(options.rst_path)), num_hservers_(config.num_hservers) {
  servers_.reserve(config.num_hservers + config.num_sservers);
  for (std::size_t i = 0; i < config.num_hservers; ++i) {
    servers_.push_back(std::make_unique<DataServer>(common::ServerKind::kHdd, config.hdd,
                                                    config.network, options.store_data));
  }
  for (std::size_t i = 0; i < config.num_sservers; ++i) {
    servers_.push_back(std::make_unique<DataServer>(common::ServerKind::kSsd, config.ssd,
                                                    config.network, options.store_data));
  }
}

HybridPfs::HybridPfs(const sim::ClusterConfig& config, std::string rst_path)
    : HybridPfs(config, PfsOptions{std::move(rst_path), true}) {}

common::Result<common::FileId> HybridPfs::create_file(const std::string& name,
                                                      StripeLayout layout) {
  if (layout.num_servers() != servers_.size()) {
    return common::Status::invalid_argument(
        "layout covers " + std::to_string(layout.num_servers()) + " servers, cluster has " +
        std::to_string(servers_.size()));
  }
  return mds_.create_file(name, std::move(layout));
}

common::Result<common::FileId> HybridPfs::create_file(const std::string& name) {
  return create_file(name, StripeLayout::uniform(servers_.size(), kDefaultStripe));
}

common::Result<common::FileId> HybridPfs::open(const std::string& name) const {
  return mds_.lookup(name);
}

common::Result<IoResult> HybridPfs::write(common::FileId file, common::Offset offset,
                                          const std::uint8_t* data, common::ByteCount size,
                                          common::Seconds arrival) {
  if (file >= mds_.file_count()) return common::Status::out_of_range("bad file id");
  const StripeLayout& layout = mds_.info(file).layout;
  IoResult result;
  result.completion = arrival;
  // Move the data piece by piece, but charge each server exactly once for
  // its accumulated bytes: the per-server physical image of one request is
  // contiguous under dense round-robin packing, so a real client ships it
  // as a single server message (the per-server term of Eq. 2).
  std::vector<common::ByteCount> per_server(servers_.size(), 0);
  for (const SubExtent& sub : layout.map_extent(offset, size)) {
    servers_[sub.server]->store(file, sub.physical_offset,
                                data + (sub.logical_offset - offset), sub.length);
    per_server[sub.server] += sub.length;
  }
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (per_server[i] == 0) continue;
    const common::Seconds done =
        servers_[i]->sim().submit(common::OpType::kWrite, per_server[i], arrival);
    result.completion = std::max(result.completion, done);
    ++result.sub_requests;
    ++result.servers_touched;
  }
  mds_.extend(file, offset + size);
  return result;
}

common::Result<IoResult> HybridPfs::read(common::FileId file, common::Offset offset,
                                         std::uint8_t* out, common::ByteCount size,
                                         common::Seconds arrival) const {
  if (file >= mds_.file_count()) return common::Status::out_of_range("bad file id");
  const StripeLayout& layout = mds_.info(file).layout;
  IoResult result;
  result.completion = arrival;
  std::vector<common::ByteCount> per_server(servers_.size(), 0);
  for (const SubExtent& sub : layout.map_extent(offset, size)) {
    servers_[sub.server]->load(file, sub.physical_offset, out + (sub.logical_offset - offset),
                               sub.length);
    per_server[sub.server] += sub.length;
  }
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (per_server[i] == 0) continue;
    auto* server = const_cast<DataServer*>(servers_[i].get());
    const common::Seconds done =
        server->sim().submit(common::OpType::kRead, per_server[i], arrival);
    result.completion = std::max(result.completion, done);
    ++result.sub_requests;
    ++result.servers_touched;
  }
  return result;
}

common::Result<IoResult> HybridPfs::write(common::FileId file, common::Offset offset,
                                          const std::vector<std::uint8_t>& data,
                                          common::Seconds arrival) {
  return write(file, offset, data.data(), data.size(), arrival);
}

common::Result<std::vector<std::uint8_t>> HybridPfs::read_bytes(common::FileId file,
                                                                common::Offset offset,
                                                                common::ByteCount size,
                                                                common::Seconds arrival) const {
  std::vector<std::uint8_t> out(size);
  auto r = read(file, offset, out.data(), size, arrival);
  if (!r.is_ok()) return r.status();
  return out;
}

common::Status HybridPfs::remove(const std::string& name) {
  auto id = mds_.lookup(name);
  if (!id.is_ok()) return id.status();
  for (auto& server : servers_) server->remove_file(*id);
  return mds_.remove(name);
}

common::ByteCount HybridPfs::stored_bytes(common::FileId file) const {
  common::ByteCount total = 0;
  for (const auto& server : servers_) total += server->stored_bytes(file);
  return total;
}

void HybridPfs::reset_stats() {
  for (auto& server : servers_) server->sim().reset_stats();
}

void HybridPfs::reset_clocks() {
  for (auto& server : servers_) server->sim().reset_clock();
}

std::string HybridPfs::stats_table() const {
  std::string out = "server  kind     bytes        busy(s)   wait(s)\n";
  char line[160];
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    const auto& st = servers_[i]->sim().stats();
    std::snprintf(line, sizeof(line), "S%-6zu %-8s %-12s %-9.4f %-9.4f\n", i,
                  common::to_string(servers_[i]->kind()),
                  common::format_bytes(st.bytes_total()).c_str(), st.busy_time,
                  st.queue_wait);
    out += line;
  }
  return out;
}

}  // namespace mha::pfs
