// The metadata server (MDS).
//
// Owns the file namespace (name -> file id), each file's StripeLayout and
// logical size, and the Region Stripe Table (RST).  In the paper "the MDS
// looks up the RST according to the request's offset and length, and then
// returns this information to the client" — here regions are realised as
// separate files, so the RST rows are exactly the per-region-file stripe
// pairs, optionally persisted through the KV store.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "kv/kvstore.hpp"
#include "pfs/layout.hpp"

namespace mha::pfs {

struct FileInfo {
  common::FileId id = common::kInvalidFileId;
  std::string name;
  StripeLayout layout;
  /// Logical size: one past the highest byte ever written.
  common::ByteCount size = 0;
};

class MetadataServer {
 public:
  /// If `rst_path` is non-empty, file layouts are persisted there and
  /// reloaded by `restore_from_rst`.
  explicit MetadataServer(std::string rst_path = {});

  /// Creates a file; fails with kAlreadyExists on a duplicate name.
  common::Result<common::FileId> create_file(const std::string& name,
                                             StripeLayout layout);

  /// Looks a file up by name.
  common::Result<common::FileId> lookup(const std::string& name) const;

  bool exists(const std::string& name) const;

  /// Info accessors; id must be valid.
  const FileInfo& info(common::FileId id) const;
  FileInfo& info(common::FileId id);

  /// Replaces a file's layout (used by the Placer when re-striping).
  common::Status set_layout(common::FileId id, StripeLayout layout);

  /// Grows the recorded size if `end` exceeds it.
  void extend(common::FileId id, common::ByteCount end);

  common::Status remove(const std::string& name);

  std::vector<std::string> list_files() const;
  std::size_t file_count() const { return files_.size(); }

  /// Serialises a layout as a comma-separated width list (RST row format).
  static std::string encode_layout(const StripeLayout& layout);
  static common::Result<StripeLayout> decode_layout(const std::string& text);

  /// Re-creates the namespace from a persisted RST (after "power failure").
  common::Status restore_from_rst();

 private:
  common::Status persist(const FileInfo& info);

  std::unordered_map<std::string, common::FileId> by_name_;
  std::vector<FileInfo> files_;  // index == FileId
  std::string rst_path_;
  kv::KvStore rst_;
  bool persistent_ = false;
};

}  // namespace mha::pfs
