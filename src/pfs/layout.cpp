#include "pfs/layout.hpp"

#include <algorithm>
#include <cassert>

#include "common/units.hpp"

namespace mha::pfs {

StripeLayout::StripeLayout(std::vector<common::ByteCount> widths)
    : widths_(std::move(widths)) {
  slot_start_.reserve(widths_.size());
  common::ByteCount acc = 0;
  for (common::ByteCount w : widths_) {
    slot_start_.push_back(acc);
    acc += w;
  }
  cycle_ = acc;
}

common::Result<StripeLayout> StripeLayout::create(std::vector<common::ByteCount> widths) {
  if (widths.empty()) {
    return common::Status::invalid_argument("layout needs at least one server");
  }
  if (std::all_of(widths.begin(), widths.end(), [](auto w) { return w == 0; })) {
    return common::Status::invalid_argument("layout needs at least one non-zero stripe");
  }
  return StripeLayout(std::move(widths));
}

StripeLayout StripeLayout::uniform(std::size_t num_servers, common::ByteCount stripe) {
  auto result = create(std::vector<common::ByteCount>(num_servers, stripe));
  assert(result.is_ok());
  return std::move(result).take();
}

common::Result<StripeLayout> StripeLayout::stripe_pair(std::size_t num_h, std::size_t num_s,
                                                       common::ByteCount h,
                                                       common::ByteCount s) {
  if (num_s == 0 && num_h == 0) {
    return common::Status::invalid_argument("stripe_pair: no servers");
  }
  if (num_s > 0 && s == 0 && (num_h == 0 || h == 0)) {
    return common::Status::invalid_argument("stripe_pair: all stripe widths are zero");
  }
  std::vector<common::ByteCount> widths(num_h, h);
  widths.insert(widths.end(), num_s, s);
  return create(std::move(widths));
}

void StripeLayout::map_extent(common::Offset offset, common::ByteCount length,
                              SubExtentVec& out) const {
  out.clear();
  common::Offset pos = offset;
  common::ByteCount remaining = length;
  while (remaining > 0) {
    const SubExtent at = map_offset(pos);
    // Bytes left in the current slot from `pos` to the slot's end.
    const common::ByteCount in_cycle = pos % cycle_;
    const common::ByteCount slot_end_in_cycle = slot_start_[at.server] + widths_[at.server];
    const common::ByteCount slot_remaining = slot_end_in_cycle - in_cycle;
    const common::ByteCount take = std::min<common::ByteCount>(remaining, slot_remaining);

    if (!out.empty() && out.back().server == at.server &&
        out.back().physical_offset + out.back().length == at.physical_offset) {
      out.back().length += take;  // coalesce contiguous physical pieces
    } else {
      out.push_back(SubExtent{at.server, at.physical_offset, take, pos});
    }
    pos += take;
    remaining -= take;
  }
}

std::vector<SubExtent> StripeLayout::map_extent(common::Offset offset,
                                                common::ByteCount length) const {
  SubExtentVec scratch;
  map_extent(offset, length, scratch);
  return std::vector<SubExtent>(scratch.begin(), scratch.end());
}

SubExtent StripeLayout::map_offset(common::Offset offset) const {
  assert(cycle_ > 0);
  const common::ByteCount cycle_index = offset / cycle_;
  const common::ByteCount in_cycle = offset % cycle_;
  // Find the slot containing in_cycle: last slot_start_ <= in_cycle.
  // Zero-width slots never contain a byte (slot_start_[i] == slot_start_[i+1]),
  // and upper_bound naturally skips them.
  auto it = std::upper_bound(slot_start_.begin(), slot_start_.end(), in_cycle);
  const std::size_t server = static_cast<std::size_t>(it - slot_start_.begin()) - 1;
  const common::ByteCount in_slot = in_cycle - slot_start_[server];
  SubExtent sub;
  sub.server = server;
  sub.physical_offset = cycle_index * widths_[server] + in_slot;
  sub.length = 0;
  sub.logical_offset = offset;
  return sub;
}

common::Result<common::Offset> StripeLayout::logical_offset(
    std::size_t server, common::Offset physical_offset) const {
  if (server >= widths_.size()) {
    return common::Status::out_of_range("server index out of range");
  }
  const common::ByteCount w = widths_[server];
  if (w == 0) {
    return common::Status::invalid_argument("server has zero stripe width");
  }
  const common::ByteCount cycle_index = physical_offset / w;
  const common::ByteCount in_slot = physical_offset % w;
  return cycle_index * cycle_ + slot_start_[server] + in_slot;
}

std::size_t StripeLayout::servers_touched(common::Offset offset,
                                          common::ByteCount length) const {
  std::vector<bool> seen(widths_.size(), false);
  std::size_t count = 0;
  for (const SubExtent& sub : map_extent(offset, length)) {
    if (!seen[sub.server]) {
      seen[sub.server] = true;
      ++count;
    }
  }
  return count;
}

std::string StripeLayout::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < widths_.size(); ++i) {
    if (i) out += ",";
    out += common::format_bytes(widths_[i]);
  }
  out += "]";
  return out;
}

}  // namespace mha::pfs
